#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"

/// \file fault.hpp
/// Deterministic fault injection for the robustness test suite.
///
/// Hot-path code marks interesting failure sites with
/// `MAXEV_FAULT_POINT("name")`. In normal builds the macro compiles to
/// nothing — zero code, zero data, zero branches. Under `-DMAXEV_FAULTS=ON`
/// (CMake option) each point becomes a guarded call into FaultInjector:
/// a relaxed atomic "anything armed?" check, then a locked slow path that
/// counts the hit and throws once the armed trigger matures. Tests arm a
/// point for its nth upcoming hit (directly, or derived from a seed) and
/// drive a run into a reproducible mid-flight throw or allocation failure —
/// pinning the exception-safety contract of every engine
/// (docs/DESIGN.md §12: no leaks, no hangs, poisoned-or-reusable).
///
/// Fault-point catalog (docs/DESIGN.md §12 keeps the authoritative list):
///   kernel.dispatch      sim::Kernel event dispatch, between pop and resume
///   engine.flush         tdg::Engine/BatchEngine deferred-front drains
///   engine.vector_flush  tdg::BatchEngine vector drain, before a computed
///                        full uniform front is published to the frame
///   trace.append         trace::UsageTrace::push
///   pool.submit          util::ThreadPool::submit
///   pool.parallel_for    util::ThreadPool::parallel_for entry
///   adaptive.fastforward study::AdaptiveModel commit, after certification
///                        and staging but before any trace is extended

namespace maxev::util {

/// Thrown by an armed fault point (MAXEV_FAULTS builds only). Derives from
/// maxev::Error so injected faults flow through the same catch sites as
/// organic failures.
class FaultInjectedError : public Error {
 public:
  using Error::Error;
};

#if defined(MAXEV_FAULTS)

/// Process-wide registry of armed fault points. All static: the points are
/// compiled into library code, so there is exactly one injection domain per
/// process. Thread-safe; arming is test-only so the lock is uncontended in
/// the fast path (active() is a relaxed atomic read).
class FaultInjector {
 public:
  enum class Kind : std::uint8_t {
    kError,     ///< throw FaultInjectedError
    kBadAlloc,  ///< throw std::bad_alloc (allocation-failure drill)
  };

  /// Arm \p point to throw on its \p nth upcoming hit (1 = the very next).
  /// Triggers are one-shot: the point disarms itself when it fires.
  static void arm(const std::string& point, std::uint64_t nth,
                  Kind kind = Kind::kError);

  /// Seeded helper: arms for a deterministic nth in [1, window], derived
  /// from \p seed by a splitmix64 step — the same seed always faults the
  /// same hit, different seeds scatter the fault across the run.
  static void arm_seeded(const std::string& point, std::uint64_t seed,
                         std::uint64_t window, Kind kind = Kind::kError);

  static void disarm(const std::string& point);

  /// Disarm every point and zero every hit counter.
  static void reset();

  /// Hits recorded at \p point (counted only while at least one point is
  /// armed; reset() zeroes them).
  [[nodiscard]] static std::uint64_t hits(const std::string& point);

  /// Fast gate for MAXEV_FAULT_POINT: false while nothing is armed.
  [[nodiscard]] static bool active() noexcept;

  /// Slow path behind active(): count the hit, throw if a trigger matured.
  static void on_hit(const char* point);
};

#endif  // MAXEV_FAULTS

}  // namespace maxev::util

#if defined(MAXEV_FAULTS)
#define MAXEV_FAULT_POINT(name)                       \
  do {                                                \
    if (::maxev::util::FaultInjector::active())       \
      ::maxev::util::FaultInjector::on_hit(name);     \
  } while (0)
#else
#define MAXEV_FAULT_POINT(name) ((void)0)
#endif
