#include "util/csv.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace maxev {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path) {
  if (!out_) throw Error("CsvWriter: cannot open '" + path + "' for writing");
  if (!header.empty()) row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& c : cells) {
    if (!first) out_ << ',';
    out_ << escape(c);
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  char buf[48];
  for (double v : cells) {
    std::snprintf(buf, sizeof buf, "%.9g", v);
    s.emplace_back(buf);
  }
  row(s);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace maxev
