#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// The worker pool behind both parallelism levers (docs/DESIGN.md §11):
/// study::Study runs its scenario×backend cells on one, and
/// core::BatchEquivalentModel drains its per-group batch engines on one
/// between kernel timestep barriers.
///
/// Design constraints, in order:
///  * **Determinism is the caller's job, helped by the API.** parallel_for
///    hands out indices; which worker runs which index is scheduling noise,
///    so callers must key every result (and every exception) by index —
///    parallel_for stores per-index exceptions and rethrows the
///    lowest-index one, giving a deterministic failure regardless of
///    completion order.
///  * **Reentrancy without deadlock.** The calling thread participates in
///    its own parallel_for, so a task that itself calls parallel_for can
///    always finish its batch single-handedly — nested fan-out (a study
///    cell whose composed model drains groups in parallel) cannot starve
///    the pool.
///  * **No work, no wakeups.** Workers sleep on a condition variable;
///    an idle pool costs nothing between timestep barriers.

namespace maxev::util {

class ThreadPool {
 public:
  /// Spawn \p threads workers (>= 1; the constructor clamps 0 up to 1).
  /// Note parallel_for also runs the calling thread, so total parallelism
  /// is threads + 1 while a barrier is open.
  explicit ThreadPool(std::size_t threads);

  /// Drains nothing: outstanding submitted tasks still run, then workers
  /// join. Submitting during destruction throws.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Enqueue one task; the future carries its exception, if any.
  /// \throws maxev::Error after shutdown began.
  std::future<void> submit(std::function<void()> task);

  /// Run body(0) .. body(n-1) across the workers *and this thread*,
  /// returning when all n calls finished. Exceptions are captured per
  /// index; the lowest-index one is rethrown (deterministic regardless of
  /// which worker hit it first). Safe to call from inside a pool task —
  /// the nested caller claims and executes indices itself, so it finishes
  /// its batch even with every worker busy; nesting cannot deadlock.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Map a user-facing thread-count knob to an actual worker count:
  /// 0 = one per hardware thread, otherwise the value itself (>= 1).
  [[nodiscard]] static std::size_t resolve(int threads);

 private:
  struct Batch;  // shared state of one parallel_for

  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace maxev::util
