#pragma once

#include <atomic>

/// \file cancel.hpp
/// Cooperative cancellation for long-running simulations.
///
/// A CancelToken is a one-bit mailbox: any thread may request cancellation,
/// and the simulation kernel polls it between event dispatches
/// (sim::RunGuards::cancel) — a run stops with StopReason::kCancelled at
/// the next timestep boundary, never mid-coroutine. The token is not owned
/// by the kernel; the caller keeps it alive for the duration of the run and
/// may share one token across every cell of a study matrix
/// (study::StudyOptions::cancel) to abort the whole matrix at once.

namespace maxev::util {

/// Thread-safe cooperative cancellation flag. Relaxed atomics suffice: the
/// flag carries no payload and observing it "late" by a few events is within
/// the contract (cancellation is a bound on wasted work, not a fence).
class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation; every kernel polling this token stops at its
  /// next check. Idempotent; callable from any thread.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Re-arm the token for another run. Only call between runs — resetting
  /// while a kernel is polling turns a requested cancellation into a race.
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace maxev::util
