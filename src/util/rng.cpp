#include "util/rng.hpp"

#include <cassert>

#ifdef _MSC_VER
#include <intrin.h>
#endif

namespace maxev {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1u;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

int Rng::uniform_int(int lo, int hi) {
  return static_cast<int>(uniform_i64(lo, hi));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::chance(double p) { return uniform01() < p; }

std::size_t Rng::pick_weighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng{next_u64() ^ 0xa5a5a5a5deadbeefull}; }

}  // namespace maxev
