#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file stats.hpp
/// Small descriptive-statistics helpers used by the benchmark harness and the
/// trace analysis code: the paper's Section IV protocol reports median
/// wall-clock times over repetitions, and Fig. 6's GOPS profiles are
/// windowed means over usage traces.

namespace maxev {

/// Streaming mean/variance accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;

  [[nodiscard]] std::string to_string() const;
};

/// Summarize a sample (copies and sorts internally).
[[nodiscard]] Summary summarize(std::vector<double> sample);

/// Median of a sample (copies and sorts internally); 0 for empty input.
[[nodiscard]] double median_of(std::vector<double> sample);

}  // namespace maxev
