#pragma once

#include <cstdint>
#include <vector>

/// \file rng.hpp
/// Deterministic, platform-independent pseudo-random generation.
///
/// The standard distributions (std::uniform_int_distribution, ...) are not
/// required to produce identical streams across standard libraries, which
/// would make the seeded property tests and benchmark workloads
/// non-reproducible. SplitMix64 plus explicit mapping functions gives a
/// stable stream everywhere.

namespace maxev {

/// SplitMix64 generator (Steele, Lea, Flood 2014). Passes BigCrush, two
/// machine words of state cost, and trivially seedable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  /// \pre bound > 0
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the closed range [lo, hi].
  /// \pre lo <= hi
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);
  int uniform_int(int lo, int hi);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli draw.
  bool chance(double p);

  /// Pick an index weighted by the given non-negative weights.
  /// \pre weights non-empty, at least one weight > 0
  std::size_t pick_weighted(const std::vector<double>& weights);

  /// Derive an independent child generator (for splitting streams).
  Rng split();

 private:
  std::uint64_t state_;
};

}  // namespace maxev
