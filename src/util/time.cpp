#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace maxev {

namespace {

std::string render_ps(std::int64_t ps) {
  const char* unit = "ps";
  double v = static_cast<double>(ps);
  const double a = std::abs(v);
  if (a >= 1e12) {
    v *= 1e-12;
    unit = "s";
  } else if (a >= 1e9) {
    v *= 1e-9;
    unit = "ms";
  } else if (a >= 1e6) {
    v *= 1e-6;
    unit = "us";
  } else if (a >= 1e3) {
    v *= 1e-3;
    unit = "ns";
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g%s", v, unit);
  return buf;
}

}  // namespace

Duration Duration::from_seconds(double s) {
  return Duration::ps(static_cast<std::int64_t>(std::llround(s * 1e12)));
}

std::string Duration::to_string() const { return render_ps(ps_); }

std::string TimePoint::to_string() const { return render_ps(ps_); }

}  // namespace maxev
