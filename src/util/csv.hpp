#pragma once

#include <fstream>
#include <string>
#include <vector>

/// \file csv.hpp
/// Minimal CSV emission for benchmark series (Fig. 5 curves, Fig. 6 traces).

namespace maxev {

/// Writes rows of a CSV file; cells are escaped when they contain commas,
/// quotes or newlines. The file is flushed and closed on destruction (RAII).
class CsvWriter {
 public:
  /// Opens \p path for writing and emits \p header as the first row when
  /// non-empty. Throws maxev::Error if the file cannot be opened.
  explicit CsvWriter(const std::string& path,
                     const std::vector<std::string>& header = {});

  /// Emit one row of preformatted cells.
  void row(const std::vector<std::string>& cells);

  /// Convenience: emit one row of doubles with %.9g formatting.
  void row_numeric(const std::vector<double>& cells);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace maxev
