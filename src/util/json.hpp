#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file json.hpp
/// A minimal streaming JSON writer for the benchmark binaries' machine-
/// readable output (scripts/bench_report.sh, BENCH_<n>.json). Handles
/// nesting, comma placement and string escaping; numbers are emitted with
/// enough precision to round-trip doubles.

namespace maxev {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(const std::string& k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The serialized document. \pre every container has been closed.
  [[nodiscard]] const std::string& str() const;

  /// Write the document to a file; throws maxev::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_;  // per open container: no member emitted yet
  bool pending_key_ = false;  // a "key": was just emitted
};

/// Extract a `--json <path>` / `--json=<path>` flag from argv, compacting
/// the array in place (argc is updated). Returns the path, empty when the
/// flag is absent. Shared by the bench binaries' --json modes.
[[nodiscard]] std::string extract_json_flag(int& argc, char** argv);

}  // namespace maxev
