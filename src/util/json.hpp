#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

/// \file json.hpp
/// A minimal streaming JSON writer for the benchmark binaries' machine-
/// readable output (scripts/bench_report.sh, BENCH_<n>.json), plus a small
/// recursive-descent parser (`json_parse`) producing a `JsonValue` tree for
/// the serve wire format (serve/wire.hpp). Handles nesting, comma placement
/// and string escaping; numbers are emitted with enough precision to
/// round-trip doubles, and integers that fit std::int64_t exactly survive
/// a parse round-trip without floating-point loss.

namespace maxev {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  /// Emit a JSON null.
  JsonWriter& null_value();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(const std::string& k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The serialized document. \pre every container has been closed.
  [[nodiscard]] const std::string& str() const;

  /// Write the document to a file; throws maxev::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_;  // per open container: no member emitted yet
  bool pending_key_ = false;  // a "key": was just emitted
};

/// Extract a `--json <path>` / `--json=<path>` flag from argv, compacting
/// the array in place (argc is updated). Returns the path, empty when the
/// flag is absent. Shared by the bench binaries' --json modes.
[[nodiscard]] std::string extract_json_flag(int& argc, char** argv);

/// Parsed JSON document node. Objects keep their members in an ordered map
/// (deterministic iteration); numbers remember whether the source literal
/// was an exact std::int64_t so picosecond timestamps survive untouched.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  /// True for numbers whose literal was integral and fits std::int64_t.
  [[nodiscard]] bool is_int64() const { return is_number() && exact_int_; }

  /// Checked accessors; throw maxev::Error naming the expected kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array access. size() is 0 for non-arrays/objects.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const JsonValue& operator[](std::size_t i) const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;

  /// Object access: find() returns nullptr when the key is absent, at()
  /// throws maxev::Error naming the missing key.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, JsonValue>& members() const;

  // Construction (used by the parser; handy for tests too).
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue integer(std::int64_t i);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool exact_int_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
/// Throws maxev::Error with a byte offset on malformed input.
[[nodiscard]] JsonValue json_parse(std::string_view text);

/// Serialize a JsonValue tree back to compact JSON text. Object members are
/// emitted in map order (alphabetical), so dump(parse(dump(v))) is stable.
[[nodiscard]] std::string json_dump(const JsonValue& v);

}  // namespace maxev
