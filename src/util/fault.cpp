#include "util/fault.hpp"

#if defined(MAXEV_FAULTS)

#include <atomic>
#include <map>
#include <mutex>
#include <new>

namespace maxev::util {

namespace {

struct PointState {
  std::uint64_t hits = 0;
  bool armed = false;
  std::uint64_t fire_at = 0;  ///< absolute hit count that triggers
  FaultInjector::Kind kind = FaultInjector::Kind::kError;
};

// Function-local statics: fault points may fire during static init/teardown
// of test fixtures; construct-on-first-use avoids ordering hazards.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, PointState>& registry() {
  static std::map<std::string, PointState> r;
  return r;
}

std::atomic<int>& armed_count() {
  static std::atomic<int> n{0};
  return n;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool FaultInjector::active() noexcept {
  return armed_count().load(std::memory_order_relaxed) > 0;
}

void FaultInjector::arm(const std::string& point, std::uint64_t nth,
                        Kind kind) {
  if (nth == 0) throw Error("FaultInjector::arm: nth must be >= 1");
  std::lock_guard<std::mutex> lock(registry_mutex());
  PointState& st = registry()[point];
  if (!st.armed) armed_count().fetch_add(1, std::memory_order_relaxed);
  st.armed = true;
  st.fire_at = st.hits + nth;
  st.kind = kind;
}

void FaultInjector::arm_seeded(const std::string& point, std::uint64_t seed,
                               std::uint64_t window, Kind kind) {
  if (window == 0) throw Error("FaultInjector::arm_seeded: empty window");
  arm(point, 1 + splitmix64(seed) % window, kind);
}

void FaultInjector::disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(point);
  if (it == registry().end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count().fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (auto& [name, st] : registry())
    if (st.armed) armed_count().fetch_sub(1, std::memory_order_relaxed);
  registry().clear();
}

std::uint64_t FaultInjector::hits(const std::string& point) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(point);
  return it == registry().end() ? 0 : it->second.hits;
}

void FaultInjector::on_hit(const char* point) {
  Kind kind = Kind::kError;
  std::uint64_t hit = 0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    PointState& st = registry()[point];
    ++st.hits;
    hit = st.hits;
    if (st.armed && st.hits >= st.fire_at) {
      st.armed = false;  // one-shot
      armed_count().fetch_sub(1, std::memory_order_relaxed);
      fire = true;
      kind = st.kind;
    }
  }
  if (!fire) return;
  if (kind == Kind::kBadAlloc) throw std::bad_alloc();
  throw FaultInjectedError(std::string("injected fault at '") + point +
                           "' (hit " + std::to_string(hit) + ")");
}

}  // namespace maxev::util

#endif  // MAXEV_FAULTS
