#pragma once

#include <compare>
#include <cstdint>
#include <string>

/// \file time.hpp
/// Simulated-time arithmetic for the whole library.
///
/// All simulated time is an integer count of picoseconds. Integer time makes
/// evolution instants exactly comparable between the event-driven baseline
/// simulation and the dynamically computed equivalent model, which is the
/// accuracy property the reproduced paper claims ("evolution instants of both
/// models have been compared and, as expected, remain the same").

namespace maxev {

/// A signed span of simulated time, in picoseconds.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors for the usual units.
  static constexpr Duration ps(std::int64_t v) { return Duration{v}; }
  static constexpr Duration ns(std::int64_t v) { return Duration{v * 1'000}; }
  static constexpr Duration us(std::int64_t v) { return Duration{v * 1'000'000}; }
  static constexpr Duration ms(std::int64_t v) { return Duration{v * 1'000'000'000}; }
  static constexpr Duration sec(std::int64_t v) { return Duration{v * 1'000'000'000'000}; }
  static Duration from_seconds(double s);

  /// Raw picosecond count.
  [[nodiscard]] constexpr std::int64_t count() const { return ps_; }
  [[nodiscard]] double seconds() const { return static_cast<double>(ps_) * 1e-12; }
  [[nodiscard]] double micros() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] double nanos() const { return static_cast<double>(ps_) * 1e-3; }

  [[nodiscard]] constexpr bool is_zero() const { return ps_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ps_ < 0; }

  constexpr Duration& operator+=(Duration d) { ps_ += d.ps_; return *this; }
  constexpr Duration& operator-=(Duration d) { ps_ -= d.ps_; return *this; }
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ps_ + b.ps_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ps_ - b.ps_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t n) { return Duration{a.ps_ * n}; }
  friend constexpr Duration operator*(std::int64_t n, Duration a) { return Duration{a.ps_ * n}; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

  /// Human-readable rendering with an auto-selected unit, e.g. "71.429us".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t v) : ps_(v) {}
  std::int64_t ps_ = 0;
};

/// An instant on the simulated timeline (picoseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint at_ps(std::int64_t v) { return TimePoint{v}; }
  static constexpr TimePoint origin() { return TimePoint{0}; }

  [[nodiscard]] constexpr std::int64_t count() const { return ps_; }
  [[nodiscard]] double seconds() const { return static_cast<double>(ps_) * 1e-12; }
  [[nodiscard]] double micros() const { return static_cast<double>(ps_) * 1e-6; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.ps_ + d.count()};
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.ps_ - d.count()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::ps(a.ps_ - b.ps_);
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t v) : ps_(v) {}
  std::int64_t ps_ = 0;
};

namespace literals {
constexpr Duration operator""_ps(unsigned long long v) { return Duration::ps(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ns(unsigned long long v) { return Duration::ns(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::us(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::ms(static_cast<std::int64_t>(v)); }
}  // namespace literals

}  // namespace maxev
