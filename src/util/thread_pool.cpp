#include "util/thread_pool.hpp"

#include <atomic>
#include <memory>
#include <utility>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace maxev::util {

/// Shared state of one parallel_for: an index dispenser plus per-index
/// exception slots. Which thread runs which index is scheduling noise; the
/// slots keep the observable outcome (results keyed by index, first-index
/// exception) deterministic anyway.
struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> finished{0};
  std::vector<std::exception_ptr> errors;
  std::mutex mu;
  std::condition_variable done;

  /// Claim and run indices until the dispenser is exhausted. Runs on
  /// workers and on the calling thread alike.
  void run() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*body)(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      if (finished.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        // Lock before notifying so the waiter cannot miss the wakeup
        // between its predicate check and its wait.
        { std::lock_guard<std::mutex> lk(mu); }
        done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  MAXEV_FAULT_POINT("pool.submit");
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = packaged->get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_)
      throw Error("ThreadPool::submit: pool is shutting down");
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  MAXEV_FAULT_POINT("pool.parallel_for");
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    // Degenerate barrier: run inline (exceptions propagate directly).
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->body = &body;
  batch->n = n;
  batch->errors.resize(n);

  // One helper per worker, capped by the index count; a helper that loses
  // the race to the dispenser returns immediately. Late helpers popping
  // after completion are harmless for the same reason — the shared_ptr
  // keeps the batch alive until the last one retires.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_)
      throw Error("ThreadPool::parallel_for: pool is shutting down");
    for (std::size_t h = 0; h < helpers; ++h)
      queue_.emplace_back([batch] { batch->run(); });
  }
  cv_.notify_all();

  // The calling thread participates — this is what makes nested
  // parallel_for (a pool task fanning out again) deadlock-free: the nested
  // caller can always finish its own batch without any free worker.
  batch->run();

  {
    std::unique_lock<std::mutex> lk(batch->mu);
    batch->done.wait(lk, [&] {
      return batch->finished.load(std::memory_order_acquire) >= n;
    });
  }

  for (std::size_t i = 0; i < n; ++i)
    if (batch->errors[i]) std::rethrow_exception(batch->errors[i]);
}

std::size_t ThreadPool::resolve(int threads) {
  if (threads > 0) return static_cast<std::size_t>(threads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace maxev::util
