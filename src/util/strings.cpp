#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace maxev {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string with_commas(std::int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return {out.rbegin(), out.rend()};
}

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      s += ' ' + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    s += '\n';
    return s;
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::optional<std::uint64_t> parse_count(const char* s) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  std::uint64_t v = 0;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return std::nullopt;  // signs and junk included
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    v = v * 10 + digit;
  }
  return v > 0 ? std::optional<std::uint64_t>(v) : std::nullopt;
}

}  // namespace maxev
