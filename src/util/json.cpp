#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace maxev {

namespace {

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;  // value directly follows its "key":
    return;
  }
  if (first_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (first_.empty()) throw Error("JsonWriter: end_object with no container");
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (first_.empty()) throw Error("JsonWriter: end_array with no container");
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += escaped(k);
  out_ += ':';
  pending_key_ = true;  // the next value/container follows without a comma
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!first_.empty()) throw Error("JsonWriter: unclosed container");
  return out_;
}

void JsonWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("JsonWriter: cannot open '" + path + "'");
  f << str() << '\n';
  if (!f) throw Error("JsonWriter: write to '" + path + "' failed");
}

std::string extract_json_flag(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return path;
}

}  // namespace maxev
