#include "util/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace maxev {

namespace {

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;  // value directly follows its "key":
    return;
  }
  if (first_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (first_.empty()) throw Error("JsonWriter: end_object with no container");
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (first_.empty()) throw Error("JsonWriter: end_array with no container");
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += escaped(k);
  out_ += ':';
  pending_key_ = true;  // the next value/container follows without a comma
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  comma();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!first_.empty()) throw Error("JsonWriter: unclosed container");
  return out_;
}

void JsonWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("JsonWriter: cannot open '" + path + "'");
  f << str() << '\n';
  if (!f) throw Error("JsonWriter: write to '" + path + "' failed");
}

// ----------------------------------------------------------- JsonValue ----

namespace {

[[noreturn]] void kind_error(const char* want, JsonValue::Kind got) {
  static const char* names[] = {"null", "bool", "number", "string", "array",
                                "object"};
  throw Error(std::string("JsonValue: expected ") + want + ", got " +
              names[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_double() const {
  if (!is_number()) kind_error("number", kind_);
  return exact_int_ ? static_cast<double>(int_) : num_;
}

std::int64_t JsonValue::as_int64() const {
  if (!is_int64()) kind_error("integer", kind_);
  return int_;
}

std::uint64_t JsonValue::as_uint64() const {
  const std::int64_t v = as_int64();
  if (v < 0) throw Error("JsonValue: expected non-negative integer");
  return static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error("string", kind_);
  return str_;
}

std::size_t JsonValue::size() const {
  if (is_array()) return items_.size();
  if (is_object()) return members_.size();
  return 0;
}

const JsonValue& JsonValue::operator[](std::size_t i) const {
  if (!is_array()) kind_error("array", kind_);
  if (i >= items_.size())
    throw Error("JsonValue: array index " + std::to_string(i) +
                " out of range (size " + std::to_string(items_.size()) + ")");
  return items_[i];
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (!is_array()) kind_error("array", kind_);
  return items_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) kind_error("object", kind_);
  const auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw Error("JsonValue: missing key '" + key + "'");
  return *v;
}

const std::map<std::string, JsonValue>& JsonValue::members() const {
  if (!is_object()) kind_error("object", kind_);
  return members_;
}

JsonValue JsonValue::null() { return {}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::integer(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.exact_int_ = true;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

// ----------------------------------------------------------- json_parse ----

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json_parse: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      JsonValue v = parse_value();
      if (!members.emplace(std::move(key), std::move(v)).second)
        fail("duplicate object key");
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue::object(std::move(members));
      if (c != ',') { --pos_; fail("expected ',' or '}'"); }
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue::array(std::move(items));
      if (c != ',') { --pos_; fail("expected ',' or ']'"); }
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape character");
      }
    }
  }

  std::string parse_unicode_escape() {
    // The writer only emits \u00xx for control characters; decode the BMP
    // generally (UTF-8) and reject surrogates, which we never produce.
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape unsupported");
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("invalid number");
    bool integral = true;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("invalid number: digit required after '.'");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("invalid number: digit required in exponent");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string lit(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(lit.c_str(), &end, 10);
      if (errno == 0 && end == lit.c_str() + lit.size())
        return JsonValue::integer(static_cast<std::int64_t>(v));
      // Falls through for out-of-range integers: keep them as doubles.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(lit.c_str(), &end);
    if (end != lit.c_str() + lit.size()) fail("invalid number literal");
    return JsonValue::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

namespace {

void dump_into(const JsonValue& v, JsonWriter& w) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: w.null_value(); break;
    case JsonValue::Kind::kBool: w.value(v.as_bool()); break;
    case JsonValue::Kind::kNumber:
      if (v.is_int64())
        w.value(v.as_int64());
      else
        w.value(v.as_double());
      break;
    case JsonValue::Kind::kString: w.value(v.as_string()); break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& item : v.items()) dump_into(item, w);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [key, member] : v.members()) {
        w.key(key);
        dump_into(member, w);
      }
      w.end_object();
      break;
  }
}

}  // namespace

std::string json_dump(const JsonValue& v) {
  JsonWriter w;
  dump_into(v, w);
  return w.str();
}

std::string extract_json_flag(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return path;
}

}  // namespace maxev
