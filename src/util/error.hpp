#pragma once

#include <memory>
#include <stdexcept>
#include <string>

/// \file error.hpp
/// Library-wide exception hierarchy. All failures detectable at model
/// construction or execution time throw one of these; they all derive from
/// maxev::Error so callers can catch the library root. Descriptions that
/// violate the paper's structural assumptions (Section I: statically
/// scheduled, no preemption; Section III-C: no zero-lag dependency cycles)
/// are rejected here at construction time, not discovered as wrong instants.

namespace maxev {

namespace sim {
struct RunDiagnostics;  // sim/diagnostics.hpp; carried opaquely below
}

/// Root of the maxev exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An architecture or graph description violates a structural rule
/// (e.g. a channel with two readers, a zero-lag cycle in a TDG).
class DescriptionError : public Error {
 public:
  using Error::Error;
};

/// Arithmetic left the representable range (max-plus ⊗ overflow, etc.).
class OverflowError : public Error {
 public:
  using Error::Error;
};

/// The simulation ended in an inconsistent state (stalled processes with
/// pending work) or was stopped by a run guard before finishing. Optionally
/// carries the structured sim::RunDiagnostics of the failed run so report
/// writers can render more than the message string.
class SimulationError : public Error {
 public:
  using Error::Error;
  SimulationError(const std::string& what,
                  std::shared_ptr<const sim::RunDiagnostics> diagnostics)
      : Error(what), diagnostics_(std::move(diagnostics)) {}

  /// Structured detail of the failed run; null when the throw site had
  /// none (construction-time failures, process exceptions).
  [[nodiscard]] const std::shared_ptr<const sim::RunDiagnostics>& diagnostics()
      const noexcept {
    return diagnostics_;
  }

 private:
  std::shared_ptr<const sim::RunDiagnostics> diagnostics_;
};

/// Rethrow the in-flight exception with "<context>: " prefixed to its
/// message, preserving the concrete maxev type (and a SimulationError's
/// diagnostics payload). Unknown std::exception subtypes collapse to
/// maxev::Error; non-std exceptions pass through untouched. Call only from
/// a catch block:
///
///     try { run_cell(); }
///     catch (...) { rethrow_with_context("cell (didactic, baseline)"); }
[[noreturn]] inline void rethrow_with_context(const std::string& context) {
  try {
    throw;
  } catch (const SimulationError& e) {
    throw SimulationError(context + ": " + e.what(), e.diagnostics());
  } catch (const OverflowError& e) {
    throw OverflowError(context + ": " + e.what());
  } catch (const DescriptionError& e) {
    throw DescriptionError(context + ": " + e.what());
  } catch (const Error& e) {
    throw Error(context + ": " + e.what());
  } catch (const std::exception& e) {
    throw Error(context + ": " + e.what());
  } catch (...) {
    throw;  // no message to prefix; keep the original object
  }
}

}  // namespace maxev
