#pragma once

#include <stdexcept>
#include <string>

/// \file error.hpp
/// Library-wide exception hierarchy. All failures detectable at model
/// construction or execution time throw one of these; they all derive from
/// maxev::Error so callers can catch the library root. Descriptions that
/// violate the paper's structural assumptions (Section I: statically
/// scheduled, no preemption; Section III-C: no zero-lag dependency cycles)
/// are rejected here at construction time, not discovered as wrong instants.

namespace maxev {

/// Root of the maxev exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An architecture or graph description violates a structural rule
/// (e.g. a channel with two readers, a zero-lag cycle in a TDG).
class DescriptionError : public Error {
 public:
  using Error::Error;
};

/// Arithmetic left the representable range (max-plus ⊗ overflow, etc.).
class OverflowError : public Error {
 public:
  using Error::Error;
};

/// The simulation ended in an inconsistent state (stalled processes with
/// pending work), typically from an infeasible static schedule.
class SimulationError : public Error {
 public:
  using Error::Error;
};

}  // namespace maxev
