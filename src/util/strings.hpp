#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

/// \file strings.hpp
/// printf-style formatting and fixed-width table rendering for the
/// paper-style console reports produced by the benchmark binaries.

namespace maxev {

/// printf into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Render an integer with thousands separators, e.g. 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(std::int64_t v);

/// Parse a strictly positive decimal count (a workload size from argv).
/// nullopt on anything else: empty, signs, trailing junk, zero, overflow.
/// Shared by the example binaries' optional workload-bound argument.
[[nodiscard]] std::optional<std::uint64_t> parse_count(const char* s);

/// A simple console table: fixed column set, auto-sized column widths,
/// ASCII rules. Used by the bench binaries to print the paper's tables.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render the full table to a string (including header and rules).
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace maxev
