#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace maxev {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

std::string Summary::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.6g sd=%.3g min=%.6g med=%.6g max=%.6g", count,
                mean, stddev, min, median, max);
  return buf;
}

double median_of(std::vector<double> sample) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const std::size_t n = sample.size();
  if (n % 2 == 1) return sample[n / 2];
  return 0.5 * (sample[n / 2 - 1] + sample[n / 2]);
}

Summary summarize(std::vector<double> sample) {
  Summary s;
  if (sample.empty()) return s;
  Accumulator acc;
  for (double x : sample) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = median_of(std::move(sample));
  return s;
}

}  // namespace maxev
