#include "core/compiled.hpp"

#include <utility>

#include "tdg/simplify.hpp"
#include "util/error.hpp"

namespace maxev::core {

CompiledKey CompiledKey::make(model::DescPtr desc, std::vector<bool> group,
                              bool fold, std::size_t pad_nodes) {
  if (desc == nullptr) throw DescriptionError("CompiledKey: null description");
  if (group.empty()) group.assign(desc->functions().size(), true);
  group.resize(desc->functions().size(), false);
  return CompiledKey{std::move(desc), std::move(group), fold, pad_nodes};
}

std::size_t hash_value(const CompiledKey& key) {
  // Consistent with operator== (pointer identity implies structural
  // equality); boost-style combine.
  std::size_t h = model::structural_hash(*key.desc);
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(key.group.size());
  std::size_t bits = 0;
  for (std::size_t i = 0; i < key.group.size(); ++i) {
    bits = (bits << 1) | (key.group[i] ? 1u : 0u);
    if (i % 61 == 60) {
      mix(bits);
      bits = 0;
    }
  }
  mix(bits);
  mix(key.fold ? 0x1234u : 0x4321u);
  mix(key.pad_nodes);
  return h;
}

CompiledPtr compile_abstraction(const CompiledKey& key) {
  if (key.desc == nullptr)
    throw DescriptionError("compile_abstraction: null description");
  auto out = std::make_shared<CompiledAbstraction>();
  out->key = key;

  tdg::DerivedTdg derived = tdg::derive_tdg(*key.desc, key.group);
  tdg::Graph g = std::move(derived.graph);
  if (key.fold) g = tdg::fold_pass_through(g);
  if (key.pad_nodes > 0) g = tdg::pad_graph(g, key.pad_nodes);
  g.freeze();
  out->graph = std::move(g);
  out->program = tdg::Program::compile(out->graph);
  out->inputs = std::move(derived.inputs);
  out->outputs = std::move(derived.outputs);
  return out;
}

CompiledPtr obtain_compiled(CompiledProvider* provider,
                            const CompiledKey& key) {
  if (provider != nullptr) return provider->get(key);
  return compile_abstraction(key);
}

}  // namespace maxev::core
