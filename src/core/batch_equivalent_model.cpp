#include "core/batch_equivalent_model.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "tdg/simplify.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace maxev::core {

using model::ChannelKind;
using model::Token;

namespace {

/// Validate that the merged description's slice at \p span is a structural
/// replication of \p base under the "<name>/" namespace prefix — the
/// per-member generalization of the PR-4 N-fold validator, checking the
/// same surface as model::structurally_equal (table blocks, prefixed
/// names, resource policies/rates, channel kinds/capacities, function body
/// sizes, source token counts). Workload/schedule std::functions cannot be
/// compared; the study layer guarantees them by handing every member the
/// same shared description (docs/DESIGN.md §10).
void validate_replication(const model::ArchitectureDesc& merged,
                          const model::ArchitectureDesc& base,
                          const std::string& name,
                          const BatchEquivalentModel::InstanceSpan& span) {
  const std::string prefix = name + "/";
  const auto mismatch = [&](const std::string& what) {
    throw DescriptionError(
        "BatchEquivalentModel: merged description disagrees with the group "
        "base on " + what + " of instance '" + name + "'");
  };
  if (span.res + base.resources().size() > merged.resources().size() ||
      span.ch + base.channels().size() > merged.channels().size() ||
      span.fn + base.functions().size() > merged.functions().size() ||
      span.src + base.sources().size() > merged.sources().size() ||
      span.sink + base.sinks().size() > merged.sinks().size())
    throw DescriptionError(
        "BatchEquivalentModel: instance '" + name +
        "' span exceeds the merged description's tables");
  for (std::size_t r = 0; r < base.resources().size(); ++r) {
    const auto& m = merged.resources()[span.res + r];
    const auto& b = base.resources()[r];
    if (m.name != prefix + b.name || m.policy != b.policy ||
        m.ops_per_second != b.ops_per_second)
      mismatch("resource '" + b.name + "'");
  }
  for (std::size_t c = 0; c < base.channels().size(); ++c) {
    const auto& m = merged.channels()[span.ch + c];
    const auto& b = base.channels()[c];
    if (m.name != prefix + b.name || m.kind != b.kind ||
        m.capacity != b.capacity)
      mismatch("channel '" + b.name + "'");
  }
  for (std::size_t f = 0; f < base.functions().size(); ++f) {
    const auto& m = merged.functions()[span.fn + f];
    const auto& b = base.functions()[f];
    if (m.name != prefix + b.name || m.body.size() != b.body.size())
      mismatch("function '" + b.name + "'");
  }
  for (std::size_t s = 0; s < base.sources().size(); ++s) {
    const auto& m = merged.sources()[span.src + s];
    const auto& b = base.sources()[s];
    if (m.name != prefix + b.name || m.count != b.count)
      mismatch("source '" + b.name + "'");
  }
}

}  // namespace

BatchEquivalentModel::~BatchEquivalentModel() = default;

BatchEquivalentModel::BatchEquivalentModel(model::DescPtr merged,
                                           model::DescPtr base,
                                           std::vector<std::string> names,
                                           std::vector<bool> group)
    : BatchEquivalentModel(std::move(merged), std::move(base),
                           std::move(names), std::move(group), Options{}) {}

BatchEquivalentModel::BatchEquivalentModel(model::DescPtr merged,
                                           model::DescPtr base,
                                           std::vector<std::string> names,
                                           std::vector<bool> group,
                                           Options opts)
    : BatchEquivalentModel(
          std::move(merged),
          [&]() -> std::vector<GroupSpec> {
            if (base == nullptr)
              throw DescriptionError("BatchEquivalentModel: null description");
            GroupSpec spec;
            spec.base = base;
            spec.group = std::move(group);
            spec.names = std::move(names);
            // The homogeneous layout: instance i occupies the contiguous
            // block [i * n, (i + 1) * n) of every merged table.
            for (std::size_t i = 0; i < spec.names.size(); ++i) {
              InstanceSpan span;
              span.fn = i * base->functions().size();
              span.ch = i * base->channels().size();
              span.res = i * base->resources().size();
              span.src = i * base->sources().size();
              span.sink = i * base->sinks().size();
              spec.spans.push_back(span);
            }
            return {std::move(spec)};
          }(),
          std::move(opts)) {
  // The N-fold shape promised by the convenience signature: the merged
  // tables are *exactly* N base blocks (the grouped constructor only
  // bounds-checks each span, since groups may interleave with a
  // remainder).
  const model::ArchitectureDesc& bd = *groups_[0].base;
  const std::size_t width = groups_[0].names.size();
  if (desc_->functions().size() != width * bd.functions().size() ||
      desc_->channels().size() != width * bd.channels().size() ||
      desc_->resources().size() != width * bd.resources().size() ||
      desc_->sources().size() != width * bd.sources().size() ||
      desc_->sinks().size() != width * bd.sinks().size())
    throw DescriptionError(
        "BatchEquivalentModel: merged description is not an N-fold "
        "replication of the base description");
}

BatchEquivalentModel::BatchEquivalentModel(model::DescPtr merged,
                                           std::vector<GroupSpec> groups,
                                           Options opts)
    : desc_(std::move(merged)) {
  if (desc_ == nullptr)
    throw DescriptionError("BatchEquivalentModel: null description");
  if (groups.empty())
    throw DescriptionError("BatchEquivalentModel: no sub-batches");

  groups_.reserve(groups.size());
  for (GroupSpec& spec : groups) {
    if (spec.base == nullptr)
      throw DescriptionError("BatchEquivalentModel: null group base");
    if (spec.names.empty() || spec.names.size() != spec.spans.size())
      throw DescriptionError(
          "BatchEquivalentModel: group needs matching member names/spans");
    Group g;
    g.base = std::move(spec.base);
    g.gflags = std::move(spec.group);
    if (g.gflags.empty()) g.gflags.assign(g.base->functions().size(), true);
    g.gflags.resize(g.base->functions().size(), false);
    g.names = std::move(spec.names);
    g.spans = std::move(spec.spans);
    for (std::size_t m = 0; m < g.names.size(); ++m)
      validate_replication(*desc_, *g.base, g.names[m], g.spans[m]);
    groups_.push_back(std::move(g));
  }

  // Members must occupy pairwise-disjoint blocks of the merged tables:
  // overlapping spans would pass each per-member replication check yet
  // wire two gated readers / emission processes onto one channel. Checked
  // on the function table (every instance owns >= 1 function, and the
  // other tables follow the same composition layout).
  std::vector<std::pair<std::size_t, std::size_t>> fn_blocks;
  for (const Group& g : groups_)
    for (const InstanceSpan& span : g.spans)
      fn_blocks.emplace_back(span.fn, span.fn + g.base->functions().size());
  std::sort(fn_blocks.begin(), fn_blocks.end());
  for (std::size_t i = 1; i < fn_blocks.size(); ++i)
    if (fn_blocks[i].first < fn_blocks[i - 1].second)
      throw DescriptionError(
          "BatchEquivalentModel: sub-batch member spans overlap");

  // Simulate everything outside the abstracted functions from the merged
  // description — the identical runtime the merged equivalent model uses,
  // so kernel behaviour (and every per-instance trace) matches it bit for
  // bit. Skip flags: every group member's abstracted functions at its
  // span, plus the isolated remainder's merged-level flags.
  std::vector<bool> merged_skip(desc_->functions().size(), false);
  for (const Group& g : groups_)
    for (const InstanceSpan& span : g.spans)
      for (std::size_t f = 0; f < g.gflags.size(); ++f)
        if (g.gflags[f]) merged_skip[span.fn + f] = true;
  if (!opts.isolated_group.empty()) {
    if (opts.isolated_group.size() != desc_->functions().size())
      throw DescriptionError(
          "BatchEquivalentModel: isolated_group must be merged-sized");
    for (std::size_t f = 0; f < merged_skip.size(); ++f) {
      if (!opts.isolated_group[f]) continue;
      if (merged_skip[f])
        throw DescriptionError(
            "BatchEquivalentModel: isolated_group overlaps a sub-batch");
      merged_skip[f] = true;
    }
  }
  runtime_ =
      std::make_unique<model::ModelRuntime>(desc_, merged_skip, opts.observe);

  for (std::size_t g = 0; g < groups_.size(); ++g) build_group(g, opts);
  build_isolated(opts);

  // Iteration fronts drain at timestep boundaries: every instance's feeds
  // of one simulated instant accumulate before one batched propagation —
  // one hook flushing every sub-batch engine (the isolated remainder's
  // inline engine propagates eagerly and needs no flush).
  //
  // With >= 2 groups and Options::threads > 1 the drain splits into a
  // parallel compute phase (each engine flushes on its own worker with
  // callbacks deferred — groups share no frames, and every observer an
  // engine touches during flush is engine-private) and a serial publish
  // phase firing the deferred callbacks in group order. Callbacks may
  // resume writer coroutines that feed an engine again; those feeds land
  // on its worklist and the hook's `true` return re-invokes it at the
  // same instant — the per-engine callback sequence, and with it every
  // per-instance trace, matches the serial drain exactly (docs/DESIGN.md
  // §11).
  const std::size_t drain_threads =
      opts.threads == 1 ? 1 : util::ThreadPool::resolve(opts.threads);
  if (drain_threads > 1 && groups_.size() > 1) {
    pool_ = std::make_unique<util::ThreadPool>(
        std::min(drain_threads, groups_.size()) - 1);  // caller participates
    drained_.assign(groups_.size(), 0);
    runtime_->kernel().set_timestep_hook([this] {
      pool_->parallel_for(groups_.size(), [this](std::size_t g) {
        drained_[g] = groups_[g].engine->flush_deferred() ? 1 : 0;
      });
      bool any = false;
      for (std::size_t g = 0; g < groups_.size(); ++g) {
        groups_[g].engine->fire_deferred();
        any = any || drained_[g] != 0;
      }
      return any;
    });
  } else {
    runtime_->kernel().set_timestep_hook([this] {
      bool any = false;
      for (Group& g : groups_) any = g.engine->flush() || any;
      return any;
    });
  }

  for (std::size_t i = 0; i < inputs_.size(); ++i) wire_input(i);
  for (std::size_t i = 0; i < outputs_.size(); ++i) wire_output(i);
  for (std::size_t i = 0; i < iso_inputs_.size(); ++i) wire_iso_input(i);
  for (std::size_t i = 0; i < iso_outputs_.size(); ++i) wire_iso_output(i);
}

void BatchEquivalentModel::build_group(std::size_t gi, const Options& opts) {
  Group& grp = groups_[gi];
  const model::ArchitectureDesc& bd = *grp.base;
  const std::size_t width = grp.names.size();

  // Obtain the group's compiled base abstraction once; every member shares
  // the resulting program (one tdg::Program per sub-batch). A provider
  // additionally deduplicates across groups, cells and runs.
  grp.compiled = obtain_compiled(
      opts.compiled,
      CompiledKey{grp.base, grp.gflags, opts.fold, opts.pad_nodes});

  tdg::BatchEngine::Options eng_opts;
  eng_opts.opcode_dispatch = opts.opcode_dispatch;
  eng_opts.vector_drain = opts.vector_drain;
  eng_opts.instances.resize(width);
  for (std::size_t i = 0; i < width; ++i) {
    tdg::BatchEngine::InstanceSinks& sinks = eng_opts.instances[i];
    sinks.scope = grp.names[i] + "/";
    if (opts.observe) {
      sinks.instant_sink = &runtime_->mutable_instants();
      sinks.usage_sink = &runtime_->mutable_usage();
    }
  }
  if (opts.observe) {
    eng_opts.expected_iterations = opts.expected_iterations > 0
                                       ? opts.expected_iterations
                                       : bd.max_source_tokens();
  }
  grp.engine = std::make_unique<tdg::BatchEngine>(
      grp.compiled->graph, grp.compiled->program, std::move(eng_opts));

  // Resolve boundary nodes by name once (fold/pad preserve names; the node
  // ids are shared by every member).
  auto resolve = [&grp](const std::string& name) {
    if (name.empty()) return tdg::kNoNode;
    const tdg::NodeId n = grp.compiled->graph.find(name);
    if (n == tdg::kNoNode)
      throw Error("BatchEquivalentModel: boundary node '" + name +
                  "' missing after graph transforms");
    return n;
  };

  grp.in_begin = inputs_.size();
  grp.n_in = grp.compiled->inputs.size();
  grp.out_begin = outputs_.size();
  grp.n_out = grp.compiled->outputs.size();
  inputs_.reserve(inputs_.size() + width * grp.compiled->inputs.size());
  outputs_.reserve(outputs_.size() + width * grp.compiled->outputs.size());
  for (std::size_t i = 0; i < width; ++i) {
    const InstanceSpan& span = grp.spans[i];
    for (const auto& bi : grp.compiled->inputs) {
      InputState st;
      st.meta = bi;
      st.grp = gi;
      st.inst = i;
      st.src_base = static_cast<model::SourceId>(span.src);
      st.merged_channel =
          bi.channel + static_cast<model::ChannelId>(span.ch);
      st.u = resolve(bi.u_node);
      st.x = resolve(bi.x_node);
      st.xw = resolve(bi.xw_node);
      st.xr = resolve(bi.xr_node);
      inputs_.push_back(std::move(st));
    }
    for (const auto& bo : grp.compiled->outputs) {
      OutputState st;
      st.meta = bo;
      st.grp = gi;
      st.inst = i;
      st.src_base = static_cast<model::SourceId>(span.src);
      st.merged_channel =
          bo.channel + static_cast<model::ChannelId>(span.ch);
      st.offer = resolve(bo.offer_node);
      st.actual = resolve(bo.actual_node);
      st.xr_actual = resolve(bo.xr_actual_node);
      if (st.actual == st.offer) st.actual = tdg::kNoNode;  // single-node case
      outputs_.push_back(std::move(st));
    }
  }
}

void BatchEquivalentModel::build_isolated(const Options& opts) {
  bool any = false;
  for (const bool f : opts.isolated_group) any = any || f;
  if (!any) return;

  // The isolated remainder IS the merged path, scoped to the leftover
  // instances: one TDG derived from the merged description restricted to
  // their abstracted functions, evaluated by one inline tdg::Engine. Node
  // and trace names already carry the instance prefixes (they come from
  // the merged description), so the engine's sinks bind directly.
  // pad_nodes is per instance: the remainder graph spans
  // isolated_instances of them (the same accounting the fully-isolated
  // merged path applies N-fold).
  iso_compiled_ = obtain_compiled(
      opts.compiled,
      CompiledKey{desc_, opts.isolated_group, opts.fold,
                  opts.pad_nodes * opts.isolated_instances});

  tdg::Engine::Options eng_opts;
  eng_opts.opcode_dispatch = opts.opcode_dispatch;
  if (opts.observe) {
    eng_opts.instant_sink = &runtime_->mutable_instants();
    eng_opts.usage_sink = &runtime_->mutable_usage();
    eng_opts.expected_iterations = opts.expected_iterations > 0
                                       ? opts.expected_iterations
                                       : desc_->max_source_tokens();
  }
  iso_engine_ = std::make_unique<tdg::Engine>(iso_compiled_->graph,
                                              iso_compiled_->program, eng_opts);

  auto resolve = [this](const std::string& name) {
    if (name.empty()) return tdg::kNoNode;
    const tdg::NodeId n = iso_compiled_->graph.find(name);
    if (n == tdg::kNoNode)
      throw Error("BatchEquivalentModel: boundary node '" + name +
                  "' missing after graph transforms");
    return n;
  };

  iso_inputs_.reserve(iso_compiled_->inputs.size());
  for (const auto& bi : iso_compiled_->inputs) {
    IsoInputState st;
    st.meta = bi;
    st.u = resolve(bi.u_node);
    st.x = resolve(bi.x_node);
    st.xw = resolve(bi.xw_node);
    st.xr = resolve(bi.xr_node);
    iso_inputs_.push_back(std::move(st));
  }
  iso_outputs_.reserve(iso_compiled_->outputs.size());
  for (const auto& bo : iso_compiled_->outputs) {
    IsoOutputState st;
    st.meta = bo;
    st.offer = resolve(bo.offer_node);
    st.actual = resolve(bo.actual_node);
    st.xr_actual = resolve(bo.xr_actual_node);
    if (st.actual == st.offer) st.actual = tdg::kNoNode;  // single-node case
    iso_outputs_.push_back(std::move(st));
  }
}

void BatchEquivalentModel::wire_input(std::size_t idx) {
  InputState& st = inputs_[idx];
  tdg::BatchEngine* engine = groups_[st.grp].engine.get();
  model::ChannelRt* ch = runtime_->channel(st.merged_channel);
  if (ch == nullptr)
    throw Error("BatchEquivalentModel: input channel not constructed");

  if (!st.meta.fifo) {
    // Rendezvous input: gated reader. On each offer, feed u(k) and the
    // token attributes, then answer inline when the completion x_in(k) is
    // already computable (resolve_now — the inline-resume fast path);
    // otherwise park, and the deferred engine computes x_in(k) at the
    // timestep boundary, completing the rendezvous there — at the same
    // simulated instant a solo run would.
    engine->on_known(st.inst, st.x, [this, idx](std::uint64_t k, TimePoint t) {
      InputState& s = inputs_[idx];
      if (s.parked && s.parked_k == k) {
        s.parked = false;
        model::ChannelRt* c = runtime_->channel(s.merged_channel);
        c->rendezvous->resolve_gated(t);
      }
    });
    ch->rendezvous->set_gated_reader(
        [this, idx, engine](TimePoint offer,
                            const Token& tok) -> std::optional<TimePoint> {
          InputState& s = inputs_[idx];
          const std::uint64_t k = s.next_k++;
          // Token sources carry merged ids; the engine speaks base ids.
          engine->set_attrs(s.inst, tok.source - s.src_base, k, tok.attrs);
          engine->set_external(s.inst, s.u, k, offer);
          // Pre-existing value: a guard disconnected x from u in an
          // earlier front (no on_known will fire again for it).
          if (auto v = engine->value(s.inst, s.x, k)) return *v;
          // Inline fast path: every prerequisite of x_in(k) is known, so
          // compute it now and answer without a queued resume.
          if (auto v = engine->resolve_now(s.inst, s.x, k)) return *v;
          s.parked = true;
          s.parked_k = k;
          return std::nullopt;
        });
  } else {
    // FIFO input: write instants are observed live; a virtual reader pops
    // tokens at the computed read instants.
    st.ready = std::make_unique<sim::Event>(runtime_->kernel(),
                                            "vread:" + std::to_string(idx));
    engine->on_known(st.inst, st.xr, [this, idx](std::uint64_t, TimePoint) {
      inputs_[idx].ready->notify();
    });
    ch->fifo->on_write_complete(
        [this, idx, engine](std::uint64_t k, TimePoint t, const Token& tok) {
          InputState& s = inputs_[idx];
          engine->set_attrs(s.inst, tok.source - s.src_base, k, tok.attrs);
          engine->set_external(s.inst, s.xw, k, t);
        });
    runtime_->kernel().spawn(
        "vreader:" + desc_->channels()[st.merged_channel].name,
        [this, idx] { return virtual_fifo_reader_proc(idx); });
  }
}

sim::Process BatchEquivalentModel::virtual_fifo_reader_proc(std::size_t idx) {
  InputState& st = inputs_[idx];
  tdg::BatchEngine* engine = groups_[st.grp].engine.get();
  model::ChannelRt* ch = runtime_->channel(st.merged_channel);
  for (std::uint64_t k = 0;; ++k) {
    std::optional<TimePoint> t;
    while (!(t = engine->value(st.inst, st.xr, k)))
      co_await st.ready->wait();
    co_await runtime_->kernel().delay_until(*t);
    (void)co_await ch->fifo->read();
    st.consumed = k + 1;
    raise_retain_floor(st.grp, st.inst);
  }
}

void BatchEquivalentModel::wire_output(std::size_t idx) {
  OutputState& st = outputs_[idx];
  tdg::BatchEngine* engine = groups_[st.grp].engine.get();
  model::ChannelRt* ch = runtime_->channel(st.merged_channel);
  if (ch == nullptr)
    throw Error("BatchEquivalentModel: output channel not constructed");

  st.ready = std::make_unique<sim::Event>(runtime_->kernel(),
                                          "emit:" + std::to_string(idx));
  engine->on_known(st.inst, st.offer, [this, idx](std::uint64_t, TimePoint) {
    outputs_[idx].ready->notify();
  });

  if (!st.meta.fifo) {
    if (st.actual != tdg::kNoNode) {
      ch->rendezvous->on_transfer(
          [this, idx, engine](std::uint64_t k, TimePoint t, const Token&) {
            OutputState& s = outputs_[idx];
            engine->set_external(s.inst, s.actual, k, t);
          });
    }
  } else {
    ch->fifo->on_write_complete(
        [this, idx, engine](std::uint64_t k, TimePoint t, const Token&) {
          OutputState& s = outputs_[idx];
          engine->set_external(s.inst, s.actual, k, t);
        });
    ch->fifo->on_read_complete(
        [this, idx, engine](std::uint64_t k, TimePoint t, const Token&) {
          OutputState& s = outputs_[idx];
          engine->set_external(s.inst, s.xr_actual, k, t);
        });
  }

  runtime_->kernel().spawn(
      "emission:" + desc_->channels()[st.merged_channel].name,
      [this, idx] { return emission_proc(idx); });
}

sim::Process BatchEquivalentModel::emission_proc(std::size_t idx) {
  OutputState& st = outputs_[idx];
  tdg::BatchEngine* engine = groups_[st.grp].engine.get();
  model::ChannelRt* ch = runtime_->channel(st.merged_channel);
  for (std::uint64_t k = 0;; ++k) {
    std::optional<TimePoint> y;
    while (!(y = engine->value(st.inst, st.offer, k)))
      co_await st.ready->wait();

    // Build the output token from the stored provenance attributes, under
    // the merged source id (what the merged model's consumers see).
    Token tok;
    tok.k = k;
    tok.source = st.meta.provenance + st.src_base;
    if (auto attrs = engine->attrs_of(st.inst, st.meta.provenance, k))
      tok.attrs = *attrs;

    co_await runtime_->kernel().delay_until(*y);
    if (!st.meta.fifo) {
      co_await ch->rendezvous->write(tok);
    } else {
      co_await ch->fifo->write(tok);
    }
    st.emitted = k + 1;
    raise_retain_floor(st.grp, st.inst);
  }
}

void BatchEquivalentModel::raise_retain_floor(std::size_t grp,
                                              std::size_t inst) {
  // Per-member floor: a member's frames may be reclaimed once every one of
  // *its* boundary consumers has moved past them; the group's shared arena
  // additionally waits for every other member (BatchEngine takes the
  // minimum across lanes). A group's boundary states are member-major
  // contiguous spans — this runs per emitted/consumed token and must not
  // scan the whole batch.
  const Group& g = groups_[grp];
  std::uint64_t floor = std::numeric_limits<std::uint64_t>::max();
  bool any = false;
  for (std::size_t b = g.out_begin + inst * g.n_out;
       b < g.out_begin + (inst + 1) * g.n_out; ++b) {
    floor = std::min(floor, outputs_[b].emitted);
    any = true;
  }
  for (std::size_t b = g.in_begin + inst * g.n_in;
       b < g.in_begin + (inst + 1) * g.n_in; ++b) {
    if (!inputs_[b].meta.fifo) continue;
    floor = std::min(floor, inputs_[b].consumed);
    any = true;
  }
  if (any) g.engine->set_retain_floor(inst, floor);
}

void BatchEquivalentModel::wire_iso_input(std::size_t idx) {
  IsoInputState& st = iso_inputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.meta.channel);
  if (ch == nullptr)
    throw Error("BatchEquivalentModel: isolated input channel not constructed");

  if (!st.meta.fifo) {
    iso_engine_->on_known(st.x, [this, idx](std::uint64_t k, TimePoint t) {
      IsoInputState& s = iso_inputs_[idx];
      if (s.parked && s.parked_k == k) {
        s.parked = false;
        model::ChannelRt* c = runtime_->channel(s.meta.channel);
        c->rendezvous->resolve_gated(t);
      }
    });
    ch->rendezvous->set_gated_reader(
        [this, idx](TimePoint offer,
                    const Token& tok) -> std::optional<TimePoint> {
          IsoInputState& s = iso_inputs_[idx];
          const std::uint64_t k = s.next_k++;
          iso_engine_->set_attrs(tok.source, k, tok.attrs);
          iso_engine_->set_external(s.u, k, offer);
          if (auto v = iso_engine_->value(s.x, k)) return *v;
          s.parked = true;
          s.parked_k = k;
          return std::nullopt;
        });
  } else {
    st.ready = std::make_unique<sim::Event>(
        runtime_->kernel(), "iso-vread:" + std::to_string(idx));
    iso_engine_->on_known(st.xr, [this, idx](std::uint64_t, TimePoint) {
      iso_inputs_[idx].ready->notify();
    });
    ch->fifo->on_write_complete(
        [this, idx](std::uint64_t k, TimePoint t, const Token& tok) {
          IsoInputState& s = iso_inputs_[idx];
          iso_engine_->set_attrs(tok.source, k, tok.attrs);
          iso_engine_->set_external(s.xw, k, t);
        });
    runtime_->kernel().spawn(
        "vreader:" + desc_->channels()[st.meta.channel].name,
        [this, idx] { return iso_virtual_fifo_reader_proc(idx); });
  }
}

sim::Process BatchEquivalentModel::iso_virtual_fifo_reader_proc(
    std::size_t idx) {
  IsoInputState& st = iso_inputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.meta.channel);
  for (std::uint64_t k = 0;; ++k) {
    std::optional<TimePoint> t;
    while (!(t = iso_engine_->value(st.xr, k))) co_await st.ready->wait();
    co_await runtime_->kernel().delay_until(*t);
    (void)co_await ch->fifo->read();
    st.consumed = k + 1;
    raise_iso_retain_floor();
  }
}

void BatchEquivalentModel::wire_iso_output(std::size_t idx) {
  IsoOutputState& st = iso_outputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.meta.channel);
  if (ch == nullptr)
    throw Error(
        "BatchEquivalentModel: isolated output channel not constructed");

  st.ready = std::make_unique<sim::Event>(runtime_->kernel(),
                                          "iso-emit:" + std::to_string(idx));
  iso_engine_->on_known(st.offer, [this, idx](std::uint64_t, TimePoint) {
    iso_outputs_[idx].ready->notify();
  });

  if (!st.meta.fifo) {
    if (st.actual != tdg::kNoNode) {
      ch->rendezvous->on_transfer(
          [this, idx](std::uint64_t k, TimePoint t, const Token&) {
            iso_engine_->set_external(iso_outputs_[idx].actual, k, t);
          });
    }
  } else {
    ch->fifo->on_write_complete(
        [this, idx](std::uint64_t k, TimePoint t, const Token&) {
          iso_engine_->set_external(iso_outputs_[idx].actual, k, t);
        });
    ch->fifo->on_read_complete(
        [this, idx](std::uint64_t k, TimePoint t, const Token&) {
          iso_engine_->set_external(iso_outputs_[idx].xr_actual, k, t);
        });
  }

  runtime_->kernel().spawn(
      "emission:" + desc_->channels()[st.meta.channel].name,
      [this, idx] { return iso_emission_proc(idx); });
}

sim::Process BatchEquivalentModel::iso_emission_proc(std::size_t idx) {
  IsoOutputState& st = iso_outputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.meta.channel);
  for (std::uint64_t k = 0;; ++k) {
    std::optional<TimePoint> y;
    while (!(y = iso_engine_->value(st.offer, k))) co_await st.ready->wait();

    Token tok;
    tok.k = k;
    tok.source = st.meta.provenance;
    if (auto attrs = iso_engine_->attrs_of(st.meta.provenance, k))
      tok.attrs = *attrs;

    co_await runtime_->kernel().delay_until(*y);
    if (!st.meta.fifo) {
      co_await ch->rendezvous->write(tok);
    } else {
      co_await ch->fifo->write(tok);
    }
    st.emitted = k + 1;
    raise_iso_retain_floor();
  }
}

void BatchEquivalentModel::raise_iso_retain_floor() {
  // The remainder engine's frames are shared by all its boundaries (one
  // merged graph), so the floor is the minimum over every consumer —
  // exactly core::EquivalentModel::raise_retain_floor.
  std::uint64_t floor = std::numeric_limits<std::uint64_t>::max();
  bool any = false;
  for (const IsoOutputState& st : iso_outputs_) {
    floor = std::min(floor, st.emitted);
    any = true;
  }
  for (const IsoInputState& st : iso_inputs_) {
    if (!st.meta.fifo) continue;
    floor = std::min(floor, st.consumed);
    any = true;
  }
  if (any) iso_engine_->set_retain_floor(floor);
}

std::uint64_t BatchEquivalentModel::instances_computed() const {
  std::uint64_t total = 0;
  for (const Group& g : groups_) total += g.engine->instances_computed();
  if (iso_engine_ != nullptr) total += iso_engine_->instances_computed();
  return total;
}

std::uint64_t BatchEquivalentModel::arc_terms_evaluated() const {
  std::uint64_t total = 0;
  for (const Group& g : groups_) total += g.engine->arc_terms_evaluated();
  if (iso_engine_ != nullptr) total += iso_engine_->arc_terms_evaluated();
  return total;
}

BatchEquivalentModel::CompiledShape BatchEquivalentModel::compiled_shape()
    const {
  CompiledShape shape;
  for (const Group& g : groups_) {
    shape.nodes += g.compiled->graph.node_count();
    shape.paper_nodes += g.compiled->graph.paper_node_count();
    shape.arcs += g.compiled->graph.arc_count();
  }
  if (iso_engine_ != nullptr) {
    shape.nodes += iso_compiled_->graph.node_count();
    shape.paper_nodes += iso_compiled_->graph.paper_node_count();
    shape.arcs += iso_compiled_->graph.arc_count();
  }
  return shape;
}

model::ModelRuntime::Outcome BatchEquivalentModel::run(
    std::optional<TimePoint> until) {
  model::ModelRuntime::Outcome out = runtime_->run(until);
  if (!out.completed && (out.idle || sim::is_guard_stop(out.stop))) {
    // Batched-only knowledge: parked gated offers (named per member) and
    // each member instance's token progress through the merged runtime's
    // sinks — diagnostics the merged stall report cannot attribute.
    for (const InputState& st : inputs_) {
      if (!st.parked) continue;
      out.diagnostics.unresolved_gates.push_back(
          groups_[st.grp].names[st.inst] + "/" + st.meta.u_node + "@k=" +
          std::to_string(st.parked_k));
    }
    for (const Group& g : groups_) {
      std::uint64_t expected = 0;
      if (!g.base->sources().empty()) {
        expected = g.base->sources()[0].count;
        for (const auto& src : g.base->sources())
          expected = std::min(expected, src.count);
      }
      const std::size_t n_sinks = g.base->sinks().size();
      for (std::size_t m = 0; m < g.names.size(); ++m) {
        std::uint64_t done = expected;
        for (std::size_t s = 0; s < n_sinks; ++s)
          done = std::min(done,
                          runtime_->sink_received(static_cast<model::SinkId>(
                              g.spans[m].sink + s)));
        out.diagnostics.instances.push_back({g.names[m], done, expected});
      }
    }
    if (sim::is_guard_stop(out.stop)) out.stall_report = out.diagnostics.summary();
  }
  return out;
}

}  // namespace maxev::core
