#include "core/batch_equivalent_model.hpp"

#include <algorithm>
#include <limits>

#include "tdg/simplify.hpp"
#include "util/error.hpp"

namespace maxev::core {

using model::ChannelKind;
using model::Token;

BatchEquivalentModel::BatchEquivalentModel(model::DescPtr merged,
                                           model::DescPtr base,
                                           std::vector<std::string> names,
                                           std::vector<bool> group)
    : BatchEquivalentModel(std::move(merged), std::move(base),
                           std::move(names), std::move(group), Options{}) {}

BatchEquivalentModel::BatchEquivalentModel(model::DescPtr merged,
                                           model::DescPtr base,
                                           std::vector<std::string> names,
                                           std::vector<bool> group,
                                           Options opts)
    : desc_(std::move(merged)),
      base_desc_(std::move(base)),
      instance_names_(std::move(names)),
      group_(std::move(group)) {
  if (desc_ == nullptr || base_desc_ == nullptr)
    throw DescriptionError("BatchEquivalentModel: null description");
  width_ = instance_names_.size();
  if (width_ == 0)
    throw DescriptionError("BatchEquivalentModel: no instances");

  const model::ArchitectureDesc& bd = *base_desc_;
  // The merged description must be an N-fold replication of the base one:
  // instance i's entities occupy the contiguous id block [i * n, (i+1) * n)
  // of every table (study::compose() builds exactly this layout). Checked
  // structurally — table sizes, namespaced names, resource policies/rates,
  // channel kinds/capacities, source token counts. Workload/schedule
  // std::functions cannot be compared; the study layer guarantees them by
  // pointer identity of the shared description (Scenario::batch_base()).
  if (desc_->functions().size() != width_ * bd.functions().size() ||
      desc_->channels().size() != width_ * bd.channels().size() ||
      desc_->resources().size() != width_ * bd.resources().size() ||
      desc_->sources().size() != width_ * bd.sources().size() ||
      desc_->sinks().size() != width_ * bd.sinks().size())
    throw DescriptionError(
        "BatchEquivalentModel: merged description is not an N-fold "
        "replication of the base description");
  const auto mismatch = [](const std::string& what) {
    throw DescriptionError(
        "BatchEquivalentModel: merged description disagrees with the base "
        "description on " + what);
  };
  for (std::size_t i = 0; i < width_; ++i) {
    const std::string prefix = instance_names_[i] + "/";
    for (std::size_t r = 0; r < bd.resources().size(); ++r) {
      const auto& m = desc_->resources()[i * bd.resources().size() + r];
      const auto& b = bd.resources()[r];
      if (m.name != prefix + b.name || m.policy != b.policy ||
          m.ops_per_second != b.ops_per_second)
        mismatch("resource '" + b.name + "' of instance '" +
                 instance_names_[i] + "'");
    }
    for (std::size_t c = 0; c < bd.channels().size(); ++c) {
      const auto& m = desc_->channels()[i * bd.channels().size() + c];
      const auto& b = bd.channels()[c];
      if (m.name != prefix + b.name || m.kind != b.kind ||
          m.capacity != b.capacity)
        mismatch("channel '" + b.name + "' of instance '" +
                 instance_names_[i] + "'");
    }
    for (std::size_t f = 0; f < bd.functions().size(); ++f) {
      const auto& m = desc_->functions()[i * bd.functions().size() + f];
      const auto& b = bd.functions()[f];
      if (m.name != prefix + b.name || m.body.size() != b.body.size())
        mismatch("function '" + b.name + "' of instance '" +
                 instance_names_[i] + "'");
    }
    for (std::size_t s = 0; s < bd.sources().size(); ++s) {
      const auto& m = desc_->sources()[i * bd.sources().size() + s];
      const auto& b = bd.sources()[s];
      if (m.name != prefix + b.name || m.count != b.count)
        mismatch("source '" + b.name + "' of instance '" +
                 instance_names_[i] + "'");
    }
  }

  if (group_.empty()) group_.assign(bd.functions().size(), true);
  group_.resize(bd.functions().size(), false);

  // Compile the *base* abstraction group once; every instance shares the
  // resulting program.
  tdg::DerivedTdg derived = tdg::derive_tdg(bd, group_);
  tdg::Graph g = std::move(derived.graph);
  if (opts.fold) g = tdg::fold_pass_through(g);
  if (opts.pad_nodes > 0) g = tdg::pad_graph(g, opts.pad_nodes);
  g.freeze();
  graph_ = std::move(g);

  // Simulate everything outside the group from the merged description —
  // the identical runtime the merged equivalent model uses, so kernel
  // behaviour (and every per-instance trace) matches it bit for bit.
  std::vector<bool> merged_skip;
  merged_skip.reserve(width_ * group_.size());
  for (std::size_t i = 0; i < width_; ++i)
    merged_skip.insert(merged_skip.end(), group_.begin(), group_.end());
  runtime_ =
      std::make_unique<model::ModelRuntime>(desc_, merged_skip, opts.observe);

  tdg::BatchEngine::Options eng_opts;
  eng_opts.instances.resize(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    tdg::BatchEngine::InstanceSinks& sinks = eng_opts.instances[i];
    sinks.scope = instance_names_[i] + "/";
    if (opts.observe) {
      sinks.instant_sink = &runtime_->mutable_instants();
      sinks.usage_sink = &runtime_->mutable_usage();
    }
  }
  if (opts.observe) {
    eng_opts.expected_iterations = opts.expected_iterations > 0
                                       ? opts.expected_iterations
                                       : bd.max_source_tokens();
  }
  engine_ = std::make_unique<tdg::BatchEngine>(graph_, std::move(eng_opts));

  // Iteration fronts drain at timestep boundaries: every instance's feeds
  // of one simulated instant accumulate before one batched propagation.
  runtime_->kernel().set_timestep_hook([this] { return engine_->flush(); });

  // Resolve boundary nodes by name once (fold/pad preserve names; the node
  // ids are shared by every instance) and wire the reception/emission
  // machinery per instance.
  auto resolve = [this](const std::string& name) {
    if (name.empty()) return tdg::kNoNode;
    const tdg::NodeId n = graph_.find(name);
    if (n == tdg::kNoNode)
      throw Error("BatchEquivalentModel: boundary node '" + name +
                  "' missing after graph transforms");
    return n;
  };

  const auto n_ch = static_cast<model::ChannelId>(bd.channels().size());
  inputs_.reserve(width_ * derived.inputs.size());
  outputs_.reserve(width_ * derived.outputs.size());
  for (std::size_t i = 0; i < width_; ++i) {
    for (const auto& bi : derived.inputs) {
      InputState st;
      st.meta = bi;
      st.inst = i;
      st.merged_channel =
          bi.channel + static_cast<model::ChannelId>(i) * n_ch;
      st.u = resolve(bi.u_node);
      st.x = resolve(bi.x_node);
      st.xw = resolve(bi.xw_node);
      st.xr = resolve(bi.xr_node);
      inputs_.push_back(std::move(st));
    }
    for (const auto& bo : derived.outputs) {
      OutputState st;
      st.meta = bo;
      st.inst = i;
      st.merged_channel =
          bo.channel + static_cast<model::ChannelId>(i) * n_ch;
      st.offer = resolve(bo.offer_node);
      st.actual = resolve(bo.actual_node);
      st.xr_actual = resolve(bo.xr_actual_node);
      if (st.actual == st.offer) st.actual = tdg::kNoNode;  // single-node case
      outputs_.push_back(std::move(st));
    }
  }

  for (std::size_t i = 0; i < inputs_.size(); ++i) wire_input(i);
  for (std::size_t i = 0; i < outputs_.size(); ++i) wire_output(i);
}

void BatchEquivalentModel::wire_input(std::size_t idx) {
  InputState& st = inputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.merged_channel);
  if (ch == nullptr)
    throw Error("BatchEquivalentModel: input channel not constructed");
  const auto n_src =
      static_cast<model::SourceId>(base_desc_->sources().size());

  if (!st.meta.fifo) {
    // Rendezvous input: gated reader. On each offer, feed u(k) and the
    // token attributes, then park — the deferred engine computes x_in(k)
    // at the timestep boundary and the on_known callback completes the
    // rendezvous there, at the same simulated instant a solo run would.
    engine_->on_known(st.inst, st.x, [this, idx](std::uint64_t k, TimePoint t) {
      InputState& s = inputs_[idx];
      if (s.parked && s.parked_k == k) {
        s.parked = false;
        model::ChannelRt* c = runtime_->channel(s.merged_channel);
        c->rendezvous->resolve_gated(t);
      }
    });
    ch->rendezvous->set_gated_reader(
        [this, idx, n_src](TimePoint offer,
                           const Token& tok) -> std::optional<TimePoint> {
          InputState& s = inputs_[idx];
          const std::uint64_t k = s.next_k++;
          // Token sources carry merged ids; the engine speaks base ids.
          engine_->set_attrs(
              s.inst, tok.source - static_cast<model::SourceId>(s.inst) * n_src,
              k, tok.attrs);
          engine_->set_external(s.inst, s.u, k, offer);
          // Deferred propagation: x_in(k) is normally computed at the next
          // timestep boundary, so park. The value can pre-exist only when
          // a guard disconnected it from u(k) in an earlier front — then
          // answer synchronously (no on_known will fire again for it).
          if (auto v = engine_->value(s.inst, s.x, k)) return *v;
          s.parked = true;
          s.parked_k = k;
          return std::nullopt;
        });
  } else {
    // FIFO input: write instants are observed live; a virtual reader pops
    // tokens at the computed read instants.
    st.ready = std::make_unique<sim::Event>(runtime_->kernel(),
                                            "vread:" + std::to_string(idx));
    engine_->on_known(st.inst, st.xr, [this, idx](std::uint64_t, TimePoint) {
      inputs_[idx].ready->notify();
    });
    ch->fifo->on_write_complete(
        [this, idx, n_src](std::uint64_t k, TimePoint t, const Token& tok) {
          InputState& s = inputs_[idx];
          engine_->set_attrs(
              s.inst, tok.source - static_cast<model::SourceId>(s.inst) * n_src,
              k, tok.attrs);
          engine_->set_external(s.inst, s.xw, k, t);
        });
    runtime_->kernel().spawn(
        "vreader:" + desc_->channels()[st.merged_channel].name,
        [this, idx] { return virtual_fifo_reader_proc(idx); });
  }
}

sim::Process BatchEquivalentModel::virtual_fifo_reader_proc(std::size_t idx) {
  InputState& st = inputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.merged_channel);
  for (std::uint64_t k = 0;; ++k) {
    std::optional<TimePoint> t;
    while (!(t = engine_->value(st.inst, st.xr, k)))
      co_await st.ready->wait();
    co_await runtime_->kernel().delay_until(*t);
    (void)co_await ch->fifo->read();
    st.consumed = k + 1;
    raise_retain_floor(st.inst);
  }
}

void BatchEquivalentModel::wire_output(std::size_t idx) {
  OutputState& st = outputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.merged_channel);
  if (ch == nullptr)
    throw Error("BatchEquivalentModel: output channel not constructed");

  st.ready = std::make_unique<sim::Event>(runtime_->kernel(),
                                          "emit:" + std::to_string(idx));
  engine_->on_known(st.inst, st.offer, [this, idx](std::uint64_t, TimePoint) {
    outputs_[idx].ready->notify();
  });

  if (!st.meta.fifo) {
    if (st.actual != tdg::kNoNode) {
      ch->rendezvous->on_transfer(
          [this, idx](std::uint64_t k, TimePoint t, const Token&) {
            OutputState& s = outputs_[idx];
            engine_->set_external(s.inst, s.actual, k, t);
          });
    }
  } else {
    ch->fifo->on_write_complete(
        [this, idx](std::uint64_t k, TimePoint t, const Token&) {
          OutputState& s = outputs_[idx];
          engine_->set_external(s.inst, s.actual, k, t);
        });
    ch->fifo->on_read_complete(
        [this, idx](std::uint64_t k, TimePoint t, const Token&) {
          OutputState& s = outputs_[idx];
          engine_->set_external(s.inst, s.xr_actual, k, t);
        });
  }

  runtime_->kernel().spawn(
      "emission:" + desc_->channels()[st.merged_channel].name,
      [this, idx] { return emission_proc(idx); });
}

sim::Process BatchEquivalentModel::emission_proc(std::size_t idx) {
  OutputState& st = outputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.merged_channel);
  const auto n_src = static_cast<model::SourceId>(base_desc_->sources().size());
  for (std::uint64_t k = 0;; ++k) {
    std::optional<TimePoint> y;
    while (!(y = engine_->value(st.inst, st.offer, k)))
      co_await st.ready->wait();

    // Build the output token from the stored provenance attributes, under
    // the merged source id (what the merged model's consumers see).
    Token tok;
    tok.k = k;
    tok.source =
        st.meta.provenance + static_cast<model::SourceId>(st.inst) * n_src;
    if (auto attrs = engine_->attrs_of(st.inst, st.meta.provenance, k))
      tok.attrs = *attrs;

    co_await runtime_->kernel().delay_until(*y);
    if (!st.meta.fifo) {
      co_await ch->rendezvous->write(tok);
    } else {
      co_await ch->fifo->write(tok);
    }
    st.emitted = k + 1;
    raise_retain_floor(st.inst);
  }
}

void BatchEquivalentModel::raise_retain_floor(std::size_t inst) {
  // Per-instance floor: an instance's frames may be reclaimed once every
  // one of *its* boundary consumers has moved past them; the shared arena
  // additionally waits for every other instance (BatchEngine takes the
  // minimum across lanes). inputs_/outputs_ are instance-major, so one
  // instance's boundary states are a contiguous span — this runs per
  // emitted/consumed token and must not scan the whole batch.
  const std::size_t n_out = outputs_.size() / width_;
  const std::size_t n_in = inputs_.size() / width_;
  std::uint64_t floor = std::numeric_limits<std::uint64_t>::max();
  bool any = false;
  for (std::size_t b = inst * n_out; b < (inst + 1) * n_out; ++b) {
    floor = std::min(floor, outputs_[b].emitted);
    any = true;
  }
  for (std::size_t b = inst * n_in; b < (inst + 1) * n_in; ++b) {
    if (!inputs_[b].meta.fifo) continue;
    floor = std::min(floor, inputs_[b].consumed);
    any = true;
  }
  if (any) engine_->set_retain_floor(inst, floor);
}

model::ModelRuntime::Outcome BatchEquivalentModel::run(
    std::optional<TimePoint> until) {
  return runtime_->run(until);
}

}  // namespace maxev::core
