#include "core/metrics.hpp"

#include "util/strings.hpp"

namespace maxev::core {

std::string RunMetrics::to_string() const {
  return format(
      "wall=%.4fs kernel_events=%llu resumes=%llu relation_events=%llu "
      "sim_end=%s completed=%d",
      wall_seconds, static_cast<unsigned long long>(kernel_events),
      static_cast<unsigned long long>(resumes),
      static_cast<unsigned long long>(relation_events),
      sim_end.to_string().c_str(), completed ? 1 : 0);
}

std::string Comparison::to_string() const {
  std::string out = format(
      "speedup=%.2f event_ratio=%.2f kernel_event_ratio=%.2f nodes=%zu "
      "(paper convention %zu) arcs=%zu accurate=%s",
      speedup, event_ratio, kernel_event_ratio, graph_nodes,
      graph_paper_nodes, graph_arcs, accurate() ? "yes" : "NO");
  if (instant_mismatch) out += "\n  instant mismatch: " + *instant_mismatch;
  if (usage_mismatch) out += "\n  usage mismatch: " + *usage_mismatch;
  return out;
}

}  // namespace maxev::core
