#include "core/equivalent_model.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace maxev::core {

using model::ChannelKind;
using model::Token;

EquivalentModel::EquivalentModel(const model::ArchitectureDesc& desc,
                                 std::vector<bool> group)
    : EquivalentModel(std::make_shared<const model::ArchitectureDesc>(desc),
                      std::move(group), Options{}) {}

EquivalentModel::EquivalentModel(const model::ArchitectureDesc& desc,
                                 std::vector<bool> group, Options opts)
    : EquivalentModel(std::make_shared<const model::ArchitectureDesc>(desc),
                      std::move(group), opts) {}

EquivalentModel::EquivalentModel(model::DescPtr desc_in,
                                 std::vector<bool> group)
    : EquivalentModel(std::move(desc_in), std::move(group), Options{}) {}

EquivalentModel::EquivalentModel(model::DescPtr desc_in,
                                 std::vector<bool> group, Options opts)
    : desc_(std::move(desc_in)), group_(std::move(group)) {
  if (desc_ == nullptr)
    throw DescriptionError("EquivalentModel: null description");
  const model::ArchitectureDesc& desc = *desc_;
  if (group_.empty()) group_.assign(desc.functions().size(), true);
  group_.resize(desc.functions().size(), false);

  // Obtain the compiled abstraction (derive + fold + pad + freeze +
  // Program::compile) — from the provider's cache when one is given.
  compiled_ = obtain_compiled(
      opts.compiled, CompiledKey{desc_, group_, opts.fold, opts.pad_nodes});

  // Simulate everything outside the group (sharing the description).
  runtime_ = std::make_unique<model::ModelRuntime>(desc_, group_, opts.observe);
  tdg::Engine::Options eng_opts;
  eng_opts.opcode_dispatch = opts.opcode_dispatch;
  if (opts.observe) {
    eng_opts.instant_sink = &runtime_->mutable_instants();
    eng_opts.usage_sink = &runtime_->mutable_usage();
    eng_opts.expected_iterations = opts.expected_iterations > 0
                                       ? opts.expected_iterations
                                       : desc.max_source_tokens();
  }
  engine_ = std::make_unique<tdg::Engine>(compiled_->graph, compiled_->program,
                                          eng_opts);

  // Resolve boundary nodes by name (fold/pad preserve names) and wire the
  // reception/emission machinery.
  auto resolve = [this](const std::string& name) {
    if (name.empty()) return tdg::kNoNode;
    const tdg::NodeId n = compiled_->graph.find(name);
    if (n == tdg::kNoNode)
      throw Error("EquivalentModel: boundary node '" + name +
                  "' missing after graph transforms");
    return n;
  };

  inputs_.reserve(compiled_->inputs.size());
  for (const auto& bi : compiled_->inputs) {
    InputState st;
    st.meta = bi;
    st.u = resolve(bi.u_node);
    st.x = resolve(bi.x_node);
    st.xw = resolve(bi.xw_node);
    st.xr = resolve(bi.xr_node);
    inputs_.push_back(std::move(st));
  }
  outputs_.reserve(compiled_->outputs.size());
  for (const auto& bo : compiled_->outputs) {
    OutputState st;
    st.meta = bo;
    st.offer = resolve(bo.offer_node);
    st.actual = resolve(bo.actual_node);
    st.xr_actual = resolve(bo.xr_actual_node);
    if (st.actual == st.offer) st.actual = tdg::kNoNode;  // single-node case
    outputs_.push_back(std::move(st));
  }

  for (std::size_t i = 0; i < inputs_.size(); ++i) wire_input(i);
  for (std::size_t i = 0; i < outputs_.size(); ++i) wire_output(i);
}

void EquivalentModel::wire_input(std::size_t idx) {
  InputState& st = inputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.meta.channel);
  if (ch == nullptr)
    throw Error("EquivalentModel: input channel not constructed");

  if (!st.meta.fifo) {
    // Rendezvous input: gated reader. On each offer, feed u(k) and the
    // token attributes; complete at the computed x_in(k), or park until the
    // blocking external instant arrives.
    engine_->on_known(st.x, [this, idx](std::uint64_t k, TimePoint t) {
      InputState& s = inputs_[idx];
      if (s.parked && s.parked_k == k) {
        s.parked = false;
        model::ChannelRt* c = runtime_->channel(s.meta.channel);
        c->rendezvous->resolve_gated(t);
      }
    });
    ch->rendezvous->set_gated_reader(
        [this, idx](TimePoint offer, const Token& tok) -> std::optional<TimePoint> {
          InputState& s = inputs_[idx];
          const std::uint64_t k = s.next_k++;
          engine_->set_attrs(tok.source, k, tok.attrs);
          engine_->set_external(s.u, k, offer);
          if (auto v = engine_->value(s.x, k)) return *v;
          s.parked = true;
          s.parked_k = k;
          return std::nullopt;
        });
  } else {
    // FIFO input: write instants are observed live; a virtual reader pops
    // tokens at the computed read instants.
    st.ready = std::make_unique<sim::Event>(runtime_->kernel(),
                                            "vread:" + std::to_string(idx));
    engine_->on_known(st.xr, [this, idx](std::uint64_t, TimePoint) {
      inputs_[idx].ready->notify();
    });
    ch->fifo->on_write_complete(
        [this, idx](std::uint64_t k, TimePoint t, const Token& tok) {
          InputState& s = inputs_[idx];
          engine_->set_attrs(tok.source, k, tok.attrs);
          engine_->set_external(s.xw, k, t);
        });
    runtime_->kernel().spawn(
        "vreader:" + desc_->channels()[st.meta.channel].name,
        [this, idx] { return virtual_fifo_reader_proc(idx); });
  }
}

sim::Process EquivalentModel::virtual_fifo_reader_proc(std::size_t idx) {
  InputState& st = inputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.meta.channel);
  for (std::uint64_t k = 0;; ++k) {
    std::optional<TimePoint> t;
    while (!(t = engine_->value(st.xr, k))) co_await st.ready->wait();
    co_await runtime_->kernel().delay_until(*t);
    (void)co_await ch->fifo->read();
    st.consumed = k + 1;
    raise_retain_floor();
  }
}

void EquivalentModel::wire_output(std::size_t idx) {
  OutputState& st = outputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.meta.channel);
  if (ch == nullptr)
    throw Error("EquivalentModel: output channel not constructed");

  st.ready = std::make_unique<sim::Event>(runtime_->kernel(),
                                          "emit:" + std::to_string(idx));
  engine_->on_known(st.offer, [this, idx](std::uint64_t, TimePoint) {
    outputs_[idx].ready->notify();
  });

  if (!st.meta.fifo) {
    if (st.actual != tdg::kNoNode) {
      ch->rendezvous->on_transfer(
          [this, idx](std::uint64_t k, TimePoint t, const Token&) {
            engine_->set_external(outputs_[idx].actual, k, t);
          });
    }
  } else {
    ch->fifo->on_write_complete(
        [this, idx](std::uint64_t k, TimePoint t, const Token&) {
          engine_->set_external(outputs_[idx].actual, k, t);
        });
    ch->fifo->on_read_complete(
        [this, idx](std::uint64_t k, TimePoint t, const Token&) {
          engine_->set_external(outputs_[idx].xr_actual, k, t);
        });
  }

  runtime_->kernel().spawn("emission:" + desc_->channels()[st.meta.channel].name,
                           [this, idx] { return emission_proc(idx); });
}

sim::Process EquivalentModel::emission_proc(std::size_t idx) {
  OutputState& st = outputs_[idx];
  model::ChannelRt* ch = runtime_->channel(st.meta.channel);
  for (std::uint64_t k = 0;; ++k) {
    std::optional<TimePoint> y;
    while (!(y = engine_->value(st.offer, k))) co_await st.ready->wait();

    // Build the output token from the stored provenance attributes.
    Token tok;
    tok.k = k;
    tok.source = st.meta.provenance;
    if (auto attrs = engine_->attrs_of(st.meta.provenance, k)) tok.attrs = *attrs;

    co_await runtime_->kernel().delay_until(*y);
    if (!st.meta.fifo) {
      co_await ch->rendezvous->write(tok);
    } else {
      co_await ch->fifo->write(tok);
    }
    // The rendezvous/fifo hooks have fed the actual completion back into
    // the engine by now; the frame window may advance past iteration k.
    st.emitted = k + 1;
    raise_retain_floor();
  }
}

void EquivalentModel::raise_retain_floor() {
  // Frames may be recycled once every boundary consumer has moved past
  // them: emission processes (output values, token attrs) and virtual FIFO
  // readers (read instants).
  std::uint64_t floor = std::numeric_limits<std::uint64_t>::max();
  bool any = false;
  for (const OutputState& st : outputs_) {
    floor = std::min(floor, st.emitted);
    any = true;
  }
  for (const InputState& st : inputs_) {
    if (!st.meta.fifo) continue;
    floor = std::min(floor, st.consumed);
    any = true;
  }
  if (any) engine_->set_retain_floor(floor);
}

model::ModelRuntime::Outcome EquivalentModel::run(
    std::optional<TimePoint> until) {
  model::ModelRuntime::Outcome out = runtime_->run(until);
  if (!out.completed && (out.idle || sim::is_guard_stop(out.stop))) {
    // Only this layer knows which gated receptions parked an offer whose
    // computed completion never became known.
    for (const InputState& st : inputs_) {
      if (!st.parked) continue;
      out.diagnostics.unresolved_gates.push_back(
          st.meta.u_node + "@k=" + std::to_string(st.parked_k));
    }
    // Guard-stop messages are new in this PR, so they may render the
    // enriched summary; idle-stall wording stays the runtime's (pinned).
    if (sim::is_guard_stop(out.stop)) out.stall_report = out.diagnostics.summary();
  }
  return out;
}

}  // namespace maxev::core
