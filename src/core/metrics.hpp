#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/time.hpp"

/// \file metrics.hpp
/// Measurement records for the paper's evaluation quantities: model
/// execution (wall-clock) time, simulation events, the event ratio between
/// the two models, the achieved speed-up, and accuracy (trace equality).

namespace maxev::core {

/// One model run, measured.
struct RunMetrics {
  double wall_seconds = 0.0;          ///< median wall-clock time of run()
  std::uint64_t kernel_events = 0;    ///< kernel queue insertions
  std::uint64_t resumes = 0;          ///< coroutine context switches
  std::uint64_t relation_events = 0;  ///< completed channel transfers
  std::uint64_t instances_computed = 0;  ///< TDG instances (equivalent only)
  std::uint64_t arc_terms = 0;           ///< TDG arc terms (equivalent only)
  TimePoint sim_end;                  ///< final simulated time
  bool completed = false;             ///< all tokens reached the sinks

  [[nodiscard]] std::string to_string() const;
};

/// A paired baseline/equivalent comparison (one Table I row).
struct Comparison {
  RunMetrics baseline;
  RunMetrics equivalent;

  /// Wall-clock ratio baseline/equivalent (the paper's "simulation
  /// speed-up").
  double speedup = 0.0;
  /// Relation-event ratio baseline/equivalent (the paper's "event ratio").
  double event_ratio = 0.0;
  /// Kernel-event ratio (supplementary: includes timed waits and gates).
  double kernel_event_ratio = 0.0;

  std::size_t graph_nodes = 0;        ///< live TDG nodes
  std::size_t graph_paper_nodes = 0;  ///< nodes in the paper's counting
  std::size_t graph_arcs = 0;

  /// Accuracy: nullopt = traces identical (the paper's claim); otherwise a
  /// description of the first difference.
  std::optional<std::string> instant_mismatch;
  std::optional<std::string> usage_mismatch;

  [[nodiscard]] bool accurate() const {
    return !instant_mismatch && !usage_mismatch;
  }
  [[nodiscard]] std::string to_string() const;
};

}  // namespace maxev::core
