#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "model/desc.hpp"
#include "tdg/derive.hpp"
#include "tdg/graph.hpp"
#include "tdg/program.hpp"

/// \file compiled.hpp
/// The reusable compilation artifact of one abstraction: everything
/// derive → fold → pad → freeze → Program::compile produces, bundled with
/// the key that identifies it. core::EquivalentModel and
/// core::BatchEquivalentModel consume these instead of re-deriving per run,
/// and serve::ProgramCache stores them across runs (the study-matrix
/// speed-up of docs/DESIGN.md §13).
///
/// Sharing rule (the Desc structural-surface contract, desc.hpp): a
/// compiled tdg::Program holds the description's *behavioural*
/// std::functions (guards, loads), which structural equality cannot see.
/// Cache keys therefore compare the model::DescPtr by POINTER IDENTITY —
/// only instances provably evaluating the same workload functions share an
/// artifact — while model::structural_hash() serves as the hash/bucketing
/// function (consistent: identical pointers are structurally equal).

namespace maxev::core {

/// Identity of a compiled abstraction. `group` is stored normalized
/// (empty → all functions abstracted; sized to functions().size()), the
/// same normalization EquivalentModel and BatchEquivalentModel apply, so
/// solo and batch-group requests for the same abstraction unify.
struct CompiledKey {
  model::DescPtr desc;
  std::vector<bool> group;
  bool fold = true;
  std::size_t pad_nodes = 0;

  /// Build a key with the group normalized against \p desc.
  /// \throws maxev::DescriptionError when desc is null.
  [[nodiscard]] static CompiledKey make(model::DescPtr desc,
                                        std::vector<bool> group, bool fold,
                                        std::size_t pad_nodes);

  /// Pointer-identity on the description (see the sharing rule above).
  friend bool operator==(const CompiledKey& a, const CompiledKey& b) {
    return a.desc.get() == b.desc.get() && a.fold == b.fold &&
           a.pad_nodes == b.pad_nodes && a.group == b.group;
  }
};

/// Hash consistent with CompiledKey equality: structural_hash(desc)
/// combined with the group/fold/pad fields.
[[nodiscard]] std::size_t hash_value(const CompiledKey& key);

/// The artifact: frozen graph, compiled program (including its opcode
/// tables — Program::compile builds them, so cached artifacts carry the
/// enum-dispatched form for free), boundary metadata. Pins the
/// description alive (tdg::Graph references it by raw pointer).
struct CompiledAbstraction {
  CompiledKey key;
  tdg::Graph graph;  ///< frozen
  tdg::Program program;
  std::vector<tdg::BoundaryInput> inputs;
  std::vector<tdg::BoundaryOutput> outputs;

  /// Hoisted loads that resisted opcode compilation (hand-written
  /// lambdas): the std::function calls left on this artifact's hot path.
  /// 0 = the program dispatches entirely through tdg::ops tables.
  [[nodiscard]] std::size_t opaque_loads() const {
    return program.load_ops.opaque;
  }
  /// Opcode kind (tdg::ops::Kind) of hoisted load \p i — introspection
  /// for stats/serialization; serve/wire uses the same classification.
  [[nodiscard]] tdg::ops::Kind load_kind(std::size_t i) const {
    return static_cast<tdg::ops::Kind>(program.load_ops.kind[i]);
  }
};

using CompiledPtr = std::shared_ptr<const CompiledAbstraction>;

/// Run the full compilation chain for \p key:
/// derive_tdg → fold_pass_through? → pad_graph? → freeze → Program::compile.
[[nodiscard]] CompiledPtr compile_abstraction(const CompiledKey& key);

/// Source of compiled abstractions. The null provider is "compile every
/// time"; serve::ProgramCache implements the caching one. get() must be
/// thread-safe (study cells may request concurrently).
class CompiledProvider {
 public:
  virtual ~CompiledProvider() = default;

  /// Return the artifact for \p key, compiling on demand. When \p was_hit
  /// is non-null it reports whether the artifact already existed.
  [[nodiscard]] virtual CompiledPtr get(const CompiledKey& key,
                                        bool* was_hit = nullptr) = 0;
};

/// get() through \p provider when non-null, else compile directly.
[[nodiscard]] CompiledPtr obtain_compiled(CompiledProvider* provider,
                                          const CompiledKey& key);

}  // namespace maxev::core
