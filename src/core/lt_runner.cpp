#include "core/lt_runner.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace maxev::core {

using model::ChannelId;
using model::FunctionId;
using model::ResourcePolicy;
using model::SinkId;
using model::SourceId;
using model::StatementKind;
using model::Token;

LooselyTimedModel::LooselyTimedModel(const model::ArchitectureDesc& desc,
                                     Duration quantum)
    : LooselyTimedModel(std::make_shared<const model::ArchitectureDesc>(desc),
                        quantum) {}

LooselyTimedModel::LooselyTimedModel(model::DescPtr desc_in, Duration quantum,
                                     bool observe)
    : desc_(std::move(desc_in)), quantum_(quantum), observe_(observe) {
  if (desc_ == nullptr)
    throw DescriptionError("LooselyTimedModel: null description");
  const model::ArchitectureDesc& desc = *desc_;
  if (!desc.validated())
    throw DescriptionError("LooselyTimedModel: description must be validated");
  if (quantum_.count() <= 0)
    throw DescriptionError("LooselyTimedModel: quantum must be positive");

  channels_.resize(desc.channels().size());
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    channels_[c].available = std::make_unique<sim::Event>(
        kernel_, desc.channels()[c].name + ".lt");
  }
  resource_free_.assign(desc.resources().size(), TimePoint::origin());
  sink_received_.assign(desc.sinks().size(), 0);

  for (FunctionId f = 0; f < static_cast<FunctionId>(desc.functions().size());
       ++f)
    kernel_.spawn(desc.functions()[f].name, [this, f] { return function_proc(f); });
  for (SinkId s = 0; s < static_cast<SinkId>(desc.sinks().size()); ++s)
    kernel_.spawn(desc.sinks()[s].name, [this, s] { return sink_proc(s); });
  for (SourceId s = 0; s < static_cast<SourceId>(desc.sources().size()); ++s)
    kernel_.spawn(desc.sources()[s].name, [this, s] { return source_proc(s); });
}

bool LooselyTimedModel::needs_sync(TimePoint local) const {
  return local - kernel_.now() > quantum_;
}

sim::Process LooselyTimedModel::function_proc(FunctionId f) {
  const auto& fn = desc_->functions()[f];
  const auto& res = desc_->resources()[fn.resource];
  const bool sequential =
      res.policy == ResourcePolicy::kSequentialCyclic;

  TimePoint local;
  Token tok{};
  for (std::uint64_t k = 0;; ++k) {
    for (const auto& s : fn.body) {
      switch (s.kind) {
        case StatementKind::kRead: {
          LtChannel& ch = channels_[s.channel];
          while (ch.queue.empty()) co_await ch.available->wait();
          auto [t, ts] = std::move(ch.queue.front());
          ch.queue.pop_front();
          tok = std::move(t);
          local = std::max(local, ts);
          break;
        }
        case StatementKind::kExecute: {
          const std::int64_t ops = s.load(tok.attrs, k);
          const Duration d = res.duration_for(ops);
          TimePoint start = local;
          if (sequential) {
            // Approximate arbitration: serialize on the resource's shared
            // free-time. The order this is observed in depends on process
            // interleaving — the quantum — which is the LT accuracy loss.
            start = std::max(start, resource_free_[fn.resource]);
            resource_free_[fn.resource] = start + d;
          }
          local = start + d;
          break;
        }
        case StatementKind::kWrite: {
          LtChannel& ch = channels_[s.channel];
          if (observe_)
            instants_.series(desc_->channels()[s.channel].name).push(local);
          ch.queue.emplace_back(tok, local);
          ch.available->notify();
          break;
        }
      }
      if (needs_sync(local)) co_await kernel_.delay_until(local - quantum_);
    }
    horizon_ = std::max(horizon_, local);
  }
}

sim::Process LooselyTimedModel::source_proc(SourceId s) {
  const auto& src = desc_->sources()[s];
  LtChannel& ch = channels_[src.channel];
  TimePoint local;
  for (std::uint64_t k = 0; k < src.count; ++k) {
    if (src.gap) local = local + src.gap(k);
    local = std::max(local, src.earliest(k));
    Token tok{k, s, src.attrs(k)};
    if (observe_)
      instants_.series(desc_->channels()[src.channel].name + ".offer")
          .push(local);
    ch.queue.emplace_back(std::move(tok), local);
    ch.available->notify();
    if (needs_sync(local)) co_await kernel_.delay_until(local - quantum_);
  }
  horizon_ = std::max(horizon_, local);
  ++sources_finished_;
}

sim::Process LooselyTimedModel::sink_proc(SinkId s) {
  const auto& snk = desc_->sinks()[s];
  LtChannel& ch = channels_[snk.channel];
  TimePoint local;
  for (std::uint64_t k = 0;; ++k) {
    if (snk.consume_delay) local = local + snk.consume_delay(k);
    while (ch.queue.empty()) co_await ch.available->wait();
    auto [tok, ts] = std::move(ch.queue.front());
    ch.queue.pop_front();
    local = std::max(local, ts);
    ++sink_received_[s];
    horizon_ = std::max(horizon_, local);
  }
}

model::ModelRuntime::Outcome LooselyTimedModel::run(
    std::optional<TimePoint> until) {
  const sim::StopReason stop = kernel_.run(until);
  last_run_idle_ = stop == sim::StopReason::kIdle;

  model::ModelRuntime::Outcome out;
  out.stop = stop;
  out.idle = last_run_idle_;

  std::uint64_t expected = 0;
  if (!desc_->sources().empty()) {
    expected = desc_->sources()[0].count;
    for (const auto& s : desc_->sources())
      expected = std::min(expected, s.count);
  }
  bool sinks_ok = true;
  for (auto r : sink_received_) sinks_ok = sinks_ok && r >= expected;
  out.completed = out.idle &&
                  sources_finished_ == desc_->sources().size() && sinks_ok;

  if (!out.completed && (out.idle || sim::is_guard_stop(stop))) {
    sim::RunDiagnostics& d = out.diagnostics;
    d.stop = stop;
    d.events_processed = kernel_.events_dispatched();
    d.parked_processes = kernel_.blocked_process_names();
    std::string detail =
        "loosely-timed: sources finished " + std::to_string(sources_finished_) +
        "/" + std::to_string(desc_->sources().size());
    for (std::size_t s = 0; s < sink_received_.size(); ++s) {
      if (sink_received_[s] < expected) {
        detail += "; sink '" + desc_->sinks()[s].name + "' received " +
                  std::to_string(sink_received_[s]) + " of " +
                  std::to_string(expected);
      }
    }
    d.detail = std::move(detail);
    out.stall_report = d.summary();
  }
  return out;
}

LooselyTimedModel::ErrorStats LooselyTimedModel::error_against(
    const trace::InstantTraceSet& reference) const {
  const trace::InstantErrorStats st =
      trace::instant_error_stats(reference, instants_);
  return {st.max_abs_seconds, st.mean_abs_seconds, st.instants};
}

}  // namespace maxev::core
