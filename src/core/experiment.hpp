#pragma once

#include <optional>
#include <vector>

#include "core/equivalent_model.hpp"
#include "core/metrics.hpp"
#include "model/baseline.hpp"
#include "model/desc.hpp"

/// \file experiment.hpp
/// The validation protocol of paper Section IV: "comparing simulation speed
/// and accuracy among architecture models captured with and without the
/// proposed modeling approach".
///
/// run_comparison() executes the event-driven baseline and the equivalent
/// model on the same description, measures wall-clock medians over
/// repetitions, computes the event ratio and speed-up, and checks that
/// evolution instants and resource-usage traces are identical.

namespace maxev::core {

struct ExperimentOptions {
  /// Abstraction group (empty = abstract every function).
  std::vector<bool> group;
  /// Fold pass-through nodes (see tdg/simplify.hpp).
  bool fold = true;
  /// Padding nodes for computation-complexity sweeps (Fig. 5).
  std::size_t pad_nodes = 0;
  /// Wall-clock repetitions; the median is reported.
  int repetitions = 3;
  /// Record observation traces during the measured runs. When false, the
  /// runs measure pure simulation speed and compare_traces is ignored.
  bool observe = true;
  /// Compare instant and usage traces (accuracy check).
  bool compare_traces = true;
  /// Require both models to reach completion.
  bool require_completion = true;
  /// Wall-clock nanoseconds of synthetic per-event cost applied to *both*
  /// kernels (event-cost sensitivity; 0 = this library's native cost).
  double event_overhead_ns = 0.0;
};

/// Run one measured run of the baseline model only.
[[nodiscard]] RunMetrics measure_baseline(const model::ArchitectureDesc& desc,
                                          int repetitions = 3);

/// Run the full paired comparison.
[[nodiscard]] Comparison run_comparison(const model::ArchitectureDesc& desc,
                                        const ExperimentOptions& opts = {});

}  // namespace maxev::core
