#pragma once

#include <optional>
#include <vector>

#include "core/equivalent_model.hpp"
#include "core/metrics.hpp"
#include "model/baseline.hpp"
#include "model/desc.hpp"

/// \file experiment.hpp
/// The validation protocol of paper Section IV: "comparing simulation speed
/// and accuracy among architecture models captured with and without the
/// proposed modeling approach".
///
/// run_comparison() executes the event-driven baseline and the equivalent
/// model on the same description, measures wall-clock medians over
/// repetitions, computes the event ratio and speed-up, and checks that
/// evolution instants and resource-usage traces are identical.
///
/// Both functions are thin wrappers over study::Study (src/study/study.hpp):
/// a comparison is a two-backend study with the baseline as reference. They
/// are deliberately *implemented* in the study module
/// (src/study/experiment.cpp) because the delegation points up the module
/// DAG — link the `maxev` umbrella target (or maxev_study) to get them;
/// maxev_core alone does not carry these symbols. Use the study API
/// directly for wider matrices — more backends, many scenarios,
/// multi-instance composition.

namespace maxev::core {

struct ExperimentOptions {
  /// Abstraction group (empty = abstract every function).
  std::vector<bool> group;
  /// Fold pass-through nodes (see tdg/simplify.hpp).
  bool fold = true;
  /// Padding nodes for computation-complexity sweeps (Fig. 5).
  std::size_t pad_nodes = 0;
  /// Wall-clock repetitions; the median is reported.
  int repetitions = 3;
  /// Record observation traces during the measured runs. When false, the
  /// runs measure pure simulation speed and compare_traces is ignored.
  bool observe = true;
  /// Compare instant and usage traces (accuracy check).
  bool compare_traces = true;
  /// Require both models to reach completion.
  bool require_completion = true;
  /// Wall-clock nanoseconds of synthetic per-event cost applied to *both*
  /// kernels (event-cost sensitivity; 0 = this library's native cost).
  double event_overhead_ns = 0.0;
};

/// Run one measured run of the baseline model only.
[[nodiscard]] RunMetrics measure_baseline(const model::ArchitectureDesc& desc,
                                          int repetitions = 3);

/// Run the full paired comparison.
[[nodiscard]] Comparison run_comparison(const model::ArchitectureDesc& desc,
                                        const ExperimentOptions& opts = {});

}  // namespace maxev::core
