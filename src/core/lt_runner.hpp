#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/baseline.hpp"
#include "model/desc.hpp"
#include "model/token.hpp"
#include "sim/event.hpp"
#include "sim/kernel.hpp"
#include "trace/instants.hpp"

/// \file lt_runner.hpp
/// A loosely-timed (TLM-LT style) execution of an architecture description,
/// for comparison with the paper's method.
///
/// The paper's introduction: "the loosely-timed coding style ... supports
/// the temporal decoupling method that allows processes to run ahead in a
/// local time with no use of the simulator. ... too large a value [of the
/// global quantum] can lead to degraded timing accuracy because delays due
/// to access conflicts to shared resources are not simulated."
///
/// This runner reproduces exactly that trade-off:
///  * every process advances a private local time; execute() adds to it
///    without any kernel event;
///  * channels are non-blocking timestamped queues: a reader's local time
///    advances to max(local, token timestamp) (rendezvous back-pressure on
///    the writer is NOT simulated);
///  * sequential resources are approximated by a shared free-time variable
///    (start = max(local, resource_free)), whose observed order depends on
///    process interleaving — i.e. on the quantum;
///  * a process yields to the kernel only when it runs more than the global
///    quantum ahead of simulation time.
///
/// Large quantum => very few events, large instant errors. Small quantum =>
/// accuracy approaches the baseline at the baseline's event cost. The
/// equivalent model (core/equivalent_model.hpp) beats both ends of this
/// curve, which is the paper's motivation.

namespace maxev::core {

class LooselyTimedModel {
 public:
  /// Shares ownership of the description with the caller.
  /// \param observe record write-instant traces; disable for pure
  ///        simulation-speed measurements (matching the other models).
  LooselyTimedModel(model::DescPtr desc, Duration quantum,
                    bool observe = true);
  /// Convenience overload for single-model runs: copies the description
  /// into shared ownership (safe with temporaries). Deliberately kept for
  /// ad-hoc test/bench use; prefer the model::DescPtr overload when one
  /// description feeds several models.
  LooselyTimedModel(const model::ArchitectureDesc& desc, Duration quantum);

  LooselyTimedModel(const LooselyTimedModel&) = delete;
  LooselyTimedModel& operator=(const LooselyTimedModel&) = delete;

  /// Run to completion (or to the horizon; note that temporal decoupling
  /// is quantum-grained, so processes may have run locally up to a quantum
  /// past the horizon). The historical bool return conflated "stalled"
  /// with "cut short at the horizon" — Outcome::stop now tells them (and
  /// the guard stops, sim::RunGuards) apart, and Outcome::diagnostics
  /// says what was left hanging.
  model::ModelRuntime::Outcome run(
      std::optional<TimePoint> until = std::nullopt);

  /// True when the last run() drained the event queue (rather than
  /// stopping at the horizon).
  [[nodiscard]] bool last_run_idle() const { return last_run_idle_; }

  [[nodiscard]] const trace::InstantTraceSet& instants() const {
    return instants_;
  }
  [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
  [[nodiscard]] const sim::KernelStats& kernel_stats() const {
    return kernel_.stats();
  }
  /// Largest local time reached by any process.
  [[nodiscard]] TimePoint end_time() const { return horizon_; }

  /// Timing-error statistics of this run's instants against a reference
  /// (baseline) instant trace: maximum and mean absolute error over all
  /// common series, in seconds.
  struct ErrorStats {
    double max_abs_seconds = 0.0;
    double mean_abs_seconds = 0.0;
    std::uint64_t instants = 0;
  };
  [[nodiscard]] ErrorStats error_against(
      const trace::InstantTraceSet& reference) const;

 private:
  struct LtChannel {
    std::deque<std::pair<model::Token, TimePoint>> queue;
    std::unique_ptr<sim::Event> available;
  };

  sim::Process function_proc(model::FunctionId f);
  sim::Process source_proc(model::SourceId s);
  sim::Process sink_proc(model::SinkId s);

  /// Yield to the kernel if local time ran more than a quantum ahead.
  /// Implemented as a member coroutine helper pattern: the caller awaits
  /// kernel_.delay_until(local - quantum) when needed.
  [[nodiscard]] bool needs_sync(TimePoint local) const;

  model::DescPtr desc_;
  Duration quantum_;
  bool observe_ = true;
  sim::Kernel kernel_;
  std::vector<LtChannel> channels_;
  std::vector<TimePoint> resource_free_;  // per resource (sequential only)
  trace::InstantTraceSet instants_;
  TimePoint horizon_;
  bool last_run_idle_ = false;
  std::uint64_t sources_finished_ = 0;
  std::vector<std::uint64_t> sink_received_;
};

}  // namespace maxev::core
