#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/compiled.hpp"
#include "model/baseline.hpp"
#include "model/desc.hpp"
#include "sim/event.hpp"
#include "tdg/derive.hpp"
#include "tdg/engine.hpp"
#include "tdg/graph.hpp"

/// \file equivalent_model.hpp
/// The equivalent executable model (paper Sections III-A and IV, Fig. 4).
///
/// A group of architecture functions is replaced, as seen by the simulation
/// kernel, by:
///  * a *Reception* side: boundary input channels run in gated-reader mode —
///    each offer u(k) triggers ComputeInstant() (the TDG engine), and the
///    input rendezvous is completed at the *computed* instant x_in(k), so
///    producers observe exactly the back-pressure of the abstracted
///    processes;
///  * a *Emission* process per boundary output: output token k is offered at
///    the computed instant y(k); the actual completion instant (possibly
///    later, if the environment is slow) is fed back into the engine's
///    history, so environment back-pressure propagates into iteration k+1
///    exactly as in the event-driven model.
///
/// All internal channels of the group are never constructed: their events
/// are the events the method saves. Their instants, and the busy intervals
/// of every execute statement, are still recorded — computed, not simulated
/// — which is the paper's accuracy claim.

namespace maxev::core {

class EquivalentModel {
 public:
  struct Options {
    /// Fold pass-through completion nodes (paper's Fig. 3 compact form).
    bool fold = true;
    /// Insert this many pass-through padding nodes (Fig. 5 sweeps).
    std::size_t pad_nodes = 0;
    /// Record instant/usage traces ("observation time"). Disable for pure
    /// simulation-speed measurements.
    bool observe = true;
    /// Capacity hint for the observation sinks: expected iteration count.
    /// 0 = derive from the description (total source tokens).
    std::size_t expected_iterations = 0;
    /// Source of the compiled abstraction (derive + fold + pad + freeze +
    /// Program::compile). Null = compile here; a serve::ProgramCache makes
    /// repeated constructions of the same abstraction reuse one artifact.
    CompiledProvider* compiled = nullptr;
    /// Evaluate loads through the program's opcode tables
    /// (tdg::Engine::Options::opcode_dispatch; docs/DESIGN.md §14).
    bool opcode_dispatch = true;
  };

  /// Abstract the functions marked in \p group (empty = all functions).
  /// Shares ownership of the description with the caller (the study layer
  /// hands the same description to several backends without copies).
  EquivalentModel(model::DescPtr desc, std::vector<bool> group);
  EquivalentModel(model::DescPtr desc, std::vector<bool> group, Options opts);
  /// Convenience overloads for single-model runs: copy the description
  /// into shared ownership (one validated copy at construction; safe with
  /// temporaries). Deliberately kept: tests, benches and examples build
  /// descriptions ad hoc and run one model — a copy there is simpler and
  /// harmless. Use the model::DescPtr overloads wherever one description
  /// feeds several models (the study layer always does).
  EquivalentModel(const model::ArchitectureDesc& desc, std::vector<bool> group);
  EquivalentModel(const model::ArchitectureDesc& desc, std::vector<bool> group,
                  Options opts);

  EquivalentModel(const EquivalentModel&) = delete;
  EquivalentModel& operator=(const EquivalentModel&) = delete;

  /// Run to completion (or horizon). Same outcome semantics as the baseline.
  model::ModelRuntime::Outcome run(
      std::optional<TimePoint> until = std::nullopt);

  [[nodiscard]] model::ModelRuntime& runtime() { return *runtime_; }
  [[nodiscard]] const tdg::Graph& graph() const { return compiled_->graph; }
  [[nodiscard]] const tdg::Engine& engine() const { return *engine_; }
  /// Mutable engine access for cooperating observers (the adaptive backend
  /// raises the retain margin and snapshots history windows).
  [[nodiscard]] tdg::Engine& engine_mut() { return *engine_; }
  /// The compiled abstraction backing this model: frozen graph, program and
  /// boundary metadata (the adaptive certifier walks inputs/outputs).
  [[nodiscard]] const CompiledAbstraction& compiled() const {
    return *compiled_;
  }
  [[nodiscard]] const model::DescPtr& desc_ptr() const { return desc_; }
  /// The normalized abstraction group (empty = all functions).
  [[nodiscard]] const std::vector<bool>& group() const { return group_; }
  [[nodiscard]] const trace::InstantTraceSet& instants() const {
    return runtime_->instants();
  }
  [[nodiscard]] const trace::UsageTraceSet& usage() const {
    return runtime_->usage();
  }
  [[nodiscard]] std::uint64_t relation_events() const {
    return runtime_->relation_events();
  }
  [[nodiscard]] const sim::KernelStats& kernel_stats() const {
    return runtime_->kernel_stats();
  }
  [[nodiscard]] TimePoint end_time() const { return runtime_->end_time(); }

 private:
  struct InputState {
    tdg::BoundaryInput meta;
    tdg::NodeId u = tdg::kNoNode;        // rendezvous offer node
    tdg::NodeId x = tdg::kNoNode;        // rendezvous completion node
    tdg::NodeId xw = tdg::kNoNode;       // fifo external write node
    tdg::NodeId xr = tdg::kNoNode;       // fifo computed read node
    std::uint64_t next_k = 0;            // next offer index
    bool parked = false;                 // rendezvous offer awaiting resolution
    std::uint64_t parked_k = 0;
    std::uint64_t consumed = 0;          // fifo: virtual-reader progress
    std::unique_ptr<sim::Event> ready;   // fifo: xr(k) became known
  };

  struct OutputState {
    tdg::BoundaryOutput meta;
    tdg::NodeId offer = tdg::kNoNode;
    tdg::NodeId actual = tdg::kNoNode;      // kNoNode when offer == completion
    tdg::NodeId xr_actual = tdg::kNoNode;   // fifo read instants
    std::uint64_t emitted = 0;              // consumer progress (retain floor)
    std::unique_ptr<sim::Event> ready;      // offer(k) became known
  };

  void wire_input(std::size_t idx);
  void wire_output(std::size_t idx);
  sim::Process emission_proc(std::size_t idx);
  sim::Process virtual_fifo_reader_proc(std::size_t idx);
  void raise_retain_floor();

  model::DescPtr desc_;
  std::vector<bool> group_;
  CompiledPtr compiled_;  ///< frozen graph + program + boundary metadata
  std::vector<InputState> inputs_;
  std::vector<OutputState> outputs_;
  std::unique_ptr<model::ModelRuntime> runtime_;
  std::unique_ptr<tdg::Engine> engine_;
};

}  // namespace maxev::core
