#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/baseline.hpp"
#include "model/desc.hpp"
#include "sim/event.hpp"
#include "tdg/batch_engine.hpp"
#include "tdg/derive.hpp"
#include "tdg/graph.hpp"

/// \file batch_equivalent_model.hpp
/// The batched multi-instance equivalent model (docs/DESIGN.md §9).
///
/// A composed scenario (study::compose) whose N instances share one
/// architecture description runs N identical abstraction groups in one
/// simulation kernel. core::EquivalentModel over the *merged* description
/// would derive and compile an N-times-larger temporal dependency graph;
/// this class instead derives the TDG of the *base* description once and
/// evaluates all N instances through one tdg::BatchEngine — a single
/// shared program, one shared frame arena, and iteration fronts drained at
/// timestep boundaries (sim::Kernel::set_timestep_hook) so same-instant
/// feeds from all instances propagate in one batched pass.
///
/// The simulated side is byte-for-byte the merged path: the same
/// model::ModelRuntime over the merged description simulates sources,
/// sinks and non-abstracted functions, so kernel behaviour — and with it
/// every per-instance trace — stays bit-identical to both the merged
/// equivalent model and the N solo runs. Boundary wiring (gated reception,
/// emission processes, virtual FIFO readers) deliberately *mirrors*
/// core::EquivalentModel per instance instead of sharing code with it —
/// the two sides index different engines (solo vs batch lane) and drain
/// at different times (inline vs quiescence), and the accuracy claim
/// rests on both implementing the same boundary protocol: any change to
/// that protocol in equivalent_model.cpp must be mirrored here (the
/// bit-identity suite in tests/test_batch_engine.cpp catches divergence).
/// The two behavioural differences:
///  * gated input offers always park (the deferred engine computes x(k)
///    at the next timestep boundary and resolves the rendezvous then, at
///    the same simulated instant);
///  * retain floors are tracked per instance; the shared arena reclaims a
///    frame once every instance has moved past it.

namespace maxev::core {

class BatchEquivalentModel {
 public:
  struct Options {
    /// Fold pass-through completion nodes (paper's Fig. 3 compact form).
    bool fold = true;
    /// Insert this many pass-through padding nodes (Fig. 5 sweeps).
    std::size_t pad_nodes = 0;
    /// Record instant/usage traces ("observation time").
    bool observe = true;
    /// Capacity hint for the observation sinks: expected iteration count
    /// per instance. 0 = derive from the base description.
    std::size_t expected_iterations = 0;
  };

  /// \param merged the composed description (every instance side by side,
  ///        names prefixed "<instance>/"), exactly as study::compose()
  ///        builds it — it drives the shared ModelRuntime.
  /// \param base the single description every instance shares — it drives
  ///        the TDG derivation and the batch engine.
  /// \param instance_names composition-order instance names (the trace
  ///        namespace prefixes); size = batch width N.
  /// \param group base-description abstraction group (empty = all
  ///        functions), identical for every instance.
  /// \throws maxev::DescriptionError when the merged description is not an
  ///         N-fold replication of the base description.
  BatchEquivalentModel(model::DescPtr merged, model::DescPtr base,
                       std::vector<std::string> instance_names,
                       std::vector<bool> group);
  BatchEquivalentModel(model::DescPtr merged, model::DescPtr base,
                       std::vector<std::string> instance_names,
                       std::vector<bool> group, Options opts);

  BatchEquivalentModel(const BatchEquivalentModel&) = delete;
  BatchEquivalentModel& operator=(const BatchEquivalentModel&) = delete;

  /// Run to completion (or horizon). Same outcome semantics as the merged
  /// equivalent model.
  model::ModelRuntime::Outcome run(
      std::optional<TimePoint> until = std::nullopt);

  [[nodiscard]] model::ModelRuntime& runtime() { return *runtime_; }
  /// The base (per-instance) graph — the compiled program's shape.
  [[nodiscard]] const tdg::Graph& graph() const { return graph_; }
  [[nodiscard]] const tdg::BatchEngine& engine() const { return *engine_; }
  [[nodiscard]] const trace::InstantTraceSet& instants() const {
    return runtime_->instants();
  }
  [[nodiscard]] const trace::UsageTraceSet& usage() const {
    return runtime_->usage();
  }
  [[nodiscard]] std::uint64_t relation_events() const {
    return runtime_->relation_events();
  }
  [[nodiscard]] const sim::KernelStats& kernel_stats() const {
    return runtime_->kernel_stats();
  }
  [[nodiscard]] TimePoint end_time() const { return runtime_->end_time(); }

 private:
  /// Boundary state of one instance's input/output, mirroring
  /// core::EquivalentModel's wiring with the instance lane attached.
  struct InputState {
    tdg::BoundaryInput meta;              // base-description ids/names
    std::size_t inst = 0;                 // batch lane
    model::ChannelId merged_channel = model::kInvalidId;
    tdg::NodeId u = tdg::kNoNode;
    tdg::NodeId x = tdg::kNoNode;
    tdg::NodeId xw = tdg::kNoNode;
    tdg::NodeId xr = tdg::kNoNode;
    std::uint64_t next_k = 0;
    bool parked = false;
    std::uint64_t parked_k = 0;
    std::uint64_t consumed = 0;
    std::unique_ptr<sim::Event> ready;
  };

  struct OutputState {
    tdg::BoundaryOutput meta;
    std::size_t inst = 0;
    model::ChannelId merged_channel = model::kInvalidId;
    tdg::NodeId offer = tdg::kNoNode;
    tdg::NodeId actual = tdg::kNoNode;
    tdg::NodeId xr_actual = tdg::kNoNode;
    std::uint64_t emitted = 0;
    std::unique_ptr<sim::Event> ready;
  };

  void wire_input(std::size_t idx);
  void wire_output(std::size_t idx);
  sim::Process emission_proc(std::size_t idx);
  sim::Process virtual_fifo_reader_proc(std::size_t idx);
  void raise_retain_floor(std::size_t inst);

  model::DescPtr desc_;       // merged (runtime side)
  model::DescPtr base_desc_;  // base (engine side)
  std::vector<std::string> instance_names_;
  std::vector<bool> group_;   // base group, expanded
  std::size_t width_ = 1;
  tdg::Graph graph_;          // base graph
  std::vector<InputState> inputs_;    // instance-major: all of inst 0, ...
  std::vector<OutputState> outputs_;
  std::unique_ptr<model::ModelRuntime> runtime_;
  std::unique_ptr<tdg::BatchEngine> engine_;
};

}  // namespace maxev::core
