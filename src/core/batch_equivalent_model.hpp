#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/compiled.hpp"
#include "model/baseline.hpp"
#include "model/desc.hpp"
#include "sim/event.hpp"
#include "tdg/batch_engine.hpp"
#include "tdg/derive.hpp"
#include "tdg/engine.hpp"
#include "tdg/graph.hpp"

/// \file batch_equivalent_model.hpp
/// The batched multi-instance equivalent model (docs/DESIGN.md §9–§10).
///
/// A composed scenario (study::compose) runs N instances in one simulation
/// kernel. Instances sharing one architecture description form an
/// *equal-structure sub-batch*: the TDG of that shared base description is
/// derived and compiled once (one tdg::Program) and evaluated for every
/// member through one tdg::BatchEngine — a shared frame arena with
/// contiguous per-node instance lanes, iteration fronts drained at
/// timestep boundaries (sim::Kernel::set_timestep_hook). A heterogeneous
/// composition carries SEVERAL such sub-batches side by side (the
/// carrier-aggregation case: 4+4 receivers of two variants), plus an
/// *isolated remainder* — instances whose description nobody else shares —
/// evaluated by one inline tdg::Engine over the merged description's TDG
/// restricted to their functions, exactly the graph the isolated merged
/// path would build for them. All of it runs inside ONE kernel over ONE
/// merged model::ModelRuntime.
///
/// The simulated side is byte-for-byte the merged path: the same
/// model::ModelRuntime over the merged description simulates sources,
/// sinks and non-abstracted functions, so kernel behaviour — and with it
/// every per-instance trace — stays bit-identical to both the merged
/// equivalent model and the N solo runs. Boundary wiring (gated reception,
/// emission processes, virtual FIFO readers) deliberately *mirrors*
/// core::EquivalentModel per instance instead of sharing code with it —
/// the sides index different engines (solo vs batch lane) and the accuracy
/// claim rests on all of them implementing the same boundary protocol: any
/// change to that protocol in equivalent_model.cpp must be mirrored here
/// (the bit-identity suite in tests/test_batch_engine.cpp catches
/// divergence). The remaining behavioural differences of the batched side:
///  * a gated input offer is answered inline when its completion instant
///    is already computable (tdg::BatchEngine::resolve_now — the
///    inline-resume fast path, docs/DESIGN.md §10); otherwise it parks and
///    the timestep boundary resolves it at the same simulated instant,
///    resuming the writer without a queue round-trip when the computed
///    instant is the current one (sim::Kernel::resume_now);
///  * retain floors are tracked per member instance; a group's shared
///    arena reclaims a frame once every member has moved past it.
///
/// Merged-id ↔ base-id translation is per *instance span*: each member
/// records the begin offsets of its entity blocks in the merged tables
/// (study::Instance), so groups of unequal size can interleave with the
/// remainder in any composition order.

namespace maxev::util {
class ThreadPool;
}  // namespace maxev::util

namespace maxev::core {

class BatchEquivalentModel {
 public:
  /// Begin offsets of one member instance's entity blocks in the merged
  /// description's tables (the sizes are the group base's table sizes).
  struct InstanceSpan {
    std::size_t fn = 0, ch = 0, res = 0, src = 0, sink = 0;
  };

  /// One equal-structure sub-batch: a shared base description, the
  /// abstraction group over its functions, and the member instances.
  /// The merged slice at every member's span must replicate the base
  /// structurally (model::structurally_equal's surface, names carrying the
  /// "<member>/" prefix) — validated at construction. The behavioural
  /// (std::function) identity of the members' workloads cannot be checked
  /// here; the study layer guarantees it by handing every member the SAME
  /// model::DescPtr (docs/DESIGN.md §10 grouping rules).
  struct GroupSpec {
    model::DescPtr base;
    /// Base-level abstraction group; empty = abstract every function.
    std::vector<bool> group;
    std::vector<std::string> names;  ///< member names (trace prefixes)
    std::vector<InstanceSpan> spans; ///< parallel to names
  };

  struct Options {
    /// Fold pass-through completion nodes (paper's Fig. 3 compact form).
    bool fold = true;
    /// Pass-through padding nodes *per instance* (Fig. 5 sweeps): each
    /// group's base graph gains this many (evaluated once per member) and
    /// the isolated remainder graph gains isolated_instances times this
    /// many — so every leg of a mixed composition runs the same padded
    /// work as the fully-isolated merged path, which pads N-fold.
    std::size_t pad_nodes = 0;
    /// Record instant/usage traces ("observation time").
    bool observe = true;
    /// Capacity hint for the observation sinks: expected iteration count
    /// per instance. 0 = derive from each group's base description.
    std::size_t expected_iterations = 0;
    /// Merged-level function flags of the *isolated remainder*: functions
    /// of instances outside every group that the equivalent model
    /// abstracts. Empty = no remainder; everything outside the groups is
    /// simulated.
    std::vector<bool> isolated_group;
    /// Number of remainder instances (pad_nodes accounting only).
    std::size_t isolated_instances = 0;
    /// Worker threads draining the per-group engines between timestep
    /// barriers (docs/DESIGN.md §11): the compute phase runs each group's
    /// flush on its own worker with callbacks deferred, then a serial
    /// publish phase fires them in group order — bit-identical to the
    /// serial drain. 1 = serial (also used when there are < 2 groups);
    /// 0 = one per hardware thread.
    int threads = 1;
    /// Source of the compiled abstractions (per-group base graphs and the
    /// isolated remainder). Null = compile here; a serve::ProgramCache
    /// deduplicates across study cells and composed sub-batches.
    CompiledProvider* compiled = nullptr;
    /// Evaluate loads through the programs' opcode tables
    /// (docs/DESIGN.md §14); applies to every group engine and the
    /// isolated remainder engine.
    bool opcode_dispatch = true;
    /// Drain full uniform fronts with the SoA lane kernels
    /// (tdg::BatchEngine::Options::vector_drain).
    bool vector_drain = true;
  };

  /// Grouped construction: \p groups equal-structure sub-batches (each
  /// with >= 1 member) over the \p merged description, remainder per
  /// Options::isolated_group.
  /// \throws maxev::DescriptionError when any member's merged slice is not
  ///         a structural replication of its group's base.
  BatchEquivalentModel(model::DescPtr merged, std::vector<GroupSpec> groups,
                       Options opts);

  /// Homogeneous convenience (the PR-4 shape): the merged description is
  /// an N-fold replication of \p base; instance i occupies block
  /// [i*n, (i+1)*n) of every table.
  BatchEquivalentModel(model::DescPtr merged, model::DescPtr base,
                       std::vector<std::string> instance_names,
                       std::vector<bool> group);
  BatchEquivalentModel(model::DescPtr merged, model::DescPtr base,
                       std::vector<std::string> instance_names,
                       std::vector<bool> group, Options opts);

  BatchEquivalentModel(const BatchEquivalentModel&) = delete;
  BatchEquivalentModel& operator=(const BatchEquivalentModel&) = delete;
  /// Out of line: pool_ holds a forward-declared util::ThreadPool.
  ~BatchEquivalentModel();

  /// Run to completion (or horizon). Same outcome semantics as the merged
  /// equivalent model.
  model::ModelRuntime::Outcome run(
      std::optional<TimePoint> until = std::nullopt);

  [[nodiscard]] model::ModelRuntime& runtime() { return *runtime_; }
  /// Number of equal-structure sub-batches.
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }
  /// The first group's base graph / engine — the whole model's, for the
  /// homogeneous single-group case the convenience constructors build.
  [[nodiscard]] const tdg::Graph& graph() const {
    return groups_[0].compiled->graph;
  }
  [[nodiscard]] const tdg::BatchEngine& engine() const {
    return *groups_[0].engine;
  }
  /// Per-group accessors (grouped construction).
  [[nodiscard]] const tdg::Graph& graph(std::size_t g) const {
    return groups_[g].compiled->graph;
  }
  [[nodiscard]] const tdg::BatchEngine& engine(std::size_t g) const {
    return *groups_[g].engine;
  }
  /// The isolated remainder's inline engine; null when there is none.
  [[nodiscard]] const tdg::Engine* isolated_engine() const {
    return iso_engine_.get();
  }

  /// \name Aggregate cost counters / compiled shape (groups + remainder)
  /// @{
  [[nodiscard]] std::uint64_t instances_computed() const;
  [[nodiscard]] std::uint64_t arc_terms_evaluated() const;
  /// Summed over every compiled graph: the per-group base graphs plus the
  /// remainder graph — the memory-resident program size, NOT the N-fold
  /// merged graph the isolated path would compile.
  struct CompiledShape {
    std::size_t nodes = 0;
    std::size_t paper_nodes = 0;
    std::size_t arcs = 0;
  };
  [[nodiscard]] CompiledShape compiled_shape() const;
  /// @}

  [[nodiscard]] const trace::InstantTraceSet& instants() const {
    return runtime_->instants();
  }
  [[nodiscard]] const trace::UsageTraceSet& usage() const {
    return runtime_->usage();
  }
  [[nodiscard]] std::uint64_t relation_events() const {
    return runtime_->relation_events();
  }
  [[nodiscard]] const sim::KernelStats& kernel_stats() const {
    return runtime_->kernel_stats();
  }
  [[nodiscard]] TimePoint end_time() const { return runtime_->end_time(); }

 private:
  /// Boundary state of one group member's input/output, mirroring
  /// core::EquivalentModel's wiring with the member's batch lane and
  /// merged-table span attached.
  struct InputState {
    tdg::BoundaryInput meta;              // base-description ids/names
    std::size_t grp = 0;                  // sub-batch
    std::size_t inst = 0;                 // lane within the sub-batch
    model::SourceId src_base = 0;         // member's source-span begin
    model::ChannelId merged_channel = model::kInvalidId;
    tdg::NodeId u = tdg::kNoNode;
    tdg::NodeId x = tdg::kNoNode;
    tdg::NodeId xw = tdg::kNoNode;
    tdg::NodeId xr = tdg::kNoNode;
    std::uint64_t next_k = 0;
    bool parked = false;
    std::uint64_t parked_k = 0;
    std::uint64_t consumed = 0;
    std::unique_ptr<sim::Event> ready;
  };

  struct OutputState {
    tdg::BoundaryOutput meta;
    std::size_t grp = 0;
    std::size_t inst = 0;
    model::SourceId src_base = 0;
    model::ChannelId merged_channel = model::kInvalidId;
    tdg::NodeId offer = tdg::kNoNode;
    tdg::NodeId actual = tdg::kNoNode;
    tdg::NodeId xr_actual = tdg::kNoNode;
    std::uint64_t emitted = 0;
    std::unique_ptr<sim::Event> ready;
  };

  /// One equal-structure sub-batch at run time.
  struct Group {
    model::DescPtr base;
    std::vector<bool> gflags;            // base-level, expanded
    std::vector<std::string> names;
    std::vector<InstanceSpan> spans;
    CompiledPtr compiled;  ///< frozen base graph + program + boundaries
    std::unique_ptr<tdg::BatchEngine> engine;
    std::size_t in_begin = 0, n_in = 0;    // per-member strides in inputs_
    std::size_t out_begin = 0, n_out = 0;  // per-member strides in outputs_
  };

  /// Isolated-remainder boundary state (inline tdg::Engine, merged ids —
  /// the EquivalentModel wiring verbatim).
  struct IsoInputState {
    tdg::BoundaryInput meta;
    tdg::NodeId u = tdg::kNoNode;
    tdg::NodeId x = tdg::kNoNode;
    tdg::NodeId xw = tdg::kNoNode;
    tdg::NodeId xr = tdg::kNoNode;
    std::uint64_t next_k = 0;
    bool parked = false;
    std::uint64_t parked_k = 0;
    std::uint64_t consumed = 0;
    std::unique_ptr<sim::Event> ready;
  };

  struct IsoOutputState {
    tdg::BoundaryOutput meta;
    tdg::NodeId offer = tdg::kNoNode;
    tdg::NodeId actual = tdg::kNoNode;
    tdg::NodeId xr_actual = tdg::kNoNode;
    std::uint64_t emitted = 0;
    std::unique_ptr<sim::Event> ready;
  };

  void build_group(std::size_t g, const Options& opts);
  void build_isolated(const Options& opts);
  void wire_input(std::size_t idx);
  void wire_output(std::size_t idx);
  sim::Process emission_proc(std::size_t idx);
  sim::Process virtual_fifo_reader_proc(std::size_t idx);
  void raise_retain_floor(std::size_t grp, std::size_t inst);
  void wire_iso_input(std::size_t idx);
  void wire_iso_output(std::size_t idx);
  sim::Process iso_emission_proc(std::size_t idx);
  sim::Process iso_virtual_fifo_reader_proc(std::size_t idx);
  void raise_iso_retain_floor();

  model::DescPtr desc_;  // merged (runtime side)
  std::vector<Group> groups_;
  std::vector<InputState> inputs_;    // group-major, then member-major
  std::vector<OutputState> outputs_;
  CompiledPtr iso_compiled_;
  std::unique_ptr<tdg::Engine> iso_engine_;
  std::vector<IsoInputState> iso_inputs_;
  std::vector<IsoOutputState> iso_outputs_;
  std::unique_ptr<model::ModelRuntime> runtime_;
  /// Present only when Options::threads enables the parallel drain.
  std::unique_ptr<util::ThreadPool> pool_;
  /// Per-group "flush did work" flags of one hook invocation (char, not
  /// bool: vector<bool> packs bits and adjacent writes would race).
  std::vector<char> drained_;
};

}  // namespace maxev::core
