#include "core/experiment.hpp"

#include <chrono>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace maxev::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

RunMetrics measure_baseline(const model::ArchitectureDesc& desc,
                            int repetitions) {
  if (repetitions < 1) throw Error("measure_baseline: repetitions must be >= 1");
  RunMetrics m;
  std::vector<double> walls;
  for (int rep = 0; rep < repetitions; ++rep) {
    model::ModelRuntime runtime(desc);
    const auto t0 = Clock::now();
    const auto outcome = runtime.run();
    walls.push_back(seconds_since(t0));
    if (rep == 0) {
      m.kernel_events = runtime.kernel_stats().events_scheduled;
      m.resumes = runtime.kernel_stats().resumes;
      m.relation_events = runtime.relation_events();
      m.sim_end = runtime.end_time();
      m.completed = outcome.completed;
      if (!outcome.completed && !outcome.stall_report.empty())
        throw SimulationError("baseline: " + outcome.stall_report);
    }
  }
  m.wall_seconds = median_of(std::move(walls));
  return m;
}

Comparison run_comparison(const model::ArchitectureDesc& desc,
                          const ExperimentOptions& opts) {
  if (opts.repetitions < 1)
    throw Error("run_comparison: repetitions must be >= 1");

  Comparison cmp;

  // --- Baseline runs (keep the first runtime's traces for comparison). ---
  std::unique_ptr<model::ModelRuntime> baseline_traces;
  {
    std::vector<double> walls;
    for (int rep = 0; rep < opts.repetitions; ++rep) {
      auto runtime = std::make_unique<model::ModelRuntime>(
          desc, std::vector<bool>{}, opts.observe);
      if (opts.event_overhead_ns > 0) {
        runtime->kernel().set_synthetic_event_overhead(
            std::chrono::nanoseconds(
                static_cast<std::int64_t>(opts.event_overhead_ns)));
      }
      const auto t0 = Clock::now();
      const auto outcome = runtime->run();
      walls.push_back(seconds_since(t0));
      if (rep == 0) {
        cmp.baseline.kernel_events = runtime->kernel_stats().events_scheduled;
        cmp.baseline.resumes = runtime->kernel_stats().resumes;
        cmp.baseline.relation_events = runtime->relation_events();
        cmp.baseline.sim_end = runtime->end_time();
        cmp.baseline.completed = outcome.completed;
        if (opts.require_completion && !outcome.completed)
          throw SimulationError("baseline: " + outcome.stall_report);
        baseline_traces = std::move(runtime);
      }
    }
    cmp.baseline.wall_seconds = median_of(std::move(walls));
  }

  // --- Equivalent-model runs. ---
  EquivalentModel::Options eopts;
  eopts.fold = opts.fold;
  eopts.pad_nodes = opts.pad_nodes;
  eopts.observe = opts.observe;
  std::unique_ptr<EquivalentModel> equivalent_traces;
  {
    std::vector<double> walls;
    for (int rep = 0; rep < opts.repetitions; ++rep) {
      auto eq = std::make_unique<EquivalentModel>(desc, opts.group, eopts);
      if (opts.event_overhead_ns > 0) {
        eq->runtime().kernel().set_synthetic_event_overhead(
            std::chrono::nanoseconds(
                static_cast<std::int64_t>(opts.event_overhead_ns)));
      }
      const auto t0 = Clock::now();
      const auto outcome = eq->run();
      walls.push_back(seconds_since(t0));
      if (rep == 0) {
        cmp.equivalent.kernel_events = eq->kernel_stats().events_scheduled;
        cmp.equivalent.resumes = eq->kernel_stats().resumes;
        cmp.equivalent.relation_events = eq->relation_events();
        cmp.equivalent.instances_computed = eq->engine().instances_computed();
        cmp.equivalent.arc_terms = eq->engine().arc_terms_evaluated();
        cmp.equivalent.sim_end = eq->end_time();
        cmp.equivalent.completed = outcome.completed;
        cmp.graph_nodes = eq->graph().node_count();
        cmp.graph_paper_nodes = eq->graph().paper_node_count();
        cmp.graph_arcs = eq->graph().arc_count();
        if (opts.require_completion && !outcome.completed)
          throw SimulationError("equivalent: " + outcome.stall_report);
        equivalent_traces = std::move(eq);
      }
    }
    cmp.equivalent.wall_seconds = median_of(std::move(walls));
  }

  cmp.speedup = cmp.equivalent.wall_seconds > 0.0
                    ? cmp.baseline.wall_seconds / cmp.equivalent.wall_seconds
                    : 0.0;
  cmp.event_ratio =
      cmp.equivalent.relation_events > 0
          ? static_cast<double>(cmp.baseline.relation_events) /
                static_cast<double>(cmp.equivalent.relation_events)
          : 0.0;
  cmp.kernel_event_ratio =
      cmp.equivalent.kernel_events > 0
          ? static_cast<double>(cmp.baseline.kernel_events) /
                static_cast<double>(cmp.equivalent.kernel_events)
          : 0.0;

  if (opts.compare_traces && opts.observe) {
    cmp.instant_mismatch = trace::compare_instants(
        baseline_traces->instants(), equivalent_traces->instants());
    trace::UsageTraceSet a = baseline_traces->usage();
    trace::UsageTraceSet b = equivalent_traces->usage();
    a.sort_all();
    b.sort_all();
    cmp.usage_mismatch = trace::compare_usage(a, b);
  }
  return cmp;
}

}  // namespace maxev::core
