#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "serve/program_cache.hpp"
#include "serve/session.hpp"

/// \file protocol.hpp
/// Line-delimited JSON request/response protocol over serve::Session
/// (docs/DESIGN.md §13), the transport-agnostic half of the `maxev_serve`
/// example binary: one request object per line in, one response object per
/// line out. A Server multiplexes named sessions over one shared
/// ProgramCache, so repeated submissions of structurally identical
/// scenarios skip the derive → compile pipeline.
///
/// Requests (`cmd` selects the verb; `session` names the target):
///   {"cmd":"submit","session":S,"scenario":{...}}        create a session
///   {"cmd":"feed","session":S,"source":i,"tokens":[...]} append tokens
///   {"cmd":"poll","session":S}                           advance + deltas
///   {"cmd":"checkpoint","session":S}                     replay document
///   {"cmd":"restore","session":S,"checkpoint":"..."}     rebuild from one
///   {"cmd":"close","session":S}                          drop the session
///   {"cmd":"stats"}                                      cache/session stats
///
/// Every response carries `"ok"`; failures are `{"ok":false,"error":...}`
/// and never tear down the server or other sessions.

namespace maxev::serve {

class Server {
 public:
  struct Options {
    /// Shared program-cache capacity (entries).
    std::size_t cache_capacity = ProgramCache::kDefaultCapacity;
    /// Guards applied to every session's advances (0/none = unlimited).
    sim::RunGuards guards;
  };

  Server();
  explicit Server(Options opts);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handle one request line; always returns a single-line JSON response
  /// (protocol errors are reported in-band, never thrown).
  [[nodiscard]] std::string handle(std::string_view line);

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] const ProgramCache& cache() const { return cache_; }

 private:
  Options opts_;
  ProgramCache cache_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
};

}  // namespace maxev::serve
