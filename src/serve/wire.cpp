#include "serve/wire.hpp"

#include <utility>

#include "model/load.hpp"
#include "tdg/ops.hpp"

namespace maxev::serve {

namespace {

// ------------------------------------------------------------ stubs ----

/// Deserialized `{"type": "opaque"}` spec: structurally present, throws
/// when the simulation actually evaluates it.
template <typename Ret>
struct OpaqueStub {
  std::shared_ptr<const std::string> what;
  template <typename... Args>
  Ret operator()(Args&&...) const {
    throw WireError("wire: opaque behavioural spec evaluated (" + *what +
                    "); rebuild the description with concrete specs");
  }
};

template <typename Ret>
OpaqueStub<Ret> opaque_stub(const std::string& where) {
  return OpaqueStub<Ret>{std::make_shared<const std::string>(where)};
}

// ------------------------------------------------------- spec writers ----

void write_load_spec(JsonWriter& w, const model::LoadFn& f) {
  // Classification is the opcode layer's (tdg::ops::classify_load): the
  // wire format and the engines' dispatch share one introspection
  // vocabulary, so "serializes concretely" and "runs without touching a
  // std::function" are the same property.
  w.begin_object();
  switch (tdg::ops::classify_load(f)) {
    case tdg::ops::Kind::kRateConstant:
      w.field("type", "constant")
          .field("ops", f.target<model::ConstantOpsFn>()->ops);
      break;
    case tdg::ops::Kind::kLinearOps: {
      const auto* l = f.target<model::LinearOpsFn>();
      w.field("type", "linear").field("base", l->base).field("per_unit",
                                                             l->per_unit);
      break;
    }
    case tdg::ops::Kind::kParamOps: {
      const auto* p = f.target<model::ParamOpsFn>();
      w.field("type", "param").field("base", p->base).field("scale", p->scale);
      w.field("index", static_cast<std::uint64_t>(p->param_index));
      break;
    }
    case tdg::ops::Kind::kCyclicOps: {
      w.field("type", "cyclic").key("table").begin_array();
      for (const std::int64_t v : f.target<model::CyclicOpsFn>()->table)
        w.value(v);
      w.end_array();
      break;
    }
    default:
      w.field("type", "opaque");
      break;
  }
  w.end_object();
}

void write_time_spec(JsonWriter& w,
                     const std::function<TimePoint(std::uint64_t)>& f) {
  w.begin_object();
  if (const auto* t = f.target<TableTimeFn>()) {
    w.field("type", "table").key("values_ps").begin_array();
    for (const std::int64_t v : *t->values_ps) w.value(v);
    w.end_array();
  } else if (const auto* p = f.target<PeriodicTimeFn>()) {
    w.field("type", "periodic")
        .field("offset_ps", p->offset_ps)
        .field("period_ps", p->period_ps);
  } else {
    w.field("type", "opaque");
  }
  w.end_object();
}

void write_duration_spec(JsonWriter& w,
                         const std::function<Duration(std::uint64_t)>& f) {
  if (!f) {
    w.null_value();
    return;
  }
  w.begin_object();
  if (const auto* c = f.target<ConstantDurationFn>()) {
    w.field("type", "constant").field("ps", c->ps);
  } else if (const auto* t = f.target<TableDurationFn>()) {
    w.field("type", "table").key("values_ps").begin_array();
    for (const std::int64_t v : *t->values_ps) w.value(v);
    w.end_array();
  } else {
    w.field("type", "opaque");
  }
  w.end_object();
}

void write_token_attrs(JsonWriter& w, const model::TokenAttrs& a) {
  w.begin_object().field("size", a.size).key("params").begin_array();
  for (const double p : a.params) w.value(p);
  w.end_array().end_object();
}

void write_attrs_spec(
    JsonWriter& w,
    const std::function<model::TokenAttrs(std::uint64_t)>& f) {
  w.begin_object();
  if (const auto* c = f.target<ConstantAttrsFn>()) {
    w.field("type", "constant").key("attrs");
    write_token_attrs(w, c->attrs);
  } else if (const auto* t = f.target<TableAttrsFn>()) {
    w.field("type", "table").key("table").begin_array();
    for (const model::TokenAttrs& a : *t->table) write_token_attrs(w, a);
    w.end_array();
  } else {
    w.field("type", "opaque");
  }
  w.end_object();
}

// ------------------------------------------------------- spec readers ----

[[noreturn]] void wire_fail(const std::string& where, const std::string& what) {
  throw WireError("wire: " + where + ": " + what);
}

const JsonValue& member(const JsonValue& obj, const std::string& key,
                        const std::string& where) {
  const JsonValue* v = obj.is_object() ? obj.find(key) : nullptr;
  if (v == nullptr) wire_fail(where, "missing member '" + key + "'");
  return *v;
}

std::string spec_type(const JsonValue& spec, const std::string& where) {
  if (!spec.is_object()) wire_fail(where, "spec must be an object");
  return member(spec, "type", where).as_string();
}

std::vector<std::int64_t> read_int64_array(const JsonValue& arr,
                                           const std::string& where) {
  if (!arr.is_array()) wire_fail(where, "expected an array");
  std::vector<std::int64_t> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) out.push_back(arr[i].as_int64());
  return out;
}

model::LoadFn read_load_spec(const JsonValue& spec, const std::string& where) {
  const std::string type = spec_type(spec, where);
  if (type == "constant")
    return model::constant_ops(member(spec, "ops", where).as_int64());
  if (type == "linear")
    return model::linear_ops(member(spec, "base", where).as_int64(),
                             member(spec, "per_unit", where).as_int64());
  if (type == "param")
    return model::param_ops(
        member(spec, "base", where).as_int64(),
        member(spec, "scale", where).as_double(),
        static_cast<std::size_t>(member(spec, "index", where).as_uint64()));
  if (type == "cyclic")
    return model::cyclic_ops(
        read_int64_array(member(spec, "table", where), where));
  if (type == "opaque") return opaque_stub<std::int64_t>(where);
  wire_fail(where, "unknown load spec type '" + type + "'");
}

std::function<TimePoint(std::uint64_t)> read_time_spec(
    const JsonValue& spec, const std::string& where) {
  const std::string type = spec_type(spec, where);
  if (type == "table")
    return TableTimeFn{std::make_shared<const std::vector<std::int64_t>>(
        read_int64_array(member(spec, "values_ps", where), where))};
  if (type == "periodic")
    return PeriodicTimeFn{member(spec, "offset_ps", where).as_int64(),
                          member(spec, "period_ps", where).as_int64()};
  if (type == "opaque") return opaque_stub<TimePoint>(where);
  wire_fail(where, "unknown time spec type '" + type + "'");
}

std::function<Duration(std::uint64_t)> read_duration_spec(
    const JsonValue& spec, const std::string& where) {
  if (spec.is_null()) return nullptr;
  const std::string type = spec_type(spec, where);
  if (type == "constant")
    return ConstantDurationFn{member(spec, "ps", where).as_int64()};
  if (type == "table")
    return TableDurationFn{std::make_shared<const std::vector<std::int64_t>>(
        read_int64_array(member(spec, "values_ps", where), where))};
  if (type == "opaque") return opaque_stub<Duration>(where);
  wire_fail(where, "unknown duration spec type '" + type + "'");
}

model::TokenAttrs read_token_attrs(const JsonValue& v,
                                   const std::string& where) {
  model::TokenAttrs a;
  a.size = member(v, "size", where).as_int64();
  const JsonValue& params = member(v, "params", where);
  if (!params.is_array() || params.size() != a.params.size())
    wire_fail(where, "attrs params must be an array of " +
                         std::to_string(a.params.size()));
  for (std::size_t i = 0; i < a.params.size(); ++i)
    a.params[i] = params[i].as_double();
  return a;
}

std::function<model::TokenAttrs(std::uint64_t)> read_attrs_spec(
    const JsonValue& spec, const std::string& where) {
  const std::string type = spec_type(spec, where);
  if (type == "constant")
    return ConstantAttrsFn{
        read_token_attrs(member(spec, "attrs", where), where)};
  if (type == "table") {
    const JsonValue& arr = member(spec, "table", where);
    if (!arr.is_array()) wire_fail(where, "attrs table must be an array");
    std::vector<model::TokenAttrs> table;
    table.reserve(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i)
      table.push_back(read_token_attrs(arr[i], where));
    return TableAttrsFn{std::make_shared<const std::vector<model::TokenAttrs>>(
        std::move(table))};
  }
  if (type == "opaque") return opaque_stub<model::TokenAttrs>(where);
  wire_fail(where, "unknown attrs spec type '" + type + "'");
}

void check_version(const JsonValue& doc, const char* envelope) {
  if (!doc.is_object())
    throw WireError(std::string("wire: ") + envelope +
                    " document must be a JSON object");
  const JsonValue* v = doc.find(envelope);
  if (v == nullptr)
    throw WireError(std::string("wire: not a ") + envelope +
                    " document (missing version member)");
  if (!v->is_int64() || v->as_int64() != kWireVersion)
    throw WireError(std::string("wire: unsupported ") + envelope +
                    " version (expected " + std::to_string(kWireVersion) +
                    ")");
}

}  // namespace

// ------------------------------------------------------ desc documents ----

std::string desc_to_json(const model::ArchitectureDesc& desc) {
  if (!desc.validated())
    throw WireError("desc_to_json: description must be validated");
  JsonWriter w;
  w.begin_object().field("maxev_wire", kWireVersion).key("desc").begin_object();

  w.key("resources").begin_array();
  for (const model::ResourceDesc& r : desc.resources()) {
    w.begin_object().field("name", r.name);
    w.field("policy", r.policy == model::ResourcePolicy::kSequentialCyclic
                          ? "sequential_cyclic"
                          : "concurrent");
    w.field("ops_per_second", r.ops_per_second).end_object();
  }
  w.end_array();

  w.key("channels").begin_array();
  for (const model::ChannelDesc& c : desc.channels()) {
    w.begin_object().field("name", c.name);
    w.field("kind",
            c.kind == model::ChannelKind::kRendezvous ? "rendezvous" : "fifo");
    if (c.kind == model::ChannelKind::kFifo)
      w.field("capacity", static_cast<std::uint64_t>(c.capacity));
    w.end_object();
  }
  w.end_array();

  w.key("functions").begin_array();
  for (const model::FunctionDesc& f : desc.functions()) {
    w.begin_object().field("name", f.name);
    w.field("resource", static_cast<std::int64_t>(f.resource));
    w.key("body").begin_array();
    for (const model::StatementDesc& s : f.body) {
      w.begin_object();
      switch (s.kind) {
        case model::StatementKind::kRead:
          w.field("kind", "read");
          w.field("channel", static_cast<std::int64_t>(s.channel));
          break;
        case model::StatementKind::kWrite:
          w.field("kind", "write");
          w.field("channel", static_cast<std::int64_t>(s.channel));
          break;
        case model::StatementKind::kExecute:
          w.field("kind", "execute").field("label", s.label);
          w.key("load");
          write_load_spec(w, s.load);
          break;
      }
      w.end_object();
    }
    w.end_array().end_object();
  }
  w.end_array();

  w.key("sources").begin_array();
  for (const model::SourceDesc& s : desc.sources()) {
    w.begin_object().field("name", s.name);
    w.field("channel", static_cast<std::int64_t>(s.channel));
    w.field("count", s.count);
    w.key("earliest");
    write_time_spec(w, s.earliest);
    w.key("gap");
    write_duration_spec(w, s.gap);
    w.key("attrs");
    write_attrs_spec(w, s.attrs);
    w.end_object();
  }
  w.end_array();

  w.key("sinks").begin_array();
  for (const model::SinkDesc& s : desc.sinks()) {
    w.begin_object().field("name", s.name);
    w.field("channel", static_cast<std::int64_t>(s.channel));
    w.key("consume_delay");
    write_duration_spec(w, s.consume_delay);
    w.end_object();
  }
  w.end_array();

  w.end_object().end_object();
  return w.str();
}

model::ArchitectureDesc desc_from_json(const JsonValue& doc,
                                       StreamSourceFactory* streams) {
  check_version(doc, "maxev_wire");
  const JsonValue& d = member(doc, "desc", "document");
  model::ArchitectureDesc out;

  const JsonValue& resources = member(d, "resources", "desc");
  for (std::size_t i = 0; i < resources.size(); ++i) {
    const JsonValue& r = resources[i];
    const std::string where = "resources[" + std::to_string(i) + "]";
    const std::string policy = member(r, "policy", where).as_string();
    model::ResourcePolicy p;
    if (policy == "sequential_cyclic")
      p = model::ResourcePolicy::kSequentialCyclic;
    else if (policy == "concurrent")
      p = model::ResourcePolicy::kConcurrent;
    else
      wire_fail(where, "unknown policy '" + policy + "'");
    out.add_resource(member(r, "name", where).as_string(), p,
                     member(r, "ops_per_second", where).as_double());
  }

  const JsonValue& channels = member(d, "channels", "desc");
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const JsonValue& c = channels[i];
    const std::string where = "channels[" + std::to_string(i) + "]";
    const std::string kind = member(c, "kind", where).as_string();
    if (kind == "rendezvous") {
      out.add_rendezvous(member(c, "name", where).as_string());
    } else if (kind == "fifo") {
      out.add_fifo(member(c, "name", where).as_string(),
                   static_cast<std::size_t>(
                       member(c, "capacity", where).as_uint64()));
    } else {
      wire_fail(where, "unknown channel kind '" + kind + "'");
    }
  }

  const auto channel_id = [&channels](const JsonValue& v,
                                      const std::string& where) {
    const std::int64_t ch = v.as_int64();
    if (ch < 0 || static_cast<std::size_t>(ch) >= channels.size())
      wire_fail(where, "channel index " + std::to_string(ch) +
                           " out of range (have " +
                           std::to_string(channels.size()) + ")");
    return static_cast<model::ChannelId>(ch);
  };

  const JsonValue& functions = member(d, "functions", "desc");
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const JsonValue& f = functions[i];
    const std::string where = "functions[" + std::to_string(i) + "]";
    const std::int64_t res = member(f, "resource", where).as_int64();
    if (res < 0 || static_cast<std::size_t>(res) >= resources.size())
      wire_fail(where, "resource index " + std::to_string(res) +
                           " out of range");
    const model::FunctionId fid = out.add_function(
        member(f, "name", where).as_string(),
        static_cast<model::ResourceId>(res));
    const JsonValue& body = member(f, "body", where);
    for (std::size_t j = 0; j < body.size(); ++j) {
      const JsonValue& s = body[j];
      const std::string swhere = where + ".body[" + std::to_string(j) + "]";
      const std::string kind = member(s, "kind", swhere).as_string();
      if (kind == "read") {
        out.fn_read(fid, channel_id(member(s, "channel", swhere), swhere));
      } else if (kind == "write") {
        out.fn_write(fid, channel_id(member(s, "channel", swhere), swhere));
      } else if (kind == "execute") {
        out.fn_execute(fid, read_load_spec(member(s, "load", swhere), swhere));
        // Labels are derived ("<fn>.e<i>"); a mismatching explicit label
        // would silently change structural identity, so reject it.
        if (const JsonValue* label = s.find("label")) {
          const model::StatementDesc& added =
              out.functions()[static_cast<std::size_t>(fid)].body.back();
          if (label->as_string() != added.label)
            wire_fail(swhere, "label '" + label->as_string() +
                                  "' does not match the derived label '" +
                                  added.label + "'");
        }
      } else {
        wire_fail(swhere, "unknown statement kind '" + kind + "'");
      }
    }
  }

  const JsonValue& sources = member(d, "sources", "desc");
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const JsonValue& s = sources[i];
    const std::string where = "sources[" + std::to_string(i) + "]";
    const std::string name = member(s, "name", where).as_string();
    const std::uint64_t count = member(s, "count", where).as_uint64();
    const model::ChannelId ch =
        channel_id(member(s, "channel", where), where);
    const JsonValue& earliest = member(s, "earliest", where);
    if (spec_type(earliest, where) == "stream") {
      if (streams == nullptr)
        wire_fail(where,
                  "stream-typed source outside a session (no stream factory)");
      StreamSourceFactory::Fns fns =
          streams->make_stream_source(i, name, count);
      out.add_source(name, ch, count, std::move(fns.earliest),
                     std::move(fns.attrs));
    } else {
      out.add_source(name, ch, count, read_time_spec(earliest, where),
                     read_attrs_spec(member(s, "attrs", where), where),
                     read_duration_spec(member(s, "gap", where), where));
    }
  }

  const JsonValue& sinks = member(d, "sinks", "desc");
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    const JsonValue& s = sinks[i];
    const std::string where = "sinks[" + std::to_string(i) + "]";
    out.add_sink(member(s, "name", where).as_string(),
                 channel_id(member(s, "channel", where), where),
                 read_duration_spec(member(s, "consume_delay", where), where));
  }

  out.validate();
  return out;
}

model::ArchitectureDesc desc_from_json(std::string_view text,
                                       StreamSourceFactory* streams) {
  return desc_from_json(json_parse(text), streams);
}

bool source_is_stream(const JsonValue& doc, std::size_t s) {
  check_version(doc, "maxev_wire");
  const JsonValue& sources =
      member(member(doc, "desc", "document"), "sources", "desc");
  if (s >= sources.size()) return false;
  const std::string where = "sources[" + std::to_string(s) + "]";
  return spec_type(member(sources[s], "earliest", where), where) == "stream";
}

// --------------------------------------------------- program documents ----

namespace {

void write_scalar_array(JsonWriter& w, const char* key,
                        const std::vector<mp::Scalar>& xs) {
  w.key(key).begin_array();
  for (const mp::Scalar& x : xs) {
    if (x.is_eps())
      w.null_value();
    else
      w.value(x.value());
  }
  w.end_array();
}

template <typename T>
void write_int_array(JsonWriter& w, const char* key, const std::vector<T>& xs) {
  w.key(key).begin_array();
  for (const T v : xs) w.value(static_cast<std::int64_t>(v));
  w.end_array();
}

std::vector<mp::Scalar> read_scalar_array(const JsonValue& arr,
                                          const std::string& where) {
  if (!arr.is_array()) wire_fail(where, "expected an array");
  std::vector<mp::Scalar> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const JsonValue& v = arr[i];
    out.push_back(v.is_null() ? mp::Scalar::eps()
                              : mp::Scalar::of(v.as_int64()));
  }
  return out;
}

template <typename T>
std::vector<T> read_int_array_as(const JsonValue& arr,
                                 const std::string& where) {
  if (!arr.is_array()) wire_fail(where, "expected an array");
  std::vector<T> out;
  out.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i)
    out.push_back(static_cast<T>(arr[i].as_int64()));
  return out;
}

void check_csr(const std::vector<std::int32_t>& offsets, std::size_t n_nodes,
               std::size_t n_entries, const std::string& name) {
  if (offsets.size() != n_nodes + 1)
    wire_fail(name, "CSR offsets must have n_nodes + 1 entries");
  if (!offsets.empty() &&
      (offsets.front() != 0 ||
       offsets.back() != static_cast<std::int32_t>(n_entries)))
    wire_fail(name, "CSR offsets must span [0, entry count]");
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i)
    if (offsets[i] > offsets[i + 1])
      wire_fail(name, "CSR offsets must be non-decreasing");
}

}  // namespace

std::string program_to_json(const tdg::Program& p) {
  JsonWriter w;
  w.begin_object().field("maxev_program", kWireVersion);
  w.field("n_nodes", static_cast<std::uint64_t>(p.n_nodes));
  w.field("n_sources", static_cast<std::uint64_t>(p.n_sources));

  write_int_array(w, "in_arc_offsets", p.in_arc_offsets);
  write_int_array(w, "in_src", p.in_src);
  write_int_array(w, "in_lag", p.in_lag);
  write_int_array(w, "in_attr_source", p.in_attr_source);
  write_int_array(w, "in_guard", p.in_guard);
  write_int_array(w, "in_prog_off", p.in_prog_off);
  write_int_array(w, "in_prog_len", p.in_prog_len);
  write_scalar_array(w, "in_fixed", p.in_fixed);

  write_int_array(w, "out_arc_offsets", p.out_arc_offsets);
  write_int_array(w, "out_dst", p.out_dst);
  write_int_array(w, "out_lag", p.out_lag);

  write_int_array(w, "lagged_offsets", p.lagged_offsets);
  write_int_array(w, "lagged_src", p.lagged_src);
  write_int_array(w, "lagged_lag", p.lagged_lag);
  write_int_array(w, "static_pending", p.static_pending);
  write_int_array(w, "lagged_nodes", p.lagged_nodes);
  write_int_array(w, "always_ready", p.always_ready);

  write_int_array(w, "op_exec", p.op_exec);
  write_scalar_array(w, "op_fixed", p.op_fixed);
  write_int_array(w, "op_load", p.op_load);
  w.key("op_rate").begin_array();
  for (const double r : p.op_rate) w.value(r);
  w.end_array();
  write_int_array(w, "op_resource", p.op_resource);
  w.key("op_label").begin_array();
  for (const std::string& s : p.op_label) w.value(s);
  w.end_array();

  // Hoisted guards cannot cross the wire (no named guard functors yet);
  // record the count so the loaded document validates against a
  // recompiled program's shape. Loads DO cross: factory-built functors
  // serialize as concrete specs (the tdg::ops vocabulary), hand-written
  // lambdas as opaque stubs — the loaded program recompiles its opcode
  // tables and runs concrete loads for real.
  w.field("n_guards", static_cast<std::uint64_t>(p.guards.size()));
  w.key("loads").begin_array();
  for (const model::LoadFn& f : p.loads) write_load_spec(w, f);
  w.end_array();

  w.key("attr_dsts_by_source").begin_array();
  for (const auto& dsts : p.attr_dsts_by_source) {
    w.begin_array();
    for (const tdg::NodeId n : dsts) w.value(static_cast<std::int64_t>(n));
    w.end_array();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

tdg::Program program_from_json(const JsonValue& doc) {
  check_version(doc, "maxev_program");
  tdg::Program p;
  const auto where = [](const char* k) { return std::string("program.") + k; };

  p.n_nodes =
      static_cast<std::size_t>(member(doc, "n_nodes", "program").as_uint64());
  p.n_sources =
      static_cast<std::size_t>(member(doc, "n_sources", "program").as_uint64());

  const auto i32s = [&](const char* k) {
    return read_int_array_as<std::int32_t>(member(doc, k, "program"),
                                           where(k));
  };
  const auto u32s = [&](const char* k) {
    return read_int_array_as<std::uint32_t>(member(doc, k, "program"),
                                            where(k));
  };

  p.in_arc_offsets = i32s("in_arc_offsets");
  p.in_src = i32s("in_src");
  p.in_lag = u32s("in_lag");
  p.in_attr_source = i32s("in_attr_source");
  p.in_guard = i32s("in_guard");
  p.in_prog_off = i32s("in_prog_off");
  p.in_prog_len = i32s("in_prog_len");
  p.in_fixed = read_scalar_array(member(doc, "in_fixed", "program"),
                                 where("in_fixed"));

  p.out_arc_offsets = i32s("out_arc_offsets");
  p.out_dst = i32s("out_dst");
  p.out_lag = u32s("out_lag");

  p.lagged_offsets = i32s("lagged_offsets");
  p.lagged_src = i32s("lagged_src");
  p.lagged_lag = u32s("lagged_lag");
  p.static_pending = i32s("static_pending");
  p.lagged_nodes = i32s("lagged_nodes");
  p.always_ready = i32s("always_ready");

  p.op_exec = read_int_array_as<std::uint8_t>(
      member(doc, "op_exec", "program"), where("op_exec"));
  p.op_fixed = read_scalar_array(member(doc, "op_fixed", "program"),
                                 where("op_fixed"));
  p.op_load = i32s("op_load");
  {
    const JsonValue& rates = member(doc, "op_rate", "program");
    if (!rates.is_array()) wire_fail(where("op_rate"), "expected an array");
    p.op_rate.reserve(rates.size());
    for (std::size_t i = 0; i < rates.size(); ++i)
      p.op_rate.push_back(rates[i].as_double());
  }
  p.op_resource = i32s("op_resource");
  {
    const JsonValue& labels = member(doc, "op_label", "program");
    if (!labels.is_array()) wire_fail(where("op_label"), "expected an array");
    p.op_label.reserve(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i)
      p.op_label.push_back(labels[i].as_string());
  }

  const std::size_t n_guards = static_cast<std::size_t>(
      member(doc, "n_guards", "program").as_uint64());
  p.guards.assign(n_guards, tdg::GuardFn(opaque_stub<bool>("program.guards")));
  {
    const JsonValue& loads = member(doc, "loads", "program");
    if (!loads.is_array()) wire_fail(where("loads"), "expected an array");
    p.loads.reserve(loads.size());
    for (std::size_t i = 0; i < loads.size(); ++i)
      p.loads.push_back(read_load_spec(loads[i], where("loads")));
  }
  const std::size_t n_loads = p.loads.size();

  {
    const JsonValue& by_src = member(doc, "attr_dsts_by_source", "program");
    if (!by_src.is_array())
      wire_fail(where("attr_dsts_by_source"), "expected an array");
    p.attr_dsts_by_source.reserve(by_src.size());
    for (std::size_t i = 0; i < by_src.size(); ++i)
      p.attr_dsts_by_source.push_back(read_int_array_as<tdg::NodeId>(
          by_src[i], where("attr_dsts_by_source")));
  }

  // Referential integrity: CSR shape, table-parallel lengths, id ranges.
  const std::size_t n_arcs = p.in_src.size();
  check_csr(p.in_arc_offsets, p.n_nodes, n_arcs, where("in_arc_offsets"));
  if (p.in_lag.size() != n_arcs || p.in_attr_source.size() != n_arcs ||
      p.in_guard.size() != n_arcs || p.in_prog_off.size() != n_arcs ||
      p.in_prog_len.size() != n_arcs || p.in_fixed.size() != n_arcs)
    wire_fail("program", "in_* tables must have equal lengths");
  check_csr(p.out_arc_offsets, p.n_nodes, p.out_dst.size(),
            where("out_arc_offsets"));
  if (p.out_lag.size() != p.out_dst.size())
    wire_fail("program", "out_* tables must have equal lengths");
  check_csr(p.lagged_offsets, p.n_nodes, p.lagged_src.size(),
            where("lagged_offsets"));
  if (p.lagged_lag.size() != p.lagged_src.size())
    wire_fail("program", "lagged_* tables must have equal lengths");
  if (p.static_pending.size() != p.n_nodes)
    wire_fail("program", "static_pending must have n_nodes entries");
  const std::size_t n_ops = p.op_exec.size();
  if (p.op_fixed.size() != n_ops || p.op_load.size() != n_ops ||
      p.op_rate.size() != n_ops || p.op_resource.size() != n_ops ||
      p.op_label.size() != n_ops)
    wire_fail("program", "op_* tables must have equal lengths");
  if (p.attr_dsts_by_source.size() != p.n_sources)
    wire_fail("program", "attr_dsts_by_source must have n_sources entries");
  const auto check_nodes = [&](const std::vector<tdg::NodeId>& xs,
                               const char* k) {
    for (const tdg::NodeId n : xs)
      if (n < 0 || static_cast<std::size_t>(n) >= p.n_nodes)
        wire_fail(where(k), "node id out of range");
  };
  check_nodes(p.in_src, "in_src");
  check_nodes(p.out_dst, "out_dst");
  check_nodes(p.lagged_src, "lagged_src");
  check_nodes(p.lagged_nodes, "lagged_nodes");
  check_nodes(p.always_ready, "always_ready");
  for (const std::int32_t g : p.in_guard)
    if (g < -1 || (g >= 0 && static_cast<std::size_t>(g) >= n_guards))
      wire_fail(where("in_guard"), "guard index out of range");
  for (const std::int32_t l : p.op_load)
    if (l < -1 || (l >= 0 && static_cast<std::size_t>(l) >= n_loads))
      wire_fail(where("op_load"), "load index out of range");
  for (std::size_t a = 0; a < n_arcs; ++a) {
    if (p.in_prog_off[a] < -1 || p.in_prog_len[a] < 0 ||
        (p.in_prog_off[a] >= 0 &&
         static_cast<std::size_t>(p.in_prog_off[a] + p.in_prog_len[a]) >
             n_ops))
      wire_fail(where("in_prog_off"), "op span out of range");
  }

  // Rebuild the opcode layer from the deserialized loads: concrete specs
  // dispatch through tdg::ops tables exactly as a locally compiled
  // program would; opaque stubs classify as kOpaqueClosure and keep their
  // evaluate-time WireError.
  p.compile_ops();
  return p;
}

tdg::Program program_from_json(std::string_view text) {
  return program_from_json(json_parse(text));
}

}  // namespace maxev::serve
