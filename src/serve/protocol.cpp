#include "serve/protocol.hpp"

#include <utility>

#include "sim/diagnostics.hpp"
#include "util/json.hpp"

namespace maxev::serve {

namespace {

std::string error_response(const std::string& what) {
  JsonWriter w;
  w.begin_object().field("ok", false).field("error", what).end_object();
  return w.str();
}

const std::string& session_name(const JsonValue& req) {
  const JsonValue* s = req.find("session");
  if (s == nullptr || !s->is_string())
    throw SessionError("protocol: request needs a string 'session'");
  return s->as_string();
}

model::TokenAttrs parse_token_attrs(const JsonValue& v) {
  model::TokenAttrs a;
  a.size = v.at("size").as_int64();
  const JsonValue& params = v.at("params");
  if (!params.is_array() || params.size() != a.params.size())
    throw SessionError("protocol: token attrs params must be an array of " +
                       std::to_string(a.params.size()));
  for (std::size_t i = 0; i < a.params.size(); ++i)
    a.params[i] = params[i].as_double();
  return a;
}

std::vector<Session::FedToken> parse_tokens(const JsonValue& req) {
  const JsonValue& arr = req.at("tokens");
  if (!arr.is_array())
    throw SessionError("protocol: 'tokens' must be an array");
  std::vector<Session::FedToken> tokens;
  tokens.reserve(arr.size());
  for (const JsonValue& t : arr.items()) {
    Session::FedToken tok;
    tok.earliest_ps = t.at("earliest_ps").as_int64();
    if (const JsonValue* attrs = t.find("attrs"); attrs && !attrs->is_null())
      tok.attrs = parse_token_attrs(*attrs);
    tokens.push_back(std::move(tok));
  }
  return tokens;
}

void write_delta(JsonWriter& w, const Session::Delta& d) {
  w.field("ok", true);
  w.field("ran", d.ran);
  w.field("blocked", d.blocked);
  w.field("completed", d.completed);
  w.field("stop", sim::to_string(d.stop));
  w.field("now_ps", d.now_ps);
  if (!d.stall_report.empty()) w.field("stall_report", d.stall_report);
  w.key("instants").begin_array();
  for (const Session::SeriesDelta& s : d.instants) {
    w.begin_object();
    w.field("series", s.series);
    w.field("start_k", s.start_k);
    w.key("instants_ps").begin_array();
    for (const std::int64_t t : s.instants_ps) w.value(t);
    w.end_array().end_object();
  }
  w.end_array();
  w.key("usage").begin_array();
  for (const Session::UsageDelta& u : d.usage) {
    w.begin_object();
    w.field("resource", u.resource);
    w.field("start_index", u.start_index);
    w.key("starts_ps").begin_array();
    for (const std::int64_t t : u.starts_ps) w.value(t);
    w.end_array();
    w.key("ends_ps").begin_array();
    for (const std::int64_t t : u.ends_ps) w.value(t);
    w.end_array();
    w.key("ops").begin_array();
    for (const std::int64_t n : u.ops) w.value(n);
    w.end_array();
    w.key("labels").begin_array();
    for (const std::string& l : u.labels) w.value(l);
    w.end_array().end_object();
  }
  w.end_array();
}

}  // namespace

Server::Server() : Server(Options{}) {}

Server::Server(Options opts)
    : opts_(opts), cache_(opts.cache_capacity == 0
                              ? ProgramCache::kDefaultCapacity
                              : opts.cache_capacity) {}

std::string Server::handle(std::string_view line) {
  try {
    const JsonValue req = json_parse(line);
    const JsonValue* cmd = req.find("cmd");
    if (cmd == nullptr || !cmd->is_string())
      throw SessionError("protocol: request needs a string 'cmd'");
    const std::string& verb = cmd->as_string();

    if (verb == "stats") {
      const ProgramCache::Stats s = cache_.stats();
      JsonWriter w;
      w.begin_object()
          .field("ok", true)
          .field("sessions", static_cast<std::uint64_t>(sessions_.size()))
          .key("cache")
          .begin_object()
          .field("hits", s.hits)
          .field("misses", s.misses)
          .field("evictions", s.evictions)
          .field("size", static_cast<std::uint64_t>(s.size))
          .end_object()
          .end_object();
      return w.str();
    }

    const std::string& name = session_name(req);

    if (verb == "submit" || verb == "restore") {
      if (sessions_.count(name) != 0)
        throw SessionError("protocol: session '" + name + "' already exists");
      Session::Options sopts;
      sopts.guards = opts_.guards;
      sopts.compiled = &cache_;
      if (const JsonValue* me = req.find("max_events"))
        sopts.guards.max_events = me->as_uint64();
      if (const JsonValue* ei = req.find("expected_iterations"))
        sopts.expected_iterations = static_cast<std::size_t>(ei->as_uint64());

      std::unique_ptr<Session> session;
      if (verb == "submit") {
        std::string scenario;
        if (const JsonValue* obj = req.find("scenario"); obj != nullptr)
          scenario = json_dump(*obj);
        else
          scenario = req.at("scenario_json").as_string();
        session = std::make_unique<Session>(std::move(scenario), sopts);
      } else {
        session = Session::restore(req.at("checkpoint").as_string(), sopts);
      }

      JsonWriter w;
      w.begin_object().field("ok", true).field("session", name);
      w.key("stream_sources").begin_array();
      const auto& sources = session->desc().sources();
      for (std::size_t i = 0; i < sources.size(); ++i) {
        if (!session->is_stream_source(i)) continue;
        w.begin_object()
            .field("source", static_cast<std::uint64_t>(i))
            .field("name", sources[i].name)
            .field("count", sources[i].count)
            .field("fed", session->fed(i))
            .end_object();
      }
      w.end_array().end_object();
      sessions_.emplace(name, std::move(session));
      return w.str();
    }

    const auto it = sessions_.find(name);
    if (it == sessions_.end())
      throw SessionError("protocol: no session '" + name + "'");
    Session& session = *it->second;

    if (verb == "feed") {
      const std::size_t source =
          static_cast<std::size_t>(req.at("source").as_uint64());
      const std::vector<Session::FedToken> tokens = parse_tokens(req);
      session.feed(source, tokens);
      JsonWriter w;
      w.begin_object()
          .field("ok", true)
          .field("source", static_cast<std::uint64_t>(source))
          .field("fed", session.fed(source))
          .end_object();
      return w.str();
    }
    if (verb == "poll") {
      const Session::Delta d = session.poll();
      JsonWriter w;
      w.begin_object();
      write_delta(w, d);
      w.end_object();
      return w.str();
    }
    if (verb == "checkpoint") {
      const std::string doc = session.checkpoint();
      JsonWriter w;
      w.begin_object().field("ok", true).field("checkpoint", doc).end_object();
      return w.str();
    }
    if (verb == "close") {
      sessions_.erase(it);
      JsonWriter w;
      w.begin_object().field("ok", true).field("closed", name).end_object();
      return w.str();
    }
    throw SessionError("protocol: unknown cmd '" + verb + "'");
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

}  // namespace maxev::serve
