#include "serve/session.hpp"

#include <limits>
#include <utility>

namespace maxev::serve {

namespace {

std::uint64_t dispatched(const sim::KernelStats& s) {
  return s.resumes + s.callbacks - s.inline_resumes;
}

}  // namespace

Session::Session(std::string scenario_json)
    : Session(std::move(scenario_json), Options()) {}

Session::Session(std::string scenario_json, Options opts)
    : scenario_json_(std::move(scenario_json)), opts_(opts) {
  model::ArchitectureDesc desc = desc_from_json(scenario_json_, this);
  desc_ = model::share(std::move(desc));

  core::EquivalentModel::Options mopts;
  mopts.expected_iterations = opts_.expected_iterations;
  mopts.compiled = opts_.compiled;
  model_ = std::make_unique<core::EquivalentModel>(
      desc_, std::vector<bool>{}, mopts);
  if (opts_.guards.any())
    model_->runtime().kernel().set_run_guards(opts_.guards);
}

Session::Fns Session::make_stream_source(std::size_t source_index,
                                         const std::string& name,
                                         std::uint64_t count) {
  auto stream = std::make_shared<Stream>();
  stream->source_index = source_index;
  stream->name = name;
  stream->count = count;
  stream_by_source_[source_index] = streams_.size();
  streams_.push_back(stream);

  Fns fns;
  // The watermark guarantees the kernel never evaluates an unfed token;
  // reaching the throw means the watermark computation is wrong.
  fns.earliest = [stream](std::uint64_t k) {
    if (k >= stream->earliest_ps.size())
      throw SessionError("stream source '" + stream->name + "': token " +
                         std::to_string(k) + " evaluated before being fed");
    return TimePoint::at_ps(stream->earliest_ps[k]);
  };
  fns.attrs = [stream](std::uint64_t k) {
    if (k >= stream->attrs.size())
      throw SessionError("stream source '" + stream->name + "': attrs of " +
                         std::to_string(k) + " evaluated before being fed");
    return stream->attrs[k];
  };
  return fns;
}

bool Session::is_stream_source(std::size_t source) const {
  return stream_by_source_.count(source) != 0;
}

std::uint64_t Session::fed(std::size_t source) const {
  const auto it = stream_by_source_.find(source);
  if (it == stream_by_source_.end())
    throw SessionError("source " + std::to_string(source) +
                       " is not a stream source");
  return streams_[it->second]->earliest_ps.size();
}

void Session::feed(std::size_t source, const std::vector<FedToken>& tokens) {
  const auto it = stream_by_source_.find(source);
  if (it == stream_by_source_.end())
    throw SessionError("source " + std::to_string(source) +
                       " is not a stream source");
  Stream& st = *streams_[it->second];
  if (st.earliest_ps.size() + tokens.size() > st.count)
    throw SessionError("stream source '" + st.name + "': feeding " +
                       std::to_string(tokens.size()) + " tokens past the " +
                       "declared count of " + std::to_string(st.count));
  std::int64_t floor = st.earliest_ps.empty()
                           ? std::numeric_limits<std::int64_t>::min()
                           : st.earliest_ps.back();
  for (const FedToken& t : tokens) {
    if (t.earliest_ps < floor)
      throw SessionError("stream source '" + st.name +
                         "': earliest instants must be non-decreasing (" +
                         std::to_string(t.earliest_ps) + " after " +
                         std::to_string(floor) + ")");
    floor = t.earliest_ps;
  }
  for (const FedToken& t : tokens) {
    st.earliest_ps.push_back(t.earliest_ps);
    st.attrs.push_back(t.attrs);
  }
  // Fed tokens change the future workload: anything extrapolating from the
  // observed prefix (the adaptive backend's periodicity detector) must
  // restart its observation window.
  model_->runtime().notify_regime_change();
}

Session::Watermark Session::watermark() const {
  Watermark w;
  w.unbounded = true;
  std::int64_t min_ps = std::numeric_limits<std::int64_t>::max();
  for (const auto& stream : streams_) {
    const std::uint64_t fed = stream->earliest_ps.size();
    if (fed == stream->count) continue;  // exhausted: no constraint
    if (fed == 0) {
      w.blocked = true;
      w.unbounded = false;
      return w;
    }
    // After offering token fed-1 (at >= earliest(fed-1)) the source
    // coroutine evaluates earliest(fed), which is not known yet — so the
    // horizon must stop just short of the last fed token's release.
    min_ps = std::min(min_ps, stream->earliest_ps[fed - 1] - 1);
    w.unbounded = false;
  }
  if (!w.unbounded) {
    if (min_ps < 0) {
      w.blocked = true;  // nothing can run before the origin
    } else {
      w.until = TimePoint::at_ps(min_ps);
    }
  }
  return w;
}

void Session::advance(const Watermark& w, Delta& d) {
  if (completed_ || w.blocked) {
    d.blocked = !completed_ && w.blocked;
    return;
  }
  if (!w.unbounded && advanced_ps_ && w.until.count() <= *advanced_ps_ &&
      !sim::is_guard_stop(last_stop_))
    return;  // nothing new to run

  const std::optional<TimePoint> until =
      w.unbounded ? std::nullopt : std::optional<TimePoint>(w.until);
  model::ModelRuntime::Outcome out = model_->run(until);
  d.ran = true;
  last_stop_ = out.stop;
  last_stall_report_ = out.stall_report;
  if (!sim::is_guard_stop(out.stop) && !w.unbounded)
    advanced_ps_ = w.until.count();
  if (w.unbounded && out.completed) completed_ = true;
}

void Session::collect_deltas(Delta& d) {
  for (const auto& [name, series] : model_->instants().all()) {
    std::size_t& cursor = instant_cursors_[name];
    if (series.size() <= cursor) continue;
    SeriesDelta sd;
    sd.series = name;
    sd.start_k = cursor;
    sd.instants_ps.reserve(series.size() - cursor);
    for (std::size_t k = cursor; k < series.size(); ++k)
      sd.instants_ps.push_back(series.at(k).count());
    cursor = series.size();
    d.instants.push_back(std::move(sd));
  }
  for (const auto& [name, trace] : model_->usage().all()) {
    std::size_t& cursor = usage_cursors_[name];
    if (trace.size() <= cursor) continue;
    UsageDelta ud;
    ud.resource = name;
    ud.start_index = cursor;
    for (std::size_t i = cursor; i < trace.size(); ++i) {
      ud.starts_ps.push_back(trace.starts()[i].count());
      ud.ends_ps.push_back(trace.ends()[i].count());
      ud.ops.push_back(trace.ops()[i]);
      ud.labels.push_back(trace.label(trace.label_ids()[i]));
    }
    cursor = trace.size();
    d.usage.push_back(std::move(ud));
  }
}

Session::Delta Session::poll() {
  Delta d;
  advance(watermark(), d);
  d.completed = completed_;
  d.stop = last_stop_;
  d.stall_report = last_stall_report_;
  d.now_ps = model_->end_time().count();
  collect_deltas(d);
  return d;
}

std::string Session::checkpoint() const {
  if (sim::is_guard_stop(last_stop_))
    throw SessionError(
        "checkpoint: the last advance was guard-stopped; resume (poll) past "
        "the guard before checkpointing");
  JsonWriter w;
  w.begin_object().field("maxev_checkpoint", kWireVersion);
  w.field("scenario_json", scenario_json_);
  w.key("streams").begin_array();
  for (const auto& stream : streams_) {
    w.begin_object();
    w.field("source", static_cast<std::uint64_t>(stream->source_index));
    w.key("earliest_ps").begin_array();
    for (const std::int64_t t : stream->earliest_ps) w.value(t);
    w.end_array();
    w.key("attrs").begin_array();
    for (const model::TokenAttrs& a : stream->attrs) {
      w.begin_object().field("size", a.size).key("params").begin_array();
      for (const double p : a.params) w.value(p);
      w.end_array().end_object();
    }
    w.end_array().end_object();
  }
  w.end_array();
  w.key("advanced_ps");
  if (advanced_ps_)
    w.value(*advanced_ps_);
  else
    w.null_value();
  w.field("completed", completed_);
  w.key("instant_cursors").begin_object();
  for (const auto& [name, cursor] : instant_cursors_)
    w.field(name, static_cast<std::uint64_t>(cursor));
  w.end_object();
  w.key("usage_cursors").begin_object();
  for (const auto& [name, cursor] : usage_cursors_)
    w.field(name, static_cast<std::uint64_t>(cursor));
  w.end_object();
  w.field("now_ps", model_->end_time().count());
  w.field("events_dispatched", dispatched(model_->kernel_stats()));
  w.end_object();
  return w.str();
}

std::unique_ptr<Session> Session::restore(std::string_view checkpoint_json) {
  return restore(checkpoint_json, Options());
}

std::unique_ptr<Session> Session::restore(std::string_view checkpoint_json,
                                          Options opts) {
  JsonValue doc;
  try {
    doc = json_parse(checkpoint_json);
  } catch (const Error& e) {
    throw SessionError(std::string("restore: ") + e.what());
  }
  if (!doc.is_object() || doc.find("maxev_checkpoint") == nullptr)
    throw SessionError("restore: not a maxev_checkpoint document");
  if (!doc.at("maxev_checkpoint").is_int64() ||
      doc.at("maxev_checkpoint").as_int64() != kWireVersion)
    throw SessionError("restore: unsupported checkpoint version");

  auto session = std::make_unique<Session>(
      doc.at("scenario_json").as_string(), opts);

  const JsonValue& streams = doc.at("streams");
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const JsonValue& s = streams[i];
    const JsonValue& earliest = s.at("earliest_ps");
    const JsonValue& attrs = s.at("attrs");
    if (earliest.size() != attrs.size())
      throw SessionError("restore: stream token arrays disagree in length");
    std::vector<FedToken> tokens(earliest.size());
    for (std::size_t k = 0; k < earliest.size(); ++k) {
      tokens[k].earliest_ps = earliest[k].as_int64();
      const JsonValue& a = attrs[k];
      tokens[k].attrs.size = a.at("size").as_int64();
      const JsonValue& params = a.at("params");
      for (std::size_t p = 0;
           p < tokens[k].attrs.params.size() && p < params.size(); ++p)
        tokens[k].attrs.params[p] = params[p].as_double();
    }
    session->feed(static_cast<std::size_t>(s.at("source").as_uint64()),
                  tokens);
  }

  // Replay the advance. Incremental horizon-resume is pinned bit-identical
  // to a single run, so one run to the checkpointed horizon reproduces the
  // exact kernel state.
  Delta scratch;
  if (doc.at("completed").as_bool()) {
    Watermark w;
    w.unbounded = true;
    session->advance(w, scratch);
  } else if (!doc.at("advanced_ps").is_null()) {
    Watermark w;
    w.until = TimePoint::at_ps(doc.at("advanced_ps").as_int64());
    session->advance(w, scratch);
  }

  // Validate the replay before trusting it.
  const std::int64_t now_ps = doc.at("now_ps").as_int64();
  const std::uint64_t events = doc.at("events_dispatched").as_uint64();
  if (session->model_->end_time().count() != now_ps ||
      dispatched(session->model_->kernel_stats()) != events ||
      session->completed_ != doc.at("completed").as_bool())
    throw SessionError(
        "restore: replay diverged from the checkpoint (now " +
        std::to_string(session->model_->end_time().count()) + " vs " +
        std::to_string(now_ps) + " ps, " +
        std::to_string(dispatched(session->model_->kernel_stats())) + " vs " +
        std::to_string(events) + " events)");

  const auto load_cursors = [&doc](const char* key,
                                   std::map<std::string, std::size_t>& out) {
    for (const auto& [name, v] : doc.at(key).members())
      out[name] = static_cast<std::size_t>(v.as_uint64());
  };
  load_cursors("instant_cursors", session->instant_cursors_);
  load_cursors("usage_cursors", session->usage_cursors_);
  for (const auto& [name, cursor] : session->instant_cursors_) {
    const trace::InstantSeries* s = session->model_->instants().find(name);
    if ((s == nullptr ? 0 : s->size()) < cursor)
      throw SessionError("restore: instant cursor of '" + name +
                         "' is past the replayed trace");
  }
  return session;
}

}  // namespace maxev::serve
