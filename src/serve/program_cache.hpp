#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "core/compiled.hpp"

/// \file program_cache.hpp
/// Bounded, thread-safe LRU cache of compiled abstractions
/// (core::CompiledAbstraction), the artifact-reuse half of the serve
/// subsystem (docs/DESIGN.md §13). Study matrix cells, composed sub-batches
/// and serve sessions requesting the same (description, group, fold, pad)
/// combination share one derive → fold → pad → freeze → Program::compile
/// product instead of redoing it.
///
/// Keying (see core/compiled.hpp): model::structural_hash() buckets the
/// entries, but equality is model::DescPtr POINTER identity — a compiled
/// program embeds the description's behavioural std::functions, so only
/// provably-same-workload requests may share it. An entry pins its
/// description alive (the key holds the DescPtr); dropping every external
/// reference to a description therefore does NOT evict its entries — evict
/// by capacity, or clear() between unrelated workloads.

namespace maxev::serve {

class ProgramCache final : public core::CompiledProvider {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;  ///< resident entries at sample time
  };

  /// Default bound; also the capacity the study layer's serial-replay
  /// attribution simulates, so keep the two in sync via this constant.
  static constexpr std::size_t kDefaultCapacity = 128;

  /// \param capacity maximum resident entries (>= 1).
  explicit ProgramCache(std::size_t capacity = kDefaultCapacity);

  ProgramCache(const ProgramCache&) = delete;
  ProgramCache& operator=(const ProgramCache&) = delete;

  /// Return (compiling on a miss) the artifact for \p key, marking it
  /// most-recently-used. Thread-safe. The compile itself runs under the
  /// lock: concurrent requests for one key never compile twice, which is
  /// the deterministic-attribution anchor the study layer relies on.
  [[nodiscard]] core::CompiledPtr get(const core::CompiledKey& key,
                                      bool* was_hit = nullptr) override;

  /// Whether \p key is resident (no LRU touch, no counter change).
  [[nodiscard]] bool contains(const core::CompiledKey& key) const;

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Drop every entry (counters keep accumulating).
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const core::CompiledKey& k) const {
      return core::hash_value(k);
    }
  };
  struct Entry {
    core::CompiledKey key;
    core::CompiledPtr value;
  };
  using LruList = std::list<Entry>;

  std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<core::CompiledKey, LruList::iterator, KeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace maxev::serve
