#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/desc.hpp"
#include "model/shaping.hpp"
#include "tdg/program.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/time.hpp"

/// \file wire.hpp
/// The versioned JSON wire format of the serve subsystem
/// (docs/DESIGN.md §13): scenario descriptions and compiled program tables
/// as line-transportable documents.
///
/// Two document types, each wrapped in a version envelope:
///  * `{"maxev_wire": 1, "desc": {...}}` — a model::ArchitectureDesc.
///    Declarative members serialize exactly; the behavioural std::function
///    members serialize as tagged *specs* when they wrap one of the
///    introspectable functor types (model::ConstantOpsFn et al. for loads,
///    the Table*/Periodic* functors below for source/sink shaping) and as
///    `{"type": "opaque"}` otherwise. Opaque specs deserialize to throwing
///    stubs: the loaded description is structurally faithful
///    (model::structurally_equal) and fully usable for cache keying and
///    graph derivation, but running it requires every behavioural spec to
///    be concrete — the stub names the source entity when hit.
///  * `{"maxev_program": 1, ...}` — the flat tables of a compiled
///    tdg::Program (docs/DESIGN.md §7). Max-plus scalars serialize as
///    their picosecond count, ε as null. Hoisted load functions serialize
///    as the same tagged specs the desc document uses — classification is
///    shared with the opcode layer (tdg::ops::classify_load), so every
///    load the engines dispatch through opcode tables also crosses the
///    wire concretely and the loaded program re-runs it for real
///    (program_from_json rebuilds the opcode tables). Only hand-written
///    lambdas fall back to `{"type": "opaque"}` throwing stubs, and guard
///    functions still serialize as a count (no named guard functors
///    exist), so those parts of a dumped program document/validate the
///    compiled shape rather than transplanting behaviour (behaviour
///    travels via the desc document plus recompilation — see the
///    cache-keying rules).
///
/// All loaders validate shape and referential integrity (CSR monotonicity,
/// id ranges) and throw serve::WireError with the offending member named.

namespace maxev::serve {

/// Wire-format version stamped into (and required of) every document.
inline constexpr std::int64_t kWireVersion = 1;

/// Malformed or version-incompatible wire documents.
class WireError : public Error {
 public:
  using Error::Error;
};

/// \name Introspectable shaping functors
/// Wire-built descriptions wrap named functor types so a later
/// desc_to_json() can recover the parameters (std::function::target).
/// The types themselves live in model/shaping.hpp (the adaptive backend
/// certifies against the same vocabulary); these aliases preserve the
/// historical serve:: spellings — and, because they are aliases, type
/// identity for target<T>() introspection.
/// @{
using TableTimeFn = model::TableTimeFn;
using PeriodicTimeFn = model::PeriodicTimeFn;
using ConstantDurationFn = model::ConstantDurationFn;
using TableDurationFn = model::TableDurationFn;
using ConstantAttrsFn = model::ConstantAttrsFn;
using TableAttrsFn = model::TableAttrsFn;
/// @}

/// Supplies the behavioural functions of `{"type": "stream"}` sources —
/// tokens that arrive incrementally instead of from a table. Implemented
/// by serve::Session (its TokenStream feeds); absent a factory, stream
/// specs are a WireError.
class StreamSourceFactory {
 public:
  struct Fns {
    std::function<TimePoint(std::uint64_t)> earliest;
    std::function<model::TokenAttrs(std::uint64_t)> attrs;
  };

  virtual ~StreamSourceFactory() = default;

  /// Called once per stream-typed source, in source order.
  [[nodiscard]] virtual Fns make_stream_source(std::size_t source_index,
                                               const std::string& name,
                                               std::uint64_t count) = 0;
};

/// \name Description documents
/// @{

/// Serialize a validated description. Deterministic: equal descriptions
/// (including functor parameters) produce byte-identical documents.
[[nodiscard]] std::string desc_to_json(const model::ArchitectureDesc& desc);

/// Load and validate a description document. \p streams binds
/// stream-typed sources (null = reject them).
[[nodiscard]] model::ArchitectureDesc desc_from_json(
    const JsonValue& doc, StreamSourceFactory* streams = nullptr);
[[nodiscard]] model::ArchitectureDesc desc_from_json(
    std::string_view text, StreamSourceFactory* streams = nullptr);

/// Whether the description's source \p s is stream-typed in \p doc (the
/// session layer needs to know which sources it feeds).
[[nodiscard]] bool source_is_stream(const JsonValue& doc, std::size_t s);
/// @}

/// \name Program documents
/// @{

/// Dump the compiled tables. Deterministic; guards as a count, loads as
/// concrete specs where tdg::ops::classify_load can name them.
[[nodiscard]] std::string program_to_json(const tdg::Program& p);

/// Load a program document back into tables (guards and opaque loads
/// become throwing stubs — see the file comment; concrete load specs
/// reconstruct, and the opcode tables are recompiled). Validates CSR
/// shape.
[[nodiscard]] tdg::Program program_from_json(const JsonValue& doc);
[[nodiscard]] tdg::Program program_from_json(std::string_view text);
/// @}

}  // namespace maxev::serve
