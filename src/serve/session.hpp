#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/compiled.hpp"
#include "core/equivalent_model.hpp"
#include "model/token.hpp"
#include "serve/wire.hpp"
#include "sim/kernel.hpp"
#include "util/time.hpp"

/// \file session.hpp
/// Streaming evaluation sessions (docs/DESIGN.md §13): a scenario whose
/// source tokens arrive incrementally instead of from a pre-known table.
///
/// A Session wraps one core::EquivalentModel (simulation kernel + TDG
/// engine). Sources marked `{"type": "stream"}` in the wire document are
/// bound to feedable token buffers; everything else behaves exactly as in
/// a one-shot run. Each poll() advances the kernel to the *stream
/// watermark* — the largest horizon at which no behavioural function of an
/// unfed token can be evaluated — using the kernel's pinned horizon-resume
/// primitive, so the concatenation of incremental advances is bit-identical
/// to a single uninterrupted run over the same tokens. poll() then streams
/// the instants and busy intervals recorded since the previous poll.
///
/// checkpoint() serializes the session as a deterministic-replay document:
/// the original scenario text, every fed token, and the horizon advanced
/// to. restore() rebuilds the model from scratch, re-feeds, re-advances,
/// and validates the kernel's time and dispatched-event counters against
/// the checkpointed values — replay divergence is a SessionError, not a
/// silent drift.

namespace maxev::serve {

/// Session-protocol violations: feeding a non-stream source, non-monotone
/// feeds, malformed or diverging checkpoints.
class SessionError : public Error {
 public:
  using Error::Error;
};

class Session final : private StreamSourceFactory {
 public:
  struct Options {
    /// Execution limits applied to every advance (sim::RunGuards).
    sim::RunGuards guards;
    /// Observation-sink capacity hint (see core::EquivalentModel).
    std::size_t expected_iterations = 0;
    /// Shared program cache; null = compile privately.
    core::CompiledProvider* compiled = nullptr;
  };

  /// One fed token of a stream source.
  struct FedToken {
    std::int64_t earliest_ps = 0;
    model::TokenAttrs attrs;
  };

  /// Build a session from a `{"maxev_wire": 1, ...}` scenario document.
  /// The text is retained verbatim for checkpoints.
  explicit Session(std::string scenario_json);
  Session(std::string scenario_json, Options opts);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Append tokens to stream source \p source (index into the wire
  /// document's source array). Earliest instants must be non-decreasing,
  /// both within the batch and against what is already fed; the total may
  /// not exceed the source's declared count.
  void feed(std::size_t source, const std::vector<FedToken>& tokens);

  /// Newly recorded instants of one relation since the previous poll.
  struct SeriesDelta {
    std::string series;
    std::uint64_t start_k = 0;  ///< iteration index of instants_ps[0]
    std::vector<std::int64_t> instants_ps;
  };

  /// Newly recorded busy intervals of one resource since the previous poll.
  struct UsageDelta {
    std::string resource;
    std::uint64_t start_index = 0;
    std::vector<std::int64_t> starts_ps;
    std::vector<std::int64_t> ends_ps;
    std::vector<std::int64_t> ops;
    std::vector<std::string> labels;
  };

  struct Delta {
    bool ran = false;        ///< an advance happened
    bool blocked = false;    ///< a stream source has no usable token yet
    bool completed = false;  ///< the scenario ran to completion
    sim::StopReason stop = sim::StopReason::kIdle;  ///< last advance outcome
    std::string stall_report;  ///< non-empty when stalled or guard-stopped
    std::int64_t now_ps = 0;   ///< kernel time after the advance
    std::vector<SeriesDelta> instants;
    std::vector<UsageDelta> usage;
  };

  /// Advance to the current stream watermark (unbounded once every stream
  /// source is fully fed) and collect the trace deltas.
  Delta poll();

  /// Serialize for deterministic replay. \pre not mid-advance.
  [[nodiscard]] std::string checkpoint() const;

  /// Rebuild a session from a checkpoint() document: re-feed, re-advance,
  /// validate the replayed kernel counters. Throws SessionError on
  /// malformed documents or replay divergence.
  [[nodiscard]] static std::unique_ptr<Session> restore(
      std::string_view checkpoint_json);
  [[nodiscard]] static std::unique_ptr<Session> restore(
      std::string_view checkpoint_json, Options opts);

  /// \name Introspection
  /// @{
  [[nodiscard]] const model::ArchitectureDesc& desc() const { return *desc_; }
  [[nodiscard]] const core::EquivalentModel& model() const { return *model_; }
  [[nodiscard]] bool is_stream_source(std::size_t source) const;
  /// Tokens fed so far to stream source \p source.
  [[nodiscard]] std::uint64_t fed(std::size_t source) const;
  [[nodiscard]] bool completed() const { return completed_; }
  /// @}

 private:
  /// Feedable token buffer of one stream source. The functors handed to
  /// the description share ownership, so the buffer outlives the model.
  struct Stream {
    std::size_t source_index = 0;
    std::string name;
    std::uint64_t count = 0;
    std::vector<std::int64_t> earliest_ps;
    std::vector<model::TokenAttrs> attrs;
  };

  Fns make_stream_source(std::size_t source_index, const std::string& name,
                         std::uint64_t count) override;

  /// nullopt = blocked; otherwise the horizon to run to (nullopt inside
  /// the optional pair is expressed via `unbounded`).
  struct Watermark {
    bool blocked = false;
    bool unbounded = false;
    TimePoint until = TimePoint::origin();
  };
  [[nodiscard]] Watermark watermark() const;

  /// Run the kernel to \p w if it extends past what has already run;
  /// updates advanced_/completed_ and the outcome fields of \p d.
  void advance(const Watermark& w, Delta& d);
  void collect_deltas(Delta& d);

  std::string scenario_json_;
  Options opts_;
  std::vector<std::shared_ptr<Stream>> streams_;  // in factory-call order
  std::map<std::size_t, std::size_t> stream_by_source_;
  model::DescPtr desc_;
  std::unique_ptr<core::EquivalentModel> model_;

  std::optional<std::int64_t> advanced_ps_;  ///< highest bounded horizon run
  bool completed_ = false;
  sim::StopReason last_stop_ = sim::StopReason::kIdle;
  std::string last_stall_report_;
  std::map<std::string, std::size_t> instant_cursors_;
  std::map<std::string, std::size_t> usage_cursors_;
};

}  // namespace maxev::serve
