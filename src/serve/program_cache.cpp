#include "serve/program_cache.hpp"

#include "util/error.hpp"

namespace maxev::serve {

ProgramCache::ProgramCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0)
    throw DescriptionError("ProgramCache: capacity must be >= 1");
}

core::CompiledPtr ProgramCache::get(const core::CompiledKey& key_in,
                                    bool* was_hit) {
  // Canonicalize so normalized and shorthand (empty = all) groups unify.
  const core::CompiledKey key = core::CompiledKey::make(
      key_in.desc, key_in.group, key_in.fold, key_in.pad_nodes);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    ++hits_;
    if (was_hit != nullptr) *was_hit = true;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
    return it->second->value;
  }

  ++misses_;
  if (was_hit != nullptr) *was_hit = false;
  core::CompiledPtr compiled = core::compile_abstraction(key);
  lru_.push_front(Entry{compiled->key, compiled});
  index_.emplace(compiled->key, lru_.begin());
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  return compiled;
}

bool ProgramCache::contains(const core::CompiledKey& key_in) const {
  const core::CompiledKey key = core::CompiledKey::make(
      key_in.desc, key_in.group, key_in.fold, key_in.pad_nodes);
  std::lock_guard<std::mutex> lock(mu_);
  return index_.find(key) != index_.end();
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, evictions_, index_.size()};
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
}

}  // namespace maxev::serve
