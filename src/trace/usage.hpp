#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

/// \file usage.hpp
/// Platform-resource usage observation ("observation time" in the paper).
///
/// Each execute statement contributes one busy interval [start, end) with an
/// operation count to the trace of its processing resource. From these the
/// paper's Fig. 6 observables are derived: the solid busy line (Fig. 2b) and
/// the computational complexity per time unit in GOPS (Fig. 6b/6c).
///
/// Both the event-driven baseline (recording live) and the equivalent model
/// (recording from computed instants, without the simulator) fill this same
/// structure, so accuracy is checked by structural equality.
///
/// Storage is columnar (struct-of-arrays): starts, ends, op counts and
/// interned label ids live in parallel vectors, so the hot append path is
/// four vector pushes with no string traffic — recording cost is what
/// Table I's "speed-up (obs. on)" column measures, on both models. The
/// row-oriented BusyInterval view is materialized on demand.

namespace maxev::trace {

/// One busy interval of a resource (row view; storage is columnar).
struct BusyInterval {
  TimePoint start;
  TimePoint end;
  std::int64_t ops = 0;   ///< operations executed during the interval
  std::string label;      ///< e.g. "F1.exec0" — which statement ran

  friend bool operator==(const BusyInterval&, const BusyInterval&) = default;
};

/// A point of a piecewise-constant rate profile: rate holds from t until the
/// next point.
struct RatePoint {
  TimePoint t;
  double gops = 0.0;
};

/// Usage trace of one processing resource.
class UsageTrace {
 public:
  UsageTrace() = default;
  explicit UsageTrace(std::string resource) : resource_(std::move(resource)) {}

  /// Intern a busy-interval label, returning its dense id. Idempotent; call
  /// once at setup so the hot path can use push().
  std::int32_t intern_label(const std::string& label);
  /// Label string of an interned id.
  [[nodiscard]] const std::string& label(std::int32_t id) const;

  /// Hot-path append: columnar, no allocation beyond vector growth.
  void push(TimePoint start, TimePoint end, std::int64_t ops,
            std::int32_t label_id);
  /// Compatibility append; interns the label on every call.
  void add(BusyInterval iv);

  /// Pre-size the columns for an expected interval count (capacity hint
  /// from the runner; see tdg::Engine::Options::expected_iterations).
  void reserve(std::size_t n);

  [[nodiscard]] const std::string& resource() const { return resource_; }
  /// Row-oriented view, materialized lazily from the columns.
  [[nodiscard]] const std::vector<BusyInterval>& intervals() const;
  [[nodiscard]] std::size_t size() const { return starts_.size(); }

  /// \name Columnar accessors (parallel vectors of length size())
  /// @{
  [[nodiscard]] const std::vector<TimePoint>& starts() const { return starts_; }
  [[nodiscard]] const std::vector<TimePoint>& ends() const { return ends_; }
  [[nodiscard]] const std::vector<std::int64_t>& ops() const { return ops_; }
  [[nodiscard]] const std::vector<std::int32_t>& label_ids() const {
    return label_ids_;
  }
  /// @}

  /// Sum of interval lengths (overlaps counted multiply).
  [[nodiscard]] Duration busy_time() const;
  /// Total operations across all intervals.
  [[nodiscard]] std::int64_t total_ops() const;
  /// busy_time / horizon (can exceed 1 on concurrent resources).
  [[nodiscard]] double utilization(TimePoint horizon) const;
  /// Latest interval end (origin when empty).
  [[nodiscard]] TimePoint span_end() const;

  /// Piecewise-constant total execution rate over time: at any instant the
  /// rate is the sum over active intervals of ops/length, in GOPS
  /// (operations per simulated nanosecond). This is the paper's
  /// "computational complexity per time unit".
  [[nodiscard]] std::vector<RatePoint> rate_profile() const;

  /// Average GOPS inside fixed windows of width \p bin from the origin to
  /// span_end(); interval ops are apportioned linearly across windows.
  [[nodiscard]] std::vector<RatePoint> windowed_rate(Duration bin) const;

  /// Normalize for comparison: sort by (start, end, label, ops).
  void sort();

 private:
  std::string resource_;
  // Parallel columns; label ids index labels_.
  std::vector<TimePoint> starts_;
  std::vector<TimePoint> ends_;
  std::vector<std::int64_t> ops_;
  std::vector<std::int32_t> label_ids_;
  std::vector<std::string> labels_;  // intern table (small; linear lookup)

  mutable std::vector<BusyInterval> view_;  // lazily materialized rows
  mutable bool view_valid_ = false;
};

/// Usage traces of all resources of one model run.
class UsageTraceSet {
 public:
  UsageTrace& trace(const std::string& resource);
  [[nodiscard]] const UsageTrace* find(const std::string& resource) const;
  [[nodiscard]] const std::map<std::string, UsageTrace>& all() const {
    return set_;
  }
  /// Sort every trace (call before comparing).
  void sort_all();

 private:
  std::map<std::string, UsageTrace> set_;
};

/// Structural equality of two usage trace sets (after sorting), restricted
/// to the resources present in \p ref. nullopt when identical, otherwise a
/// description of the first difference.
[[nodiscard]] std::optional<std::string> compare_usage(const UsageTraceSet& ref,
                                                       const UsageTraceSet& other);

}  // namespace maxev::trace
