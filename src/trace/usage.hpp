#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

/// \file usage.hpp
/// Platform-resource usage observation ("observation time" in the paper).
///
/// Each execute statement contributes one busy interval [start, end) with an
/// operation count to the trace of its processing resource. From these the
/// paper's Fig. 6 observables are derived: the solid busy line (Fig. 2b) and
/// the computational complexity per time unit in GOPS (Fig. 6b/6c).
///
/// Both the event-driven baseline (recording live) and the equivalent model
/// (recording from computed instants, without the simulator) fill this same
/// structure, so accuracy is checked by structural equality.

namespace maxev::trace {

/// One busy interval of a resource.
struct BusyInterval {
  TimePoint start;
  TimePoint end;
  std::int64_t ops = 0;   ///< operations executed during the interval
  std::string label;      ///< e.g. "F1.exec0" — which statement ran

  friend bool operator==(const BusyInterval&, const BusyInterval&) = default;
};

/// A point of a piecewise-constant rate profile: rate holds from t until the
/// next point.
struct RatePoint {
  TimePoint t;
  double gops = 0.0;
};

/// Usage trace of one processing resource.
class UsageTrace {
 public:
  UsageTrace() = default;
  explicit UsageTrace(std::string resource) : resource_(std::move(resource)) {}

  void add(BusyInterval iv);

  [[nodiscard]] const std::string& resource() const { return resource_; }
  [[nodiscard]] const std::vector<BusyInterval>& intervals() const {
    return intervals_;
  }
  [[nodiscard]] std::size_t size() const { return intervals_.size(); }

  /// Sum of interval lengths (overlaps counted multiply).
  [[nodiscard]] Duration busy_time() const;
  /// Total operations across all intervals.
  [[nodiscard]] std::int64_t total_ops() const;
  /// busy_time / horizon (can exceed 1 on concurrent resources).
  [[nodiscard]] double utilization(TimePoint horizon) const;
  /// Latest interval end (origin when empty).
  [[nodiscard]] TimePoint span_end() const;

  /// Piecewise-constant total execution rate over time: at any instant the
  /// rate is the sum over active intervals of ops/length, in GOPS
  /// (operations per simulated nanosecond). This is the paper's
  /// "computational complexity per time unit".
  [[nodiscard]] std::vector<RatePoint> rate_profile() const;

  /// Average GOPS inside fixed windows of width \p bin from the origin to
  /// span_end(); interval ops are apportioned linearly across windows.
  [[nodiscard]] std::vector<RatePoint> windowed_rate(Duration bin) const;

  /// Normalize for comparison: sort by (start, end, label).
  void sort();

 private:
  std::string resource_;
  std::vector<BusyInterval> intervals_;
};

/// Usage traces of all resources of one model run.
class UsageTraceSet {
 public:
  UsageTrace& trace(const std::string& resource);
  [[nodiscard]] const UsageTrace* find(const std::string& resource) const;
  [[nodiscard]] const std::map<std::string, UsageTrace>& all() const {
    return set_;
  }
  /// Sort every trace (call before comparing).
  void sort_all();

 private:
  std::map<std::string, UsageTrace> set_;
};

/// Structural equality of two usage trace sets (after sorting), restricted
/// to the resources present in \p ref. nullopt when identical, otherwise a
/// description of the first difference.
[[nodiscard]] std::optional<std::string> compare_usage(const UsageTraceSet& ref,
                                                       const UsageTraceSet& other);

}  // namespace maxev::trace
