#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

/// \file instants.hpp
/// Evolution-instant traces: for every relation (channel) of an architecture
/// model, the ordered sequence of instants x_ch(k) at which data was
/// exchanged. The paper's accuracy criterion is that these sequences are
/// *identical* between the event-driven baseline and the equivalent model
/// with dynamically computed instants; compare() checks exactly that.

namespace maxev::trace {

/// Instants of one relation, indexed by iteration k.
class InstantSeries {
 public:
  InstantSeries() = default;
  explicit InstantSeries(std::string name) : name_(std::move(name)) {}

  void push(TimePoint t) { instants_.push_back(t); }

  /// Pre-size for an expected instant count (capacity hint from the runner;
  /// observation-on runs should not reallocate mid-flight).
  void reserve(std::size_t n) { instants_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return instants_.size(); }
  [[nodiscard]] TimePoint at(std::size_t k) const;
  [[nodiscard]] const std::vector<TimePoint>& values() const { return instants_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// True when every instant is >= its predecessor (instant sequences of a
  /// monotone architecture must be non-decreasing).
  [[nodiscard]] bool is_monotone() const;

 private:
  std::string name_;
  std::vector<TimePoint> instants_;
};

/// All instant series of one model run, keyed by relation name.
class InstantTraceSet {
 public:
  /// Get or create the series for a relation.
  InstantSeries& series(const std::string& name);
  [[nodiscard]] const InstantSeries* find(const std::string& name) const;

  [[nodiscard]] std::size_t series_count() const { return set_.size(); }
  [[nodiscard]] const std::map<std::string, InstantSeries>& all() const {
    return set_;
  }

  /// Total number of recorded instants across all series.
  [[nodiscard]] std::uint64_t total_instants() const;

 private:
  std::map<std::string, InstantSeries> set_;
};

/// Compare two trace sets restricted to the series names present in \p ref.
/// Returns std::nullopt when identical, otherwise a human-readable
/// description of the first difference (missing series, length mismatch, or
/// the first differing instant with its k and both values).
[[nodiscard]] std::optional<std::string> compare_instants(
    const InstantTraceSet& ref, const InstantTraceSet& other);

/// Magnitude of the timing error between two instant trace sets, over the
/// common prefix of every series common to both (series or tail instants
/// present on only one side are not counted). Shared by the loosely-timed
/// model's error_against() and the study layer's per-cell error stats, so
/// the two always agree on the error definition.
struct InstantErrorStats {
  double max_abs_seconds = 0.0;
  double mean_abs_seconds = 0.0;
  std::uint64_t instants = 0;  ///< instants compared
};

[[nodiscard]] InstantErrorStats instant_error_stats(
    const InstantTraceSet& ref, const InstantTraceSet& other);

}  // namespace maxev::trace
