#include "trace/usage.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"

namespace maxev::trace {

std::int32_t UsageTrace::intern_label(const std::string& label) {
  for (std::size_t i = 0; i < labels_.size(); ++i)
    if (labels_[i] == label) return static_cast<std::int32_t>(i);
  labels_.push_back(label);
  return static_cast<std::int32_t>(labels_.size()) - 1;
}

const std::string& UsageTrace::label(std::int32_t id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= labels_.size())
    throw Error("UsageTrace '" + resource_ + "': bad label id");
  return labels_[static_cast<std::size_t>(id)];
}

void UsageTrace::push(TimePoint start, TimePoint end, std::int64_t ops,
                      std::int32_t label_id) {
  MAXEV_FAULT_POINT("trace.append");
  if (end < start)
    throw Error("UsageTrace '" + resource_ + "': interval ends before start");
  starts_.push_back(start);
  ends_.push_back(end);
  ops_.push_back(ops);
  label_ids_.push_back(label_id);
  view_valid_ = false;
}

void UsageTrace::add(BusyInterval iv) {
  push(iv.start, iv.end, iv.ops, intern_label(iv.label));
}

void UsageTrace::reserve(std::size_t n) {
  starts_.reserve(n);
  ends_.reserve(n);
  ops_.reserve(n);
  label_ids_.reserve(n);
}

const std::vector<BusyInterval>& UsageTrace::intervals() const {
  if (!view_valid_) {
    view_.clear();
    view_.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) {
      view_.push_back({starts_[i], ends_[i], ops_[i],
                       labels_[static_cast<std::size_t>(label_ids_[i])]});
    }
    view_valid_ = true;
  }
  return view_;
}

Duration UsageTrace::busy_time() const {
  Duration total{};
  for (std::size_t i = 0; i < size(); ++i) total += ends_[i] - starts_[i];
  return total;
}

std::int64_t UsageTrace::total_ops() const {
  std::int64_t total = 0;
  for (const std::int64_t o : ops_) total += o;
  return total;
}

double UsageTrace::utilization(TimePoint horizon) const {
  if (horizon.count() <= 0) return 0.0;
  return static_cast<double>(busy_time().count()) /
         static_cast<double>(horizon.count());
}

TimePoint UsageTrace::span_end() const {
  TimePoint end = TimePoint::origin();
  for (const TimePoint e : ends_) end = std::max(end, e);
  return end;
}

std::vector<RatePoint> UsageTrace::rate_profile() const {
  // Sweep over interval starts (+rate) and ends (-rate).
  struct Edge {
    std::int64_t t;
    double delta;
  };
  std::vector<Edge> edges;
  edges.reserve(size() * 2);
  for (std::size_t i = 0; i < size(); ++i) {
    const std::int64_t len = (ends_[i] - starts_[i]).count();
    if (len <= 0) continue;  // zero-length work contributes no rate
    // ops per picosecond * 1e3 = GOPS (1 GOPS = 1 op/ns = 1e-3 op/ps).
    const double gops =
        static_cast<double>(ops_[i]) / static_cast<double>(len) * 1e3;
    edges.push_back({starts_[i].count(), gops});
    edges.push_back({ends_[i].count(), -gops});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.t < b.t; });

  std::vector<RatePoint> profile;
  double level = 0.0;
  for (std::size_t i = 0; i < edges.size();) {
    const std::int64_t t = edges[i].t;
    while (i < edges.size() && edges[i].t == t) {
      level += edges[i].delta;
      ++i;
    }
    const double clamped = std::abs(level) < 1e-9 ? 0.0 : level;
    if (!profile.empty() && profile.back().t.count() == t) {
      profile.back().gops = clamped;
    } else {
      profile.push_back({TimePoint::at_ps(t), clamped});
    }
  }
  return profile;
}

std::vector<RatePoint> UsageTrace::windowed_rate(Duration bin) const {
  if (bin.count() <= 0)
    throw Error("UsageTrace::windowed_rate: bin must be positive");
  const std::int64_t end = span_end().count();
  if (end == 0) return {};
  const auto bins = static_cast<std::size_t>((end + bin.count() - 1) / bin.count());
  std::vector<double> ops_in(bins, 0.0);
  for (std::size_t i = 0; i < size(); ++i) {
    const std::int64_t len = (ends_[i] - starts_[i]).count();
    if (len <= 0) {
      // Instantaneous work: attribute wholly to its containing bin.
      const auto b = static_cast<std::size_t>(starts_[i].count() / bin.count());
      if (b < bins) ops_in[b] += static_cast<double>(ops_[i]);
      continue;
    }
    const double density =
        static_cast<double>(ops_[i]) / static_cast<double>(len);
    std::int64_t lo = starts_[i].count();
    while (lo < ends_[i].count()) {
      const std::int64_t b = lo / bin.count();
      const std::int64_t bin_end = (b + 1) * bin.count();
      const std::int64_t hi = std::min(bin_end, ends_[i].count());
      if (static_cast<std::size_t>(b) < bins)
        ops_in[static_cast<std::size_t>(b)] +=
            density * static_cast<double>(hi - lo);
      lo = hi;
    }
  }
  std::vector<RatePoint> out;
  out.reserve(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    out.push_back({TimePoint::at_ps(static_cast<std::int64_t>(b) * bin.count()),
                   ops_in[b] / static_cast<double>(bin.count()) * 1e3});
  }
  return out;
}

void UsageTrace::sort() {
  std::vector<std::size_t> perm(size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [this](std::size_t a, std::size_t b) {
    if (starts_[a] != starts_[b]) return starts_[a] < starts_[b];
    if (ends_[a] != ends_[b]) return ends_[a] < ends_[b];
    const std::string& la = labels_[static_cast<std::size_t>(label_ids_[a])];
    const std::string& lb = labels_[static_cast<std::size_t>(label_ids_[b])];
    if (la != lb) return la < lb;
    return ops_[a] < ops_[b];
  });
  const auto apply = [&perm](auto& column) {
    auto sorted = column;
    for (std::size_t i = 0; i < perm.size(); ++i) sorted[i] = column[perm[i]];
    column = std::move(sorted);
  };
  apply(starts_);
  apply(ends_);
  apply(ops_);
  apply(label_ids_);
  view_valid_ = false;
}

UsageTrace& UsageTraceSet::trace(const std::string& resource) {
  auto it = set_.find(resource);
  if (it == set_.end()) it = set_.emplace(resource, UsageTrace{resource}).first;
  return it->second;
}

const UsageTrace* UsageTraceSet::find(const std::string& resource) const {
  auto it = set_.find(resource);
  return it == set_.end() ? nullptr : &it->second;
}

void UsageTraceSet::sort_all() {
  for (auto& [_, t] : set_) t.sort();
}

std::optional<std::string> compare_usage(const UsageTraceSet& ref,
                                         const UsageTraceSet& other) {
  for (const auto& [name, a] : ref.all()) {
    const UsageTrace* b = other.find(name);
    if (b == nullptr) return "resource '" + name + "' missing in other trace";
    if (a.size() != b->size())
      return format("resource '%s': %zu vs %zu intervals", name.c_str(),
                    a.size(), b->size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      // Columnar comparison; labels compare by string (intern ids are
      // per-trace and need not align).
      const std::string& la = a.label(a.label_ids()[i]);
      const std::string& lb = b->label(b->label_ids()[i]);
      if (a.starts()[i] != b->starts()[i] || a.ends()[i] != b->ends()[i] ||
          a.ops()[i] != b->ops()[i] || la != lb) {
        return format(
            "resource '%s': interval %zu differs: [%s,%s) ops=%lld '%s' vs "
            "[%s,%s) ops=%lld '%s'",
            name.c_str(), i, a.starts()[i].to_string().c_str(),
            a.ends()[i].to_string().c_str(),
            static_cast<long long>(a.ops()[i]), la.c_str(),
            b->starts()[i].to_string().c_str(),
            b->ends()[i].to_string().c_str(),
            static_cast<long long>(b->ops()[i]), lb.c_str());
      }
    }
  }
  return std::nullopt;
}

}  // namespace maxev::trace
