#include "trace/usage.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace maxev::trace {

void UsageTrace::add(BusyInterval iv) {
  if (iv.end < iv.start)
    throw Error("UsageTrace '" + resource_ + "': interval ends before start");
  intervals_.push_back(std::move(iv));
}

Duration UsageTrace::busy_time() const {
  Duration total{};
  for (const auto& iv : intervals_) total += iv.end - iv.start;
  return total;
}

std::int64_t UsageTrace::total_ops() const {
  std::int64_t total = 0;
  for (const auto& iv : intervals_) total += iv.ops;
  return total;
}

double UsageTrace::utilization(TimePoint horizon) const {
  if (horizon.count() <= 0) return 0.0;
  return static_cast<double>(busy_time().count()) /
         static_cast<double>(horizon.count());
}

TimePoint UsageTrace::span_end() const {
  TimePoint end = TimePoint::origin();
  for (const auto& iv : intervals_) end = std::max(end, iv.end);
  return end;
}

std::vector<RatePoint> UsageTrace::rate_profile() const {
  // Sweep over interval starts (+rate) and ends (-rate).
  struct Edge {
    std::int64_t t;
    double delta;
  };
  std::vector<Edge> edges;
  edges.reserve(intervals_.size() * 2);
  for (const auto& iv : intervals_) {
    const std::int64_t len = (iv.end - iv.start).count();
    if (len <= 0) continue;  // zero-length work contributes no rate
    // ops per picosecond * 1e3 = GOPS (1 GOPS = 1 op/ns = 1e-3 op/ps).
    const double gops = static_cast<double>(iv.ops) / static_cast<double>(len) * 1e3;
    edges.push_back({iv.start.count(), gops});
    edges.push_back({iv.end.count(), -gops});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.t < b.t; });

  std::vector<RatePoint> profile;
  double level = 0.0;
  for (std::size_t i = 0; i < edges.size();) {
    const std::int64_t t = edges[i].t;
    while (i < edges.size() && edges[i].t == t) {
      level += edges[i].delta;
      ++i;
    }
    const double clamped = std::abs(level) < 1e-9 ? 0.0 : level;
    if (!profile.empty() && profile.back().t.count() == t) {
      profile.back().gops = clamped;
    } else {
      profile.push_back({TimePoint::at_ps(t), clamped});
    }
  }
  return profile;
}

std::vector<RatePoint> UsageTrace::windowed_rate(Duration bin) const {
  if (bin.count() <= 0)
    throw Error("UsageTrace::windowed_rate: bin must be positive");
  const std::int64_t end = span_end().count();
  if (end == 0) return {};
  const auto bins = static_cast<std::size_t>((end + bin.count() - 1) / bin.count());
  std::vector<double> ops_in(bins, 0.0);
  for (const auto& iv : intervals_) {
    const std::int64_t len = (iv.end - iv.start).count();
    if (len <= 0) {
      // Instantaneous work: attribute wholly to its containing bin.
      const auto b = static_cast<std::size_t>(iv.start.count() / bin.count());
      if (b < bins) ops_in[b] += static_cast<double>(iv.ops);
      continue;
    }
    const double density = static_cast<double>(iv.ops) / static_cast<double>(len);
    std::int64_t lo = iv.start.count();
    while (lo < iv.end.count()) {
      const std::int64_t b = lo / bin.count();
      const std::int64_t bin_end = (b + 1) * bin.count();
      const std::int64_t hi = std::min(bin_end, iv.end.count());
      if (static_cast<std::size_t>(b) < bins)
        ops_in[static_cast<std::size_t>(b)] +=
            density * static_cast<double>(hi - lo);
      lo = hi;
    }
  }
  std::vector<RatePoint> out;
  out.reserve(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    out.push_back({TimePoint::at_ps(static_cast<std::int64_t>(b) * bin.count()),
                   ops_in[b] / static_cast<double>(bin.count()) * 1e3});
  }
  return out;
}

void UsageTrace::sort() {
  std::sort(intervals_.begin(), intervals_.end(),
            [](const BusyInterval& a, const BusyInterval& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.end != b.end) return a.end < b.end;
              return a.label < b.label;
            });
}

UsageTrace& UsageTraceSet::trace(const std::string& resource) {
  auto it = set_.find(resource);
  if (it == set_.end()) it = set_.emplace(resource, UsageTrace{resource}).first;
  return it->second;
}

const UsageTrace* UsageTraceSet::find(const std::string& resource) const {
  auto it = set_.find(resource);
  return it == set_.end() ? nullptr : &it->second;
}

void UsageTraceSet::sort_all() {
  for (auto& [_, t] : set_) t.sort();
}

std::optional<std::string> compare_usage(const UsageTraceSet& ref,
                                         const UsageTraceSet& other) {
  for (const auto& [name, a] : ref.all()) {
    const UsageTrace* b = other.find(name);
    if (b == nullptr) return "resource '" + name + "' missing in other trace";
    if (a.size() != b->size())
      return format("resource '%s': %zu vs %zu intervals", name.c_str(),
                    a.size(), b->size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      const auto& x = a.intervals()[i];
      const auto& y = b->intervals()[i];
      if (!(x == y)) {
        return format(
            "resource '%s': interval %zu differs: [%s,%s) ops=%lld '%s' vs "
            "[%s,%s) ops=%lld '%s'",
            name.c_str(), i, x.start.to_string().c_str(),
            x.end.to_string().c_str(), static_cast<long long>(x.ops),
            x.label.c_str(), y.start.to_string().c_str(),
            y.end.to_string().c_str(), static_cast<long long>(y.ops),
            y.label.c_str());
      }
    }
  }
  return std::nullopt;
}

}  // namespace maxev::trace
