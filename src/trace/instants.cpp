#include "trace/instants.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace maxev::trace {

TimePoint InstantSeries::at(std::size_t k) const {
  if (k >= instants_.size())
    throw Error("InstantSeries '" + name_ + "': index out of range");
  return instants_[k];
}

bool InstantSeries::is_monotone() const {
  for (std::size_t i = 1; i < instants_.size(); ++i)
    if (instants_[i] < instants_[i - 1]) return false;
  return true;
}

InstantSeries& InstantTraceSet::series(const std::string& name) {
  auto it = set_.find(name);
  if (it == set_.end())
    it = set_.emplace(name, InstantSeries{name}).first;
  return it->second;
}

const InstantSeries* InstantTraceSet::find(const std::string& name) const {
  auto it = set_.find(name);
  return it == set_.end() ? nullptr : &it->second;
}

std::uint64_t InstantTraceSet::total_instants() const {
  std::uint64_t n = 0;
  for (const auto& [_, s] : set_) n += s.size();
  return n;
}

std::optional<std::string> compare_instants(const InstantTraceSet& ref,
                                            const InstantTraceSet& other) {
  for (const auto& [name, a] : ref.all()) {
    const InstantSeries* b = other.find(name);
    if (b == nullptr) return "series '" + name + "' missing in other trace";
    if (a.size() != b->size()) {
      return format("series '%s': length %zu vs %zu", name.c_str(), a.size(),
                    b->size());
    }
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (a.values()[k] != b->values()[k]) {
        return format("series '%s': instant k=%zu differs: %s vs %s",
                      name.c_str(), k, a.values()[k].to_string().c_str(),
                      b->values()[k].to_string().c_str());
      }
    }
  }
  return std::nullopt;
}

InstantErrorStats instant_error_stats(const InstantTraceSet& ref,
                                      const InstantTraceSet& other) {
  InstantErrorStats st;
  double sum = 0.0;
  for (const auto& [name, a] : ref.all()) {
    const InstantSeries* b = other.find(name);
    if (b == nullptr) continue;
    const std::size_t n = std::min(a.size(), b->size());
    for (std::size_t k = 0; k < n; ++k) {
      const double err =
          std::abs((b->values()[k] - a.values()[k]).seconds());
      st.max_abs_seconds = std::max(st.max_abs_seconds, err);
      sum += err;
      ++st.instants;
    }
  }
  st.mean_abs_seconds =
      st.instants > 0 ? sum / static_cast<double>(st.instants) : 0.0;
  return st;
}

}  // namespace maxev::trace
