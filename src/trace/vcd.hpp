#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/time.hpp"

/// \file vcd.hpp
/// Value Change Dump (IEEE 1364) writer for resource-activity waveforms, so
/// usage traces can be inspected in GTKWave or any EDA waveform viewer.
/// Supports 1-bit wires (resource busy flags) and real-valued signals
/// (GOPS profiles). Timescale is 1 ps, matching the library's time base.

namespace maxev::trace {

class VcdWriter {
 public:
  /// \param module name of the single enclosing scope.
  explicit VcdWriter(std::string module = "maxev");

  /// Declare a 1-bit wire; returns the signal id used by change_bit().
  int add_wire(const std::string& name);
  /// Declare a real-valued signal; returns the signal id.
  int add_real(const std::string& name);

  /// Record a value change (changes may be recorded out of order; they are
  /// sorted at render time; the last change recorded for a (t, signal) pair
  /// wins).
  void change_bit(int signal, TimePoint t, bool value);
  void change_real(int signal, TimePoint t, double value);

  /// Render the complete VCD document.
  [[nodiscard]] std::string render() const;

  /// Render and write to \p path. Throws maxev::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  struct Signal {
    std::string name;
    bool is_real = false;
    std::string code;  ///< VCD short identifier
  };
  struct Change {
    std::int64_t t;
    int signal;
    std::uint64_t order;  ///< recording order, for last-wins semantics
    bool bit = false;
    double real = 0.0;
  };

  static std::string code_for(std::size_t index);

  std::string module_;
  std::vector<Signal> signals_;
  std::vector<Change> changes_;
  std::uint64_t order_ = 0;
};

}  // namespace maxev::trace
