#include "trace/vcd.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace maxev::trace {

VcdWriter::VcdWriter(std::string module) : module_(std::move(module)) {}

std::string VcdWriter::code_for(std::size_t index) {
  // Printable identifier characters per the VCD grammar: '!' (33) .. '~' (126).
  std::string code;
  std::size_t v = index;
  do {
    code += static_cast<char>(33 + v % 94);
    v /= 94;
  } while (v != 0);
  return code;
}

int VcdWriter::add_wire(const std::string& name) {
  signals_.push_back({name, false, code_for(signals_.size())});
  return static_cast<int>(signals_.size()) - 1;
}

int VcdWriter::add_real(const std::string& name) {
  signals_.push_back({name, true, code_for(signals_.size())});
  return static_cast<int>(signals_.size()) - 1;
}

void VcdWriter::change_bit(int signal, TimePoint t, bool value) {
  changes_.push_back({t.count(), signal, order_++, value, 0.0});
}

void VcdWriter::change_real(int signal, TimePoint t, double value) {
  changes_.push_back({t.count(), signal, order_++, false, value});
}

std::string VcdWriter::render() const {
  std::string out;
  out += "$date maxev trace $end\n";
  out += "$version maxev 1.0 $end\n";
  out += "$timescale 1ps $end\n";
  out += "$scope module " + module_ + " $end\n";
  for (const auto& s : signals_) {
    if (s.is_real)
      out += "$var real 64 " + s.code + " " + s.name + " $end\n";
    else
      out += "$var wire 1 " + s.code + " " + s.name + " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  std::vector<Change> sorted = changes_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Change& a, const Change& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return a.order < b.order;
                   });

  std::int64_t current = -1;
  char buf[64];
  for (const auto& c : sorted) {
    if (c.t != current) {
      std::snprintf(buf, sizeof buf, "#%lld\n", static_cast<long long>(c.t));
      out += buf;
      current = c.t;
    }
    const Signal& s = signals_.at(static_cast<std::size_t>(c.signal));
    if (s.is_real) {
      std::snprintf(buf, sizeof buf, "r%.16g %s\n", c.real, s.code.c_str());
      out += buf;
    } else {
      out += c.bit ? '1' : '0';
      out += s.code + "\n";
    }
  }
  return out;
}

void VcdWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("VcdWriter: cannot open '" + path + "'");
  f << render();
}

}  // namespace maxev::trace
