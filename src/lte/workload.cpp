#include "lte/workload.hpp"

#include <cmath>

namespace maxev::lte {

model::TokenAttrs symbol_attrs(const SymbolInfo& info) {
  model::TokenAttrs a;
  const bool data = !info.is_control();
  a.size = data ? info.frame.coded_bits_per_symbol() : 0;
  a.params[0] = static_cast<double>(info.frame.n_prb);
  a.params[1] = static_cast<double>(static_cast<int>(info.frame.modulation));
  a.params[2] = data ? 1.0 : 0.0;
  a.params[3] = info.frame.code_rate;
  return a;
}

namespace {
inline double prb(const model::TokenAttrs& a) { return a.params[0]; }
inline double mod_bits(const model::TokenAttrs& a) { return a.params[1]; }
inline bool is_data(const model::TokenAttrs& a) { return a.params[2] > 0.5; }
inline double code_rate(const model::TokenAttrs& a) { return a.params[3]; }
inline std::int64_t i64(double v) {
  return static_cast<std::int64_t>(std::llround(v));
}
}  // namespace

std::int64_t ops_cp_removal(const model::TokenAttrs&) {
  // One pass over the time-domain samples.
  return kFftSize + kCpSamples;
}

std::int64_t ops_fft(const model::TokenAttrs&) {
  // ~5 N log2(N) real operations for a radix-2 FFT.
  return i64(5.0 * kFftSize * std::log2(static_cast<double>(kFftSize)));
}

std::int64_t ops_channel_estimation(const model::TokenAttrs& a) {
  // Pilot extraction + interpolation over the allocated band.
  return i64(1500.0 * prb(a));
}

std::int64_t ops_equalization(const model::TokenAttrs& a) {
  // MMSE per subcarrier on data symbols; PDCCH-region work on control.
  return is_data(a) ? i64(1000.0 * prb(a)) : i64(250.0 * prb(a));
}

std::int64_t ops_demapping(const model::TokenAttrs& a) {
  // Soft LLR generation per coded bit.
  return is_data(a) ? i64(140.0 * prb(a) * mod_bits(a)) : i64(60.0 * prb(a));
}

std::int64_t ops_descrambling(const model::TokenAttrs& a) {
  return is_data(a) ? i64(80.0 * prb(a) * mod_bits(a)) : i64(30.0 * prb(a));
}

std::int64_t ops_rate_dematching(const model::TokenAttrs& a) {
  return is_data(a) ? i64(90.0 * prb(a) * mod_bits(a)) : i64(30.0 * prb(a));
}

std::int64_t ops_channel_decoding(const model::TokenAttrs& a) {
  if (!is_data(a)) {
    // PDCCH convolutional decoding: light.
    return i64(12000.0 * prb(a));
  }
  // Turbo decoding: ~1500 operations per information bit (includes the
  // iterative MAP passes).
  const double info_bits =
      static_cast<double>(a.size) * code_rate(a);
  return i64(1500.0 * info_bits);
}

std::int64_t ops_dsp_total(const model::TokenAttrs& a) {
  return ops_cp_removal(a) + ops_fft(a) + ops_channel_estimation(a) +
         ops_equalization(a) + ops_demapping(a) + ops_descrambling(a) +
         ops_rate_dematching(a);
}

}  // namespace maxev::lte
