#include "lte/params.hpp"

// Header-only definitions; this translation unit anchors the module.
namespace maxev::lte {}
