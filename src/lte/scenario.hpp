#pragma once

#include <string>
#include <vector>

#include "lte/receiver.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"

/// \file scenario.hpp
/// Analysis helpers for the case-study experiments: per-symbol complexity
/// summaries (the Fig. 6 observables) and real-time feasibility checks.

namespace maxev::lte {

/// Windowed GOPS per resource with the symbol period as the window — the
/// quantity plotted in Fig. 6 (b)/(c).
struct SymbolGops {
  std::vector<trace::RatePoint> dsp;
  std::vector<trace::RatePoint> decoder;
};

[[nodiscard]] SymbolGops per_symbol_gops(const trace::UsageTraceSet& usage);

/// Real-time feasibility report for the DSP: the worst-case busy time per
/// symbol period must stay below the period.
struct Feasibility {
  double worst_symbol_busy_us = 0.0;
  double symbol_period_us = 0.0;
  bool feasible = false;
  std::string to_string() const;
};

[[nodiscard]] Feasibility dsp_feasibility(const trace::UsageTraceSet& usage);

/// Worst-case end-to-end symbol latency of a receiver run, in microseconds:
/// max over the common prefix of the "sym_in" offer and "dec_out" delivery
/// instants. 0 when either series is absent. Shared by the design-space
/// and multi-receiver examples so they agree on the latency definition.
[[nodiscard]] double worst_symbol_latency_us(
    const trace::InstantTraceSet& instants);

}  // namespace maxev::lte
