#pragma once

#include <cstdint>

#include "util/time.hpp"

/// \file params.hpp
/// LTE downlink physical-layer parameters for the paper's Section V case
/// study: a receiver processing one subframe of 14 OFDM symbols per
/// millisecond ("one complete LTE frame made of 14 symbols and spaced by a
/// period of 71.42 µs"), with per-frame varying transmission parameters
/// ("high flexibility according to transmitted frames' parameters").
///
/// The numeric workload constants are a calibrated synthetic model (the
/// paper's constants, from its reference [14], are not published); see
/// docs/DESIGN.md §5 — they are chosen so the published observables hold: DSP
/// demand steps around 4/8 GOPS, dedicated decoder demand around 75/150
/// GOPS (Fig. 6 b/c).

namespace maxev::lte {

/// Modulation schemes and their bits per resource element.
enum class Modulation : std::uint8_t { kQpsk = 2, kQam16 = 4, kQam64 = 6 };

/// Symbols per subframe (normal cyclic prefix).
inline constexpr int kSymbolsPerSubframe = 14;
/// OFDM symbol spacing: 1 ms / 14.
inline constexpr Duration kSymbolPeriod = Duration::ps(71'428'571);
/// Subframe period.
inline constexpr Duration kSubframePeriod = Duration::ms(1);
/// Subcarriers per physical resource block.
inline constexpr int kSubcarriersPerPrb = 12;
/// FFT size (20 MHz numerology).
inline constexpr int kFftSize = 2048;
/// Cyclic-prefix samples (average, normal CP).
inline constexpr int kCpSamples = 144;
/// Number of control (PDCCH) symbols at the head of each subframe.
inline constexpr int kControlSymbols = 3;

/// Per-subframe transmission parameters.
struct FrameParams {
  int n_prb = 100;                      ///< allocated resource blocks (6..100)
  Modulation modulation = Modulation::kQam64;
  double code_rate = 0.75;              ///< effective channel-coding rate

  /// Coded bits carried by one data symbol.
  [[nodiscard]] std::int64_t coded_bits_per_symbol() const {
    return static_cast<std::int64_t>(n_prb) * kSubcarriersPerPrb *
           static_cast<int>(modulation);
  }
  /// Information bits per data symbol.
  [[nodiscard]] std::int64_t info_bits_per_symbol() const {
    return static_cast<std::int64_t>(
        static_cast<double>(coded_bits_per_symbol()) * code_rate);
  }
};

/// Attributes of one received OFDM symbol.
struct SymbolInfo {
  FrameParams frame;
  int symbol_index = 0;  ///< 0..13 within the subframe

  [[nodiscard]] bool is_control() const {
    return symbol_index < kControlSymbols;
  }
};

}  // namespace maxev::lte
