#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lte/params.hpp"
#include "model/desc.hpp"

/// \file receiver.hpp
/// The Section V case-study architecture: "an application made of eight
/// functions and a platform based on two processing resources. The channel
/// decoding function is ... a dedicated hardware resource whereas other
/// application functions are allocated to a digital signal processor."
///
/// Receiver chain: cp_removal -> fft -> channel_estimation -> equalization
/// -> demapping -> descrambling -> rate_dematching (DSP, static cyclic
/// schedule in chain order) -> channel_decoding (dedicated hardware).
/// The environment "periodically produces data frames with varying
/// parameters": one token per OFDM symbol, 71.428 µs apart, attributes set
/// per frame by a FrameSchedule.

namespace maxev::lte {

/// Frame parameters per subframe index (deterministic; shared by both
/// execution paths and across repetitions).
using FrameSchedule = std::function<FrameParams(std::uint64_t subframe)>;

struct ReceiverConfig {
  /// Total symbols to simulate (the paper's speed experiment uses 20000).
  std::uint64_t symbols = 20000;
  FrameSchedule schedule;  ///< defaults to varying_frame_schedule(seed)
  std::uint64_t seed = 1;
  double dsp_ops_per_second = 0;      ///< 0 = workload.hpp default
  double decoder_ops_per_second = 0;  ///< 0 = workload.hpp default
  /// Constant frame parameters, rendered as *introspectable* shaping
  /// functors (model/shaping.hpp): the antenna releases on a CyclicTimeFn
  /// subframe grid and its attributes cycle through a 14-entry
  /// CyclicAttrsFn symbol table. Timing and attributes are identical to
  /// fixed_frame_schedule(*fixed_frame) — but the adaptive backend
  /// (study/adaptive.hpp) can certify the cyclic forms and fast-forward
  /// the steady state, while a schedule lambda stays opaque. Takes
  /// precedence over `schedule`.
  std::optional<FrameParams> fixed_frame;
};

/// A schedule that varies PRB allocation and modulation per subframe
/// (uniformly over {25,50,75,100} PRBs x {QPSK,16QAM,64QAM}).
[[nodiscard]] FrameSchedule varying_frame_schedule(std::uint64_t seed);

/// A constant-parameters schedule.
[[nodiscard]] FrameSchedule fixed_frame_schedule(FrameParams params);

/// Build the validated receiver architecture.
[[nodiscard]] model::ArchitectureDesc make_receiver(const ReceiverConfig& cfg);

/// One component carrier of a carrier-aggregation study: a named receiver
/// configuration with a fixed per-carrier bandwidth. Feed each config to
/// make_receiver() and compose the results (study::compose) to simulate
/// all carriers in one kernel.
struct CarrierVariant {
  std::string name;    ///< "cc0", "cc1", ...
  int n_prb = 100;     ///< the carrier's bandwidth (PRB allocation)
  ReceiverConfig config;
};

/// Carrier-aggregation variants: \p n component carriers with decreasing
/// bandwidth (100/75/50/25 PRB cycle) and proportionally sized platforms,
/// each processing \p symbols OFDM symbols under its own fixed frame
/// parameters. Deterministic in \p seed.
[[nodiscard]] std::vector<CarrierVariant> carrier_aggregation_variants(
    std::size_t n, std::uint64_t symbols, std::uint64_t seed = 2014);

}  // namespace maxev::lte
