#include "lte/scenario.hpp"

#include <algorithm>

#include "lte/workload.hpp"
#include "util/strings.hpp"

namespace maxev::lte {

SymbolGops per_symbol_gops(const trace::UsageTraceSet& usage) {
  SymbolGops out;
  if (const trace::UsageTrace* dsp = usage.find("dsp"))
    out.dsp = dsp->windowed_rate(kSymbolPeriod);
  if (const trace::UsageTrace* dec = usage.find("turbo_dec"))
    out.decoder = dec->windowed_rate(kSymbolPeriod);
  return out;
}

Feasibility dsp_feasibility(const trace::UsageTraceSet& usage) {
  Feasibility f;
  f.symbol_period_us = kSymbolPeriod.micros();
  const trace::UsageTrace* dsp = usage.find("dsp");
  if (dsp == nullptr) return f;

  // Busy time inside each symbol window.
  const auto windows = dsp->windowed_rate(kSymbolPeriod);
  // windowed_rate gives GOPS = ops/ns; busy fraction = demand / capacity.
  double worst_gops = 0.0;
  for (const auto& w : windows) worst_gops = std::max(worst_gops, w.gops);
  // Convert demand back to busy microseconds at the modeled DSP rate.
  f.worst_symbol_busy_us =
      worst_gops * 1e9 / kDspOpsPerSecond * f.symbol_period_us;
  f.feasible = f.worst_symbol_busy_us <= f.symbol_period_us;
  return f;
}

double worst_symbol_latency_us(const trace::InstantTraceSet& instants) {
  const trace::InstantSeries* u = instants.find("sym_in");
  const trace::InstantSeries* y = instants.find("dec_out");
  if (u == nullptr || y == nullptr) return 0.0;
  const std::size_t n = std::min(u->size(), y->size());
  double worst = 0.0;
  for (std::size_t k = 0; k < n; ++k)
    worst = std::max(worst, (y->values()[k] - u->values()[k]).micros());
  return worst;
}

std::string Feasibility::to_string() const {
  return format(
      "DSP worst-case busy %.2fus per %.2fus symbol period => %s",
      worst_symbol_busy_us, symbol_period_us,
      feasible ? "real-time feasible" : "NOT real-time feasible");
}

}  // namespace maxev::lte
