#pragma once

#include <cstdint>

#include "lte/params.hpp"
#include "model/token.hpp"

/// \file workload.hpp
/// Computation-load model of the receiver functions (operations per OFDM
/// symbol). Calibrated so that, at the modeled resource rates (DSP 10
/// GOPS, turbo decoder 150 GOPS), the windowed complexity-per-time-unit
/// profiles reproduce the paper's Fig. 6: DSP around 4 GOPS on control
/// symbols and around 8 GOPS on data symbols; decoder around 75 GOPS at
/// 16QAM and toward 150 GOPS (saturation) at 64QAM.
///
/// Token attribute encoding (model::TokenAttrs):
///   size      = coded bits carried by the symbol (0 for control symbols)
///   params[0] = allocated PRBs
///   params[1] = modulation bits per resource element
///   params[2] = 1.0 for data symbols, 0.0 for control symbols
///   params[3] = code rate

namespace maxev::lte {

/// Modeled DSP rate (operations per second).
inline constexpr double kDspOpsPerSecond = 10e9;
/// Modeled dedicated turbo-decoder rate.
inline constexpr double kDecoderOpsPerSecond = 150e9;

/// Pack a symbol description into token attributes.
[[nodiscard]] model::TokenAttrs symbol_attrs(const SymbolInfo& info);

/// \name Per-function operation counts
/// All take the attribute encoding above. Control symbols exercise the
/// front end (CP removal, FFT, channel estimation) plus PDCCH-weight
/// processing in the remaining stages.
/// @{
[[nodiscard]] std::int64_t ops_cp_removal(const model::TokenAttrs& a);
[[nodiscard]] std::int64_t ops_fft(const model::TokenAttrs& a);
[[nodiscard]] std::int64_t ops_channel_estimation(const model::TokenAttrs& a);
[[nodiscard]] std::int64_t ops_equalization(const model::TokenAttrs& a);
[[nodiscard]] std::int64_t ops_demapping(const model::TokenAttrs& a);
[[nodiscard]] std::int64_t ops_descrambling(const model::TokenAttrs& a);
[[nodiscard]] std::int64_t ops_rate_dematching(const model::TokenAttrs& a);
[[nodiscard]] std::int64_t ops_channel_decoding(const model::TokenAttrs& a);
/// @}

/// Total DSP operations for one symbol (everything except decoding).
[[nodiscard]] std::int64_t ops_dsp_total(const model::TokenAttrs& a);

}  // namespace maxev::lte
