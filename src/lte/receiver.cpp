#include "lte/receiver.hpp"

#include <iterator>
#include <memory>

#include "lte/workload.hpp"
#include "model/shaping.hpp"
#include "util/rng.hpp"

namespace maxev::lte {

using model::ArchitectureDesc;
using model::ResourcePolicy;
using model::TokenAttrs;

FrameSchedule varying_frame_schedule(std::uint64_t seed) {
  return [seed](std::uint64_t subframe) {
    Rng rng(seed ^ (subframe * 0x9e3779b97f4a7c15ull + 17));
    FrameParams p;
    static constexpr int kPrbChoices[] = {25, 50, 75, 100};
    static constexpr Modulation kModChoices[] = {
        Modulation::kQpsk, Modulation::kQam16, Modulation::kQam64};
    p.n_prb = kPrbChoices[rng.next_below(4)];
    p.modulation = kModChoices[rng.next_below(3)];
    p.code_rate = 0.75;
    return p;
  };
}

FrameSchedule fixed_frame_schedule(FrameParams params) {
  return [params](std::uint64_t) { return params; };
}

model::ArchitectureDesc make_receiver(const ReceiverConfig& cfg) {
  ArchitectureDesc d;
  const double dsp_rate =
      cfg.dsp_ops_per_second > 0 ? cfg.dsp_ops_per_second : kDspOpsPerSecond;
  const double dec_rate = cfg.decoder_ops_per_second > 0
                              ? cfg.decoder_ops_per_second
                              : kDecoderOpsPerSecond;

  const auto dsp =
      d.add_resource("dsp", ResourcePolicy::kSequentialCyclic, dsp_rate);
  const auto hw =
      d.add_resource("turbo_dec", ResourcePolicy::kConcurrent, dec_rate);

  const auto sym_in = d.add_rendezvous("sym_in");
  const auto d1 = d.add_rendezvous("d1");
  const auto d2 = d.add_rendezvous("d2");
  const auto d3 = d.add_rendezvous("d3");
  const auto d4 = d.add_rendezvous("d4");
  const auto d5 = d.add_rendezvous("d5");
  const auto d6 = d.add_rendezvous("d6");
  const auto d7 = d.add_rendezvous("d7");
  const auto dec_out = d.add_rendezvous("dec_out");

  struct Stage {
    const char* name;
    std::int64_t (*ops)(const model::TokenAttrs&);
  };
  // The seven DSP stages in chain (and static schedule) order.
  static constexpr Stage kDspStages[] = {
      {"cp_removal", ops_cp_removal},
      {"fft", ops_fft},
      {"channel_estimation", ops_channel_estimation},
      {"equalization", ops_equalization},
      {"demapping", ops_demapping},
      {"descrambling", ops_descrambling},
      {"rate_dematching", ops_rate_dematching},
  };
  const model::ChannelId chain[] = {sym_in, d1, d2, d3, d4, d5, d6, d7};

  for (int i = 0; i < 7; ++i) {
    const auto f = d.add_function(kDspStages[i].name, dsp);
    d.fn_read(f, chain[i]);
    // A load that is a pure function of the attributes, carried as such:
    // same values as the historical capturing lambda, but the adaptive
    // certifier sees the k-independence instead of an opaque closure.
    d.fn_execute(f, model::AttrsPureFn{kDspStages[i].ops});
    d.fn_write(f, chain[i + 1]);
  }

  const auto dec = d.add_function("channel_decoding", hw);
  d.fn_read(dec, d7);
  d.fn_execute(dec, model::AttrsPureFn{ops_channel_decoding});
  d.fn_write(dec, dec_out);

  // Environment: one token per OFDM symbol, strictly periodic, with frame
  // parameters varying per subframe.
  std::function<TimePoint(std::uint64_t)> earliest;
  std::function<TokenAttrs(std::uint64_t)> attrs;
  if (cfg.fixed_frame.has_value()) {
    // Constant frame parameters: the symbol grid and per-symbol attributes
    // repeat every subframe, so both render as cyclic functors with the
    // vector period kSymbolsPerSubframe (= 14).
    auto offsets = std::make_shared<std::vector<std::int64_t>>();
    auto table = std::make_shared<std::vector<TokenAttrs>>();
    for (int i = 0; i < kSymbolsPerSubframe; ++i) {
      offsets->push_back((kSymbolPeriod * i).count());
      SymbolInfo info;
      info.frame = *cfg.fixed_frame;
      info.symbol_index = i;
      table->push_back(symbol_attrs(info));
    }
    earliest =
        model::CyclicTimeFn{kSubframePeriod.count(), std::move(offsets)};
    attrs = model::CyclicAttrsFn{std::move(table)};
  } else {
    FrameSchedule sched =
        cfg.schedule ? cfg.schedule : varying_frame_schedule(cfg.seed);
    attrs = [sched](std::uint64_t k) {
      SymbolInfo info;
      info.frame = sched(k / kSymbolsPerSubframe);
      info.symbol_index = static_cast<int>(k % kSymbolsPerSubframe);
      return symbol_attrs(info);
    };
    earliest = [](std::uint64_t k) {
      // Symbol i of subframe n arrives at n*1ms + i*71.428us (subframes are
      // aligned to the millisecond grid, symbols spaced inside).
      const auto n = static_cast<std::int64_t>(k / kSymbolsPerSubframe);
      const auto i = static_cast<std::int64_t>(k % kSymbolsPerSubframe);
      return TimePoint::origin() + kSubframePeriod * n + kSymbolPeriod * i;
    };
  }
  d.add_source("antenna", sym_in, cfg.symbols, earliest, attrs);
  d.add_sink("mac_layer", dec_out);

  d.validate();
  return d;
}

std::vector<CarrierVariant> carrier_aggregation_variants(
    std::size_t n, std::uint64_t symbols, std::uint64_t seed) {
  // Bandwidth classes with platforms sized to keep each carrier feasible:
  // DSP demand scales with PRB (Fig. 6b steps), decoder demand with the
  // coded-bit rate (Fig. 6c).
  struct Class {
    int n_prb;
    double dsp_gops;
    double dec_gops;
  };
  static constexpr Class kClasses[] = {
      {100, 10.0, 150.0}, {75, 8.0, 150.0}, {50, 6.0, 75.0}, {25, 4.0, 75.0}};

  std::vector<CarrierVariant> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Class& cls = kClasses[i % std::size(kClasses)];
    CarrierVariant v;
    v.name = "cc" + std::to_string(i);
    v.n_prb = cls.n_prb;
    v.config.symbols = symbols;
    v.config.seed = seed + i;
    v.config.dsp_ops_per_second = cls.dsp_gops * 1e9;
    v.config.decoder_ops_per_second = cls.dec_gops * 1e9;
    FrameParams frame;
    frame.n_prb = cls.n_prb;
    frame.modulation = Modulation::kQam64;
    frame.code_rate = 0.75;
    v.config.schedule = fixed_frame_schedule(frame);
    v.config.fixed_frame = frame;
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace maxev::lte
