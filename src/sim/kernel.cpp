#include "sim/kernel.hpp"

#include <cassert>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace maxev::sim {

Kernel::~Kernel() {
  // Destroy still-suspended coroutine frames; done frames are destroyed in
  // reap(), so only live ones remain. Reverse order of creation so that
  // later-spawned processes (which may reference state touched by earlier
  // ones) unwind first.
  for (auto it = procs_.rbegin(); it != procs_.rend(); ++it) {
    if (it->handle) {
      it->handle.destroy();
      it->handle = {};
    }
  }
}

std::uint32_t Kernel::spawn(std::string name,
                            std::function<Process()> factory) {
  factories_.push_back(
      std::make_unique<std::function<Process()>>(std::move(factory)));
  Process p = (*factories_.back())();
  const auto id = static_cast<std::uint32_t>(procs_.size());
  auto h = p.handle();
  h.promise().kernel = this;
  h.promise().id = id;
  procs_.push_back(ProcInfo{std::move(name), h, /*queued=*/false});
  ++stats_.processes_spawned;
  schedule_resume(h, now_);
  return id;
}

void Kernel::schedule_resume(Process::Handle h, TimePoint t) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(t.count(), seq_++, QueueItem{h, -1});
  procs_[h.promise().id].queued = true;
  ++stats_.events_scheduled;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
}

void Kernel::schedule_call(TimePoint t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  std::int32_t call_idx;
  if (free_call_slots_.empty()) {
    call_idx = static_cast<std::int32_t>(pending_calls_.size());
    pending_calls_.push_back(std::move(fn));
  } else {
    call_idx = free_call_slots_.back();
    free_call_slots_.pop_back();
    pending_calls_[static_cast<std::size_t>(call_idx)] = std::move(fn);
  }
  queue_.push(t.count(), seq_++, QueueItem{{}, call_idx});
  ++stats_.events_scheduled;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
}

void Kernel::resume_now(Process::Handle h) {
  const std::uint32_t id = h.promise().id;
  if (procs_[id].queued)
    throw SimulationError("Kernel::resume_now: process '" + procs_[id].name +
                          "' already has a queued resume — running it inline "
                          "would resume it twice");
  if (dispatch_depth_ > 0) {
    // Nested in another process's resume: executing here would stack one
    // coroutine inside another. Fall back to a same-instant queue event.
    schedule_resume(h, now_);
    return;
  }
  ++stats_.resumes;
  ++stats_.inline_resumes;
  ++dispatch_depth_;
  h.resume();
  --dispatch_depth_;
  if (h.promise().done) reap(id);
}

void Kernel::reap(std::uint32_t id) {
  ProcInfo& info = procs_[id];
  if (!info.handle) return;
  std::exception_ptr error = info.handle.promise().error;
  info.handle.destroy();
  info.handle = {};
  ++stats_.processes_finished;
  if (error) {
    const std::string context =
        "process '" + info.name + "' terminated with exception";
    try {
      std::rethrow_exception(error);
    } catch (const Error&) {
      // Keep the concrete maxev type (an OverflowError stays catchable as
      // one) while naming the process that died.
      rethrow_with_context(context);
    } catch (const std::exception& e) {
      throw SimulationError(context + ": " + e.what());
    }
  }
}

Kernel::RunResult Kernel::run(std::optional<TimePoint> until) {
  // The hook and guard tests are hoisted out of the event loop (template
  // parameters) so the common hook-less unguarded path pays nothing per
  // event. Consequence: hooks and guards must be installed before run() —
  // changing either mid-run takes effect at the next run() call.
  StopReason r;
  if (guards_.any())
    r = timestep_hook_ ? run_loop<true, true>(until)
                       : run_loop<false, true>(until);
  else
    r = timestep_hook_ ? run_loop<true, false>(until)
                       : run_loop<false, false>(until);
  last_stop_ = r;
  return r;
}

template <bool WithHook, bool WithGuards>
StopReason Kernel::run_loop(std::optional<TimePoint> until) {
  std::uint64_t guard_steps = 0;
  if constexpr (WithGuards) {
    if (guards_.deadline.count() > 0 && !deadline_at_)
      deadline_at_ = std::chrono::steady_clock::now() + guards_.deadline;
  }
  for (;;) {
    if constexpr (WithGuards) {
      // Checked between dispatches only: a guard never interrupts a
      // coroutine mid-resume, and — because timestep hooks re-enter the
      // loop between drain rounds — every batched-drain barrier passes
      // through here too. The wall clock is sampled every 64 steps; the
      // budget and the cancel token (one relaxed load) every step.
      if (guards_.max_events != 0 && events_dispatched() >= guards_.max_events)
        return StopReason::kBudget;
      if (guards_.cancel != nullptr && guards_.cancel->cancelled())
        return StopReason::kCancelled;
      if (deadline_at_ && (guard_steps++ & 63u) == 0 &&
          std::chrono::steady_clock::now() >= *deadline_at_)
        return StopReason::kDeadline;
    }
    if (queue_.empty()) {
      // Timestep boundary: give deferred computation (batched iteration
      // fronts) a chance to schedule follow-up events before going idle.
      if (WithHook && timestep_hook_()) continue;
      return RunResult::kIdle;
    }
    const TimePoint t = TimePoint::at_ps(queue_.top().t);
    // Timestep boundary: the next event lies beyond the current instant.
    // The hook may add events at now_, which then run before time
    // advances (and before a horizon cut).
    if (WithHook && t > now_ && timestep_hook_()) continue;
    if (until && t > *until) {
      now_ = *until;
      return RunResult::kTimeLimit;
    }
    const auto [h, call_idx] = queue_.pop().payload;
    now_ = t;
    MAXEV_FAULT_POINT("kernel.dispatch");

    if (event_overhead_.count() > 0) {
      const auto spin_until =
          std::chrono::steady_clock::now() + event_overhead_;
      while (std::chrono::steady_clock::now() < spin_until) {
      }
    }

    if (h) {
      const std::uint32_t id = h.promise().id;
      procs_[id].queued = false;
      ++stats_.resumes;
      ++dispatch_depth_;
      h.resume();
      --dispatch_depth_;
      if (h.promise().done) reap(id);
    } else {
      ++stats_.callbacks;
      std::function<void()> fn =
          std::move(pending_calls_[static_cast<std::size_t>(call_idx)]);
      free_call_slots_.push_back(call_idx);
      fn();
    }
  }
}

std::vector<std::string> Kernel::blocked_process_names() const {
  std::vector<std::string> names;
  for (const auto& p : procs_) {
    if (p.handle && !p.handle.promise().done && !p.queued)
      names.push_back(p.name);
  }
  return names;
}

std::size_t Kernel::live_process_count() const {
  std::size_t n = 0;
  for (const auto& p : procs_)
    if (p.handle && !p.handle.promise().done) ++n;
  return n;
}

}  // namespace maxev::sim
