#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file diagnostics.hpp
/// Structured run outcomes: why a run stopped, and — when it stopped with
/// unfinished work — what exactly was left hanging. Every execution layer
/// fills the part it can see: the Kernel reports the stop reason and parked
/// processes, the equivalent models add unresolved gated rendezvous, the
/// batched model adds per-instance token progress. The study layer attaches
/// the result to maxev::SimulationError and the Report writers render it,
/// so a failed cell explains itself instead of dying with a bare string
/// (docs/DESIGN.md §12).

namespace maxev::sim {

/// Why Kernel::run() returned.
enum class StopReason : std::uint8_t {
  kIdle,       ///< event queue drained
  kTimeLimit,  ///< next event lies beyond the given horizon
  kBudget,     ///< RunGuards::max_events dispatched events reached
  kDeadline,   ///< RunGuards::deadline wall-clock time elapsed
  kCancelled,  ///< RunGuards::cancel token observed set
};

[[nodiscard]] const char* to_string(StopReason reason);

/// True for the guard-tripped reasons (budget, deadline, cancellation) —
/// the run was interrupted with live work still queued, as opposed to
/// draining (kIdle) or reaching an explicit horizon (kTimeLimit).
[[nodiscard]] constexpr bool is_guard_stop(StopReason reason) {
  return reason == StopReason::kBudget || reason == StopReason::kDeadline ||
         reason == StopReason::kCancelled;
}

/// What a stopped-but-incomplete run left behind. Assembled by the model
/// layers on any run that did not complete (stall or guard stop); all
/// fields are deterministic for deterministic workloads except the timing
/// of kDeadline/kCancelled stops themselves.
struct RunDiagnostics {
  StopReason stop = StopReason::kIdle;
  /// Dispatched events (coroutine resumes + callbacks) over the kernel's
  /// lifetime — the quantity RunGuards::max_events budgets.
  std::uint64_t events_processed = 0;
  /// Processes neither finished nor queued for resume: blocked on a
  /// synchronization that never arrived.
  std::vector<std::string> parked_processes;
  /// Gated rendezvous receptions whose computed completion instant never
  /// became known, as "<offer-node>@k=<iteration>" (equivalent models).
  std::vector<std::string> unresolved_gates;

  /// Token progress of one composed instance (batched runs).
  struct InstanceProgress {
    std::string instance;
    std::uint64_t tokens_done = 0;
    std::uint64_t tokens_expected = 0;
  };
  std::vector<InstanceProgress> instances;

  /// Model-specific free text (source/sink progress, blocked channels).
  std::string detail;

  /// One-line human rendering of everything above — the stall_report /
  /// SimulationError message body.
  [[nodiscard]] std::string summary() const;
};

}  // namespace maxev::sim
