#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "sim/kernel.hpp"
#include "sim/process.hpp"
#include "util/error.hpp"

/// \file channel.hpp
/// Point-to-point channels (one writer, one reader), the "relations" of the
/// reproduced paper's architecture models.
///
/// Rendezvous<T> implements the paper's rendezvous protocol: a transfer
/// completes at max(writer-offer instant, reader-ready instant) and both
/// sides proceed from that instant. Fifo<T> is a bounded FIFO: a write
/// completes as soon as a slot is free, a read as soon as an item exists.
///
/// Both channels count completed transfers ("events occurring when data are
/// exchanged through relations", the paper's event-ratio metric) and can
/// report each transfer instant to a hook for exact accuracy comparison.
///
/// Rendezvous<T> additionally supports a *gated reader*: instead of a
/// process co_awaiting read(), a callback receives each offer (time, value)
/// and returns the instant at which the transfer must complete. This is how
/// the equivalent model accepts input tokens at dynamically *computed*
/// instants without simulating the abstracted processes (and preserves the
/// producer's back-pressure exactly).

namespace maxev::sim {

/// Transfer notification: iteration index, completion instant, token.
template <typename T>
using TransferHook = std::function<void(std::uint64_t k, TimePoint t, const T&)>;

template <typename T>
class Rendezvous {
 public:
  /// Gated-reader callback: maps (offer instant, token) to the completion
  /// instant (>= offer). May return std::nullopt when the completion is not
  /// yet determined (it depends on a pending external event, e.g. a slow
  /// environment still holding a previous output); the offer then stays
  /// parked until resolve_gated() supplies the instant.
  using Gate = std::function<std::optional<TimePoint>(TimePoint, const T&)>;

  Rendezvous(Kernel& kernel, std::string name)
      : kernel_(&kernel), name_(std::move(name)) {}

  Rendezvous(const Rendezvous&) = delete;
  Rendezvous& operator=(const Rendezvous&) = delete;

  /// Writer side: co_await ch.write(token).
  [[nodiscard]] auto write(T value) {
    struct Awaiter {
      Rendezvous* ch;
      T value;

      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<Process::promise_type> h) {
        return ch->on_write_offer(Process::Handle::from_address(h.address()),
                                  std::move(value));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, std::move(value)};
  }

  /// Reader side: T token = co_await ch.read().
  [[nodiscard]] auto read() {
    struct Awaiter {
      Rendezvous* ch;

      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<Process::promise_type> h) {
        return ch->on_read_ready(Process::Handle::from_address(h.address()));
      }
      T await_resume() { return ch->take_delivery(); }
    };
    return Awaiter{this};
  }

  /// Install the gated reader (equivalent-model input mode). No process may
  /// co_await read() in this mode.
  void set_gated_reader(Gate gate) { gate_ = std::move(gate); }

  /// Complete a parked gated offer at instant \p t (>= the offer instant).
  /// When \p t is the *current* instant the writer is resumed through
  /// Kernel::resume_now — no queue round-trip — which is how the batched
  /// equivalent model answers same-instant gated inputs resolved at a
  /// timestep boundary without paying one queued event per token
  /// (docs/DESIGN.md §10). The writer is un-parked before it resumes, so it
  /// may immediately offer its next token on this channel.
  void resolve_gated(TimePoint t) {
    if (!gate_ || !pending_writer_)
      throw SimulationError("resolve_gated without parked offer on '" +
                            name_ + "'");
    complete(t, pending_writer_->value);
    const Process::Handle writer = pending_writer_->writer;
    pending_writer_.reset();
    if (t == kernel_->now())
      kernel_->resume_now(writer);
    else
      kernel_->schedule_resume(writer, t);
  }

  /// Observation hooks, each called once per completed transfer (appended;
  /// multiple subscribers allowed).
  void on_transfer(TransferHook<T> hook) {
    hooks_.push_back(std::move(hook));
  }

  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool writer_blocked() const { return pending_writer_.has_value(); }
  [[nodiscard]] bool reader_blocked() const { return static_cast<bool>(reader_); }

 private:
  struct PendingWrite {
    Process::Handle writer;
    T value;
  };

  /// Returns true when the writer must suspend.
  bool on_write_offer(Process::Handle writer, T&& value) {
    const TimePoint offer = kernel_->now();
    if (gate_) {
      if (pending_writer_)
        throw SimulationError("second writer on gated channel '" + name_ + "'");
      // Park first: the gate may resolve synchronously through a callback
      // that calls resolve_gated() re-entrantly.
      pending_writer_ = PendingWrite{writer, std::move(value)};
      const std::optional<TimePoint> done = gate_(offer, pending_writer_->value);
      if (!done) return true;  // parked until resolve_gated()
      if (*done < offer)
        throw SimulationError("gated reader returned completion < offer on '" +
                              name_ + "'");
      complete(*done, pending_writer_->value);
      const bool immediate = *done == offer;
      if (!immediate) kernel_->schedule_resume(writer, *done);
      pending_writer_.reset();
      return !immediate;  // continue inline when completing at the offer
    }
    if (reader_) {
      // Reader arrived first: transfer completes now, at the offer instant.
      delivery_ = std::move(value);
      complete(offer, *delivery_);
      kernel_->schedule_resume(reader_, offer);
      reader_ = {};
      return false;  // writer continues without a context switch
    }
    if (pending_writer_)
      throw SimulationError("second writer on rendezvous channel '" + name_ +
                            "'");
    pending_writer_ = PendingWrite{writer, std::move(value)};
    return true;
  }

  /// Returns true when the reader must suspend.
  bool on_read_ready(Process::Handle reader) {
    if (gate_)
      throw SimulationError("co_await read() on gated channel '" + name_ + "'");
    const TimePoint ready = kernel_->now();
    if (pending_writer_) {
      // Writer arrived first: transfer completes now, at the ready instant.
      delivery_ = std::move(pending_writer_->value);
      complete(ready, *delivery_);
      kernel_->schedule_resume(pending_writer_->writer, ready);
      pending_writer_.reset();
      return false;  // reader continues; await_resume picks up the token
    }
    if (reader_)
      throw SimulationError("second reader on rendezvous channel '" + name_ +
                            "'");
    reader_ = reader;
    return true;
  }

  T take_delivery() {
    if (!delivery_)
      throw SimulationError("rendezvous '" + name_ + "': no delivery");
    T out = std::move(*delivery_);
    delivery_.reset();
    return out;
  }

  void complete(TimePoint t, const T& value) {
    const std::uint64_t k = transfers_++;
    for (const auto& hook : hooks_) hook(k, t, value);
  }

  Kernel* kernel_;
  std::string name_;
  std::optional<PendingWrite> pending_writer_;
  Process::Handle reader_{};
  std::optional<T> delivery_;
  std::uint64_t transfers_ = 0;
  std::vector<TransferHook<T>> hooks_;
  Gate gate_;
};

/// Bounded FIFO channel. Writes complete at the enqueue instant (blocking
/// only when full); reads complete at the dequeue instant (blocking only
/// when empty). Write and read instants are therefore distinct series; both
/// can be observed through separate hooks.
template <typename T>
class Fifo {
 public:
  Fifo(Kernel& kernel, std::string name, std::size_t capacity)
      : kernel_(&kernel), name_(std::move(name)), capacity_(capacity) {
    if (capacity_ == 0)
      throw DescriptionError("fifo '" + name_ + "': capacity must be >= 1");
  }

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  [[nodiscard]] auto write(T value) {
    struct Awaiter {
      Fifo* ch;
      T value;

      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<Process::promise_type> h) {
        return ch->on_write(Process::Handle::from_address(h.address()),
                            std::move(value));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, std::move(value)};
  }

  [[nodiscard]] auto read() {
    struct Awaiter {
      Fifo* ch;

      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<Process::promise_type> h) {
        return ch->on_read(Process::Handle::from_address(h.address()));
      }
      T await_resume() { return ch->take_delivery(); }
    };
    return Awaiter{this};
  }

  void on_write_complete(TransferHook<T> hook) {
    write_hooks_.push_back(std::move(hook));
  }
  void on_read_complete(TransferHook<T> hook) {
    read_hooks_.push_back(std::move(hook));
  }

  [[nodiscard]] std::uint64_t writes_completed() const { return writes_; }
  [[nodiscard]] std::uint64_t reads_completed() const { return reads_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool writer_blocked() const { return pending_writer_.has_value(); }
  [[nodiscard]] bool reader_blocked() const { return static_cast<bool>(reader_); }

 private:
  struct PendingWrite {
    Process::Handle writer;
    T value;
  };

  bool on_write(Process::Handle writer, T&& value) {
    if (items_.size() < capacity_) {
      enqueue(std::move(value));
      return false;  // write completes immediately
    }
    if (pending_writer_)
      throw SimulationError("second writer on fifo '" + name_ + "'");
    pending_writer_ = PendingWrite{writer, std::move(value)};
    return true;
  }

  bool on_read(Process::Handle reader) {
    if (!items_.empty()) {
      pop_to_delivery();
      return false;
    }
    if (reader_) throw SimulationError("second reader on fifo '" + name_ + "'");
    reader_ = reader;
    return true;
  }

  void enqueue(T&& value) {
    const std::uint64_t k = writes_++;
    for (const auto& hook : write_hooks_) hook(k, kernel_->now(), value);
    items_.push_back(std::move(value));
    if (reader_) {
      // Wake the blocked reader; it will dequeue when resumed.
      auto r = reader_;
      reader_ = {};
      kernel_->schedule_resume(r, kernel_->now());
    }
  }

  void pop_to_delivery() {
    delivery_ = std::move(items_.front());
    items_.pop_front();
    const std::uint64_t k = reads_++;
    for (const auto& hook : read_hooks_) hook(k, kernel_->now(), *delivery_);
    if (pending_writer_) {
      // A slot is free: the blocked write completes at this very instant.
      enqueue(std::move(pending_writer_->value));
      auto w = pending_writer_->writer;
      pending_writer_.reset();
      kernel_->schedule_resume(w, kernel_->now());
    }
  }

  T take_delivery() {
    if (!delivery_) {
      // Woken by enqueue(): the item is still in the queue.
      pop_to_delivery();
    }
    T out = std::move(*delivery_);
    delivery_.reset();
    return out;
  }

  Kernel* kernel_;
  std::string name_;
  std::size_t capacity_;
  std::deque<T> items_;
  std::optional<PendingWrite> pending_writer_;
  Process::Handle reader_{};
  std::optional<T> delivery_;
  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
  std::vector<TransferHook<T>> write_hooks_;
  std::vector<TransferHook<T>> read_hooks_;
};

}  // namespace maxev::sim
