#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/diagnostics.hpp"
#include "sim/ladder_queue.hpp"
#include "sim/process.hpp"
#include "util/cancel.hpp"
#include "util/time.hpp"

/// \file kernel.hpp
/// Discrete-event simulation kernel.
///
/// This is the executable substrate the reproduced paper assumes (a SystemC
/// kernel): an event queue ordered by (time, insertion sequence), cooperative
/// processes, timed waits and notifications. Determinism: ties in time are
/// broken by insertion order, so repeated runs of the same model produce
/// identical schedules. The queue is a two-level ladder
/// (sim/ladder_queue.hpp) rather than a binary heap: the baseline model's
/// per-event cost is part of every speed-up this library reports, so the
/// reference simulator has to be as fast as the substrate allows.

namespace maxev::sim {

/// Optional limits on one kernel's execution, set via
/// Kernel::set_run_guards(). All default-off; run() samples them once per
/// call and dispatches a guard-free event loop when none is set, so the
/// hot path pays nothing (the same template split as the timestep hook).
/// A guard-tripped run leaves the queue and all coroutines intact: raise
/// the budget (or clear the cancellation) and call run() again to resume.
struct RunGuards {
  /// Stop with StopReason::kBudget once this many events (resumes +
  /// callbacks) have been dispatched over the kernel's lifetime, counted
  /// cumulatively across run() calls. 0 = unlimited. Event-granular, so it
  /// also bounds same-instant spins a horizon cannot cut.
  std::uint64_t max_events = 0;
  /// Stop with StopReason::kDeadline this much wall-clock time after the
  /// first guarded run() begins (checked every 64 events). 0 = none.
  std::chrono::nanoseconds deadline{0};
  /// Stop with StopReason::kCancelled when this token reports
  /// cancellation; checked before every dispatch, so also at every
  /// timestep-hook barrier. Not owned; may be shared across kernels.
  const util::CancelToken* cancel = nullptr;

  [[nodiscard]] bool any() const {
    return max_events != 0 || deadline.count() > 0 || cancel != nullptr;
  }
};

/// Counters exposed for the paper's metrics (event ratio, context switches).
///
/// Ownership contract: stats live inside their Kernel and a Kernel is only
/// ever driven by one thread at a time. The thread-parallel layers
/// (DESIGN.md §11) parallelize *across* kernels — one per study cell — or
/// suspend the kernel at a timestep barrier before fanning out, so these
/// counters are plain integers, never shared mutable state.
struct KernelStats {
  std::uint64_t events_scheduled = 0;  ///< queue insertions (timed wakeups, notifies, calls)
  std::uint64_t resumes = 0;           ///< coroutine context switches
  std::uint64_t inline_resumes = 0;    ///< resume_now() resumes that skipped the queue
  std::uint64_t callbacks = 0;         ///< scheduled plain-function events
  std::uint64_t processes_spawned = 0;
  std::uint64_t processes_finished = 0;
  std::size_t max_queue_depth = 0;
};

class Kernel {
 public:
  Kernel() = default;
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Register a process. The factory is stored (keeping lambda captures
  /// alive for the coroutine's lifetime) and invoked once; the process body
  /// is scheduled to start at the current simulation time.
  std::uint32_t spawn(std::string name, std::function<Process()> factory);

  /// Current simulation time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Awaitable: resume this process after \p d of simulated time.
  [[nodiscard]] auto delay(Duration d);
  /// Awaitable: resume this process at simulated time max(now, t).
  [[nodiscard]] auto delay_until(TimePoint t);

  /// Schedule a coroutine resume at absolute time \p t (used by events and
  /// channels). \pre t >= now()
  void schedule_resume(Process::Handle h, TimePoint t);

  /// Schedule a plain callback at absolute time \p t. \pre t >= now()
  void schedule_call(TimePoint t, std::function<void()> fn);

  /// Resume a suspended process at the *current* instant without a queue
  /// round-trip — the inline-resume fast path (docs/DESIGN.md §10). Safe
  /// only outside coroutine dispatch: when another process is mid-resume
  /// (e.g. a channel hook running inside the writer's own suspension), the
  /// call degrades to schedule_resume(h, now()), preserving today's
  /// ordering. From hook/callback context (timestep hooks, scheduled
  /// calls, the idle loop) the resume executes immediately; the simulated
  /// instant is unchanged either way, so traces are value-identical — only
  /// the queued-event count drops.
  /// \pre the target is suspended on a synchronization with NO queued
  ///      resume event (a blocked writer/reader, not a timed wait) —
  ///      resuming a queued process inline would run it twice when its
  ///      queue entry pops. Throws maxev::SimulationError otherwise.
  void resume_now(Process::Handle h);

  /// Outcome of run() — the shared sim::StopReason enum; the historical
  /// nested name (and its kIdle/kTimeLimit enumerators) stay valid.
  using RunResult = StopReason;

  /// Execute events until the queue drains, the horizon passes, or a run
  /// guard trips (budget/deadline/cancellation — see RunGuards). Process
  /// exceptions propagate to the caller wrapped with the process name
  /// (fail fast, keep diagnostics).
  RunResult run(std::optional<TimePoint> until = std::nullopt);

  /// Install execution limits for subsequent run() calls. Like the
  /// timestep hook, guards are sampled once per run(): the guard-free
  /// event loop is a separate template instantiation, so unset guards
  /// cost nothing per event. Pass {} to clear.
  void set_run_guards(RunGuards guards) { guards_ = guards; }
  [[nodiscard]] const RunGuards& run_guards() const { return guards_; }

  /// Why the most recent run() returned (kIdle before any run).
  [[nodiscard]] StopReason last_stop() const { return last_stop_; }

  /// Events dispatched (resumes + callbacks) over this kernel's lifetime —
  /// the quantity RunGuards::max_events budgets.
  [[nodiscard]] std::uint64_t events_dispatched() const {
    return stats_.resumes + stats_.callbacks - stats_.inline_resumes;
  }

  /// Register a hook fired at every timestep boundary: when the queue has
  /// no event left at the current simulation time — before time advances,
  /// and before run() returns. The hook returns true when it did work (it
  /// may schedule new events, including at the current time, which are
  /// then processed before time advances); it is re-invoked until it
  /// returns false, so it must be idempotent at quiescence.
  ///
  /// This is how deferred computation batches across same-instant events:
  /// core::BatchEquivalentModel lets all instances' feeds of one instant
  /// accumulate and drains the resulting iteration fronts here, in one
  /// pass (docs/DESIGN.md §9). One hook per kernel; passing an empty
  /// function removes it. Install before run(): the hook's presence is
  /// sampled once per run() call (the hook-less event loop stays free of
  /// the check).
  void set_timestep_hook(std::function<bool()> hook) {
    timestep_hook_ = std::move(hook);
  }

  /// Event-cost sensitivity knob: spin for this much *wall-clock* time per
  /// processed event, emulating the heavier per-event cost of commercial
  /// kernels (the reproduced paper's substrate, Intel CoFluent Studio,
  /// spends orders of magnitude more per event than this library). The
  /// method's speed-up converges to the event ratio as this grows — see
  /// bench_ablation.
  void set_synthetic_event_overhead(std::chrono::nanoseconds wall) {
    event_overhead_ = wall;
  }

  [[nodiscard]] const KernelStats& stats() const { return stats_; }

  /// Names of processes that are neither finished nor queued for resume —
  /// i.e. blocked on some synchronization. Used for stall diagnosis.
  [[nodiscard]] std::vector<std::string> blocked_process_names() const;

  /// Number of processes that have not run to completion.
  [[nodiscard]] std::size_t live_process_count() const;

 private:
  /// Lean, trivially copyable queue payload: callbacks live in a side table
  /// so queue moves never touch std::function objects.
  struct QueueItem {
    Process::Handle h{};        // empty => callback entry
    std::int32_t call_idx = -1; // index into pending_calls_
  };

  struct ProcInfo {
    std::string name;
    Process::Handle handle{};
    bool queued = false;  ///< scheduled for resume (not blocked)
  };

  void reap(std::uint32_t id);
  template <bool WithHook, bool WithGuards>
  StopReason run_loop(std::optional<TimePoint> until);

  LadderQueue<QueueItem> queue_;
  std::vector<ProcInfo> procs_;
  std::vector<std::unique_ptr<std::function<Process()>>> factories_;
  std::vector<std::function<void()>> pending_calls_;  // slab for callbacks
  std::vector<std::int32_t> free_call_slots_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t seq_ = 0;
  /// > 0 while a coroutine resume is on the stack; gates resume_now().
  std::uint32_t dispatch_depth_ = 0;
  std::chrono::nanoseconds event_overhead_{0};
  std::function<bool()> timestep_hook_;
  KernelStats stats_;
  RunGuards guards_;
  /// Absolute deadline, fixed when the first guarded run() begins (so a
  /// horizon-resumed run keeps the original budget of wall time).
  std::optional<std::chrono::steady_clock::time_point> deadline_at_;
  StopReason last_stop_ = StopReason::kIdle;
};

namespace detail {

struct DelayAwaiter {
  Kernel* kernel;
  TimePoint wake;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Process::promise_type> h) const {
    kernel->schedule_resume(Process::Handle::from_address(h.address()), wake);
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

inline auto Kernel::delay(Duration d) {
  return detail::DelayAwaiter{this, now_ + d};
}

inline auto Kernel::delay_until(TimePoint t) {
  return detail::DelayAwaiter{this, t < now_ ? now_ : t};
}

}  // namespace maxev::sim
