#include "sim/event.hpp"

namespace maxev::sim {

void Event::notify() {
  // Swap into a scratch buffer first: a resumed process may immediately
  // wait again, and that new wait belongs to the *next* notification.
  // Swapping buffers (instead of constructing a fresh vector) keeps the
  // hot notify path allocation-free.
  scratch_.swap(waiters_);
  for (auto h : scratch_) kernel_->schedule_resume(h, kernel_->now());
  scratch_.clear();
}

void Event::notify_at(TimePoint t) {
  kernel_->schedule_call(t, [this] { notify(); });
}

void Event::notify_in(Duration d) { notify_at(kernel_->now() + d); }

}  // namespace maxev::sim
