#include "sim/diagnostics.hpp"

namespace maxev::sim {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kIdle:
      return "idle";
    case StopReason::kTimeLimit:
      return "horizon";
    case StopReason::kBudget:
      return "event budget exhausted";
    case StopReason::kDeadline:
      return "wall-clock deadline passed";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string RunDiagnostics::summary() const {
  std::string s = "run stopped (";
  s += to_string(stop);
  s += ") after " + std::to_string(events_processed) + " events";
  if (!detail.empty()) s += "; " + detail;
  if (!parked_processes.empty()) {
    s += "; parked processes:";
    for (const std::string& p : parked_processes) s += " " + p;
  }
  if (!unresolved_gates.empty()) {
    s += "; unresolved gated rendezvous:";
    for (const std::string& g : unresolved_gates) s += " " + g;
  }
  for (const InstanceProgress& ip : instances) {
    if (ip.tokens_done >= ip.tokens_expected) continue;  // done: not news
    s += "; instance '" + ip.instance + "' " + std::to_string(ip.tokens_done) +
         "/" + std::to_string(ip.tokens_expected) + " tokens";
  }
  return s;
}

}  // namespace maxev::sim
