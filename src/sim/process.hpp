#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>

/// \file process.hpp
/// The coroutine process type of the simulation kernel.
///
/// A sim::Process plays the role of an SC_THREAD in SystemC: a cooperative
/// process that suspends on timed waits, event waits and channel
/// synchronizations. Every suspension/resumption goes through the kernel's
/// event queue, so the number of kernel events and context switches — the
/// quantity the reproduced paper's method reduces — is precisely countable.

namespace maxev::sim {

class Kernel;

/// Coroutine handle wrapper returned by process bodies. Fire-and-forget:
/// the Kernel takes ownership of the frame at spawn time.
class Process {
 public:
  struct promise_type {
    Kernel* kernel = nullptr;  ///< set by Kernel::spawn after creation
    std::uint32_t id = 0;      ///< kernel-side process index
    bool done = false;
    std::exception_ptr error;

    Process get_return_object() noexcept {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    /// Suspend at creation; the kernel schedules the first resume itself.
    std::suspend_always initial_suspend() noexcept { return {}; }

    /// Suspend at the end so the kernel can observe completion and reclaim
    /// the frame at a safe point (destroying the frame from inside its own
    /// final awaiter would be use-after-free of the awaiter object).
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        h.promise().done = true;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Process() = default;
  explicit Process(Handle h) noexcept : h_(h) {}

  [[nodiscard]] Handle handle() const noexcept { return h_; }

 private:
  Handle h_;
};

}  // namespace maxev::sim
