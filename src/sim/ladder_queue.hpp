#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

/// \file ladder_queue.hpp
/// A two-level ladder (calendar-style) event queue keyed by
/// (timestamp, insertion sequence).
///
/// Discrete-event kernels insert mostly near-future events and pop them in
/// non-decreasing time order. A binary heap pays O(log n) comparisons and
/// swaps on both ends; the ladder exploits the access pattern instead:
///
///  * `future_` — an unsorted append-only rung holding every event at or
///    beyond the current window bound. Insertion is push_back, O(1).
///  * `current_` — the active window [.., window_hi_), kept sorted in
///    *descending* (t, seq) order so the next event pops from the back,
///    O(1). Only events that land inside the already-open window pay a
///    positioned insert, and the window is kept small by construction.
///
/// When `current_` drains, a refill moves the next batch of earliest events
/// out of `future_` (selection by nth_element, then one partition + one
/// small sort). Each refill touches future_ once and transfers a bounded
/// batch, so the amortized per-event cost is a scan fraction plus a
/// small-array sort — in practice well below heap sift cost for kernel-size
/// queues.
///
/// Determinism: pop order is strictly ascending (t, seq). seq values are
/// expected to be unique and to increase over the queue's lifetime (the
/// kernel's insertion counter), which also makes equal-time ordering across
/// the two rungs automatic: a later insert can only carry a larger seq, so
/// popping the whole current window before refilling preserves FIFO ties.

namespace maxev::sim {

template <typename Payload>
class LadderQueue {
 public:
  struct Entry {
    std::int64_t t = 0;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  [[nodiscard]] bool empty() const {
    return current_.empty() && future_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return current_.size() + future_.size();
  }

  void push(std::int64_t t, std::uint64_t seq, Payload payload) {
    Entry e{t, seq, payload};
    if (!current_.empty() && t < window_hi_) {
      // Lands inside the open window: place it by (t, seq), descending.
      auto it = std::upper_bound(current_.begin(), current_.end(), e,
                                 [](const Entry& a, const Entry& b) {
                                   return after(a, b);
                                 });
      current_.insert(it, e);
      // A wholesale refill can open a window spanning the whole queue (one
      // far-future straggler among few events); cap the positioned-insert
      // cost by shedding the window's later half back to the future rung.
      if (current_.size() > 2 * kBatch) split();
    } else {
      future_.push_back(e);
    }
  }

  /// Earliest entry. \pre !empty()
  [[nodiscard]] const Entry& top() {
    if (current_.empty()) refill();
    return current_.back();
  }

  /// Remove and return the earliest entry. \pre !empty()
  Entry pop() {
    if (current_.empty()) refill();
    Entry e = current_.back();
    current_.pop_back();
    return e;
  }

 private:
  /// Batch size a refill aims to transfer; also the threshold below which
  /// the whole future rung is promoted wholesale.
  static constexpr std::size_t kBatch = 64;

  static bool before(const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
  static bool after(const Entry& a, const Entry& b) { return before(b, a); }

  void refill() {
    if (future_.size() <= kBatch) {
      current_.swap(future_);
    } else {
      // Select the kBatch earliest entries, then cut the window at the
      // (kBatch+1)-th timestamp so equal-time runs never straddle rungs.
      std::nth_element(future_.begin(),
                       future_.begin() + static_cast<std::ptrdiff_t>(kBatch),
                       future_.end(), before);
      std::int64_t cut = future_[kBatch].t;
      if (cut == future_.front().t) {
        // The window would be empty (a long equal-time run): take the whole
        // run instead. Saturating +1 keeps the bound exclusive.
        cut = cut == std::numeric_limits<std::int64_t>::max() ? cut : cut + 1;
      }
      const auto mid =
          std::partition(future_.begin(), future_.end(),
                         [cut](const Entry& e) { return e.t < cut; });
      current_.assign(future_.begin(), mid);
      future_.erase(future_.begin(), mid);
    }
    std::sort(current_.begin(), current_.end(), after);
    const std::int64_t hi = current_.front().t;  // max t in the window
    window_hi_ = hi == std::numeric_limits<std::int64_t>::max() ? hi : hi + 1;
  }

  /// Move the open window's later (larger-t) half back to the future rung
  /// and close the window just below it. The moved entries are exactly the
  /// front of the descending array; FIFO ties stay correct because the new
  /// bound is *inclusive-exclusive at the boundary timestamp*: among equal
  /// boundary-time entries, the ones kept in current_ carry smaller seqs
  /// (they pop first), the moved ones and any future pushes at that
  /// timestamp carry larger seqs and return sorted through the next refill.
  void split() {
    const std::size_t shed = current_.size() / 2;
    future_.insert(future_.end(), current_.begin(),
                   current_.begin() + static_cast<std::ptrdiff_t>(shed));
    current_.erase(current_.begin(),
                   current_.begin() + static_cast<std::ptrdiff_t>(shed));
    window_hi_ = current_.front().t;  // pushes at this t now go to future_
  }

  std::vector<Entry> current_;  ///< active window, descending (t, seq)
  std::vector<Entry> future_;   ///< unsorted, every (t, seq) >= the window's
  std::int64_t window_hi_ = std::numeric_limits<std::int64_t>::min();
};

}  // namespace maxev::sim
