#pragma once

#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/process.hpp"

/// \file event.hpp
/// SystemC-style notification event: processes co_await an Event, and a
/// notify wakes every process waiting at the notification instant.

namespace maxev::sim {

class Event {
 public:
  explicit Event(Kernel& kernel, std::string name = {})
      : kernel_(&kernel), name_(std::move(name)) {}

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  /// Awaitable: suspend the calling process until the next notification.
  [[nodiscard]] auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<Process::promise_type> h) {
        ev->waiters_.push_back(Process::Handle::from_address(h.address()));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Wake all processes currently waiting; they resume at the present
  /// simulation time (through the queue, preserving deterministic order).
  void notify();

  /// Wake, at absolute time \p t, whoever is waiting at that instant
  /// (including processes that start waiting between now and t).
  void notify_at(TimePoint t);

  /// notify_at(now + d).
  void notify_in(Duration d);

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  Kernel* kernel_;
  std::string name_;
  std::vector<Process::Handle> waiters_;
  std::vector<Process::Handle> scratch_;  // notify() reuse, no allocation
};

}  // namespace maxev::sim
