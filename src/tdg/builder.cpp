#include "tdg/builder.hpp"

#include "util/error.hpp"

namespace maxev::tdg {

GraphBuilder& GraphBuilder::input(const std::string& name) {
  g_.add_node({name, NodeKind::kInput, model::kInvalidId, false, {}});
  return *this;
}

GraphBuilder& GraphBuilder::instant(const std::string& name,
                                    const std::string& record) {
  g_.add_node({name, NodeKind::kInstant, model::kInvalidId, false, record});
  return *this;
}

GraphBuilder& GraphBuilder::output(const std::string& name) {
  g_.add_node({name, NodeKind::kOutput, model::kInvalidId, false, {}});
  return *this;
}

GraphBuilder& GraphBuilder::external(const std::string& name) {
  g_.add_node({name, NodeKind::kExternal, model::kInvalidId, false, {}});
  return *this;
}

GraphBuilder::ArcRef GraphBuilder::arc(const std::string& src,
                                       const std::string& dst) {
  return ArcRef{*this, id(src), id(dst)};
}

NodeId GraphBuilder::id(const std::string& name) const {
  const NodeId n = g_.find(name);
  if (n == kNoNode)
    throw DescriptionError("GraphBuilder: unknown node '" + name + "'");
  return n;
}

}  // namespace maxev::tdg
