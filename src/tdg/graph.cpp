#include "tdg/graph.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace maxev::tdg {

NodeId Graph::add_node(Node n) {
  if (frozen_) throw DescriptionError("tdg::Graph: add_node after freeze");
  if (n.name.empty()) throw DescriptionError("tdg::Graph: node needs a name");
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size()) - 1;
}

void Graph::add_arc(Arc a) {
  if (frozen_) throw DescriptionError("tdg::Graph: add_arc after freeze");
  const auto n = static_cast<NodeId>(nodes_.size());
  if (a.src < 0 || a.src >= n || a.dst < 0 || a.dst >= n)
    throw DescriptionError("tdg::Graph: arc endpoint out of range");
  for (const auto& seg : a.segments) {
    if (seg.is_exec()) {
      if (desc_ == nullptr)
        throw DescriptionError(
            "tdg::Graph: execute segment requires an architecture "
            "description (resource rates)");
      if (seg.resource < 0 ||
          seg.resource >= static_cast<model::ResourceId>(desc_->resources().size()))
        throw DescriptionError("tdg::Graph: execute segment has bad resource");
    } else if (seg.fixed.is_negative()) {
      throw DescriptionError("tdg::Graph: negative fixed segment");
    }
  }
  arcs_.push_back(std::move(a));
}

void Graph::freeze() {
  if (frozen_) return;

  // CSR adjacency: counting pass, prefix sums, then a fill pass in arc
  // order so each node's list stays in arc-insertion order (the order the
  // old vector-of-vectors produced).
  const std::size_t n_nodes = nodes_.size();
  in_arc_offsets_.assign(n_nodes + 1, 0);
  out_arc_offsets_.assign(n_nodes + 1, 0);
  max_lag_ = 0;
  for (const Arc& a : arcs_) {
    ++in_arc_offsets_[static_cast<std::size_t>(a.dst) + 1];
    ++out_arc_offsets_[static_cast<std::size_t>(a.src) + 1];
    max_lag_ = std::max(max_lag_, a.lag);
  }
  for (std::size_t n = 0; n < n_nodes; ++n) {
    in_arc_offsets_[n + 1] += in_arc_offsets_[n];
    out_arc_offsets_[n + 1] += out_arc_offsets_[n];
  }
  in_arc_ids_.resize(arcs_.size());
  out_arc_ids_.resize(arcs_.size());
  std::vector<std::int32_t> in_fill(in_arc_offsets_.begin(),
                                    in_arc_offsets_.end() - 1);
  std::vector<std::int32_t> out_fill(out_arc_offsets_.begin(),
                                     out_arc_offsets_.end() - 1);
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(arcs_.size()); ++i) {
    const Arc& a = arcs_[static_cast<std::size_t>(i)];
    in_arc_ids_[static_cast<std::size_t>(in_fill[a.dst]++)] = i;
    out_arc_ids_[static_cast<std::size_t>(out_fill[a.src]++)] = i;
  }

  // Kahn's algorithm on the zero-lag subgraph.
  std::vector<std::size_t> zero_in(nodes_.size(), 0);
  for (const Arc& a : arcs_)
    if (a.lag == 0) ++zero_in[a.dst];
  std::vector<NodeId> ready;
  for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n)
    if (zero_in[n] == 0) ready.push_back(n);
  topo_.clear();
  topo_.reserve(nodes_.size());
  // Process in node-id order for deterministic topological numbering.
  std::size_t head = 0;
  while (head < ready.size()) {
    const NodeId n = ready[head++];
    topo_.push_back(n);
    for (std::int32_t i = out_arc_offsets_[static_cast<std::size_t>(n)];
         i < out_arc_offsets_[static_cast<std::size_t>(n) + 1]; ++i) {
      const Arc& a = arcs_[static_cast<std::size_t>(out_arc_ids_[static_cast<std::size_t>(i)])];
      if (a.lag != 0) continue;
      if (--zero_in[a.dst] == 0) ready.push_back(a.dst);
    }
  }
  if (topo_.size() != nodes_.size()) {
    std::string cyclic;
    std::set<NodeId> placed(topo_.begin(), topo_.end());
    for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n)
      if (placed.count(n) == 0) cyclic += " " + nodes_[n].name;
    throw DescriptionError(
        "tdg::Graph: zero-lag dependency cycle among instants:" + cyclic);
  }

  frozen_ = true;
}

const Node& Graph::node(NodeId n) const {
  if (n < 0 || n >= static_cast<NodeId>(nodes_.size()))
    throw DescriptionError("tdg::Graph: bad node id");
  return nodes_[n];
}

NodeId Graph::find(const std::string& name) const {
  for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n)
    if (nodes_[n].name == name) return n;
  return kNoNode;
}

ArcIndexSpan Graph::in_arcs(NodeId n) const {
  if (!frozen_) throw DescriptionError("tdg::Graph: freeze() before in_arcs");
  if (n < 0 || static_cast<std::size_t>(n) >= nodes_.size())
    throw DescriptionError("tdg::Graph: bad node id");
  const std::int32_t* base = in_arc_ids_.data();
  return ArcIndexSpan{base + in_arc_offsets_[static_cast<std::size_t>(n)],
                      base + in_arc_offsets_[static_cast<std::size_t>(n) + 1]};
}

ArcIndexSpan Graph::out_arcs(NodeId n) const {
  if (!frozen_) throw DescriptionError("tdg::Graph: freeze() before out_arcs");
  if (n < 0 || static_cast<std::size_t>(n) >= nodes_.size())
    throw DescriptionError("tdg::Graph: bad node id");
  const std::int32_t* base = out_arc_ids_.data();
  return ArcIndexSpan{base + out_arc_offsets_[static_cast<std::size_t>(n)],
                      base + out_arc_offsets_[static_cast<std::size_t>(n) + 1]};
}

const std::vector<NodeId>& Graph::topo_order() const {
  if (!frozen_) throw DescriptionError("tdg::Graph: freeze() before topo_order");
  return topo_;
}

std::size_t Graph::paper_node_count() const {
  std::set<std::pair<NodeId, unsigned>> history;
  for (const Arc& a : arcs_)
    if (a.lag >= 1) history.insert({a.src, a.lag});
  return nodes_.size() + history.size();
}

Duration Graph::arc_weight(const Arc& a, const model::TokenAttrs& attrs,
                           std::uint64_t k) const {
  Duration total{};
  for (const Segment& seg : a.segments) {
    if (seg.is_exec()) {
      const std::int64_t ops = seg.load(attrs, k);
      total += desc_->resources()[seg.resource].duration_for(ops);
    } else {
      total += seg.fixed;
    }
  }
  return total;
}

}  // namespace maxev::tdg
