#include "tdg/program.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace maxev::tdg {

Program Program::compile(const Graph& g) {
  if (!g.frozen())
    throw DescriptionError("tdg::Program: graph must be frozen");

  Program p;
  p.n_nodes = g.node_count();
  p.n_sources = 1;
  if (g.desc() != nullptr)
    p.n_sources = std::max<std::size_t>(1, g.desc()->sources().size());
  for (const Arc& a : g.arcs())
    p.n_sources =
        std::max(p.n_sources, static_cast<std::size_t>(a.attr_source) + 1);

  const std::size_t n_arcs = g.arc_count();

  p.in_arc_offsets.assign(p.n_nodes + 1, 0);
  p.in_src.reserve(n_arcs);
  p.in_lag.reserve(n_arcs);
  p.in_attr_source.reserve(n_arcs);
  p.in_guard.reserve(n_arcs);
  p.in_prog_off.reserve(n_arcs);
  p.in_prog_len.reserve(n_arcs);
  p.in_fixed.reserve(n_arcs);
  p.attr_dsts_by_source.assign(p.n_sources, {});
  p.lagged_offsets.assign(p.n_nodes + 1, 0);
  p.static_pending.assign(p.n_nodes, 0);

  for (NodeId n = 0; n < static_cast<NodeId>(p.n_nodes); ++n) {
    const NodeKind kind = g.node(n).kind;
    const bool external_fed =
        kind == NodeKind::kInput || kind == NodeKind::kExternal;
    std::int32_t stat = 0;
    for (const std::int32_t ai : g.in_arcs(n)) {
      const Arc& a = g.arcs()[static_cast<std::size_t>(ai)];
      p.in_src.push_back(a.src);
      p.in_lag.push_back(a.lag);
      p.in_attr_source.push_back(a.attr_source);
      if (a.guard) {
        p.in_guard.push_back(static_cast<std::int32_t>(p.guards.size()));
        p.guards.push_back(a.guard);
      } else {
        p.in_guard.push_back(-1);
      }

      bool has_exec = false;
      for (const Segment& s : a.segments) has_exec = has_exec || s.is_exec();
      const bool needs_attrs = a.guard || has_exec;
      if (needs_attrs) {
        p.attr_dsts_by_source[static_cast<std::size_t>(a.attr_source)]
            .push_back(a.dst);
      }

      // Frame-init bookkeeping: attr prerequisites and same-frame arcs are
      // static; only lagged arcs need a per-frame look at older frames.
      if (needs_attrs) ++stat;
      if (a.lag == 0) {
        ++stat;
      } else if (!external_fed) {
        p.lagged_src.push_back(a.src);
        p.lagged_lag.push_back(a.lag);
      }

      if (!has_exec) {
        // Pure delay: pre-fold every fixed segment into one weight (⊗ keeps
        // the overflow check of the per-segment composition).
        mp::Scalar w = mp::Scalar::e();
        for (const Segment& s : a.segments)
          if (!s.fixed.is_zero()) w = w * mp::Scalar::from_duration(s.fixed);
        p.in_fixed.push_back(w);
        p.in_prog_off.push_back(-1);
        p.in_prog_len.push_back(0);
        continue;
      }
      p.in_fixed.push_back(mp::Scalar::e());

      // Segment program: runs of fixed segments fold into single entries;
      // execute segments carry a hoisted load, the resource's rate constant
      // and the observation metadata (resource id + busy label) that the
      // engines later bind to concrete columnar sinks.
      const auto prog_off = static_cast<std::int32_t>(p.op_exec.size());
      p.in_prog_off.push_back(prog_off);
      mp::Scalar pending_fixed = mp::Scalar::e();
      const auto flush_fixed = [&] {
        if (pending_fixed == mp::Scalar::e()) return;
        p.op_exec.push_back(0);
        p.op_fixed.push_back(pending_fixed);
        p.op_load.push_back(-1);
        p.op_rate.push_back(0.0);
        p.op_resource.push_back(model::kInvalidId);
        p.op_label.emplace_back();
        pending_fixed = mp::Scalar::e();
      };
      for (const Segment& s : a.segments) {
        if (!s.is_exec()) {
          if (!s.fixed.is_zero())
            pending_fixed = pending_fixed * mp::Scalar::from_duration(s.fixed);
          continue;
        }
        flush_fixed();
        p.op_exec.push_back(1);
        p.op_fixed.push_back(mp::Scalar::e());
        p.op_load.push_back(static_cast<std::int32_t>(p.loads.size()));
        p.loads.push_back(s.load);
        p.op_rate.push_back(g.desc()
                                ->resources()[static_cast<std::size_t>(s.resource)]
                                .ops_per_second);
        p.op_resource.push_back(s.resource);
        p.op_label.push_back(s.label);
      }
      flush_fixed();
      p.in_prog_len.push_back(static_cast<std::int32_t>(p.op_exec.size()) -
                              prog_off);
    }
    p.in_arc_offsets[static_cast<std::size_t>(n) + 1] =
        static_cast<std::int32_t>(p.in_src.size());

    if (external_fed) {
      p.static_pending[static_cast<std::size_t>(n)] = -1;  // externally fed
      p.lagged_offsets[static_cast<std::size_t>(n) + 1] =
          p.lagged_offsets[static_cast<std::size_t>(n)];
      continue;
    }
    p.static_pending[static_cast<std::size_t>(n)] = stat;
    const bool has_lagged =
        static_cast<std::int32_t>(p.lagged_src.size()) !=
        p.lagged_offsets[static_cast<std::size_t>(n)];
    p.lagged_offsets[static_cast<std::size_t>(n) + 1] =
        static_cast<std::int32_t>(p.lagged_src.size());
    if (has_lagged) {
      p.lagged_nodes.push_back(n);
    } else if (stat == 0) {
      p.always_ready.push_back(n);  // computable the moment the frame exists
    }
  }

  p.out_arc_offsets.assign(p.n_nodes + 1, 0);
  p.out_dst.reserve(n_arcs);
  p.out_lag.reserve(n_arcs);
  for (NodeId n = 0; n < static_cast<NodeId>(p.n_nodes); ++n) {
    for (const std::int32_t ai : g.out_arcs(n)) {
      const Arc& a = g.arcs()[static_cast<std::size_t>(ai)];
      p.out_dst.push_back(a.dst);
      p.out_lag.push_back(a.lag);
    }
    p.out_arc_offsets[static_cast<std::size_t>(n) + 1] =
        static_cast<std::int32_t>(p.out_dst.size());
  }

  p.compile_ops();
  return p;
}

void Program::compile_ops() {
  load_ops = ops::compile_loads(loads);
  const std::size_t n_ops = op_exec.size();
  op_kind.assign(n_ops, static_cast<std::uint8_t>(ops::Kind::kFixedWeight));
  op_const_dps.assign(n_ops, -1);
  for (std::size_t j = 0; j < n_ops; ++j) {
    if (!op_exec[j]) continue;  // fixed entry, kFixedWeight
    const auto li = static_cast<std::size_t>(op_load[j]);
    op_kind[j] = load_ops.kind[li];
    if (static_cast<ops::Kind>(load_ops.kind[li]) != ops::Kind::kRateConstant)
      continue;
    // ResourceDesc::duration_for(ops) with a constant ops count: fold the
    // whole duration at compile time (same expression as the engines' hot
    // loops — identical instants by construction).
    const std::int64_t ops_n = load_ops.a[li];
    op_const_dps[j] =
        ops_n <= 0 ? 0
                   : static_cast<std::int64_t>(std::llround(
                         static_cast<double>(ops_n) / op_rate[j] * 1e12));
  }
}

}  // namespace maxev::tdg
