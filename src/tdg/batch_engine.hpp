#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "maxplus/scalar.hpp"
#include "model/token.hpp"
#include "tdg/graph.hpp"
#include "tdg/program.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"

/// \file batch_engine.hpp
/// Batched multi-instance execution of one temporal dependency graph
/// (docs/DESIGN.md §9).
///
/// A composed study (study::compose) runs N scenario instances in one
/// simulation kernel. When every instance shares the same architecture
/// description, their temporal dependency graphs are identical — only the
/// external feeds (offers, actual completions, token attributes) differ.
/// BatchEngine exploits that: it compiles the *base* graph once into a
/// tdg::Program and evaluates all N instances against that single program,
/// instead of walking an N-times-larger merged program instance by
/// instance.
///
/// Memory layout — one shared frame arena. Every per-iteration column
/// (value, known, pending) holds `node_count * N` entries; node slot n of
/// instance i lives at index `n * N + i`, so the N per-instance values of
/// one node form one contiguous *lane*. An instance's base offset within
/// every slot is its batch index. Fixed-weight propagation over a full
/// lane is a tight loop over contiguous memory (the vectorizable case);
/// guard/execute arcs fall back to per-instance evaluation against the
/// instance's own token attributes.
///
/// Iteration fronts — deferred drains. Unlike tdg::Engine, the set_*
/// feeds never propagate immediately: they enqueue work, and flush()
/// drains it. The intended driver (core::BatchEquivalentModel) calls
/// flush() from the kernel's timestep hook, i.e. once per simulated
/// instant, after *every* instance's feeds for that instant have arrived.
/// Ready instances of the same (node, k) then collect into one front that
/// is computed in a single pass over the shared arc tables — with N
/// identically-configured instances the hot loop runs N-wide instead of
/// being re-entered N times. Per-instance results are bit-identical to N
/// solo tdg::Engine runs: values do not depend on drain order, instant
/// series are flushed in iteration order, and per-instance usage traces
/// are disjoint sinks.

namespace maxev::tdg {

class BatchEngine {
 public:
  /// Per-instance observation routing: where instance i's computed
  /// instants and busy intervals go, and under which namespace.
  struct InstanceSinks {
    /// Prefix for every series/resource/label name of this instance,
    /// e.g. "rx0/" — matching the namespacing study::compose() applies to
    /// the merged description, so composed trace sets look identical
    /// whether produced by the merged engine or the batch engine.
    std::string scope;
    /// Destination for computed channel instants; null = not recorded.
    trace::InstantTraceSet* instant_sink = nullptr;
    /// Destination for execute-segment busy intervals; null = not recorded.
    trace::UsageTraceSet* usage_sink = nullptr;
  };

  struct Options {
    /// One entry per instance; the batch width is instances.size() (>= 1).
    std::vector<InstanceSinks> instances;
    /// Expected iteration count (tokens) per instance. When non-zero,
    /// every instance's instant series and usage traces are pre-sized at
    /// construction, exactly as tdg::Engine::Options::expected_iterations
    /// does for a solo run.
    std::size_t expected_iterations = 0;
    /// Evaluate loads through the program's opcode tables (tdg::ops,
    /// docs/DESIGN.md §14) instead of calling the hoisted std::function
    /// per arc term. Identical arithmetic by construction — the toggle
    /// exists for the differential equivalence sweep and the ablation
    /// baseline, mirroring tdg::Engine::Options::opcode_dispatch.
    bool opcode_dispatch = true;
    /// Drain full uniform fronts with the branch-free SoA lane kernels
    /// (tdg/lanes.hpp) instead of the per-element mp::Scalar reference
    /// loop. Identical values lane for lane; false selects the reference
    /// loop, the baseline Ablation 9 measures the vector drain against.
    bool vector_drain = true;
  };

  /// Compile \p g once and prepare the shared arena for the batch — the
  /// resulting program is the one copy every instance lane evaluates.
  /// \pre g.frozen(); opts.instances is non-empty
  BatchEngine(const Graph& g, Options opts);
  /// Reuse an already-compiled program for \p g (a cached
  /// core::CompiledAbstraction): skips Program::compile(). \p precompiled
  /// must have been compiled from exactly \p g; copied by value.
  BatchEngine(const Graph& g, const Program& precompiled, Options opts);

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// Batch width N.
  [[nodiscard]] std::size_t width() const { return width_; }

  /// Feed an externally determined instant of instance \p inst (an input
  /// offer for kInput nodes, an actual boundary completion for kExternal
  /// nodes). The value is recorded and dependents are unlocked
  /// immediately, but nothing is *computed* until flush() — feeds of the
  /// same simulated instant accumulate into one front.
  void set_external(std::size_t inst, NodeId n, std::uint64_t k,
                    TimePoint value);

  /// Provide the token attributes of source \p s for iteration \p k of
  /// instance \p inst. Deferred like set_external. Idempotent per
  /// (inst, s, k).
  void set_attrs(std::size_t inst, model::SourceId s, std::uint64_t k,
                 const model::TokenAttrs& attrs);

  /// Drain every pending iteration front (compute all instances that
  /// became ready, cascading until quiescence), then reclaim dead frames.
  /// Returns true when at least one instance was computed — the kernel's
  /// timestep hook uses this to know whether new events may have been
  /// scheduled.
  bool flush();

  /// flush() with on_known callbacks *captured* instead of fired: computed
  /// values, instant series and usage traces are written as usual (all of
  /// them private to this engine's instances), but the callbacks — which
  /// reach into the simulation kernel (event notifies, gated-rendezvous
  /// resolution) — are recorded in drain order for a later fire_deferred().
  /// This is the compute phase of the parallel per-group drain
  /// (docs/DESIGN.md §11): several engines may flush_deferred()
  /// concurrently because nothing they touch is shared; the kernel-facing
  /// side effects are then replayed serially. Values are identical to
  /// flush() — fronts are drain-order independent — and per-engine
  /// callback order is identical too, since the single-threaded drain
  /// inside the engine is unchanged.
  bool flush_deferred();

  /// Fire the callbacks captured by flush_deferred(), in capture (drain)
  /// order, on the calling thread. Callbacks may feed this or any other
  /// engine (set_external via channel hooks) and resume simulation
  /// processes inline; such feeds enqueue new fronts for the next flush,
  /// exactly as they would mid-drain on the serial path. Returns true when
  /// at least one callback fired.
  bool fire_deferred();

  /// The inline-resume fast path (docs/DESIGN.md §10): if (inst, n, k) is
  /// not yet known but every prerequisite is (its pending count reached
  /// zero — the lane sits in a ready front awaiting the next flush()),
  /// compute it NOW, out of band, and return the finite value. Dependents
  /// are unlocked as usual (they join the deferred fronts); the computed
  /// value is identical to what the next flush() would have produced —
  /// front values are drain-order independent — so only the *latency* of
  /// the answer changes. Returns the value when (inst, n, k) is already
  /// known, std::nullopt when it is still blocked on an unknown input or
  /// the value is ε. Used by the gated-input reception path to answer a
  /// rendezvous offer synchronously instead of parking it until the
  /// timestep boundary.
  [[nodiscard]] std::optional<TimePoint> resolve_now(std::size_t inst,
                                                     NodeId n, std::uint64_t k);

  /// Value of (inst, n, k) if already computed/fed *and finite*. Instances
  /// suppressed by guards (ε) report std::nullopt as well. Feeds since the
  /// last flush() are visible for externally fed nodes only.
  [[nodiscard]] std::optional<TimePoint> value(std::size_t inst, NodeId n,
                                               std::uint64_t k) const;

  /// Token attributes of (inst, s, k), if set and retained.
  [[nodiscard]] std::optional<model::TokenAttrs> attrs_of(
      std::size_t inst, model::SourceId s, std::uint64_t k) const;

  /// Keep iterations >= \p k of instance \p inst alive. A shared frame is
  /// reclaimed only when *every* instance has moved past it (the arena's
  /// retain floor is the minimum over instances). Monotone per instance.
  void set_retain_floor(std::size_t inst, std::uint64_t k);

  /// Register a callback fired whenever (inst, n, k) becomes known with a
  /// finite value. One callback per (instance, node).
  void on_known(std::size_t inst, NodeId n,
                std::function<void(std::uint64_t, TimePoint)> cb);

  /// \name Cost counters (whole batch)
  /// @{
  /// Instances computed across all lanes — comparable to the merged
  /// engine's count for the same composed run.
  [[nodiscard]] std::uint64_t instances_computed() const { return computed_; }
  [[nodiscard]] std::uint64_t arc_terms_evaluated() const { return arc_terms_; }
  /// Fronts drained: worklist pops. computed / fronts is the average
  /// front width — N on fully lock-stepped batches, ~1 on divergent ones.
  [[nodiscard]] std::uint64_t fronts_drained() const { return fronts_; }
  /// @}

  [[nodiscard]] const Graph& graph() const { return *graph_; }

 private:
  /// One shared frame: every column interleaves the batch instance-minor
  /// (index = slot * width_ + instance).
  struct Frame {
    /// Computed instants in struct-of-arrays form (docs/DESIGN.md §14):
    /// finite picosecond payload and a one-byte ε flag per lane element,
    /// so the vector drain streams plain integer rows. A (payload, flag)
    /// pair is only ever read behind a known[] check, exactly as the old
    /// mp::Scalar column was.
    std::vector<std::int64_t> value_ps;   // n_nodes * width
    std::vector<std::uint8_t> value_eps;  // n_nodes * width
    std::vector<std::uint8_t> known;      // n_nodes * width
    std::vector<std::int32_t> pending;    // n_nodes * width
    /// Ready-front bitmask per node: bit i of word block n*words_ set =
    /// instance i of node n is ready but not yet computed. A node is on
    /// the worklist iff its block is non-zero.
    std::vector<std::uint64_t> ready;     // n_nodes * words
    std::vector<std::uint8_t> attr_known; // n_sources * width
    std::vector<model::TokenAttrs> attrs; // n_sources * width
    std::size_t known_count = 0;          // across all lanes
  };

  [[nodiscard]] std::size_t lane(std::size_t slot, std::size_t inst) const {
    return slot * width_ + inst;
  }

  /// SoA value column accessors (lane index l = slot * width_ + inst).
  [[nodiscard]] static mp::Scalar frame_value(const Frame& f, std::size_t l) {
    return f.value_eps[l] != 0 ? mp::Scalar::eps()
                               : mp::Scalar::of(f.value_ps[l]);
  }
  static void set_frame_value(Frame& f, std::size_t l, mp::Scalar v) {
    const bool e = v.is_eps();
    f.value_eps[l] = e ? 1 : 0;
    f.value_ps[l] = e ? 0 : v.value();
  }

  void init_from_program();
  void bind_sinks();
  Frame& ensure_frame(std::uint64_t k);
  void init_frame(Frame& f, std::uint64_t k);
  [[nodiscard]] Frame* frame_at(std::uint64_t k);
  [[nodiscard]] const Frame* frame_at(std::uint64_t k) const;

  /// Mark (inst, n, k) ready (pending hit zero): set its front bit and
  /// enqueue the node when its front was empty.
  void mark_ready(Frame& f, NodeId n, std::uint64_t k, std::size_t inst);
  void decrement(Frame& f, NodeId n, std::uint64_t k, std::size_t inst);
  /// Compute every ready instance of (n, k) in one pass (the front).
  void compute_front(NodeId n, std::uint64_t k);
  /// Publish a completed full uniform front: bulk known-marking, per-lane
  /// observers, batched dependent resolution (shared by the vector and
  /// reference drains — values must already sit in the node's row).
  void finish_uniform_front(Frame& f, NodeId n, std::uint64_t k);
  /// Compute one instance the scalar way (guards/execute segments, or a
  /// partial front).
  [[nodiscard]] mp::Scalar compute_one(Frame& f, NodeId n, std::uint64_t k,
                                       std::size_t inst);
  void mark_known(Frame& f, NodeId n, std::uint64_t k, std::size_t inst,
                  mp::Scalar v);
  /// Fire or (in deferred mode) capture the lane's on_known callback.
  void emit_callback(std::size_t l, std::uint64_t k, mp::Scalar v);
  void resolve_dependents(Frame& f, NodeId n, std::uint64_t k,
                          std::size_t inst);
  void flush_instants(NodeId n, std::size_t inst);
  void drain();
  void prune();

  const Graph* graph_;
  Options opts_;
  std::size_t width_ = 1;      ///< batch width N
  std::size_t words_ = 1;      ///< ceil(width / 64) front-mask words per node
  std::size_t n_nodes_ = 0;
  std::size_t n_sources_ = 1;

  Program prog_;
  /// static_pending tiled across the batch: frame init is one memcpy.
  std::vector<std::int32_t> pending_template_;
  /// Nodes whose every in-arc is guard-free pure delay: a full front
  /// computes as a tight lane loop over the shared arc slots.
  std::vector<std::uint8_t> uniform_;

  std::deque<Frame> frames_;
  std::vector<Frame*> frame_ptrs_;  // deque elements are address-stable
  std::vector<Frame> frame_pool_;   // recycled frames (hot path: no allocs)
  std::uint64_t base_k_ = 0;

  std::vector<std::pair<NodeId, std::uint64_t>> worklist_;
  bool draining_ = false;

  /// Deferred-callback state (flush_deferred / fire_deferred).
  struct PendingCallback {
    std::size_t lane = 0;
    std::uint64_t k = 0;
    TimePoint t;
  };
  bool defer_callbacks_ = false;
  std::vector<PendingCallback> deferred_;

  // Per-(node, instance) observation/callback state, lane-indexed like the
  // frame columns.
  std::vector<std::uint8_t> node_flags_;  // kRecords | kHasCallback
  /// Per node: any lane has flags (lets full fronts skip per-lane checks).
  std::vector<std::uint8_t> node_observed_;
  std::vector<std::function<void(std::uint64_t, TimePoint)>> callbacks_;
  std::vector<std::uint64_t> next_flush_;
  std::vector<trace::InstantSeries*> record_series_;
  // Per-(op, instance) usage sinks, lane-indexed (op * width + instance).
  std::vector<trace::UsageTrace*> op_trace_;
  std::vector<std::int32_t> op_label_;

  std::vector<std::uint64_t> retain_floor_;  // per instance
  /// Vector-drain accumulator scratch (width_, SoA like the value rows).
  /// The kernels compute here, never into the frame: a detected overflow
  /// discards the scratch and re-runs the front through the scalar path,
  /// so the thrown OverflowError leaves nothing partially published.
  std::vector<std::int64_t> acc_ps_;
  std::vector<std::uint8_t> acc_eps_;
  std::vector<std::uint64_t> mask_scratch_;  // front mask snapshot (words_)

  std::uint64_t computed_ = 0;
  std::uint64_t arc_terms_ = 0;
  std::uint64_t fronts_ = 0;
};

}  // namespace maxev::tdg
