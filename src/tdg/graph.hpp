#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "model/desc.hpp"
#include "model/load.hpp"
#include "model/token.hpp"
#include "util/time.hpp"

/// \file graph.hpp
/// The temporal dependency graph (TDG), Section III-C of the paper.
///
/// Nodes are evolution instants: instants at which data crosses a relation
/// or a function iteration completes. Arcs express the (max,+) recurrence:
///
///     value(dst, k) = ⊕ over in-arcs a of  value(a.src, k - a.lag) ⊗ w_a(k)
///
/// where w_a(k) is the composed weight of the arc (a sequence of fixed
/// durations and data-dependent execute segments, folded as in the paper's
/// Fig. 3 where Ti1(k) labels the arc from xM1 to xM2).
///
/// Pre-history convention: value(n, k) for k < 0 is the simulation origin
/// (time 0, the ⊗-identity e), matching the operational fact that every
/// process is "ready" at simulation start. With non-negative weights and
/// offer instants this coincides with the paper's convention of dropping
/// ε-valued history terms.

namespace maxev::tdg {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

enum class NodeKind : std::uint8_t {
  kInput,       ///< u(k): offer instant of a boundary input (set externally)
  kInstant,     ///< x(k): channel transfer / completion instant (computed)
  kExternal,    ///< actual instant fed back from the live simulation
  kOutput,      ///< y(k): computed output offer instant
  kCompletion,  ///< explicit function-completion node (only when needed)
  kPad,         ///< pass-through padding node (Fig. 5 complexity sweeps)
};

/// One multiplicative segment of an arc weight.
struct Segment {
  /// Fixed part (used when load is null).
  Duration fixed{};
  /// Data-dependent part: ops = load(attrs, k) executed on resource.
  model::LoadFn load;
  model::ResourceId resource = model::kInvalidId;
  /// Busy-interval label for observation (e.g. "F1.e0"); empty = no
  /// observation (pure delay).
  std::string label;

  [[nodiscard]] bool is_exec() const { return static_cast<bool>(load); }
};

/// Guard predicate for conditional evolution (paper Section III-B: systems
/// with conditioning need control statements in the computation).
using GuardFn = std::function<bool(const model::TokenAttrs&, std::uint64_t)>;

struct Arc {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  unsigned lag = 0;  ///< dst(k) reads src(k - lag)
  std::vector<Segment> segments;
  /// Source whose token attributes parametrize loads/guards on this arc.
  model::SourceId attr_source = 0;
  /// Optional guard: when false for iteration k the arc contributes ε and
  /// emits no observation.
  GuardFn guard;
};

struct Node {
  std::string name;
  NodeKind kind = NodeKind::kInstant;
  /// For channel-related nodes: the channel and (for FIFOs) which side.
  model::ChannelId channel = model::kInvalidId;
  bool fifo_read_side = false;
  /// Record computed values into the instant trace under this series name
  /// (internal channels only; boundary instants are recorded by the live
  /// channels themselves).
  std::string record_series;
};

/// Non-owning view over a node's arc-index list (a slice of the graph's
/// flat CSR arrays). Valid while the graph lives.
using ArcIndexSpan = std::span<const std::int32_t>;

/// The temporal dependency graph. Build directly (add_node/add_arc) or via
/// tdg::derive_tdg(); call freeze() before handing it to an Engine.
///
/// freeze() indexes adjacency in CSR form — flat offset/id arrays instead
/// of a vector-of-vectors — so the engine's propagation loops walk
/// contiguous memory (see docs/DESIGN.md §7).
class Graph {
 public:
  Graph() = default;
  /// \param desc architecture description providing resource rates for
  ///        execute segments; may be null for fixed-weight-only graphs.
  explicit Graph(const model::ArchitectureDesc* desc) : desc_(desc) {}

  NodeId add_node(Node n);
  void add_arc(Arc a);

  /// Validate and index the graph:
  ///  * zero-lag subgraph must be acyclic (otherwise instants are not
  ///    computable in any evaluation order) — throws DescriptionError;
  ///  * execute segments require a description with a valid resource;
  ///  * computes per-node in/out arc lists, topological order of the
  ///    zero-lag subgraph and the maximum lag.
  void freeze();
  [[nodiscard]] bool frozen() const { return frozen_; }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t arc_count() const { return arcs_.size(); }
  [[nodiscard]] const Node& node(NodeId n) const;
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Arc>& arcs() const { return arcs_; }
  [[nodiscard]] const model::ArchitectureDesc* desc() const { return desc_; }

  /// Find a node by name; kNoNode when absent.
  [[nodiscard]] NodeId find(const std::string& name) const;

  /// In-arc indices of a node (into arcs()), in arc-insertion order.
  [[nodiscard]] ArcIndexSpan in_arcs(NodeId n) const;
  /// Out-arc indices of a node, in arc-insertion order.
  [[nodiscard]] ArcIndexSpan out_arcs(NodeId n) const;
  /// Topological order of the zero-lag subgraph.
  [[nodiscard]] const std::vector<NodeId>& topo_order() const;
  /// Maximum lag over all arcs.
  [[nodiscard]] unsigned max_lag() const { return max_lag_; }

  /// Node count in the paper's Fig. 3 / Table I convention: live nodes plus
  /// one per distinct (node, lag >= 1) history reference — history instants
  /// are drawn as separate nodes (xM4(k-1), xM5(k-1), xM6(k-1)).
  [[nodiscard]] std::size_t paper_node_count() const;

  /// Total duration of an arc for iteration k (ε never; guards are handled
  /// by the engine). \pre frozen(); attrs are the attributes of the arc's
  /// provenance source at iteration k.
  [[nodiscard]] Duration arc_weight(const Arc& a, const model::TokenAttrs& attrs,
                                    std::uint64_t k) const;

 private:
  const model::ArchitectureDesc* desc_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<Arc> arcs_;
  // CSR adjacency (built by freeze): offsets have node_count()+1 entries.
  std::vector<std::int32_t> in_arc_offsets_;
  std::vector<std::int32_t> in_arc_ids_;
  std::vector<std::int32_t> out_arc_offsets_;
  std::vector<std::int32_t> out_arc_ids_;
  std::vector<NodeId> topo_;
  unsigned max_lag_ = 0;
  bool frozen_ = false;
};

}  // namespace maxev::tdg
