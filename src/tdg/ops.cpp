#include "tdg/ops.hpp"

namespace maxev::tdg::ops {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kOpaqueClosure: return "OpaqueClosure";
    case Kind::kFixedWeight: return "FixedWeight";
    case Kind::kRateConstant: return "RateConstant";
    case Kind::kLinearOps: return "LinearOps";
    case Kind::kParamOps: return "ParamOps";
    case Kind::kCyclicOps: return "CyclicOps";
    case Kind::kTableTime: return "TableTime";
    case Kind::kPeriodicTime: return "PeriodicTime";
  }
  return "?";
}

Kind classify_load(const model::LoadFn& f) {
  if (f.target<model::ConstantOpsFn>() != nullptr) return Kind::kRateConstant;
  if (f.target<model::LinearOpsFn>() != nullptr) return Kind::kLinearOps;
  if (f.target<model::ParamOpsFn>() != nullptr) return Kind::kParamOps;
  if (f.target<model::CyclicOpsFn>() != nullptr) return Kind::kCyclicOps;
  return Kind::kOpaqueClosure;
}

LoadTable compile_loads(const std::vector<model::LoadFn>& loads) {
  LoadTable t;
  const std::size_t n = loads.size();
  t.kind.assign(n, 0);
  t.a.assign(n, 0);
  t.b.assign(n, 0);
  t.scale.assign(n, 0.0);
  t.index.assign(n, 0);
  t.len.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Kind k = classify_load(loads[i]);
    t.kind[i] = static_cast<std::uint8_t>(k);
    switch (k) {
      case Kind::kRateConstant:
        t.a[i] = loads[i].target<model::ConstantOpsFn>()->ops;
        break;
      case Kind::kLinearOps: {
        const auto* fn = loads[i].target<model::LinearOpsFn>();
        t.a[i] = fn->base;
        t.b[i] = fn->per_unit;
        break;
      }
      case Kind::kParamOps: {
        const auto* fn = loads[i].target<model::ParamOpsFn>();
        t.a[i] = fn->base;
        t.scale[i] = fn->scale;
        t.index[i] = static_cast<std::int32_t>(fn->param_index);
        break;
      }
      case Kind::kCyclicOps: {
        const auto* fn = loads[i].target<model::CyclicOpsFn>();
        t.index[i] = static_cast<std::int32_t>(t.cyc.size());
        t.len[i] = static_cast<std::int32_t>(fn->table.size());
        t.cyc.insert(t.cyc.end(), fn->table.begin(), fn->table.end());
        break;
      }
      default:
        ++t.opaque;
        break;
    }
  }
  return t;
}

}  // namespace maxev::tdg::ops
