#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "model/load.hpp"
#include "model/token.hpp"

/// \file ops.hpp
/// The opcode layer (docs/DESIGN.md §14): the factory-built behavioural
/// closures a tdg::Program hoists — loads today, the serve wire format's
/// time/duration specs tomorrow — compiled into enum-dispatched table
/// entries, so the common cases never touch a std::function on the hot
/// path. The vocabulary is deliberately the same one serve/wire
/// round-trips: classification happens once (`classify_load`), and both
/// the engines' dispatch and the wire serializer consume the result.
///
/// Contract: `eval_load` duplicates the functor arithmetic of
/// model/load.cpp *exactly* — same clamps, same llround, same wraparound
/// behaviour — so opcode dispatch and closure dispatch produce
/// bit-identical operation counts (pinned by tests/test_ops.cpp's
/// differential sweep). Closures that are not factory-built named
/// functors classify as kOpaqueClosure and fall back to the hoisted
/// std::function, preserving behaviour for arbitrary lambdas.

namespace maxev::tdg::ops {

/// The introspectable opcode vocabulary. Load kinds are produced by
/// classify_load; the weight/time kinds name the remaining compiled-arc
/// and wire-spec cases so the whole system shares one enum (serve/wire
/// maps its time specs here, Program::compile_ops tags fixed segments).
enum class Kind : std::uint8_t {
  kOpaqueClosure = 0,  ///< hand-written lambda: std::function fallback
  kFixedWeight,        ///< pure pre-folded delay (no load at all)
  kRateConstant,       ///< ConstantOpsFn against a pre-resolved rate
  kLinearOps,          ///< LinearOpsFn: base + per_unit * attrs.size
  kParamOps,           ///< ParamOpsFn: base + llround(scale * params[i])
  kCyclicOps,          ///< CyclicOpsFn: table[k % size]
  kTableTime,          ///< serve::TableTimeFn (wire time spec)
  kPeriodicTime,       ///< serve::PeriodicTimeFn (wire time spec)
};

[[nodiscard]] const char* kind_name(Kind k);

/// Classify a hoisted load closure by its concrete functor type
/// (LoadFn::target<T>()). Factory-built loads (model/load.hpp) yield a
/// concrete kind; anything else is kOpaqueClosure.
[[nodiscard]] Kind classify_load(const model::LoadFn& f);

/// Struct-of-arrays opcode table over a program's hoisted loads: one row
/// per load, parameters unpacked into flat columns so eval_load is a
/// switch over plain integers. Built once by compile_loads; never
/// mutated afterwards.
struct LoadTable {
  std::vector<std::uint8_t> kind;   ///< ops::Kind per load
  std::vector<std::int64_t> a;      ///< constant: ops; linear/param: base
  std::vector<std::int64_t> b;      ///< linear: per_unit
  std::vector<double> scale;        ///< param: scale
  std::vector<std::int32_t> index;  ///< param: params index; cyclic: cyc offset
  std::vector<std::int32_t> len;    ///< cyclic: table length
  std::vector<std::int64_t> cyc;    ///< flattened cyclic tables
  std::size_t opaque = 0;           ///< count of kOpaqueClosure rows

  [[nodiscard]] std::size_t size() const { return kind.size(); }
  /// Every load compiled to a concrete opcode (no std::function left).
  [[nodiscard]] bool all_concrete() const { return opaque == 0; }
};

/// Compile a program's hoisted loads into the opcode table.
[[nodiscard]] LoadTable compile_loads(const std::vector<model::LoadFn>& loads);

/// Enum-dispatched load evaluation; \p closures is the hoisted
/// std::function side table, consulted only for kOpaqueClosure rows.
/// MIRRORS model/load.cpp — any arithmetic change there must land here.
[[nodiscard]] inline std::int64_t eval_load(
    const LoadTable& t, std::size_t i, const model::TokenAttrs& attrs,
    std::uint64_t k, const std::vector<model::LoadFn>& closures) {
  switch (static_cast<Kind>(t.kind[i])) {
    case Kind::kRateConstant:
      return t.a[i];
    case Kind::kLinearOps: {
      const std::int64_t ops = t.a[i] + t.b[i] * attrs.size;
      return ops < 0 ? std::int64_t{0} : ops;
    }
    case Kind::kParamOps: {
      const std::int64_t ops =
          t.a[i] +
          static_cast<std::int64_t>(std::llround(
              t.scale[i] * attrs.params[static_cast<std::size_t>(t.index[i])]));
      return ops < 0 ? std::int64_t{0} : ops;
    }
    case Kind::kCyclicOps:
      return t.cyc[static_cast<std::size_t>(t.index[i]) +
                   k % static_cast<std::uint64_t>(t.len[i])];
    default:
      return closures[i](attrs, k);
  }
}

}  // namespace maxev::tdg::ops
