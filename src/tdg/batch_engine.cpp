#include "tdg/batch_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tdg/lanes.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace maxev::tdg {

namespace {
constexpr std::uint8_t kRecords = 1;      // (node, inst) has an instant series
constexpr std::uint8_t kHasCallback = 2;  // (node, inst) has a callback
}  // namespace

BatchEngine::BatchEngine(const Graph& g, Options opts)
    : graph_(&g), opts_(std::move(opts)) {
  if (!g.frozen())
    throw DescriptionError("tdg::BatchEngine: graph must be frozen");
  if (opts_.instances.empty())
    throw DescriptionError("tdg::BatchEngine: empty batch");

  prog_ = Program::compile(g);
  init_from_program();
}

BatchEngine::BatchEngine(const Graph& g, const Program& precompiled,
                         Options opts)
    : graph_(&g), opts_(std::move(opts)) {
  if (!g.frozen())
    throw DescriptionError("tdg::BatchEngine: graph must be frozen");
  if (opts_.instances.empty())
    throw DescriptionError("tdg::BatchEngine: empty batch");
  if (precompiled.n_nodes != g.node_count())
    throw Error(
        "tdg::BatchEngine: precompiled program does not match the graph (" +
        std::to_string(precompiled.n_nodes) + " vs " +
        std::to_string(g.node_count()) + " nodes)");

  prog_ = precompiled;
  init_from_program();
}

void BatchEngine::init_from_program() {
  width_ = opts_.instances.size();
  words_ = (width_ + 63) / 64;
  n_nodes_ = prog_.n_nodes;
  n_sources_ = prog_.n_sources;

  // Tile the static pending column across the batch (every lane of a node
  // starts from the same pre-counted value), so frame init is one memcpy.
  pending_template_.resize(n_nodes_ * width_);
  for (std::size_t n = 0; n < n_nodes_; ++n)
    for (std::size_t i = 0; i < width_; ++i)
      pending_template_[n * width_ + i] = prog_.static_pending[n];

  // A node whose every in-arc is a guard-free pure delay computes the same
  // arithmetic for each instance — the lane-loop fast path.
  uniform_.assign(n_nodes_, 1);
  for (std::size_t n = 0; n < n_nodes_; ++n) {
    for (std::int32_t s = prog_.in_arc_offsets[n];
         s < prog_.in_arc_offsets[n + 1]; ++s) {
      const auto a = static_cast<std::size_t>(s);
      if (prog_.in_guard[a] >= 0 || prog_.in_prog_off[a] >= 0) {
        uniform_[n] = 0;
        break;
      }
    }
  }

  node_flags_.assign(n_nodes_ * width_, 0);
  node_observed_.assign(n_nodes_, 0);
  callbacks_.resize(n_nodes_ * width_);
  next_flush_.assign(n_nodes_ * width_, 0);
  retain_floor_.assign(width_, 0);
  acc_ps_.resize(width_);
  acc_eps_.resize(width_);
  mask_scratch_.resize(words_);
  worklist_.reserve(n_nodes_ + 16);

  bind_sinks();
}

void BatchEngine::bind_sinks() {
  const Graph& g = *graph_;
  record_series_.assign(n_nodes_ * width_, nullptr);
  op_trace_.assign(prog_.op_exec.size() * width_, nullptr);
  op_label_.assign(prog_.op_exec.size() * width_, -1);

  for (std::size_t i = 0; i < width_; ++i) {
    const InstanceSinks& sinks = opts_.instances[i];

    if (sinks.instant_sink != nullptr) {
      for (NodeId n = 0; n < static_cast<NodeId>(n_nodes_); ++n) {
        const Node& node = g.node(n);
        if (node.record_series.empty()) continue;
        trace::InstantSeries& series =
            sinks.instant_sink->series(sinks.scope + node.record_series);
        record_series_[lane(static_cast<std::size_t>(n), i)] = &series;
        if (opts_.expected_iterations > 0)
          series.reserve(opts_.expected_iterations);
        node_flags_[lane(static_cast<std::size_t>(n), i)] |= kRecords;
        node_observed_[static_cast<std::size_t>(n)] = 1;
      }
    }

    if (sinks.usage_sink == nullptr || g.desc() == nullptr) continue;
    std::vector<trace::UsageTrace*> usage_by_resource;
    for (const auto& r : g.desc()->resources())
      usage_by_resource.push_back(&sinks.usage_sink->trace(sinks.scope + r.name));
    std::vector<std::size_t> obs_per_resource(usage_by_resource.size(), 0);
    for (std::size_t j = 0; j < prog_.op_exec.size(); ++j) {
      if (!prog_.op_exec[j] || prog_.op_label[j].empty()) continue;
      const auto r = static_cast<std::size_t>(prog_.op_resource[j]);
      trace::UsageTrace* sink = usage_by_resource[r];
      op_trace_[j * width_ + i] = sink;
      op_label_[j * width_ + i] =
          sink->intern_label(sinks.scope + prog_.op_label[j]);
      ++obs_per_resource[r];
    }
    if (opts_.expected_iterations > 0) {
      for (std::size_t r = 0; r < usage_by_resource.size(); ++r)
        if (obs_per_resource[r] > 0)
          usage_by_resource[r]->reserve(obs_per_resource[r] *
                                        opts_.expected_iterations);
    }
  }
}

void BatchEngine::init_frame(Frame& f, std::uint64_t k) {
  // value_ps/value_eps are deliberately not cleared (see
  // Engine::init_frame): values are only read behind known[] checks, so
  // stale lanes are unreachable.
  std::fill(f.known.begin(), f.known.end(), std::uint8_t{0});
  std::fill(f.attr_known.begin(), f.attr_known.end(), std::uint8_t{0});
  std::fill(f.ready.begin(), f.ready.end(), std::uint64_t{0});
  f.known_count = 0;

  if (!pending_template_.empty()) {
    std::memcpy(f.pending.data(), pending_template_.data(),
                pending_template_.size() * sizeof(std::int32_t));
  }
  for (const NodeId n : prog_.always_ready)
    for (std::size_t i = 0; i < width_; ++i) mark_ready(f, n, k, i);
  for (const NodeId n : prog_.lagged_nodes) {
    const std::size_t base = lane(static_cast<std::size_t>(n), 0);
    for (std::int32_t s = prog_.lagged_offsets[static_cast<std::size_t>(n)];
         s < prog_.lagged_offsets[static_cast<std::size_t>(n) + 1]; ++s) {
      const auto a = static_cast<std::size_t>(s);
      if (prog_.lagged_lag[a] > k) continue;  // pre-history: simulation origin
      const Frame* sf = frame_at(k - prog_.lagged_lag[a]);
      const std::size_t src_base =
          lane(static_cast<std::size_t>(prog_.lagged_src[a]), 0);
      if (sf == nullptr) {
        for (std::size_t i = 0; i < width_; ++i) ++f.pending[base + i];
      } else {
        for (std::size_t i = 0; i < width_; ++i)
          if (!sf->known[src_base + i]) ++f.pending[base + i];
      }
    }
    for (std::size_t i = 0; i < width_; ++i)
      if (f.pending[base + i] == 0) mark_ready(f, n, k, i);
  }
}

BatchEngine::Frame& BatchEngine::ensure_frame(std::uint64_t k) {
  if (k < base_k_)
    throw Error("tdg::BatchEngine: iteration " + std::to_string(k) +
                " already pruned");
  while (k >= base_k_ + frames_.size()) {
    if (frame_pool_.empty()) {
      Frame f;
      f.value_ps.resize(n_nodes_ * width_);
      f.value_eps.resize(n_nodes_ * width_);
      f.known.resize(n_nodes_ * width_);
      f.pending.resize(n_nodes_ * width_);
      f.ready.resize(n_nodes_ * words_);
      f.attr_known.resize(n_sources_ * width_);
      f.attrs.resize(n_sources_ * width_);
      frames_.push_back(std::move(f));
    } else {
      frames_.push_back(std::move(frame_pool_.back()));
      frame_pool_.pop_back();
    }
    frame_ptrs_.push_back(&frames_.back());
    init_frame(frames_.back(), base_k_ + frames_.size() - 1);
  }
  return frames_[k - base_k_];
}

BatchEngine::Frame* BatchEngine::frame_at(std::uint64_t k) {
  const std::uint64_t idx = k - base_k_;  // wraps for k < base_k_
  if (idx >= frame_ptrs_.size()) return nullptr;
  return frame_ptrs_[idx];
}

const BatchEngine::Frame* BatchEngine::frame_at(std::uint64_t k) const {
  const std::uint64_t idx = k - base_k_;  // wraps for k < base_k_
  if (idx >= frame_ptrs_.size()) return nullptr;
  return frame_ptrs_[idx];
}

void BatchEngine::set_external(std::size_t inst, NodeId n, std::uint64_t k,
                               TimePoint value) {
  const Node& node = graph_->node(n);
  if (node.kind != NodeKind::kInput && node.kind != NodeKind::kExternal)
    throw Error("tdg::BatchEngine: set_external on computed node '" +
                node.name + "'");
  Frame& f = ensure_frame(k);
  if (f.known[lane(static_cast<std::size_t>(n), inst)])
    throw Error("tdg::BatchEngine: instance (" + node.name + ", " +
                std::to_string(k) + ") already known");
  mark_known(f, n, k, inst, mp::Scalar::from_time(value));
  resolve_dependents(f, n, k, inst);
}

void BatchEngine::set_attrs(std::size_t inst, model::SourceId s,
                            std::uint64_t k, const model::TokenAttrs& attrs) {
  if (s < 0 || static_cast<std::size_t>(s) >= n_sources_)
    throw Error("tdg::BatchEngine: set_attrs with bad source id");
  Frame& f = ensure_frame(k);
  const std::size_t sl = static_cast<std::size_t>(s) * width_ + inst;
  if (f.attr_known[sl]) return;  // idempotent
  f.attrs[sl] = attrs;
  f.attr_known[sl] = 1;
  for (const NodeId dst : prog_.attr_dsts_by_source[static_cast<std::size_t>(s)])
    decrement(f, dst, k, inst);
}

void BatchEngine::mark_ready(Frame& f, NodeId n, std::uint64_t k,
                             std::size_t inst) {
  std::uint64_t* block = &f.ready[static_cast<std::size_t>(n) * words_];
  bool was_empty = true;
  for (std::size_t w = 0; w < words_ && was_empty; ++w)
    was_empty = block[w] == 0;
  block[inst / 64] |= std::uint64_t{1} << (inst % 64);
  if (was_empty) worklist_.push_back({n, k});
}

void BatchEngine::decrement(Frame& f, NodeId n, std::uint64_t k,
                            std::size_t inst) {
  const std::size_t l = lane(static_cast<std::size_t>(n), inst);
  if (f.known[l]) return;
  if (--f.pending[l] == 0) mark_ready(f, n, k, inst);
}

void BatchEngine::mark_known(Frame& f, NodeId n, std::uint64_t k,
                             std::size_t inst, mp::Scalar v) {
  const std::size_t l = lane(static_cast<std::size_t>(n), inst);
  set_frame_value(f, l, v);
  f.known[l] = 1;
  ++f.known_count;
  const std::uint8_t flags = node_flags_[l];
  if (flags == 0) return;  // common case: no observer on this lane
  if (flags & kRecords) flush_instants(n, inst);
  if (flags & kHasCallback) emit_callback(l, k, v);
}

void BatchEngine::emit_callback(std::size_t l, std::uint64_t k, mp::Scalar v) {
  if (!v.is_finite()) return;
  if (defer_callbacks_)
    deferred_.push_back({l, k, v.to_time()});
  else
    callbacks_[l](k, v.to_time());
}

void BatchEngine::flush_instants(NodeId n, std::size_t inst) {
  MAXEV_FAULT_POINT("engine.flush");
  const std::size_t l = lane(static_cast<std::size_t>(n), inst);
  trace::InstantSeries& series = *record_series_[l];
  while (true) {
    const Frame* f = frame_at(next_flush_[l]);
    if (f == nullptr ||
        !f->known[lane(static_cast<std::size_t>(n), inst)])
      break;
    const mp::Scalar v =
        frame_value(*f, lane(static_cast<std::size_t>(n), inst));
    if (v.is_finite()) series.push(v.to_time());
    ++next_flush_[l];
  }
}

void BatchEngine::resolve_dependents(Frame& f, NodeId n, std::uint64_t k,
                                     std::size_t inst) {
  // Frames are never reclaimed mid-drain (prune() runs only from flush()
  // after the worklist empties), so f stays valid across callbacks.
  for (std::int32_t s = prog_.out_arc_offsets[static_cast<std::size_t>(n)];
       s < prog_.out_arc_offsets[static_cast<std::size_t>(n) + 1]; ++s) {
    const auto a = static_cast<std::size_t>(s);
    const std::uint32_t lag = prog_.out_lag[a];
    if (lag == 0) {
      decrement(f, prog_.out_dst[a], k, inst);
      continue;
    }
    const std::uint64_t kk = k + lag;
    // If the target frame does not exist yet, its init will see this
    // instance as already known and not count it.
    if (Frame* tf = frame_at(kk)) decrement(*tf, prog_.out_dst[a], kk, inst);
  }
}

bool BatchEngine::flush() {
  if (worklist_.empty()) {
    prune();
    return false;
  }
  drain();
  prune();
  return true;
}

bool BatchEngine::flush_deferred() {
  // Restore inline firing even if a guard/load closure throws mid-drain.
  struct Scope {
    bool& flag;
    ~Scope() { flag = false; }
  } scope{defer_callbacks_};
  defer_callbacks_ = true;
  return flush();
}

bool BatchEngine::fire_deferred() {
  if (deferred_.empty()) return false;
  // Swap out first: a callback may resume a writer inline whose channel
  // hooks feed this engine again (resolve_now fires further callbacks
  // inline — defer mode is off here, matching the serial path).
  std::vector<PendingCallback> pending;
  pending.swap(deferred_);
  for (const PendingCallback& cb : pending) callbacks_[cb.lane](cb.k, cb.t);
  return true;
}

void BatchEngine::drain() {
  if (draining_) return;  // single drain loop; nested calls just enqueue
  draining_ = true;
  while (!worklist_.empty()) {
    auto [n, k] = worklist_.back();
    worklist_.pop_back();
    compute_front(n, k);
  }
  draining_ = false;
}

mp::Scalar BatchEngine::compute_one(Frame& f, NodeId n, std::uint64_t k,
                                    std::size_t inst) {
  // The scalar path: identical arithmetic to tdg::Engine::compute, lane-
  // indexed. Loads are evaluated exactly once; busy intervals go to the
  // instance's own usage traces.
  //
  // MUST MIRROR Engine::compute (src/tdg/engine.cpp): the batched==solo
  // bit-identity guarantee (DESIGN.md §9, tests/test_batch_engine.cpp)
  // rests on both loops evaluating the shared tdg::Program with the same
  // expressions — any arithmetic change there must be applied here too.
  mp::Scalar acc = mp::Scalar::eps();
  for (std::int32_t s = prog_.in_arc_offsets[static_cast<std::size_t>(n)];
       s < prog_.in_arc_offsets[static_cast<std::size_t>(n) + 1]; ++s) {
    const auto a = static_cast<std::size_t>(s);
    const std::int32_t gi = prog_.in_guard[a];
    if (gi >= 0 &&
        !prog_.guards[static_cast<std::size_t>(gi)](
            f.attrs[static_cast<std::size_t>(prog_.in_attr_source[a]) * width_ +
                    inst],
            k))
      continue;
    const std::uint32_t lag = prog_.in_lag[a];
    mp::Scalar cursor;
    if (lag == 0) {  // same-frame source: skip the frame lookup
      cursor =
          frame_value(f, lane(static_cast<std::size_t>(prog_.in_src[a]), inst));
    } else if (lag > k) {
      cursor = mp::Scalar::e();  // simulation origin
    } else {
      cursor = frame_value(
          *frame_at(k - lag),
          lane(static_cast<std::size_t>(prog_.in_src[a]), inst));
    }
    ++arc_terms_;
    if (cursor.is_eps()) continue;  // guarded-off upstream
    const std::int32_t po = prog_.in_prog_off[a];
    if (po < 0) {
      cursor = cursor * prog_.in_fixed[a];  // pure delay, pre-folded
    } else {
      const model::TokenAttrs& attrs =
          f.attrs[static_cast<std::size_t>(prog_.in_attr_source[a]) * width_ +
                  inst];
      const auto end = static_cast<std::size_t>(po + prog_.in_prog_len[a]);
      for (auto j = static_cast<std::size_t>(po); j < end; ++j) {
        if (!prog_.op_exec[j]) {
          cursor = cursor * prog_.op_fixed[j];
          continue;
        }
        const auto li = static_cast<std::size_t>(prog_.op_load[j]);
        std::int64_t ops;
        std::int64_t d_ps;
        if (opts_.opcode_dispatch && prog_.op_const_dps[j] >= 0) {
          // RateConstant: ops count and duration folded at compile time.
          ops = prog_.load_ops.a[li];
          d_ps = prog_.op_const_dps[j];
        } else {
          ops = opts_.opcode_dispatch
                    ? ops::eval_load(prog_.load_ops, li, attrs, k, prog_.loads)
                    : prog_.loads[li](attrs, k);
          d_ps = ops <= 0 ? 0
                          : static_cast<std::int64_t>(std::llround(
                                static_cast<double>(ops) / prog_.op_rate[j] *
                                1e12));
        }
        const mp::Scalar end_pos =
            cursor * mp::Scalar::from_duration(Duration::ps(d_ps));
        trace::UsageTrace* sink = op_trace_[j * width_ + inst];
        if (sink != nullptr) {
          sink->push(cursor.to_time(), end_pos.to_time(), ops,
                     op_label_[j * width_ + inst]);
        }
        cursor = end_pos;
      }
    }
    acc = acc + cursor;
  }
  return acc;
}

void BatchEngine::compute_front(NodeId n, std::uint64_t k) {
  Frame& f = *frame_at(k);
  std::uint64_t* block = &f.ready[static_cast<std::size_t>(n) * words_];
  bool empty = true;
  for (std::size_t w = 0; w < words_; ++w) {
    mask_scratch_[w] = block[w];
    block[w] = 0;
    empty = empty && mask_scratch_[w] == 0;
  }
  // A stale worklist entry: every ready lane of this front was already
  // answered out of band by resolve_now(). Nothing to do (and nothing to
  // count — the front never formed).
  if (empty) return;
  ++fronts_;

  const std::size_t nn = static_cast<std::size_t>(n);
  bool full = width_ >= 2;
  for (std::size_t w = 0; w < words_ && full; ++w) {
    const std::size_t bits_here = std::min<std::size_t>(64, width_ - w * 64);
    const std::uint64_t all =
        bits_here == 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << bits_here) - 1);
    full = mask_scratch_[w] == all;
  }

  if (full && uniform_[nn]) {
    // The batched fast path: every instance of this node is ready and the
    // node's in-arcs are guard-free pure delays, so the (max,+) recurrence
    // is the same arithmetic in every lane — stream each shared arc slot
    // once and sweep its weight across the contiguous lane.
    const std::int32_t a0 = prog_.in_arc_offsets[nn];
    const std::int32_t a1 = prog_.in_arc_offsets[nn + 1];
    if (opts_.vector_drain) {
      // Vector drain (docs/DESIGN.md §14): branch-free SoA lane kernels
      // accumulate into the width_-sized scratch, published to the frame
      // only when no lane's ⊗ overflowed. On a detected overflow the
      // scratch is discarded and the front falls through to the scalar
      // loop below, which throws the solo engine's OverflowError with
      // nothing partially published.
      std::int64_t* acc_ps = acc_ps_.data();
      std::uint8_t* acc_eps = acc_eps_.data();
      lanes::fill_eps(acc_ps, acc_eps, width_);
      bool ovf = false;
      for (std::int32_t s = a0; s < a1; ++s) {
        const auto a = static_cast<std::size_t>(s);
        const std::uint32_t lag = prog_.in_lag[a];
        const mp::Scalar wgt = prog_.in_fixed[a];
        if (lag > k) {
          // Simulation origin: e ⊗ wgt = wgt, finite by construction.
          lanes::accumulate_broadcast(acc_ps, acc_eps, wgt.value(), width_);
        } else {
          const Frame& sf = lag == 0 ? f : *frame_at(k - lag);
          const std::size_t src =
              lane(static_cast<std::size_t>(prog_.in_src[a]), 0);
          ovf |= lanes::accumulate(acc_ps, acc_eps, &sf.value_ps[src],
                                   &sf.value_eps[src], wgt.value(), width_);
        }
      }
      if (!ovf) {
        MAXEV_FAULT_POINT("engine.vector_flush");
        arc_terms_ += static_cast<std::uint64_t>(a1 - a0) * width_;
        computed_ += width_;
        std::memcpy(&f.value_ps[lane(nn, 0)], acc_ps,
                    width_ * sizeof(std::int64_t));
        std::memcpy(&f.value_eps[lane(nn, 0)], acc_eps, width_);
        finish_uniform_front(f, n, k);
        return;
      }
      // fall through: mask_scratch_ still holds the full front.
    } else {
      // Reference lane loop (the pre-opcode drain, kept selectable as the
      // ablation baseline): per-element mp::Scalar arithmetic accumulated
      // directly into the node's value row.
      const std::size_t base = lane(nn, 0);
      for (std::size_t i = 0; i < width_; ++i)
        set_frame_value(f, base + i, mp::Scalar::eps());
      for (std::int32_t s = a0; s < a1; ++s) {
        const auto a = static_cast<std::size_t>(s);
        const std::uint32_t lag = prog_.in_lag[a];
        const mp::Scalar wgt = prog_.in_fixed[a];
        if (lag > k) {
          const mp::Scalar v = mp::Scalar::e() * wgt;  // simulation origin
          for (std::size_t i = 0; i < width_; ++i)
            set_frame_value(f, base + i, frame_value(f, base + i) + v);
        } else {
          const Frame& sf = lag == 0 ? f : *frame_at(k - lag);
          const std::size_t src =
              lane(static_cast<std::size_t>(prog_.in_src[a]), 0);
          for (std::size_t i = 0; i < width_; ++i)
            set_frame_value(f, base + i,
                            frame_value(f, base + i) +
                                frame_value(sf, src + i) * wgt);
        }
        arc_terms_ += width_;
      }
      computed_ += width_;
      finish_uniform_front(f, n, k);
      return;
    }
  }

  // Partial front, or a node with guards / execute segments (or a vector
  // drain that detected overflow): evaluate each ready instance the scalar
  // way (still one worklist pop for the whole front, with the arc tables
  // hot across instances).
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t bits = mask_scratch_[w];
    while (bits != 0) {
      const auto b = static_cast<std::size_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      const std::size_t i = w * 64 + b;
      if (f.known[lane(nn, i)]) continue;  // defensive; bits are cleared
      const mp::Scalar v = compute_one(f, n, k, i);
      ++computed_;
      mark_known(f, n, k, i, v);
      resolve_dependents(f, n, k, i);
    }
  }
}

void BatchEngine::finish_uniform_front(Frame& f, NodeId n, std::uint64_t k) {
  const std::size_t nn = static_cast<std::size_t>(n);
  // Bulk known-marking: one memset + one counter bump for the whole lane;
  // per-lane observer work only where some lane has an observer.
  std::memset(&f.known[lane(nn, 0)], 1, width_);
  f.known_count += width_;
  if (node_observed_[nn]) {
    for (std::size_t i = 0; i < width_; ++i) {
      const std::size_t l = lane(nn, i);
      const std::uint8_t flags = node_flags_[l];
      if (flags == 0) continue;
      if (flags & kRecords) flush_instants(n, i);
      if (flags & kHasCallback) emit_callback(l, k, frame_value(f, l));
    }
  }
  // Batched dependent resolution: stream each out-arc slot once; one
  // front-emptiness check per destination row instead of per lane.
  const std::int32_t o0 = prog_.out_arc_offsets[nn];
  const std::int32_t o1 = prog_.out_arc_offsets[nn + 1];
  for (std::int32_t s = o0; s < o1; ++s) {
    const auto a = static_cast<std::size_t>(s);
    const std::uint32_t lag = prog_.out_lag[a];
    const std::uint64_t kk = k + lag;
    Frame* tf = lag == 0 ? &f : frame_at(kk);
    if (tf == nullptr) continue;  // future frame: init will count us known
    const auto dst = static_cast<std::size_t>(prog_.out_dst[a]);
    std::uint64_t* block = &tf->ready[dst * words_];
    bool nonempty = false;
    for (std::size_t w = 0; w < words_ && !nonempty; ++w)
      nonempty = block[w] != 0;
    std::int32_t* pend = &tf->pending[dst * width_];
    const std::uint8_t* kn = &tf->known[dst * width_];
    bool any_ready = false;
    for (std::size_t i = 0; i < width_; ++i) {
      if (kn[i]) continue;
      if (--pend[i] == 0) {
        block[i / 64] |= std::uint64_t{1} << (i % 64);
        any_ready = true;
      }
    }
    if (any_ready && !nonempty) worklist_.push_back({prog_.out_dst[a], kk});
  }
}

void BatchEngine::prune() {
  const std::size_t window = static_cast<std::size_t>(graph_->max_lag()) + 1;
  // Hysteresis: batch reclamation instead of churning one frame at a time.
  if (frames_.size() <= window + 8) return;
  const std::uint64_t floor =
      *std::min_element(retain_floor_.begin(), retain_floor_.end());
  const std::size_t lanes = n_nodes_ * width_;
  while (frames_.size() > window && base_k_ < floor) {
    bool droppable = true;
    for (std::size_t i = 0; i <= graph_->max_lag() && droppable; ++i)
      droppable = frames_[i].known_count == lanes;
    if (!droppable) break;
    frame_pool_.push_back(std::move(frames_.front()));
    frames_.pop_front();
    frame_ptrs_.erase(frame_ptrs_.begin());  // window-sized vector, cheap
    ++base_k_;
  }
}

std::optional<TimePoint> BatchEngine::resolve_now(std::size_t inst, NodeId n,
                                                  std::uint64_t k) {
  Frame* f = frame_at(k);
  if (f == nullptr) return std::nullopt;
  const std::size_t l = lane(static_cast<std::size_t>(n), inst);
  if (f->known[l]) {
    const mp::Scalar v = frame_value(*f, l);
    return v.is_finite() ? std::optional(v.to_time()) : std::nullopt;
  }
  if (f->pending[l] != 0) return std::nullopt;  // still blocked
  // pending hit zero, so mark_ready() has set this lane's front bit; take
  // the lane out of the front (its node may stay on the worklist — an
  // emptied front is skipped by compute_front) and compute it here, out of
  // band. The value equals what the deferred drain would produce: a ready
  // lane's prerequisites are all known, so drain order cannot change it.
  f->ready[static_cast<std::size_t>(n) * words_ + inst / 64] &=
      ~(std::uint64_t{1} << (inst % 64));
  const mp::Scalar v = compute_one(*f, n, k, inst);
  ++computed_;
  mark_known(*f, n, k, inst, v);
  resolve_dependents(*f, n, k, inst);
  if (!v.is_finite()) return std::nullopt;
  return v.to_time();
}

std::optional<TimePoint> BatchEngine::value(std::size_t inst, NodeId n,
                                            std::uint64_t k) const {
  const Frame* f = frame_at(k);
  if (f == nullptr) return std::nullopt;
  const std::size_t l = lane(static_cast<std::size_t>(n), inst);
  if (!f->known[l] || f->value_eps[l] != 0) return std::nullopt;
  return TimePoint::at_ps(f->value_ps[l]);
}

std::optional<model::TokenAttrs> BatchEngine::attrs_of(std::size_t inst,
                                                       model::SourceId s,
                                                       std::uint64_t k) const {
  if (s < 0 || static_cast<std::size_t>(s) >= n_sources_) return std::nullopt;
  const Frame* f = frame_at(k);
  if (f == nullptr) return std::nullopt;
  const std::size_t sl = static_cast<std::size_t>(s) * width_ + inst;
  if (!f->attr_known[sl]) return std::nullopt;
  return f->attrs[sl];
}

void BatchEngine::set_retain_floor(std::size_t inst, std::uint64_t k) {
  retain_floor_[inst] = std::max(retain_floor_[inst], k);
  if (!draining_) prune();
}

void BatchEngine::on_known(std::size_t inst, NodeId n,
                           std::function<void(std::uint64_t, TimePoint)> cb) {
  if (n < 0 || static_cast<std::size_t>(n) >= n_nodes_ || inst >= width_)
    throw Error("tdg::BatchEngine: on_known with bad node/instance id");
  const std::size_t l = lane(static_cast<std::size_t>(n), inst);
  callbacks_[l] = std::move(cb);
  if (callbacks_[l]) {
    node_flags_[l] |= kHasCallback;
    node_observed_[static_cast<std::size_t>(n)] = 1;
  } else {
    node_flags_[l] &= static_cast<std::uint8_t>(~kHasCallback);
    // node_observed_ stays conservative (it only gates a fast path).
  }
}

}  // namespace maxev::tdg
