#pragma once

#include <string>

#include "tdg/graph.hpp"

/// \file builder.hpp
/// Hand-construction helper for temporal dependency graphs, mirroring how
/// the paper writes the instant equations. Example — equation (2),
/// xM2(k) = xM1(k) ⊗ Ti1(k) ⊕ xM5(k-1):
///
///   GraphBuilder b;
///   b.input("u");
///   b.instant("xM1"); ... ;
///   b.arc("xM1", "xM2").fixed(Duration::us(5));   // Ti1 constant
///   b.arc("xM5", "xM2").lag(1);                   // e-weighted history arc
///   Graph g = b.take();
///
/// Used by the unit tests and the maxplus_playground example; the
/// production path derives graphs automatically (tdg/derive.hpp).

namespace maxev::tdg {

class GraphBuilder {
 public:
  GraphBuilder() = default;
  /// With a description, arcs may carry execute segments.
  explicit GraphBuilder(const model::ArchitectureDesc* desc) : g_(desc) {}

  /// Add an input node (externally fed offer instant).
  GraphBuilder& input(const std::string& name);
  /// Add a computed instant node; \p record as this series when non-empty.
  GraphBuilder& instant(const std::string& name,
                        const std::string& record = {});
  /// Add a computed output-offer node.
  GraphBuilder& output(const std::string& name);
  /// Add an externally fed actual-instant node.
  GraphBuilder& external(const std::string& name);

  /// Fluent arc construction; the arc is committed when the ArcRef goes out
  /// of scope (or on the next builder call).
  class ArcRef {
   public:
    ArcRef(GraphBuilder& b, NodeId src, NodeId dst) : b_(&b) {
      arc_.src = src;
      arc_.dst = dst;
    }
    ArcRef(const ArcRef&) = delete;
    ArcRef& operator=(const ArcRef&) = delete;
    ~ArcRef() { b_->g_.add_arc(std::move(arc_)); }

    ArcRef& lag(unsigned l) { arc_.lag = l; return *this; }
    ArcRef& fixed(Duration d) {
      arc_.segments.push_back(Segment{d, nullptr, model::kInvalidId, {}});
      return *this;
    }
    ArcRef& exec(model::ResourceId r, model::LoadFn load, std::string label) {
      arc_.segments.push_back(
          Segment{Duration{}, std::move(load), r, std::move(label)});
      return *this;
    }
    ArcRef& from_source(model::SourceId s) { arc_.attr_source = s; return *this; }
    ArcRef& when(GuardFn g) { arc_.guard = std::move(g); return *this; }

   private:
    GraphBuilder* b_;
    Arc arc_;
  };

  /// Start an arc between two previously declared nodes (by name).
  /// Deliberately not [[nodiscard]]: a bare `b.arc(a, b);` statement is the
  /// idiomatic way to add a default (zero-lag, zero-weight) arc — the
  /// temporary ArcRef commits it on destruction.
  ArcRef arc(const std::string& src, const std::string& dst);

  /// Node id by name; throws if absent.
  [[nodiscard]] NodeId id(const std::string& name) const;

  /// Finish: returns the (unfrozen) graph.
  [[nodiscard]] Graph take() { return std::move(g_); }

 private:
  Graph g_;
};

}  // namespace maxev::tdg
