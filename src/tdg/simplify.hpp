#pragma once

#include <cstddef>

#include "tdg/graph.hpp"

/// \file simplify.hpp
/// Graph transforms applied between derivation and freezing.
///
/// fold_pass_through() collapses intermediate completion nodes into
/// composite arc weights, producing the compact graphs the paper draws
/// (Fig. 3: Ti1(k) is an arc weight between xM1 and xM2, not a node). This
/// is what makes the didactic example's node count match Table I (10).
/// The raw/folded pair is also the subject of an ablation benchmark: both
/// graphs compute identical instants, the folded one at lower cost.
///
/// pad_graph() inserts pass-through nodes to *increase* computation
/// complexity at constant semantics — the independent variable of the
/// paper's Fig. 5 ("a varying number of nodes that are required to perform
/// computation of evolution instants").

namespace maxev::tdg {

/// Fold pass-through completion nodes. A node folds when it is of kind
/// kCompletion, has exactly one in-arc and one out-arc, the out-arc has
/// lag 0 (weights keep their iteration index), and the two arcs'
/// attribute provenances are compatible. Returns a new graph (input graph
/// must not be frozen; node names survive).
[[nodiscard]] Graph fold_pass_through(const Graph& g);

/// Insert \p extra_nodes pass-through kPad nodes, distributed round-robin
/// across arcs (each selected arc becomes a chain src -> pad... -> dst with
/// the original weight on the first hop). Semantics are unchanged; the
/// engine's per-iteration work grows by exactly \p extra_nodes instances.
[[nodiscard]] Graph pad_graph(const Graph& g, std::size_t extra_nodes);

}  // namespace maxev::tdg
