#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "maxplus/scalar.hpp"
#include "model/load.hpp"
#include "model/token.hpp"
#include "tdg/graph.hpp"
#include "tdg/ops.hpp"

/// \file program.hpp
/// The compiled, instance-agnostic form of a frozen temporal dependency
/// graph (docs/DESIGN.md §7): flat CSR adjacency, struct-of-arrays arc and
/// segment tables with pre-folded fixed weights and pre-resolved resource
/// rates, and hoisted guard/load side tables. A Program holds everything
/// about the graph's *structure* and *weights*; everything about a
/// particular execution — frames, pending counts, observation sinks —
/// lives in the engine that runs it.
///
/// One Program serves two executors:
///  * tdg::Engine evaluates it for a single model instance;
///  * tdg::BatchEngine evaluates it for N composed instances at once,
///    sharing these tables across the whole batch (docs/DESIGN.md §9).

namespace maxev::tdg {

/// Compiled program tables. Plain data; cheap to move, never mutated after
/// compile(). All `*_offsets_` arrays are CSR offsets with node_count + 1
/// entries; the in_*/out_* columns are permuted into CSR slot order so the
/// engines' propagation loops stream contiguous memory.
struct Program {
  /// Compile a frozen graph. Walking nodes in id order and each node's
  /// arcs in insertion order keeps every table (including the hoisted
  /// guard/load side tables and the segment ops) deterministic.
  /// \pre g.frozen()
  [[nodiscard]] static Program compile(const Graph& g);

  std::size_t n_nodes = 0;
  /// Distinct token-attribute sources referenced by the graph (>= 1).
  std::size_t n_sources = 1;

  // ---- In-arc program, in CSR slot order ----------------------------------
  std::vector<std::int32_t> in_arc_offsets;  ///< n_nodes + 1
  std::vector<NodeId> in_src;
  std::vector<std::uint32_t> in_lag;
  std::vector<model::SourceId> in_attr_source;
  std::vector<std::int32_t> in_guard;     ///< index into guards; -1 = none
  std::vector<std::int32_t> in_prog_off;  ///< index into op tables; -1 = pure fixed
  std::vector<std::int32_t> in_prog_len;
  std::vector<mp::Scalar> in_fixed;       ///< pure-fixed arcs: pre-folded weight

  // ---- Out-arc table, in CSR slot order -----------------------------------
  std::vector<std::int32_t> out_arc_offsets;  ///< n_nodes + 1
  std::vector<NodeId> out_dst;
  std::vector<std::uint32_t> out_lag;

  // ---- Frame-initialization bookkeeping -----------------------------------
  // Per-node CSR over the *lagged* (lag >= 1) in-arcs only — the part of
  // frame initialization that depends on older frames; the static part
  // (attr prerequisites + same-frame arcs) is pre-counted so a fresh
  // frame's pending column is one memcpy plus a touch-up of the (few)
  // nodes that actually have history arcs.
  std::vector<std::int32_t> lagged_offsets;  ///< n_nodes + 1
  std::vector<NodeId> lagged_src;
  std::vector<std::uint32_t> lagged_lag;
  std::vector<std::int32_t> static_pending;  ///< -1 for externally fed nodes
  std::vector<NodeId> lagged_nodes;          ///< nodes with >= 1 lagged in-arc
  std::vector<NodeId> always_ready;  ///< static_pending == 0, no lagged arcs

  // ---- Segment program ops (arcs with execute segments) -------------------
  // Consecutive fixed segments are pre-folded into single entries; execute
  // entries carry a hoisted load, the resource's rate constant
  // (ResourceDesc::duration_for becomes inlined arithmetic) and the
  // observation metadata the engines bind to concrete sinks.
  std::vector<std::uint8_t> op_exec;
  std::vector<mp::Scalar> op_fixed;       ///< fixed entries
  std::vector<std::int32_t> op_load;      ///< exec: index into loads
  std::vector<double> op_rate;            ///< exec: resource ops/second
  std::vector<model::ResourceId> op_resource;  ///< exec: resource id (else -1)
  std::vector<std::string> op_label;      ///< exec: busy label ("" = unobserved)

  // ---- Hoisted std::function side tables ----------------------------------
  // Dense; indexed by the arcs/ops that actually carry a guard or load.
  std::vector<GuardFn> guards;
  std::vector<model::LoadFn> loads;

  // ---- Opcode layer (docs/DESIGN.md §14) ----------------------------------
  // The hoisted loads compiled into enum-dispatched table entries: the
  // engines' hot loops switch on plain integers and only fall back to the
  // std::function side table for kOpaqueClosure rows. Built by
  // compile_ops() — called from compile() and after wire deserialization.
  ops::LoadTable load_ops;
  /// Per segment op: ops::Kind (kFixedWeight for fixed entries, the load's
  /// kind for execute entries).
  std::vector<std::uint8_t> op_kind;
  /// Per segment op: fully pre-folded exec duration in picoseconds for
  /// RateConstant loads (constant ops against the pre-resolved rate — the
  /// double math happens once, here); -1 = not constant, evaluate at
  /// runtime.
  std::vector<std::int64_t> op_const_dps;

  /// (Re)build the opcode tables from `loads`/`op_exec`/`op_load`/
  /// `op_rate`. Idempotent; must run after any mutation of those tables.
  void compile_ops();

  /// Per source: destination nodes of the attr-needing arcs (what
  /// set_attrs decrements). May contain duplicates when several arcs of
  /// one destination need the same source's attributes.
  std::vector<std::vector<NodeId>> attr_dsts_by_source;
};

}  // namespace maxev::tdg
