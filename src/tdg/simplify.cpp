#include "tdg/simplify.hpp"

#include <algorithm>
#include <optional>

#include "util/error.hpp"

namespace maxev::tdg {

namespace {

bool arc_needs_attrs(const Arc& a) {
  if (a.guard) return true;
  return std::any_of(a.segments.begin(), a.segments.end(),
                     [](const Segment& s) { return s.is_exec(); });
}

GuardFn combine_guards(const GuardFn& a, const GuardFn& b) {
  if (!a) return b;
  if (!b) return a;
  return [a, b](const model::TokenAttrs& attrs, std::uint64_t k) {
    return a(attrs, k) && b(attrs, k);
  };
}

Graph rebuild(const Graph& g, const std::vector<bool>& dead,
              const std::vector<Arc>& arcs) {
  Graph out(g.desc());
  std::vector<NodeId> remap(g.node_count(), kNoNode);
  for (NodeId n = 0; n < static_cast<NodeId>(g.node_count()); ++n) {
    if (dead[n]) continue;
    remap[n] = out.add_node(g.node(n));
  }
  for (const Arc& a : arcs) {
    Arc copy = a;
    copy.src = remap[a.src];
    copy.dst = remap[a.dst];
    if (copy.src == kNoNode || copy.dst == kNoNode)
      throw Error("tdg::rebuild: arc references dead node");
    out.add_arc(std::move(copy));
  }
  return out;
}

}  // namespace

Graph fold_pass_through(const Graph& g) {
  if (g.frozen())
    throw DescriptionError("fold_pass_through: graph already frozen");

  std::vector<Arc> arcs = g.arcs();
  std::vector<bool> dead(g.node_count(), false);

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId m = 0; m < static_cast<NodeId>(g.node_count()); ++m) {
      if (dead[m] || g.node(m).kind != NodeKind::kCompletion) continue;
      std::optional<std::size_t> in, out;
      bool simple = true;
      for (std::size_t i = 0; i < arcs.size() && simple; ++i) {
        if (arcs[i].dst == m) {
          if (in) simple = false;
          in = i;
        }
        if (arcs[i].src == m) {
          if (out) simple = false;
          out = i;
        }
      }
      if (!simple || !in || !out) continue;
      Arc& ain = arcs[*in];
      Arc& aout = arcs[*out];
      if (aout.lag != 0) continue;  // weight would shift iteration index
      const bool in_attrs = arc_needs_attrs(ain);
      const bool out_attrs = arc_needs_attrs(aout);
      if (in_attrs && out_attrs && ain.attr_source != aout.attr_source)
        continue;  // incompatible provenance

      Arc merged;
      merged.src = ain.src;
      merged.dst = aout.dst;
      merged.lag = ain.lag;
      merged.segments = ain.segments;
      merged.segments.insert(merged.segments.end(), aout.segments.begin(),
                             aout.segments.end());
      merged.attr_source = in_attrs ? ain.attr_source : aout.attr_source;
      merged.guard = combine_guards(ain.guard, aout.guard);

      // Replace the pair with the merged arc.
      const std::size_t hi = std::max(*in, *out);
      const std::size_t lo = std::min(*in, *out);
      arcs.erase(arcs.begin() + static_cast<std::ptrdiff_t>(hi));
      arcs.erase(arcs.begin() + static_cast<std::ptrdiff_t>(lo));
      arcs.push_back(std::move(merged));
      dead[m] = true;
      changed = true;
    }
  }
  return rebuild(g, dead, arcs);
}

Graph pad_graph(const Graph& g, std::size_t extra_nodes) {
  if (g.frozen()) throw DescriptionError("pad_graph: graph already frozen");
  if (g.arc_count() == 0)
    throw DescriptionError("pad_graph: graph has no arcs to pad");

  // Distribute pads round-robin over the arcs.
  std::vector<std::size_t> pads(g.arc_count(), 0);
  for (std::size_t i = 0; i < extra_nodes; ++i) ++pads[i % g.arc_count()];

  Graph out(g.desc());
  std::vector<NodeId> remap(g.node_count());
  for (NodeId n = 0; n < static_cast<NodeId>(g.node_count()); ++n)
    remap[n] = out.add_node(g.node(n));

  std::size_t pad_seq = 0;
  for (std::size_t i = 0; i < g.arc_count(); ++i) {
    const Arc& a = g.arcs()[i];
    if (pads[i] == 0) {
      Arc copy = a;
      copy.src = remap[a.src];
      copy.dst = remap[a.dst];
      out.add_arc(std::move(copy));
      continue;
    }
    // src -> p1 carries the original weight/lag/guard; the rest are e-arcs.
    NodeId prev = remap[a.src];
    Arc first = a;
    first.src = prev;
    NodeId p = out.add_node(
        {"pad" + std::to_string(pad_seq++), NodeKind::kPad, model::kInvalidId,
         false, {}});
    first.dst = p;
    out.add_arc(std::move(first));
    prev = p;
    for (std::size_t j = 1; j < pads[i]; ++j) {
      p = out.add_node({"pad" + std::to_string(pad_seq++), NodeKind::kPad,
                        model::kInvalidId, false, {}});
      out.add_arc({prev, p, 0, {}, a.attr_source, nullptr});
      prev = p;
    }
    out.add_arc({prev, remap[a.dst], 0, {}, a.attr_source, nullptr});
  }
  return out;
}

}  // namespace maxev::tdg
