#pragma once

#include <functional>
#include <string>
#include <vector>

#include "maxplus/cycle_ratio.hpp"
#include "maxplus/linear_system.hpp"
#include "model/token.hpp"
#include "tdg/graph.hpp"

/// \file export.hpp
/// Views of a temporal dependency graph in other formalisms:
///  * Graphviz DOT, for documentation and debugging;
///  * the paper's matrix form (equations (7)-(10)) as an mp::LinearSystem —
///    used by the test suite to cross-validate the graph engine against
///    plain (max,+) matrix algebra;
///  * a cycle-ratio analysis graph, giving the architecture's analytic
///    steady-state throughput bound (ablation benchmark).

namespace maxev::tdg {

/// Render the graph in Graphviz DOT. History (lag >= 1) arcs are dashed and
/// annotated "k-<lag>"; execute segments show their labels.
[[nodiscard]] std::string to_dot(const Graph& g);

/// Attribute provider for matrix extraction: attrs of source s at iteration
/// k (must agree with what the engine receives at run time).
using AttrsProvider =
    std::function<model::TokenAttrs(model::SourceId, std::uint64_t)>;

/// Result of matrix extraction: the system plus the state/input orderings.
struct ExtractedSystem {
  mp::LinearSystem system;
  std::vector<NodeId> state_nodes;   ///< state vector order
  std::vector<NodeId> input_nodes;   ///< input vector order
  std::vector<NodeId> output_nodes;  ///< output vector order
};

/// Extract X(k) = ⊕_i A(k,i) X(k-i) ⊕ B(k,0) U(k), Y(k) = C X(k) from the
/// graph. State nodes are all non-input nodes; outputs are the kOutput
/// nodes. Guards evaluate inside the k-varying matrices. The system is
/// configured with pre-history e (the engine's simulation-origin
/// convention). \pre g.frozen()
[[nodiscard]] ExtractedSystem to_linear_system(const Graph& g,
                                               AttrsProvider attrs);

/// The cycle-ratio analysis graph: mean arc durations sampled over
/// iterations [0, sample_iterations) with the given attribute provider.
/// Consumed by mp::max_cycle_ratio / mp::steady_state (the adaptive
/// backend's analytic cross-check reuses this instead of rebuilding arcs).
struct RatioGraph {
  std::size_t nodes = 0;
  std::vector<mp::RatioArc> arcs;
};

/// \pre g.frozen(), sample_iterations >= 1
[[nodiscard]] RatioGraph to_ratio_graph(const Graph& g,
                                        const AttrsProvider& attrs,
                                        std::uint64_t sample_iterations = 64);

/// Build the cycle-ratio analysis graph using mean arc durations sampled
/// over iterations [0, sample_iterations) with the given attribute
/// provider. The maximum cycle ratio bounds the steady-state input period
/// below which the architecture saturates.
[[nodiscard]] mp::CycleRatioResult throughput_bound(
    const Graph& g, const AttrsProvider& attrs,
    std::uint64_t sample_iterations = 64);

}  // namespace maxev::tdg
