#include "tdg/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace maxev::tdg {

namespace {
constexpr std::uint8_t kRecords = 1;      // node has an instant series
constexpr std::uint8_t kHasCallback = 2;  // node has an on_known callback
}  // namespace

Engine::Engine(const Graph& g, Options opts) : graph_(&g), opts_(opts) {
  if (!g.frozen()) throw DescriptionError("tdg::Engine: graph must be frozen");

  prog_ = Program::compile(g);
  init_from_program();
}

Engine::Engine(const Graph& g, const Program& precompiled, Options opts)
    : graph_(&g), opts_(opts) {
  if (!g.frozen()) throw DescriptionError("tdg::Engine: graph must be frozen");
  if (precompiled.n_nodes != g.node_count())
    throw Error("tdg::Engine: precompiled program does not match the graph (" +
                std::to_string(precompiled.n_nodes) + " vs " +
                std::to_string(g.node_count()) + " nodes)");

  prog_ = precompiled;
  init_from_program();
}

void Engine::init_from_program() {
  n_nodes_ = prog_.n_nodes;
  n_sources_ = prog_.n_sources;

  callbacks_.resize(n_nodes_);
  next_flush_.assign(n_nodes_, 0);
  worklist_.reserve(n_nodes_ + 16);  // growth hint; avoids early reallocations

  compile();
}

void Engine::compile() {
  const Graph& g = *graph_;

  // Bind the program's observation metadata to this run's sinks: resolve
  // series/trace pointers once (map lookups are off the hot path),
  // pre-sizing the columns when the caller provided an expected iteration
  // count (Options::expected_iterations).
  record_series_.assign(n_nodes_, nullptr);
  if (opts_.instant_sink != nullptr) {
    for (NodeId n = 0; n < static_cast<NodeId>(n_nodes_); ++n) {
      const Node& node = g.node(n);
      if (node.record_series.empty()) continue;
      record_series_[n] = &opts_.instant_sink->series(node.record_series);
      if (opts_.expected_iterations > 0)
        record_series_[n]->reserve(opts_.expected_iterations);
    }
  }
  std::vector<trace::UsageTrace*> usage_by_resource;
  if (opts_.usage_sink != nullptr && g.desc() != nullptr) {
    for (const auto& r : g.desc()->resources())
      usage_by_resource.push_back(&opts_.usage_sink->trace(r.name));
  }

  const std::size_t n_ops = prog_.op_exec.size();
  op_trace_.assign(n_ops, nullptr);
  op_label_.assign(n_ops, -1);
  std::vector<std::size_t> obs_per_resource(usage_by_resource.size(), 0);
  for (std::size_t j = 0; j < n_ops; ++j) {
    if (!prog_.op_exec[j] || prog_.op_label[j].empty()) continue;
    if (usage_by_resource.empty()) continue;
    const auto r = static_cast<std::size_t>(prog_.op_resource[j]);
    op_trace_[j] = usage_by_resource[r];
    op_label_[j] = op_trace_[j]->intern_label(prog_.op_label[j]);
    ++obs_per_resource[r];
  }
  if (opts_.expected_iterations > 0) {
    for (std::size_t r = 0; r < usage_by_resource.size(); ++r)
      if (obs_per_resource[r] > 0)
        usage_by_resource[r]->reserve(obs_per_resource[r] *
                                      opts_.expected_iterations);
  }

  node_flags_.assign(n_nodes_, 0);
  for (std::size_t n = 0; n < n_nodes_; ++n)
    if (record_series_[n] != nullptr) node_flags_[n] |= kRecords;
}

void Engine::init_frame(Frame& f, std::uint64_t k) {
  // f.value is deliberately not cleared: a value is only ever read behind a
  // known[] check (dependency counting guarantees sources are known), and
  // mark_known stores it right before setting known — stale values from a
  // recycled frame are unreachable.
  std::fill(f.known.begin(), f.known.end(), std::uint8_t{0});
  std::fill(f.attr_known.begin(), f.attr_known.end(), std::uint8_t{0});
  f.known_count = 0;

  // Bulk-initialize from the pre-counted static column (attr prerequisites,
  // same-frame arcs, external markers); only nodes with history arcs need a
  // per-frame look at older frames.
  if (n_nodes_ > 0) {
    std::memcpy(f.pending.data(), prog_.static_pending.data(),
                n_nodes_ * sizeof(std::int32_t));
  }
  for (const NodeId n : prog_.always_ready) worklist_.push_back({n, k});
  for (const NodeId n : prog_.lagged_nodes) {
    std::int32_t p = f.pending[static_cast<std::size_t>(n)];
    for (std::int32_t i = prog_.lagged_offsets[static_cast<std::size_t>(n)];
         i < prog_.lagged_offsets[static_cast<std::size_t>(n) + 1]; ++i) {
      const auto s = static_cast<std::size_t>(i);
      if (prog_.lagged_lag[s] > k) continue;  // pre-history: simulation origin
      const Frame* sf = frame_at(k - prog_.lagged_lag[s]);
      if (sf == nullptr ||
          !sf->known[static_cast<std::size_t>(prog_.lagged_src[s])])
        ++p;
    }
    f.pending[static_cast<std::size_t>(n)] = p;
    if (p == 0) worklist_.push_back({n, k});
  }
}

Engine::Frame& Engine::ensure_frame(std::uint64_t k) {
  if (k < base_k_)
    throw Error("tdg::Engine: iteration " + std::to_string(k) +
                " already pruned");
  while (k >= base_k_ + frames_.size()) {
    if (frame_pool_.empty()) {
      Frame f;
      f.value.resize(n_nodes_);
      f.known.resize(n_nodes_);
      f.pending.resize(n_nodes_);
      f.attr_known.resize(n_sources_);
      f.attrs.resize(n_sources_);
      frames_.push_back(std::move(f));
    } else {
      frames_.push_back(std::move(frame_pool_.back()));
      frame_pool_.pop_back();
    }
    frame_ptrs_.push_back(&frames_.back());
    init_frame(frames_.back(), base_k_ + frames_.size() - 1);
  }
  return frames_[k - base_k_];
}

Engine::Frame* Engine::frame_at(std::uint64_t k) {
  const std::uint64_t idx = k - base_k_;  // wraps for k < base_k_
  if (idx >= frame_ptrs_.size()) return nullptr;
  return frame_ptrs_[idx];
}

const Engine::Frame* Engine::frame_at(std::uint64_t k) const {
  const std::uint64_t idx = k - base_k_;  // wraps for k < base_k_
  if (idx >= frame_ptrs_.size()) return nullptr;
  return frame_ptrs_[idx];
}

void Engine::set_external(NodeId n, std::uint64_t k, TimePoint value) {
  const Node& node = graph_->node(n);
  if (node.kind != NodeKind::kInput && node.kind != NodeKind::kExternal)
    throw Error("tdg::Engine: set_external on computed node '" + node.name +
                "'");
  Frame& f = ensure_frame(k);
  if (f.known[static_cast<std::size_t>(n)])
    throw Error("tdg::Engine: instance (" + node.name + ", " +
                std::to_string(k) + ") already known");
  mark_known(f, n, k, mp::Scalar::from_time(value));
  resolve_dependents(f, n, k);
  drain();
}

void Engine::set_attrs(model::SourceId s, std::uint64_t k,
                       const model::TokenAttrs& attrs) {
  if (s < 0 || static_cast<std::size_t>(s) >= n_sources_)
    throw Error("tdg::Engine: set_attrs with bad source id");
  Frame& f = ensure_frame(k);
  if (f.attr_known[static_cast<std::size_t>(s)]) return;  // idempotent
  f.attrs[static_cast<std::size_t>(s)] = attrs;
  f.attr_known[static_cast<std::size_t>(s)] = 1;
  for (const NodeId dst : prog_.attr_dsts_by_source[static_cast<std::size_t>(s)])
    decrement(f, dst, k);
  drain();
}

void Engine::mark_known(Frame& f, NodeId n, std::uint64_t k, mp::Scalar v) {
  f.value[static_cast<std::size_t>(n)] = v;
  f.known[static_cast<std::size_t>(n)] = 1;
  ++f.known_count;
  const std::uint8_t flags = node_flags_[static_cast<std::size_t>(n)];
  if (flags == 0) return;  // common case: no observer on this node
  if (flags & kRecords) flush_instants(n);
  if ((flags & kHasCallback) && v.is_finite())
    callbacks_[static_cast<std::size_t>(n)](k, v.to_time());
}

void Engine::flush_instants(NodeId n) {
  MAXEV_FAULT_POINT("engine.flush");
  trace::InstantSeries& series = *record_series_[static_cast<std::size_t>(n)];
  while (true) {
    const Frame* f = frame_at(next_flush_[static_cast<std::size_t>(n)]);
    if (f == nullptr || !f->known[static_cast<std::size_t>(n)]) break;
    const mp::Scalar v = f->value[static_cast<std::size_t>(n)];
    if (v.is_finite()) series.push(v.to_time());
    ++next_flush_[static_cast<std::size_t>(n)];
  }
}

void Engine::decrement(Frame& f, NodeId n, std::uint64_t k) {
  if (f.known[static_cast<std::size_t>(n)]) return;
  if (--f.pending[static_cast<std::size_t>(n)] == 0)
    worklist_.push_back({n, k});
}

void Engine::resolve_dependents(Frame& f, NodeId n, std::uint64_t k) {
  // f serves every same-frame dependent without a lookup — except when n
  // carries an on_known callback, whose retain-floor raise may have pruned
  // iteration k re-entrantly during mark_known: re-fetch, and a null fk
  // means the frame was fully known, so its dependents have no pending
  // count left to decrement.
  Frame* fk = node_flags_[static_cast<std::size_t>(n)] & kHasCallback
                  ? frame_at(k)
                  : &f;
  for (std::int32_t i = prog_.out_arc_offsets[static_cast<std::size_t>(n)];
       i < prog_.out_arc_offsets[static_cast<std::size_t>(n) + 1]; ++i) {
    const auto s = static_cast<std::size_t>(i);
    const std::uint32_t lag = prog_.out_lag[s];
    if (lag == 0) {
      if (fk != nullptr) decrement(*fk, prog_.out_dst[s], k);
      continue;
    }
    const std::uint64_t kk = k + lag;
    // If the target frame does not exist yet, its init will see this
    // instance as already known and not count it.
    if (Frame* tf = frame_at(kk)) decrement(*tf, prog_.out_dst[s], kk);
  }
}

void Engine::drain() {
  if (draining_) return;  // single drain loop; nested calls just enqueue
  draining_ = true;
  while (!worklist_.empty()) {
    auto [n, k] = worklist_.back();
    worklist_.pop_back();
    compute(n, k);
  }
  draining_ = false;
  prune();
}

void Engine::compute(NodeId n, std::uint64_t k) {
  Frame& f = *frame_at(k);
  if (f.known[static_cast<std::size_t>(n)]) return;

  // Every prerequisite is resolved: ⊕ over arcs of src ⊗ (composed segment
  // weights), emitting busy intervals as segment positions are determined
  // (the paper's observation time). Loads are evaluated exactly once.
  //
  // MIRRORED BY BatchEngine::compute_one (src/tdg/batch_engine.cpp): the
  // batched==solo bit-identity guarantee requires any arithmetic change
  // here to be applied there too (and to its full-front fast path for the
  // pure-fixed case).
  mp::Scalar acc = mp::Scalar::eps();
  for (std::int32_t i = prog_.in_arc_offsets[static_cast<std::size_t>(n)];
       i < prog_.in_arc_offsets[static_cast<std::size_t>(n) + 1]; ++i) {
    const auto s = static_cast<std::size_t>(i);
    const std::int32_t gi = prog_.in_guard[s];
    if (gi >= 0 &&
        !prog_.guards[static_cast<std::size_t>(gi)](
            f.attrs[static_cast<std::size_t>(prog_.in_attr_source[s])], k))
      continue;
    const std::uint32_t lag = prog_.in_lag[s];
    mp::Scalar cursor;
    if (lag == 0) {  // same-frame source: skip the frame lookup
      cursor = f.value[static_cast<std::size_t>(prog_.in_src[s])];
    } else if (lag > k) {
      cursor = mp::Scalar::e();  // simulation origin
    } else {
      cursor =
          frame_at(k - lag)->value[static_cast<std::size_t>(prog_.in_src[s])];
    }
    ++arc_terms_;
    if (cursor.is_eps()) continue;  // guarded-off upstream
    const std::int32_t po = prog_.in_prog_off[s];
    if (po < 0) {
      cursor = cursor * prog_.in_fixed[s];  // pure delay, pre-folded
    } else {
      const model::TokenAttrs& attrs =
          f.attrs[static_cast<std::size_t>(prog_.in_attr_source[s])];
      const auto end = static_cast<std::size_t>(po + prog_.in_prog_len[s]);
      for (auto j = static_cast<std::size_t>(po); j < end; ++j) {
        if (!prog_.op_exec[j]) {
          cursor = cursor * prog_.op_fixed[j];
          continue;
        }
        const auto li = static_cast<std::size_t>(prog_.op_load[j]);
        std::int64_t ops;
        std::int64_t d_ps;
        if (opts_.opcode_dispatch && prog_.op_const_dps[j] >= 0) {
          // RateConstant: both the ops count and the whole duration were
          // folded at compile time (Program::compile_ops).
          ops = prog_.load_ops.a[li];
          d_ps = prog_.op_const_dps[j];
        } else {
          ops = opts_.opcode_dispatch
                    ? ops::eval_load(prog_.load_ops, li, attrs, k, prog_.loads)
                    : prog_.loads[li](attrs, k);
          // ResourceDesc::duration_for(ops), inlined with the pre-resolved
          // rate constant (identical arithmetic, hence identical instants).
          d_ps = ops <= 0 ? 0
                          : static_cast<std::int64_t>(std::llround(
                                static_cast<double>(ops) / prog_.op_rate[j] *
                                1e12));
        }
        const mp::Scalar end_pos =
            cursor * mp::Scalar::from_duration(Duration::ps(d_ps));
        if (op_trace_[j] != nullptr) {
          op_trace_[j]->push(cursor.to_time(), end_pos.to_time(), ops,
                             op_label_[j]);
        }
        cursor = end_pos;
      }
    }
    acc = acc + cursor;
  }

  ++computed_;
  mark_known(f, n, k, acc);
  resolve_dependents(f, n, k);
}

void Engine::prune() {
  const std::size_t window = static_cast<std::size_t>(graph_->max_lag()) + 1;
  // Hysteresis: batch reclamation instead of churning one frame at a time.
  if (frames_.size() <= window + 8) return;
  // The retain margin keeps a trailing band of fully-known frames below the
  // floor alive (the adaptive backend's detection/seed window).
  const std::uint64_t floor =
      retain_floor_ > retain_margin_ ? retain_floor_ - retain_margin_ : 0;
  while (frames_.size() > window && base_k_ < floor) {
    bool droppable = true;
    for (std::size_t i = 0; i <= graph_->max_lag() && droppable; ++i)
      droppable = frames_[i].known_count == n_nodes_;
    if (!droppable) break;
    frame_pool_.push_back(std::move(frames_.front()));
    frames_.pop_front();
    frame_ptrs_.erase(frame_ptrs_.begin());  // window-sized vector, cheap
    ++base_k_;
  }
}

std::optional<TimePoint> Engine::value(NodeId n, std::uint64_t k) const {
  const Frame* f = frame_at(k);
  if (f == nullptr || !f->known[static_cast<std::size_t>(n)] ||
      !f->value[static_cast<std::size_t>(n)].is_finite())
    return std::nullopt;
  return f->value[static_cast<std::size_t>(n)].to_time();
}

std::optional<model::TokenAttrs> Engine::attrs_of(model::SourceId s,
                                                  std::uint64_t k) const {
  if (s < 0 || static_cast<std::size_t>(s) >= n_sources_) return std::nullopt;
  const Frame* f = frame_at(k);
  if (f == nullptr || !f->attr_known[static_cast<std::size_t>(s)])
    return std::nullopt;
  return f->attrs[static_cast<std::size_t>(s)];
}

void Engine::set_retain_floor(std::uint64_t k) {
  retain_floor_ = std::max(retain_floor_, k);
  prune();
}

void Engine::set_retain_margin(std::uint64_t frames) {
  retain_margin_ = std::max(retain_margin_, frames);
}

std::optional<mp::Scalar> Engine::scalar_value(NodeId n,
                                               std::uint64_t k) const {
  const Frame* f = frame_at(k);
  if (f == nullptr || !f->known[static_cast<std::size_t>(n)])
    return std::nullopt;
  return f->value[static_cast<std::size_t>(n)];
}

const mp::Scalar* Engine::complete_row(std::uint64_t k) const {
  const Frame* f = frame_at(k);
  if (f == nullptr || f->known_count != n_nodes_) return nullptr;
  return f->value.data();
}

Engine::HistoryWindow Engine::snapshot(std::uint64_t first_k,
                                       std::uint64_t count) const {
  HistoryWindow w;
  w.first_k = first_k;
  w.n_nodes = n_nodes_;
  w.n_sources = n_sources_;
  w.values.reserve(static_cast<std::size_t>(count) * n_nodes_);
  w.attrs.reserve(static_cast<std::size_t>(count) * n_sources_);
  w.attr_known.reserve(static_cast<std::size_t>(count) * n_sources_);
  for (std::uint64_t k = first_k; k < first_k + count; ++k) {
    const Frame* f = frame_at(k);
    if (f == nullptr || f->known_count != n_nodes_)
      throw Error("tdg::Engine: snapshot of iteration " + std::to_string(k) +
                  " — frame not resident or not fully known");
    w.values.insert(w.values.end(), f->value.begin(), f->value.end());
    w.attrs.insert(w.attrs.end(), f->attrs.begin(), f->attrs.end());
    w.attr_known.insert(w.attr_known.end(), f->attr_known.begin(),
                        f->attr_known.end());
  }
  return w;
}

void Engine::seed_history(const HistoryWindow& w) {
  if (!frames_.empty() || base_k_ != 0 || computed_ != 0)
    throw Error("tdg::Engine: seed_history requires a fresh engine");
  if (w.n_nodes != n_nodes_ || w.n_sources != n_sources_)
    throw Error("tdg::Engine: seed_history window shape mismatch");
  const std::size_t count = w.frames();
  if (count < std::max<std::size_t>(graph_->max_lag(), 1))
    throw Error("tdg::Engine: seed_history window shorter than the graph's "
                "max lag");
  base_k_ = w.first_k;
  for (std::size_t i = 0; i < count; ++i) {
    Frame f;
    f.value.assign(w.values.begin() + static_cast<std::ptrdiff_t>(i * n_nodes_),
                   w.values.begin() +
                       static_cast<std::ptrdiff_t>((i + 1) * n_nodes_));
    f.known.assign(n_nodes_, 1);
    f.pending.assign(n_nodes_, 0);
    f.attrs.assign(
        w.attrs.begin() + static_cast<std::ptrdiff_t>(i * n_sources_),
        w.attrs.begin() + static_cast<std::ptrdiff_t>((i + 1) * n_sources_));
    f.attr_known.assign(
        w.attr_known.begin() + static_cast<std::ptrdiff_t>(i * n_sources_),
        w.attr_known.begin() +
            static_cast<std::ptrdiff_t>((i + 1) * n_sources_));
    f.known_count = n_nodes_;
    frames_.push_back(std::move(f));
    frame_ptrs_.push_back(&frames_.back());
  }
  // Seeded history is already observed — never re-flush it into the sinks.
  next_flush_.assign(n_nodes_, w.first_k + count);
  retain_floor_ = w.first_k;
  complete_scan_ = w.first_k;
}

void Engine::on_known(NodeId n,
                      std::function<void(std::uint64_t, TimePoint)> cb) {
  if (n < 0 || static_cast<std::size_t>(n) >= callbacks_.size())
    throw Error("tdg::Engine: on_known with bad node id");
  callbacks_[static_cast<std::size_t>(n)] = std::move(cb);
  if (callbacks_[static_cast<std::size_t>(n)]) {
    node_flags_[static_cast<std::size_t>(n)] |= kHasCallback;
  } else {
    node_flags_[static_cast<std::size_t>(n)] &=
        static_cast<std::uint8_t>(~kHasCallback);
  }
}

}  // namespace maxev::tdg
