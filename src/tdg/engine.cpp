#include "tdg/engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace maxev::tdg {

Engine::Engine(const Graph& g, Options opts) : graph_(&g), opts_(opts) {
  if (!g.frozen()) throw DescriptionError("tdg::Engine: graph must be frozen");

  n_sources_ = 1;
  if (g.desc() != nullptr)
    n_sources_ = std::max<std::size_t>(1, g.desc()->sources().size());
  for (const Arc& a : g.arcs())
    n_sources_ = std::max(n_sources_, static_cast<std::size_t>(a.attr_source) + 1);

  callbacks_.resize(g.node_count());
  next_flush_.assign(g.node_count(), 0);

  arc_needs_attrs_.resize(g.arc_count(), 0);
  attr_arcs_by_source_.resize(n_sources_);
  for (std::size_t i = 0; i < g.arc_count(); ++i) {
    const Arc& a = g.arcs()[i];
    bool needs = static_cast<bool>(a.guard);
    for (const Segment& s : a.segments) needs = needs || s.is_exec();
    arc_needs_attrs_[i] = needs ? 1 : 0;
    if (needs) {
      attr_arcs_by_source_[static_cast<std::size_t>(a.attr_source)].push_back(
          static_cast<std::int32_t>(i));
    }
  }

  // Resolve sinks once (map lookups are off the hot path).
  record_series_.assign(g.node_count(), nullptr);
  if (opts_.instant_sink != nullptr) {
    for (NodeId n = 0; n < static_cast<NodeId>(g.node_count()); ++n) {
      const Node& node = g.node(n);
      if (!node.record_series.empty())
        record_series_[n] = &opts_.instant_sink->series(node.record_series);
    }
  }
  if (opts_.usage_sink != nullptr && g.desc() != nullptr) {
    for (const auto& r : g.desc()->resources())
      usage_by_resource_.push_back(&opts_.usage_sink->trace(r.name));
  }
}

void Engine::init_frame(Frame& f, std::uint64_t k) {
  std::fill(f.value.begin(), f.value.end(), mp::Scalar::eps());
  std::fill(f.known.begin(), f.known.end(), std::uint8_t{0});
  std::fill(f.attr_known.begin(), f.attr_known.end(), std::uint8_t{0});
  f.known_count = 0;

  const auto& arcs = graph_->arcs();
  for (NodeId n = 0; n < static_cast<NodeId>(graph_->node_count()); ++n) {
    const NodeKind kind = graph_->node(n).kind;
    if (kind == NodeKind::kInput || kind == NodeKind::kExternal) {
      f.pending[n] = -1;  // externally fed, never computed
      continue;
    }
    std::int32_t p = 0;
    for (std::int32_t ai : graph_->in_arcs(n)) {
      const Arc& a = arcs[static_cast<std::size_t>(ai)];
      if (arc_needs_attrs_[static_cast<std::size_t>(ai)]) ++p;  // attrs unset
      if (a.lag > k) continue;  // pre-history: simulation origin, resolved
      const Frame* sf = frame_at(k - a.lag);
      if (sf == nullptr || !sf->known[a.src]) ++p;
    }
    f.pending[n] = p;
    if (p == 0) worklist_.push_back({n, k});
  }
}

Engine::Frame& Engine::ensure_frame(std::uint64_t k) {
  if (k < base_k_)
    throw Error("tdg::Engine: iteration " + std::to_string(k) +
                " already pruned");
  while (k >= base_k_ + frames_.size()) {
    if (frame_pool_.empty()) {
      Frame f;
      f.value.resize(graph_->node_count());
      f.known.resize(graph_->node_count());
      f.pending.resize(graph_->node_count());
      f.attr_known.resize(n_sources_);
      f.attrs.resize(n_sources_);
      frames_.push_back(std::move(f));
    } else {
      frames_.push_back(std::move(frame_pool_.back()));
      frame_pool_.pop_back();
    }
    init_frame(frames_.back(), base_k_ + frames_.size() - 1);
  }
  return frames_[k - base_k_];
}

Engine::Frame* Engine::frame_at(std::uint64_t k) {
  if (k < base_k_ || k >= base_k_ + frames_.size()) return nullptr;
  return &frames_[k - base_k_];
}

const Engine::Frame* Engine::frame_at(std::uint64_t k) const {
  if (k < base_k_ || k >= base_k_ + frames_.size()) return nullptr;
  return &frames_[k - base_k_];
}

void Engine::set_external(NodeId n, std::uint64_t k, TimePoint value) {
  const Node& node = graph_->node(n);
  if (node.kind != NodeKind::kInput && node.kind != NodeKind::kExternal)
    throw Error("tdg::Engine: set_external on computed node '" + node.name +
                "'");
  Frame& f = ensure_frame(k);
  if (f.known[n])
    throw Error("tdg::Engine: instance (" + node.name + ", " +
                std::to_string(k) + ") already known");
  mark_known(f, n, k, mp::Scalar::from_time(value));
  resolve_dependents(n, k);
  drain();
}

void Engine::set_attrs(model::SourceId s, std::uint64_t k,
                       const model::TokenAttrs& attrs) {
  if (s < 0 || static_cast<std::size_t>(s) >= n_sources_)
    throw Error("tdg::Engine: set_attrs with bad source id");
  Frame& f = ensure_frame(k);
  if (f.attr_known[s]) return;  // idempotent (several inputs, one source)
  f.attrs[s] = attrs;
  f.attr_known[s] = 1;
  const auto& arcs = graph_->arcs();
  for (std::int32_t ai : attr_arcs_by_source_[static_cast<std::size_t>(s)])
    decrement(f, arcs[static_cast<std::size_t>(ai)].dst, k);
  drain();
}

void Engine::mark_known(Frame& f, NodeId n, std::uint64_t k, mp::Scalar v) {
  f.value[n] = v;
  f.known[n] = 1;
  ++f.known_count;
  if (record_series_[n] != nullptr) flush_instants(n);
  if (callbacks_[n] && v.is_finite()) callbacks_[n](k, v.to_time());
}

void Engine::flush_instants(NodeId n) {
  trace::InstantSeries& series = *record_series_[n];
  while (true) {
    const Frame* f = frame_at(next_flush_[n]);
    if (f == nullptr || !f->known[n]) break;
    const mp::Scalar v = f->value[n];
    if (v.is_finite()) series.push(v.to_time());
    ++next_flush_[n];
  }
}

void Engine::decrement(Frame& f, NodeId n, std::uint64_t k) {
  if (f.known[n]) return;
  if (--f.pending[n] == 0) worklist_.push_back({n, k});
}

void Engine::resolve_dependents(NodeId n, std::uint64_t k) {
  const auto& arcs = graph_->arcs();
  for (std::int32_t ai : graph_->out_arcs(n)) {
    const Arc& a = arcs[static_cast<std::size_t>(ai)];
    const std::uint64_t kk = k + a.lag;
    // If the target frame does not exist yet, its init will see this
    // instance as already known and not count it.
    if (Frame* tf = frame_at(kk)) decrement(*tf, a.dst, kk);
  }
}

void Engine::drain() {
  if (draining_) return;  // single drain loop; nested calls just enqueue
  draining_ = true;
  while (!worklist_.empty()) {
    auto [n, k] = worklist_.back();
    worklist_.pop_back();
    compute(n, k);
  }
  draining_ = false;
  prune();
}

void Engine::compute(NodeId n, std::uint64_t k) {
  Frame& f = *frame_at(k);
  if (f.known[n]) return;

  // Every prerequisite is resolved: ⊕ over arcs of src ⊗ (composed segment
  // weights), emitting busy intervals as segment positions are determined
  // (the paper's observation time). Loads are evaluated exactly once.
  mp::Scalar acc = mp::Scalar::eps();
  const model::ArchitectureDesc* desc = graph_->desc();
  const auto& arcs = graph_->arcs();
  for (std::int32_t ai : graph_->in_arcs(n)) {
    const Arc& a = arcs[static_cast<std::size_t>(ai)];
    const model::TokenAttrs& attrs = f.attrs[a.attr_source];
    if (a.guard && !a.guard(attrs, k)) continue;
    mp::Scalar cursor;
    if (a.lag > k) {
      cursor = mp::Scalar::e();  // simulation origin
    } else {
      cursor = frame_at(k - a.lag)->value[a.src];
    }
    ++arc_terms_;
    if (cursor.is_eps()) continue;  // guarded-off upstream
    for (const Segment& seg : a.segments) {
      if (seg.is_exec()) {
        const std::int64_t ops = seg.load(attrs, k);
        const Duration d = desc->resources()[seg.resource].duration_for(ops);
        const mp::Scalar end = cursor * mp::Scalar::from_duration(d);
        if (!usage_by_resource_.empty() && !seg.label.empty()) {
          usage_by_resource_[static_cast<std::size_t>(seg.resource)]->add(
              trace::BusyInterval{cursor.to_time(), end.to_time(), ops,
                                  seg.label});
        }
        cursor = end;
      } else if (!seg.fixed.is_zero()) {
        cursor = cursor * mp::Scalar::from_duration(seg.fixed);
      }
    }
    acc = acc + cursor;
  }

  ++computed_;
  mark_known(f, n, k, acc);
  resolve_dependents(n, k);
}

void Engine::prune() {
  const std::size_t window = static_cast<std::size_t>(graph_->max_lag()) + 1;
  // Hysteresis: batch reclamation instead of churning one frame at a time.
  if (frames_.size() <= window + 8) return;
  while (frames_.size() > window && base_k_ < retain_floor_) {
    bool droppable = true;
    for (std::size_t i = 0; i <= graph_->max_lag() && droppable; ++i)
      droppable = frames_[i].known_count == graph_->node_count();
    if (!droppable) break;
    frame_pool_.push_back(std::move(frames_.front()));
    frames_.pop_front();
    ++base_k_;
  }
}

std::optional<TimePoint> Engine::value(NodeId n, std::uint64_t k) const {
  const Frame* f = frame_at(k);
  if (f == nullptr || !f->known[n] || !f->value[n].is_finite())
    return std::nullopt;
  return f->value[n].to_time();
}

std::optional<model::TokenAttrs> Engine::attrs_of(model::SourceId s,
                                                  std::uint64_t k) const {
  if (s < 0 || static_cast<std::size_t>(s) >= n_sources_) return std::nullopt;
  const Frame* f = frame_at(k);
  if (f == nullptr || !f->attr_known[s]) return std::nullopt;
  return f->attrs[s];
}

void Engine::set_retain_floor(std::uint64_t k) {
  retain_floor_ = std::max(retain_floor_, k);
  prune();
}

void Engine::on_known(NodeId n,
                      std::function<void(std::uint64_t, TimePoint)> cb) {
  if (n < 0 || static_cast<std::size_t>(n) >= callbacks_.size())
    throw Error("tdg::Engine: on_known with bad node id");
  callbacks_[n] = std::move(cb);
}

}  // namespace maxev::tdg
