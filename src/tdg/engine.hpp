#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "maxplus/scalar.hpp"
#include "model/token.hpp"
#include "tdg/graph.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"

/// \file engine.hpp
/// The ComputeInstant() machine (paper Section III-C / IV).
///
/// The engine evaluates the temporal dependency graph incrementally, in zero
/// simulated time: whenever an external value arrives — an input offer u(k),
/// or the actual completion instant of a boundary output — every instant
/// that becomes determined is computed by propagation. Iterations pipeline:
/// iteration k+1 can start (and largely complete) while an output of
/// iteration k still waits for a slow environment, exactly as the simulated
/// processes would.
///
/// Instances are identified by (node, k). A value is computed exactly once:
///
///   value(n, k) = ⊕ over in-arcs a with guard true of
///                 value(a.src, k - a.lag) ⊗ weight_a(k)
///
/// with value(·, k<0) = e (simulation origin; see graph.hpp). Instants of
/// internal channels are recorded to the instant sink in iteration order;
/// execute segments emit busy intervals to the usage sink at their computed
/// positions — this is the paper's "observation time": full-resolution
/// resource usage with no simulator involvement.

namespace maxev::tdg {

class Engine {
 public:
  struct Options {
    trace::InstantTraceSet* instant_sink = nullptr;
    trace::UsageTraceSet* usage_sink = nullptr;
  };

  /// \pre g.frozen()
  explicit Engine(const Graph& g) : Engine(g, Options{}) {}
  Engine(const Graph& g, Options opts);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Feed an externally determined instant: an input offer (kInput nodes)
  /// or an actual boundary completion (kExternal nodes). Triggers
  /// propagation. Each (node, k) may be fed exactly once.
  void set_external(NodeId n, std::uint64_t k, TimePoint value);

  /// Provide the token attributes of source \p s for iteration \p k
  /// (required before any data-dependent weight of that iteration can be
  /// evaluated). Triggers propagation.
  void set_attrs(model::SourceId s, std::uint64_t k,
                 const model::TokenAttrs& attrs);

  /// Value of an instance if already determined. Finite instants only —
  /// instances suppressed by guards (ε) report std::nullopt as well.
  [[nodiscard]] std::optional<TimePoint> value(NodeId n, std::uint64_t k) const;

  /// Token attributes of source \p s at iteration \p k, if set and retained.
  [[nodiscard]] std::optional<model::TokenAttrs> attrs_of(model::SourceId s,
                                                          std::uint64_t k) const;

  /// Keep iterations >= \p k alive even when fully known: external consumers
  /// (the equivalent model's emission processes) still read their values.
  /// Monotone; defaults to 0 (retain everything until raised).
  void set_retain_floor(std::uint64_t k);

  /// Register a callback fired whenever an instance of \p n becomes known
  /// with a finite value (computed or external). One callback per node.
  void on_known(NodeId n, std::function<void(std::uint64_t, TimePoint)> cb);

  /// \name Cost counters (Fig. 5's computation-complexity axis)
  /// @{
  [[nodiscard]] std::uint64_t instances_computed() const { return computed_; }
  [[nodiscard]] std::uint64_t arc_terms_evaluated() const { return arc_terms_; }
  /// @}

  [[nodiscard]] const Graph& graph() const { return *graph_; }

 private:
  struct Frame {
    std::vector<mp::Scalar> value;
    std::vector<std::uint8_t> known;
    /// Unresolved prerequisites per node: one per in-arc whose source
    /// instance is not yet known, plus one per attr-needing in-arc whose
    /// source attributes are not yet set. A node computes exactly when its
    /// count reaches zero — every arc is processed once per iteration
    /// (dependency-counting propagation, no readiness re-scans).
    std::vector<std::int32_t> pending;
    std::vector<std::uint8_t> attr_known;
    std::vector<model::TokenAttrs> attrs;
    std::size_t known_count = 0;
  };

  Frame& ensure_frame(std::uint64_t k);
  void init_frame(Frame& f, std::uint64_t k);
  [[nodiscard]] Frame* frame_at(std::uint64_t k);
  [[nodiscard]] const Frame* frame_at(std::uint64_t k) const;

  /// Compute instance (n, k) — all prerequisites resolved.
  void compute(NodeId n, std::uint64_t k);
  void mark_known(Frame& f, NodeId n, std::uint64_t k, mp::Scalar v);
  /// Decrement dependents' pending counts after (n, k) became known.
  void resolve_dependents(NodeId n, std::uint64_t k);
  void decrement(Frame& f, NodeId n, std::uint64_t k);
  void drain();
  void flush_instants(NodeId n);
  void prune();

  const Graph* graph_;
  Options opts_;
  std::size_t n_sources_ = 1;

  std::deque<Frame> frames_;
  std::vector<Frame> frame_pool_;  // recycled frames (hot path: no allocs)
  std::uint64_t base_k_ = 0;

  std::vector<std::pair<NodeId, std::uint64_t>> worklist_;
  bool draining_ = false;

  std::vector<std::function<void(std::uint64_t, TimePoint)>> callbacks_;
  std::vector<std::uint64_t> next_flush_;  // per node, for instant recording
  std::vector<std::uint8_t> arc_needs_attrs_;  // per arc (guard or exec load)

  // Precomputed hot-path tables:
  std::vector<std::vector<std::int32_t>> attr_arcs_by_source_;  // arc indices
  std::vector<trace::InstantSeries*> record_series_;  // per node (or null)
  std::vector<trace::UsageTrace*> usage_by_resource_;  // per resource

  std::uint64_t computed_ = 0;
  std::uint64_t arc_terms_ = 0;
  std::uint64_t retain_floor_ = 0;
};

}  // namespace maxev::tdg
