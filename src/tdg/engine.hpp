#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "maxplus/scalar.hpp"
#include "model/token.hpp"
#include "tdg/graph.hpp"
#include "tdg/program.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"

/// \file engine.hpp
/// The ComputeInstant() machine (paper Section III-C / IV).
///
/// The engine evaluates the temporal dependency graph incrementally, in zero
/// simulated time: whenever an external value arrives — an input offer u(k),
/// or the actual completion instant of a boundary output — every instant
/// that becomes determined is computed by propagation. Iterations pipeline:
/// iteration k+1 can start (and largely complete) while an output of
/// iteration k still waits for a slow environment, exactly as the simulated
/// processes would.
///
/// Instances are identified by (node, k). A value is computed exactly once:
///
///   value(n, k) = ⊕ over in-arcs a with guard true of
///                 value(a.src, k - a.lag) ⊗ weight_a(k)
///
/// with value(·, k<0) = e (simulation origin; see graph.hpp). Instants of
/// internal channels are recorded to the instant sink in iteration order;
/// execute segments emit busy intervals to the usage sink at their computed
/// positions — this is the paper's "observation time": full-resolution
/// resource usage with no simulator involvement.
///
/// Construction *compiles* the frozen graph into a flat, cache-friendly
/// program (tdg::Program, docs/DESIGN.md §7): CSR adjacency,
/// struct-of-arrays arc and segment tables with pre-folded fixed weights
/// and pre-resolved resource rates, guard/load std::functions hoisted into
/// dense side tables indexed only by the arcs that carry them, and
/// observation sinks resolved to direct columnar pointers with interned
/// labels. The propagation hot path never touches the Graph object, a map,
/// or a string. The same Program type also backs tdg::BatchEngine, which
/// evaluates one program for N composed instances at once.

namespace maxev::tdg {

class Engine {
 public:
  struct Options {
    /// Destination for computed channel instants (nodes with a non-empty
    /// record_series name). Null = instants are not recorded. Resolved to
    /// direct InstantSeries pointers at construction; consumed by
    /// mark_known()/flush_instants() on the propagation hot path.
    trace::InstantTraceSet* instant_sink = nullptr;
    /// Destination for execute-segment busy intervals ("observation
    /// time"). Null = usage is not recorded. Resolved to per-op columnar
    /// trace pointers with interned labels at construction; consumed by
    /// compute() as segment positions are determined.
    trace::UsageTraceSet* usage_sink = nullptr;
    /// Expected iteration count (tokens). When non-zero, instant series and
    /// usage traces are pre-sized at construction (series to this count,
    /// usage traces to observed-ops-per-iteration × this count) so
    /// observation-on runs do not reallocate mid-flight. Plumbed from
    /// core::EquivalentModel::Options / study::ScenarioOptions; 0 = no
    /// pre-sizing.
    std::size_t expected_iterations = 0;
    /// Evaluate loads through the program's opcode tables (tdg::ops,
    /// docs/DESIGN.md §14) instead of calling the hoisted std::function
    /// per arc term. Identical arithmetic by construction — this toggle
    /// exists for the differential equivalence sweep (tests/test_ops.cpp)
    /// and the closure-dispatch ablation baseline.
    bool opcode_dispatch = true;
  };

  /// \pre g.frozen()
  explicit Engine(const Graph& g) : Engine(g, Options{}) {}
  Engine(const Graph& g, Options opts);
  /// Reuse an already-compiled program for \p g (a cached
  /// core::CompiledAbstraction): skips Program::compile(). \p precompiled
  /// must have been compiled from exactly \p g; it is copied by value so the
  /// hot path keeps fixed-offset member access.
  Engine(const Graph& g, const Program& precompiled, Options opts);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Feed an externally determined instant: an input offer (kInput nodes)
  /// or an actual boundary completion (kExternal nodes). Triggers
  /// propagation. Each (node, k) may be fed exactly once.
  void set_external(NodeId n, std::uint64_t k, TimePoint value);

  /// Provide the token attributes of source \p s for iteration \p k
  /// (required before any data-dependent weight of that iteration can be
  /// evaluated). Triggers propagation.
  void set_attrs(model::SourceId s, std::uint64_t k,
                 const model::TokenAttrs& attrs);

  /// Value of an instance if already determined. Finite instants only —
  /// instances suppressed by guards (ε) report std::nullopt as well.
  [[nodiscard]] std::optional<TimePoint> value(NodeId n, std::uint64_t k) const;

  /// Raw max-plus scalar of an instance: distinguishes a determined-but-ε
  /// value (guard-suppressed) from an undetermined or pruned one
  /// (std::nullopt). The adaptive backend's periodicity detector reads
  /// whole frames through this.
  [[nodiscard]] std::optional<mp::Scalar> scalar_value(NodeId n,
                                                       std::uint64_t k) const;

  /// Dense row of all node values at iteration \p k, or nullptr unless the
  /// frame is retained and every node is determined. The per-iteration
  /// detector feed reads this instead of node_count() scalar_value calls;
  /// the pointer is invalidated by the next engine mutation.
  [[nodiscard]] const mp::Scalar* complete_row(std::uint64_t k) const;

  /// Token attributes of source \p s at iteration \p k, if set and retained.
  [[nodiscard]] std::optional<model::TokenAttrs> attrs_of(model::SourceId s,
                                                          std::uint64_t k) const;

  /// Keep iterations >= \p k alive even when fully known: external consumers
  /// (the equivalent model's emission processes) still read their values.
  /// Monotone; defaults to 0 (retain everything until raised).
  void set_retain_floor(std::uint64_t k);

  /// Additionally keep \p frames fully-known iterations *below* the retain
  /// floor alive. The adaptive backend needs a trailing history window (the
  /// detector's stability window plus the fast-forward seed) that the
  /// emission processes' floor raises would otherwise reclaim. Monotone.
  void set_retain_margin(std::uint64_t frames);

  /// Number of leading iterations that are fully determined: the largest c
  /// such that every node of every iteration k < c is known (ε counts as
  /// determined). Iterations at and above c may still be partially known —
  /// the pipeline frontier is ragged. Inline: the adaptive backend polls
  /// this at every kernel timestep, and the common no-progress call is one
  /// load and compare off the cursor.
  [[nodiscard]] std::uint64_t completed_iterations() const {
    // Frames below base_k_ were only reclaimed once fully known (prune()'s
    // droppable check), so the scan can start at the window base.
    std::uint64_t c = complete_scan_ > base_k_ ? complete_scan_ : base_k_;
    const std::uint64_t limit = base_k_ + frame_ptrs_.size();
    while (c < limit) {
      const Frame* f = frame_ptrs_[c - base_k_];
      if (f == nullptr || f->known_count != n_nodes_) break;
      ++c;
    }
    complete_scan_ = c;
    return c;
  }

  /// A contiguous window of fully-known frames, extracted for re-seeding a
  /// fresh engine (the adaptive fast-forward's verification run,
  /// docs/DESIGN.md §15).
  struct HistoryWindow {
    std::uint64_t first_k = 0;
    std::size_t n_nodes = 0;
    std::size_t n_sources = 0;
    std::vector<mp::Scalar> values;          ///< frame-major, n_nodes each
    std::vector<model::TokenAttrs> attrs;    ///< frame-major, n_sources each
    std::vector<std::uint8_t> attr_known;    ///< frame-major, n_sources each
    [[nodiscard]] std::size_t frames() const {
      return n_nodes == 0 ? 0 : values.size() / n_nodes;
    }
  };

  /// Copy frames [first_k, first_k + count) out of the live window. Every
  /// frame must be resident and fully known; \throws maxev::Error otherwise
  /// (raise the retain margin to guarantee residency).
  [[nodiscard]] HistoryWindow snapshot(std::uint64_t first_k,
                                       std::uint64_t count) const;

  /// Seed a *fresh* engine (no frames touched yet) with a window captured
  /// by snapshot(): the engine behaves as if iterations before
  /// first_k + count had been computed with exactly those values, and
  /// evaluation continues from there. The window must span at least the
  /// graph's max lag so later computations never reach past it. Seeded
  /// history is not re-flushed into the observation sinks.
  void seed_history(const HistoryWindow& window);

  /// Register a callback fired whenever an instance of \p n becomes known
  /// with a finite value (computed or external). One callback per node.
  void on_known(NodeId n, std::function<void(std::uint64_t, TimePoint)> cb);

  /// \name Cost counters (Fig. 5's computation-complexity axis)
  /// @{
  [[nodiscard]] std::uint64_t instances_computed() const { return computed_; }
  [[nodiscard]] std::uint64_t arc_terms_evaluated() const { return arc_terms_; }
  /// @}

  [[nodiscard]] const Graph& graph() const { return *graph_; }
  /// The compiled program (read-only): the adaptive certifier inspects its
  /// guard/load side tables.
  [[nodiscard]] const Program& program() const { return prog_; }

 private:
  struct Frame {
    std::vector<mp::Scalar> value;
    std::vector<std::uint8_t> known;
    /// Unresolved prerequisites per node: one per in-arc whose source
    /// instance is not yet known, plus one per attr-needing in-arc whose
    /// source attributes are not yet set. A node computes exactly when its
    /// count reaches zero — every arc is processed once per iteration
    /// (dependency-counting propagation, no readiness re-scans).
    std::vector<std::int32_t> pending;
    std::vector<std::uint8_t> attr_known;
    std::vector<model::TokenAttrs> attrs;
    std::size_t known_count = 0;
  };

  void init_from_program();
  void compile();

  Frame& ensure_frame(std::uint64_t k);
  void init_frame(Frame& f, std::uint64_t k);
  [[nodiscard]] Frame* frame_at(std::uint64_t k);
  [[nodiscard]] const Frame* frame_at(std::uint64_t k) const;

  /// Compute instance (n, k) — all prerequisites resolved.
  void compute(NodeId n, std::uint64_t k);
  void mark_known(Frame& f, NodeId n, std::uint64_t k, mp::Scalar v);
  /// Decrement dependents' pending counts after (n, k) became known; call
  /// right after mark_known with the same frame. Re-validates \p f itself
  /// when n carries an on_known callback (which may have pruned iteration k
  /// re-entrantly by raising the retain floor).
  void resolve_dependents(Frame& f, NodeId n, std::uint64_t k);
  void decrement(Frame& f, NodeId n, std::uint64_t k);
  void drain();
  void flush_instants(NodeId n);
  void prune();

  const Graph* graph_;
  Options opts_;
  std::size_t n_nodes_ = 0;
  std::size_t n_sources_ = 1;

  std::deque<Frame> frames_;
  /// frames_ mirrored as raw pointers (deque elements are address-stable):
  /// frame_at() is one bounds check + one load instead of deque block math.
  std::vector<Frame*> frame_ptrs_;
  std::vector<Frame> frame_pool_;  // recycled frames (hot path: no allocs)
  std::uint64_t base_k_ = 0;

  std::vector<std::pair<NodeId, std::uint64_t>> worklist_;
  bool draining_ = false;

  std::vector<std::function<void(std::uint64_t, TimePoint)>> callbacks_;
  std::vector<std::uint64_t> next_flush_;  // per node, for instant recording

  // ---- Compiled program (tdg::Program, shared type with BatchEngine) ------
  // Struct-of-arrays arc tables, *permuted into CSR slot order*: node n's
  // in-arcs occupy slots [in_arc_offsets[n], in_arc_offsets[n+1]) of the
  // in_* arrays, its out-arcs the matching slots of the out_* arrays — the
  // hot loops stream contiguous columns with no arc-id indirection. Held by
  // value: member access compiles to fixed offsets from `this`, same as the
  // pre-extraction flat members.
  Program prog_;

  // ---- Sink bindings (compile()-time resolution of prog_'s observation
  // metadata against this run's sinks) -------------------------------------
  /// Per-node hot flags (kRecords | kHasCallback): one byte instead of two
  /// pointer loads on every mark_known.
  std::vector<std::uint8_t> node_flags_;
  std::vector<trace::UsageTrace*> op_trace_;   // per op: exec sink or null
  std::vector<std::int32_t> op_label_;         // per op: interned label id
  std::vector<trace::InstantSeries*> record_series_;  // per node (or null)
  // --------------------------------------------------------------------------

  std::uint64_t computed_ = 0;
  std::uint64_t arc_terms_ = 0;
  std::uint64_t retain_floor_ = 0;
  std::uint64_t retain_margin_ = 0;
  /// Cursor for completed_iterations(): everything below is fully known.
  mutable std::uint64_t complete_scan_ = 0;
};

}  // namespace maxev::tdg
