#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "maxplus/scalar.hpp"
#include "model/token.hpp"
#include "tdg/graph.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"

/// \file engine.hpp
/// The ComputeInstant() machine (paper Section III-C / IV).
///
/// The engine evaluates the temporal dependency graph incrementally, in zero
/// simulated time: whenever an external value arrives — an input offer u(k),
/// or the actual completion instant of a boundary output — every instant
/// that becomes determined is computed by propagation. Iterations pipeline:
/// iteration k+1 can start (and largely complete) while an output of
/// iteration k still waits for a slow environment, exactly as the simulated
/// processes would.
///
/// Instances are identified by (node, k). A value is computed exactly once:
///
///   value(n, k) = ⊕ over in-arcs a with guard true of
///                 value(a.src, k - a.lag) ⊗ weight_a(k)
///
/// with value(·, k<0) = e (simulation origin; see graph.hpp). Instants of
/// internal channels are recorded to the instant sink in iteration order;
/// execute segments emit busy intervals to the usage sink at their computed
/// positions — this is the paper's "observation time": full-resolution
/// resource usage with no simulator involvement.
///
/// Construction *compiles* the frozen graph into a flat, cache-friendly
/// program (docs/DESIGN.md §7): CSR adjacency, struct-of-arrays arc and
/// segment tables with pre-folded fixed weights and pre-resolved resource
/// rates, guard/load std::functions hoisted into dense side tables indexed
/// only by the arcs that carry them, and observation sinks resolved to
/// direct columnar pointers with interned labels. The propagation hot path
/// never touches the Graph object, a map, or a string.

namespace maxev::tdg {

class Engine {
 public:
  struct Options {
    trace::InstantTraceSet* instant_sink = nullptr;
    trace::UsageTraceSet* usage_sink = nullptr;
    /// Expected iteration count (tokens). When non-zero, instant series and
    /// usage traces are pre-sized so observation-on runs do not reallocate
    /// mid-flight.
    std::size_t expected_iterations = 0;
  };

  /// \pre g.frozen()
  explicit Engine(const Graph& g) : Engine(g, Options{}) {}
  Engine(const Graph& g, Options opts);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Feed an externally determined instant: an input offer (kInput nodes)
  /// or an actual boundary completion (kExternal nodes). Triggers
  /// propagation. Each (node, k) may be fed exactly once.
  void set_external(NodeId n, std::uint64_t k, TimePoint value);

  /// Provide the token attributes of source \p s for iteration \p k
  /// (required before any data-dependent weight of that iteration can be
  /// evaluated). Triggers propagation.
  void set_attrs(model::SourceId s, std::uint64_t k,
                 const model::TokenAttrs& attrs);

  /// Value of an instance if already determined. Finite instants only —
  /// instances suppressed by guards (ε) report std::nullopt as well.
  [[nodiscard]] std::optional<TimePoint> value(NodeId n, std::uint64_t k) const;

  /// Token attributes of source \p s at iteration \p k, if set and retained.
  [[nodiscard]] std::optional<model::TokenAttrs> attrs_of(model::SourceId s,
                                                          std::uint64_t k) const;

  /// Keep iterations >= \p k alive even when fully known: external consumers
  /// (the equivalent model's emission processes) still read their values.
  /// Monotone; defaults to 0 (retain everything until raised).
  void set_retain_floor(std::uint64_t k);

  /// Register a callback fired whenever an instance of \p n becomes known
  /// with a finite value (computed or external). One callback per node.
  void on_known(NodeId n, std::function<void(std::uint64_t, TimePoint)> cb);

  /// \name Cost counters (Fig. 5's computation-complexity axis)
  /// @{
  [[nodiscard]] std::uint64_t instances_computed() const { return computed_; }
  [[nodiscard]] std::uint64_t arc_terms_evaluated() const { return arc_terms_; }
  /// @}

  [[nodiscard]] const Graph& graph() const { return *graph_; }

 private:
  struct Frame {
    std::vector<mp::Scalar> value;
    std::vector<std::uint8_t> known;
    /// Unresolved prerequisites per node: one per in-arc whose source
    /// instance is not yet known, plus one per attr-needing in-arc whose
    /// source attributes are not yet set. A node computes exactly when its
    /// count reaches zero — every arc is processed once per iteration
    /// (dependency-counting propagation, no readiness re-scans).
    std::vector<std::int32_t> pending;
    std::vector<std::uint8_t> attr_known;
    std::vector<model::TokenAttrs> attrs;
    std::size_t known_count = 0;
  };

  void compile();

  Frame& ensure_frame(std::uint64_t k);
  void init_frame(Frame& f, std::uint64_t k);
  [[nodiscard]] Frame* frame_at(std::uint64_t k);
  [[nodiscard]] const Frame* frame_at(std::uint64_t k) const;

  /// Compute instance (n, k) — all prerequisites resolved.
  void compute(NodeId n, std::uint64_t k);
  void mark_known(Frame& f, NodeId n, std::uint64_t k, mp::Scalar v);
  /// Decrement dependents' pending counts after (n, k) became known; call
  /// right after mark_known with the same frame. Re-validates \p f itself
  /// when n carries an on_known callback (which may have pruned iteration k
  /// re-entrantly by raising the retain floor).
  void resolve_dependents(Frame& f, NodeId n, std::uint64_t k);
  void decrement(Frame& f, NodeId n, std::uint64_t k);
  void drain();
  void flush_instants(NodeId n);
  void prune();

  const Graph* graph_;
  Options opts_;
  std::size_t n_nodes_ = 0;
  std::size_t n_sources_ = 1;

  std::deque<Frame> frames_;
  /// frames_ mirrored as raw pointers (deque elements are address-stable):
  /// frame_at() is one bounds check + one load instead of deque block math.
  std::vector<Frame*> frame_ptrs_;
  std::vector<Frame> frame_pool_;  // recycled frames (hot path: no allocs)
  std::uint64_t base_k_ = 0;

  std::vector<std::pair<NodeId, std::uint64_t>> worklist_;
  bool draining_ = false;

  std::vector<std::function<void(std::uint64_t, TimePoint)>> callbacks_;
  std::vector<std::uint64_t> next_flush_;  // per node, for instant recording

  // ---- Compiled program (see compile()) -----------------------------------
  // Struct-of-arrays arc tables, *permuted into CSR slot order*: node n's
  // in-arcs occupy slots [in_arc_offsets_[n], in_arc_offsets_[n+1]) of the
  // in_* arrays, its out-arcs the matching slots of the out_* arrays — the
  // hot loops stream contiguous columns with no arc-id indirection.
  std::vector<std::int32_t> in_arc_offsets_;   // n_nodes_ + 1
  std::vector<NodeId> in_src_;
  std::vector<std::uint32_t> in_lag_;
  std::vector<model::SourceId> in_attr_source_;
  std::vector<std::int32_t> in_guard_;     // index into guards_; -1 = none
  std::vector<std::int32_t> in_prog_off_;  // index into op tables; -1 = pure fixed
  std::vector<std::int32_t> in_prog_len_;
  std::vector<mp::Scalar> in_fixed_;       // pure-fixed arcs: pre-folded weight

  std::vector<std::int32_t> out_arc_offsets_;  // n_nodes_ + 1
  std::vector<NodeId> out_dst_;
  std::vector<std::uint32_t> out_lag_;

  // Per-node CSR over the *lagged* (lag >= 1) in-arcs only — the part of
  // frame initialization that depends on older frames; the static part
  // (attr prerequisites + same-frame arcs) is pre-counted so a fresh
  // frame's pending column is one memcpy plus a touch-up of the (few)
  // nodes that actually have history arcs.
  std::vector<std::int32_t> lagged_offsets_;   // n_nodes_ + 1
  std::vector<NodeId> lagged_src_;
  std::vector<std::uint32_t> lagged_lag_;
  std::vector<std::int32_t> static_pending_;   // -1 for externally fed nodes
  std::vector<NodeId> lagged_nodes_;           // nodes with >= 1 lagged in-arc
  std::vector<NodeId> always_ready_;           // static_pending == 0, no lagged arcs
  /// Per-node hot flags (kRecords | kHasCallback): one byte instead of two
  /// pointer loads on every mark_known.
  std::vector<std::uint8_t> node_flags_;

  // Segment program ops (arcs with execute segments); consecutive fixed
  // segments are pre-folded into single entries:
  std::vector<std::uint8_t> op_exec_;
  std::vector<mp::Scalar> op_fixed_;           // fixed entries
  std::vector<std::int32_t> op_load_;          // exec: index into loads_
  std::vector<double> op_rate_;                // exec: resource ops/second
  std::vector<trace::UsageTrace*> op_trace_;   // exec: sink or null
  std::vector<std::int32_t> op_label_;         // exec: interned label id

  // Hoisted std::function side tables (dense; indexed by the arcs/ops that
  // actually carry a guard or load):
  std::vector<GuardFn> guards_;
  std::vector<model::LoadFn> loads_;

  /// Per source: destination nodes of the attr-needing arcs (what set_attrs
  /// decrements).
  std::vector<std::vector<NodeId>> attr_dsts_by_source_;
  std::vector<trace::InstantSeries*> record_series_;  // per node (or null)
  // --------------------------------------------------------------------------

  std::uint64_t computed_ = 0;
  std::uint64_t arc_terms_ = 0;
  std::uint64_t retain_floor_ = 0;
};

}  // namespace maxev::tdg
