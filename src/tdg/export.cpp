#include "tdg/export.hpp"

#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace maxev::tdg {

std::string to_dot(const Graph& g) {
  std::string out = "digraph tdg {\n  rankdir=LR;\n";
  for (NodeId n = 0; n < static_cast<NodeId>(g.node_count()); ++n) {
    const Node& node = g.node(n);
    const char* shape = "ellipse";
    switch (node.kind) {
      case NodeKind::kInput: shape = "invtriangle"; break;
      case NodeKind::kOutput: shape = "doublecircle"; break;
      case NodeKind::kExternal: shape = "box"; break;
      case NodeKind::kPad: shape = "point"; break;
      case NodeKind::kInstant:
      case NodeKind::kCompletion: break;
    }
    out += format("  n%d [label=\"%s\", shape=%s];\n", n, node.name.c_str(),
                  shape);
  }
  for (const Arc& a : g.arcs()) {
    std::string label;
    for (const Segment& s : a.segments) {
      if (!label.empty()) label += "+";
      label += s.is_exec() ? s.label : s.fixed.to_string();
    }
    if (label.empty()) label = "e";
    if (a.lag > 0) label += format(" (k-%u)", a.lag);
    if (a.guard) label += " [?]";
    out += format("  n%d -> n%d [label=\"%s\"%s];\n", a.src, a.dst,
                  label.c_str(), a.lag > 0 ? ", style=dashed" : "");
  }
  out += "}\n";
  return out;
}

ExtractedSystem to_linear_system(const Graph& g, AttrsProvider attrs) {
  if (!g.frozen())
    throw DescriptionError("to_linear_system: graph must be frozen");
  if (!attrs) throw DescriptionError("to_linear_system: null attrs provider");

  ExtractedSystem ex{mp::LinearSystem{0, 0, 0}, {}, {}, {}};
  std::map<NodeId, std::size_t> state_index, input_index;
  for (NodeId n = 0; n < static_cast<NodeId>(g.node_count()); ++n) {
    if (g.node(n).kind == NodeKind::kInput) {
      input_index[n] = ex.input_nodes.size();
      ex.input_nodes.push_back(n);
    } else {
      state_index[n] = ex.state_nodes.size();
      ex.state_nodes.push_back(n);
      if (g.node(n).kind == NodeKind::kOutput) ex.output_nodes.push_back(n);
    }
  }
  const std::size_t nn = ex.state_nodes.size();
  const std::size_t np = std::max<std::size_t>(1, ex.input_nodes.size());
  const std::size_t nq = std::max<std::size_t>(1, ex.output_nodes.size());

  ex.system = mp::LinearSystem(nn, np, nq);
  ex.system.set_prehistory(mp::Scalar::e());  // simulation-origin convention

  // Group arcs by lag, splitting state-from-state and state-from-input.
  std::map<unsigned, std::vector<const Arc*>> a_by_lag, b_by_lag;
  for (const Arc& a : g.arcs()) {
    const bool from_input = g.node(a.src).kind == NodeKind::kInput;
    (from_input ? b_by_lag : a_by_lag)[a.lag].push_back(&a);
  }

  const Graph* gp = &g;
  for (auto& [lag, arcs] : a_by_lag) {
    ex.system.set_a(
        lag, [gp, arcs, attrs, state_index, nn](std::uint64_t k) {
          mp::Matrix m(nn, nn);
          for (const Arc* a : arcs) {
            const model::TokenAttrs at = attrs(a->attr_source, k);
            if (a->guard && !a->guard(at, k)) continue;
            const Duration w = gp->arc_weight(*a, at, k);
            mp::Scalar& cell =
                m.at(state_index.at(a->dst), state_index.at(a->src));
            cell = cell + mp::Scalar::from_duration(w);
          }
          return m;
        });
  }
  for (auto& [lag, arcs] : b_by_lag) {
    ex.system.set_b(
        lag, [gp, arcs, attrs, state_index, input_index, nn,
              np](std::uint64_t k) {
          mp::Matrix m(nn, np);
          for (const Arc* a : arcs) {
            const model::TokenAttrs at = attrs(a->attr_source, k);
            if (a->guard && !a->guard(at, k)) continue;
            const Duration w = gp->arc_weight(*a, at, k);
            mp::Scalar& cell =
                m.at(state_index.at(a->dst), input_index.at(a->src));
            cell = cell + mp::Scalar::from_duration(w);
          }
          return m;
        });
  }

  // Y(k) = C X(k): select the output nodes.
  mp::Matrix c(nq, nn);
  for (std::size_t i = 0; i < ex.output_nodes.size(); ++i)
    c.at(i, state_index.at(ex.output_nodes[i])) = mp::Scalar::e();
  ex.system.set_c_const(0, std::move(c));

  return ex;
}

RatioGraph to_ratio_graph(const Graph& g, const AttrsProvider& attrs,
                          std::uint64_t sample_iterations) {
  if (!g.frozen())
    throw DescriptionError("to_ratio_graph: graph must be frozen");
  if (sample_iterations == 0)
    throw DescriptionError("to_ratio_graph: need at least one sample");

  RatioGraph out;
  out.nodes = g.node_count();
  out.arcs.reserve(g.arc_count());
  for (const Arc& a : g.arcs()) {
    double mean = 0.0;
    std::uint64_t used = 0;
    for (std::uint64_t k = 0; k < sample_iterations; ++k) {
      const model::TokenAttrs at =
          attrs ? attrs(a.attr_source, k) : model::TokenAttrs{};
      if (a.guard && !a.guard(at, k)) continue;
      mean += static_cast<double>(g.arc_weight(a, at, k).count());
      ++used;
    }
    if (used == 0) continue;  // arc always guarded off in the sample
    mean /= static_cast<double>(used);
    out.arcs.push_back({static_cast<std::size_t>(a.src),
                        static_cast<std::size_t>(a.dst), mean, a.lag});
  }
  return out;
}

mp::CycleRatioResult throughput_bound(const Graph& g,
                                      const AttrsProvider& attrs,
                                      std::uint64_t sample_iterations) {
  const RatioGraph rg = to_ratio_graph(g, attrs, sample_iterations);
  return mp::max_cycle_ratio(rg.nodes, rg.arcs);
}

}  // namespace maxev::tdg
