#pragma once

#include <string>
#include <vector>

#include "model/desc.hpp"
#include "tdg/graph.hpp"

/// \file derive.hpp
/// Automatic derivation of the temporal dependency graph from an
/// architecture description (the paper's conclusion names this as the tool
/// under development: "automatic generation of temporal dependency graphs").
///
/// Given the abstraction group (the set of functions to be replaced by the
/// equivalent model), derivation emits one node per evolution instant and
/// arcs that reproduce the paper's equations. For the didactic example of
/// Fig. 1 the derived (and folded) graph is exactly Fig. 3 / equations
/// (1)-(6), with provably redundant reader-ready terms elided (e.g. the
/// ⊕ xM4(k-1) term of equation (3), dominated by xM2(k) ⊗ Tj1(k) through
/// equation (1); the paper itself notes such redundancies).
///
/// Rules (see docs/DESIGN.md §3 for the operational contract they mirror):
///  * every channel with at least one endpoint in the group yields instant
///    node(s): x_ch for rendezvous, x_ch.w / x_ch.r for FIFOs;
///  * an input-boundary rendezvous adds an offer node u:ch (fed by the live
///    gated channel); an input-boundary FIFO write instant is external;
///  * an output-boundary channel yields a computed offer node; when the
///    environment can postpone completion (a sink with a consume delay, a
///    FIFO, or a simulated reader function) an external "actual" node
///    receives the live completion instant and carries the history;
///  * execute statements become completion nodes linked by weighted arcs
///    (fold_pass_through() then folds them into arc weights, Fig. 3 style);
///  * static-schedule gates: position 0 of a sequential resource gets an
///    explicit arc from the last scheduled function's completion (lag 1);
///    later positions get one from their predecessor's completion (lag 0)
///    unless the gate is implied by their first read; own-previous-iteration
///    readiness arcs are added only where not dominated (single-function
///    resources and concurrent resources).
///
/// Derivation requires group functions to read before their first execute or
/// write (so every duration has a token provenance) and rejects data-flow
/// cycles within the group.

namespace maxev::tdg {

/// Boundary metadata of a derived graph. Nodes are referenced by name so
/// the references survive fold/pad transforms (which rebuild the graph).
struct BoundaryInput {
  model::ChannelId channel = model::kInvalidId;
  bool fifo = false;
  std::string u_node;        ///< rendezvous: offer node (kInput)
  std::string x_node;        ///< rendezvous: completion node (computed; the gate value)
  std::string xw_node;       ///< fifo: external write-instant node
  std::string xr_node;       ///< fifo: computed read-instant node (virtual reader)
  model::SourceId provenance = 0;  ///< source whose attrs arrive with the token
};

struct BoundaryOutput {
  model::ChannelId channel = model::kInvalidId;
  bool fifo = false;
  std::string offer_node;     ///< computed write-offer node y (kOutput)
  std::string actual_node;    ///< external actual-completion node; empty when
                              ///< the offer provably equals the completion
                              ///< (always-ready sink on a rendezvous)
  std::string xr_actual_node; ///< fifo: external read-instant node
  model::SourceId provenance = 0;  ///< provenance of the emitted tokens
};

struct DerivedTdg {
  Graph graph;  ///< not frozen; apply fold/pad, then freeze()
  std::vector<BoundaryInput> inputs;
  std::vector<BoundaryOutput> outputs;
};

/// Derive the TDG of the given abstraction group.
/// \param group per-function flags; true = abstracted by the equivalent model.
/// \throws maxev::DescriptionError on rule violations (group splitting a
///         sequential resource, write/execute before first read, data cycles).
[[nodiscard]] DerivedTdg derive_tdg(const model::ArchitectureDesc& desc,
                                    const std::vector<bool>& group);

/// Convenience: abstract every function.
[[nodiscard]] DerivedTdg derive_full_tdg(const model::ArchitectureDesc& desc);

}  // namespace maxev::tdg
