#include "tdg/derive.hpp"

#include <optional>

#include "util/error.hpp"

namespace maxev::tdg {

namespace {

using model::ArchitectureDesc;
using model::ChannelEndpoints;
using model::ChannelId;
using model::ChannelKind;
using model::FunctionId;
using model::kInvalidId;
using model::ResourcePolicy;
using model::SourceId;
using model::StatementDesc;
using model::StatementKind;

/// Per-channel node ids created for the derivation.
struct ChannelNodes {
  NodeId u = kNoNode;        ///< input offer (rendezvous input)
  NodeId x = kNoNode;        ///< rendezvous completion instant
  NodeId y = kNoNode;        ///< output offer
  NodeId actual = kNoNode;   ///< external actual completion (output)
  NodeId xw = kNoNode;       ///< fifo write instant
  NodeId xr = kNoNode;       ///< fifo read instant
  NodeId xr_actual = kNoNode;  ///< fifo external read instant (output fifo)
};

/// Same rule as ModelRuntime::gate_implied_by_first_read: the schedule gate
/// is implied when f's first statement reads the predecessor's final write.
bool gate_implied_by_first_read(const ArchitectureDesc& desc, FunctionId f,
                                FunctionId pred) {
  const auto& fn = desc.functions()[f];
  const StatementDesc& first = fn.body.front();
  if (first.kind != StatementKind::kRead) return false;
  const ChannelEndpoints& ep = desc.endpoints(first.channel);
  if (ep.writer_fn != pred) return false;
  const auto& pf = desc.functions()[pred];
  return ep.writer_stmt == static_cast<std::int32_t>(pf.body.size()) - 1;
}

}  // namespace

DerivedTdg derive_tdg(const model::ArchitectureDesc& desc,
                      const std::vector<bool>& group_in) {
  if (!desc.validated())
    throw DescriptionError("derive_tdg: description must be validated");
  std::vector<bool> group = group_in;
  group.resize(desc.functions().size(), false);
  if (std::none_of(group.begin(), group.end(), [](bool b) { return b; }))
    throw DescriptionError("derive_tdg: empty abstraction group");

  // Rule: a sequential resource's schedule is a single timing domain — the
  // group must contain all of its functions or none of them.
  for (model::ResourceId r = 0;
       r < static_cast<model::ResourceId>(desc.resources().size()); ++r) {
    const auto& sched = desc.schedule(r);
    if (sched.empty()) continue;
    bool any = false, all = true;
    for (FunctionId f : sched) {
      any = any || group[f];
      all = all && group[f];
    }
    if (any && !all &&
        desc.resources()[r].policy == ResourcePolicy::kSequentialCyclic) {
      throw DescriptionError(
          "derive_tdg: abstraction group splits sequential resource '" +
          desc.resources()[r].name +
          "' — instants would depend on unsimulated schedule state");
    }
  }

  // Group functions must read before executing or writing (loads need a
  // token provenance; the paper's functions all begin with a read).
  for (FunctionId f = 0; f < static_cast<FunctionId>(desc.functions().size());
       ++f) {
    if (!group[f]) continue;
    if (desc.functions()[f].body.front().kind != StatementKind::kRead)
      throw DescriptionError("derive_tdg: function '" +
                             desc.functions()[f].name +
                             "' must read before executing or writing");
  }

  // Token provenance: which source's attributes parametrize each statement.
  // Fixpoint over all functions (tokens are forwarded unchanged).
  std::vector<std::optional<SourceId>> ch_prov(desc.channels().size());
  for (SourceId s = 0; s < static_cast<SourceId>(desc.sources().size()); ++s)
    ch_prov[desc.sources()[s].channel] = s;
  // stmt_prov[f][j]: provenance of the function's current token when
  // statement j runs.
  std::vector<std::vector<std::optional<SourceId>>> stmt_prov(
      desc.functions().size());
  for (std::size_t f = 0; f < desc.functions().size(); ++f)
    stmt_prov[f].resize(desc.functions()[f].body.size());
  bool changed = true;
  for (std::size_t pass = 0; changed && pass <= desc.functions().size();
       ++pass) {
    changed = false;
    for (FunctionId f = 0;
         f < static_cast<FunctionId>(desc.functions().size()); ++f) {
      std::optional<SourceId> cur;
      const auto& body = desc.functions()[f].body;
      for (std::size_t j = 0; j < body.size(); ++j) {
        const StatementDesc& s = body[j];
        if (s.kind == StatementKind::kRead) cur = ch_prov[s.channel];
        if (cur && !stmt_prov[f][j]) {
          stmt_prov[f][j] = cur;
          changed = true;
        }
        if (s.kind == StatementKind::kWrite && cur &&
            !ch_prov[s.channel]) {
          ch_prov[s.channel] = cur;
          changed = true;
        }
      }
    }
  }
  for (FunctionId f = 0; f < static_cast<FunctionId>(desc.functions().size());
       ++f) {
    if (!group[f]) continue;
    for (std::size_t j = 0; j < desc.functions()[f].body.size(); ++j) {
      if (!stmt_prov[f][j]) {
        throw DescriptionError(
            "derive_tdg: cannot resolve token provenance for '" +
            desc.functions()[f].name +
            "' — data-flow cycle or unreachable input");
      }
    }
  }

  DerivedTdg out{Graph{&desc}, {}, {}};
  Graph& g = out.graph;

  // ---- Pass 1: channel nodes -------------------------------------------
  std::vector<ChannelNodes> cn(desc.channels().size());
  for (ChannelId c = 0; c < static_cast<ChannelId>(desc.channels().size());
       ++c) {
    const ChannelEndpoints& ep = desc.endpoints(c);
    const bool writer_in = ep.writer_fn != kInvalidId && group[ep.writer_fn];
    const bool reader_in = ep.reader_fn != kInvalidId && group[ep.reader_fn];
    if (!writer_in && !reader_in) continue;
    const auto& cd = desc.channels()[c];
    const SourceId prov = ch_prov[c].value_or(0);

    if (cd.kind == ChannelKind::kRendezvous) {
      if (writer_in && reader_in) {
        cn[c].x = g.add_node({cd.name, NodeKind::kInstant, c, false, cd.name});
      } else if (reader_in) {  // input boundary
        cn[c].u = g.add_node({"u:" + cd.name, NodeKind::kInput, c, false, {}});
        cn[c].x = g.add_node({cd.name, NodeKind::kInstant, c, false, {}});
        g.add_arc({cn[c].u, cn[c].x, 0, {}, prov, nullptr});
        out.inputs.push_back(
            {c, false, "u:" + cd.name, cd.name, {}, {}, prov});
      } else {  // output boundary
        const bool always_ready =
            ep.read_by_sink() &&
            desc.sinks()[ep.reader_sink].consume_delay == nullptr;
        BoundaryOutput bo;
        bo.channel = c;
        bo.provenance = prov;
        if (always_ready) {
          // Completion provably equals the offer: one node, as in Fig. 3.
          cn[c].y = g.add_node({cd.name, NodeKind::kOutput, c, false, {}});
          cn[c].actual = cn[c].y;
          bo.offer_node = cd.name;
        } else {
          cn[c].y = g.add_node({"y:" + cd.name, NodeKind::kOutput, c, false, {}});
          cn[c].actual =
              g.add_node({cd.name + ".actual", NodeKind::kExternal, c, false, {}});
          bo.offer_node = "y:" + cd.name;
          bo.actual_node = cd.name + ".actual";
        }
        out.outputs.push_back(std::move(bo));
      }
    } else {  // FIFO
      if (writer_in && reader_in) {
        cn[c].xw =
            g.add_node({cd.name + ".w", NodeKind::kInstant, c, false, cd.name + ".w"});
        cn[c].xr =
            g.add_node({cd.name + ".r", NodeKind::kInstant, c, true, cd.name + ".r"});
        // Data availability and slot recycling.
        g.add_arc({cn[c].xw, cn[c].xr, 0, {}, prov, nullptr});
        g.add_arc({cn[c].xr, cn[c].xw, static_cast<unsigned>(cd.capacity),
                   {}, prov, nullptr});
      } else if (reader_in) {  // input fifo: write instants observed live
        cn[c].xw = g.add_node({cd.name + ".w", NodeKind::kExternal, c, false, {}});
        cn[c].xr = g.add_node({cd.name + ".r", NodeKind::kInstant, c, true, {}});
        g.add_arc({cn[c].xw, cn[c].xr, 0, {}, prov, nullptr});
        out.inputs.push_back(
            {c, true, {}, {}, cd.name + ".w", cd.name + ".r", prov});
      } else {  // output fifo: offer computed; both instants observed live
        cn[c].y =
            g.add_node({"y:" + cd.name + ".w", NodeKind::kOutput, c, false, {}});
        cn[c].xw = g.add_node({cd.name + ".w", NodeKind::kExternal, c, false, {}});
        cn[c].actual = cn[c].xw;
        cn[c].xr_actual =
            g.add_node({cd.name + ".r", NodeKind::kExternal, c, true, {}});
        BoundaryOutput bo;
        bo.channel = c;
        bo.fifo = true;
        bo.provenance = prov;
        bo.offer_node = "y:" + cd.name + ".w";
        bo.actual_node = cd.name + ".w";
        bo.xr_actual_node = cd.name + ".r";
        out.outputs.push_back(std::move(bo));
      }
    }
  }

  // ---- Pass 2: per-statement nodes and completion map --------------------
  // stmt_node[f][j]: the instant node at which statement j completes.
  std::vector<std::vector<NodeId>> stmt_node(desc.functions().size());
  std::vector<NodeId> completion(desc.functions().size(), kNoNode);
  for (FunctionId f = 0; f < static_cast<FunctionId>(desc.functions().size());
       ++f) {
    if (!group[f]) continue;
    const auto& fn = desc.functions()[f];
    stmt_node[f].resize(fn.body.size(), kNoNode);
    for (std::size_t j = 0; j < fn.body.size(); ++j) {
      const StatementDesc& s = fn.body[j];
      switch (s.kind) {
        case StatementKind::kRead:
          stmt_node[f][j] = desc.channels()[s.channel].kind ==
                                    ChannelKind::kRendezvous
                                ? cn[s.channel].x
                                : cn[s.channel].xr;
          break;
        case StatementKind::kWrite:
          if (desc.channels()[s.channel].kind == ChannelKind::kRendezvous) {
            // Internal write: x; output write: the function proceeds from
            // the actual completion.
            stmt_node[f][j] = cn[s.channel].x != kNoNode ? cn[s.channel].x
                                                         : cn[s.channel].actual;
          } else {
            stmt_node[f][j] = cn[s.channel].actual != kNoNode
                                  ? cn[s.channel].actual
                                  : cn[s.channel].xw;
          }
          break;
        case StatementKind::kExecute:
          stmt_node[f][j] = g.add_node(
              {fn.name + ".c" + std::to_string(j), NodeKind::kCompletion,
               kInvalidId, false, {}});
          break;
      }
    }
    completion[f] = stmt_node[f].back();
  }

  // ---- Pass 3: arcs -------------------------------------------------------
  for (FunctionId f = 0; f < static_cast<FunctionId>(desc.functions().size());
       ++f) {
    if (!group[f]) continue;
    const auto& fn = desc.functions()[f];
    const auto& res = desc.resources()[fn.resource];
    const auto& sched = desc.schedule(fn.resource);

    // First-statement readiness reference (see header).
    NodeId ready_node = kNoNode;
    unsigned ready_lag = 0;
    if (res.policy == ResourcePolicy::kSequentialCyclic && sched.size() >= 2) {
      const std::size_t pos = desc.schedule_position(f);
      const FunctionId pred = sched[(pos + sched.size() - 1) % sched.size()];
      if (!gate_implied_by_first_read(desc, f, pred)) {
        ready_node = completion[pred];
        ready_lag = pos == 0 ? 1 : 0;
      }
      // Own-previous-iteration readiness is dominated by the gate chain on
      // multi-function sequential resources and is elided (docs/DESIGN.md §3).
    } else {
      ready_node = completion[f];
      ready_lag = 1;
    }

    NodeId prev = ready_node;  // kNoNode = no readiness constraint
    unsigned prev_lag = ready_lag;
    std::vector<Segment> pending;  // exec segments between instants (none in
                                   // the raw graph; kept for clarity)
    for (std::size_t j = 0; j < fn.body.size(); ++j) {
      const StatementDesc& s = fn.body[j];
      const SourceId prov = stmt_prov[f][j].value_or(0);
      const NodeId target = stmt_node[f][j];
      switch (s.kind) {
        case StatementKind::kRead:
        case StatementKind::kWrite: {
          // Chain arc from the previous instant (reader-ready or
          // writer-offer side of the transfer).
          if (prev != kNoNode) {
            NodeId dst = target;
            if (s.kind == StatementKind::kWrite) {
              // Writer-offer arcs land on the offer node for boundary
              // outputs (the actual node is external).
              const ChannelNodes& nodes = cn[s.channel];
              if (nodes.y != kNoNode) dst = nodes.y;
            }
            if (dst != prev || prev_lag != 0)  // drop weightless self-loops
              g.add_arc({prev, dst, prev_lag, std::move(pending), prov, nullptr});
            pending = {};
          }
          prev = target;
          prev_lag = 0;
          break;
        }
        case StatementKind::kExecute: {
          std::vector<Segment> segs = std::move(pending);
          pending = {};
          segs.push_back(Segment{Duration{}, s.load, fn.resource, s.label});
          if (prev == kNoNode)
            throw DescriptionError("derive_tdg: execute without readiness");
          g.add_arc({prev, target, prev_lag, std::move(segs), prov, nullptr});
          prev = target;
          prev_lag = 0;
          break;
        }
      }
    }
  }

  return out;
}

DerivedTdg derive_full_tdg(const model::ArchitectureDesc& desc) {
  return derive_tdg(desc,
                    std::vector<bool>(desc.functions().size(), true));
}

}  // namespace maxev::tdg
