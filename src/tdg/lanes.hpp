#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MAXEV_LANES_X86 1
#include <immintrin.h>
#endif

/// \file lanes.hpp
/// Branch-free (max,+) lane kernels for the BatchEngine vector drain
/// (docs/DESIGN.md §14). A node's per-instance values form a contiguous
/// lane in struct-of-arrays form: `*_ps` carries the finite picosecond
/// payload, `*_eps` a one-byte ε flag. The kernels sweep one arc weight
/// across the whole lane with conditional-select max-plus accumulation —
/// `max` + `add`, the two friendliest SIMD ops there are.
///
/// Bit-identity contract: per lane element the kernels compute exactly
/// `acc ⊕ (src ⊗ w)` as mp::Scalar would — max with ε as identity, add
/// with ε absorbing. The one deliberate difference is overflow handling:
/// mp::Scalar::operator* throws from the inner loop; here ⊗ wraps in
/// defined unsigned arithmetic, the would-be overflow is *detected* from
/// the operand/result sign pattern and reported to the caller, who
/// discards the lane scratch and re-runs the front through the scalar
/// path so the thrown OverflowError (and its message) is the solo
/// engine's, with nothing partially published.
///
/// The portable loops below are branch-free scalar code (all selects are
/// ternaries over plain integers; pragma-assisted where the
/// autovectorizer can act). The hot accumulate kernel additionally
/// carries an explicit AVX2 body compiled behind a `target("avx2")`
/// function attribute, so even a baseline-ISA build holds it: a one-time
/// `__builtin_cpu_supports("avx2")` probe routes to it at runtime on
/// capable hosts. The `-DMAXEV_SIMD=ON` CMake option selects that body
/// statically (whole build compiled `-mavx2`, no runtime probe) — same
/// results lane for lane either way, exercised by its own CI leg.

namespace maxev::tdg::lanes {

#if defined(__clang__)
#define MAXEV_LANE_VEC _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define MAXEV_LANE_VEC _Pragma("GCC ivdep")
#else
#define MAXEV_LANE_VEC
#endif

/// acc[i] = ε for every lane element.
inline void fill_eps(std::int64_t* acc_ps, std::uint8_t* acc_eps,
                     std::size_t n) {
  std::memset(acc_ps, 0, n * sizeof(std::int64_t));
  std::memset(acc_eps, 1, n);
}

namespace detail {

/// Portable lane body for accumulate() over [lo, hi). Returns the OR of
/// the overflow sign patterns — negative iff some finite lane's ⊗
/// overflowed.
inline std::int64_t accumulate_range(std::int64_t* acc_ps,
                                     std::uint8_t* acc_eps,
                                     const std::int64_t* src_ps,
                                     const std::uint8_t* src_eps,
                                     std::int64_t w, std::size_t lo,
                                     std::size_t hi) {
  std::int64_t ovf = 0;
  MAXEV_LANE_VEC
  for (std::size_t i = lo; i < hi; ++i) {
    const std::int64_t s = src_ps[i];
    // ⊗ in defined unsigned arithmetic; overflow detected, not relied on.
    const std::int64_t t = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(s) + static_cast<std::uint64_t>(w));
    const unsigned se = src_eps[i];
    ovf |= se != 0 ? std::int64_t{0} : ((s ^ t) & (w ^ t));
    const unsigned ae = acc_eps[i];
    // ⊕: take t when the source is finite and it beats (or replaces an ε)
    // accumulator; ties keep the equal value either way.
    const bool take =
        ((1u - se) & (ae | static_cast<unsigned>(t > acc_ps[i]))) != 0;
    acc_ps[i] = take ? t : acc_ps[i];
    acc_eps[i] = static_cast<std::uint8_t>(ae & se);
  }
  return ovf;
}

#if defined(MAXEV_LANES_X86)

/// Explicit AVX2 accumulate body. The target attribute lets a
/// baseline-ISA translation unit compile (and runtime-dispatch to) it;
/// under -mavx2 the attribute is redundant but harmless.
#if !defined(__AVX2__)
__attribute__((target("avx2")))
#endif
inline bool
accumulate_avx2(std::int64_t* acc_ps, std::uint8_t* acc_eps,
                const std::int64_t* src_ps, const std::uint8_t* src_eps,
                std::int64_t w, std::size_t n) {
  std::size_t i = 0;
  __m256i vovf = _mm256_setzero_si256();
  const __m256i vw = _mm256_set1_epi64x(w);
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src_ps + i));
    const __m256i vt = _mm256_add_epi64(vs, vw);
    // Widen the 4 one-byte ε flags to 64-bit lanes; ==0 -> finite mask.
    std::uint32_t se4 = 0;
    std::memcpy(&se4, src_eps + i, 4);
    const __m256i sfin = _mm256_cmpeq_epi64(
        _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(se4))), zero);
    std::uint32_t ae4 = 0;
    std::memcpy(&ae4, acc_eps + i, 4);
    const __m256i aeps = _mm256_cmpgt_epi64(
        _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(ae4))), zero);
    // Overflow sign pattern, masked to finite sources.
    const __m256i vo = _mm256_and_si256(_mm256_xor_si256(vs, vt),
                                        _mm256_xor_si256(vw, vt));
    vovf = _mm256_or_si256(vovf, _mm256_and_si256(vo, sfin));
    // AVX2 has no 64-bit max: compare + blend.
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc_ps + i));
    const __m256i gt = _mm256_cmpgt_epi64(vt, va);
    const __m256i take = _mm256_and_si256(sfin, _mm256_or_si256(aeps, gt));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc_ps + i),
                        _mm256_blendv_epi8(va, vt, take));
    const std::uint32_t out4 = ae4 & se4;
    std::memcpy(acc_eps + i, &out4, 4);
  }
  std::int64_t ovf =
      accumulate_range(acc_ps, acc_eps, src_ps, src_eps, w, i, n);
  ovf |= _mm256_movemask_pd(_mm256_castsi256_pd(vovf)) != 0 ? std::int64_t{-1}
                                                            : std::int64_t{0};
  return ovf < 0;
}

#endif  // MAXEV_LANES_X86

}  // namespace detail

/// acc ⊕= (src ⊗ w) across the lane. Returns true when any finite lane's
/// ⊗ overflowed (caller falls back to the scalar path; the accumulator
/// scratch is discardable garbage in that case).
inline bool accumulate(std::int64_t* acc_ps, std::uint8_t* acc_eps,
                       const std::int64_t* src_ps, const std::uint8_t* src_eps,
                       std::int64_t w, std::size_t n) {
#if defined(MAXEV_LANES_X86)
#if defined(MAXEV_SIMD) && defined(__AVX2__)
  return detail::accumulate_avx2(acc_ps, acc_eps, src_ps, src_eps, w, n);
#else
  static const bool have_avx2 = __builtin_cpu_supports("avx2") != 0;
  if (have_avx2)
    return detail::accumulate_avx2(acc_ps, acc_eps, src_ps, src_eps, w, n);
#endif
#endif
  return detail::accumulate_range(acc_ps, acc_eps, src_ps, src_eps, w, 0, n) <
         0;
}

/// acc ⊕= v for a finite broadcast value (the lag > k simulation-origin
/// arc: e ⊗ w is finite by construction, identical across the lane).
inline void accumulate_broadcast(std::int64_t* acc_ps, std::uint8_t* acc_eps,
                                 std::int64_t v, std::size_t n) {
  MAXEV_LANE_VEC
  for (std::size_t i = 0; i < n; ++i) {
    const bool take = (static_cast<unsigned>(acc_eps[i]) |
                       static_cast<unsigned>(v > acc_ps[i])) != 0;
    acc_ps[i] = take ? v : acc_ps[i];
    acc_eps[i] = 0;
  }
}

#undef MAXEV_LANE_VEC

}  // namespace maxev::tdg::lanes
