#include "study/scenario.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace maxev::study {

using model::ArchitectureDesc;
using model::ChannelKind;

Scenario::Scenario(std::string name, ArchitectureDesc desc)
    : name_(std::move(name)), desc_(model::share(std::move(desc))) {}

Scenario::Scenario(std::string name, model::DescPtr desc)
    : name_(std::move(name)), desc_(std::move(desc)) {
  if (desc_ == nullptr)
    throw DescriptionError("Scenario '" + name_ + "': null description");
  if (!desc_->validated())
    throw DescriptionError("Scenario '" + name_ +
                           "': description must be validated");
}

Scenario& Scenario::with_group(std::vector<bool> group) {
  options_.group = std::move(group);
  return *this;
}

Scenario& Scenario::with_fold(bool fold) {
  options_.fold = fold;
  return *this;
}

Scenario& Scenario::with_pad_nodes(std::size_t n) {
  options_.pad_nodes = n;
  return *this;
}

Scenario& Scenario::with_expected_iterations(std::size_t n) {
  options_.expected_iterations = n;
  return *this;
}

Scenario compose(std::string name, const std::vector<Scenario>& instances) {
  if (instances.empty())
    throw DescriptionError("compose '" + name + "': no instances");
  std::set<std::string> seen;
  for (const Scenario& inst : instances) {
    if (!inst.valid())
      throw DescriptionError("compose '" + name + "': invalid instance");
    // '/' is the namespace separator: a name containing it would make one
    // instance a path-prefix of another and corrupt trace extraction.
    if (inst.name().empty() || inst.name().find('/') != std::string::npos)
      throw DescriptionError("compose '" + name + "': instance name '" +
                             inst.name() + "' must be non-empty and without '/'");
    if (!seen.insert(inst.name()).second)
      throw DescriptionError("compose '" + name + "': duplicate instance '" +
                             inst.name() + "'");
    // Graph transforms apply to the merged graph as a whole; silently
    // running an instance under options it did not ask for would make its
    // composed equivalent model differ from its solo run.
    if (inst.options().fold != instances.front().options().fold ||
        inst.options().pad_nodes != instances.front().options().pad_nodes)
      throw DescriptionError("compose '" + name + "': instance '" +
                             inst.name() +
                             "' disagrees on fold/pad_nodes options");
  }

  // Abstraction groups concatenate. An instance with an empty group means
  // "abstract everything" — only expanded when some instance restricts its
  // group; otherwise the composed group stays empty (same meaning).
  bool any_partial = false;
  for (const Scenario& inst : instances)
    if (!inst.options().group.empty()) any_partial = true;

  ArchitectureDesc merged;
  std::vector<Instance> spans;
  std::vector<bool> group;
  for (const Scenario& part : instances) {
    const ArchitectureDesc& d = part.desc();
    const std::string prefix = part.name() + "/";
    Instance span;
    span.name = part.name();
    span.res_begin = merged.resources().size();
    span.ch_begin = merged.channels().size();
    span.fn_begin = merged.functions().size();
    span.src_begin = merged.sources().size();
    span.sink_begin = merged.sinks().size();

    std::vector<model::ResourceId> rmap;
    rmap.reserve(d.resources().size());
    for (const auto& r : d.resources())
      rmap.push_back(
          merged.add_resource(prefix + r.name, r.policy, r.ops_per_second));

    std::vector<model::ChannelId> cmap;
    cmap.reserve(d.channels().size());
    for (const auto& c : d.channels()) {
      cmap.push_back(c.kind == ChannelKind::kRendezvous
                         ? merged.add_rendezvous(prefix + c.name)
                         : merged.add_fifo(prefix + c.name, c.capacity));
    }

    // Functions in creation order: creation order IS the static cyclic
    // schedule on each sequential resource, so replaying preserves it.
    for (const auto& f : d.functions()) {
      const model::FunctionId nf =
          merged.add_function(prefix + f.name, rmap[f.resource]);
      for (const auto& s : f.body) {
        switch (s.kind) {
          case model::StatementKind::kRead:
            merged.fn_read(nf, cmap[s.channel]);
            break;
          case model::StatementKind::kExecute:
            merged.fn_execute(nf, s.load);
            break;
          case model::StatementKind::kWrite:
            merged.fn_write(nf, cmap[s.channel]);
            break;
        }
      }
    }

    for (const auto& s : d.sources())
      merged.add_source(prefix + s.name, cmap[s.channel], s.count, s.earliest,
                        s.attrs, s.gap);
    for (const auto& s : d.sinks())
      merged.add_sink(prefix + s.name, cmap[s.channel], s.consume_delay);

    span.res_end = merged.resources().size();
    span.ch_end = merged.channels().size();
    span.fn_end = merged.functions().size();
    span.src_end = merged.sources().size();
    span.sink_end = merged.sinks().size();
    spans.push_back(std::move(span));

    if (any_partial) {
      std::vector<bool> g = part.options().group;
      if (g.empty()) g.assign(d.functions().size(), true);
      g.resize(d.functions().size(), false);
      group.insert(group.end(), g.begin(), g.end());
    }
  }

  Scenario out(std::move(name), std::move(merged));
  out.options_.group = std::move(group);
  // Checked equal across instances above.
  out.options_.fold = instances.front().options().fold;
  out.options_.pad_nodes = instances.front().options().pad_nodes;
  // Capacity hints: any single relation of the merged description sees at
  // most the largest instance's iteration count. A hint-less instance
  // contributes what the model would derive for it (its largest source),
  // so one instance's small explicit hint cannot shrink another's sinks.
  bool any_hint = false;
  for (const Scenario& part : instances)
    if (part.options().expected_iterations > 0) any_hint = true;
  if (any_hint) {
    for (const Scenario& part : instances) {
      const std::size_t effective =
          part.options().expected_iterations > 0
              ? part.options().expected_iterations
              : static_cast<std::size_t>(part.desc().max_source_tokens());
      out.options_.expected_iterations =
          std::max(out.options_.expected_iterations, effective);
    }
  }
  out.instances_ = std::move(spans);

  // Partition the instances into equal-structure sub-batches
  // (docs/DESIGN.md §10). model::structural_hash buckets candidates
  // cheaply (computed once per distinct description object); within a
  // bucket, membership requires the same model::DescPtr and the same
  // abstraction group. Pointer identity is deliberate — structural
  // equality is only the *necessary* half of the contract: equal-but-
  // distinct descriptions hold distinct std::function workloads that
  // cannot be proven equivalent, so they stay in separate sub-batches
  // (and fall to the isolated remainder when alone).
  struct Candidate {
    std::size_t hash;
    model::DescPtr base;
    std::vector<bool> group;  // normalized: explicit per-function flags
    std::vector<std::size_t> members;
  };
  std::vector<Candidate> candidates;
  std::vector<std::pair<const model::ArchitectureDesc*, std::size_t>> hashes;
  const auto hash_of = [&](const model::DescPtr& d) {
    for (const auto& [ptr, h] : hashes)
      if (ptr == d.get()) return h;
    const std::size_t h = model::structural_hash(*d);
    hashes.emplace_back(d.get(), h);
    return h;
  };
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Scenario& part = instances[i];
    const std::size_t h = hash_of(part.desc_ptr());
    // Normalize the group key: an empty group means "abstract everything",
    // so it must land in the same sub-batch as its explicit all-true form.
    std::vector<bool> key_group = part.options().group;
    if (key_group.empty())
      key_group.assign(part.desc().functions().size(), true);
    else
      key_group.resize(part.desc().functions().size(), false);
    Candidate* home = nullptr;
    for (Candidate& c : candidates) {
      // Stage 1, structural: the documented necessary condition (hash
      // prunes, deep compare decides).
      if (c.hash != h || !model::structurally_equal(*c.base, part.desc()))
        continue;
      // Stage 2, behavioural: pointer identity (the workload guarantee)
      // and the abstraction-group key.
      if (c.base != part.desc_ptr() || c.group != key_group) continue;
      home = &c;
      break;
    }
    if (home == nullptr) {
      candidates.push_back({h, part.desc_ptr(), std::move(key_group), {}});
      home = &candidates.back();
    }
    home->members.push_back(i);
  }
  for (Candidate& c : candidates) {
    if (c.members.size() < 2) continue;  // singletons: isolated remainder
    out.batch_groups_.push_back(
        {std::move(c.base), std::move(c.group), std::move(c.members)});
  }
  // The fully-homogeneous case keeps its dedicated marker: one sub-batch
  // covering every instance (the PR-4 N-fold shape).
  if (candidates.size() == 1 && !out.batch_groups_.empty())
    out.batch_base_ = out.batch_groups_.front().base;
  return out;
}

namespace {

/// "prefix/rest" -> "rest"; nullptr when the name is outside the instance.
const char* strip(const std::string& name, const std::string& prefix) {
  if (name.size() <= prefix.size() + 1) return nullptr;
  if (name.compare(0, prefix.size(), prefix) != 0) return nullptr;
  if (name[prefix.size()] != '/') return nullptr;
  return name.c_str() + prefix.size() + 1;
}

}  // namespace

trace::InstantTraceSet instance_instants(const trace::InstantTraceSet& composed,
                                         const std::string& instance) {
  trace::InstantTraceSet out;
  for (const auto& [name, series] : composed.all()) {
    const char* rest = strip(name, instance);
    if (rest == nullptr) continue;
    trace::InstantSeries& s = out.series(rest);
    s.reserve(series.size());
    for (const TimePoint t : series.values()) s.push(t);
  }
  return out;
}

trace::UsageTraceSet instance_usage(const trace::UsageTraceSet& composed,
                                    const std::string& instance) {
  trace::UsageTraceSet out;
  for (const auto& [resource, tr] : composed.all()) {
    const char* rest = strip(resource, instance);
    if (rest == nullptr) continue;
    trace::UsageTrace& t = out.trace(rest);
    t.reserve(tr.size());
    for (const trace::BusyInterval& iv : tr.intervals()) {
      trace::BusyInterval stripped = iv;
      if (const char* lr = strip(iv.label, instance)) stripped.label = lr;
      t.add(std::move(stripped));
    }
  }
  return out;
}

}  // namespace maxev::study
