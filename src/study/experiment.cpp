#include "core/experiment.hpp"

#include <utility>

#include "study/study.hpp"
#include "util/error.hpp"

/// \file experiment.cpp
/// core::run_comparison / core::measure_baseline as thin wrappers over
/// study::Study. They live in the study module (not src/core) because the
/// delegation points up the module DAG: core provides the models, study
/// orchestrates them. Behavior is identical to the historical direct
/// implementation — same run order (all baseline repetitions, then all
/// equivalent repetitions; rep-0 traces kept), same median/ratio formulas,
/// same exception types and messages, bit-identical traces.

namespace maxev::core {

RunMetrics measure_baseline(const model::ArchitectureDesc& desc,
                            int repetitions) {
  if (repetitions < 1) throw Error("measure_baseline: repetitions must be >= 1");
  study::Study st;
  st.add(study::Scenario("baseline", desc));
  st.add(study::Backend::baseline());
  study::StudyOptions opts;
  opts.repetitions = repetitions;
  opts.compare_traces = false;
  const study::Report report = st.run(opts);
  return report.cells.front().metrics;
}

Comparison run_comparison(const model::ArchitectureDesc& desc,
                          const ExperimentOptions& opts) {
  if (opts.repetitions < 1)
    throw Error("run_comparison: repetitions must be >= 1");

  study::Scenario scenario("comparison", desc);
  scenario.with_group(opts.group)
      .with_fold(opts.fold)
      .with_pad_nodes(opts.pad_nodes);

  study::Study st;
  st.add(std::move(scenario));
  st.add(study::Backend::baseline());
  st.add(study::Backend::equivalent());

  study::StudyOptions sopts;
  sopts.repetitions = opts.repetitions;
  sopts.observe = opts.observe;
  sopts.compare_traces = opts.compare_traces;
  sopts.require_completion = opts.require_completion;
  sopts.event_overhead_ns = opts.event_overhead_ns;
  const study::Report report = st.run(sopts);

  const study::Cell* base = report.find("comparison", "baseline");
  const study::Cell* eq = report.find("comparison", "equivalent");

  Comparison cmp;
  cmp.baseline = base->metrics;
  cmp.equivalent = eq->metrics;
  cmp.speedup = eq->speedup_vs_reference;
  cmp.event_ratio = eq->event_ratio_vs_reference;
  cmp.kernel_event_ratio = eq->kernel_event_ratio_vs_reference;
  cmp.graph_nodes = eq->graph_nodes;
  cmp.graph_paper_nodes = eq->graph_paper_nodes;
  cmp.graph_arcs = eq->graph_arcs;
  if (eq->errors.has_value()) {
    cmp.instant_mismatch = eq->errors->instant_mismatch;
    cmp.usage_mismatch = eq->errors->usage_mismatch;
  }
  return cmp;
}

}  // namespace maxev::core
