#include "study/adaptive.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <utility>
#include <vector>

#include "maxplus/eigen.hpp"
#include "model/shaping.hpp"
#include "tdg/export.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace maxev::study {

// ---------------------------------------------------------------------------
// PeriodDetector
// ---------------------------------------------------------------------------

namespace {
std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

PeriodDetector::PeriodDetector(std::size_t width, Options opts)
    : width_(width),
      opts_(opts),
      ring_frames_(pow2_at_least(static_cast<std::size_t>(opts.max_period) +
                                 2)),
      ring_mask_(ring_frames_ - 1),
      u_ring_(ring_frames_ * width),
      hash_(ring_frames_, 0),
      prev_(width, 0),
      stable_(static_cast<std::size_t>(opts.max_period) + 1, 0) {
  if (width == 0) throw Error("PeriodDetector: width must be >= 1");
  if (opts.max_period == 0) throw Error("PeriodDetector: max_period must be >= 1");
  if (opts.stable_periods == 0)
    throw Error("PeriodDetector: stable_periods must be >= 1");
}

const std::int64_t* PeriodDetector::u_frame(std::uint64_t k) const {
  return u_ring_.data() + (k & ring_mask_) * width_;
}

void PeriodDetector::observe(const std::vector<std::int64_t>& values,
                             bool any_eps) {
  if (values.size() != width_)
    throw Error("PeriodDetector::observe: frame width mismatch");
  const std::uint64_t j = next_k_;
  std::int64_t* uj =
      u_ring_.data() + (j & ring_mask_) * width_;
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (std::size_t i = 0; i < width_; ++i) {
    const std::int64_t d = values[i] - prev_[i];
    uj[i] = d;
    prev_[i] = values[i];
    h = (h ^ static_cast<std::uint64_t>(d)) * 1099511628211ull;
  }
  hash_[j & ring_mask_] = h;
  ++next_k_;
  // The successor frame's ring slot was last written ring_frames_ frames
  // ago — long enough for the simulator's working set to evict it, and the
  // resulting store stall dominates this function's cost. Prefetch it for
  // write now; it arrives during the simulated work before the next frame.
  {
    const char* next = reinterpret_cast<const char*>(
        u_ring_.data() + ((j + 1) & ring_mask_) * width_);
    for (std::size_t b = 0; b < width_ * sizeof(std::int64_t); b += 64)
      __builtin_prefetch(next + b, 1);
  }
  if (any_eps) {
    // ε cannot participate in delta arithmetic: everything observed so far
    // is useless for extrapolation.
    valid_from_ = next_k_;
    std::fill(stable_.begin(), stable_.end(), 0);
    any_stable_ = false;
    any_warm_ = false;
    return;
  }
  // d_p(j) == d_p(j−1) ⟺ u(j) == u(j−p): one hash compare rejects the
  // candidate on aperiodic frames (the per-iteration detector overhead the
  // Ablation 10 aperiodic arm measures); a match is confirmed element-wise,
  // so the counters stay exact.
  if (j >= valid_from_ + opts_.max_period + 1) {
    // Every candidate is past its warm-up gates. Aperiodic frames miss all
    // P hashes — one tight compare loop and a flat reset to one iteration
    // of evidence, no per-candidate branching.
    bool all_miss = true;
    for (std::uint32_t p = 1; p <= opts_.max_period; ++p)
      all_miss = all_miss && h != hash_[(j - p) & ring_mask_];
    if (all_miss) {
      std::fill(stable_.begin() + 1, stable_.end(), 1);
      any_stable_ = false;
      any_warm_ = false;
      return;
    }
  }
  bool any = false;
  bool warm = false;
  for (std::uint32_t p = 1; p <= opts_.max_period; ++p) {
    if (j < valid_from_ + p) {
      stable_[p] = 0;  // d_p(j) reaches before the valid window
      continue;
    }
    if (j < valid_from_ + p + 1) {
      stable_[p] = 1;  // first defined delta: one iteration of evidence
      continue;
    }
    if (h != hash_[(j - p) & ring_mask_]) {
      stable_[p] = 1;
      continue;
    }
    const std::int64_t* up = u_frame(j - p);
    bool equal = true;
    for (std::size_t i = 0; i < width_; ++i) {
      if (uj[i] != up[i]) {
        equal = false;
        break;
      }
    }
    stable_[p] = equal ? stable_[p] + 1 : 1;
    any = any || stable_[p] >= opts_.stable_periods;
    warm = warm || stable_[p] >= 2;
  }
  any_stable_ = any;
  any_warm_ = warm;
}

std::uint64_t PeriodDetector::stable_count(std::uint32_t period) const {
  if (period == 0 || period > opts_.max_period) return 0;
  return stable_[period];
}

std::optional<PeriodDetector::Detection> PeriodDetector::stable() const {
  if (!any_stable_) return std::nullopt;
  for (std::uint32_t p = 1; p <= opts_.max_period; ++p) {
    if (stable_[p] < opts_.stable_periods) continue;
    Detection d;
    d.period = p;
    d.frontier = next_k_;
    // Λ = v(f−1) − v(f−1−p): the first differences telescope.
    d.lambda.assign(width_, 0);
    for (std::uint64_t t = next_k_ - p; t < next_k_; ++t) {
      const std::int64_t* u = u_frame(t);
      for (std::size_t i = 0; i < width_; ++i) d.lambda[i] += u[i];
    }
    return d;
  }
  return std::nullopt;
}

void PeriodDetector::reset() {
  valid_from_ = next_k_;
  std::fill(stable_.begin(), stable_.end(), 0);
  any_stable_ = false;
}

// ---------------------------------------------------------------------------
// AdaptiveModel
// ---------------------------------------------------------------------------

namespace {

/// Internal certification failure: unwinds the fast-forward attempt back to
/// maybe_fastforward(), which records it and resumes simulation. retry_at
/// gates the next attempt (kNever for defects no later frontier can cure).
struct Refusal {
  std::string reason;
  std::uint64_t retry_at = 0;
};

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

core::EquivalentModel::Options eq_options(const Scenario& s,
                                          const RunConfig& rc) {
  core::EquivalentModel::Options opts;
  opts.fold = s.options().fold;
  opts.pad_nodes = s.composed() ? s.options().pad_nodes * s.instances().size()
                                : s.options().pad_nodes;
  opts.observe = rc.observe;
  opts.expected_iterations = s.options().expected_iterations;
  opts.compiled = rc.compiled;
  opts.opcode_dispatch = rc.opcode_dispatch;
  return opts;
}

/// Certified increment over one period P of an `earliest` functor on
/// [frontier, count): E with fn(k) = fn(k-P) + E for every k in the range.
std::int64_t certify_time_step(
    const std::function<TimePoint(std::uint64_t)>& fn, std::uint32_t period,
    std::uint64_t frontier, std::uint64_t count, const std::string& what) {
  if (!fn) throw Refusal{what + ": no earliest functor", kNever};
  if (const auto* p = fn.target<model::PeriodicTimeFn>())
    return p->period_ps * static_cast<std::int64_t>(period);
  if (const auto* c = fn.target<model::CyclicTimeFn>()) {
    const auto n = static_cast<std::uint64_t>(c->offsets_ps->size());
    if (n == 0 || period % n != 0)
      throw Refusal{what + ": cyclic grid length does not divide the period",
                    frontier + period};
    return c->period_ps * static_cast<std::int64_t>(period / n);
  }
  if (const auto* t = fn.target<model::TableTimeFn>()) {
    const std::vector<std::int64_t>& v = *t->values_ps;
    if (v.size() < count)
      throw Refusal{what + ": earliest table shorter than the token count",
                    kNever};
    const std::int64_t step =
        v[frontier] - v[frontier - period];
    for (std::uint64_t k = frontier; k < count; ++k) {
      if (v[k] - v[k - period] != step)
        throw Refusal{what + ": earliest table breaks the period at k=" +
                          std::to_string(k),
                      k};
    }
    return step;
  }
  throw Refusal{what + ": opaque earliest functor", kNever};
}

/// Certify that a gap / consume-delay functor is P-periodic on
/// [frontier, count) (null = constant zero).
void certify_duration_periodic(
    const std::function<Duration(std::uint64_t)>& fn, std::uint32_t period,
    std::uint64_t frontier, std::uint64_t count, const std::string& what) {
  if (!fn) return;
  if (fn.target<model::ConstantDurationFn>()) return;
  if (const auto* c = fn.target<model::CyclicDurationFn>()) {
    const auto n = static_cast<std::uint64_t>(c->values_ps->size());
    if (n == 0 || period % n != 0)
      throw Refusal{what + ": cyclic delay length does not divide the period",
                    frontier + period};
    return;
  }
  if (const auto* t = fn.target<model::TableDurationFn>()) {
    const std::vector<std::int64_t>& v = *t->values_ps;
    if (v.size() < count)
      throw Refusal{what + ": delay table shorter than the token count",
                    kNever};
    for (std::uint64_t k = frontier; k < count; ++k) {
      if (v[k] != v[k - period])
        throw Refusal{
            what + ": delay table breaks the period at k=" + std::to_string(k),
            k};
    }
    return;
  }
  throw Refusal{what + ": opaque delay functor", kNever};
}

/// Certify that a source attrs functor is P-periodic on [frontier, count).
void certify_attrs_periodic(
    const std::function<model::TokenAttrs(std::uint64_t)>& fn,
    std::uint32_t period, std::uint64_t frontier, std::uint64_t count,
    const std::string& what) {
  if (!fn) return;  // attribute-less source: constant by definition
  if (fn.target<model::ConstantAttrsFn>()) return;
  if (const auto* c = fn.target<model::CyclicAttrsFn>()) {
    const auto n = static_cast<std::uint64_t>(c->table->size());
    if (n == 0 || period % n != 0)
      throw Refusal{what + ": cyclic attrs length does not divide the period",
                    frontier + period};
    return;
  }
  if (const auto* t = fn.target<model::TableAttrsFn>()) {
    const std::vector<model::TokenAttrs>& v = *t->table;
    if (v.size() < count)
      throw Refusal{what + ": attrs table shorter than the token count",
                    kNever};
    for (std::uint64_t k = frontier; k < count; ++k) {
      if (!(v[k] == v[k - period]))
        throw Refusal{
            what + ": attrs table breaks the period at k=" + std::to_string(k),
            k};
    }
    return;
  }
  throw Refusal{what + ": opaque attrs functor", kNever};
}

/// Certify that every hoisted execute load is P-periodic given P-periodic
/// attributes: pure functions of the attrs qualify, cyclic tables must
/// divide the period, everything opaque refuses.
void certify_loads(const tdg::Program& prog, std::uint32_t period,
                   std::uint64_t frontier) {
  for (std::size_t i = 0; i < prog.loads.size(); ++i) {
    const model::LoadFn& load = prog.loads[i];
    if (load.target<model::ConstantOpsFn>() ||
        load.target<model::LinearOpsFn>() ||
        load.target<model::ParamOpsFn>() ||
        load.target<model::AttrsPureFn>()) {
      continue;
    }
    if (const auto* c = load.target<model::CyclicOpsFn>()) {
      if (c->table.empty() || period % c->table.size() != 0)
        throw Refusal{"load " + std::to_string(i) +
                          ": cyclic ops length does not divide the period",
                      frontier + period};
      continue;
    }
    throw Refusal{"load " + std::to_string(i) + ": opaque execute load",
                  kNever};
  }
}

}  // namespace

AdaptiveModel::AdaptiveModel(const Scenario& scenario, const RunConfig& config,
                             AdaptiveOptions opts)
    : eq_(scenario.desc_ptr(), scenario.options().group,
          eq_options(scenario, config)),
      opts_(opts),
      opcode_dispatch_(config.opcode_dispatch),
      user_cancel_(config.cancel),
      detector_(eq_.graph().node_count(),
                {opts.max_period, opts.stable_periods}) {
  if (config.event_overhead_ns > 0) {
    eq_.runtime().kernel().set_synthetic_event_overhead(
        std::chrono::nanoseconds(
            static_cast<std::int64_t>(config.event_overhead_ns)));
  }
  // The adaptive model always guards its kernel: its own token is how the
  // fast-forward stops the simulation from inside the timestep hook. The
  // user's token (config.cancel) is polled in the hook and forwarded.
  sim::RunGuards guards;
  guards.max_events = config.max_events;
  if (config.deadline_ms > 0.0) {
    guards.deadline = std::chrono::nanoseconds(
        static_cast<std::int64_t>(config.deadline_ms * 1e6));
  }
  guards.cancel = &self_cancel_;
  eq_.runtime().kernel().set_run_guards(guards);

  // Structural eligibility. Everything here is decidable at construction;
  // a failed check leaves a plain (correct, never fast-forwarding)
  // equivalent model.
  const model::ArchitectureDesc& desc = eq_.runtime().desc();
  const std::vector<bool>& group = eq_.group();
  bool full = true;
  for (const bool g : group) full = full && g;
  if (!group.empty() && !full) {
    disable("partial abstraction group: simulated functions cannot be "
            "extrapolated");
  } else if (desc.sources().empty()) {
    disable("no sources");
  } else {
    tokens_ = desc.sources().front().count;
    for (const model::SourceDesc& s : desc.sources()) {
      if (s.count != tokens_) {
        disable("sources disagree on token count");
        break;
      }
    }
    if (enabled_ && tokens_ == 0) disable("zero tokens");
  }
  for (const tdg::BoundaryInput& bi : eq_.compiled().inputs) {
    if (!enabled_) break;
    // A FIFO fed by a source keeps its credit gate inside the simulated
    // source process (the source blocks on reads the graph never sees), so
    // no window check over graph nodes can certify it. Output FIFOs are
    // different: both their write and read instants are external nodes and
    // their recurrences are certified in fastforward().
    if (bi.fifo) disable("FIFO input boundary (back-pressure recurrence)");
  }
  std::uint64_t fifo_lookback = 0;
  for (const tdg::BoundaryOutput& bo : eq_.compiled().outputs) {
    if (!bo.fifo) continue;
    fifo_lookback = std::max<std::uint64_t>(
        fifo_lookback, desc.channels()[static_cast<std::size_t>(bo.channel)]
                           .capacity);
  }

  if (enabled_) {
    // The certifier and the verification snapshot read back one period plus
    // the graph's history depth behind the frontier; keep those frames from
    // being pruned under the emission processes' retain floor. Boundary-FIFO
    // credit checks additionally look back `capacity` frames.
    eq_.engine_mut().set_retain_margin(
        static_cast<std::uint64_t>(opts_.max_period) + eq_.graph().max_lag() +
        fifo_lookback + 4);
    // Duty cycling: a probe window must let the slowest candidate climb
    // from a reseed to the certification gate (max_period warm-up plus
    // max(K, max_lag, max_period) consecutive hits, see maybe_fastforward).
    duty_on_len_ =
        static_cast<std::uint64_t>(opts_.max_period) +
        std::max<std::uint64_t>({opts_.stable_periods, eq_.graph().max_lag(),
                                 opts_.max_period}) +
        4;
    duty_on_until_ = duty_on_len_;
    eq_.runtime().set_regime_listener([this] {
      detector_.reset();
      ++stats_.regime_resets;
    });
  }
}

void AdaptiveModel::disable(std::string reason) {
  if (!enabled_) return;
  enabled_ = false;
  ++stats_.refusals;
  stats_.last_refusal = std::move(reason);
}

void AdaptiveModel::refuse(std::string reason, std::uint64_t retry_at) {
  ++stats_.refusals;
  stats_.last_refusal = std::move(reason);
  if (retry_at == kNever) {
    // A structural defect no later frontier can cure: certification would
    // refuse identically forever, so stop paying for detection as well.
    enabled_ = false;
    return;
  }
  next_attempt_ = std::max(retry_at, fed_ + 1);
}

Outcome AdaptiveModel::run(std::optional<TimePoint> until) {
  Outcome synth;
  synth.idle = true;
  synth.completed = true;
  synth.stop = sim::StopReason::kIdle;
  if (fast_forwarded_) return synth;

  horizon_run_ = until.has_value();
  eq_.runtime().kernel().set_timestep_hook([this] { return on_timestep(); });
  Outcome out = eq_.run(until);
  if (fast_forwarded_) return synth;
  return out;
}

TimePoint AdaptiveModel::end_time() const {
  return fast_forwarded_ ? ff_end_ : eq_.end_time();
}

bool AdaptiveModel::on_timestep() {
  if (user_cancel_ && user_cancel_->cancelled()) {
    // Forward the caller's cancellation through our own guard token; the
    // resulting kCancelled outcome is returned unchanged. Returning true
    // re-enters the loop head, where the guard stops the run before the
    // next dispatch.
    user_cancelled_ = true;
    self_cancel_.request_cancel();
    return true;
  }
  if (!enabled_ || fast_forwarded_) return false;
  feed_detector();
  if (!horizon_run_) maybe_fastforward();
  // After a cut-over the kernel must not dispatch the event at the next
  // timestep (it would publish an instant the analytic tail already
  // holds): claim the boundary so the loop re-checks the guards, where
  // the self-cancel token now stops it.
  return fast_forwarded_;
}

void AdaptiveModel::feed_detector() {
  const tdg::Engine& eng = eq_.engine();
  const std::uint64_t complete =
      std::min<std::uint64_t>(eng.completed_iterations(), tokens_);
  if (complete <= fed_) return;
  // Off-window: consume the frames without touching the detector (or the
  // engine rows). The observation resumes through a poisoned reseed frame,
  // so the skipped gap can never masquerade as delta evidence.
  if (complete <= duty_skip_until_) {
    duty_gap_ = true;
    fed_ = complete;
    return;
  }
  const std::size_t n = eq_.graph().node_count();
  frame_buf_.resize(n);
  for (std::uint64_t k = fed_; k < complete; ++k) {
    if (k < duty_skip_until_) {
      duty_gap_ = true;
      continue;
    }
    bool reseed = duty_gap_;
    if (reseed) {
      duty_gap_ = false;
      duty_on_until_ = k + duty_on_len_;
    }
    bool any_eps = false;
    if (const mp::Scalar* row = eng.complete_row(k)) {
      for (std::size_t i = 0; i < n; ++i) {
        if (row[i].is_eps()) {
          any_eps = true;
          frame_buf_[i] = 0;
        } else {
          frame_buf_[i] = row[i].value();
        }
      }
    } else {
      // Pruned below the retain window (should not happen for k < complete
      // with the retain margin in place): poison the frame.
      any_eps = true;
      std::fill(frame_buf_.begin(), frame_buf_.end(), 0);
    }
    detector_.observe(frame_buf_, any_eps || reseed);
    if (k + 1 == duty_on_until_) {
      // Probe window boundary: a stream still showing no regularity earns
      // a (doubling, capped) off-window; a warming one keeps the detector
      // on until it either fires or goes cold again.
      if (detector_.warming() || detector_.has_stable()) {
        duty_on_until_ = k + 1 + duty_on_len_;
        duty_off_ = 0;
      } else {
        duty_off_ = std::min<std::uint64_t>(duty_off_ * 2 + duty_on_len_,
                                            duty_on_len_ * 15);
        duty_skip_until_ = k + 1 + duty_off_;
      }
    }
  }
  fed_ = complete;
}

void AdaptiveModel::maybe_fastforward() {
  if (!detector_.has_stable()) return;  // O(1): the common aperiodic miss
  if (fed_ >= tokens_) return;          // nothing left to skip
  if (fed_ < opts_.min_iterations) return;
  if (fed_ < next_attempt_) return;
  const std::optional<PeriodDetector::Detection> det = detector_.stable();
  if (!det) return;
  // The induction base must cover the graph's history depth and a full
  // period, not just the detector's K (docs/DESIGN.md §15).
  const std::uint64_t need = std::max<std::uint64_t>(
      {opts_.stable_periods, eq_.graph().max_lag(), det->period});
  if (detector_.stable_count(det->period) < need) return;
  try {
    fastforward(*det);
  } catch (const Refusal& r) {
    refuse(r.reason, r.retry_at);
  } catch (const std::exception& e) {
    // Anything other than a certification refusal — an injected commit
    // fault, an engine error — means the publish path cannot be trusted.
    // Nothing was committed (the fault point precedes the first push), so
    // the safe response is to finish the run fully simulated.
    disable(std::string("fast-forward failed: ") + e.what());
  }
}

std::int64_t AdaptiveModel::node_value_at(tdg::NodeId n, std::uint64_t k,
                                          std::uint64_t frontier,
                                          std::uint32_t period) const {
  if (k < frontier) {
    const std::optional<mp::Scalar> v = eq_.engine().scalar_value(n, k);
    if (!v || v->is_eps())
      throw Error("adaptive: missing value behind the frontier");
    return v->value();
  }
  const std::uint64_t base0 = frontier - period;
  const std::uint64_t k0 = base0 + (k - base0) % period;
  const auto m = static_cast<std::int64_t>((k - k0) / period);
  const std::optional<mp::Scalar> v = eq_.engine().scalar_value(n, k0);
  if (!v || v->is_eps())
    throw Error("adaptive: missing value behind the frontier");
  return v->value() + lambda_[static_cast<std::size_t>(n)] * m;
}

void AdaptiveModel::fastforward(const PeriodDetector::Detection& det) {
  const std::uint32_t period = det.period;
  const std::uint64_t f = fed_;
  const std::uint64_t count = tokens_;
  const tdg::Graph& g = eq_.graph();
  const tdg::Engine& eng = eq_.engine();
  const tdg::Program& prog = eng.program();
  const model::ArchitectureDesc& desc = eq_.runtime().desc();
  const std::vector<std::int64_t>& lambda = det.lambda;

  // Finite engine value (pre-history e = 0 for negative iterations).
  const auto val = [&eng](tdg::NodeId n, std::int64_t k) -> std::int64_t {
    if (k < 0) return 0;
    const std::optional<mp::Scalar> v =
        eng.scalar_value(n, static_cast<std::uint64_t>(k));
    if (!v || v->is_eps())
      throw Refusal{"ε or unretained value in the certification window",
                    kNever};
    return v->value();
  };
  const auto attrs_at = [&](model::SourceId s,
                            std::uint64_t k) -> model::TokenAttrs {
    if (const std::optional<model::TokenAttrs> a = eng.attrs_of(s, k)) return *a;
    const auto& fn = desc.sources()[static_cast<std::size_t>(s)].attrs;
    return fn ? fn(k) : model::TokenAttrs{};
  };

  // ---- 1. Program-level certification -----------------------------------
  if (!prog.guards.empty())
    throw Refusal{"guarded arcs: future guard decisions are opaque", kNever};
  certify_loads(prog, period, f);

  // ---- 2. Environment certification -------------------------------------
  // Sources and sinks follow the same two-branch recurrence the simulated
  // processes implement:
  //   offer(k)  = max(earliest(k), completion(k-1) + gap(k))
  //   actual(k) = max(offer(k),   actual(k-1) + consume_delay(k))
  // Certify per branch: the functor branch must step by a constant E per
  // period on the whole remaining range, the history branch inherits its
  // node's measured Λ, and whichever branch is slower must already be
  // dominated at every phase of the last observed period.
  for (const tdg::BoundaryInput& bi : eq_.compiled().inputs) {
    const model::ChannelEndpoints& ep = desc.endpoints(bi.channel);
    if (!ep.written_by_source())
      throw Refusal{"input boundary not fed by a source", kNever};
    const model::SourceDesc& src =
        desc.sources()[static_cast<std::size_t>(ep.writer_source)];
    const tdg::NodeId u = g.find(bi.u_node);
    const tdg::NodeId x = g.find(bi.x_node);
    if (u == tdg::kNoNode || x == tdg::kNoNode)
      throw Refusal{"boundary node not found: " + bi.u_node, kNever};

    const std::int64_t step_a =
        certify_time_step(src.earliest, period, f, count, "source " + src.name);
    certify_duration_periodic(src.gap, period, f, count, "source " + src.name);
    certify_attrs_periodic(src.attrs, period, f, count, "source " + src.name);

    const std::int64_t lam_u = lambda[static_cast<std::size_t>(u)];
    const std::int64_t lam_x = lambda[static_cast<std::size_t>(x)];
    bool a_wins = false;
    bool b_wins = false;
    for (std::uint64_t k = f - period; k < f; ++k) {
      const std::int64_t a = src.earliest(k).count();
      const std::int64_t gap =
          src.gap ? src.gap(k).count() : 0;
      const std::int64_t b = val(x, static_cast<std::int64_t>(k) - 1) + gap;
      if (val(u, static_cast<std::int64_t>(k)) != std::max(a, b))
        throw Refusal{"source " + src.name +
                          ": offer disagrees with the branch model",
                      kNever};
      if (a > b) a_wins = true;
      if (b > a) b_wins = true;
    }
    if (step_a == lam_x) {
      if (lam_u != step_a)
        throw Refusal{"source " + src.name + ": offer rate inconsistent",
                      f + period};
    } else if (step_a < lam_x) {
      // The functor branch falls behind: it must already be dominated at
      // every phase, and the offer must ride the history branch.
      if (a_wins || lam_u != lam_x)
        throw Refusal{"source " + src.name +
                          ": slower earliest branch still winning",
                      f + period};
    } else {
      if (b_wins || lam_u != step_a)
        throw Refusal{"source " + src.name +
                          ": slower history branch still winning",
                      f + period};
    }
  }

  for (const tdg::BoundaryOutput& bo : eq_.compiled().outputs) {
    const model::ChannelEndpoints& ep = desc.endpoints(bo.channel);
    if (!ep.read_by_sink())
      throw Refusal{"output boundary not drained by a sink", kNever};
    if (bo.actual_node.empty()) continue;  // always-ready sink: no feedback
    const model::SinkDesc& sink =
        desc.sinks()[static_cast<std::size_t>(ep.reader_sink)];
    const tdg::NodeId y = g.find(bo.offer_node);
    const tdg::NodeId a_node = g.find(bo.actual_node);
    if (y == tdg::kNoNode || a_node == tdg::kNoNode)
      throw Refusal{"boundary node not found: " + bo.offer_node, kNever};

    certify_duration_periodic(sink.consume_delay, period, f, count,
                              "sink " + sink.name);
    const std::int64_t lam_y = lambda[static_cast<std::size_t>(y)];
    const std::int64_t lam_a = lambda[static_cast<std::size_t>(a_node)];

    if (bo.fifo) {
      // Boundary FIFO: the simulated channel and sink implement
      //   xw(k) = max(y(k),  xr(k - capacity))              (slot credit)
      //   xr(k) = max(xw(k), xr(k-1) + consume_delay(k))    (drain)
      // where xw = actual_node (write instant) and xr = xr_actual_node
      // (read instant), both external. Certify each recurrence over the
      // window and pin the branch that wins after the frontier.
      const tdg::NodeId xr = g.find(bo.xr_actual_node);
      if (xr == tdg::kNoNode)
        throw Refusal{"boundary node not found: " + bo.xr_actual_node, kNever};
      const auto cap = static_cast<std::int64_t>(
          desc.channels()[static_cast<std::size_t>(bo.channel)].capacity);
      const std::int64_t lam_r = lambda[static_cast<std::size_t>(xr)];

      bool offer_wins = false;   // y strictly above the credit branch
      bool credit_wins = false;  // credit strictly above y
      bool write_wins = false;   // xw strictly above the drain history
      bool drain_wins = false;
      for (std::uint64_t k = f - period; k < f; ++k) {
        const auto ks = static_cast<std::int64_t>(k);
        const std::int64_t offer = val(y, ks);
        const std::int64_t credit = val(xr, ks - cap);
        const std::int64_t w_v = val(a_node, ks);
        if (w_v != std::max(offer, credit))
          throw Refusal{"fifo " + sink.name +
                            ": write instant disagrees with the credit model",
                        kNever};
        const std::int64_t delay =
            sink.consume_delay ? sink.consume_delay(k).count() : 0;
        const std::int64_t hist = val(xr, ks - 1) + delay;
        if (val(xr, ks) != std::max(w_v, hist))
          throw Refusal{"fifo " + sink.name +
                            ": read instant disagrees with the drain model",
                        kNever};
        if (offer > credit) offer_wins = true;
        if (credit > offer) credit_wins = true;
        if (w_v > hist) write_wins = true;
        if (hist > w_v) drain_wins = true;
      }
      // Write recurrence: the branch with the larger rate dominates
      // eventually; certify only when it already dominates at every phase
      // and the write rate rides it.
      if (lam_y == lam_r) {
        if (lam_a != lam_y)
          throw Refusal{"fifo " + sink.name + ": write rate inconsistent",
                        f + period};
      } else if (lam_y < lam_r) {
        if (offer_wins || lam_a != lam_r)
          throw Refusal{"fifo " + sink.name +
                            ": slower offer branch still winning",
                        f + period};
      } else {
        if (credit_wins || lam_a != lam_y)
          throw Refusal{"fifo " + sink.name +
                            ": slower credit branch still winning",
                        f + period};
      }
      // Read recurrence: same shape as the rendezvous sink below.
      if (lam_a > lam_r)
        throw Refusal{"fifo " + sink.name + ": write rate exceeds drain rate",
                      f + period};
      if (lam_a < lam_r && write_wins)
        throw Refusal{"fifo " + sink.name +
                          ": slower write branch still winning",
                      f + period};
      (void)drain_wins;
      continue;
    }

    bool offer_wins = false;
    bool history_wins = false;
    for (std::uint64_t k = f - period; k < f; ++k) {
      const std::int64_t offer = val(y, static_cast<std::int64_t>(k));
      const std::int64_t delay =
          sink.consume_delay ? sink.consume_delay(k).count() : 0;
      const std::int64_t hist =
          val(a_node, static_cast<std::int64_t>(k) - 1) + delay;
      if (val(a_node, static_cast<std::int64_t>(k)) != std::max(offer, hist))
        throw Refusal{"sink " + sink.name +
                          ": completion disagrees with the branch model",
                      kNever};
      if (offer > hist) offer_wins = true;
      if (hist > offer) history_wins = true;
    }
    if (lam_y > lam_a) {
      // Offers accelerate past the sink's completion rate: the pattern
      // must eventually break, never certify it.
      throw Refusal{"sink " + sink.name + ": offer rate exceeds drain rate",
                    f + period};
    }
    if (lam_y < lam_a && offer_wins)
      throw Refusal{"sink " + sink.name +
                        ": slower offer branch still winning",
                    f + period};
    (void)history_wins;
  }

  // ---- 3. Per-arc branch domination -------------------------------------
  // Computed nodes continue the period by induction when, over the last
  // observed period, every winning in-arc connects nodes of equal Λ and
  // every dominated in-arc comes from a node that rises no faster than its
  // destination.
  for (const tdg::Arc& arc : g.arcs()) {
    const std::int64_t lam_src = lambda[static_cast<std::size_t>(arc.src)];
    const std::int64_t lam_dst = lambda[static_cast<std::size_t>(arc.dst)];
    for (std::uint64_t k = f - period; k < f; ++k) {
      const model::TokenAttrs at = attrs_at(arc.attr_source, k);
      const std::int64_t term =
          val(arc.src, static_cast<std::int64_t>(k) -
                           static_cast<std::int64_t>(arc.lag)) +
          g.arc_weight(arc, at, k).count();
      const std::int64_t dst_v = val(arc.dst, static_cast<std::int64_t>(k));
      if (term > dst_v)
        throw Refusal{"arc term exceeds its destination (inconsistent frame)",
                      kNever};
      if (term == dst_v) {
        if (lam_src != lam_dst)
          throw Refusal{"winning arc joins nodes of unequal rate at k=" +
                            std::to_string(k),
                        f + period};
      } else if (lam_src > lam_dst) {
        throw Refusal{"dominated arc rises faster than its destination at k=" +
                          std::to_string(k),
                      f + period};
      }
    }
  }

  // ---- 4. Seeded one-period verification --------------------------------
  // Defense in depth: replay one period on a fresh engine seeded with the
  // trailing history window, feeding the *predicted* externals, and demand
  // the computed instants land exactly on the P-rule (within tolerance).
  const std::uint64_t hist = std::max<std::uint64_t>(g.max_lag(), 1);
  const tdg::Engine::HistoryWindow window = eng.snapshot(f - hist, hist);
  tdg::Engine::Options vopts;
  vopts.instant_sink = nullptr;
  vopts.usage_sink = nullptr;
  vopts.opcode_dispatch = opcode_dispatch_;
  tdg::Engine verify(g, prog, vopts);
  verify.seed_history(window);
  const std::uint64_t verify_frames = std::min<std::uint64_t>(period, count - f);
  const auto n_nodes = static_cast<tdg::NodeId>(g.node_count());
  for (std::uint64_t k = f; k < f + verify_frames; ++k) {
    for (std::size_t s = 0; s < prog.n_sources; ++s) {
      verify.set_attrs(static_cast<model::SourceId>(s), k,
                       attrs_at(static_cast<model::SourceId>(s), k - period));
    }
    for (tdg::NodeId n = 0; n < n_nodes; ++n) {
      const tdg::NodeKind kind = g.node(n).kind;
      if (kind != tdg::NodeKind::kInput && kind != tdg::NodeKind::kExternal)
        continue;
      const std::int64_t predicted =
          val(n, static_cast<std::int64_t>(k - period)) +
          lambda[static_cast<std::size_t>(n)];
      verify.set_external(n, k, TimePoint::at_ps(predicted));
    }
  }
  std::int64_t residual = 0;
  for (std::uint64_t k = f; k < f + verify_frames; ++k) {
    for (tdg::NodeId n = 0; n < n_nodes; ++n) {
      const std::optional<mp::Scalar> got = verify.scalar_value(n, k);
      if (!got || got->is_eps())
        throw Refusal{"verification engine left an instant undetermined",
                      kNever};
      const std::int64_t want =
          val(n, static_cast<std::int64_t>(k - period)) +
          lambda[static_cast<std::size_t>(n)];
      residual = std::max(residual, std::abs(got->value() - want));
    }
  }
  if (residual > opts_.tolerance_ps)
    throw Refusal{"verification residual " + std::to_string(residual) +
                      "ps exceeds tolerance",
                  f + period};

  // ---- 5. Plan the trace extensions (read-only) --------------------------
  // Everything that can refuse happens here; the commit below only appends.
  // The extensions are written straight into the final trace vectors — no
  // staging copy — which is safe because every vector is reserved to its
  // final size before the fault point, making the fill loops non-throwing
  // (and halving the memory traffic of the dominant fast-forward cost).
  const std::uint64_t tail_window =
      static_cast<std::uint64_t>(opts_.stable_periods) * period;

  struct SeriesPlan {
    trace::InstantSeries* series = nullptr;
    std::uint64_t len = 0;
    std::int64_t lam = 0;
  };
  std::vector<SeriesPlan> series_plans;
  trace::InstantTraceSet& iset = eq_.runtime().mutable_instants();
  std::vector<std::string> series_names;
  series_names.reserve(iset.all().size());
  for (const auto& [name, unused] : iset.all()) series_names.push_back(name);
  for (const std::string& name : series_names) {
    trace::InstantSeries& s = iset.series(name);
    const std::uint64_t len = s.size();
    if (len == count) continue;
    if (len > count)
      throw Refusal{"series " + name + " longer than the token count", kNever};
    if (len < static_cast<std::uint64_t>(period) + 1)
      throw Refusal{"series " + name + " too short to extend", f + period};
    const std::vector<TimePoint>& v = s.values();
    const std::int64_t lam =
        v[len - 1].count() - v[len - 1 - period].count();
    const std::uint64_t w = std::min<std::uint64_t>(len - period, tail_window);
    for (std::uint64_t j = len - w; j < len; ++j) {
      if (v[j].count() != v[j - period].count() + lam)
        throw Refusal{"series " + name + " tail breaks the period",
                      f + period};
    }
    series_plans.push_back({&s, len, lam});
  }

  struct LabelPlan {
    std::int32_t id = 0;
    std::uint64_t len = 0;
    std::int64_t lam = 0;
    std::vector<std::size_t> rows;  ///< simulated row index per iteration
  };
  struct UsagePlan {
    trace::UsageTrace* trace = nullptr;
    std::vector<LabelPlan> labels;
    std::uint64_t add = 0;
  };
  std::vector<UsagePlan> usage_plans;
  trace::UsageTraceSet& uset = eq_.runtime().mutable_usage();
  std::vector<std::string> trace_names;
  for (const auto& [name, unused] : uset.all()) trace_names.push_back(name);
  for (const std::string& name : trace_names) {
    trace::UsageTrace& t = uset.trace(name);
    const std::vector<std::int32_t>& ids = t.label_ids();
    std::int32_t max_id = -1;
    for (const std::int32_t id : ids) max_id = std::max(max_id, id);
    std::vector<std::vector<std::size_t>> by_label(
        static_cast<std::size_t>(max_id + 1));
    for (std::size_t r = 0; r < ids.size(); ++r)
      by_label[static_cast<std::size_t>(ids[r])].push_back(r);

    UsagePlan plan;
    plan.trace = &t;
    for (std::int32_t id = 0; id <= max_id; ++id) {
      std::vector<std::size_t>& rows = by_label[static_cast<std::size_t>(id)];
      const std::uint64_t len = rows.size();
      if (len == 0 || len == count) continue;
      if (len > count)
        throw Refusal{"usage label " + t.label(id) + " exceeds token count",
                      kNever};
      if (len < static_cast<std::uint64_t>(period) + 1)
        throw Refusal{"usage label " + t.label(id) + " too short to extend",
                      f + period};
      const std::vector<TimePoint>& starts = t.starts();
      const std::vector<TimePoint>& ends = t.ends();
      const std::vector<std::int64_t>& ops = t.ops();
      const std::int64_t lam = ends[rows[len - 1]].count() -
                               ends[rows[len - 1 - period]].count();
      const std::uint64_t w =
          std::min<std::uint64_t>(len - period, tail_window);
      for (std::uint64_t j = len - w; j < len; ++j) {
        const std::size_t r = rows[j];
        const std::size_t rp = rows[j - period];
        if (starts[r].count() != starts[rp].count() + lam ||
            ends[r].count() != ends[rp].count() + lam || ops[r] != ops[rp])
          throw Refusal{"usage label " + t.label(id) + " tail breaks the "
                        "period", f + period};
      }
      plan.add += count - len;
      plan.labels.push_back({id, len, lam, std::move(rows)});
    }
    if (!plan.labels.empty()) usage_plans.push_back(std::move(plan));
  }

  // Everything that could still throw happens before the commit: the final
  // completion instant (reads certification-window frames) and the analytic
  // cross-check. After the fault point the function must not fail.
  lambda_ = det.lambda;
  std::int64_t end_ps = 0;
  for (tdg::NodeId n = 0; n < n_nodes; ++n)
    end_ps = std::max(end_ps, node_value_at(n, count - 1, f, period));
  // A simulated sink delays consume_delay(count) after its final read
  // before blocking forever, and that delay expiry is the kernel's last
  // event: reproduce it so end_time() matches the full simulation.
  for (const tdg::BoundaryOutput& bo : eq_.compiled().outputs) {
    const model::ChannelEndpoints& ep = desc.endpoints(bo.channel);
    if (!ep.read_by_sink()) continue;
    const model::SinkDesc& sink =
        desc.sinks()[static_cast<std::size_t>(ep.reader_sink)];
    if (!sink.consume_delay) continue;
    const std::string& read_node =
        bo.fifo ? bo.xr_actual_node : bo.actual_node;
    if (read_node.empty()) continue;
    const tdg::NodeId r = g.find(read_node);
    if (r == tdg::kNoNode) continue;
    end_ps = std::max(end_ps, node_value_at(r, count - 1, f, period) +
                                  sink.consume_delay(count).count());
  }

  // Analytic cross-check (stats only): λ of the frozen program's analysis
  // graph. Failures — e.g. attribute tables shorter than the sample — are
  // ignored; the fast-forward itself never depends on this value.
  double analytic_ratio_ps = 0.0;
  try {
    const tdg::RatioGraph rg = tdg::to_ratio_graph(
        g,
        [&desc](model::SourceId s, std::uint64_t k) {
          const auto& fn = desc.sources()[static_cast<std::size_t>(s)].attrs;
          return fn ? fn(k) : model::TokenAttrs{};
        },
        std::min<std::uint64_t>(64, count));
    analytic_ratio_ps = mp::steady_state(rg.nodes, rg.arcs).cycle_ratio_ps;
  } catch (const std::exception&) {
    analytic_ratio_ps = 0.0;
  }

  // ---- 6. Commit ---------------------------------------------------------
  // Reserve every destination to its final size first: a bad_alloc lands
  // before the fault point with nothing published. Past the fault point the
  // fill loops only push into reserved capacity — non-throwing, so the
  // commit is all-or-nothing even against an injected fault.
  for (const SeriesPlan& p : series_plans) p.series->reserve(count);
  for (const UsagePlan& up : usage_plans)
    up.trace->reserve(up.trace->size() + up.add);

  MAXEV_FAULT_POINT("adaptive.fastforward");
  for (const SeriesPlan& p : series_plans) {
    trace::InstantSeries& s = *p.series;
    const std::vector<TimePoint>& v = s.values();
    for (std::uint64_t j = p.len; j < count; ++j)
      s.push(TimePoint::at_ps(v[j - period].count() + p.lam));
  }
  for (const UsagePlan& up : usage_plans) {
    trace::UsageTrace& t = *up.trace;
    const std::vector<TimePoint>& starts = t.starts();
    const std::vector<TimePoint>& ends = t.ends();
    const std::vector<std::int64_t>& ops = t.ops();
    for (const LabelPlan& lp : up.labels) {
      // Rows of this label appended below land at t.size() + i, so the
      // source row for j once j - period crosses into the extension is
      // base + (j - period - len).
      const std::size_t base = t.size();
      for (std::uint64_t j = lp.len; j < count; ++j) {
        const std::size_t rp = j - period < lp.len
                                   ? lp.rows[j - period]
                                   : base + (j - period - lp.len);
        t.push(TimePoint::at_ps(starts[rp].count() + lp.lam),
               TimePoint::at_ps(ends[rp].count() + lp.lam), ops[rp], lp.id);
      }
    }
  }

  // ---- 7. Finalize -------------------------------------------------------
  stats_.extrapolated = true;
  stats_.detected_period = period;
  stats_.detected_at = f;
  stats_.extrapolated_iterations = count - f;
  const std::uint64_t periods_left = (count - f + period - 1) / period;
  stats_.max_error_ps = residual * static_cast<std::int64_t>(periods_left);
  stats_.analytic_ratio_ps = analytic_ratio_ps;
  fast_forwarded_ = true;
  ff_end_ = TimePoint::at_ps(end_ps);

  // Stop the simulation: the kernel's guard sees the token before the next
  // dispatch, leaving every parked process un-resumed (no further instants
  // are recorded).
  self_cancel_.request_cancel();
}

}  // namespace maxev::study
