#include "study/backend.hpp"

#include <chrono>
#include <utility>

#include "core/equivalent_model.hpp"
#include "core/lt_runner.hpp"
#include "util/error.hpp"

namespace maxev::study {

namespace {

void apply_overhead(sim::Kernel& kernel, double ns) {
  if (ns > 0) {
    kernel.set_synthetic_event_overhead(
        std::chrono::nanoseconds(static_cast<std::int64_t>(ns)));
  }
}

class BaselineModel final : public Model {
 public:
  BaselineModel(const Scenario& s, const RunConfig& rc)
      : rt_(s.desc_ptr(), {}, rc.observe) {
    apply_overhead(rt_.kernel(), rc.event_overhead_ns);
  }

  Outcome run(std::optional<TimePoint> until) override { return rt_.run(until); }
  const trace::InstantTraceSet& instants() const override {
    return rt_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return rt_.usage(); }
  const sim::KernelStats& kernel_stats() const override {
    return rt_.kernel_stats();
  }
  std::uint64_t relation_events() const override {
    return rt_.relation_events();
  }
  TimePoint end_time() const override { return rt_.end_time(); }
  sim::Kernel& kernel() override { return rt_.kernel(); }

 private:
  model::ModelRuntime rt_;
};

class EquivalentBackendModel final : public Model {
 public:
  EquivalentBackendModel(const Scenario& s, const RunConfig& rc)
      : eq_(s.desc_ptr(), s.options().group, options_of(s, rc)) {
    apply_overhead(eq_.runtime().kernel(), rc.event_overhead_ns);
  }

  Outcome run(std::optional<TimePoint> until) override { return eq_.run(until); }
  const trace::InstantTraceSet& instants() const override {
    return eq_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return eq_.usage(); }
  const sim::KernelStats& kernel_stats() const override {
    return eq_.kernel_stats();
  }
  std::uint64_t relation_events() const override {
    return eq_.relation_events();
  }
  TimePoint end_time() const override { return eq_.end_time(); }
  sim::Kernel& kernel() override { return eq_.runtime().kernel(); }
  std::uint64_t instances_computed() const override {
    return eq_.engine().instances_computed();
  }
  std::uint64_t arc_terms_evaluated() const override {
    return eq_.engine().arc_terms_evaluated();
  }
  GraphShape graph_shape() const override {
    return {eq_.graph().node_count(), eq_.graph().paper_node_count(),
            eq_.graph().arc_count()};
  }

 private:
  static core::EquivalentModel::Options options_of(const Scenario& s,
                                                   const RunConfig& rc) {
    core::EquivalentModel::Options opts;
    opts.fold = s.options().fold;
    opts.pad_nodes = s.options().pad_nodes;
    opts.observe = rc.observe;
    opts.expected_iterations = s.options().expected_iterations;
    return opts;
  }

  core::EquivalentModel eq_;
};

class LooselyTimedBackendModel final : public Model {
 public:
  LooselyTimedBackendModel(const Scenario& s, const RunConfig& rc,
                           Duration quantum)
      : lt_(s.desc_ptr(), quantum, rc.observe) {
    apply_overhead(lt_.kernel(), rc.event_overhead_ns);
  }

  Outcome run(std::optional<TimePoint> until) override {
    Outcome out;
    out.completed = lt_.run(until);
    out.idle = lt_.last_run_idle();
    if (!out.completed && out.idle)
      out.stall_report = "loosely-timed run stalled";
    return out;
  }
  const trace::InstantTraceSet& instants() const override {
    return lt_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return empty_usage_; }
  bool records_usage() const override { return false; }
  const sim::KernelStats& kernel_stats() const override {
    return lt_.kernel_stats();
  }
  std::uint64_t relation_events() const override { return 0; }
  TimePoint end_time() const override { return lt_.end_time(); }
  sim::Kernel& kernel() override { return lt_.kernel(); }

 private:
  core::LooselyTimedModel lt_;
  trace::UsageTraceSet empty_usage_;  // LT records no resource usage
};

}  // namespace

Backend Backend::baseline() {
  return Backend(Kind::kBaseline, "baseline", Duration::ps(0));
}

Backend Backend::equivalent() {
  return Backend(Kind::kEquivalent, "equivalent", Duration::ps(0));
}

Backend Backend::loosely_timed(Duration quantum) {
  return Backend(Kind::kLooselyTimed, "lt(" + quantum.to_string() + ")",
                 quantum);
}

std::unique_ptr<Model> Backend::instantiate(const Scenario& scenario,
                                            const RunConfig& config) const {
  if (!scenario.valid())
    throw DescriptionError("Backend::instantiate: invalid scenario");
  switch (kind_) {
    case Kind::kBaseline:
      return std::make_unique<BaselineModel>(scenario, config);
    case Kind::kEquivalent:
      return std::make_unique<EquivalentBackendModel>(scenario, config);
    case Kind::kLooselyTimed:
      return std::make_unique<LooselyTimedBackendModel>(scenario, config,
                                                        quantum_);
  }
  throw Error("Backend::instantiate: unreachable");
}

}  // namespace maxev::study
