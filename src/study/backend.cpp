#include "study/backend.hpp"

#include <chrono>
#include <utility>

#include "core/batch_equivalent_model.hpp"
#include "core/equivalent_model.hpp"
#include "core/lt_runner.hpp"
#include "util/error.hpp"

namespace maxev::study {

namespace {

void apply_overhead(sim::Kernel& kernel, double ns) {
  if (ns > 0) {
    kernel.set_synthetic_event_overhead(
        std::chrono::nanoseconds(static_cast<std::int64_t>(ns)));
  }
}

class BaselineModel final : public Model {
 public:
  BaselineModel(const Scenario& s, const RunConfig& rc)
      : rt_(s.desc_ptr(), {}, rc.observe) {
    apply_overhead(rt_.kernel(), rc.event_overhead_ns);
  }

  Outcome run(std::optional<TimePoint> until) override { return rt_.run(until); }
  const trace::InstantTraceSet& instants() const override {
    return rt_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return rt_.usage(); }
  const sim::KernelStats& kernel_stats() const override {
    return rt_.kernel_stats();
  }
  std::uint64_t relation_events() const override {
    return rt_.relation_events();
  }
  TimePoint end_time() const override { return rt_.end_time(); }
  sim::Kernel& kernel() override { return rt_.kernel(); }

 private:
  model::ModelRuntime rt_;
};

class EquivalentBackendModel final : public Model {
 public:
  EquivalentBackendModel(const Scenario& s, const RunConfig& rc)
      : eq_(s.desc_ptr(), s.options().group, options_of(s, rc)) {
    apply_overhead(eq_.runtime().kernel(), rc.event_overhead_ns);
  }

  Outcome run(std::optional<TimePoint> until) override { return eq_.run(until); }
  const trace::InstantTraceSet& instants() const override {
    return eq_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return eq_.usage(); }
  const sim::KernelStats& kernel_stats() const override {
    return eq_.kernel_stats();
  }
  std::uint64_t relation_events() const override {
    return eq_.relation_events();
  }
  TimePoint end_time() const override { return eq_.end_time(); }
  sim::Kernel& kernel() override { return eq_.runtime().kernel(); }
  std::uint64_t instances_computed() const override {
    return eq_.engine().instances_computed();
  }
  std::uint64_t arc_terms_evaluated() const override {
    return eq_.engine().arc_terms_evaluated();
  }
  GraphShape graph_shape() const override {
    return {eq_.graph().node_count(), eq_.graph().paper_node_count(),
            eq_.graph().arc_count()};
  }

 private:
  static core::EquivalentModel::Options options_of(const Scenario& s,
                                                   const RunConfig& rc) {
    core::EquivalentModel::Options opts;
    opts.fold = s.options().fold;
    // pad_nodes is per instance (ScenarioOptions): the merged graph of a
    // composed scenario carries one padding block per instance, matching
    // the batched path's padded base graph evaluated N times.
    opts.pad_nodes = s.composed()
                         ? s.options().pad_nodes * s.instances().size()
                         : s.options().pad_nodes;
    opts.observe = rc.observe;
    opts.expected_iterations = s.options().expected_iterations;
    return opts;
  }

  core::EquivalentModel eq_;
};

/// The batched path for batch-eligible composed scenarios: one compiled
/// program + shared frame arena for every instance (docs/DESIGN.md §9).
class BatchEquivalentBackendModel final : public Model {
 public:
  BatchEquivalentBackendModel(const Scenario& s, const RunConfig& rc)
      : eq_(s.desc_ptr(), s.batch_base(), names_of(s), base_group_of(s),
            options_of(s, rc)) {
    apply_overhead(eq_.runtime().kernel(), rc.event_overhead_ns);
  }

  Outcome run(std::optional<TimePoint> until) override { return eq_.run(until); }
  const trace::InstantTraceSet& instants() const override {
    return eq_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return eq_.usage(); }
  const sim::KernelStats& kernel_stats() const override {
    return eq_.kernel_stats();
  }
  std::uint64_t relation_events() const override {
    return eq_.relation_events();
  }
  TimePoint end_time() const override { return eq_.end_time(); }
  sim::Kernel& kernel() override { return eq_.runtime().kernel(); }
  std::uint64_t instances_computed() const override {
    return eq_.engine().instances_computed();
  }
  std::uint64_t arc_terms_evaluated() const override {
    return eq_.engine().arc_terms_evaluated();
  }
  /// The *compiled program's* shape — the base graph evaluated for every
  /// instance, not the N-fold merged graph the isolated path would build.
  GraphShape graph_shape() const override {
    return {eq_.graph().node_count(), eq_.graph().paper_node_count(),
            eq_.graph().arc_count()};
  }

 private:
  static std::vector<std::string> names_of(const Scenario& s) {
    std::vector<std::string> names;
    names.reserve(s.instances().size());
    for (const Instance& inst : s.instances()) names.push_back(inst.name);
    return names;
  }

  /// All instances of a batchable scenario carry the same group; the
  /// composed group is its N-fold concatenation (or empty = abstract all).
  static std::vector<bool> base_group_of(const Scenario& s) {
    const std::vector<bool>& composed = s.options().group;
    if (composed.empty()) return {};
    const std::size_t n = composed.size() / s.instances().size();
    return {composed.begin(),
            composed.begin() + static_cast<std::ptrdiff_t>(n)};
  }

  static core::BatchEquivalentModel::Options options_of(const Scenario& s,
                                                        const RunConfig& rc) {
    core::BatchEquivalentModel::Options opts;
    opts.fold = s.options().fold;
    opts.pad_nodes = s.options().pad_nodes;
    opts.observe = rc.observe;
    opts.expected_iterations = s.options().expected_iterations;
    return opts;
  }

  core::BatchEquivalentModel eq_;
};

class LooselyTimedBackendModel final : public Model {
 public:
  LooselyTimedBackendModel(const Scenario& s, const RunConfig& rc,
                           Duration quantum)
      : lt_(s.desc_ptr(), quantum, rc.observe) {
    apply_overhead(lt_.kernel(), rc.event_overhead_ns);
  }

  Outcome run(std::optional<TimePoint> until) override {
    Outcome out;
    out.completed = lt_.run(until);
    out.idle = lt_.last_run_idle();
    if (!out.completed && out.idle)
      out.stall_report = "loosely-timed run stalled";
    return out;
  }
  const trace::InstantTraceSet& instants() const override {
    return lt_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return empty_usage_; }
  bool records_usage() const override { return false; }
  const sim::KernelStats& kernel_stats() const override {
    return lt_.kernel_stats();
  }
  std::uint64_t relation_events() const override { return 0; }
  TimePoint end_time() const override { return lt_.end_time(); }
  sim::Kernel& kernel() override { return lt_.kernel(); }

 private:
  core::LooselyTimedModel lt_;
  trace::UsageTraceSet empty_usage_;  // LT records no resource usage
};

}  // namespace

Backend Backend::baseline() {
  return Backend(Kind::kBaseline, "baseline", Duration::ps(0));
}

Backend Backend::equivalent() {
  return Backend(Kind::kEquivalent, "equivalent", Duration::ps(0));
}

Backend Backend::loosely_timed(Duration quantum) {
  return Backend(Kind::kLooselyTimed, "lt(" + quantum.to_string() + ")",
                 quantum);
}

std::unique_ptr<Model> Backend::instantiate(const Scenario& scenario,
                                            const RunConfig& config) const {
  if (!scenario.valid())
    throw DescriptionError("Backend::instantiate: invalid scenario");
  switch (kind_) {
    case Kind::kBaseline:
      return std::make_unique<BaselineModel>(scenario, config);
    case Kind::kEquivalent:
      if (config.batch_composed && scenario.batchable())
        return std::make_unique<BatchEquivalentBackendModel>(scenario, config);
      return std::make_unique<EquivalentBackendModel>(scenario, config);
    case Kind::kLooselyTimed:
      return std::make_unique<LooselyTimedBackendModel>(scenario, config,
                                                        quantum_);
  }
  throw Error("Backend::instantiate: unreachable");
}

}  // namespace maxev::study
