#include "study/backend.hpp"

#include <chrono>
#include <utility>

#include "core/batch_equivalent_model.hpp"
#include "core/equivalent_model.hpp"
#include "core/lt_runner.hpp"
#include "study/adaptive.hpp"
#include "util/error.hpp"

namespace maxev::study {

namespace {

void apply_overhead(sim::Kernel& kernel, double ns) {
  if (ns > 0) {
    kernel.set_synthetic_event_overhead(
        std::chrono::nanoseconds(static_cast<std::int64_t>(ns)));
  }
}

void apply_guards(sim::Kernel& kernel, const RunConfig& rc) {
  sim::RunGuards guards;
  guards.max_events = rc.max_events;
  if (rc.deadline_ms > 0.0) {
    guards.deadline = std::chrono::nanoseconds(
        static_cast<std::int64_t>(rc.deadline_ms * 1e6));
  }
  guards.cancel = rc.cancel;
  if (guards.any()) kernel.set_run_guards(guards);
}

class BaselineModel final : public Model {
 public:
  BaselineModel(const Scenario& s, const RunConfig& rc)
      : rt_(s.desc_ptr(), {}, rc.observe) {
    apply_overhead(rt_.kernel(), rc.event_overhead_ns);
    apply_guards(rt_.kernel(), rc);
  }

  Outcome run(std::optional<TimePoint> until) override { return rt_.run(until); }
  const trace::InstantTraceSet& instants() const override {
    return rt_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return rt_.usage(); }
  const sim::KernelStats& kernel_stats() const override {
    return rt_.kernel_stats();
  }
  std::uint64_t relation_events() const override {
    return rt_.relation_events();
  }
  TimePoint end_time() const override { return rt_.end_time(); }
  sim::Kernel& kernel() override { return rt_.kernel(); }

 private:
  model::ModelRuntime rt_;
};

class EquivalentBackendModel final : public Model {
 public:
  EquivalentBackendModel(const Scenario& s, const RunConfig& rc)
      : eq_(s.desc_ptr(), s.options().group, options_of(s, rc)) {
    apply_overhead(eq_.runtime().kernel(), rc.event_overhead_ns);
    apply_guards(eq_.runtime().kernel(), rc);
  }

  Outcome run(std::optional<TimePoint> until) override { return eq_.run(until); }
  const trace::InstantTraceSet& instants() const override {
    return eq_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return eq_.usage(); }
  const sim::KernelStats& kernel_stats() const override {
    return eq_.kernel_stats();
  }
  std::uint64_t relation_events() const override {
    return eq_.relation_events();
  }
  TimePoint end_time() const override { return eq_.end_time(); }
  sim::Kernel& kernel() override { return eq_.runtime().kernel(); }
  std::uint64_t instances_computed() const override {
    return eq_.engine().instances_computed();
  }
  std::uint64_t arc_terms_evaluated() const override {
    return eq_.engine().arc_terms_evaluated();
  }
  GraphShape graph_shape() const override {
    return {eq_.graph().node_count(), eq_.graph().paper_node_count(),
            eq_.graph().arc_count()};
  }

 private:
  static core::EquivalentModel::Options options_of(const Scenario& s,
                                                   const RunConfig& rc) {
    core::EquivalentModel::Options opts;
    opts.fold = s.options().fold;
    // pad_nodes is per instance (ScenarioOptions): the merged graph of a
    // composed scenario carries one padding block per instance, matching
    // the batched path's padded base graph evaluated N times.
    opts.pad_nodes = s.composed()
                         ? s.options().pad_nodes * s.instances().size()
                         : s.options().pad_nodes;
    opts.observe = rc.observe;
    opts.expected_iterations = s.options().expected_iterations;
    opts.compiled = rc.compiled;
    opts.opcode_dispatch = rc.opcode_dispatch;
    return opts;
  }

  core::EquivalentModel eq_;
};

/// The batched path for composed scenarios with equal-structure
/// sub-batches: one compiled program + shared frame arena per sub-batch,
/// the isolated remainder on the merged inline engine, all in one kernel
/// (docs/DESIGN.md §9–§10).
class BatchEquivalentBackendModel final : public Model {
 public:
  BatchEquivalentBackendModel(const Scenario& s, const RunConfig& rc)
      : eq_(s.desc_ptr(), specs_of(s), options_of(s, rc)) {
    apply_overhead(eq_.runtime().kernel(), rc.event_overhead_ns);
    apply_guards(eq_.runtime().kernel(), rc);
  }

  Outcome run(std::optional<TimePoint> until) override { return eq_.run(until); }
  const trace::InstantTraceSet& instants() const override {
    return eq_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return eq_.usage(); }
  const sim::KernelStats& kernel_stats() const override {
    return eq_.kernel_stats();
  }
  std::uint64_t relation_events() const override {
    return eq_.relation_events();
  }
  TimePoint end_time() const override { return eq_.end_time(); }
  sim::Kernel& kernel() override { return eq_.runtime().kernel(); }
  std::uint64_t instances_computed() const override {
    return eq_.instances_computed();
  }
  std::uint64_t arc_terms_evaluated() const override {
    return eq_.arc_terms_evaluated();
  }
  /// The *compiled programs'* shape — each sub-batch's base graph plus the
  /// remainder graph, not the N-fold merged graph the isolated path would
  /// build.
  GraphShape graph_shape() const override {
    const core::BatchEquivalentModel::CompiledShape shape =
        eq_.compiled_shape();
    return {shape.nodes, shape.paper_nodes, shape.arcs};
  }

 private:
  /// Equal-structure sub-batches, translated from the scenario's grouping
  /// (Scenario::batch_groups()) into merged-table spans.
  static std::vector<core::BatchEquivalentModel::GroupSpec> specs_of(
      const Scenario& s) {
    std::vector<core::BatchEquivalentModel::GroupSpec> specs;
    specs.reserve(s.batch_groups().size());
    for (const BatchGroup& bg : s.batch_groups()) {
      core::BatchEquivalentModel::GroupSpec spec;
      spec.base = bg.base;
      spec.group = bg.group;
      for (const std::size_t m : bg.members) {
        const Instance& inst = s.instances()[m];
        spec.names.push_back(inst.name);
        spec.spans.push_back({inst.fn_begin, inst.ch_begin, inst.res_begin,
                              inst.src_begin, inst.sink_begin});
      }
      specs.push_back(std::move(spec));
    }
    return specs;
  }

  static core::BatchEquivalentModel::Options options_of(const Scenario& s,
                                                        const RunConfig& rc) {
    core::BatchEquivalentModel::Options opts;
    opts.fold = s.options().fold;
    // pad_nodes stays per instance across every leg (ScenarioOptions): each
    // sub-batch pads its base graph once (evaluated per member) and the
    // remainder graph is padded per remainder instance below, so a mixed
    // composition runs the same padded work batched or fully isolated.
    opts.pad_nodes = s.options().pad_nodes;
    opts.observe = rc.observe;
    opts.expected_iterations = s.options().expected_iterations;

    // The isolated remainder: instances in no sub-batch keep their
    // abstracted functions on the merged inline engine. Merged-level
    // flags: the composed group restricted to those instances (empty
    // composed group = abstract everything).
    std::vector<bool> grouped(s.instances().size(), false);
    for (const BatchGroup& bg : s.batch_groups())
      for (const std::size_t m : bg.members) grouped[m] = true;
    const std::vector<bool>& composed_group = s.options().group;
    std::vector<bool> isolated;
    std::size_t isolated_count = 0;
    for (std::size_t i = 0; i < s.instances().size(); ++i) {
      if (grouped[i]) continue;
      const Instance& inst = s.instances()[i];
      if (isolated.empty()) isolated.assign(s.desc().functions().size(), false);
      for (std::size_t f = inst.fn_begin; f < inst.fn_end; ++f)
        isolated[f] = composed_group.empty() ? true : composed_group[f];
      ++isolated_count;
    }
    // All-false flags mean "no remainder at all" to the model; drop them
    // when the leftover instances abstract nothing (fully simulated).
    bool any = false;
    for (const bool f : isolated) any = any || f;
    if (any) {
      opts.isolated_group = std::move(isolated);
      opts.isolated_instances = isolated_count;
    }
    opts.threads = rc.threads;
    opts.compiled = rc.compiled;
    opts.opcode_dispatch = rc.opcode_dispatch;
    opts.vector_drain = rc.vector_drain;
    return opts;
  }

  core::BatchEquivalentModel eq_;
};

class LooselyTimedBackendModel final : public Model {
 public:
  LooselyTimedBackendModel(const Scenario& s, const RunConfig& rc,
                           Duration quantum)
      : lt_(s.desc_ptr(), quantum, rc.observe) {
    apply_overhead(lt_.kernel(), rc.event_overhead_ns);
    apply_guards(lt_.kernel(), rc);
  }

  Outcome run(std::optional<TimePoint> until) override { return lt_.run(until); }
  const trace::InstantTraceSet& instants() const override {
    return lt_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return empty_usage_; }
  bool records_usage() const override { return false; }
  const sim::KernelStats& kernel_stats() const override {
    return lt_.kernel_stats();
  }
  std::uint64_t relation_events() const override { return 0; }
  TimePoint end_time() const override { return lt_.end_time(); }
  sim::Kernel& kernel() override { return lt_.kernel(); }

 private:
  core::LooselyTimedModel lt_;
  trace::UsageTraceSet empty_usage_;  // LT records no resource usage
};

}  // namespace

Backend Backend::baseline() {
  return Backend(Kind::kBaseline, "baseline", Duration::ps(0));
}

Backend Backend::equivalent() {
  return Backend(Kind::kEquivalent, "equivalent", Duration::ps(0));
}

Backend Backend::loosely_timed(Duration quantum) {
  return Backend(Kind::kLooselyTimed, "lt(" + quantum.to_string() + ")",
                 quantum);
}

Backend Backend::adaptive(AdaptiveOptions opts) {
  Backend b(Kind::kAdaptive, "adaptive", Duration::ps(0));
  b.adaptive_ = opts;
  return b;
}

std::unique_ptr<Model> Backend::instantiate(const Scenario& scenario,
                                            const RunConfig& config) const {
  if (!scenario.valid())
    throw DescriptionError("Backend::instantiate: invalid scenario");
  switch (kind_) {
    case Kind::kBaseline:
      return std::make_unique<BaselineModel>(scenario, config);
    case Kind::kEquivalent:
      // Any equal-structure sub-batch (>= 2 instances sharing one
      // description + group) routes through the batched model; the fully
      // homogeneous case is the one-group special case. Compositions with
      // no sub-batch at all — and plain scenarios — take the merged
      // inline engine.
      if (config.batch_composed && scenario.partially_batchable())
        return std::make_unique<BatchEquivalentBackendModel>(scenario, config);
      return std::make_unique<EquivalentBackendModel>(scenario, config);
    case Kind::kLooselyTimed:
      return std::make_unique<LooselyTimedBackendModel>(scenario, config,
                                                        quantum_);
    case Kind::kAdaptive:
      // Composed scenarios run on the merged graph: the batched drain owns
      // the timestep-hook slot the detector needs, and the merged path is
      // pinned bit-identical to it.
      return std::make_unique<AdaptiveModel>(scenario, config, adaptive_);
  }
  throw Error("Backend::instantiate: unreachable");
}

}  // namespace maxev::study
