#pragma once

#include <string>
#include <vector>

#include "study/backend.hpp"
#include "study/report.hpp"
#include "study/scenario.hpp"

/// \file study.hpp
/// The exploration front-end: a Study executes a matrix of scenarios ×
/// backends (paper Section IV's protocol generalized from one pair to a
/// whole design space) and returns a structured Report. One backend is the
/// *reference*: every other backend's traces are compared against it (the
/// paper's accuracy criterion) and its wall time is the speed-up
/// denominator. core::run_comparison() is a thin wrapper over a two-backend
/// study; the design-space and multi-instance examples drive wider
/// matrices through the same API.

namespace maxev::study {

/// Execution options shared by every cell of the matrix.
struct StudyOptions {
  /// Wall-clock repetitions per cell; the median is reported.
  int repetitions = 1;
  /// Record observation traces during the measured runs. When false the
  /// runs measure pure simulation speed and compare_traces is ignored.
  bool observe = true;
  /// Compare instant and usage traces against the reference backend.
  bool compare_traces = true;
  /// Throw maxev::SimulationError when any run fails to complete.
  bool require_completion = true;
  /// Synthetic wall-clock cost per kernel event, applied to every backend
  /// (commercial-kernel regime; 0 = this library's native cost).
  double event_overhead_ns = 0.0;
  /// Retain each cell's rep-0 observation traces in the report (Cell::
  /// instants/usage), so downstream analyses need not re-simulate. Only
  /// meaningful with observe; costs one trace copy per cell.
  bool keep_traces = false;
  /// Run composed scenarios with equal-structure sub-batches (>= 2
  /// instances sharing one description + group — eligibility is decided
  /// PER GROUP, so mixed compositions batch what they can and the
  /// remainder runs on the merged inline engine) through the batched
  /// equivalent model (RunConfig::batch_composed). On by default;
  /// per-instance traces are identical either way — turn off to measure
  /// the fully-isolated path (the bench_ablation batched-vs-isolated
  /// ablations 5 and 6).
  bool batch_composed = true;
  /// Worker threads for the matrix itself: cells (scenario × backend ×
  /// repetitions) measure concurrently, then the report is assembled
  /// serially in insertion order — cell order, comparisons and any thrown
  /// error are identical at every setting (docs/DESIGN.md §11). Each cell
  /// still runs its own single kernel; workload closures shared between
  /// scenarios must be re-entrant when > 1. 1 = serial (default), 0 = one
  /// per hardware thread. Wall-clock numbers (and hence speedups) remain
  /// honest per cell but contend for cores; for timing-grade numbers keep
  /// 1.
  int threads = 1;
  /// Worker threads *inside* each batched composed cell, draining its
  /// per-group engines between timestep barriers (RunConfig::threads /
  /// core::BatchEquivalentModel::Options::threads). Independent of
  /// `threads`; both levers may be combined. 1 = serial drain (default),
  /// 0 = one per hardware thread.
  int group_threads = 1;
  /// Run guards, applied to every cell's kernel (RunConfig / sim::
  /// RunGuards): stop a run after this many dispatched events (0 = no
  /// budget). A tripped guard makes the run incomplete; with
  /// require_completion that is a SimulationError carrying RunDiagnostics,
  /// and with isolate_failures a failed cell.
  std::uint64_t max_events = 0;
  /// Wall-clock deadline per cell run, in milliseconds (0 = none).
  double deadline_ms = 0.0;
  /// Cooperative cancellation, polled by every cell's kernel per event —
  /// one token cancels the whole matrix. Not owned; must outlive run().
  const util::CancelToken* cancel = nullptr;
  /// Share one structural-hash program cache (serve::ProgramCache) across
  /// the whole matrix: every (description, group, fold, pad) structure is
  /// derived + compiled once per run() and reused by every cell and
  /// repetition that asks for it again (RunConfig::compiled), including
  /// composed scenarios' equal-structure sub-batches. Traces and every
  /// pre-existing report column are identical either way; the per-cell
  /// hit/miss counts (Cell::cache_hits/cache_misses) are attributed by a
  /// serial-order replay of the recorded key sequences, so the report
  /// stays byte-identical at every `threads` setting. Off = no cache, and
  /// the cache columns are omitted from the CSV/JSON writers entirely.
  bool program_cache = true;
  /// Catch each cell's failure (stall, tripped guard, thrown workload)
  /// into the report as a failed cell — status/error columns, console
  /// "FAILED" — and keep measuring the rest of the matrix instead of
  /// throwing. A failed reference cell disables that scenario's
  /// comparisons and speed-ups (they stay at their unknown defaults).
  /// Off by default: the historical throw-on-first-failure behavior.
  bool isolate_failures = false;
};

class Study {
 public:
  /// Add a scenario (column of the matrix). Insertion order is preserved.
  Study& add(Scenario scenario);
  /// Add a backend (row of the matrix). The first added backend is the
  /// reference unless reference() overrides it.
  Study& add(Backend backend);
  /// Designate the reference backend by name (must have been added).
  Study& reference(const std::string& backend_name);

  [[nodiscard]] const std::vector<Scenario>& scenarios() const {
    return scenarios_;
  }
  [[nodiscard]] const std::vector<Backend>& backends() const {
    return backends_;
  }

  /// Execute the matrix. For each scenario the reference backend runs
  /// first (its rep-0 traces are kept for comparison), then every other
  /// backend in insertion order. \throws maxev::Error on an empty matrix
  /// or bad options; maxev::SimulationError per require_completion.
  [[nodiscard]] Report run(const StudyOptions& opts = {}) const;

 private:
  std::vector<Scenario> scenarios_;
  std::vector<Backend> backends_;
  std::size_t reference_ = 0;
};

}  // namespace maxev::study
