#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "sim/diagnostics.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"

/// \file report.hpp
/// Structured result of a study: one Cell per (scenario, backend) pair with
/// the measured RunMetrics, the TDG shape (when the backend has one), and
/// accuracy against the study's designated reference backend — exact trace
/// comparison (the paper's accuracy criterion) plus max/mean absolute
/// instant error in seconds (the right metric for the loosely-timed
/// backend, which is approximate by design). Writers reuse util/csv and
/// util/json so reports feed the same tooling as the bench trajectory.

namespace maxev::study {

/// Accuracy of one cell against the reference backend's traces.
struct ErrorStats {
  /// nullopt = every evolution instant identical (the paper's claim).
  std::optional<std::string> instant_mismatch;
  /// nullopt = every resource busy interval identical.
  std::optional<std::string> usage_mismatch;
  /// Absolute instant error over all series common with the reference.
  double max_abs_seconds = 0.0;
  double mean_abs_seconds = 0.0;
  std::uint64_t instants_compared = 0;

  [[nodiscard]] bool exact() const {
    return !instant_mismatch && !usage_mismatch;
  }
};

/// One (scenario, backend) cell.
struct Cell {
  std::string scenario;
  std::string backend;
  bool is_reference = false;
  /// The backend is approximate by design (loosely-timed): timing drift in
  /// its traces is its normal state, not an accuracy regression. Drives the
  /// console rendering ("max err" vs "MISMATCH").
  bool approximate_backend = false;

  core::RunMetrics metrics;

  /// TDG shape (equivalent backend only; zero otherwise).
  std::size_t graph_nodes = 0;
  std::size_t graph_paper_nodes = 0;
  std::size_t graph_arcs = 0;

  /// reference wall / this wall (1 for the reference itself; 0 if unknown).
  double speedup_vs_reference = 0.0;
  /// reference relation events / this cell's (0 when undefined).
  double event_ratio_vs_reference = 0.0;
  /// reference kernel events / this cell's (0 when undefined).
  double kernel_event_ratio_vs_reference = 0.0;

  /// Accuracy vs the reference backend; absent for the reference cell and
  /// for runs without trace comparison.
  std::optional<ErrorStats> errors;

  /// Program-cache consultations attributed to this cell's instantiations
  /// (StudyOptions::program_cache; serial-order replay, so the values are
  /// identical at every thread count). -1 = the study ran without a cache;
  /// the CSV/JSON writers then omit the columns, keeping cache-less
  /// reports byte-identical to the pre-cache format.
  std::int64_t cache_hits = -1;
  std::int64_t cache_misses = -1;

  /// Adaptive-backend fidelity (Model::adaptive_stats()): "simulated" when
  /// the run stayed in full simulation, "extrapolated" when the analytic
  /// fast-forward engaged. Empty for every other backend — the writers then
  /// omit the three columns entirely, keeping adaptive-less reports
  /// byte-identical to the previous format (same convention as the cache
  /// counters above).
  std::string fidelity;
  /// Iterations filled in analytically (-1 = not an adaptive cell).
  std::int64_t extrapolated_iterations = -1;
  /// Reported extrapolation error bound in picoseconds (-1 = not an
  /// adaptive cell; 0 = provably exact continuation).
  std::int64_t max_error_ps = -1;

  /// The rep-0 run's observation traces, retained when
  /// StudyOptions::keep_traces is set (null otherwise) — analyses like
  /// per-instance latency read them without re-simulating. Not serialized
  /// by the CSV/JSON writers.
  std::shared_ptr<const trace::InstantTraceSet> instants;
  std::shared_ptr<const trace::UsageTraceSet> usage;

  /// This cell's measurement threw and the study isolated the failure
  /// (StudyOptions::isolate_failures): metrics/errors above are the
  /// defaults, `error` carries the exception message (naming the cell),
  /// and `diagnostics` — when the failure was a SimulationError that
  /// carried them — says what the run was doing when it stopped.
  bool failed = false;
  std::string error;
  std::shared_ptr<const sim::RunDiagnostics> diagnostics;
};

/// The full matrix, scenario-major in insertion order.
class Report {
 public:
  std::vector<std::string> scenarios;
  std::vector<std::string> backends;
  std::string reference_backend;
  std::vector<Cell> cells;

  /// Cell lookup by names; nullptr when absent.
  [[nodiscard]] const Cell* find(const std::string& scenario,
                                 const std::string& backend) const;

  /// Like find(), but throws maxev::Error naming the missing cell — for
  /// callers that know the cell must exist (benches, reports).
  [[nodiscard]] const Cell& at(const std::string& scenario,
                               const std::string& backend) const;

  /// Console rendering (one table row per cell).
  [[nodiscard]] std::string to_string() const;

  /// One CSV row per cell. Throws maxev::Error on I/O failure.
  void write_csv(const std::string& path) const;

  /// The report as a JSON document (scenarios, backends, reference, cells).
  [[nodiscard]] std::string to_json() const;
  void write_json(const std::string& path) const;
};

}  // namespace maxev::study
