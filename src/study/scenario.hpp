#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/desc.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"

/// \file scenario.hpp
/// A value-semantic scenario: *what* to evaluate. A Scenario couples shared
/// ownership of a validated model::ArchitectureDesc with a name, the
/// abstraction group, and the per-run modelling options (graph folding,
/// padding, observation-sink sizing). Scenarios are cheap to copy and safe
/// to build from temporaries — the dangling-reference hazards of the
/// reference-holding model constructors do not exist at this layer.
///
/// compose() merges N scenario instances into one scenario whose description
/// contains every instance side by side with namespaced names
/// ("<instance>/<name>"). Running a composed scenario on any backend puts
/// all instances into ONE simulation kernel — the multi-instance workloads
/// of the ROADMAP (N LTE receivers, carrier-aggregation variants) — while
/// instance_instants()/instance_usage() recover each instance's traces for
/// per-instance metric isolation.

namespace maxev::study {

/// Per-run modelling options of a scenario (consumed by the equivalent
/// backend; the baseline and loosely-timed backends ignore them).
struct ScenarioOptions {
  /// Abstraction group: per-function flags, true = replaced by the
  /// equivalent model. Empty = abstract every function.
  std::vector<bool> group;
  /// Fold pass-through completion nodes (paper's Fig. 3 compact form).
  bool fold = true;
  /// Insert this many pass-through padding nodes (Fig. 5 sweeps). For a
  /// composed scenario this is *per instance*: the batched path pads the
  /// base graph (evaluated once per instance) and the merged path pads the
  /// merged graph N-fold, so both execute the same padded workload.
  std::size_t pad_nodes = 0;
  /// Capacity hint for the observation sinks: expected iteration count.
  /// 0 = derive from the description (largest source token count).
  std::size_t expected_iterations = 0;
};

/// One equal-structure sub-batch of a composed scenario: the description
/// every member shares, the (base-level) abstraction group they agree on,
/// and the member instance indices in composition order. Grouping rules
/// (docs/DESIGN.md §10): members must hold the SAME model::DescPtr and the
/// same group vector — model::structural_hash buckets the candidates and
/// pointer identity supplies the behavioural guarantee that
/// model::structurally_equal cannot (the opaque workload std::functions).
/// Only groups of >= 2 members are recorded; everything else is the
/// isolated remainder the equivalent backend runs through the merged path.
struct BatchGroup {
  model::DescPtr base;
  /// Base-level abstraction group, normalized to explicit per-function
  /// flags (an instance's empty "abstract everything" group and its
  /// explicit all-true form land in the same sub-batch).
  std::vector<bool> group;
  std::vector<std::size_t> members;  ///< indices into Scenario::instances()
};

/// One instance inside a composed scenario: its name and the half-open id
/// ranges it occupies in the merged description.
struct Instance {
  std::string name;
  std::size_t fn_begin = 0, fn_end = 0;
  std::size_t ch_begin = 0, ch_end = 0;
  std::size_t res_begin = 0, res_end = 0;
  std::size_t src_begin = 0, src_end = 0;
  std::size_t sink_begin = 0, sink_end = 0;
};

class Scenario {
 public:
  Scenario() = default;

  /// Take the description by value (validating it) into shared ownership.
  Scenario(std::string name, model::ArchitectureDesc desc);
  /// Adopt an already-shared description (no copy).
  Scenario(std::string name, model::DescPtr desc);

  /// \name Fluent per-run options
  /// @{
  Scenario& with_group(std::vector<bool> group);
  Scenario& with_fold(bool fold);
  Scenario& with_pad_nodes(std::size_t n);
  Scenario& with_expected_iterations(std::size_t n);
  /// @}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const model::ArchitectureDesc& desc() const { return *desc_; }
  [[nodiscard]] const model::DescPtr& desc_ptr() const { return desc_; }
  [[nodiscard]] const ScenarioOptions& options() const { return options_; }
  [[nodiscard]] bool valid() const { return desc_ != nullptr; }

  /// Instances of a composed scenario, in composition order. Empty for a
  /// plain (single-instance) scenario.
  [[nodiscard]] const std::vector<Instance>& instances() const {
    return instances_;
  }
  [[nodiscard]] bool composed() const { return !instances_.empty(); }

  /// The single description all instances of a composed scenario share
  /// (same model::DescPtr and same abstraction group), or null. When
  /// non-null the equivalent backend may run this scenario through
  /// tdg::BatchEngine — one compiled program evaluated for every instance
  /// — instead of the N-times-larger merged graph (docs/DESIGN.md §9).
  [[nodiscard]] const model::DescPtr& batch_base() const { return batch_base_; }
  /// True when the whole composed scenario is one equal-structure batch.
  [[nodiscard]] bool batchable() const { return batch_base_ != nullptr; }

  /// The equal-structure sub-batches of a composed scenario (>= 2 members
  /// each; possibly several — the heterogeneous carrier-aggregation case,
  /// docs/DESIGN.md §10). Instances in no group form the isolated
  /// remainder. Empty for plain scenarios and for compositions with no
  /// two instances sharing a description+group.
  [[nodiscard]] const std::vector<BatchGroup>& batch_groups() const {
    return batch_groups_;
  }
  /// True when at least one sub-batch exists — the equivalent backend can
  /// then route this scenario through per-group batched execution.
  [[nodiscard]] bool partially_batchable() const {
    return !batch_groups_.empty();
  }

 private:
  friend Scenario compose(std::string, const std::vector<Scenario>&);

  std::string name_;
  model::DescPtr desc_;
  ScenarioOptions options_;
  std::vector<Instance> instances_;
  model::DescPtr batch_base_;
  std::vector<BatchGroup> batch_groups_;
};

/// Merge N scenario instances into one scenario running in one kernel.
/// Every resource, channel, function, source and sink of instance i is
/// replicated under the name "<instance-name>/<original-name>"; schedule
/// order inside each instance is preserved; abstraction groups concatenate
/// (an instance with an empty group contributes all-true flags when any
/// other instance restricts its group). Instance names must be unique,
/// non-empty and free of '/' (the namespace separator), and all instances
/// must agree on the graph-transform options (fold, pad_nodes) — they
/// apply to the merged graph as a whole.
/// \throws maxev::DescriptionError on empty input, bad or duplicate names,
///         or disagreeing fold/pad options.
[[nodiscard]] Scenario compose(std::string name,
                               const std::vector<Scenario>& instances);

/// Extract one instance's evolution-instant traces from a composed run:
/// keeps the series named "<instance>/..." and strips the prefix, yielding
/// traces directly comparable with the instance's solo run.
[[nodiscard]] trace::InstantTraceSet instance_instants(
    const trace::InstantTraceSet& composed, const std::string& instance);

/// Same extraction for resource-usage traces (resource names and busy-
/// interval labels are both un-prefixed).
[[nodiscard]] trace::UsageTraceSet instance_usage(
    const trace::UsageTraceSet& composed, const std::string& instance);

}  // namespace maxev::study
