#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/equivalent_model.hpp"
#include "study/backend.hpp"
#include "util/cancel.hpp"

/// \file adaptive.hpp
/// The adaptive backend (docs/DESIGN.md §15): the compiled equivalent model
/// running normally, with a periodicity detector watching the
/// inter-iteration deltas of every graph node. Once the deltas converge to
/// a vector period P — and a certification pass proves the workload
/// *continues* that period — the remaining iterations are filled in
/// analytically (instant and usage traces extended by the closed-form
/// P-rule x(k) = x(k-P) + Λ) and the kernel is stopped. Certification
/// refusals are cheap and non-destructive: the run simply keeps
/// simulating, and a later, cleaner frontier may fast-forward instead
/// (re-entry after a regime change works the same way).

namespace maxev::study {

/// Streaming vector-period detector over per-iteration value frames.
///
/// Feed one frame per iteration (the engine's node values, or any fixed-
/// width series) in order. For every candidate period P ≤ max_period the
/// detector tracks how many *consecutive* iterations ended with identical
/// delta vectors d_P(j) = v(j) − v(j−P); a period is reported stable once
/// that count reaches stable_periods (K). Frames containing ε (guard-
/// suppressed instants) poison every candidate: extrapolating through an
/// ε is never attempted. reset() discards all observed regularity (regime
/// change) without forgetting how many frames were consumed.
class PeriodDetector {
 public:
  struct Options {
    std::uint32_t max_period = 16;
    std::uint32_t stable_periods = 3;  ///< K
  };

  /// A converged period: the smallest stable P, with the per-value
  /// increment vector Λ = v(frontier−1) − v(frontier−1−P).
  struct Detection {
    std::uint32_t period = 0;
    std::uint64_t frontier = 0;  ///< frames observed when detected
    std::vector<std::int64_t> lambda;
  };

  PeriodDetector(std::size_t width, Options opts);

  /// Observe the next frame (must have exactly width() values). \p any_eps
  /// marks a frame holding at least one ε value.
  void observe(const std::vector<std::int64_t>& values, bool any_eps = false);

  /// The smallest stable period, if any candidate has K consecutive
  /// identical delta vectors.
  [[nodiscard]] std::optional<Detection> stable() const;

  /// O(1) pre-gate for stable(): true iff some candidate has reached K.
  /// The adaptive model polls this at every kernel timestep.
  [[nodiscard]] bool has_stable() const { return any_stable_; }

  /// O(1): some candidate has at least two consecutive identical deltas —
  /// the stream is showing regularity worth watching. The adaptive model's
  /// duty cycling keeps observing while this holds and backs off otherwise.
  [[nodiscard]] bool warming() const { return any_warm_; }

  /// Consecutive identical delta vectors currently credited to \p period
  /// (0 when unobserved / poisoned). The adaptive model gates on this to
  /// demand windows longer than K (e.g. the graph's max lag).
  [[nodiscard]] std::uint64_t stable_count(std::uint32_t period) const;

  /// Discard all observed regularity (regime change). Subsequent frames
  /// rebuild stability from scratch; observed() keeps counting.
  void reset();

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::uint64_t observed() const { return next_k_; }
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  [[nodiscard]] const std::int64_t* u_frame(std::uint64_t k) const;

  // The candidate test runs on first differences: with u(j) = v(j) − v(j−1),
  // d_P(j) = d_P(j−1)  ⟺  u(j) = u(j−P). Each u frame carries a hash, so
  // rejecting a candidate (the only outcome on aperiodic workloads, every
  // frame) is one word compare; the full vector compare runs only when the
  // hashes collide — i.e. on genuinely periodic frames. Exactness is
  // preserved: equal vectors always hash equal, and a hash match is
  // confirmed element-wise before it counts.
  std::size_t width_;
  Options opts_;
  std::size_t ring_frames_;            ///< max_period + 2, rounded up to 2^n
  std::size_t ring_mask_;              ///< ring_frames_ - 1
  std::vector<std::int64_t> u_ring_;   ///< first differences, per ring frame
  std::vector<std::uint64_t> hash_;    ///< per ring frame: hash of its u
  std::vector<std::int64_t> prev_;     ///< v(next_k_ − 1)
  std::vector<std::uint64_t> stable_;  ///< per candidate period (index 1..P)
  bool any_stable_ = false;  ///< ∃p: stable_[p] ≥ K — O(1) gate for stable()
  bool any_warm_ = false;    ///< ∃p: stable_[p] ≥ 2 — duty-cycling signal
  std::uint64_t next_k_ = 0;
  std::uint64_t valid_from_ = 0;  ///< frames before this are forgotten
};

/// The adaptive executable model: a merged-graph core::EquivalentModel plus
/// the detector/certifier/fast-forward machinery, behind the study::Model
/// interface. Composed scenarios run on the merged graph (the batched
/// engine's timestep hook slot is taken; the merged path is bit-identical).
///
/// Public (rather than hidden in backend.cpp) so the property tests can
/// poke the detector and stats directly.
class AdaptiveModel final : public Model {
 public:
  AdaptiveModel(const Scenario& scenario, const RunConfig& config,
                AdaptiveOptions opts);

  Outcome run(std::optional<TimePoint> until = std::nullopt) override;
  const trace::InstantTraceSet& instants() const override {
    return eq_.instants();
  }
  const trace::UsageTraceSet& usage() const override { return eq_.usage(); }
  const sim::KernelStats& kernel_stats() const override {
    return eq_.kernel_stats();
  }
  std::uint64_t relation_events() const override {
    return eq_.relation_events();
  }
  TimePoint end_time() const override;
  sim::Kernel& kernel() override { return eq_.runtime().kernel(); }
  std::uint64_t instances_computed() const override {
    return eq_.engine().instances_computed();
  }
  std::uint64_t arc_terms_evaluated() const override {
    return eq_.engine().arc_terms_evaluated();
  }
  GraphShape graph_shape() const override {
    return {eq_.graph().node_count(), eq_.graph().paper_node_count(),
            eq_.graph().arc_count()};
  }
  std::optional<AdaptiveStats> adaptive_stats() const override {
    return stats_;
  }

  /// \name Test access
  /// @{
  [[nodiscard]] core::EquivalentModel& equivalent() { return eq_; }
  [[nodiscard]] const AdaptiveStats& stats() const { return stats_; }
  [[nodiscard]] const PeriodDetector& detector() const { return detector_; }
  /// @}

 private:
  /// Timestep-hook body: forward user cancellation, feed the detector,
  /// attempt a fast-forward. Always returns false (no kernel work queued).
  bool on_timestep();
  void feed_detector();
  void maybe_fastforward();
  /// The certify + verify + publish pass; throws detail-level Refusal.
  void fastforward(const PeriodDetector::Detection& det);
  void disable(std::string reason);
  void refuse(std::string reason, std::uint64_t retry_at);
  [[nodiscard]] std::int64_t node_value_at(tdg::NodeId n, std::uint64_t k,
                                           std::uint64_t frontier,
                                           std::uint32_t period) const;

  core::EquivalentModel eq_;
  AdaptiveOptions opts_;
  bool opcode_dispatch_ = true;
  const util::CancelToken* user_cancel_ = nullptr;
  util::CancelToken self_cancel_;
  PeriodDetector detector_;
  AdaptiveStats stats_;
  std::vector<std::int64_t> lambda_;  ///< per node, set by the fast-forward
  std::uint64_t tokens_ = 0;          ///< N: common source token count
  bool enabled_ = true;               ///< structural eligibility
  std::uint64_t fed_ = 0;             ///< frames consumed (observed or skipped)
  std::uint64_t next_attempt_ = 0;    ///< frontier gate after a refusal
  /// \name Detector duty cycling
  /// Observing every frame costs more in cache refills than the detector's
  /// arithmetic: on a stream that shows no regularity, feeding is suspended
  /// for growing off-windows (resumed through the ε-reseed path), bounding
  /// the aperiodic detector overhead to a small duty fraction.
  /// @{
  std::uint64_t duty_on_len_ = 0;      ///< probe window length (frames)
  std::uint64_t duty_on_until_ = 0;    ///< current probe window end
  std::uint64_t duty_off_ = 0;         ///< current back-off length
  std::uint64_t duty_skip_until_ = 0;  ///< frames below this are skipped
  bool duty_gap_ = false;              ///< skipped since the last observe
  /// @}
  bool fast_forwarded_ = false;
  bool user_cancelled_ = false;
  bool horizon_run_ = false;  ///< run(until) disables fast-forward
  TimePoint ff_end_ = TimePoint::origin();
  std::vector<std::int64_t> frame_buf_;
};

}  // namespace maxev::study
