#include "study/report.hpp"

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace maxev::study {

const Cell* Report::find(const std::string& scenario,
                         const std::string& backend) const {
  for (const Cell& c : cells)
    if (c.scenario == scenario && c.backend == backend) return &c;
  return nullptr;
}

const Cell& Report::at(const std::string& scenario,
                       const std::string& backend) const {
  const Cell* c = find(scenario, backend);
  if (c == nullptr)
    throw Error("Report::at: no cell (" + scenario + ", " + backend + ")");
  return *c;
}

std::string Report::to_string() const {
  ConsoleTable table({"Scenario", "Backend", "wall (s)", "Events", "Speed-up",
                      "Event ratio", "Accuracy"});
  for (const Cell& c : cells) {
    std::string accuracy = "-";
    if (c.failed) {
      accuracy = "FAILED";
    } else if (c.errors.has_value()) {
      if (c.errors->exact()) {
        accuracy = "exact";
      } else if (c.errors->instant_mismatch.has_value() &&
                 c.errors->max_abs_seconds > 0.0) {
        // Timing drift is the normal state of an approximate backend, but
        // an accuracy REGRESSION on a backend that claims exactness.
        accuracy =
            c.approximate_backend
                ? format("max err %.3gus", c.errors->max_abs_seconds * 1e6)
                : format("MISMATCH (max err %.3gus)",
                         c.errors->max_abs_seconds * 1e6);
      } else if (c.errors->instant_mismatch.has_value()) {
        // Mismatch with zero measured drift (missing series, length
        // mismatch): a structural accuracy failure, not drift.
        accuracy = "MISMATCH";
      } else {
        accuracy = "usage MISMATCH";  // instants identical, usage differs
      }
    } else if (c.is_reference) {
      accuracy = "reference";
    }
    table.add_row(
        {c.scenario, c.backend, format("%.4f", c.metrics.wall_seconds),
         with_commas(static_cast<std::int64_t>(c.metrics.kernel_events)),
         c.is_reference ? "1.00" : format("%.2f", c.speedup_vs_reference),
         c.is_reference ? "1.00" : format("%.2f", c.event_ratio_vs_reference),
         accuracy});
  }
  return table.render();
}

namespace {

/// True when any cell carries cache counters; only then do the cache
/// columns exist at all (cache-less reports stay byte-identical to the
/// pre-cache format).
bool has_cache_columns(const Report& r) {
  for (const Cell& c : r.cells)
    if (c.cache_hits >= 0 || c.cache_misses >= 0) return true;
  return false;
}

/// Same convention for the adaptive fidelity columns: they exist only when
/// some cell ran the adaptive backend.
bool has_adaptive_columns(const Report& r) {
  for (const Cell& c : r.cells)
    if (c.extrapolated_iterations >= 0) return true;
  return false;
}

std::vector<std::string> csv_header(bool with_cache, bool with_adaptive) {
  std::vector<std::string> header = {
      "scenario",       "backend",
      "reference",      "completed",
      "wall_seconds",   "kernel_events",
      "resumes",        "relation_events",
      "instances_computed", "arc_terms",
      "sim_end_ps",     "graph_nodes",
      "graph_paper_nodes", "graph_arcs",
      "speedup_vs_ref", "event_ratio_vs_ref",
      "kernel_event_ratio_vs_ref", "exact",
      "max_abs_error_s", "mean_abs_error_s",
      "status",          "error"};
  if (with_cache) {
    header.insert(header.end() - 2, "cache_hits");
    header.insert(header.end() - 2, "cache_misses");
  }
  if (with_adaptive) {
    header.insert(header.end() - 2, "fidelity");
    header.insert(header.end() - 2, "extrapolated_iterations");
    header.insert(header.end() - 2, "max_error_ps");
  }
  return header;
}

std::vector<std::string> csv_row(const Cell& c, bool with_cache,
                                 bool with_adaptive) {
  const bool exact = c.errors.has_value() && c.errors->exact();
  std::vector<std::string> row = {
          c.scenario,
          c.backend,
          c.is_reference ? "1" : "0",
          c.metrics.completed ? "1" : "0",
          format("%.9g", c.metrics.wall_seconds),
          std::to_string(c.metrics.kernel_events),
          std::to_string(c.metrics.resumes),
          std::to_string(c.metrics.relation_events),
          std::to_string(c.metrics.instances_computed),
          std::to_string(c.metrics.arc_terms),
          std::to_string(c.metrics.sim_end.count()),
          std::to_string(c.graph_nodes),
          std::to_string(c.graph_paper_nodes),
          std::to_string(c.graph_arcs),
          format("%.9g", c.speedup_vs_reference),
          format("%.9g", c.event_ratio_vs_reference),
          format("%.9g", c.kernel_event_ratio_vs_reference),
          c.errors.has_value() ? (exact ? "1" : "0") : "",
          c.errors.has_value() ? format("%.9g", c.errors->max_abs_seconds) : "",
          c.errors.has_value() ? format("%.9g", c.errors->mean_abs_seconds)
                               : "",
          c.failed ? "failed" : "ok",
          c.error};
  if (with_cache) {
    // Empty cells for a run the cache never saw (e.g. a failed cell).
    row.insert(row.end() - 2,
               c.cache_hits >= 0 ? std::to_string(c.cache_hits) : "");
    row.insert(row.end() - 2,
               c.cache_misses >= 0 ? std::to_string(c.cache_misses) : "");
  }
  if (with_adaptive) {
    // Empty cells for non-adaptive backends in the same report.
    row.insert(row.end() - 2, c.fidelity);
    row.insert(row.end() - 2, c.extrapolated_iterations >= 0
                                  ? std::to_string(c.extrapolated_iterations)
                                  : "");
    row.insert(row.end() - 2,
               c.max_error_ps >= 0 ? std::to_string(c.max_error_ps) : "");
  }
  return row;
}

}  // namespace

void Report::write_csv(const std::string& path) const {
  const bool with_cache = has_cache_columns(*this);
  const bool with_adaptive = has_adaptive_columns(*this);
  CsvWriter csv(path, csv_header(with_cache, with_adaptive));
  for (const Cell& c : cells) csv.row(csv_row(c, with_cache, with_adaptive));
}

namespace {

JsonWriter build_json(const Report& r) {
  JsonWriter w;
  w.begin_object();
  w.key("scenarios").begin_array();
  for (const auto& s : r.scenarios) w.value(s);
  w.end_array();
  w.key("backends").begin_array();
  for (const auto& b : r.backends) w.value(b);
  w.end_array();
  w.field("reference", r.reference_backend);
  w.key("cells").begin_array();
  for (const Cell& c : r.cells) {
    w.begin_object();
    w.field("scenario", c.scenario);
    w.field("backend", c.backend);
    w.field("reference", c.is_reference);
    w.field("completed", c.metrics.completed);
    w.field("wall_seconds", c.metrics.wall_seconds);
    w.field("kernel_events", c.metrics.kernel_events);
    w.field("resumes", c.metrics.resumes);
    w.field("relation_events", c.metrics.relation_events);
    w.field("instances_computed", c.metrics.instances_computed);
    w.field("arc_terms", c.metrics.arc_terms);
    w.field("sim_end_ps", c.metrics.sim_end.count());
    w.field("graph_nodes", static_cast<std::uint64_t>(c.graph_nodes));
    w.field("graph_paper_nodes",
            static_cast<std::uint64_t>(c.graph_paper_nodes));
    w.field("graph_arcs", static_cast<std::uint64_t>(c.graph_arcs));
    w.field("speedup_vs_ref", c.speedup_vs_reference);
    w.field("event_ratio_vs_ref", c.event_ratio_vs_reference);
    w.field("kernel_event_ratio_vs_ref", c.kernel_event_ratio_vs_reference);
    if (c.cache_hits >= 0) w.field("cache_hits", c.cache_hits);
    if (c.cache_misses >= 0) w.field("cache_misses", c.cache_misses);
    if (c.extrapolated_iterations >= 0) {
      w.field("fidelity", c.fidelity);
      w.field("extrapolated_iterations", c.extrapolated_iterations);
      w.field("max_error_ps", c.max_error_ps);
    }
    if (c.errors.has_value()) {
      w.key("errors").begin_object();
      w.field("exact", c.errors->exact());
      if (c.errors->instant_mismatch)
        w.field("instant_mismatch", *c.errors->instant_mismatch);
      if (c.errors->usage_mismatch)
        w.field("usage_mismatch", *c.errors->usage_mismatch);
      w.field("max_abs_seconds", c.errors->max_abs_seconds);
      w.field("mean_abs_seconds", c.errors->mean_abs_seconds);
      w.field("instants_compared", c.errors->instants_compared);
      w.end_object();
    }
    w.field("status", c.failed ? "failed" : "ok");
    if (c.failed) {
      w.field("error", c.error);
      if (c.diagnostics != nullptr) {
        const sim::RunDiagnostics& d = *c.diagnostics;
        w.key("diagnostics").begin_object();
        w.field("stop", sim::to_string(d.stop));
        w.field("events_processed", d.events_processed);
        if (!d.parked_processes.empty()) {
          w.key("parked_processes").begin_array();
          for (const auto& p : d.parked_processes) w.value(p);
          w.end_array();
        }
        if (!d.unresolved_gates.empty()) {
          w.key("unresolved_gates").begin_array();
          for (const auto& g : d.unresolved_gates) w.value(g);
          w.end_array();
        }
        if (!d.instances.empty()) {
          w.key("instances").begin_array();
          for (const auto& ip : d.instances) {
            w.begin_object();
            w.field("instance", ip.instance);
            w.field("tokens_done", ip.tokens_done);
            w.field("tokens_expected", ip.tokens_expected);
            w.end_object();
          }
          w.end_array();
        }
        if (!d.detail.empty()) w.field("detail", d.detail);
        w.end_object();
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w;
}

}  // namespace

std::string Report::to_json() const { return build_json(*this).str(); }

void Report::write_json(const std::string& path) const {
  build_json(*this).write_file(path);
}

}  // namespace maxev::study
