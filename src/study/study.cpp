#include "study/study.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/compiled.hpp"
#include "serve/program_cache.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace maxev::study {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double ratio(std::uint64_t ref, std::uint64_t cell) {
  return cell > 0 ? static_cast<double>(ref) / static_cast<double>(cell) : 0.0;
}

/// One measured cell: repetitions of instantiate + run; the rep-0 model is
/// kept alive (its traces are the comparison payload).
struct MeasuredCell {
  Cell cell;
  std::unique_ptr<Model> model;  // rep-0 model, traces intact
  /// Canonical program-cache keys this cell requested, in request order
  /// (instantiations of all repetitions). Replayed serially afterwards to
  /// attribute hits/misses deterministically at any thread count.
  std::vector<core::CompiledKey> cache_keys;
};

/// Per-cell recording wrapper over the study's shared cache: forwards
/// get() and remembers the canonical key sequence. One recorder per cell,
/// touched only by the thread measuring that cell.
class RecordingProvider final : public core::CompiledProvider {
 public:
  explicit RecordingProvider(core::CompiledProvider* inner) : inner_(inner) {}

  core::CompiledPtr get(const core::CompiledKey& key,
                        bool* was_hit) override {
    keys_.push_back(
        core::CompiledKey::make(key.desc, key.group, key.fold, key.pad_nodes));
    return inner_->get(key, was_hit);
  }

  std::vector<core::CompiledKey> take_keys() { return std::move(keys_); }

 private:
  core::CompiledProvider* inner_;
  std::vector<core::CompiledKey> keys_;
};

/// The LRU the serial replay simulates — same policy and default capacity
/// as serve::ProgramCache, but keys only (nothing is compiled here).
class ReplayLru {
 public:
  explicit ReplayLru(std::size_t capacity) : capacity_(capacity) {}

  /// True = the serial pass would have hit.
  bool touch(const core::CompiledKey& key) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return true;
    }
    lru_.push_front(key);
    index_.emplace(key, lru_.begin());
    while (index_.size() > capacity_) {
      index_.erase(lru_.back());
      lru_.pop_back();
    }
    return false;
  }

 private:
  struct KeyHash {
    std::size_t operator()(const core::CompiledKey& k) const {
      return core::hash_value(k);
    }
  };
  std::size_t capacity_;
  std::list<core::CompiledKey> lru_;
  std::unordered_map<core::CompiledKey, std::list<core::CompiledKey>::iterator,
                     KeyHash>
      index_;
};

MeasuredCell measure(const Scenario& scenario, const Backend& backend,
                     const StudyOptions& opts,
                     core::CompiledProvider* cache) {
  MeasuredCell out;
  out.cell.scenario = scenario.name();
  out.cell.backend = backend.name();
  out.cell.approximate_backend =
      backend.kind() == Backend::Kind::kLooselyTimed;

  RunConfig rc;
  rc.observe = opts.observe;
  rc.event_overhead_ns = opts.event_overhead_ns;
  rc.batch_composed = opts.batch_composed;
  rc.threads = opts.group_threads;
  rc.max_events = opts.max_events;
  rc.deadline_ms = opts.deadline_ms;
  rc.cancel = opts.cancel;
  std::optional<RecordingProvider> recorder;
  if (cache != nullptr) {
    recorder.emplace(cache);
    rc.compiled = &*recorder;
  }

  std::vector<double> walls;
  walls.reserve(static_cast<std::size_t>(opts.repetitions));
  for (int rep = 0; rep < opts.repetitions; ++rep) {
    try {
      std::unique_ptr<Model> model = backend.instantiate(scenario, rc);
      const auto t0 = Clock::now();
      const Outcome outcome = model->run();
      walls.push_back(seconds_since(t0));
      if (rep == 0) {
        core::RunMetrics& m = out.cell.metrics;
        m.kernel_events = model->kernel_stats().events_scheduled;
        m.resumes = model->kernel_stats().resumes;
        m.relation_events = model->relation_events();
        m.instances_computed = model->instances_computed();
        m.arc_terms = model->arc_terms_evaluated();
        m.sim_end = model->end_time();
        m.completed = outcome.completed;
        const Model::GraphShape shape = model->graph_shape();
        out.cell.graph_nodes = shape.nodes;
        out.cell.graph_paper_nodes = shape.paper_nodes;
        out.cell.graph_arcs = shape.arcs;
        if (const std::optional<AdaptiveStats> ast = model->adaptive_stats()) {
          out.cell.fidelity = ast->extrapolated ? "extrapolated" : "simulated";
          out.cell.extrapolated_iterations =
              static_cast<std::int64_t>(ast->extrapolated_iterations);
          out.cell.max_error_ps = ast->max_error_ps;
        }
        if (opts.require_completion && !outcome.completed) {
          throw SimulationError(
              backend.name() + ": " + outcome.stall_report,
              std::make_shared<const sim::RunDiagnostics>(
                  outcome.diagnostics));
        }
        if (opts.keep_traces && opts.observe) {
          out.cell.instants = std::make_shared<const trace::InstantTraceSet>(
              model->instants());
          out.cell.usage =
              std::make_shared<const trace::UsageTraceSet>(model->usage());
        }
        out.model = std::move(model);
      }
    } catch (...) {
      // Name the cell on the way out (satellite: failures identify their
      // scenario/backend/repetition); concrete maxev error types and any
      // attached diagnostics survive the re-throw.
      rethrow_with_context("cell (scenario '" + scenario.name() +
                           "', backend '" + backend.name() + "', rep " +
                           std::to_string(rep) + ")");
    }
  }
  out.cell.metrics.wall_seconds = median_of(std::move(walls));
  if (recorder) out.cache_keys = recorder->take_keys();
  return out;
}

/// The isolate_failures representation of a cell whose measurement threw:
/// default metrics, the exception's message and (when carried) diagnostics.
MeasuredCell failed_cell(const Scenario& scenario, const Backend& backend,
                         std::string error,
                         std::shared_ptr<const sim::RunDiagnostics> diag) {
  MeasuredCell out;
  out.cell.scenario = scenario.name();
  out.cell.backend = backend.name();
  out.cell.approximate_backend =
      backend.kind() == Backend::Kind::kLooselyTimed;
  out.cell.failed = true;
  out.cell.error = std::move(error);
  out.cell.diagnostics = std::move(diag);
  return out;
}

}  // namespace

Study& Study::add(Scenario scenario) {
  if (!scenario.valid()) throw DescriptionError("Study::add: invalid scenario");
  // Names are the cells' identity (Report::find/at): duplicates would make
  // one run's metrics silently unaddressable.
  for (const Scenario& s : scenarios_)
    if (s.name() == scenario.name())
      throw DescriptionError("Study::add: duplicate scenario '" +
                             scenario.name() + "'");
  scenarios_.push_back(std::move(scenario));
  return *this;
}

Study& Study::add(Backend backend) {
  for (const Backend& b : backends_)
    if (b.name() == backend.name())
      throw DescriptionError("Study::add: duplicate backend '" +
                             backend.name() + "'");
  backends_.push_back(std::move(backend));
  return *this;
}

Study& Study::reference(const std::string& backend_name) {
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i].name() == backend_name) {
      reference_ = i;
      return *this;
    }
  }
  throw Error("Study::reference: unknown backend '" + backend_name + "'");
}

Report Study::run(const StudyOptions& opts) const {
  if (opts.repetitions < 1)
    throw Error("Study::run: repetitions must be >= 1");
  if (scenarios_.empty()) throw Error("Study::run: no scenarios");
  if (backends_.empty()) throw Error("Study::run: no backends");

  Report report;
  for (const Scenario& s : scenarios_) report.scenarios.push_back(s.name());
  for (const Backend& b : backends_) report.backends.push_back(b.name());
  report.reference_backend = backends_[reference_].name();

  const bool compare = opts.observe && opts.compare_traces;

  // Measurement order = the serial pass's execution order: per scenario
  // the reference backend first, then the others by insertion. Cells are
  // keyed by their slot in this list, so the measure phase may run them in
  // any order (or concurrently) without perturbing the report; when
  // several cells fail, parallel_for rethrows the lowest slot's exception
  // — exactly the error the serial pass would have surfaced first.
  struct Slot {
    std::size_t scenario = 0;
    std::size_t backend = 0;
  };
  std::vector<Slot> slots;
  slots.reserve(scenarios_.size() * backends_.size());
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    slots.push_back({s, reference_});
    for (std::size_t b = 0; b < backends_.size(); ++b)
      if (b != reference_) slots.push_back({s, b});
  }

  // One program cache for the whole matrix (StudyOptions::program_cache):
  // every cell and repetition requesting an already-compiled structure
  // reuses it. get() is thread-safe and compiles under its lock, so the
  // compiled artifacts are identical at any thread count.
  std::optional<serve::ProgramCache> cache;
  if (opts.program_cache) cache.emplace();

  std::vector<MeasuredCell> measured(slots.size());
  const auto measure_slot = [&](std::size_t i) {
    const Scenario& scenario = scenarios_[slots[i].scenario];
    const Backend& backend = backends_[slots[i].backend];
    core::CompiledProvider* const provider = cache ? &*cache : nullptr;
    if (!opts.isolate_failures) {
      measured[i] = measure(scenario, backend, opts, provider);
      return;
    }
    // Per-cell failure isolation: the cell's exception becomes a failed
    // cell and the rest of the matrix keeps measuring. Since nothing
    // escapes a slot, the slot-keyed layout (and hence the report) stays
    // byte-identical at every thread count.
    try {
      measured[i] = measure(scenario, backend, opts, provider);
    } catch (const SimulationError& e) {
      measured[i] = failed_cell(scenario, backend, e.what(), e.diagnostics());
    } catch (const std::exception& e) {
      measured[i] = failed_cell(scenario, backend, e.what(), nullptr);
    }
  };
  const std::size_t threads =
      opts.threads == 1 ? 1 : util::ThreadPool::resolve(opts.threads);
  if (threads > 1 && slots.size() > 1) {
    util::ThreadPool pool(std::min(threads, slots.size()) - 1);
    pool.parallel_for(slots.size(), measure_slot);
  } else {
    for (std::size_t i = 0; i < slots.size(); ++i) measure_slot(i);
  }

  // Attribute cache hits/misses by replaying each cell's recorded key
  // sequence through a simulated LRU in slot order — exactly what the
  // serial pass would have seen, so the counts (and hence the report) are
  // byte-identical at every `threads` setting even though the concurrent
  // pass may have compiled in a different interleaving.
  if (cache) {
    ReplayLru replay(serve::ProgramCache::kDefaultCapacity);
    for (MeasuredCell& mc : measured) {
      if (mc.cell.failed) continue;  // its key sequence was lost mid-throw
      std::int64_t hits = 0;
      std::int64_t misses = 0;
      for (const core::CompiledKey& key : mc.cache_keys)
        (replay.touch(key) ? hits : misses) += 1;
      mc.cell.cache_hits = hits;
      mc.cell.cache_misses = misses;
    }
  }

  // Serial assembly in insertion order: comparisons and emission read the
  // measured models single-threadedly, so the report is byte-identical to
  // the serial pass.
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    MeasuredCell* const base = &measured[s * backends_.size()];
    MeasuredCell& ref = base[0];
    // A failed reference cell has no traces or wall time to compare
    // against: the scenario's other cells keep their own metrics but the
    // ratios, speed-ups and accuracy stay at their unknown defaults.
    const bool ref_ok = !ref.cell.failed && ref.model != nullptr;
    ref.cell.is_reference = true;
    if (ref_ok) {
      ref.cell.speedup_vs_reference = 1.0;
      ref.cell.event_ratio_vs_reference = 1.0;
      ref.cell.kernel_event_ratio_vs_reference = 1.0;
    }

    // One sorted copy of the reference usage serves every comparison.
    trace::UsageTraceSet ref_usage_sorted;
    if (compare && ref_ok && backends_.size() > 1) {
      ref_usage_sorted = ref.model->usage();
      ref_usage_sorted.sort_all();
    }

    std::vector<Cell> row;
    for (std::size_t r = 1; r < backends_.size(); ++r) {
      MeasuredCell& mc = base[r];
      Cell& cell = mc.cell;
      const bool cell_ok = !cell.failed && mc.model != nullptr;
      if (ref_ok && cell_ok) {
        cell.speedup_vs_reference =
            cell.metrics.wall_seconds > 0.0
                ? ref.cell.metrics.wall_seconds / cell.metrics.wall_seconds
                : 0.0;
        cell.event_ratio_vs_reference = ratio(ref.cell.metrics.relation_events,
                                              cell.metrics.relation_events);
        cell.kernel_event_ratio_vs_reference = ratio(
            ref.cell.metrics.kernel_events, cell.metrics.kernel_events);
      }
      if (compare && ref_ok && cell_ok) {
        ErrorStats errors;
        errors.instant_mismatch = trace::compare_instants(
            ref.model->instants(), mc.model->instants());
        // Backends that record no usage by design (loosely-timed) are not
        // marked mismatching for it; absence of data is not a difference.
        if (mc.model->records_usage()) {
          trace::UsageTraceSet bu = mc.model->usage();
          bu.sort_all();
          errors.usage_mismatch = trace::compare_usage(ref_usage_sorted, bu);
        }
        const trace::InstantErrorStats mag = trace::instant_error_stats(
            ref.model->instants(), mc.model->instants());
        errors.max_abs_seconds = mag.max_abs_seconds;
        errors.mean_abs_seconds = mag.mean_abs_seconds;
        errors.instants_compared = mag.instants;
        cell.errors = std::move(errors);
      }
      row.push_back(std::move(cell));
    }

    // Emit in backend insertion order, reference in place.
    std::size_t next = 0;
    for (std::size_t b = 0; b < backends_.size(); ++b) {
      if (b == reference_)
        report.cells.push_back(std::move(ref.cell));
      else
        report.cells.push_back(std::move(row[next++]));
    }
  }
  return report;
}

}  // namespace maxev::study
