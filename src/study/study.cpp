#include "study/study.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace maxev::study {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double ratio(std::uint64_t ref, std::uint64_t cell) {
  return cell > 0 ? static_cast<double>(ref) / static_cast<double>(cell) : 0.0;
}

/// One measured cell: repetitions of instantiate + run; the rep-0 model is
/// kept alive (its traces are the comparison payload).
struct MeasuredCell {
  Cell cell;
  std::unique_ptr<Model> model;  // rep-0 model, traces intact
};

MeasuredCell measure(const Scenario& scenario, const Backend& backend,
                     const StudyOptions& opts) {
  MeasuredCell out;
  out.cell.scenario = scenario.name();
  out.cell.backend = backend.name();
  out.cell.approximate_backend =
      backend.kind() == Backend::Kind::kLooselyTimed;

  RunConfig rc;
  rc.observe = opts.observe;
  rc.event_overhead_ns = opts.event_overhead_ns;
  rc.batch_composed = opts.batch_composed;
  rc.threads = opts.group_threads;

  std::vector<double> walls;
  walls.reserve(static_cast<std::size_t>(opts.repetitions));
  for (int rep = 0; rep < opts.repetitions; ++rep) {
    std::unique_ptr<Model> model = backend.instantiate(scenario, rc);
    const auto t0 = Clock::now();
    const Outcome outcome = model->run();
    walls.push_back(seconds_since(t0));
    if (rep == 0) {
      core::RunMetrics& m = out.cell.metrics;
      m.kernel_events = model->kernel_stats().events_scheduled;
      m.resumes = model->kernel_stats().resumes;
      m.relation_events = model->relation_events();
      m.instances_computed = model->instances_computed();
      m.arc_terms = model->arc_terms_evaluated();
      m.sim_end = model->end_time();
      m.completed = outcome.completed;
      const Model::GraphShape shape = model->graph_shape();
      out.cell.graph_nodes = shape.nodes;
      out.cell.graph_paper_nodes = shape.paper_nodes;
      out.cell.graph_arcs = shape.arcs;
      if (opts.require_completion && !outcome.completed)
        throw SimulationError(backend.name() + ": " + outcome.stall_report);
      if (opts.keep_traces && opts.observe) {
        out.cell.instants = std::make_shared<const trace::InstantTraceSet>(
            model->instants());
        out.cell.usage =
            std::make_shared<const trace::UsageTraceSet>(model->usage());
      }
      out.model = std::move(model);
    }
  }
  out.cell.metrics.wall_seconds = median_of(std::move(walls));
  return out;
}

}  // namespace

Study& Study::add(Scenario scenario) {
  if (!scenario.valid()) throw DescriptionError("Study::add: invalid scenario");
  // Names are the cells' identity (Report::find/at): duplicates would make
  // one run's metrics silently unaddressable.
  for (const Scenario& s : scenarios_)
    if (s.name() == scenario.name())
      throw DescriptionError("Study::add: duplicate scenario '" +
                             scenario.name() + "'");
  scenarios_.push_back(std::move(scenario));
  return *this;
}

Study& Study::add(Backend backend) {
  for (const Backend& b : backends_)
    if (b.name() == backend.name())
      throw DescriptionError("Study::add: duplicate backend '" +
                             backend.name() + "'");
  backends_.push_back(std::move(backend));
  return *this;
}

Study& Study::reference(const std::string& backend_name) {
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i].name() == backend_name) {
      reference_ = i;
      return *this;
    }
  }
  throw Error("Study::reference: unknown backend '" + backend_name + "'");
}

Report Study::run(const StudyOptions& opts) const {
  if (opts.repetitions < 1)
    throw Error("Study::run: repetitions must be >= 1");
  if (scenarios_.empty()) throw Error("Study::run: no scenarios");
  if (backends_.empty()) throw Error("Study::run: no backends");

  Report report;
  for (const Scenario& s : scenarios_) report.scenarios.push_back(s.name());
  for (const Backend& b : backends_) report.backends.push_back(b.name());
  report.reference_backend = backends_[reference_].name();

  const bool compare = opts.observe && opts.compare_traces;

  // Measurement order = the serial pass's execution order: per scenario
  // the reference backend first, then the others by insertion. Cells are
  // keyed by their slot in this list, so the measure phase may run them in
  // any order (or concurrently) without perturbing the report; when
  // several cells fail, parallel_for rethrows the lowest slot's exception
  // — exactly the error the serial pass would have surfaced first.
  struct Slot {
    std::size_t scenario = 0;
    std::size_t backend = 0;
  };
  std::vector<Slot> slots;
  slots.reserve(scenarios_.size() * backends_.size());
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    slots.push_back({s, reference_});
    for (std::size_t b = 0; b < backends_.size(); ++b)
      if (b != reference_) slots.push_back({s, b});
  }

  std::vector<MeasuredCell> measured(slots.size());
  const auto measure_slot = [&](std::size_t i) {
    measured[i] =
        measure(scenarios_[slots[i].scenario], backends_[slots[i].backend],
                opts);
  };
  const std::size_t threads =
      opts.threads == 1 ? 1 : util::ThreadPool::resolve(opts.threads);
  if (threads > 1 && slots.size() > 1) {
    util::ThreadPool pool(std::min(threads, slots.size()) - 1);
    pool.parallel_for(slots.size(), measure_slot);
  } else {
    for (std::size_t i = 0; i < slots.size(); ++i) measure_slot(i);
  }

  // Serial assembly in insertion order: comparisons and emission read the
  // measured models single-threadedly, so the report is byte-identical to
  // the serial pass.
  for (std::size_t s = 0; s < scenarios_.size(); ++s) {
    MeasuredCell* const base = &measured[s * backends_.size()];
    MeasuredCell& ref = base[0];
    ref.cell.is_reference = true;
    ref.cell.speedup_vs_reference = 1.0;
    ref.cell.event_ratio_vs_reference = 1.0;
    ref.cell.kernel_event_ratio_vs_reference = 1.0;

    // One sorted copy of the reference usage serves every comparison.
    trace::UsageTraceSet ref_usage_sorted;
    if (compare && backends_.size() > 1) {
      ref_usage_sorted = ref.model->usage();
      ref_usage_sorted.sort_all();
    }

    std::vector<Cell> row;
    for (std::size_t r = 1; r < backends_.size(); ++r) {
      MeasuredCell& mc = base[r];
      Cell& cell = mc.cell;
      cell.speedup_vs_reference =
          cell.metrics.wall_seconds > 0.0
              ? ref.cell.metrics.wall_seconds / cell.metrics.wall_seconds
              : 0.0;
      cell.event_ratio_vs_reference = ratio(ref.cell.metrics.relation_events,
                                            cell.metrics.relation_events);
      cell.kernel_event_ratio_vs_reference = ratio(
          ref.cell.metrics.kernel_events, cell.metrics.kernel_events);
      if (compare) {
        ErrorStats errors;
        errors.instant_mismatch = trace::compare_instants(
            ref.model->instants(), mc.model->instants());
        // Backends that record no usage by design (loosely-timed) are not
        // marked mismatching for it; absence of data is not a difference.
        if (mc.model->records_usage()) {
          trace::UsageTraceSet bu = mc.model->usage();
          bu.sort_all();
          errors.usage_mismatch = trace::compare_usage(ref_usage_sorted, bu);
        }
        const trace::InstantErrorStats mag = trace::instant_error_stats(
            ref.model->instants(), mc.model->instants());
        errors.max_abs_seconds = mag.max_abs_seconds;
        errors.mean_abs_seconds = mag.mean_abs_seconds;
        errors.instants_compared = mag.instants;
        cell.errors = std::move(errors);
      }
      row.push_back(std::move(cell));
    }

    // Emit in backend insertion order, reference in place.
    std::size_t next = 0;
    for (std::size_t b = 0; b < backends_.size(); ++b) {
      if (b == reference_)
        report.cells.push_back(std::move(ref.cell));
      else
        report.cells.push_back(std::move(row[next++]));
    }
  }
  return report;
}

}  // namespace maxev::study
