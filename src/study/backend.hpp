#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "model/baseline.hpp"
#include "sim/kernel.hpp"
#include "study/scenario.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"
#include "util/cancel.hpp"
#include "util/time.hpp"

/// \file backend.hpp
/// A Backend is *how* to evaluate a scenario: the event-driven baseline
/// (every relation simulated), the equivalent model (internal relations
/// replaced by dynamically computed instants — the paper's method), or the
/// loosely-timed runner (temporal decoupling under a global quantum — the
/// TLM-LT foil from the paper's introduction). Backend::instantiate() hides
/// the three divergent model classes behind one Model interface, so studies,
/// examples and benches drive every execution style the same way.

namespace maxev::core {
class CompiledProvider;
}  // namespace maxev::core

namespace maxev::study {

/// Outcome of a model run (same semantics across all backends).
using Outcome = model::ModelRuntime::Outcome;

/// Tuning of the adaptive backend (Backend::adaptive): how its periodicity
/// detector decides that the computed instants have entered a periodic
/// steady state, and how much certification slack the analytic fast-forward
/// is allowed (docs/DESIGN.md §15).
struct AdaptiveOptions {
  /// Largest vector period P the detector searches (iterations). The LTE
  /// subframe grid needs P = 14; 1 covers plain periodic sources.
  std::uint32_t max_period = 16;
  /// K: consecutive iterations whose inter-iteration delta vectors must be
  /// identical before a period is considered converged.
  std::uint32_t stable_periods = 3;
  /// Never fast-forward before this many iterations have been simulated
  /// (warmup floor; 0 = detector-driven only).
  std::uint64_t min_iterations = 0;
  /// Per-instance residual allowed by the seeded one-period verification,
  /// in picoseconds. 0 (the default) means fast-forward only when the
  /// continuation is provably exact — reported max_error_ps stays 0.
  std::int64_t tolerance_ps = 0;
};

/// What the adaptive backend did on one run (Model::adaptive_stats()).
struct AdaptiveStats {
  /// True when the run was cut over to the analytic continuation.
  bool extrapolated = false;
  /// Converged vector period P (iterations); 0 when never detected.
  std::uint32_t detected_period = 0;
  /// Iteration frontier at which the fast-forward engaged.
  std::uint64_t detected_at = 0;
  /// Iterations filled in analytically instead of simulated.
  std::uint64_t extrapolated_iterations = 0;
  /// Bound on the instant error introduced by extrapolation, in
  /// picoseconds: 0 under exact certification, measured-residual ×
  /// extrapolated periods under a non-zero tolerance.
  std::int64_t max_error_ps = 0;
  /// Certification attempts that were refused (the run kept simulating).
  std::uint64_t refusals = 0;
  /// Detector resets caused by regime-change notifications (stream feeds,
  /// shaping perturbations).
  std::uint64_t regime_resets = 0;
  /// Human-readable reason of the most recent refusal (diagnostics only).
  std::string last_refusal;
  /// Analytic steady-state rate λ of the frozen program (mp::steady_state),
  /// picoseconds per iteration; 0 when not computed. Cross-check only —
  /// the fast-forward itself uses the measured per-node increments.
  double analytic_ratio_ps = 0.0;
};

/// The unified executable-model interface. One Model = one simulation
/// kernel; a composed scenario puts every instance into this one kernel.
class Model {
 public:
  virtual ~Model() = default;

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// Run to completion (event queue drained) or to the horizon.
  virtual Outcome run(std::optional<TimePoint> until = std::nullopt) = 0;

  [[nodiscard]] virtual const trace::InstantTraceSet& instants() const = 0;
  [[nodiscard]] virtual const trace::UsageTraceSet& usage() const = 0;
  /// False when this backend produces no resource-usage observations by
  /// design (the loosely-timed runner) — studies then skip the usage
  /// comparison instead of reporting a spurious mismatch.
  [[nodiscard]] virtual bool records_usage() const { return true; }
  [[nodiscard]] virtual const sim::KernelStats& kernel_stats() const = 0;
  /// Completed channel transfers (the paper's event-ratio quantity); 0 for
  /// the loosely-timed backend, whose queues bypass the kernel entirely.
  [[nodiscard]] virtual std::uint64_t relation_events() const = 0;
  [[nodiscard]] virtual TimePoint end_time() const = 0;
  /// The simulation kernel driving this model.
  [[nodiscard]] virtual sim::Kernel& kernel() = 0;

  /// TDG cost counters; zero for backends without a computation engine.
  [[nodiscard]] virtual std::uint64_t instances_computed() const { return 0; }
  [[nodiscard]] virtual std::uint64_t arc_terms_evaluated() const { return 0; }

  /// Shape of the temporal dependency graph; all-zero for backends
  /// without one.
  struct GraphShape {
    std::size_t nodes = 0;
    std::size_t paper_nodes = 0;
    std::size_t arcs = 0;
  };
  [[nodiscard]] virtual GraphShape graph_shape() const { return {}; }

  /// What the adaptive fast-forward did, when this model is one
  /// (Backend::adaptive); nullopt for every other backend. Studies use the
  /// presence of a value to emit the fidelity report columns.
  [[nodiscard]] virtual std::optional<AdaptiveStats> adaptive_stats() const {
    return std::nullopt;
  }

 protected:
  Model() = default;
};

/// Instantiation knobs shared across a study's whole matrix (as opposed to
/// ScenarioOptions, which travel with each scenario).
struct RunConfig {
  /// Record instant/usage traces. Disable for pure simulation-speed runs.
  bool observe = true;
  /// Synthetic wall-clock cost per kernel event (emulates heavier
  /// commercial kernels; applied identically to every backend).
  double event_overhead_ns = 0.0;
  /// Run composed scenarios with equal-structure sub-batches
  /// (Scenario::partially_batchable(): >= 2 instances sharing one
  /// description + abstraction group, possibly several such groups)
  /// through the batched equivalent model — one compiled program + shared
  /// frame arena per sub-batch, the isolated remainder on the merged
  /// inline engine, all in one kernel — instead of the N-times-larger
  /// merged graph. On by default; per-instance traces are bit-identical
  /// either way (docs/DESIGN.md §9–§10). Only the equivalent backend
  /// consults this.
  bool batch_composed = true;
  /// Worker threads draining a batched composition's per-group engines
  /// between timestep barriers (core::BatchEquivalentModel::Options::
  /// threads; docs/DESIGN.md §11). 1 = serial drain (the default; also
  /// used when a model has < 2 sub-batches), 0 = one per hardware thread.
  /// Traces and reports are bit-identical at any setting.
  int threads = 1;
  /// Run guards (sim::RunGuards), applied to every instantiated model's
  /// kernel. 0 / nullptr = unguarded (the guard branch of the kernel loop
  /// is not even compiled in for that run).
  ///
  /// Stop the run after this many dispatched events (cumulative across
  /// run() calls on one model, so a resumed run keeps its budget).
  std::uint64_t max_events = 0;
  /// Stop the run this many milliseconds of wall clock after the first
  /// guarded run() call (fractional values allowed).
  double deadline_ms = 0.0;
  /// Cooperative cancellation: polled once per dispatched event (and hence
  /// at every batch-drain barrier). Not owned; must outlive the models.
  const util::CancelToken* cancel = nullptr;
  /// Source of compiled abstractions (core::CompiledProvider) consulted by
  /// the equivalent backends — a serve::ProgramCache here makes repeated
  /// instantiations of one structure share a single derive + compile.
  /// Null = compile privately. Not owned; must outlive the models.
  core::CompiledProvider* compiled = nullptr;
  /// Evaluate loads through the compiled programs' opcode tables
  /// (docs/DESIGN.md §14). Off = per-arc std::function dispatch; the
  /// differential sweep in tests/test_ops.cpp runs every seed both ways.
  bool opcode_dispatch = true;
  /// Drain full uniform fronts with the SoA lane kernels
  /// (tdg::BatchEngine::Options::vector_drain). Only the batched
  /// equivalent path consults this.
  bool vector_drain = true;
};

/// Value-semantic backend selector (a closed sum over the execution
/// styles). Equality of names identifies cells in a Report.
class Backend {
 public:
  enum class Kind : std::uint8_t {
    kBaseline,
    kEquivalent,
    kLooselyTimed,
    kAdaptive,
  };

  /// Event-driven reference: every relation goes through the kernel.
  [[nodiscard]] static Backend baseline();
  /// The paper's method: the scenario's abstraction group replaced by
  /// dynamically computed instants.
  [[nodiscard]] static Backend equivalent();
  /// Temporal decoupling with the given global quantum.
  [[nodiscard]] static Backend loosely_timed(Duration quantum);
  /// The equivalent model plus a periodicity detector: once the computed
  /// instants converge to a certified vector period, the remaining
  /// iterations are filled in analytically and the kernel stops
  /// (docs/DESIGN.md §15). Falls back to full simulation whenever
  /// certification refuses.
  [[nodiscard]] static Backend adaptive(AdaptiveOptions opts = {});

  [[nodiscard]] Kind kind() const { return kind_; }
  /// Stable display/identity name: "baseline", "equivalent", "lt(10us)",
  /// "adaptive".
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Duration quantum() const { return quantum_; }
  [[nodiscard]] const AdaptiveOptions& adaptive_options() const {
    return adaptive_;
  }

  /// Build an executable model of \p scenario behind the unified interface.
  /// The model shares ownership of the scenario's description.
  [[nodiscard]] std::unique_ptr<Model> instantiate(
      const Scenario& scenario, const RunConfig& config = {}) const;

 private:
  Backend(Kind kind, std::string name, Duration quantum)
      : kind_(kind), name_(std::move(name)), quantum_(quantum) {}

  Kind kind_;
  std::string name_;
  Duration quantum_;
  AdaptiveOptions adaptive_;
};

}  // namespace maxev::study
