#pragma once

#include <cstdint>

#include "model/desc.hpp"

/// \file random_arch.hpp
/// Seeded random feed-forward architectures for the equivalence property
/// tests: the paper's accuracy claim ("evolution instants of both models
/// ... remain the same") is checked across hundreds of generated
/// architectures, workloads and environment behaviours.
///
/// Construction invariants (guarantee deadlock freedom under the static
/// cyclic schedules): data flows strictly forward in function-creation
/// order, every function reads before executing or writing, channels are
/// 1:1, schedule order on every resource equals creation order.

namespace maxev::gen {

struct RandomArchConfig {
  std::uint64_t tokens = 100;
  std::size_t min_functions = 2;
  std::size_t max_functions = 7;
  std::size_t max_resources = 3;
  /// Probability a channel is a bounded FIFO instead of a rendezvous.
  double fifo_probability = 0.3;
  /// Probability the sink delays consumption (environment back-pressure).
  double slow_sink_probability = 0.3;
  /// Probability the source is periodic rather than self-timed.
  double periodic_source_probability = 0.5;
  /// Allow two sources (multi-input equivalent models).
  double second_source_probability = 0.25;
  /// Probability the architecture gains a multi-rate producer bundle: a
  /// dedicated consumer function fed by r bounded FIFOs, each with its own
  /// source, so r tokens arrive per consumer iteration (r uniform in
  /// [2, max_producer_rate]). Exercises FIFO input boundaries with several
  /// reads per function body. 0 (the default) draws nothing from the RNG,
  /// so historical seeds keep producing identical architectures.
  double multi_rate_producer_probability = 0.0;
  /// Largest bundle width r.
  std::size_t max_producer_rate = 3;
  /// Render every behavioural std::function as an introspectable shaping
  /// functor (model/shaping.hpp) drawn towards a periodic steady state:
  /// sources release on a PeriodicTimeFn grid, attrs cycle through a small
  /// CyclicAttrsFn table (length 1/2/4), gaps become ConstantDurationFn,
  /// and slow sinks delay through a small CyclicDurationFn table. This is
  /// what the adaptive backend (study/adaptive.hpp) can certify and
  /// fast-forward. false (the default) draws nothing extra from the RNG,
  /// so historical seeds keep producing identical architectures.
  bool steady_shaping = false;
  /// With steady_shaping: periodic sources release the first warmup_tokens
  /// tokens on an irregular (hash-jittered, monotone) prefix before locking
  /// onto the periodic grid — rendered as one TableTimeFn so the behaviour
  /// stays introspectable. 0 = exactly periodic from the first token.
  std::uint64_t warmup_tokens = 0;
};

/// Generate a validated architecture; identical seeds give identical
/// architectures on every platform.
[[nodiscard]] model::ArchitectureDesc make_random_architecture(
    std::uint64_t seed, const RandomArchConfig& cfg = {});

}  // namespace maxev::gen
