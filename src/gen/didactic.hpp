#pragma once

#include <cstdint>

#include "model/desc.hpp"

/// \file didactic.hpp
/// The paper's didactic example (Fig. 1): five functions F0..F4, two
/// processing resources. F0 is the environment source producing data
/// through relation M1; F1 and F2 share the sequential processor P1
/// (static schedule [F1, F2]); F3 and F4 run on P2. All relations use the
/// rendezvous protocol. Execution durations depend linearly on the token's
/// data size ("20000 data produced through relation M1 with varying data
/// size associated").
///
/// The derived + folded TDG of this architecture is exactly the paper's
/// Fig. 3: nodes u, xM1..xM6 and history references xM4(k-1), xM5(k-1),
/// xM6(k-1) — 10 nodes in Table I's counting.

namespace maxev::gen {

struct DidacticConfig {
  std::uint64_t tokens = 20000;
  std::uint64_t seed = 1;
  /// Paper Section III-B variant: "if we consider that P2 has also a
  /// limited concurrency" — F3/F4 then share P2 sequentially, adding the
  /// ⊕ xM6(k-1) term to xM2(k).
  bool p2_limited_concurrency = false;
  /// Source pacing: 0 = self-timed (offer as soon as the previous transfer
  /// completed), otherwise periodic with this period.
  Duration source_period = Duration::ps(0);
  /// Data size range (uniform per token, deterministic in seed).
  std::int64_t size_min = 64;
  std::int64_t size_max = 2048;
  /// Resource rates (operations per second).
  double p1_ops_per_second = 1e9;
  double p2_ops_per_second = 2e9;
};

/// Build the (validated) didactic architecture description.
[[nodiscard]] model::ArchitectureDesc make_didactic(
    const DidacticConfig& cfg = {});

}  // namespace maxev::gen
