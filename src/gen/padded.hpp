#pragma once

#include <cstdint>

#include "model/desc.hpp"

/// \file padded.hpp
/// Architectures for the paper's Fig. 5 experiment: the speed-up achieved
/// by the equivalent model as a function of the computation method's
/// complexity (TDG node count), for state-vector sizes |X(k)| in
/// {6, 10, 20, 30}.
///
/// A pipeline of (x_size - 1) single-execute functions yields a state
/// vector of x_size instants; |X| fixes how many events the equivalent
/// model saves per iteration. The node count is then swept independently by
/// padding the graph with pass-through nodes
/// (EquivalentModel::Options::pad_nodes), representing architectures whose
/// instant equations need more intermediate computation.

namespace maxev::gen {

struct PipelineConfig {
  /// Size of the state vector X(k) = number of non-input instant nodes.
  std::size_t x_size = 6;
  std::uint64_t tokens = 20000;
  std::uint64_t seed = 1;
  /// Every function runs on its own dedicated unit of one concurrent
  /// resource when false; on one shared sequential processor when true.
  bool shared_processor = false;
  double ops_per_second = 1e9;
  std::int64_t size_min = 64;
  std::int64_t size_max = 2048;
};

/// Build the pipeline architecture with |X(k)| == cfg.x_size.
[[nodiscard]] model::ArchitectureDesc make_pipeline(const PipelineConfig& cfg);

}  // namespace maxev::gen
