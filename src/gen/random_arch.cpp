#include "gen/random_arch.hpp"

#include <memory>
#include <optional>
#include <vector>

#include "model/shaping.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace maxev::gen {

using model::ArchitectureDesc;
using model::ChannelId;
using model::FunctionId;
using model::ResourceId;
using model::ResourcePolicy;
using model::TokenAttrs;

namespace {

/// A channel whose token is produced but not yet consumed by a function.
struct OpenChannel {
  ChannelId ch = model::kInvalidId;
  FunctionId writer = model::kInvalidId;  ///< kInvalidId = source
  ResourceId writer_res = model::kInvalidId;
  bool is_writer_last_write = false;
  bool fifo = false;
};

}  // namespace

model::ArchitectureDesc make_random_architecture(std::uint64_t seed,
                                                 const RandomArchConfig& cfg) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);
  ArchitectureDesc d;

  // Resource 0 is always concurrent: it is the safe fallback where
  // same-resource reads cannot deadlock (no schedule gates).
  std::vector<ResourceId> resources;
  resources.push_back(
      d.add_resource("R0", ResourcePolicy::kConcurrent, rng.uniform(5e8, 4e9)));
  const std::size_t n_res =
      1 + rng.next_below(std::max<std::size_t>(1, cfg.max_resources));
  for (std::size_t r = 1; r < n_res; ++r) {
    resources.push_back(d.add_resource(
        "R" + std::to_string(r),
        rng.chance(0.6) ? ResourcePolicy::kSequentialCyclic
                        : ResourcePolicy::kConcurrent,
        rng.uniform(5e8, 4e9)));
  }

  // Sources.
  std::vector<OpenChannel> open;
  const std::size_t n_sources =
      rng.chance(cfg.second_source_probability) ? 2 : 1;
  std::vector<ChannelId> source_channels;
  for (std::size_t s = 0; s < n_sources; ++s) {
    const ChannelId ch = d.add_rendezvous("in" + std::to_string(s));
    source_channels.push_back(ch);
    open.push_back({ch, model::kInvalidId, model::kInvalidId, true, false});
  }

  // Track per-resource schedule tails (the would-be predecessor) and the
  // functions' last-write channels.
  std::vector<FunctionId> tail(resources.size(), model::kInvalidId);

  const std::size_t n_fn =
      cfg.min_functions +
      rng.next_below(cfg.max_functions - cfg.min_functions + 1);
  int channel_seq = 0;
  auto random_load = [&rng]() {
    return model::linear_ops(rng.uniform_i64(100, 2000),
                             rng.uniform_i64(0, 4));
  };

  // Multi-rate producer bundle: r bounded FIFOs, each fed by its own
  // source, all drained by one dedicated consumer on the concurrent
  // resource (where multiple reads per body are always deadlock-free). Its
  // aggregate then joins the normal flow through an open channel. The
  // whole block is gated on the probability so the default configuration
  // draws nothing and historical seeds stay stable.
  if (cfg.multi_rate_producer_probability > 0 && cfg.max_producer_rate < 2)
    throw DescriptionError(
        "make_random_architecture: max_producer_rate must be >= 2 when "
        "multi_rate_producer_probability > 0");
  if (cfg.multi_rate_producer_probability > 0 &&
      rng.chance(cfg.multi_rate_producer_probability)) {
    const std::size_t rate = 2 + rng.next_below(cfg.max_producer_rate - 1);
    const FunctionId mr = d.add_function("MR", resources[0]);
    for (std::size_t r = 0; r < rate; ++r) {
      const ChannelId ch =
          d.add_fifo("mr" + std::to_string(r), 1 + rng.next_below(3));
      source_channels.push_back(ch);
      d.fn_read(mr, ch);
      d.fn_execute(mr, random_load());
    }
    const bool out_fifo = rng.chance(cfg.fifo_probability);
    const ChannelId out = out_fifo
                              ? d.add_fifo("mrout", 1 + rng.next_below(3))
                              : d.add_rendezvous("mrout");
    d.fn_write(mr, out);
    open.push_back({out, mr, resources[0], true, out_fifo});
  }

  for (std::size_t i = 0; i < n_fn; ++i) {
    ResourceId res = resources[rng.next_below(resources.size())];
    const bool sequential = d.resources()[res].policy ==
                            ResourcePolicy::kSequentialCyclic;
    const FunctionId pred = sequential ? tail[res] : model::kInvalidId;

    // First-read candidates. On a sequential resource, a rendezvous whose
    // writer shares the resource is only safe when it is the immediate
    // predecessor's final write read as our first statement (the
    // implied-gate handoff); FIFOs and cross-resource channels are always
    // safe.
    auto candidate_ok = [&](const OpenChannel& oc, bool first_read) {
      if (oc.writer == model::kInvalidId) return true;           // source
      if (oc.writer_res != res) return true;                     // cross-resource
      if (!sequential) return true;                              // concurrent
      if (oc.fifo) return true;                                  // non-blocking
      return first_read && oc.writer == pred && oc.is_writer_last_write;
    };

    std::vector<std::size_t> firsts;
    for (std::size_t c = 0; c < open.size(); ++c)
      if (candidate_ok(open[c], true)) firsts.push_back(c);
    if (firsts.empty()) {
      // Fall back to the concurrent resource, where everything is safe.
      res = resources[0];
      firsts.clear();
      for (std::size_t c = 0; c < open.size(); ++c) firsts.push_back(c);
    }

    const FunctionId f = d.add_function("F" + std::to_string(i), res);
    if (d.resources()[res].policy == ResourcePolicy::kSequentialCyclic)
      tail[res] = f;

    // First read.
    const std::size_t pick = firsts[rng.next_below(firsts.size())];
    d.fn_read(f, open[pick].ch);
    open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    d.fn_execute(f, random_load());

    // Optional second read (join).
    if (!open.empty() && rng.chance(0.35)) {
      std::vector<std::size_t> seconds;
      for (std::size_t c = 0; c < open.size(); ++c)
        if (candidate_ok(open[c], false)) seconds.push_back(c);
      if (!seconds.empty()) {
        const std::size_t p2 = seconds[rng.next_below(seconds.size())];
        d.fn_read(f, open[p2].ch);
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(p2));
        d.fn_execute(f, random_load());
      }
    }
    if (rng.chance(0.25)) d.fn_execute(f, random_load());

    // Writes. Only the *final* write may be a blocking rendezvous: a
    // blocked mid-body writer can form a blocking cycle with the schedule
    // gates of its readers' resources (see random_arch.hpp invariants), so
    // mid-body writes always go through non-blocking FIFOs.
    const std::size_t writes = rng.chance(0.3) ? 2 : 1;
    for (std::size_t w = 0; w < writes; ++w) {
      const bool last = w + 1 == writes;
      const bool fifo = !last || rng.chance(cfg.fifo_probability);
      const std::string name = "c" + std::to_string(channel_seq++);
      const ChannelId ch =
          fifo ? d.add_fifo(name, 1 + rng.next_below(3)) : d.add_rendezvous(name);
      if (!last && rng.chance(0.5)) d.fn_execute(f, random_load());
      d.fn_write(f, ch);
      open.push_back({ch, f, res, last, fifo});
    }
  }

  // Sinks consume every remaining open channel.
  int sink_seq = 0;
  for (const OpenChannel& oc : open) {
    std::function<Duration(std::uint64_t)> delay;
    if (rng.chance(cfg.slow_sink_probability)) {
      if (cfg.steady_shaping) {
        // Introspectable periodic back-pressure: a short cyclic delay table
        // (length 1/2/4 keeps the overall vector period small).
        const std::size_t len = std::size_t{1} << rng.next_below(3);
        auto table = std::make_shared<std::vector<std::int64_t>>();
        for (std::size_t j = 0; j < len; ++j)
          table->push_back(Duration::ns(rng.uniform_i64(0, 4000)).count());
        delay = model::CyclicDurationFn{std::move(table)};
      } else {
        const std::int64_t base = rng.uniform_i64(0, 4000);
        const std::int64_t spread = rng.uniform_i64(1, 3000);
        delay = [base, spread](std::uint64_t k) {
          return Duration::ns(base + static_cast<std::int64_t>(
                                          (k * 2654435761u) % spread));
        };
      }
    }
    d.add_sink("sink" + std::to_string(sink_seq++), oc.ch, delay);
  }

  // Source timing and attributes.
  for (std::size_t s = 0; s < source_channels.size(); ++s) {
    std::function<TokenAttrs(std::uint64_t)> attrs;
    if (cfg.steady_shaping) {
      const std::size_t len = std::size_t{1} << rng.next_below(3);
      auto table = std::make_shared<std::vector<TokenAttrs>>();
      for (std::size_t j = 0; j < len; ++j) {
        TokenAttrs a;
        a.size = rng.uniform_i64(16, 4096);
        a.params[0] = static_cast<double>(rng.uniform_int(1, 8));
        table->push_back(a);
      }
      attrs = model::CyclicAttrsFn{std::move(table)};
    } else {
      const std::uint64_t aseed = rng.next_u64();
      attrs = [aseed](std::uint64_t k) {
        Rng r(aseed ^ (k * 0xd1342543de82ef95ull));
        TokenAttrs a;
        a.size = r.uniform_i64(16, 4096);
        a.params[0] = static_cast<double>(r.uniform_int(1, 8));
        return a;
      };
    }
    std::function<TimePoint(std::uint64_t)> earliest;
    if (rng.chance(cfg.periodic_source_probability)) {
      const Duration period = Duration::ns(rng.uniform_i64(500, 20000));
      if (cfg.steady_shaping && cfg.warmup_tokens > 0) {
        // Warmup-then-periodic, rendered as one explicit table: irregular
        // (hash-jittered) monotone releases for the first warmup_tokens,
        // then the exact periodic grid.
        const std::uint64_t wseed = rng.next_u64();
        auto values = std::make_shared<std::vector<std::int64_t>>();
        values->reserve(cfg.tokens);
        std::int64_t t = 0;
        for (std::uint64_t k = 0; k < cfg.tokens; ++k) {
          if (k < cfg.warmup_tokens) {
            t += 1 + static_cast<std::int64_t>(
                         (wseed ^ (k * 0x9e3779b97f4a7c15ull)) %
                         static_cast<std::uint64_t>(period.count()));
          } else {
            t += period.count();
          }
          values->push_back(t);
        }
        earliest = model::TableTimeFn{std::move(values)};
      } else if (cfg.steady_shaping) {
        earliest = model::PeriodicTimeFn{0, period.count()};
      } else {
        earliest = [period](std::uint64_t k) {
          return TimePoint::origin() + period * static_cast<std::int64_t>(k);
        };
      }
    } else if (cfg.steady_shaping) {
      earliest = model::PeriodicTimeFn{0, 0};  // self-timed, introspectable
    } else {
      earliest = [](std::uint64_t) { return TimePoint::origin(); };
    }
    std::function<Duration(std::uint64_t)> gap;
    if (rng.chance(0.3)) {
      const std::int64_t g = rng.uniform_i64(0, 2000);
      if (cfg.steady_shaping) {
        gap = model::ConstantDurationFn{Duration::ns(g).count()};
      } else {
        gap = [g](std::uint64_t) { return Duration::ns(g); };
      }
    }
    d.add_source("src" + std::to_string(s), source_channels[s], cfg.tokens,
                 earliest, attrs, gap);
  }

  d.validate();
  return d;
}

}  // namespace maxev::gen
