#include "gen/padded.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace maxev::gen {

using model::ArchitectureDesc;
using model::ChannelId;
using model::ResourcePolicy;
using model::TokenAttrs;

model::ArchitectureDesc make_pipeline(const PipelineConfig& cfg) {
  if (cfg.x_size < 2)
    throw DescriptionError("make_pipeline: x_size must be >= 2");
  const std::size_t functions = cfg.x_size - 1;

  ArchitectureDesc d;
  const auto res = d.add_resource(
      "proc",
      cfg.shared_processor ? ResourcePolicy::kSequentialCyclic
                           : ResourcePolicy::kConcurrent,
      cfg.ops_per_second);

  std::vector<ChannelId> ch;
  ch.reserve(functions + 1);
  for (std::size_t i = 0; i <= functions; ++i)
    ch.push_back(d.add_rendezvous("C" + std::to_string(i)));

  for (std::size_t i = 0; i < functions; ++i) {
    const auto f = d.add_function("S" + std::to_string(i), res);
    d.fn_read(f, ch[i]);
    // Loads vary per stage and per token size.
    d.fn_execute(f, model::linear_ops(200 + 50 * static_cast<std::int64_t>(i),
                                      1 + static_cast<std::int64_t>(i % 3)));
    d.fn_write(f, ch[i + 1]);
  }

  const std::uint64_t seed = cfg.seed;
  const std::int64_t lo = cfg.size_min;
  const std::int64_t hi = cfg.size_max;
  auto attrs = [seed, lo, hi](std::uint64_t k) {
    Rng rng(seed ^ (k * 0xd1342543de82ef95ull + 0xaf251af3b0f025b5ull));
    TokenAttrs a;
    a.size = rng.uniform_i64(lo, hi);
    return a;
  };
  d.add_source("src", ch.front(), cfg.tokens,
               [](std::uint64_t) { return TimePoint::origin(); }, attrs);
  d.add_sink("snk", ch.back());

  d.validate();
  return d;
}

}  // namespace maxev::gen
