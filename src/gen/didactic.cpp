#include "gen/didactic.hpp"

#include "util/rng.hpp"

namespace maxev::gen {

using model::ArchitectureDesc;
using model::LoadFn;
using model::ResourcePolicy;
using model::TokenAttrs;

model::ArchitectureDesc make_didactic(const DidacticConfig& cfg) {
  ArchitectureDesc d;

  const auto p1 = d.add_resource("P1", ResourcePolicy::kSequentialCyclic,
                                 cfg.p1_ops_per_second);
  const auto p2 = d.add_resource(
      "P2",
      cfg.p2_limited_concurrency ? ResourcePolicy::kSequentialCyclic
                                 : ResourcePolicy::kConcurrent,
      cfg.p2_ops_per_second);

  const auto m1 = d.add_rendezvous("M1");
  const auto m2 = d.add_rendezvous("M2");
  const auto m3 = d.add_rendezvous("M3");
  const auto m4 = d.add_rendezvous("M4");
  const auto m5 = d.add_rendezvous("M5");
  const auto m6 = d.add_rendezvous("M6");

  // Mapping order defines the static schedule: P1 = [F1, F2], P2 = [F3, F4].
  const auto f1 = d.add_function("F1", p1);
  const auto f2 = d.add_function("F2", p1);
  const auto f3 = d.add_function("F3", p2);
  const auto f4 = d.add_function("F4", p2);

  // Loads: base + per-unit * size, distinct per execute (Ti1, Tj1, Ti2,
  // Ti3, Tj3, Ti4 in the paper's notation).
  const auto load = [](std::int64_t base, std::int64_t per_unit) {
    return model::linear_ops(base, per_unit);
  };

  // F1: read(M1); execute(Ti1); write(M2); execute(Tj1); write(M3)
  d.fn_read(f1, m1);
  d.fn_execute(f1, load(500, 2));   // Ti1
  d.fn_write(f1, m2);
  d.fn_execute(f1, load(300, 1));   // Tj1
  d.fn_write(f1, m3);

  // F2: read(M3); execute(Ti2); write(M4)
  d.fn_read(f2, m3);
  d.fn_execute(f2, load(400, 3));   // Ti2
  d.fn_write(f2, m4);

  // F3: read(M2); execute(Ti3); read(M4); execute(Tj3); write(M5)
  d.fn_read(f3, m2);
  d.fn_execute(f3, load(600, 2));   // Ti3
  d.fn_read(f3, m4);
  d.fn_execute(f3, load(200, 4));   // Tj3
  d.fn_write(f3, m5);

  // F4: read(M5); execute(Ti4); write(M6)
  d.fn_read(f4, m5);
  d.fn_execute(f4, load(700, 2));   // Ti4
  d.fn_write(f4, m6);

  // F0: the environment source, with seed-deterministic varying data size.
  const std::uint64_t seed = cfg.seed;
  const std::int64_t lo = cfg.size_min;
  const std::int64_t hi = cfg.size_max;
  auto attrs = [seed, lo, hi](std::uint64_t k) {
    Rng rng(seed ^ (k * 0x9e3779b97f4a7c15ull + 0x5851f42d4c957f2dull));
    TokenAttrs a;
    a.size = rng.uniform_i64(lo, hi);
    return a;
  };
  const Duration period = cfg.source_period;
  auto earliest = [period](std::uint64_t k) {
    return TimePoint::origin() + period * static_cast<std::int64_t>(k);
  };
  d.add_source("F0", m1, cfg.tokens, earliest, attrs);
  d.add_sink("env_out", m6);

  d.validate();
  return d;
}

}  // namespace maxev::gen
