#include "gen/chains.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace maxev::gen {

using model::ArchitectureDesc;
using model::ChannelId;
using model::ResourcePolicy;
using model::TokenAttrs;

model::ArchitectureDesc make_chain(const ChainConfig& cfg) {
  if (cfg.blocks == 0) throw DescriptionError("make_chain: need >= 1 block");

  ArchitectureDesc d;
  const auto load = [](std::int64_t base, std::int64_t per_unit) {
    return model::linear_ops(base, per_unit);
  };

  ChannelId input = d.add_rendezvous("M1");
  ChannelId prev_out = input;
  for (std::size_t b = 0; b < cfg.blocks; ++b) {
    const std::string sfx = cfg.blocks == 1 ? "" : "_" + std::to_string(b + 1);
    const auto p1 = d.add_resource("P1" + sfx, ResourcePolicy::kSequentialCyclic,
                                   cfg.block.p1_ops_per_second);
    const auto p2 = d.add_resource(
        "P2" + sfx,
        cfg.block.p2_limited_concurrency ? ResourcePolicy::kSequentialCyclic
                                         : ResourcePolicy::kConcurrent,
        cfg.block.p2_ops_per_second);

    const ChannelId m1 = prev_out;
    const ChannelId m2 = d.add_rendezvous("M2" + sfx);
    const ChannelId m3 = d.add_rendezvous("M3" + sfx);
    const ChannelId m4 = d.add_rendezvous("M4" + sfx);
    const ChannelId m5 = d.add_rendezvous("M5" + sfx);
    const ChannelId m6 = d.add_rendezvous("M6" + sfx);

    const auto f1 = d.add_function("F1" + sfx, p1);
    const auto f2 = d.add_function("F2" + sfx, p1);
    const auto f3 = d.add_function("F3" + sfx, p2);
    const auto f4 = d.add_function("F4" + sfx, p2);

    d.fn_read(f1, m1);
    d.fn_execute(f1, load(500, 2));
    d.fn_write(f1, m2);
    d.fn_execute(f1, load(300, 1));
    d.fn_write(f1, m3);

    d.fn_read(f2, m3);
    d.fn_execute(f2, load(400, 3));
    d.fn_write(f2, m4);

    d.fn_read(f3, m2);
    d.fn_execute(f3, load(600, 2));
    d.fn_read(f3, m4);
    d.fn_execute(f3, load(200, 4));
    d.fn_write(f3, m5);

    d.fn_read(f4, m5);
    d.fn_execute(f4, load(700, 2));
    d.fn_write(f4, m6);

    prev_out = m6;
  }

  const std::uint64_t seed = cfg.block.seed;
  const std::int64_t lo = cfg.block.size_min;
  const std::int64_t hi = cfg.block.size_max;
  auto attrs = [seed, lo, hi](std::uint64_t k) {
    Rng rng(seed ^ (k * 0x9e3779b97f4a7c15ull + 0x5851f42d4c957f2dull));
    TokenAttrs a;
    a.size = rng.uniform_i64(lo, hi);
    return a;
  };
  const Duration period = cfg.block.source_period;
  auto earliest = [period](std::uint64_t k) {
    return TimePoint::origin() + period * static_cast<std::int64_t>(k);
  };
  d.add_source("F0", input, cfg.block.tokens, earliest, attrs);
  d.add_sink("env_out", prev_out);

  d.validate();
  return d;
}

model::ArchitectureDesc make_table1_example(std::size_t example,
                                            std::uint64_t tokens,
                                            std::uint64_t seed) {
  if (example < 1 || example > 4)
    throw DescriptionError("make_table1_example: example must be 1..4");
  ChainConfig cfg;
  cfg.blocks = example;
  cfg.block.tokens = tokens;
  cfg.block.seed = seed;
  return make_chain(cfg);
}

}  // namespace maxev::gen
