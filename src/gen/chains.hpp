#pragma once

#include <cstdint>

#include "gen/didactic.hpp"
#include "model/desc.hpp"

/// \file chains.hpp
/// Table I's architecture models: the didactic example replicated as a
/// chain of 1..4 blocks. Block i's output relation feeds block i+1's input;
/// every block has its own pair of processing resources. One equivalent
/// model abstracts the whole chain, so the number of saved events grows
/// with the block count while the external interface stays a single
/// input/output pair — the derived TDG node counts step by 9 per block
/// (10, 19, 28, 37 in the paper's convention), matching Table I.

namespace maxev::gen {

struct ChainConfig {
  std::size_t blocks = 1;  ///< 1..4 are the paper's Examples 1..4
  DidacticConfig block;    ///< per-block parameters (tokens, seed, sizes)
};

/// Build a chain of didactic blocks.
[[nodiscard]] model::ArchitectureDesc make_chain(const ChainConfig& cfg);

/// Paper's Example N (N in 1..4) with the given token count.
[[nodiscard]] model::ArchitectureDesc make_table1_example(
    std::size_t example, std::uint64_t tokens = 20000, std::uint64_t seed = 1);

}  // namespace maxev::gen
