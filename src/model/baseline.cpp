#include "model/baseline.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace maxev::model {

ModelRuntime::ModelRuntime(const ArchitectureDesc& desc,
                           std::vector<bool> skip, bool observe)
    : ModelRuntime(std::make_shared<const ArchitectureDesc>(desc),
                   std::move(skip), observe) {}

ModelRuntime::ModelRuntime(DescPtr desc_in, std::vector<bool> skip,
                           bool observe)
    : desc_(std::move(desc_in)), skip_(std::move(skip)), observe_(observe) {
  if (desc_ == nullptr)
    throw DescriptionError("ModelRuntime: null description");
  const ArchitectureDesc& desc = *desc_;
  if (!desc.validated())
    throw DescriptionError("ModelRuntime: description must be validated");
  skip_.resize(desc.functions().size(), false);

  // Resolve the usage traces once; recording is a hot-path operation.
  // Labels are interned up front and the columns pre-sized to the expected
  // interval count so the observation path never allocates mid-run. Any
  // single relation sees at most the largest source's token count.
  const std::uint64_t expected = desc.max_source_tokens();
  if (observe_) {
    usage_by_resource_.reserve(desc.resources().size());
    for (const auto& r : desc.resources())
      usage_by_resource_.push_back(&usage_.trace(r.name));
    exec_labels_.resize(desc.functions().size());
    std::vector<std::size_t> execs_per_resource(desc.resources().size(), 0);
    for (FunctionId f = 0; f < static_cast<FunctionId>(desc.functions().size());
         ++f) {
      const FunctionDesc& fn = desc.functions()[f];
      for (const StatementDesc& s : fn.body) {
        if (s.kind != StatementKind::kExecute) continue;
        exec_labels_[f].push_back(
            usage_by_resource_[fn.resource]->intern_label(s.label));
        if (!skip_[f]) ++execs_per_resource[static_cast<std::size_t>(fn.resource)];
      }
    }
    for (std::size_t r = 0; r < desc.resources().size(); ++r)
      usage_by_resource_[r]->reserve(execs_per_resource[r] * expected);
  }

  // Channels. A channel whose two endpoints are both skipped functions is
  // internal to the abstraction group: it is not constructed, which is
  // precisely where the simulation events are saved.
  channels_.resize(desc.channels().size());
  for (ChannelId c = 0; c < static_cast<ChannelId>(desc.channels().size());
       ++c) {
    const ChannelEndpoints& ep = desc.endpoints(c);
    const bool writer_skipped =
        ep.writer_fn != kInvalidId && skip_[ep.writer_fn];
    const bool reader_skipped =
        ep.reader_fn != kInvalidId && skip_[ep.reader_fn];
    if (writer_skipped && reader_skipped) continue;  // internal to the group

    const ChannelDesc& cd = desc.channels()[c];
    auto rt = std::make_unique<ChannelRt>();
    rt->kind = cd.kind;
    if (cd.kind == ChannelKind::kRendezvous) {
      rt->rendezvous = std::make_unique<sim::Rendezvous<Token>>(kernel_, cd.name);
      if (observe_) {
        trace::InstantSeries* series = &instants_.series(cd.name);
        series->reserve(expected);
        rt->rendezvous->on_transfer(
            [series](std::uint64_t, TimePoint t, const Token&) {
              series->push(t);
            });
      }
    } else {
      rt->fifo = std::make_unique<sim::Fifo<Token>>(kernel_, cd.name, cd.capacity);
      if (observe_) {
        trace::InstantSeries* w = &instants_.series(cd.name + ".w");
        trace::InstantSeries* r = &instants_.series(cd.name + ".r");
        w->reserve(expected);
        r->reserve(expected);
        rt->fifo->on_write_complete(
            [w](std::uint64_t, TimePoint t, const Token&) { w->push(t); });
        rt->fifo->on_read_complete(
            [r](std::uint64_t, TimePoint t, const Token&) { r->push(t); });
      }
    }
    channels_[c] = std::move(rt);
  }

  // Completion counters for simulated functions.
  counters_.resize(desc.functions().size());
  for (FunctionId f = 0; f < static_cast<FunctionId>(desc.functions().size());
       ++f) {
    if (skip_[f]) continue;
    counters_[f] = std::make_unique<CompletionCounter>(
        kernel_, desc.functions()[f].name + ".done");
  }

  // Processes.
  for (FunctionId f = 0; f < static_cast<FunctionId>(desc.functions().size());
       ++f) {
    if (skip_[f]) continue;
    kernel_.spawn(desc.functions()[f].name,
                  [this, f] { return function_proc(f); });
  }
  sink_received_.assign(desc.sinks().size(), 0);
  for (SinkId s = 0; s < static_cast<SinkId>(desc.sinks().size()); ++s)
    kernel_.spawn(desc.sinks()[s].name, [this, s] { return sink_proc(s); });
  for (SourceId s = 0; s < static_cast<SourceId>(desc.sources().size()); ++s)
    kernel_.spawn(desc.sources()[s].name, [this, s] { return source_proc(s); });
}

bool ModelRuntime::gate_implied_by_first_read(FunctionId f,
                                              FunctionId pred) const {
  const FunctionDesc& fn = desc_->functions()[f];
  const StatementDesc& first = fn.body.front();
  if (first.kind != StatementKind::kRead) return false;
  const ChannelEndpoints& ep = desc_->endpoints(first.channel);
  if (ep.writer_fn != pred) return false;
  // The read implies the predecessor finished its iteration only when the
  // write is the predecessor's *final* statement.
  const FunctionDesc& pf = desc_->functions()[pred];
  return ep.writer_stmt == static_cast<std::int32_t>(pf.body.size()) - 1;
}

sim::Process ModelRuntime::function_proc(FunctionId f) {
  const FunctionDesc& fn = desc_->functions()[f];
  const ResourceDesc& res = desc_->resources()[fn.resource];
  const bool sequential = res.policy == ResourcePolicy::kSequentialCyclic;
  const auto& sched = desc_->schedule(fn.resource);

  // Resolve the static-schedule gate (see header).
  CompletionCounter* pred = nullptr;
  bool pred_prev_iteration = false;
  if (sequential && sched.size() > 1) {
    const std::size_t pos = desc_->schedule_position(f);
    const FunctionId p = sched[(pos + sched.size() - 1) % sched.size()];
    pred_prev_iteration = (pos == 0);
    // A gate satisfied exactly at the rendezvous instant of the first read
    // must be elided: the rendezvous itself enforces it (the predecessor's
    // final write and this function's first read complete simultaneously),
    // and waiting on the completion counter first would deadlock against
    // the predecessor's blocking write.
    if (!gate_implied_by_first_read(f, p)) {
      pred = counters_[p].get();
    }
  }

  Token tok{};  // current token: set by reads, forwarded by writes
  for (std::uint64_t k = 0;; ++k) {
    if (pred != nullptr) {
      const std::uint64_t need = pred_prev_iteration ? k : k + 1;
      while (pred->count() < need) co_await pred->event().wait();
    }
    std::size_t exec_idx = 0;
    for (const StatementDesc& s : fn.body) {
      switch (s.kind) {
        case StatementKind::kRead: {
          ChannelRt& ch = *channels_[s.channel];
          if (ch.kind == ChannelKind::kRendezvous)
            tok = co_await ch.rendezvous->read();
          else
            tok = co_await ch.fifo->read();
          break;
        }
        case StatementKind::kExecute: {
          const std::int64_t ops = s.load(tok.attrs, k);
          const Duration d = res.duration_for(ops);
          const TimePoint start = kernel_.now();
          co_await kernel_.delay(d);
          if (observe_) {
            usage_by_resource_[fn.resource]->push(start, kernel_.now(), ops,
                                                  exec_labels_[f][exec_idx]);
          }
          ++exec_idx;
          break;
        }
        case StatementKind::kWrite: {
          ChannelRt& ch = *channels_[s.channel];
          if (ch.kind == ChannelKind::kRendezvous)
            co_await ch.rendezvous->write(tok);
          else
            co_await ch.fifo->write(tok);
          break;
        }
      }
    }
    counters_[f]->mark();
  }
}

sim::Process ModelRuntime::source_proc(SourceId s) {
  const SourceDesc& src = desc_->sources()[s];
  ChannelRt& ch = *channels_[src.channel];
  for (std::uint64_t k = 0; k < src.count; ++k) {
    if (src.gap) {
      const Duration g = src.gap(k);
      if (!g.is_zero()) co_await kernel_.delay(g);
    }
    co_await kernel_.delay_until(src.earliest(k));
    Token tok{k, s, src.attrs(k)};
    if (ch.kind == ChannelKind::kRendezvous)
      co_await ch.rendezvous->write(std::move(tok));
    else
      co_await ch.fifo->write(std::move(tok));
  }
  ++sources_finished_;
}

sim::Process ModelRuntime::sink_proc(SinkId s) {
  const SinkDesc& snk = desc_->sinks()[s];
  ChannelRt& ch = *channels_[snk.channel];
  for (std::uint64_t k = 0;; ++k) {
    if (snk.consume_delay) {
      const Duration d = snk.consume_delay(k);
      if (!d.is_zero()) co_await kernel_.delay(d);
    }
    if (ch.kind == ChannelKind::kRendezvous)
      (void)co_await ch.rendezvous->read();
    else
      (void)co_await ch.fifo->read();
    ++sink_received_[s];
  }
}

ModelRuntime::Outcome ModelRuntime::run(std::optional<TimePoint> until) {
  const sim::StopReason result = kernel_.run(until);
  Outcome out;
  out.stop = result;
  out.idle = result == sim::StopReason::kIdle;

  // Expected number of tokens at each sink: in the aligned feed-forward
  // architectures this library models, every channel carries one token per
  // iteration, so each sink should see min(source counts) tokens.
  std::uint64_t expected = 0;
  if (!desc_->sources().empty()) {
    expected = desc_->sources()[0].count;
    for (const auto& src : desc_->sources())
      expected = std::min(expected, src.count);
  }

  bool writer_blocked = false;
  std::string blocked_channels;
  for (const auto& ch : channels_) {
    if (!ch) continue;
    const bool blocked = ch->rendezvous ? ch->rendezvous->writer_blocked()
                                        : ch->fifo->writer_blocked();
    if (blocked) {
      writer_blocked = true;
      const std::string& n =
          ch->rendezvous ? ch->rendezvous->name() : ch->fifo->name();
      blocked_channels += (blocked_channels.empty() ? "" : ", ") + n;
    }
  }

  bool sinks_ok = true;
  for (std::size_t s = 0; s < sink_received_.size(); ++s)
    sinks_ok = sinks_ok && sink_received_[s] >= expected;

  out.completed = out.idle &&
                  sources_finished_ == desc_->sources().size() &&
                  !writer_blocked && sinks_ok;

  if (!out.completed && (out.idle || sim::is_guard_stop(result))) {
    // Structured picture first: what stopped us, who is parked, how far
    // the tokens got. The model layers above (equivalent/batched) append
    // what only they can see (unresolved gates, per-instance progress).
    sim::RunDiagnostics& d = out.diagnostics;
    d.stop = result;
    d.events_processed = kernel_.events_dispatched();
    d.parked_processes = kernel_.blocked_process_names();
    std::string detail =
        format("sources finished %llu/%zu",
               static_cast<unsigned long long>(sources_finished_),
               desc_->sources().size());
    if (writer_blocked)
      detail += "; writers blocked on channels: " + blocked_channels;
    for (std::size_t s = 0; s < sink_received_.size(); ++s) {
      if (sink_received_[s] < expected) {
        detail += format("; sink '%s' received %llu of %llu",
                         desc_->sinks()[s].name.c_str(),
                         static_cast<unsigned long long>(sink_received_[s]),
                         static_cast<unsigned long long>(expected));
      }
    }
    d.detail = std::move(detail);

    if (out.idle) {
      // The historical stall wording, byte-for-byte (pinned by the PR 3
      // comparison wrappers); guard stops are new and render the summary.
      std::string report = "simulation stalled:";
      report += format(" sources finished %llu/%zu;",
                       static_cast<unsigned long long>(sources_finished_),
                       desc_->sources().size());
      if (writer_blocked)
        report += " writers blocked on channels: " + blocked_channels + ";";
      for (std::size_t s = 0; s < sink_received_.size(); ++s) {
        if (sink_received_[s] < expected) {
          report += format(" sink '%s' received %llu of %llu;",
                           desc_->sinks()[s].name.c_str(),
                           static_cast<unsigned long long>(sink_received_[s]),
                           static_cast<unsigned long long>(expected));
        }
      }
      const auto& blocked = d.parked_processes;
      if (!blocked.empty()) {
        report += " blocked processes:";
        for (const auto& b : blocked) report += " " + b;
      }
      out.stall_report = report;
    } else {
      out.stall_report = d.summary();
    }
  }
  return out;
}

ChannelRt* ModelRuntime::channel(ChannelId ch) {
  if (ch < 0 || ch >= static_cast<ChannelId>(channels_.size()))
    throw DescriptionError("ModelRuntime::channel: bad id");
  return channels_[ch].get();
}

std::uint64_t ModelRuntime::relation_events() const {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) {
    if (!ch) continue;
    if (ch->rendezvous) {
      n += ch->rendezvous->transfers();
    } else {
      n += ch->fifo->writes_completed() + ch->fifo->reads_completed();
    }
  }
  return n;
}

std::uint64_t ModelRuntime::sink_received(SinkId s) const {
  if (s < 0 || s >= static_cast<SinkId>(sink_received_.size()))
    throw DescriptionError("sink_received: bad id");
  return sink_received_[s];
}

bool ModelRuntime::function_skipped(FunctionId f) const {
  if (f < 0 || f >= static_cast<FunctionId>(skip_.size()))
    throw DescriptionError("function_skipped: bad id");
  return skip_[f];
}

}  // namespace maxev::model
