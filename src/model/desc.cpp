#include "model/desc.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace maxev::model {

Duration ResourceDesc::duration_for(std::int64_t ops) const {
  if (ops <= 0) return Duration::ps(0);
  const double ps = static_cast<double>(ops) / ops_per_second * 1e12;
  return Duration::ps(static_cast<std::int64_t>(std::llround(ps)));
}

ResourceId ArchitectureDesc::add_resource(std::string name,
                                          ResourcePolicy policy,
                                          double ops_per_second) {
  if (!(ops_per_second > 0.0))
    throw DescriptionError("resource '" + name + "': rate must be positive");
  validated_ = false;
  resources_.push_back({std::move(name), policy, ops_per_second});
  return static_cast<ResourceId>(resources_.size()) - 1;
}

ChannelId ArchitectureDesc::add_rendezvous(std::string name) {
  validated_ = false;
  channels_.push_back({std::move(name), ChannelKind::kRendezvous, 0});
  return static_cast<ChannelId>(channels_.size()) - 1;
}

ChannelId ArchitectureDesc::add_fifo(std::string name, std::size_t capacity) {
  if (capacity == 0)
    throw DescriptionError("fifo '" + name + "': capacity must be >= 1");
  validated_ = false;
  channels_.push_back({std::move(name), ChannelKind::kFifo, capacity});
  return static_cast<ChannelId>(channels_.size()) - 1;
}

FunctionId ArchitectureDesc::add_function(std::string name,
                                          ResourceId resource) {
  if (resource < 0 || resource >= static_cast<ResourceId>(resources_.size()))
    throw DescriptionError("function '" + name + "': unknown resource");
  validated_ = false;
  functions_.push_back({std::move(name), resource, {}});
  return static_cast<FunctionId>(functions_.size()) - 1;
}

void ArchitectureDesc::check_channel(ChannelId ch, const char* what) const {
  if (ch < 0 || ch >= static_cast<ChannelId>(channels_.size()))
    throw DescriptionError(std::string(what) + ": unknown channel id " +
                           std::to_string(ch));
}

void ArchitectureDesc::check_function(FunctionId f, const char* what) const {
  if (f < 0 || f >= static_cast<FunctionId>(functions_.size()))
    throw DescriptionError(std::string(what) + ": unknown function id " +
                           std::to_string(f));
}

void ArchitectureDesc::fn_read(FunctionId f, ChannelId ch) {
  check_function(f, "fn_read");
  check_channel(ch, "fn_read");
  validated_ = false;
  functions_[f].body.push_back({StatementKind::kRead, ch, nullptr, {}});
}

void ArchitectureDesc::fn_execute(FunctionId f, LoadFn load) {
  check_function(f, "fn_execute");
  if (!load) throw DescriptionError("fn_execute: null load expression");
  validated_ = false;
  std::size_t execs = 0;
  for (const auto& s : functions_[f].body)
    if (s.kind == StatementKind::kExecute) ++execs;
  std::string label = functions_[f].name + ".e" + std::to_string(execs);
  functions_[f].body.push_back(
      {StatementKind::kExecute, kInvalidId, std::move(load), std::move(label)});
}

void ArchitectureDesc::fn_write(FunctionId f, ChannelId ch) {
  check_function(f, "fn_write");
  check_channel(ch, "fn_write");
  validated_ = false;
  functions_[f].body.push_back({StatementKind::kWrite, ch, nullptr, {}});
}

SourceId ArchitectureDesc::add_source(
    std::string name, ChannelId ch, std::uint64_t count,
    std::function<TimePoint(std::uint64_t)> earliest,
    std::function<TokenAttrs(std::uint64_t)> attrs,
    std::function<Duration(std::uint64_t)> gap) {
  check_channel(ch, "add_source");
  if (count == 0)
    throw DescriptionError("source '" + name + "': count must be >= 1");
  if (!earliest)
    throw DescriptionError("source '" + name + "': earliest() is required");
  if (!attrs)
    throw DescriptionError("source '" + name + "': attrs() is required");
  validated_ = false;
  sources_.push_back({std::move(name), ch, count, std::move(earliest),
                      std::move(gap), std::move(attrs)});
  return static_cast<SourceId>(sources_.size()) - 1;
}

SinkId ArchitectureDesc::add_sink(
    std::string name, ChannelId ch,
    std::function<Duration(std::uint64_t)> consume_delay) {
  check_channel(ch, "add_sink");
  validated_ = false;
  sinks_.push_back({std::move(name), ch, std::move(consume_delay)});
  return static_cast<SinkId>(sinks_.size()) - 1;
}

void ArchitectureDesc::validate() {
  if (validated_) return;

  endpoints_.assign(channels_.size(), ChannelEndpoints{});

  auto set_writer = [&](ChannelId ch, FunctionId f, std::int32_t stmt,
                        SourceId src) {
    ChannelEndpoints& ep = endpoints_[ch];
    if (ep.writer_fn != kInvalidId || ep.writer_source != kInvalidId)
      throw DescriptionError("channel '" + channels_[ch].name +
                             "': more than one writer");
    ep.writer_fn = f;
    ep.writer_stmt = stmt;
    ep.writer_source = src;
  };
  auto set_reader = [&](ChannelId ch, FunctionId f, std::int32_t stmt,
                        SinkId snk) {
    ChannelEndpoints& ep = endpoints_[ch];
    if (ep.reader_fn != kInvalidId || ep.reader_sink != kInvalidId)
      throw DescriptionError("channel '" + channels_[ch].name +
                             "': more than one reader");
    ep.reader_fn = f;
    ep.reader_stmt = stmt;
    ep.reader_sink = snk;
  };

  for (FunctionId f = 0; f < static_cast<FunctionId>(functions_.size()); ++f) {
    const FunctionDesc& fn = functions_[f];
    if (fn.body.empty())
      throw DescriptionError("function '" + fn.name + "': empty body");
    bool touches_channel = false;
    for (std::int32_t i = 0; i < static_cast<std::int32_t>(fn.body.size());
         ++i) {
      const StatementDesc& s = fn.body[i];
      switch (s.kind) {
        case StatementKind::kRead:
          set_reader(s.channel, f, i, kInvalidId);
          touches_channel = true;
          break;
        case StatementKind::kWrite:
          set_writer(s.channel, f, i, kInvalidId);
          touches_channel = true;
          break;
        case StatementKind::kExecute:
          break;
      }
    }
    if (!touches_channel)
      throw DescriptionError("function '" + fn.name +
                             "': no read or write statement — the iteration "
                             "index is unobservable");
  }

  for (SourceId s = 0; s < static_cast<SourceId>(sources_.size()); ++s)
    set_writer(sources_[s].channel, kInvalidId, -1, s);
  for (SinkId s = 0; s < static_cast<SinkId>(sinks_.size()); ++s)
    set_reader(sinks_[s].channel, kInvalidId, -1, s);

  for (ChannelId c = 0; c < static_cast<ChannelId>(channels_.size()); ++c) {
    const ChannelEndpoints& ep = endpoints_[c];
    if (ep.writer_fn == kInvalidId && ep.writer_source == kInvalidId)
      throw DescriptionError("channel '" + channels_[c].name + "': no writer");
    if (ep.reader_fn == kInvalidId && ep.reader_sink == kInvalidId)
      throw DescriptionError("channel '" + channels_[c].name + "': no reader");
  }

  // Per-resource static schedules in mapping (insertion) order.
  schedules_.assign(resources_.size(), {});
  schedule_pos_.assign(functions_.size(), 0);
  for (FunctionId f = 0; f < static_cast<FunctionId>(functions_.size()); ++f) {
    schedule_pos_[f] = schedules_[functions_[f].resource].size();
    schedules_[functions_[f].resource].push_back(f);
  }

  validated_ = true;
}

const ChannelEndpoints& ArchitectureDesc::endpoints(ChannelId ch) const {
  if (!validated_)
    throw DescriptionError("ArchitectureDesc: validate() before endpoints()");
  check_channel(ch, "endpoints");
  return endpoints_[ch];
}

const std::vector<FunctionId>& ArchitectureDesc::schedule(ResourceId r) const {
  if (!validated_)
    throw DescriptionError("ArchitectureDesc: validate() before schedule()");
  if (r < 0 || r >= static_cast<ResourceId>(resources_.size()))
    throw DescriptionError("schedule: unknown resource");
  return schedules_[r];
}

std::size_t ArchitectureDesc::schedule_position(FunctionId f) const {
  if (!validated_)
    throw DescriptionError(
        "ArchitectureDesc: validate() before schedule_position()");
  check_function(f, "schedule_position");
  return schedule_pos_[f];
}

std::uint64_t ArchitectureDesc::total_source_tokens() const {
  std::uint64_t total = 0;
  for (const auto& s : sources_) total += s.count;
  return total;
}

std::uint64_t ArchitectureDesc::max_source_tokens() const {
  std::uint64_t max = 0;
  for (const auto& s : sources_) max = std::max(max, s.count);
  return max;
}

namespace {

/// FNV-1a accumulation; the structural surface hashes as a flat byte/string
/// stream so the result is stable across table reorderings of the *code*
/// (it depends only on the description's declarative content).
struct StructuralHasher {
  std::size_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 1099511628211ull;
    }
  }
  void str(const std::string& s) {
    const std::size_t n = s.size();
    bytes(&n, sizeof(n));
    bytes(s.data(), s.size());
  }
  template <typename T>
  void pod(T v) {
    bytes(&v, sizeof(v));
  }
};

}  // namespace

std::size_t structural_hash(const ArchitectureDesc& d) {
  StructuralHasher hh;
  hh.pod(d.resources().size());
  for (const ResourceDesc& r : d.resources()) {
    hh.str(r.name);
    hh.pod(r.policy);
    hh.pod(r.ops_per_second);
  }
  hh.pod(d.channels().size());
  for (const ChannelDesc& c : d.channels()) {
    hh.str(c.name);
    hh.pod(c.kind);
    hh.pod(c.capacity);
  }
  hh.pod(d.functions().size());
  for (const FunctionDesc& f : d.functions()) {
    hh.str(f.name);
    hh.pod(f.resource);
    hh.pod(f.body.size());
    for (const StatementDesc& s : f.body) {
      hh.pod(s.kind);
      hh.pod(s.channel);
      hh.str(s.label);
    }
  }
  hh.pod(d.sources().size());
  for (const SourceDesc& s : d.sources()) {
    hh.str(s.name);
    hh.pod(s.channel);
    hh.pod(s.count);
  }
  hh.pod(d.sinks().size());
  for (const SinkDesc& s : d.sinks()) {
    hh.str(s.name);
    hh.pod(s.channel);
    // consume_delay is opaque, but its *presence* is structural: a null
    // delay means "sink always ready", which changes the derived TDG shape
    // (no external actual-completion node).
    hh.pod(static_cast<bool>(s.consume_delay));
  }
  return hh.h;
}

bool structurally_equal(const ArchitectureDesc& a, const ArchitectureDesc& b) {
  if (a.resources().size() != b.resources().size() ||
      a.channels().size() != b.channels().size() ||
      a.functions().size() != b.functions().size() ||
      a.sources().size() != b.sources().size() ||
      a.sinks().size() != b.sinks().size())
    return false;
  for (std::size_t i = 0; i < a.resources().size(); ++i) {
    const ResourceDesc& x = a.resources()[i];
    const ResourceDesc& y = b.resources()[i];
    if (x.name != y.name || x.policy != y.policy ||
        x.ops_per_second != y.ops_per_second)
      return false;
  }
  for (std::size_t i = 0; i < a.channels().size(); ++i) {
    const ChannelDesc& x = a.channels()[i];
    const ChannelDesc& y = b.channels()[i];
    if (x.name != y.name || x.kind != y.kind || x.capacity != y.capacity)
      return false;
  }
  for (std::size_t i = 0; i < a.functions().size(); ++i) {
    const FunctionDesc& x = a.functions()[i];
    const FunctionDesc& y = b.functions()[i];
    if (x.name != y.name || x.resource != y.resource ||
        x.body.size() != y.body.size())
      return false;
    for (std::size_t j = 0; j < x.body.size(); ++j) {
      const StatementDesc& s = x.body[j];
      const StatementDesc& t = y.body[j];
      if (s.kind != t.kind || s.channel != t.channel || s.label != t.label)
        return false;
    }
  }
  for (std::size_t i = 0; i < a.sources().size(); ++i) {
    const SourceDesc& x = a.sources()[i];
    const SourceDesc& y = b.sources()[i];
    if (x.name != y.name || x.channel != y.channel || x.count != y.count)
      return false;
  }
  for (std::size_t i = 0; i < a.sinks().size(); ++i) {
    const SinkDesc& x = a.sinks()[i];
    const SinkDesc& y = b.sinks()[i];
    if (x.name != y.name || x.channel != y.channel ||
        static_cast<bool>(x.consume_delay) != static_cast<bool>(y.consume_delay))
      return false;
  }
  return true;
}

DescPtr share(ArchitectureDesc desc) {
  desc.validate();
  return std::make_shared<const ArchitectureDesc>(std::move(desc));
}

}  // namespace maxev::model
