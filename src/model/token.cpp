#include "model/token.hpp"

#include "util/strings.hpp"

namespace maxev::model {

std::string TokenAttrs::to_string() const {
  return format("{size=%lld params=[%g,%g,%g,%g]}",
                static_cast<long long>(size), params[0], params[1], params[2],
                params[3]);
}

}  // namespace maxev::model
