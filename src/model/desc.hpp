#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/load.hpp"
#include "model/token.hpp"
#include "util/time.hpp"

/// \file desc.hpp
/// Declarative architecture description: application functions (cyclic
/// read/execute/write statement lists), relations (channels), platform
/// resources, the mapping layer, environment sources and sinks.
///
/// This single description is the common root of the two execution paths
/// the paper compares:
///  * the event-driven baseline (model::ModelRuntime simulates every
///    function as a kernel process), and
///  * the equivalent model (tdg::derive_tdg compiles the description into a
///    temporal dependency graph executed by ComputeInstant()).
///
/// Scheduling model (paper Section I: "statically scheduled architectures
/// with no pre-emption"): functions mapped to a sequential resource execute
/// in a fixed cyclic order — the order in which they were added. The first
/// statement of f_i's iteration k is gated by the completion of f_{i-1}'s
/// iteration k (f_{i-1} wrapping to the last function's iteration k-1).

namespace maxev::model {

using ChannelId = std::int32_t;
using FunctionId = std::int32_t;
using ResourceId = std::int32_t;
using SourceId = std::int32_t;
using SinkId = std::int32_t;

inline constexpr std::int32_t kInvalidId = -1;

enum class ChannelKind : std::uint8_t {
  kRendezvous,  ///< blocking, unbuffered; the paper's protocol
  kFifo,        ///< bounded FIFO
};

enum class ResourcePolicy : std::uint8_t {
  kSequentialCyclic,  ///< one function at a time, fixed cyclic schedule (DSP)
  kConcurrent,        ///< dedicated hardware: every function has its own unit
};

enum class StatementKind : std::uint8_t { kRead, kExecute, kWrite };

struct ChannelDesc {
  std::string name;
  ChannelKind kind = ChannelKind::kRendezvous;
  std::size_t capacity = 0;  ///< FIFO only
};

struct ResourceDesc {
  std::string name;
  ResourcePolicy policy = ResourcePolicy::kSequentialCyclic;
  double ops_per_second = 1e9;

  /// Simulated execution time of \p ops operations on this resource.
  /// Shared by the baseline and the dynamic computation path so both see
  /// bit-identical durations.
  [[nodiscard]] Duration duration_for(std::int64_t ops) const;
};

struct StatementDesc {
  StatementKind kind = StatementKind::kExecute;
  ChannelId channel = kInvalidId;  ///< read/write
  LoadFn load;                     ///< execute
  std::string label;               ///< execute: unique "<fn>.e<i>" label
};

struct FunctionDesc {
  std::string name;
  ResourceId resource = kInvalidId;
  std::vector<StatementDesc> body;  ///< repeated forever
};

struct SourceDesc {
  std::string name;
  ChannelId channel = kInvalidId;
  std::uint64_t count = 0;  ///< number of tokens produced
  /// Earliest absolute offer instant of token k (e.g. k * period).
  std::function<TimePoint(std::uint64_t)> earliest;
  /// Extra gap after the previous offer completed (burst shaping).
  std::function<Duration(std::uint64_t)> gap;
  /// Attributes of token k.
  std::function<TokenAttrs(std::uint64_t)> attrs;
};

struct SinkDesc {
  std::string name;
  ChannelId channel = kInvalidId;
  /// Delay before the sink becomes ready for token k (back-pressure
  /// modelling); null = always ready.
  std::function<Duration(std::uint64_t)> consume_delay;
};

/// Resolved endpoints of a channel (filled in by validate()).
struct ChannelEndpoints {
  FunctionId writer_fn = kInvalidId;
  std::int32_t writer_stmt = -1;
  SourceId writer_source = kInvalidId;
  FunctionId reader_fn = kInvalidId;
  std::int32_t reader_stmt = -1;
  SinkId reader_sink = kInvalidId;

  [[nodiscard]] bool written_by_source() const { return writer_source != kInvalidId; }
  [[nodiscard]] bool read_by_sink() const { return reader_sink != kInvalidId; }
};

/// The complete architecture description. Build with the fluent add_*/fn_*
/// API, then call validate() once; the runtime and the TDG derivation both
/// require a validated description.
class ArchitectureDesc {
 public:
  /// \name Construction
  /// @{
  ResourceId add_resource(std::string name, ResourcePolicy policy,
                          double ops_per_second);
  ChannelId add_rendezvous(std::string name);
  ChannelId add_fifo(std::string name, std::size_t capacity);
  /// Mapping order on a sequential resource is the order of add_function
  /// calls — this *is* the static cyclic schedule.
  FunctionId add_function(std::string name, ResourceId resource);
  void fn_read(FunctionId f, ChannelId ch);
  void fn_execute(FunctionId f, LoadFn load);
  void fn_write(FunctionId f, ChannelId ch);
  SourceId add_source(std::string name, ChannelId ch, std::uint64_t count,
                      std::function<TimePoint(std::uint64_t)> earliest,
                      std::function<TokenAttrs(std::uint64_t)> attrs,
                      std::function<Duration(std::uint64_t)> gap = nullptr);
  SinkId add_sink(std::string name, ChannelId ch,
                  std::function<Duration(std::uint64_t)> consume_delay = nullptr);
  /// @}

  /// Structural validation; resolves channel endpoints and the per-resource
  /// schedules. Throws maxev::DescriptionError with a precise message on the
  /// first violation. Idempotent.
  void validate();
  [[nodiscard]] bool validated() const { return validated_; }

  /// \name Accessors (validated description)
  /// @{
  [[nodiscard]] const std::vector<ChannelDesc>& channels() const { return channels_; }
  [[nodiscard]] const std::vector<FunctionDesc>& functions() const { return functions_; }
  [[nodiscard]] const std::vector<ResourceDesc>& resources() const { return resources_; }
  [[nodiscard]] const std::vector<SourceDesc>& sources() const { return sources_; }
  [[nodiscard]] const std::vector<SinkDesc>& sinks() const { return sinks_; }
  [[nodiscard]] const ChannelEndpoints& endpoints(ChannelId ch) const;
  /// Functions mapped to a resource, in schedule order.
  [[nodiscard]] const std::vector<FunctionId>& schedule(ResourceId r) const;
  /// Schedule position of a function on its resource.
  [[nodiscard]] std::size_t schedule_position(FunctionId f) const;
  /// Total tokens offered by all sources.
  [[nodiscard]] std::uint64_t total_source_tokens() const;
  /// Largest per-source token count — the expected iteration count of any
  /// single relation (observation-sink capacity hint).
  [[nodiscard]] std::uint64_t max_source_tokens() const;
  /// @}

 private:
  void check_channel(ChannelId ch, const char* what) const;
  void check_function(FunctionId f, const char* what) const;

  std::vector<ChannelDesc> channels_;
  std::vector<FunctionDesc> functions_;
  std::vector<ResourceDesc> resources_;
  std::vector<SourceDesc> sources_;
  std::vector<SinkDesc> sinks_;

  // Filled by validate():
  std::vector<ChannelEndpoints> endpoints_;
  std::vector<std::vector<FunctionId>> schedules_;  // per resource
  std::vector<std::size_t> schedule_pos_;           // per function
  bool validated_ = false;
};

/// \name Structural equality contract
/// The *structural surface* of a description is everything declarative and
/// comparable: table sizes and order, entity names, resource policies and
/// rates, channel kinds and capacities, statement kinds / channel targets /
/// execute labels, and source token counts. The opaque behavioural members
/// — execute loads, source earliest/gap/attrs, sink consume delays, all
/// `std::function`s — are NOT part of it (they cannot be compared).
///
/// Consequence for batching (docs/DESIGN.md §10): structural equality is a
/// *necessary* condition for two instances to share one compiled
/// tdg::Program, never a sufficient one. The study layer supplies the
/// missing behavioural guarantee by shared ownership — instances holding
/// the same model::DescPtr provably evaluate the same workload functions —
/// so study::compose() groups instances by (DescPtr identity, abstraction
/// group), with structural_hash() as the bucketing key and
/// structurally_equal() as the validator's deep cross-check. Two
/// equal-but-distinct descriptions stay in different sub-batches.
/// @{

/// Order-independent-free hash of the structural surface (two structurally
/// equal descriptions hash equal; collisions possible, resolve with
/// structurally_equal()).
[[nodiscard]] std::size_t structural_hash(const ArchitectureDesc& d);

/// Deep comparison of the structural surface. Ignores the opaque
/// behavioural std::function members (see the contract above).
[[nodiscard]] bool structurally_equal(const ArchitectureDesc& a,
                                      const ArchitectureDesc& b);
/// @}

/// Shared-ownership handle to a validated architecture description. Model
/// runtimes hold one of these for their whole lifetime, so one description
/// can be shared between models (and between the instances of a
/// multi-instance study) without lifetime footguns.
using DescPtr = std::shared_ptr<const ArchitectureDesc>;

/// Move a description into shared ownership (validating it on the way when
/// needed). The natural way to build a study::Scenario.
[[nodiscard]] DescPtr share(ArchitectureDesc desc);

}  // namespace maxev::model
