#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "model/token.hpp"

/// \file load.hpp
/// Computation-load expressions: how many operations an execute statement
/// costs as a function of the token attributes and the iteration index.
/// The same expression object is evaluated by the event-driven baseline
/// (with the live token) and by the dynamic computation method (with the
/// statically known provenance attributes), so both paths see identical
/// durations by construction.

namespace maxev::model {

/// Operations demanded by an execute statement for iteration k.
using LoadFn = std::function<std::int64_t(const TokenAttrs&, std::uint64_t k)>;

/// The factory-built loads below wrap *named* functor types so the serve
/// wire format (serve/wire.hpp) can recover their parameters through
/// `LoadFn::target<T>()` and serialize them; hand-written lambdas remain
/// opaque and serialize as such.

struct ConstantOpsFn {
  std::int64_t ops;
  std::int64_t operator()(const TokenAttrs&, std::uint64_t) const {
    return ops;
  }
};

struct LinearOpsFn {
  std::int64_t base;
  std::int64_t per_unit;
  std::int64_t operator()(const TokenAttrs& a, std::uint64_t) const;
};

struct ParamOpsFn {
  std::int64_t base;
  double scale;
  std::size_t param_index;
  std::int64_t operator()(const TokenAttrs& a, std::uint64_t) const;
};

struct CyclicOpsFn {
  std::vector<std::int64_t> table;
  std::int64_t operator()(const TokenAttrs&, std::uint64_t k) const {
    return table[k % table.size()];
  }
};

/// A constant number of operations.
[[nodiscard]] LoadFn constant_ops(std::int64_t ops);

/// base + per_unit * attrs.size operations (the classic data-size-dependent
/// load of the paper's didactic example).
[[nodiscard]] LoadFn linear_ops(std::int64_t base, std::int64_t per_unit);

/// Affine form over one of the attrs.params entries:
/// base + scale * attrs.params[index].
[[nodiscard]] LoadFn param_ops(std::int64_t base, double scale,
                               std::size_t param_index);

/// Cycle through a fixed table by iteration index: ops = table[k % size].
[[nodiscard]] LoadFn cyclic_ops(std::vector<std::int64_t> table);

}  // namespace maxev::model
