#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/desc.hpp"
#include "model/gates.hpp"
#include "model/token.hpp"
#include "sim/channel.hpp"
#include "sim/kernel.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"

/// \file baseline.hpp
/// Event-driven execution of an architecture description.
///
/// ModelRuntime simulates every (non-skipped) application function as a
/// kernel process that interprets its statement list, with every channel
/// synchronization going through the simulation kernel. With an empty skip
/// set this *is* the paper's baseline model ("obtained by exhibiting all
/// relations among application functions"). The equivalent model
/// (core/equivalent_model.hpp) reuses this runtime with the abstracted
/// function group skipped: internal channels are never constructed and the
/// group's behaviour is reproduced by dynamically computed instants.

namespace maxev::model {

/// Runtime instance of a channel (one of the two kinds).
struct ChannelRt {
  ChannelKind kind = ChannelKind::kRendezvous;
  std::unique_ptr<sim::Rendezvous<Token>> rendezvous;
  std::unique_ptr<sim::Fifo<Token>> fifo;
};

class ModelRuntime {
 public:
  /// \param desc shared ownership of the (validated) description.
  /// \param skip functions to exclude from simulation (abstraction group);
  ///        empty = full baseline. Channels with both endpoints in the skip
  ///        set are not constructed at all — their events are "saved".
  /// \param observe record instant and usage traces (accuracy-check mode).
  ///        Disable for pure simulation-speed measurements.
  explicit ModelRuntime(DescPtr desc, std::vector<bool> skip = {},
                        bool observe = true);
  /// Convenience overload for single-model runs: copies the description
  /// into shared ownership, so temporaries are safe (the historical
  /// dangling-reference hazard — and its deleted-rvalue-overload guard —
  /// are gone). Deliberately kept: tests, benches and examples build
  /// descriptions ad hoc and run one model; prefer the DescPtr overload
  /// when one description feeds several models (as the study layer does).
  explicit ModelRuntime(const ArchitectureDesc& desc,
                        std::vector<bool> skip = {}, bool observe = true);

  ModelRuntime(const ModelRuntime&) = delete;
  ModelRuntime& operator=(const ModelRuntime&) = delete;

  /// Outcome of a run. `stop` distinguishes what the historical bool pair
  /// conflated: a drained queue (kIdle), a horizon cut (kTimeLimit), and
  /// the guard stops (budget/deadline/cancellation, sim::RunGuards). On
  /// any incomplete idle or guard-stopped run, `diagnostics` carries the
  /// structured picture (docs/DESIGN.md §12) and `stall_report` its
  /// human rendering.
  struct Outcome {
    bool idle = false;       ///< event queue drained
    bool completed = false;  ///< all tokens flowed through to the sinks
    std::string stall_report;  ///< non-empty when stalled or guard-stopped
    sim::StopReason stop = sim::StopReason::kIdle;  ///< why run() returned
    sim::RunDiagnostics diagnostics;  ///< filled when !completed (not horizon)
  };

  /// Execute until the event queue drains (or the horizon passes).
  Outcome run(std::optional<TimePoint> until = std::nullopt);

  [[nodiscard]] sim::Kernel& kernel() { return kernel_; }
  [[nodiscard]] const sim::KernelStats& kernel_stats() const {
    return kernel_.stats();
  }

  /// Runtime channel object; nullptr when the channel is internal to the
  /// skipped group (it does not exist at simulation level).
  [[nodiscard]] ChannelRt* channel(ChannelId ch);

  /// Total completed relation events across constructed channels
  /// (rendezvous transfers; FIFO writes + reads). This is the paper's
  /// event-ratio numerator/denominator.
  [[nodiscard]] std::uint64_t relation_events() const;

  [[nodiscard]] const trace::InstantTraceSet& instants() const { return instants_; }
  [[nodiscard]] trace::InstantTraceSet& mutable_instants() { return instants_; }
  [[nodiscard]] const trace::UsageTraceSet& usage() const { return usage_; }
  [[nodiscard]] trace::UsageTraceSet& mutable_usage() { return usage_; }

  /// \name Regime-change notification
  /// Feeders that alter *future* workload behaviour mid-run — a serve
  /// streaming session appending tokens, a parameter sweep rebinding loads —
  /// call notify_regime_change() so observers relying on observed regularity
  /// can discard it. The adaptive backend (study/adaptive.hpp) registers a
  /// listener to reset its periodicity detector (docs/DESIGN.md §15); with
  /// no listener the notification is free.
  /// @{
  void set_regime_listener(std::function<void()> fn) {
    regime_listener_ = std::move(fn);
  }
  void notify_regime_change() {
    if (regime_listener_) regime_listener_();
  }
  /// @}

  [[nodiscard]] TimePoint end_time() const { return kernel_.now(); }
  [[nodiscard]] const ArchitectureDesc& desc() const { return *desc_; }
  [[nodiscard]] const DescPtr& desc_ptr() const { return desc_; }
  [[nodiscard]] std::uint64_t sink_received(SinkId s) const;
  [[nodiscard]] bool function_skipped(FunctionId f) const;

 private:
  sim::Process function_proc(FunctionId f);
  sim::Process source_proc(SourceId s);
  sim::Process sink_proc(SinkId s);

  /// True when f's schedule-predecessor gate is implied by f's first
  /// statement (a read of the predecessor's final write over a channel),
  /// in which case an explicit gate would deadlock.
  [[nodiscard]] bool gate_implied_by_first_read(FunctionId f,
                                                FunctionId pred) const;

  DescPtr desc_;
  std::vector<bool> skip_;
  bool observe_;
  sim::Kernel kernel_;
  std::vector<std::unique_ptr<ChannelRt>> channels_;
  std::vector<std::unique_ptr<CompletionCounter>> counters_;  // per function
  std::vector<std::uint64_t> sink_received_;
  std::uint64_t sources_finished_ = 0;
  trace::InstantTraceSet instants_;
  trace::UsageTraceSet usage_;
  std::vector<trace::UsageTrace*> usage_by_resource_;  // hot-path cache
  /// Interned busy-interval label ids, per function, in execute-statement
  /// order (filled when observing; see function_proc).
  std::vector<std::vector<std::int32_t>> exec_labels_;
  std::function<void()> regime_listener_;
};

}  // namespace maxev::model
