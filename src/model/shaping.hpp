#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/token.hpp"
#include "util/time.hpp"

/// \file shaping.hpp
/// Introspectable source/sink shaping functors: named callable types for
/// the behavioural std::functions of a model::ArchitectureDesc (earliest,
/// gap, attrs, consume_delay). Wrapping a behaviour in one of these instead
/// of a hand-written lambda buys two things downstream:
///  * the serve wire format (serve/wire.hpp) recovers the parameters via
///    std::function::target<T>() and serializes the behaviour concretely
///    instead of as an opaque stub;
///  * the adaptive backend (study/adaptive.hpp) can *certify* that the
///    behaviour continues a detected period P past the simulated frontier
///    (docs/DESIGN.md §15) — an opaque lambda forces it to keep simulating.
///
/// Historically these types lived in serve/wire.hpp; serve keeps `using`
/// aliases, so `serve::TableTimeFn` remains the same type (target<T>()
/// introspection is unaffected by the move). Tables are shared immutably:
/// copying the std::function copies a pointer, not the table.

namespace maxev::model {

/// earliest(k) from an explicit per-token table.
struct TableTimeFn {
  std::shared_ptr<const std::vector<std::int64_t>> values_ps;
  TimePoint operator()(std::uint64_t k) const {
    return TimePoint::at_ps(values_ps->at(k));
  }
};

/// earliest(k) = offset + k * period.
struct PeriodicTimeFn {
  std::int64_t offset_ps = 0;
  std::int64_t period_ps = 0;
  TimePoint operator()(std::uint64_t k) const {
    return TimePoint::at_ps(offset_ps +
                            period_ps * static_cast<std::int64_t>(k));
  }
};

/// earliest(k) on a repeating intra-cycle grid: token k of cycle c = k/n
/// releases at c*period + offsets[k%n] (n = offsets.size()). The LTE
/// subframe grid — 14 symbols per 1 ms subframe — is the motivating case:
/// exactly periodic with vector period n, which PeriodicTimeFn (n = 1)
/// cannot express.
struct CyclicTimeFn {
  std::int64_t period_ps = 0;  ///< cycle length
  std::shared_ptr<const std::vector<std::int64_t>> offsets_ps;
  TimePoint operator()(std::uint64_t k) const {
    const auto n = static_cast<std::uint64_t>(offsets_ps->size());
    return TimePoint::at_ps(
        period_ps * static_cast<std::int64_t>(k / n) +
        (*offsets_ps)[static_cast<std::size_t>(k % n)]);
  }
};

/// Constant gap / consume delay.
struct ConstantDurationFn {
  std::int64_t ps = 0;
  Duration operator()(std::uint64_t) const { return Duration::ps(ps); }
};

/// Per-token gap / consume delay table.
struct TableDurationFn {
  std::shared_ptr<const std::vector<std::int64_t>> values_ps;
  Duration operator()(std::uint64_t k) const {
    return Duration::ps(values_ps->at(k));
  }
};

/// Gap / consume delay cycling through a fixed table by k.
struct CyclicDurationFn {
  std::shared_ptr<const std::vector<std::int64_t>> values_ps;
  Duration operator()(std::uint64_t k) const {
    return Duration::ps(
        (*values_ps)[static_cast<std::size_t>(k % values_ps->size())]);
  }
};

/// Every token carries the same attributes.
struct ConstantAttrsFn {
  model::TokenAttrs attrs;
  model::TokenAttrs operator()(std::uint64_t) const { return attrs; }
};

/// Per-token attribute table.
struct TableAttrsFn {
  std::shared_ptr<const std::vector<model::TokenAttrs>> table;
  model::TokenAttrs operator()(std::uint64_t k) const {
    return table->at(k);
  }
};

/// Attributes cycling through a fixed table by k (the LTE symbol pattern:
/// attrs depend only on the symbol index within the subframe).
struct CyclicAttrsFn {
  std::shared_ptr<const std::vector<model::TokenAttrs>> table;
  model::TokenAttrs operator()(std::uint64_t k) const {
    return (*table)[static_cast<std::size_t>(k % table->size())];
  }
};

/// A load that is a pure function of the token attributes — k-independent
/// by construction, carried as a plain function pointer. Classified as an
/// opaque closure by the opcode layer (it stays a call), but the adaptive
/// certifier can see through it: with P-periodic attributes the load is
/// P-periodic too.
struct AttrsPureFn {
  std::int64_t (*fn)(const model::TokenAttrs&) = nullptr;
  std::int64_t operator()(const model::TokenAttrs& a, std::uint64_t) const {
    return fn(a);
  }
};

}  // namespace maxev::model
