#include "model/load.hpp"

#include <cmath>

#include "util/error.hpp"

namespace maxev::model {

std::int64_t LinearOpsFn::operator()(const TokenAttrs& a,
                                     std::uint64_t) const {
  const std::int64_t ops = base + per_unit * a.size;
  return ops < 0 ? std::int64_t{0} : ops;
}

std::int64_t ParamOpsFn::operator()(const TokenAttrs& a, std::uint64_t) const {
  const auto ops =
      base + static_cast<std::int64_t>(std::llround(scale * a.params[param_index]));
  return ops < 0 ? std::int64_t{0} : ops;
}

LoadFn constant_ops(std::int64_t ops) {
  if (ops < 0) throw DescriptionError("constant_ops: negative ops");
  return ConstantOpsFn{ops};
}

LoadFn linear_ops(std::int64_t base, std::int64_t per_unit) {
  if (base < 0) throw DescriptionError("linear_ops: negative base");
  return LinearOpsFn{base, per_unit};
}

LoadFn param_ops(std::int64_t base, double scale, std::size_t param_index) {
  if (param_index >= std::tuple_size_v<decltype(TokenAttrs::params)>)
    throw DescriptionError("param_ops: param index out of range");
  return ParamOpsFn{base, scale, param_index};
}

LoadFn cyclic_ops(std::vector<std::int64_t> table) {
  if (table.empty()) throw DescriptionError("cyclic_ops: empty table");
  for (auto v : table)
    if (v < 0) throw DescriptionError("cyclic_ops: negative ops");
  return CyclicOpsFn{std::move(table)};
}

}  // namespace maxev::model
