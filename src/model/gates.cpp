#include "model/gates.hpp"

// Header-only definitions; this translation unit anchors the module.
namespace maxev::model {}
