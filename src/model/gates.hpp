#pragma once

#include <cstdint>
#include <string>

#include "sim/event.hpp"
#include "sim/kernel.hpp"

/// \file gates.hpp
/// Static-schedule gating for sequential resources.
///
/// A sequential resource runs its mapped functions in a fixed cyclic order
/// with no preemption (the paper's assumption). Each function publishes an
/// iteration-completion counter; its schedule successor waits on it before
/// starting an iteration. See model/desc.hpp for the exact gating rule and
/// model/baseline.cpp for when the gate is implied by a rendezvous and must
/// be omitted to avoid a false cycle.

namespace maxev::model {

/// Monotone counter of completed iterations with a wake-up event.
class CompletionCounter {
 public:
  CompletionCounter(sim::Kernel& kernel, std::string name)
      : event_(kernel, std::move(name)) {}

  /// Mark one more iteration complete and wake waiters.
  void mark() {
    ++count_;
    event_.notify();
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] sim::Event& event() { return event_; }

 private:
  std::uint64_t count_ = 0;
  sim::Event event_;
};

}  // namespace maxev::model
