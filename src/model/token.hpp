#pragma once

#include <array>
#include <cstdint>
#include <string>

/// \file token.hpp
/// Workload tokens. Performance models do not carry functional payloads —
/// only the attributes that determine computation and communication loads
/// (the paper: "workload models are used to express computation and
/// communication loads"). Execution durations may depend on these attributes
/// ("execution durations are typically variable and can depend on data size
/// information").

namespace maxev::model {

/// Attributes attached to a token by its source and carried unchanged along
/// the processing chain.
struct TokenAttrs {
  /// Generic payload size (bits, bytes, samples — model-defined unit).
  std::int64_t size = 0;
  /// Domain-specific parameters; meaning is defined per application
  /// (the LTE model uses PRB count, modulation order, code rate, symbol
  /// index within the frame).
  std::array<double, 4> params{};

  friend bool operator==(const TokenAttrs&, const TokenAttrs&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// A token travelling through the architecture model.
struct Token {
  /// Iteration index assigned by the source (k in the paper's equations).
  std::uint64_t k = 0;
  /// Index of the source that emitted the token (provenance).
  std::int32_t source = 0;
  TokenAttrs attrs;

  friend bool operator==(const Token&, const Token&) = default;
};

}  // namespace maxev::model
