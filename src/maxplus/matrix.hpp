#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "maxplus/scalar.hpp"
#include "maxplus/vector.hpp"

/// \file matrix.hpp
/// Dense matrices over the (max,+) semiring: the A(k,i), B(k,j), C(k,l)
/// matrices of the paper's equations (7)-(10), plus the Kleene star needed to
/// resolve the implicit X(k) = A0 ⊗ X(k) ⊕ b fixed point.

namespace maxev::mp {

class Matrix {
 public:
  Matrix() = default;
  /// rows × cols matrix, all entries ε (the ⊕-zero matrix).
  Matrix(std::size_t rows, std::size_t cols);

  /// The ⊗-identity: e on the diagonal, ε elsewhere.
  static Matrix identity(std::size_t n);
  /// The all-ε matrix (alias of the size constructor, for readability).
  static Matrix zero(std::size_t rows, std::size_t cols);
  /// Build from rows of raw int64 values (tests); INT64_MIN encodes ε.
  static Matrix of(std::initializer_list<std::initializer_list<std::int64_t>> rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Bounds-checked access.
  [[nodiscard]] Scalar& at(std::size_t r, std::size_t c);
  [[nodiscard]] const Scalar& at(std::size_t r, std::size_t c) const;

  /// Entry-wise ⊕. \pre equal shapes
  friend Matrix operator+(const Matrix& a, const Matrix& b);
  /// ⊗ product: (A⊗B)(i,j) = ⊕_k A(i,k) ⊗ B(k,j). \pre a.cols() == b.rows()
  friend Matrix operator*(const Matrix& a, const Matrix& b);
  /// Matrix-vector ⊗ product. \pre a.cols() == x.size()
  friend Vector operator*(const Matrix& a, const Vector& x);

  /// ⊗-power; pow(0) is the identity. \pre square
  [[nodiscard]] Matrix pow(unsigned n) const;

  /// True if every entry is ε.
  [[nodiscard]] bool is_zero() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Scalar> m_;  // row-major
};

/// Kleene star A* = I ⊕ A ⊕ A² ⊕ … . Converges (finitely) iff A has no
/// cycle of positive weight; in evolution-instant systems A0 is acyclic
/// (nilpotent), so A0* = I ⊕ A0 ⊕ … ⊕ A0^(n-1).
/// Throws maxev::DescriptionError when a positive-weight cycle makes the
/// star diverge (e.g. a zero-lag dependency cycle in the instant equations).
[[nodiscard]] Matrix kleene_star(const Matrix& a);

/// Solve x = A ⊗ x ⊕ b, i.e. x = A* ⊗ b, with the same divergence rules as
/// kleene_star.
[[nodiscard]] Vector solve_implicit(const Matrix& a, const Vector& b);

}  // namespace maxev::mp
