#pragma once

#include <cstdint>
#include <vector>

#include "maxplus/cycle_ratio.hpp"

/// \file eigen.hpp
/// Steady-state eigen-structure of a timed event graph: the generalized
/// (max,+) eigenvalue λ (the maximum cycle ratio — picoseconds per
/// iteration) together with a vector of *eigen-potentials* v, one per node.
/// In a periodic steady state the instants grow affinely,
///
///   x_n(k) ≈ λ·k + v[n] + c,
///
/// so λ fixes the common rate and the potentials fix the relative phase of
/// the nodes within one period. The potentials are the longest-path
/// distances in the graph reweighted by w(a) − λ·lag(a) (no positive cycle
/// remains at the critical λ, so the distances are finite and reached
/// within |V| relaxation passes) — the classical potential/eigenvector
/// construction generalized to arbitrary lags.
///
/// The adaptive backend (study/adaptive.hpp) uses this as an analytic
/// cross-check: the per-iteration rate Λ/P its detector measures on the
/// simulated window must dominate λ of the frozen program's analysis graph.

namespace maxev::mp {

/// λ plus the node potentials.
struct SteadyState {
  /// Maximum cycle ratio in picoseconds per iteration (0 when acyclic).
  double cycle_ratio_ps = 0.0;
  /// False when no cycle constrains the rate (pure feed-forward).
  bool has_cycle = false;
  /// Per-node eigen-potential: longest-path distance under w − λ·lag from
  /// the virtual all-zeros source. Relative values are the steady-state
  /// phase offsets between nodes.
  std::vector<double> potential;
};

/// Compute λ (via max_cycle_ratio) and the potentials for the given arc
/// set. Same preconditions as max_cycle_ratio: a positive-weight zero-lag
/// cycle throws maxev::DescriptionError.
[[nodiscard]] SteadyState steady_state(std::size_t node_count,
                                       const std::vector<RatioArc>& arcs,
                                       double tolerance = 1e-3);

}  // namespace maxev::mp
