#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/time.hpp"

/// \file scalar.hpp
/// The (max,+) semiring R_max = (Z ∪ {ε}, ⊕, ⊗) over integer picoseconds.
///
/// ⊕ is max (synchronization of processes), ⊗ is + (time lag by a duration),
/// following Baccelli et al., "Synchronization and Linearity" (1992), the
/// formalism the reproduced paper adopts in Section III-B.
///
/// ε (epsilon) = -∞ is the neutral element of ⊕ and absorbing for ⊗;
/// e = 0 is the neutral element of ⊗. Following convention, we overload
/// operator+ for ⊕ and operator* for ⊗, and also provide the named functions
/// oplus() / otimes().

namespace maxev::mp {

/// One element of R_max. A regular value type: cheap to copy, totally
/// ordered with ε below every finite value.
class Scalar {
 public:
  /// Default-constructed scalars are ε, matching the algebraic convention
  /// that an unknown/never-occurring instant is -∞.
  constexpr Scalar() = default;

  /// The ⊕-identity ε = -∞.
  static constexpr Scalar eps() { return Scalar{}; }
  /// The ⊗-identity e = 0.
  static constexpr Scalar e() { return Scalar{0}; }
  /// A finite element.
  static constexpr Scalar of(std::int64_t v) { return Scalar{v}; }
  /// Lift a simulated instant into the algebra.
  static constexpr Scalar from_time(TimePoint t) { return Scalar{t.count()}; }
  /// Lift a duration into the algebra (used as arc weight).
  static constexpr Scalar from_duration(Duration d) { return Scalar{d.count()}; }

  [[nodiscard]] constexpr bool is_eps() const { return eps_; }
  [[nodiscard]] constexpr bool is_finite() const { return !eps_; }

  /// Finite value accessor. \pre is_finite()
  [[nodiscard]] std::int64_t value() const {
    if (eps_) throw_eps_value();
    return v_;
  }

  /// Convert a finite value back to a TimePoint. \pre is_finite()
  [[nodiscard]] TimePoint to_time() const { return TimePoint::at_ps(value()); }

  /// ⊕ : max with ε as identity.
  friend constexpr Scalar operator+(Scalar a, Scalar b) {
    if (a.eps_) return b;
    if (b.eps_) return a;
    return Scalar{a.v_ > b.v_ ? a.v_ : b.v_};
  }

  /// ⊗ : addition with ε absorbing. Throws maxev::OverflowError when the sum
  /// of two finite values leaves the 64-bit range. Inline (this is the inner
  /// loop of ComputeInstant); the throw lives in a cold out-of-line helper.
  friend Scalar operator*(Scalar a, Scalar b) {
    if (a.eps_ || b.eps_) return eps();
    std::int64_t sum = 0;
    if (__builtin_add_overflow(a.v_, b.v_, &sum)) throw_otimes_overflow(a, b);
    return Scalar{sum};
  }

  Scalar& operator+=(Scalar o) { *this = *this + o; return *this; }
  Scalar& operator*=(Scalar o) { *this = *this * o; return *this; }

  friend constexpr bool operator==(Scalar a, Scalar b) {
    return a.eps_ == b.eps_ && (a.eps_ || a.v_ == b.v_);
  }
  /// Total order with ε strictly below all finite values.
  friend constexpr std::strong_ordering operator<=>(Scalar a, Scalar b) {
    if (a.eps_ && b.eps_) return std::strong_ordering::equal;
    if (a.eps_) return std::strong_ordering::less;
    if (b.eps_) return std::strong_ordering::greater;
    return a.v_ <=> b.v_;
  }

  /// "eps" or the integer value.
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Scalar(std::int64_t v) : v_(v), eps_(false) {}

  [[noreturn]] static void throw_eps_value();
  [[noreturn]] static void throw_otimes_overflow(Scalar a, Scalar b);

  std::int64_t v_ = 0;
  bool eps_ = true;
};

/// Named aliases for the two semiring operations.
[[nodiscard]] constexpr Scalar oplus(Scalar a, Scalar b) { return a + b; }
[[nodiscard]] inline Scalar otimes(Scalar a, Scalar b) { return a * b; }

}  // namespace maxev::mp
