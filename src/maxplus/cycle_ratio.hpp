#pragma once

#include <cstdint>
#include <optional>
#include <vector>

/// \file cycle_ratio.hpp
/// Maximum cycle ratio analysis for timed event graphs.
///
/// In a (max,+) recurrence the steady-state growth rate of the instants —
/// the reciprocal of the architecture's throughput — is the maximum over all
/// dependency cycles of (sum of durations on the cycle) / (sum of iteration
/// lags on the cycle). This generalizes the (max,+) matrix eigenvalue to
/// graphs whose history arcs carry arbitrary lags.
///
/// We compute it by parametric search: λ is feasible (λ ≥ all cycle ratios)
/// iff the graph with arc weights w - λ·lag has no positive cycle, checked
/// with Bellman-Ford. Used by the ablation bench to compare the analytic
/// throughput bound against the simulated steady-state period.

namespace maxev::mp {

/// One arc of the analysis graph. Weights are in picoseconds (double to
/// allow mean-duration analysis of stochastic workloads).
struct RatioArc {
  std::size_t src = 0;
  std::size_t dst = 0;
  double weight = 0.0;  ///< total duration along the arc
  unsigned lag = 0;     ///< iteration-index displacement (0 = same k)
};

/// Result of the analysis.
struct CycleRatioResult {
  /// Maximum cycle ratio in picoseconds per iteration; this is the minimum
  /// steady-state period the architecture can sustain.
  double max_ratio = 0.0;
  /// False when the graph has no cycle containing a lag (pure feed-forward:
  /// throughput limited only by the input rate); max_ratio is then 0.
  bool has_cycle = false;
};

/// Compute the maximum cycle ratio of the given arc set over \p node_count
/// nodes. A zero-lag positive-weight cycle makes every λ infeasible; this is
/// a malformed instant system and throws maxev::DescriptionError.
///
/// \param tolerance absolute convergence tolerance on λ, in picoseconds.
[[nodiscard]] CycleRatioResult max_cycle_ratio(std::size_t node_count,
                                               const std::vector<RatioArc>& arcs,
                                               double tolerance = 1e-3);

}  // namespace maxev::mp
