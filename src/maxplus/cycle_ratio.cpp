#include "maxplus/cycle_ratio.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace maxev::mp {

namespace {

/// Bellman-Ford positive-cycle detection on weights w(a) - lambda * lag(a).
/// Works on the whole graph at once by seeding every node with potential 0
/// (equivalent to a virtual source with zero-weight arcs to all nodes).
bool has_positive_cycle(std::size_t n, const std::vector<RatioArc>& arcs,
                        double lambda) {
  std::vector<double> dist(n, 0.0);
  bool changed = false;
  for (std::size_t pass = 0; pass < n; ++pass) {
    changed = false;
    for (const auto& a : arcs) {
      const double w = a.weight - lambda * static_cast<double>(a.lag);
      if (dist[a.src] + w > dist[a.dst] + 1e-12) {
        dist[a.dst] = dist[a.src] + w;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  return changed;  // still relaxing after n passes => positive cycle
}

}  // namespace

CycleRatioResult max_cycle_ratio(std::size_t node_count,
                                 const std::vector<RatioArc>& arcs,
                                 double tolerance) {
  CycleRatioResult result;
  if (arcs.empty() || node_count == 0) return result;

  for (const auto& a : arcs) {
    if (a.src >= node_count || a.dst >= node_count)
      throw Error("max_cycle_ratio: arc endpoint out of range");
  }

  // Zero-lag positive cycles are infeasible for every lambda.
  std::vector<RatioArc> zero_lag;
  for (const auto& a : arcs)
    if (a.lag == 0) zero_lag.push_back(a);
  if (has_positive_cycle(node_count, zero_lag, 0.0)) {
    throw DescriptionError(
        "max_cycle_ratio: positive-weight zero-lag cycle (instants not "
        "computable)");
  }

  // Upper bound for lambda: the sum of all positive weights divided by the
  // smallest nonzero lag is a safe cap; use total weight (lag >= 1 on any
  // feasibility-relevant cycle).
  double hi = 1.0;
  for (const auto& a : arcs) hi += std::max(a.weight, 0.0);
  double lo = 0.0;

  if (!has_positive_cycle(node_count, arcs, lo)) {
    // Even lambda = 0 is feasible: no cycle constrains the rate.
    result.has_cycle = false;
    result.max_ratio = 0.0;
    return result;
  }
  result.has_cycle = true;

  while (has_positive_cycle(node_count, arcs, hi)) hi *= 2.0;

  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (has_positive_cycle(node_count, arcs, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  result.max_ratio = hi;
  return result;
}

}  // namespace maxev::mp
