#include "maxplus/matrix.hpp"

#include <climits>

#include "util/error.hpp"

namespace maxev::mp {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), m_(rows * cols, Scalar::eps()) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out.at(i, i) = Scalar::e();
  return out;
}

Matrix Matrix::zero(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

Matrix Matrix::of(
    std::initializer_list<std::initializer_list<std::int64_t>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r == 0 ? 0 : rows.begin()->size();
  Matrix out(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    if (row.size() != c) throw Error("mp::Matrix::of: ragged rows");
    std::size_t j = 0;
    for (auto v : row) {
      out.at(i, j) = (v == INT64_MIN) ? Scalar::eps() : Scalar::of(v);
      ++j;
    }
    ++i;
  }
  return out;
}

Scalar& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw Error("mp::Matrix index out of range");
  return m_[r * cols_ + c];
}

const Scalar& Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw Error("mp::Matrix index out of range");
  return m_[r * cols_ + c];
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_)
    throw Error("mp::Matrix oplus: shape mismatch");
  Matrix out(a.rows_, a.cols_);
  for (std::size_t i = 0; i < a.m_.size(); ++i) out.m_[i] = a.m_[i] + b.m_[i];
  return out;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols_ != b.rows_)
    throw Error("mp::Matrix otimes: inner dimension mismatch");
  Matrix out(a.rows_, b.cols_);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const Scalar aik = a.at(i, k);
      if (aik.is_eps()) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) {
        const Scalar bkj = b.at(k, j);
        if (bkj.is_eps()) continue;
        Scalar& dst = out.m_[i * out.cols_ + j];
        dst = dst + aik * bkj;
      }
    }
  }
  return out;
}

Vector operator*(const Matrix& a, const Vector& x) {
  if (a.cols_ != x.size())
    throw Error("mp::Matrix otimes vector: dimension mismatch");
  Vector out(a.rows_);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    Scalar acc = Scalar::eps();
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const Scalar aik = a.at(i, k);
      if (aik.is_eps() || x[k].is_eps()) continue;
      acc = acc + aik * x[k];
    }
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::pow(unsigned n) const {
  if (rows_ != cols_) throw Error("mp::Matrix::pow: non-square matrix");
  Matrix result = Matrix::identity(rows_);
  Matrix base = *this;
  while (n > 0) {
    if (n & 1u) result = result * base;
    base = base * base;
    n >>= 1u;
  }
  return result;
}

bool Matrix::is_zero() const {
  for (const auto& s : m_)
    if (!s.is_eps()) return false;
  return true;
}

std::string Matrix::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < rows_; ++i) {
    out += "[";
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j) out += ", ";
      out += at(i, j).to_string();
    }
    out += "]\n";
  }
  return out;
}

Matrix kleene_star(const Matrix& a) {
  if (a.rows() != a.cols())
    throw Error("mp::kleene_star: non-square matrix");
  const std::size_t n = a.rows();
  Matrix star = Matrix::identity(n);
  Matrix power = Matrix::identity(n);
  for (std::size_t i = 0; i < n; ++i) {
    power = power * a;  // A^(i+1)
    star = star + power;
  }
  // If A^(n+1) still contributes beyond I ⊕ A ⊕ … ⊕ A^n, the series diverges,
  // which happens exactly when A has a positive-weight cycle. (Zero-weight
  // cycles converge and are legal algebraically; the TDG layer separately
  // rejects zero-lag cycles because they make instants non-computable in
  // evaluation order.)
  const Matrix next = power * a;
  if (!(star + next == star)) {
    throw DescriptionError(
        "mp::kleene_star: divergent star (positive-weight cycle in the "
        "zero-lag dependency matrix)");
  }
  return star;
}

Vector solve_implicit(const Matrix& a, const Vector& b) {
  return kleene_star(a) * b;
}

}  // namespace maxev::mp
