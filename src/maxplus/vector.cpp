#include "maxplus/vector.hpp"

#include "util/error.hpp"

namespace maxev::mp {

Vector Vector::filled(std::size_t n, Scalar fill) {
  Vector out(n);
  for (std::size_t i = 0; i < n; ++i) out.v_[i] = fill;
  return out;
}

Vector Vector::of(std::initializer_list<std::int64_t> values) {
  Vector out(values.size());
  std::size_t i = 0;
  for (auto v : values) out.v_[i++] = Scalar::of(v);
  return out;
}

Scalar& Vector::at(std::size_t i) {
  if (i >= v_.size()) throw Error("mp::Vector index out of range");
  return v_[i];
}

const Scalar& Vector::at(std::size_t i) const {
  if (i >= v_.size()) throw Error("mp::Vector index out of range");
  return v_[i];
}

Vector operator+(const Vector& a, const Vector& b) {
  if (a.size() != b.size())
    throw Error("mp::Vector oplus: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector operator*(Scalar s, const Vector& a) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = s * a[i];
  return out;
}

Scalar Vector::max_entry() const {
  Scalar m = Scalar::eps();
  for (const auto& x : v_) m = m + x;
  return m;
}

std::string Vector::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i) out += ", ";
    out += v_[i].to_string();
  }
  out += "]";
  return out;
}

}  // namespace maxev::mp
