#include "maxplus/linear_system.hpp"

#include "util/error.hpp"

namespace maxev::mp {

LinearSystem::LinearSystem(std::size_t n, std::size_t p, std::size_t q)
    : n_(n), p_(p), q_(q) {}

namespace {
void put(std::vector<MatrixFn>& v, unsigned lag, MatrixFn fn) {
  if (v.size() <= lag) v.resize(lag + 1);
  v[lag] = std::move(fn);
}
}  // namespace

void LinearSystem::set_a(unsigned lag, MatrixFn fn) { put(a_, lag, std::move(fn)); }
void LinearSystem::set_b(unsigned lag, MatrixFn fn) { put(b_, lag, std::move(fn)); }
void LinearSystem::set_c(unsigned lag, MatrixFn fn) { put(c_, lag, std::move(fn)); }
void LinearSystem::set_d(unsigned lag, MatrixFn fn) { put(d_, lag, std::move(fn)); }

void LinearSystem::set_a_const(unsigned lag, Matrix m) {
  if (m.rows() != n_ || m.cols() != n_)
    throw Error("LinearSystem::set_a_const: A must be n x n");
  set_a(lag, [m = std::move(m)](std::uint64_t) { return m; });
}

void LinearSystem::set_b_const(unsigned lag, Matrix m) {
  if (m.rows() != n_ || m.cols() != p_)
    throw Error("LinearSystem::set_b_const: B must be n x p");
  set_b(lag, [m = std::move(m)](std::uint64_t) { return m; });
}

void LinearSystem::set_c_const(unsigned lag, Matrix m) {
  if (m.rows() != q_ || m.cols() != n_)
    throw Error("LinearSystem::set_c_const: C must be q x n");
  set_c(lag, [m = std::move(m)](std::uint64_t) { return m; });
}

void LinearSystem::set_d_const(unsigned lag, Matrix m) {
  if (m.rows() != q_ || m.cols() != p_)
    throw Error("LinearSystem::set_d_const: D must be q x p");
  set_d(lag, [m = std::move(m)](std::uint64_t) { return m; });
}

Vector LinearSystem::past_x(unsigned lag) const {
  // lag >= 1: hist_x_[lag-1] = X(k-lag); beyond recorded history the
  // configured pre-history value applies.
  if (lag >= 1 && lag <= hist_x_.size()) return hist_x_[lag - 1];
  return Vector::filled(n_, prehistory_);
}

Vector LinearSystem::past_u(unsigned lag) const {
  if (lag < hist_u_.size()) return hist_u_[lag];
  return Vector::filled(p_, prehistory_);
}

LinearSystem::Step LinearSystem::step(const Vector& u) {
  if (u.size() != p_)
    throw Error("LinearSystem::step: input dimension mismatch");

  // Push U(k) as the current input (hist_u_[0]).
  hist_u_.insert(hist_u_.begin(), u);
  const std::size_t max_u_hist =
      std::max(b_.size(), d_.size()) + 1;
  if (hist_u_.size() > max_u_hist) hist_u_.resize(max_u_hist);

  // Accumulate the explicit part: rhs = ⊕_{i>=1} A_i X(k-i) ⊕ ⊕_j B_j U(k-j).
  Vector rhs(n_);
  for (unsigned lag = 1; lag < a_.size(); ++lag) {
    if (!a_[lag]) continue;
    rhs = rhs + a_[lag](k_) * past_x(lag);
  }
  for (unsigned lag = 0; lag < b_.size(); ++lag) {
    if (!b_[lag]) continue;
    rhs = rhs + b_[lag](k_) * past_u(lag);
  }

  // Resolve the implicit zero-lag part X = A0 X ⊕ rhs.
  Vector x = rhs;
  if (!a_.empty() && a_[0]) {
    const Matrix a0 = a_[0](k_);
    if (a0.rows() != n_ || a0.cols() != n_)
      throw Error("LinearSystem: A(k,0) has wrong shape");
    x = solve_implicit(a0, rhs);
  }

  // Output: Y(k) = ⊕_l C_l X(k-l) ⊕ ⊕_m D_m U(k-m). C(·,0) uses the fresh x.
  Vector y(q_);
  for (unsigned lag = 0; lag < c_.size(); ++lag) {
    if (!c_[lag]) continue;
    y = y + c_[lag](k_) * (lag == 0 ? x : past_x(lag));
  }
  for (unsigned lag = 0; lag < d_.size(); ++lag) {
    if (!d_[lag]) continue;
    y = y + d_[lag](k_) * past_u(lag);
  }

  // Push X(k) into history.
  hist_x_.insert(hist_x_.begin(), x);
  const std::size_t max_x_hist = std::max(a_.size(), c_.size());
  if (hist_x_.size() > std::max<std::size_t>(max_x_hist, 1))
    hist_x_.resize(std::max<std::size_t>(max_x_hist, 1));

  ++k_;
  return Step{std::move(x), std::move(y)};
}

void LinearSystem::reset() {
  hist_x_.clear();
  hist_u_.clear();
  k_ = 0;
}

}  // namespace maxev::mp
