#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "maxplus/matrix.hpp"
#include "maxplus/vector.hpp"

/// \file linear_system.hpp
/// The paper's linear evolution form, equations (7)-(10):
///
///   X(k) = ⊕_{i=0..a} A(k,i) ⊗ X(k-i)  ⊕  ⊕_{j=0..b} B(k,j) ⊗ U(k-j)
///   Y(k) = ⊕_{l=0..c} C(k,l) ⊗ X(k-l)  ⊕  ⊕_{m=0..d} D(k,m) ⊗ U(k-m)
///
/// The zero-lag term A(k,0) ⊗ X(k) is implicit; it is resolved through the
/// Kleene star A(k,0)* (valid because the zero-lag dependency matrix of an
/// instant system is acyclic). This solver is used to cross-validate the
/// temporal-dependency-graph engine: on linear architectures both must
/// produce identical X(k), Y(k) sequences.

namespace maxev::mp {

/// Matrix provider: systems may be k-dependent because execution durations
/// T(k) vary with data. Called once per iteration.
using MatrixFn = std::function<Matrix(std::uint64_t k)>;

/// A (possibly k-varying) linear (max,+) system with bounded history.
class LinearSystem {
 public:
  /// \param n state dimension, \param p input dimension, \param q output dim.
  LinearSystem(std::size_t n, std::size_t p, std::size_t q);

  /// Register A(·,lag): state-from-state dependence at the given lag.
  void set_a(unsigned lag, MatrixFn fn);
  /// Register B(·,lag): state-from-input dependence at the given lag.
  void set_b(unsigned lag, MatrixFn fn);
  /// Register C(·,lag): output-from-state dependence at the given lag.
  void set_c(unsigned lag, MatrixFn fn);
  /// Register D(·,lag): output-from-input dependence at the given lag.
  void set_d(unsigned lag, MatrixFn fn);

  /// Convenience for constant matrices.
  void set_a_const(unsigned lag, Matrix m);
  void set_b_const(unsigned lag, Matrix m);
  void set_c_const(unsigned lag, Matrix m);
  void set_d_const(unsigned lag, Matrix m);

  /// Value substituted for X(k-i)/U(k-j) entries before iteration 0.
  /// Default ε (the algebraic convention: nothing happened before k = 0);
  /// the TDG engine uses e (the simulation origin) — see tdg/graph.hpp.
  void set_prehistory(Scalar s) { prehistory_ = s; }

  [[nodiscard]] std::size_t state_size() const { return n_; }
  [[nodiscard]] std::size_t input_size() const { return p_; }
  [[nodiscard]] std::size_t output_size() const { return q_; }

  /// Step result for one iteration.
  struct Step {
    Vector x;
    Vector y;
  };

  /// Advance the recurrence with input U(k). History X(k-i), U(k-j) beyond
  /// the recorded past is treated as ε (nothing happened before k = 0).
  Step step(const Vector& u);

  /// Reset all history (back to k = 0).
  void reset();

  /// Number of steps taken so far.
  [[nodiscard]] std::uint64_t iteration() const { return k_; }

 private:
  [[nodiscard]] Vector past_x(unsigned lag) const;
  [[nodiscard]] Vector past_u(unsigned lag) const;

  Scalar prehistory_ = Scalar::eps();
  std::size_t n_, p_, q_;
  std::vector<MatrixFn> a_, b_, c_, d_;  // index = lag; empty fn = absent
  std::vector<Vector> hist_x_;           // hist_x_[0] = X(k-1), ...
  std::vector<Vector> hist_u_;           // hist_u_[0] = U(k),  ... (current first)
  std::uint64_t k_ = 0;
};

}  // namespace maxev::mp
