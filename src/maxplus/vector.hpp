#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "maxplus/scalar.hpp"

/// \file vector.hpp
/// Column vectors over the (max,+) semiring. These are the X(k), U(k), Y(k)
/// vectors of the paper's equations (7)-(10).

namespace maxev::mp {

class Vector {
 public:
  Vector() = default;
  /// A vector of \p n entries, all ε.
  explicit Vector(std::size_t n) : v_(n, Scalar::eps()) {}
  Vector(std::initializer_list<Scalar> init) : v_(init) {}

  /// A vector of n entries all equal to \p fill.
  static Vector filled(std::size_t n, Scalar fill);
  /// Lift of raw int64 values (for test ergonomics).
  static Vector of(std::initializer_list<std::int64_t> values);

  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] bool empty() const { return v_.empty(); }

  /// Bounds-checked element access.
  [[nodiscard]] Scalar& at(std::size_t i);
  [[nodiscard]] const Scalar& at(std::size_t i) const;
  Scalar& operator[](std::size_t i) { return v_[i]; }
  const Scalar& operator[](std::size_t i) const { return v_[i]; }

  /// Entry-wise ⊕. \pre equal sizes
  friend Vector operator+(const Vector& a, const Vector& b);
  /// Entry-wise scale: every entry ⊗ s.
  friend Vector operator*(Scalar s, const Vector& a);

  /// ⊕-reduction of all entries (ε for the empty vector).
  [[nodiscard]] Scalar max_entry() const;

  friend bool operator==(const Vector&, const Vector&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Scalar> v_;
};

}  // namespace maxev::mp
