#include "maxplus/eigen.hpp"

#include <algorithm>

namespace maxev::mp {

SteadyState steady_state(std::size_t node_count,
                         const std::vector<RatioArc>& arcs, double tolerance) {
  SteadyState out;
  out.potential.assign(node_count, 0.0);
  if (node_count == 0) return out;

  const CycleRatioResult ratio = max_cycle_ratio(node_count, arcs, tolerance);
  out.cycle_ratio_ps = ratio.max_ratio;
  out.has_cycle = ratio.has_cycle;

  // Longest paths under w − λ·lag, every node seeded at 0 (virtual source).
  // λ is feasible, so no positive cycle remains beyond the binary-search
  // tolerance; |V| passes reach the fixpoint, and the pass cap keeps the
  // tolerance-sized residual cycles from spinning.
  for (std::size_t pass = 0; pass < node_count; ++pass) {
    bool changed = false;
    for (const RatioArc& a : arcs) {
      const double w =
          a.weight - out.cycle_ratio_ps * static_cast<double>(a.lag);
      if (out.potential[a.src] + w > out.potential[a.dst] + 1e-9) {
        out.potential[a.dst] = out.potential[a.src] + w;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return out;
}

}  // namespace maxev::mp
