#include "maxplus/scalar.hpp"

#include "util/error.hpp"

namespace maxev::mp {

void Scalar::throw_eps_value() {
  throw OverflowError("Scalar::value() called on eps");
}

void Scalar::throw_otimes_overflow(Scalar a, Scalar b) {
  throw OverflowError("max-plus otimes overflow: " + a.to_string() + " * " +
                      b.to_string());
}

std::string Scalar::to_string() const {
  return eps_ ? "eps" : std::to_string(v_);
}

}  // namespace maxev::mp
