#include "maxplus/scalar.hpp"

#include "util/error.hpp"

namespace maxev::mp {

std::int64_t Scalar::value() const {
  if (eps_) throw OverflowError("Scalar::value() called on eps");
  return v_;
}

TimePoint Scalar::to_time() const { return TimePoint::at_ps(value()); }

Scalar operator*(Scalar a, Scalar b) {
  if (a.eps_ || b.eps_) return Scalar::eps();
  std::int64_t sum = 0;
  if (__builtin_add_overflow(a.v_, b.v_, &sum)) {
    throw OverflowError("max-plus otimes overflow: " + a.to_string() + " * " +
                        b.to_string());
  }
  return Scalar::of(sum);
}

std::string Scalar::to_string() const {
  return eps_ ? "eps" : std::to_string(v_);
}

}  // namespace maxev::mp
