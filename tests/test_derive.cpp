#include <gtest/gtest.h>

#include <set>

#include "gen/chains.hpp"
#include "gen/didactic.hpp"
#include "gen/padded.hpp"
#include "gen/random_arch.hpp"
#include "tdg/derive.hpp"
#include "tdg/export.hpp"
#include "tdg/simplify.hpp"
#include "util/error.hpp"

namespace maxev::tdg {
namespace {

/// Signature of an arc for structural assertions: src -> dst @lag (#segs).
struct ArcSig {
  std::string src, dst;
  unsigned lag;
  std::size_t segments;

  bool operator<(const ArcSig& o) const {
    return std::tie(src, dst, lag, segments) <
           std::tie(o.src, o.dst, o.lag, o.segments);
  }
  bool operator==(const ArcSig& o) const = default;
};

std::set<ArcSig> signatures(const Graph& g) {
  std::set<ArcSig> out;
  for (const Arc& a : g.arcs())
    out.insert(
        {g.node(a.src).name, g.node(a.dst).name, a.lag, a.segments.size()});
  return out;
}

TEST(DeriveTest, DidacticFoldedGraphIsFigure3) {
  model::ArchitectureDesc d = gen::make_didactic({});
  DerivedTdg derived = derive_full_tdg(d);
  Graph g = fold_pass_through(derived.graph);

  // Fig. 3 / Table I: 7 live nodes + 3 history references = 10.
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.paper_node_count(), 10u);

  // The arc set is equations (1)-(6), with the provably redundant
  // ⊕ xM4(k-1) of eq. (3) and ⊕ xM5(k-1) of eq. (4) elided:
  //   xM1 = u ⊕ xM4(k-1)                 (1)
  //   xM2 = xM1 ⊗ Ti1 ⊕ xM5(k-1)        (2)
  //   xM3 = xM2 ⊗ Tj1                    (3)
  //   xM4 = xM3 ⊗ Ti2 ⊕ xM2 ⊗ Ti3      (4)
  //   xM5 = xM4 ⊗ Tj3 ⊕ xM6(k-1)        (5)
  //   xM6 = xM5 ⊗ Ti4                    (6)
  const std::set<ArcSig> expected = {
      {"u:M1", "M1", 0, 0}, {"M4", "M1", 1, 0},
      {"M1", "M2", 0, 1},   {"M5", "M2", 1, 0},
      {"M2", "M3", 0, 1},
      {"M3", "M4", 0, 1},   {"M2", "M4", 0, 1},
      {"M4", "M5", 0, 1},   {"M6", "M5", 1, 0},
      {"M5", "M6", 0, 1},
  };
  EXPECT_EQ(signatures(g), expected);
}

TEST(DeriveTest, DidacticBoundaryMetadata) {
  model::ArchitectureDesc d = gen::make_didactic({});
  DerivedTdg derived = derive_full_tdg(d);
  ASSERT_EQ(derived.inputs.size(), 1u);
  EXPECT_EQ(derived.inputs[0].u_node, "u:M1");
  EXPECT_EQ(derived.inputs[0].x_node, "M1");
  EXPECT_FALSE(derived.inputs[0].fifo);
  ASSERT_EQ(derived.outputs.size(), 1u);
  EXPECT_EQ(derived.outputs[0].offer_node, "M6");  // always-ready sink
  EXPECT_TRUE(derived.outputs[0].actual_node.empty());
}

TEST(DeriveTest, LimitedConcurrencyP2AddsXm6Term) {
  // Paper Section III-B: with P2 sequential, xM2(k) gains ⊕ xM6(k-1)
  // (here as the explicit schedule gate on F3, elided own-prev).
  gen::DidacticConfig cfg;
  cfg.p2_limited_concurrency = true;
  model::ArchitectureDesc d = gen::make_didactic(cfg);
  Graph g = fold_pass_through(derive_full_tdg(d).graph);
  const auto sigs = signatures(g);
  EXPECT_TRUE(sigs.count({"M6", "M2", 1, 0}))
      << "xM2(k) must depend on xM6(k-1) when P2 is sequential";
  // And the concurrent-P2 own-prev arc xM5(k-1) -> M2 is gone.
  EXPECT_FALSE(sigs.count({"M5", "M2", 1, 0}));
}

TEST(DeriveTest, Table1NodeCountsScaleLinearly) {
  // Paper Table I: 10, 19, 28, 37 (+9 per block; CoFluent's capture keeps
  // a boundary node per block). Our chain shares the inter-block relation,
  // so each extra block contributes its 5 other relations + 3 history
  // references: 10, 18, 26, 34. Same linear scaling, one fewer node per
  // seam; see docs/EXPERIMENTS.md.
  for (std::size_t ex = 1; ex <= 4; ++ex) {
    model::ArchitectureDesc d = gen::make_table1_example(ex, 10);
    Graph g = fold_pass_through(derive_full_tdg(d).graph);
    EXPECT_EQ(g.paper_node_count(), 10u + 8u * (ex - 1)) << "example " << ex;
  }
}

TEST(DeriveTest, PipelineStateSizeMatchesConfig) {
  gen::PipelineConfig cfg;
  cfg.x_size = 10;
  cfg.tokens = 10;
  model::ArchitectureDesc d = gen::make_pipeline(cfg);
  Graph g = fold_pass_through(derive_full_tdg(d).graph);
  // Nodes: u + x_size state instants.
  EXPECT_EQ(g.node_count(), cfg.x_size + 1);
  g.freeze();
  auto ex = to_linear_system(
      g, [](model::SourceId, std::uint64_t) { return model::TokenAttrs{}; });
  EXPECT_EQ(ex.state_nodes.size(), cfg.x_size);
}

TEST(DeriveTest, PartialGroupKeepsBoundaryChannels) {
  // Abstract only F3/F4 (resource P2): M2 and M4 become inputs, M6 output.
  model::ArchitectureDesc d = gen::make_didactic({});
  std::vector<bool> group(d.functions().size(), false);
  group[2] = group[3] = true;  // F3, F4
  DerivedTdg derived = derive_tdg(d, group);
  EXPECT_EQ(derived.inputs.size(), 2u);
  EXPECT_EQ(derived.outputs.size(), 1u);
  std::set<std::string> in_names;
  for (const auto& i : derived.inputs) in_names.insert(i.x_node);
  EXPECT_TRUE(in_names.count("M2"));
  EXPECT_TRUE(in_names.count("M4"));
}

TEST(DeriveTest, GroupSplittingSequentialResourceRejected) {
  model::ArchitectureDesc d = gen::make_didactic({});
  std::vector<bool> group(d.functions().size(), false);
  group[0] = true;  // F1 only: P1 = {F1, F2} is split
  EXPECT_THROW(derive_tdg(d, group), DescriptionError);
}

TEST(DeriveTest, EmptyGroupRejected) {
  model::ArchitectureDesc d = gen::make_didactic({});
  EXPECT_THROW(derive_tdg(d, std::vector<bool>(d.functions().size(), false)),
               DescriptionError);
}

TEST(DeriveTest, WriteBeforeReadRejected) {
  model::ArchitectureDesc d;
  const auto r = d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e9);
  const auto in = d.add_rendezvous("in");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("F", r);
  d.fn_write(f, out);  // writes before reading
  d.fn_read(f, in);
  d.add_source("s", in, 1, [](std::uint64_t) { return TimePoint::origin(); },
               [](std::uint64_t) { return model::TokenAttrs{}; });
  d.add_sink("k", out);
  d.validate();
  EXPECT_THROW(derive_full_tdg(d), DescriptionError);
}

TEST(DeriveTest, FifoChannelsGetTwoInstantNodes) {
  model::ArchitectureDesc d;
  const auto r = d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e9);
  const auto in = d.add_rendezvous("in");
  const auto mid = d.add_fifo("q", 2);
  const auto out = d.add_rendezvous("out");
  const auto f1 = d.add_function("A", r);
  d.fn_read(f1, in);
  d.fn_execute(f1, model::constant_ops(100));
  d.fn_write(f1, mid);
  const auto f2 = d.add_function("B", r);
  d.fn_read(f2, mid);
  d.fn_execute(f2, model::constant_ops(100));
  d.fn_write(f2, out);
  d.add_source("s", in, 5, [](std::uint64_t) { return TimePoint::origin(); },
               [](std::uint64_t) { return model::TokenAttrs{}; });
  d.add_sink("k", out);
  d.validate();
  Graph g = fold_pass_through(derive_full_tdg(d).graph);
  EXPECT_NE(g.find("q.w"), kNoNode);
  EXPECT_NE(g.find("q.r"), kNoNode);
  const auto sigs = signatures(g);
  // Slot-recycling arc with lag = capacity.
  EXPECT_TRUE(sigs.count({"q.r", "q.w", 2, 0}));
  // Data-availability arc.
  EXPECT_TRUE(sigs.count({"q.w", "q.r", 0, 0}));
}

TEST(DeriveTest, BackPressuredOutputGetsActualNode) {
  model::ArchitectureDesc d;
  const auto r = d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e9);
  const auto in = d.add_rendezvous("in");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("F", r);
  d.fn_read(f, in);
  d.fn_execute(f, model::constant_ops(100));
  d.fn_write(f, out);
  d.add_source("s", in, 5, [](std::uint64_t) { return TimePoint::origin(); },
               [](std::uint64_t) { return model::TokenAttrs{}; });
  d.add_sink("k", out, [](std::uint64_t) { return Duration::us(1); });
  d.validate();
  DerivedTdg derived = derive_full_tdg(d);
  ASSERT_EQ(derived.outputs.size(), 1u);
  EXPECT_EQ(derived.outputs[0].offer_node, "y:out");
  EXPECT_EQ(derived.outputs[0].actual_node, "out.actual");
}

TEST(DeriveTest, ProvenanceFollowsJoins) {
  // Two sources joining: the join function's loads must use the provenance
  // of the most recent read.
  model::ArchitectureDesc d;
  const auto r = d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e9);
  const auto in0 = d.add_rendezvous("in0");
  const auto in1 = d.add_rendezvous("in1");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("J", r);
  d.fn_read(f, in0);
  d.fn_execute(f, model::linear_ops(0, 1));  // uses source 0's attrs
  d.fn_read(f, in1);
  d.fn_execute(f, model::linear_ops(0, 1));  // uses source 1's attrs
  d.fn_write(f, out);
  auto mk = [](std::uint64_t) { return model::TokenAttrs{}; };
  d.add_source("s0", in0, 3, [](std::uint64_t) { return TimePoint::origin(); }, mk);
  d.add_source("s1", in1, 3, [](std::uint64_t) { return TimePoint::origin(); }, mk);
  d.add_sink("k", out);
  d.validate();
  Graph g = fold_pass_through(derive_full_tdg(d).graph);
  g.freeze();
  // Find the exec arcs and check provenance differs.
  std::set<model::SourceId> exec_sources;
  for (const Arc& a : g.arcs())
    for (const Segment& s : a.segments)
      if (s.is_exec()) exec_sources.insert(a.attr_source);
  EXPECT_EQ(exec_sources, (std::set<model::SourceId>{0, 1}));
}

TEST(DeriveTest, RandomArchitecturesDeriveAndFreeze) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    gen::RandomArchConfig cfg;
    cfg.tokens = 5;
    model::ArchitectureDesc d = gen::make_random_architecture(seed, cfg);
    DerivedTdg derived = derive_full_tdg(d);
    Graph g = fold_pass_through(derived.graph);
    EXPECT_NO_THROW(g.freeze()) << "seed " << seed;
    EXPECT_GE(derived.inputs.size(), 1u) << "seed " << seed;
    EXPECT_GE(derived.outputs.size(), 1u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace maxev::tdg
