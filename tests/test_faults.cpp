#include <gtest/gtest.h>

#include <new>
#include <string>

#include "gen/didactic.hpp"
#include "model/baseline.hpp"
#include "model/load.hpp"
#include "model/shaping.hpp"
#include "sim/kernel.hpp"
#include "study/study.hpp"
#include "tdg/batch_engine.hpp"
#include "tdg/builder.hpp"
#include "tdg/graph.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

/// The fault-injection harness (util/fault.hpp, -DMAXEV_FAULTS=ON):
/// deterministic mid-flight throws at the cataloged points, pinning the
/// exception-safety contract of docs/DESIGN.md §12 — injected faults
/// surface as ordinary maxev errors, nothing hangs, every object stays
/// destructible, and a disarmed process is indistinguishable from a
/// normal build.

namespace maxev {
namespace {

#if !defined(MAXEV_FAULTS)

TEST(FaultInjectionTest, RequiresFaultsBuild) {
  GTEST_SKIP() << "fault points compiled out; rebuild with -DMAXEV_FAULTS=ON";
}

#else

using util::FaultInjector;

model::ArchitectureDesc small_didactic(std::uint64_t tokens = 25) {
  gen::DidacticConfig cfg;
  cfg.tokens = tokens;
  return gen::make_didactic(cfg);
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::reset(); }
  void TearDown() override { FaultInjector::reset(); }
};

TEST_F(FaultInjectionTest, NthHitTriggersOnceThenDisarms) {
  model::ModelRuntime rt(small_didactic());
  FaultInjector::arm("kernel.dispatch", 5);
  EXPECT_TRUE(FaultInjector::active());
  EXPECT_THROW((void)rt.run(), util::FaultInjectedError);
  EXPECT_EQ(FaultInjector::hits("kernel.dispatch"), 5u);
  // One-shot: the point disarmed itself when it fired...
  EXPECT_FALSE(FaultInjector::active());
  // ...and the kernel stays runnable and destructible. The event in
  // flight at the throw was abandoned (poisoned-or-reusable: no hang, no
  // leak — completion is not promised), so only quiescence is asserted.
  EXPECT_NO_THROW((void)rt.run());
}

TEST_F(FaultInjectionTest, DisarmedPointNeverFires) {
  FaultInjector::arm("kernel.dispatch", 1);
  FaultInjector::disarm("kernel.dispatch");
  EXPECT_FALSE(FaultInjector::active());
  model::ModelRuntime rt(small_didactic());
  EXPECT_TRUE(rt.run().completed);
}

TEST_F(FaultInjectionTest, SeededArmIsReproducible) {
  FaultInjector::arm_seeded("kernel.dispatch", 42, 100);
  model::ModelRuntime rt(small_didactic());
  EXPECT_THROW((void)rt.run(), util::FaultInjectedError);
  const std::uint64_t first = FaultInjector::hits("kernel.dispatch");
  EXPECT_GE(first, 1u);
  EXPECT_LE(first, 100u);

  FaultInjector::reset();
  FaultInjector::arm_seeded("kernel.dispatch", 42, 100);
  model::ModelRuntime again(small_didactic());
  EXPECT_THROW((void)again.run(), util::FaultInjectedError);
  EXPECT_EQ(FaultInjector::hits("kernel.dispatch"), first);
}

TEST_F(FaultInjectionTest, AllocationFailureDrillAtTraceAppend) {
  model::ModelRuntime rt(small_didactic());
  FaultInjector::arm("trace.append", 1, FaultInjector::Kind::kBadAlloc);
  // The bad_alloc surfaces inside a process, so the kernel wraps it with
  // the process name like any organic exception.
  EXPECT_THROW((void)rt.run(), SimulationError);
  EXPECT_GE(FaultInjector::hits("trace.append"), 1u);
}

TEST_F(FaultInjectionTest, StudyIsolatesAnInjectedEngineFault) {
  study::Study st;
  st.add(study::Scenario("didactic", small_didactic()));
  st.add(study::Backend::equivalent());
  study::StudyOptions opts;
  opts.isolate_failures = true;

  FaultInjector::arm("engine.flush", 1);
  const study::Report rep = st.run(opts);
  const study::Cell& cell = rep.at("didactic", "equivalent");
  EXPECT_TRUE(cell.failed);
  EXPECT_NE(cell.error.find("injected fault at 'engine.flush'"),
            std::string::npos)
      << cell.error;
  EXPECT_NE(cell.error.find("scenario 'didactic'"), std::string::npos);

  // Nothing global was poisoned: with the injector quiet, a fresh run of
  // the same study completes exactly.
  FaultInjector::reset();
  const study::Report ok = st.run(opts);
  EXPECT_FALSE(ok.at("didactic", "equivalent").failed);
}

TEST_F(FaultInjectionTest, PoolFaultPropagatesFromAParallelStudy) {
  study::Study st;
  st.add(study::Scenario("didactic", small_didactic()));
  st.add(study::Backend::baseline());
  st.add(study::Backend::equivalent());
  study::StudyOptions opts;
  opts.threads = 2;

  // The pool entry is study infrastructure, not a cell: it fails the
  // matrix even with isolation on.
  opts.isolate_failures = true;
  FaultInjector::arm("pool.parallel_for", 1);
  EXPECT_THROW((void)st.run(opts), util::FaultInjectedError);

  FaultInjector::reset();
  const study::Report rep = st.run(opts);
  EXPECT_FALSE(rep.at("didactic", "equivalent").failed);
}

TEST_F(FaultInjectionTest, VectorFlushFaultPublishesNoPartialLane) {
  // engine.vector_flush sits in tdg::BatchEngine's vector drain after the
  // whole uniform front is computed into lane scratch but before any of
  // it is published to the shared frame. A fault there must leave every
  // lane of the front invisible — no instance may observe a value its
  // batch siblings don't have (docs/DESIGN.md §14's no-partial-publish
  // half of the bit-identity contract).
  tdg::GraphBuilder b;
  b.input("u").instant("a").instant("b");
  b.arc("u", "a").fixed(Duration::ns(1));
  b.arc("a", "b").fixed(Duration::ns(2));
  tdg::Graph g = b.take();
  g.freeze();

  const auto feed = [](tdg::BatchEngine& eng) {
    for (std::size_t inst = 0; inst < 4; ++inst)
      eng.set_external(inst, 0, 0,
                       TimePoint::at_ps(10 * static_cast<std::int64_t>(inst)));
  };
  tdg::BatchEngine::Options opts;
  opts.instances.resize(4);  // full-width uniform fronts -> vector drain
  tdg::BatchEngine eng(g, opts);
  feed(eng);
  FaultInjector::arm("engine.vector_flush", 1);
  EXPECT_THROW((void)eng.flush(), util::FaultInjectedError);
  EXPECT_EQ(FaultInjector::hits("engine.vector_flush"), 1u);
  // Nothing partially published: every lane of both computed nodes is
  // still unknown for every instance.
  for (std::size_t inst = 0; inst < 4; ++inst) {
    for (const tdg::NodeId n : {1, 2}) {
      EXPECT_EQ(eng.value(inst, n, 0), std::nullopt)
          << "inst " << inst << " node " << n;
    }
  }
  EXPECT_EQ(eng.instances_computed(), 0u);

  // The injector quiet, a fresh engine over the same graph and feeds
  // completes with the expected per-lane values.
  FaultInjector::reset();
  tdg::BatchEngine::Options ok_opts;
  ok_opts.instances.resize(4);
  tdg::BatchEngine ok(g, ok_opts);
  feed(ok);
  EXPECT_TRUE(ok.flush());
  for (std::size_t inst = 0; inst < 4; ++inst) {
    const std::int64_t u = 10 * static_cast<std::int64_t>(inst);
    ASSERT_TRUE(ok.value(inst, 1, 0).has_value());
    EXPECT_EQ(*ok.value(inst, 1, 0), TimePoint::at_ps(u + 1000));
    ASSERT_TRUE(ok.value(inst, 2, 0).has_value());
    EXPECT_EQ(*ok.value(inst, 2, 0), TimePoint::at_ps(u + 3000));
  }
}

TEST_F(FaultInjectionTest, AdaptiveFastForwardFaultFallsBackToSimulation) {
  // adaptive.fastforward sits in study::AdaptiveModel's commit, after
  // certification and staging but before the first trace is extended. A
  // fault there must publish nothing: the model permanently falls back to
  // full simulation and still produces the reference traces exactly
  // (docs/DESIGN.md §15's all-or-nothing cut-over).
  model::ArchitectureDesc d;
  const auto r =
      d.add_resource("cpu", model::ResourcePolicy::kConcurrent, 1e9);
  const auto in = d.add_rendezvous("in");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("f", r);
  d.fn_read(f, in);
  d.fn_execute(f, model::constant_ops(1000));
  d.fn_write(f, out);
  d.add_source("src", in, 120, model::PeriodicTimeFn{0, 1'000'000},
               model::ConstantAttrsFn{});
  d.add_sink("sink", out);
  d.validate();
  const study::Scenario s("chain", std::move(d));

  auto ref = study::Backend::equivalent().instantiate(s);
  ASSERT_TRUE(ref->run().completed);

  // Sanity: with the injector quiet this workload extrapolates.
  auto clean = study::Backend::adaptive().instantiate(s);
  ASSERT_TRUE(clean->run().completed);
  ASSERT_TRUE(clean->adaptive_stats().has_value());
  ASSERT_TRUE(clean->adaptive_stats()->extrapolated);

  FaultInjector::arm("adaptive.fastforward", 1);
  auto m = study::Backend::adaptive().instantiate(s);
  study::Outcome oc;
  EXPECT_NO_THROW(oc = m->run());
  EXPECT_TRUE(oc.completed);
  EXPECT_EQ(FaultInjector::hits("adaptive.fastforward"), 1u);
  const auto st = m->adaptive_stats();
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->extrapolated);  // the failed cut-over disabled itself

  // No partial instants were published: the fully simulated traces equal
  // the reference's in both directions, as does the completion time.
  EXPECT_EQ(trace::compare_instants(ref->instants(), m->instants()),
            std::nullopt);
  EXPECT_EQ(trace::compare_instants(m->instants(), ref->instants()),
            std::nullopt);
  trace::UsageTraceSet ru = ref->usage();
  trace::UsageTraceSet mu = m->usage();
  ru.sort_all();
  mu.sort_all();
  EXPECT_EQ(trace::compare_usage(ru, mu), std::nullopt);
  EXPECT_EQ(ref->end_time(), m->end_time());
}

TEST_F(FaultInjectionTest, GuardedRerunAfterFaultIsBounded) {
  // A model that faulted mid-run may have lost in-flight events; a
  // guarded re-run must still terminate (budget) instead of spinning.
  model::ModelRuntime rt(small_didactic(2000));
  FaultInjector::arm("kernel.dispatch", 50);
  EXPECT_THROW((void)rt.run(), util::FaultInjectedError);
  sim::RunGuards g;
  g.max_events = 10'000;
  rt.kernel().set_run_guards(g);
  EXPECT_NO_THROW((void)rt.run());
  EXPECT_TRUE(rt.kernel().last_stop() == sim::StopReason::kIdle ||
              rt.kernel().last_stop() == sim::StopReason::kBudget);
}

#endif  // MAXEV_FAULTS

}  // namespace
}  // namespace maxev
