#include <gtest/gtest.h>

#include "trace/instants.hpp"
#include "trace/usage.hpp"
#include "trace/vcd.hpp"
#include "util/error.hpp"

namespace maxev::trace {
namespace {

using namespace maxev::literals;

TimePoint at(std::int64_t ps) { return TimePoint::at_ps(ps); }

TEST(InstantSeriesTest, PushAndAccess) {
  InstantSeries s("M1");
  s.push(at(10));
  s.push(at(20));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.at(1), at(20));
  EXPECT_THROW((void)s.at(2), Error);
  EXPECT_TRUE(s.is_monotone());
}

TEST(InstantSeriesTest, MonotoneDetectsRegression) {
  InstantSeries s("M1");
  s.push(at(10));
  s.push(at(5));
  EXPECT_FALSE(s.is_monotone());
}

TEST(InstantTraceSetTest, CompareIdentical) {
  InstantTraceSet a, b;
  a.series("M1").push(at(1));
  a.series("M2").push(at(2));
  b.series("M1").push(at(1));
  b.series("M2").push(at(2));
  EXPECT_EQ(compare_instants(a, b), std::nullopt);
  EXPECT_EQ(a.total_instants(), 2u);
}

TEST(InstantTraceSetTest, CompareFindsMissingSeries) {
  InstantTraceSet a, b;
  a.series("M1").push(at(1));
  const auto diff = compare_instants(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("missing"), std::string::npos);
}

TEST(InstantTraceSetTest, CompareFindsLengthMismatch) {
  InstantTraceSet a, b;
  a.series("M1").push(at(1));
  a.series("M1").push(at(2));
  b.series("M1").push(at(1));
  const auto diff = compare_instants(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("length"), std::string::npos);
}

TEST(InstantTraceSetTest, CompareFindsValueMismatchWithIndex) {
  InstantTraceSet a, b;
  a.series("M1").push(at(1));
  a.series("M1").push(at(2));
  b.series("M1").push(at(1));
  b.series("M1").push(at(3));
  const auto diff = compare_instants(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("k=1"), std::string::npos);
}

TEST(UsageTraceTest, BusyTimeAndOps) {
  UsageTrace t("P1");
  t.add({at(0), at(1000), 50, "F1.e0"});
  t.add({at(2000), at(3000), 70, "F1.e1"});
  EXPECT_EQ(t.busy_time(), Duration::ps(2000));
  EXPECT_EQ(t.total_ops(), 120);
  EXPECT_EQ(t.span_end(), at(3000));
  EXPECT_DOUBLE_EQ(t.utilization(at(4000)), 0.5);
}

TEST(UsageTraceTest, RejectsNegativeInterval) {
  UsageTrace t("P1");
  EXPECT_THROW(t.add({at(10), at(5), 1, "x"}), Error);
}

TEST(UsageTraceTest, RateProfileStepsUpAndDown) {
  UsageTrace t("P1");
  // 1000 ops over 1000 ps = 1 op/ps = 1000 GOPS.
  t.add({at(0), at(1000), 1000, "a"});
  t.add({at(500), at(1500), 500, "b"});  // 0.5 op/ps = 500 GOPS
  const auto profile = t.rate_profile();
  ASSERT_EQ(profile.size(), 4u);
  EXPECT_DOUBLE_EQ(profile[0].gops, 1000.0);
  EXPECT_DOUBLE_EQ(profile[1].gops, 1500.0);  // overlap
  EXPECT_DOUBLE_EQ(profile[2].gops, 500.0);
  EXPECT_DOUBLE_EQ(profile[3].gops, 0.0);
}

TEST(UsageTraceTest, ZeroLengthIntervalsAddNoRate) {
  UsageTrace t("P1");
  t.add({at(5), at(5), 100, "x"});
  EXPECT_TRUE(t.rate_profile().empty());
}

TEST(UsageTraceTest, WindowedRateApportionsAcrossBins) {
  UsageTrace t("P1");
  // 2000 ops uniformly over [500, 2500): density 1 op/ps.
  t.add({at(500), at(2500), 2000, "x"});
  const auto w = t.windowed_rate(Duration::ps(1000));
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0].gops, 500.0);   // 500 ops in bin 0
  EXPECT_DOUBLE_EQ(w[1].gops, 1000.0);  // full bin
  EXPECT_DOUBLE_EQ(w[2].gops, 500.0);
}

TEST(UsageTraceTest, WindowedRateRejectsBadBin) {
  UsageTrace t("P1");
  EXPECT_THROW(t.windowed_rate(Duration::ps(0)), Error);
}

TEST(UsageTraceTest, ColumnarPushMatchesRowAdd) {
  // The interned fast path and the compatibility add() must be one store.
  UsageTrace t("P1");
  const std::int32_t e0 = t.intern_label("F.e0");
  EXPECT_EQ(t.intern_label("F.e0"), e0);  // idempotent
  t.push(at(0), at(10), 5, e0);
  t.add({at(20), at(30), 7, "F.e1"});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.label(t.label_ids()[0]), "F.e0");
  EXPECT_EQ(t.intervals()[0], (BusyInterval{at(0), at(10), 5, "F.e0"}));
  EXPECT_EQ(t.intervals()[1], (BusyInterval{at(20), at(30), 7, "F.e1"}));
  EXPECT_EQ(t.starts()[1], at(20));
  EXPECT_EQ(t.ops()[1], 7);
}

TEST(UsageTraceTest, MaterializedViewTracksMutation) {
  UsageTrace t("P1");
  t.add({at(0), at(10), 1, "a"});
  EXPECT_EQ(t.intervals().size(), 1u);  // materialize once
  t.add({at(5), at(6), 2, "b"});
  EXPECT_EQ(t.intervals().size(), 2u);  // invalidated by the append
  t.sort();
  EXPECT_EQ(t.intervals()[0].label, "a");  // re-materialized after sort
  EXPECT_EQ(t.intervals()[1].label, "b");
}

TEST(UsageTraceTest, PushRejectsNegativeInterval) {
  UsageTrace t("P1");
  const std::int32_t id = t.intern_label("x");
  EXPECT_THROW(t.push(at(10), at(5), 1, id), Error);
}

TEST(UsageTraceTest, CompareMatchesAcrossDifferentInternOrders) {
  // Label ids are per-trace; equality must hold by label *string*.
  UsageTraceSet a, b;
  a.trace("P1").add({at(0), at(10), 1, "x"});
  a.trace("P1").add({at(20), at(30), 2, "y"});
  b.trace("P1").intern_label("y");  // reverse intern order
  b.trace("P1").add({at(0), at(10), 1, "x"});
  b.trace("P1").add({at(20), at(30), 2, "y"});
  EXPECT_EQ(compare_usage(a, b), std::nullopt);
}

TEST(UsageTraceSetTest, CompareAfterSortIgnoresEmissionOrder) {
  UsageTraceSet a, b;
  a.trace("P1").add({at(0), at(10), 1, "x"});
  a.trace("P1").add({at(20), at(30), 2, "y"});
  b.trace("P1").add({at(20), at(30), 2, "y"});
  b.trace("P1").add({at(0), at(10), 1, "x"});
  a.sort_all();
  b.sort_all();
  EXPECT_EQ(compare_usage(a, b), std::nullopt);
}

TEST(UsageTraceSetTest, CompareFindsOpsMismatch) {
  UsageTraceSet a, b;
  a.trace("P1").add({at(0), at(10), 1, "x"});
  b.trace("P1").add({at(0), at(10), 2, "x"});
  const auto diff = compare_usage(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("interval 0 differs"), std::string::npos);
}

TEST(UsageTraceSetTest, CompareFindsMissingResource) {
  UsageTraceSet a, b;
  a.trace("P1").add({at(0), at(10), 1, "x"});
  const auto diff = compare_usage(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("missing"), std::string::npos);
}

TEST(VcdTest, RendersHeaderAndChanges) {
  VcdWriter vcd("testmod");
  const int busy = vcd.add_wire("p1_busy");
  const int gops = vcd.add_real("p1_gops");
  vcd.change_bit(busy, at(100), true);
  vcd.change_real(gops, at(100), 2.5);
  vcd.change_bit(busy, at(300), false);
  const std::string out = vcd.render();
  EXPECT_NE(out.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module testmod $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! p1_busy $end"), std::string::npos);
  EXPECT_NE(out.find("$var real 64 \" p1_gops $end"), std::string::npos);
  EXPECT_NE(out.find("#100\n1!\nr2.5 \"\n"), std::string::npos);
  EXPECT_NE(out.find("#300\n0!"), std::string::npos);
}

TEST(VcdTest, ChangesSortedByTime) {
  VcdWriter vcd;
  const int w = vcd.add_wire("w");
  vcd.change_bit(w, at(200), false);
  vcd.change_bit(w, at(100), true);
  const std::string out = vcd.render();
  EXPECT_LT(out.find("#100"), out.find("#200"));
}

TEST(VcdTest, CodesAreUniqueForManySignals) {
  VcdWriter vcd;
  for (int i = 0; i < 200; ++i) vcd.add_wire("w" + std::to_string(i));
  const std::string out = vcd.render();
  // Signal 94 wraps to a two-character code.
  EXPECT_NE(out.find("$var wire 1 !\" w94 $end"), std::string::npos);
}

}  // namespace
}  // namespace maxev::trace
