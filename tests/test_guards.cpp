#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/equivalent_model.hpp"
#include "core/lt_runner.hpp"
#include "gen/didactic.hpp"
#include "maxplus/scalar.hpp"
#include "model/baseline.hpp"
#include "sim/kernel.hpp"
#include "study/study.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

/// Run guards (event budget, wall-clock deadline, cooperative
/// cancellation), structured stall diagnostics, per-cell failure isolation
/// and the context-prefixing error helper (docs/DESIGN.md §12).

namespace maxev {
namespace {

using namespace maxev::literals;

// ---------------------------------------------------------------- kernel --

TEST(RunGuardsTest, BudgetStopsAndResumes) {
  sim::Kernel k;
  int steps = 0;
  k.spawn("ticker", [&]() -> sim::Process {
    for (int i = 0; i < 100; ++i) {
      co_await k.delay(Duration::ns(1));
      ++steps;
    }
  });

  sim::RunGuards g;
  g.max_events = 10;
  k.set_run_guards(g);
  EXPECT_EQ(k.run(), sim::StopReason::kBudget);
  EXPECT_EQ(k.last_stop(), sim::StopReason::kBudget);
  EXPECT_EQ(k.events_dispatched(), 10u);
  EXPECT_LT(steps, 100);

  // The tripped run left queue and coroutines intact: raising the
  // (cumulative) budget resumes exactly where it stopped.
  g.max_events = 1000;
  k.set_run_guards(g);
  EXPECT_EQ(k.run(), sim::StopReason::kIdle);
  EXPECT_EQ(k.last_stop(), sim::StopReason::kIdle);
  EXPECT_EQ(steps, 100);
}

TEST(RunGuardsTest, CancellationStopsBeforeAnyDispatch) {
  sim::Kernel k;
  int steps = 0;
  k.spawn("ticker", [&]() -> sim::Process {
    for (int i = 0; i < 10; ++i) {
      co_await k.delay(Duration::ns(1));
      ++steps;
    }
  });

  util::CancelToken cancel;
  cancel.request_cancel();
  sim::RunGuards g;
  g.cancel = &cancel;
  k.set_run_guards(g);
  EXPECT_EQ(k.run(), sim::StopReason::kCancelled);
  EXPECT_EQ(k.events_dispatched(), 0u);
  EXPECT_EQ(steps, 0);

  cancel.reset();
  EXPECT_EQ(k.run(), sim::StopReason::kIdle);
  EXPECT_EQ(steps, 10);
}

TEST(RunGuardsTest, CancellationFromInsideARunStops) {
  sim::Kernel k;
  util::CancelToken cancel;
  int steps = 0;
  k.spawn("ticker", [&]() -> sim::Process {
    for (int i = 0; i < 100; ++i) {
      co_await k.delay(Duration::ns(1));
      if (++steps == 5) cancel.request_cancel();
    }
  });
  sim::RunGuards g;
  g.cancel = &cancel;
  k.set_run_guards(g);
  EXPECT_EQ(k.run(), sim::StopReason::kCancelled);
  EXPECT_EQ(steps, 5);
}

TEST(RunGuardsTest, DeadlineStopsAnEndlessRun) {
  sim::Kernel k;
  k.spawn("spin", [&k]() -> sim::Process {
    for (;;) co_await k.delay(Duration::ps(1));
  });
  sim::RunGuards g;
  g.deadline = std::chrono::milliseconds(5);
  // Backstop: a broken deadline check fails the assertion below as
  // kBudget instead of hanging the test forever.
  g.max_events = 50'000'000;
  k.set_run_guards(g);
  EXPECT_EQ(k.run(), sim::StopReason::kDeadline);
}

TEST(RunGuardsTest, BudgetBoundsASameInstantSpin) {
  // Event-granular budgets cut livelocks a horizon cannot: all these
  // events happen at one simulated instant, so time never advances.
  sim::Kernel k;
  std::function<void()> spin = [&] { k.schedule_call(k.now(), spin); };
  k.schedule_call(TimePoint::origin(), spin);
  sim::RunGuards g;
  g.max_events = 1000;
  k.set_run_guards(g);
  EXPECT_EQ(k.run(TimePoint::at_ps(10)), sim::StopReason::kBudget);
  EXPECT_EQ(k.events_dispatched(), 1000u);
}

// ------------------------------------------------------------- lt runner --

TEST(RunGuardsTest, LtRunnerDistinguishesHorizonFromBudget) {
  gen::DidacticConfig cfg;
  cfg.tokens = 200;
  const auto d = gen::make_didactic(cfg);

  core::LooselyTimedModel lt(d, 10_us);
  model::ModelRuntime::Outcome out = lt.run(TimePoint::at_ps(1));
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.stop, sim::StopReason::kTimeLimit);
  EXPECT_FALSE(sim::is_guard_stop(out.stop));
  out = lt.run();  // resume past the horizon
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.stop, sim::StopReason::kIdle);

  core::LooselyTimedModel capped(d, 10_us);
  sim::RunGuards g;
  g.max_events = 5;
  capped.kernel().set_run_guards(g);
  out = capped.run();
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.stop, sim::StopReason::kBudget);
  EXPECT_EQ(out.diagnostics.stop, sim::StopReason::kBudget);
  EXPECT_NE(out.stall_report.find("event budget exhausted"),
            std::string::npos);
  EXPECT_NE(out.stall_report.find("loosely-timed"), std::string::npos);
}

// ------------------------------------------------------------ diagnostics --

/// A join over two rendezvous inputs whose sources disagree on the token
/// count: once the short source runs dry the join blocks reading forever —
/// a genuine stall in every execution style.
model::ArchitectureDesc stalling_desc() {
  model::ArchitectureDesc d;
  const auto p = d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e9);
  const auto a = d.add_rendezvous("A");
  const auto b = d.add_rendezvous("B");
  const auto out = d.add_rendezvous("OUT");
  const auto f = d.add_function("join", p);
  d.fn_read(f, a);
  d.fn_read(f, b);
  d.fn_execute(f, model::constant_ops(1000));
  d.fn_write(f, out);
  const auto earliest = [](std::uint64_t k) {
    return TimePoint::at_ps(static_cast<std::int64_t>(k) * 1000);
  };
  const auto attrs = [](std::uint64_t) { return model::TokenAttrs{}; };
  d.add_source("srcA", a, 5, earliest, attrs);
  d.add_source("srcB", b, 3, earliest, attrs);
  d.add_sink("sink", out);
  d.validate();
  return d;
}

TEST(StallDiagnosticsTest, BaselineStallNamesParkedProcesses) {
  model::ModelRuntime rt(stalling_desc());
  const model::ModelRuntime::Outcome out = rt.run();
  EXPECT_FALSE(out.completed);
  EXPECT_TRUE(out.idle);
  EXPECT_EQ(out.diagnostics.stop, sim::StopReason::kIdle);
  EXPECT_GT(out.diagnostics.events_processed, 0u);
  ASSERT_FALSE(out.diagnostics.parked_processes.empty());
  bool join_parked = false;
  for (const std::string& name : out.diagnostics.parked_processes)
    join_parked = join_parked || name == "join";
  EXPECT_TRUE(join_parked);
  EXPECT_NE(out.diagnostics.detail.find("sources finished"),
            std::string::npos);
  EXPECT_NE(out.diagnostics.summary().find("parked processes"),
            std::string::npos);
}

TEST(StallDiagnosticsTest, EquivalentStallNamesUnresolvedGates) {
  core::EquivalentModel eq(stalling_desc(), {});
  const model::ModelRuntime::Outcome out = eq.run();
  EXPECT_FALSE(out.completed);
  // The short source's gated offer parked with no computed completion.
  EXPECT_FALSE(out.diagnostics.unresolved_gates.empty());
  for (const std::string& gate : out.diagnostics.unresolved_gates)
    EXPECT_NE(gate.find("@k="), std::string::npos);
}

// -------------------------------------------------- per-cell isolation ----

/// Workload that throws mid-run: token k=2's load query fails.
model::ArchitectureDesc throwing_desc() {
  model::ArchitectureDesc d;
  const auto p = d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e9);
  const auto a = d.add_rendezvous("A");
  const auto out = d.add_rendezvous("OUT");
  const auto f = d.add_function("work", p);
  d.fn_read(f, a);
  d.fn_execute(f, [](const model::TokenAttrs&, std::uint64_t k) -> std::int64_t {
    if (k == 2) throw std::runtime_error("boom");
    return 1000;
  });
  d.fn_write(f, out);
  const auto earliest = [](std::uint64_t k) {
    return TimePoint::at_ps(static_cast<std::int64_t>(k) * 1000);
  };
  const auto attrs = [](std::uint64_t) { return model::TokenAttrs{}; };
  d.add_source("src", a, 5, earliest, attrs);
  d.add_sink("sink", out);
  d.validate();
  return d;
}

study::Study acceptance_study() {
  gen::DidacticConfig big;
  big.tokens = 5000;
  study::Study st;
  st.add(study::Scenario("stall", stalling_desc()));
  st.add(study::Scenario("burn", gen::make_didactic(big)));
  st.add(study::Scenario("throw", throwing_desc()));
  st.add(study::Backend::baseline());
  st.add(study::Backend::equivalent());
  return st;
}

TEST(FailureIsolationTest, MatrixCompletesWithEveryFailureReported) {
  const study::Study st = acceptance_study();
  study::StudyOptions opts;
  opts.isolate_failures = true;
  opts.max_events = 500;  // trips in 'burn' long before 5000 tokens drain
  const study::Report rep = st.run(opts);
  ASSERT_EQ(rep.cells.size(), 6u);

  for (const study::Cell& c : rep.cells) {
    EXPECT_TRUE(c.failed) << c.scenario << "/" << c.backend;
    // Satellite: every failure names its cell.
    EXPECT_NE(c.error.find("scenario '" + c.scenario + "'"),
              std::string::npos)
        << c.error;
    EXPECT_NE(c.error.find("backend '" + c.backend + "'"), std::string::npos);
    EXPECT_NE(c.error.find("rep 0"), std::string::npos);
  }

  const study::Cell& stall = rep.at("stall", "baseline");
  ASSERT_NE(stall.diagnostics, nullptr);
  EXPECT_EQ(stall.diagnostics->stop, sim::StopReason::kIdle);
  EXPECT_FALSE(stall.diagnostics->parked_processes.empty());
  EXPECT_NE(stall.error.find("stalled"), std::string::npos);

  const study::Cell& stall_eq = rep.at("stall", "equivalent");
  ASSERT_NE(stall_eq.diagnostics, nullptr);
  EXPECT_FALSE(stall_eq.diagnostics->unresolved_gates.empty());

  const study::Cell& burn = rep.at("burn", "baseline");
  ASSERT_NE(burn.diagnostics, nullptr);
  EXPECT_EQ(burn.diagnostics->stop, sim::StopReason::kBudget);
  EXPECT_EQ(burn.diagnostics->events_processed, 500u);
  EXPECT_NE(burn.error.find("event budget exhausted"), std::string::npos);

  EXPECT_NE(rep.at("throw", "baseline").error.find("boom"),
            std::string::npos);
  EXPECT_NE(rep.at("throw", "equivalent").error.find("boom"),
            std::string::npos);

  // Failed reference cells disable the scenario's comparisons: ratios stay
  // at their unknown defaults.
  EXPECT_EQ(stall_eq.speedup_vs_reference, 0.0);
  EXPECT_FALSE(stall_eq.errors.has_value());

  // Report renderings flag the failures.
  EXPECT_NE(rep.to_string().find("FAILED"), std::string::npos);
  EXPECT_NE(rep.to_json().find("\"status\":\"failed\""), std::string::npos);
}

TEST(FailureIsolationTest, ReportIsByteIdenticalAtAnyThreadCount) {
  const study::Study st = acceptance_study();
  study::StudyOptions opts;
  opts.isolate_failures = true;
  opts.max_events = 500;
  opts.threads = 1;
  const std::string json1 = st.run(opts).to_json();
  opts.threads = 2;
  const std::string json2 = st.run(opts).to_json();
  opts.threads = 8;
  const std::string json8 = st.run(opts).to_json();
  // Every cell fails deterministically (stall/budget/throw), so the whole
  // document — wall times included — is byte-stable across thread counts.
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(json1, json8);
  EXPECT_NE(json1.find("\"status\":\"failed\""), std::string::npos);
}

TEST(FailureIsolationTest, WithoutIsolationTheFirstFailureThrows) {
  const study::Study st = acceptance_study();
  study::StudyOptions opts;
  opts.max_events = 500;
  EXPECT_THROW((void)st.run(opts), SimulationError);
}

TEST(FailureIsolationTest, CancelledStudyReportsEveryCellCancelled) {
  const study::Study st = acceptance_study();
  util::CancelToken cancel;
  cancel.request_cancel();
  study::StudyOptions opts;
  opts.isolate_failures = true;
  opts.cancel = &cancel;
  const study::Report rep = st.run(opts);
  for (const study::Cell& c : rep.cells) {
    EXPECT_TRUE(c.failed);
    EXPECT_NE(c.error.find("cancelled"), std::string::npos) << c.error;
  }
}

// ------------------------------------------------------------- overflow ----

TEST(OverflowTest, ScalarOtimesThrowsOutOfLine) {
  const mp::Scalar huge = mp::Scalar::of(std::numeric_limits<std::int64_t>::max());
  EXPECT_THROW((void)(huge * mp::Scalar::of(1)), OverflowError);
  EXPECT_NO_THROW((void)(huge * mp::Scalar::eps()));  // ε absorbs
}

/// Offer instants near the top of the 64-bit picosecond range: the first
/// computed completion u ⊗ d overflows. Equivalent backend only — the
/// baseline would hit undefined TimePoint arithmetic instead of the
/// algebra's checked ⊗.
model::ArchitectureDesc overflowing_desc() {
  model::ArchitectureDesc d;
  const auto p = d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e9);
  const auto a = d.add_rendezvous("A");
  const auto out = d.add_rendezvous("OUT");
  const auto f = d.add_function("work", p);
  d.fn_read(f, a);
  d.fn_execute(f, model::constant_ops(1000));
  d.fn_write(f, out);
  const auto earliest = [](std::uint64_t) {
    return TimePoint::at_ps(std::numeric_limits<std::int64_t>::max() - 1000);
  };
  const auto attrs = [](std::uint64_t) { return model::TokenAttrs{}; };
  d.add_source("src", a, 3, earliest, attrs);
  d.add_sink("sink", out);
  d.validate();
  return d;
}

TEST(OverflowTest, PropagatesTypedThroughAStudyCell) {
  study::Study st;
  st.add(study::Scenario("overflow", overflowing_desc()));
  st.add(study::Backend::equivalent());

  // Without isolation the concrete type survives the context wrapping.
  EXPECT_THROW((void)st.run({}), OverflowError);

  study::StudyOptions opts;
  opts.isolate_failures = true;
  const study::Report rep = st.run(opts);
  const study::Cell& c = rep.at("overflow", "equivalent");
  EXPECT_TRUE(c.failed);
  EXPECT_NE(c.error.find("otimes overflow"), std::string::npos) << c.error;
  EXPECT_NE(c.error.find("scenario 'overflow'"), std::string::npos);
}

// -------------------------------------------------------- error context ----

TEST(ErrorContextTest, RethrowWithContextPreservesTypesAndDiagnostics) {
  try {
    try {
      throw OverflowError("ovf");
    } catch (...) {
      rethrow_with_context("ctx");
    }
  } catch (const OverflowError& e) {
    EXPECT_STREQ(e.what(), "ctx: ovf");
  }

  const auto diag = std::make_shared<const sim::RunDiagnostics>();
  try {
    try {
      throw SimulationError("stall", diag);
    } catch (...) {
      rethrow_with_context("ctx");
    }
  } catch (const SimulationError& e) {
    EXPECT_STREQ(e.what(), "ctx: stall");
    EXPECT_EQ(e.diagnostics(), diag);
  }

  try {
    try {
      throw std::runtime_error("raw");
    } catch (...) {
      rethrow_with_context("ctx");
    }
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "ctx: raw");
  }
}

}  // namespace
}  // namespace maxev
