#include <gtest/gtest.h>

#include <algorithm>

#include "gen/didactic.hpp"
#include "model/baseline.hpp"
#include "model/desc.hpp"
#include "model/load.hpp"
#include "util/error.hpp"

namespace maxev::model {
namespace {

using namespace maxev::literals;

TokenAttrs attrs_of_size(std::int64_t size) {
  TokenAttrs a;
  a.size = size;
  return a;
}

// ---------------------------------------------------------------------------
// Load expressions
// ---------------------------------------------------------------------------

TEST(LoadTest, ConstantOps) {
  const LoadFn f = constant_ops(500);
  EXPECT_EQ(f(attrs_of_size(10), 0), 500);
  EXPECT_EQ(f(attrs_of_size(99), 7), 500);
  EXPECT_THROW(constant_ops(-1), DescriptionError);
}

TEST(LoadTest, LinearOps) {
  const LoadFn f = linear_ops(100, 3);
  EXPECT_EQ(f(attrs_of_size(10), 0), 130);
  EXPECT_EQ(f(attrs_of_size(0), 0), 100);
}

TEST(LoadTest, ParamOps) {
  TokenAttrs a;
  a.params[1] = 4.0;
  EXPECT_EQ(param_ops(10, 2.5, 1)(a, 0), 20);
  EXPECT_THROW(param_ops(0, 1.0, 9), DescriptionError);
}

TEST(LoadTest, CyclicOps) {
  const LoadFn f = cyclic_ops({10, 20, 30});
  EXPECT_EQ(f({}, 0), 10);
  EXPECT_EQ(f({}, 4), 20);
  EXPECT_THROW(cyclic_ops({}), DescriptionError);
}

TEST(ResourceTest, DurationForOps) {
  ResourceDesc r{"P", ResourcePolicy::kConcurrent, 1e9};  // 1 op / ns
  EXPECT_EQ(r.duration_for(1000), 1_us);
  EXPECT_EQ(r.duration_for(0), Duration::ps(0));
  EXPECT_EQ(r.duration_for(-5), Duration::ps(0));
  // 1e12 ops/s => 1 op = 1 ps: handy for exact hand calculations.
  ResourceDesc ps_res{"Q", ResourcePolicy::kConcurrent, 1e12};
  EXPECT_EQ(ps_res.duration_for(7), Duration::ps(7));
}

// ---------------------------------------------------------------------------
// Description validation
// ---------------------------------------------------------------------------

ArchitectureDesc minimal_desc() {
  ArchitectureDesc d;
  const auto r = d.add_resource("P", ResourcePolicy::kConcurrent, 1e9);
  const auto in = d.add_rendezvous("in");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("F", r);
  d.fn_read(f, in);
  d.fn_execute(f, constant_ops(100));
  d.fn_write(f, out);
  d.add_source("src", in, 10,
               [](std::uint64_t) { return TimePoint::origin(); },
               [](std::uint64_t) { return TokenAttrs{}; });
  d.add_sink("snk", out);
  return d;
}

TEST(DescTest, MinimalValidates) {
  ArchitectureDesc d = minimal_desc();
  d.validate();
  EXPECT_TRUE(d.validated());
  EXPECT_EQ(d.total_source_tokens(), 10u);
  const auto& ep = d.endpoints(0);
  EXPECT_TRUE(ep.written_by_source());
  EXPECT_EQ(ep.reader_fn, 0);
}

TEST(DescTest, TwoWritersRejected) {
  ArchitectureDesc d = minimal_desc();
  const auto f2 = d.add_function("F2", 0);
  d.fn_read(f2, 1);   // read "out" (ok: currently only the sink reads it)...
  d.fn_write(f2, 0);  // ...but "in" already has the source as writer
  EXPECT_THROW(d.validate(), DescriptionError);
}

TEST(DescTest, TwoReadersRejected) {
  ArchitectureDesc d = minimal_desc();
  d.add_sink("snk2", 0);  // "in" already read by F
  EXPECT_THROW(d.validate(), DescriptionError);
}

TEST(DescTest, UnconnectedChannelRejected) {
  ArchitectureDesc d = minimal_desc();
  d.add_rendezvous("dangling");
  EXPECT_THROW(d.validate(), DescriptionError);
}

TEST(DescTest, EmptyFunctionRejected) {
  ArchitectureDesc d = minimal_desc();
  d.add_function("empty", 0);
  EXPECT_THROW(d.validate(), DescriptionError);
}

TEST(DescTest, BadIdsRejectedEagerly) {
  ArchitectureDesc d;
  EXPECT_THROW(d.add_function("F", 0), DescriptionError);  // no resources
  const auto r = d.add_resource("P", ResourcePolicy::kConcurrent, 1e9);
  EXPECT_THROW(d.add_resource("bad", ResourcePolicy::kConcurrent, 0.0),
               DescriptionError);
  const auto f = d.add_function("F", r);
  EXPECT_THROW(d.fn_read(f, 42), DescriptionError);
  EXPECT_THROW(d.fn_execute(f, nullptr), DescriptionError);
  EXPECT_THROW(d.add_fifo("f", 0), DescriptionError);
}

TEST(DescTest, ScheduleFollowsMappingOrder) {
  ArchitectureDesc d;
  const auto p = d.add_resource("P", ResourcePolicy::kSequentialCyclic, 1e9);
  const auto in = d.add_rendezvous("in");
  const auto mid = d.add_rendezvous("mid");
  const auto out = d.add_rendezvous("out");
  const auto fa = d.add_function("A", p);
  const auto fb = d.add_function("B", p);
  d.fn_read(fa, in);
  d.fn_write(fa, mid);
  d.fn_read(fb, mid);
  d.fn_write(fb, out);
  d.add_source("s", in, 1, [](std::uint64_t) { return TimePoint::origin(); },
               [](std::uint64_t) { return TokenAttrs{}; });
  d.add_sink("k", out);
  d.validate();
  EXPECT_EQ(d.schedule(p), (std::vector<FunctionId>{fa, fb}));
  EXPECT_EQ(d.schedule_position(fb), 1u);
}

TEST(DescTest, ExecuteLabelsAreUnique) {
  ArchitectureDesc d = minimal_desc();
  d.fn_execute(0, constant_ops(1));
  EXPECT_EQ(d.functions()[0].body[1].label, "F.e0");
  EXPECT_EQ(d.functions()[0].body[3].label, "F.e1");
}

// ---------------------------------------------------------------------------
// Baseline execution: hand-computed instants for the didactic example.
//
// Constant loads, 1e12 ops/s on both resources (1 op = 1 ps):
//   Ti1 = 5, Tj1 = 3, Ti2 = 4, Ti3 = 6, Tj3 = 2, Ti4 = 7 (ps)
// Source: u(k) = max(k * 4 ps, completion of offer k-1).
// Expected values follow the paper's equations (1)-(6).
// ---------------------------------------------------------------------------

ArchitectureDesc didactic_constant_loads(std::uint64_t tokens) {
  ArchitectureDesc d;
  const auto p1 = d.add_resource("P1", ResourcePolicy::kSequentialCyclic, 1e12);
  const auto p2 = d.add_resource("P2", ResourcePolicy::kConcurrent, 1e12);
  const auto m1 = d.add_rendezvous("M1");
  const auto m2 = d.add_rendezvous("M2");
  const auto m3 = d.add_rendezvous("M3");
  const auto m4 = d.add_rendezvous("M4");
  const auto m5 = d.add_rendezvous("M5");
  const auto m6 = d.add_rendezvous("M6");
  const auto f1 = d.add_function("F1", p1);
  const auto f2 = d.add_function("F2", p1);
  const auto f3 = d.add_function("F3", p2);
  const auto f4 = d.add_function("F4", p2);
  d.fn_read(f1, m1);
  d.fn_execute(f1, constant_ops(5));
  d.fn_write(f1, m2);
  d.fn_execute(f1, constant_ops(3));
  d.fn_write(f1, m3);
  d.fn_read(f2, m3);
  d.fn_execute(f2, constant_ops(4));
  d.fn_write(f2, m4);
  d.fn_read(f3, m2);
  d.fn_execute(f3, constant_ops(6));
  d.fn_read(f3, m4);
  d.fn_execute(f3, constant_ops(2));
  d.fn_write(f3, m5);
  d.fn_read(f4, m5);
  d.fn_execute(f4, constant_ops(7));
  d.fn_write(f4, m6);
  d.add_source("F0", m1, tokens,
               [](std::uint64_t k) {
                 return TimePoint::at_ps(static_cast<std::int64_t>(4 * k));
               },
               [](std::uint64_t) { return TokenAttrs{}; });
  d.add_sink("env", m6);
  d.validate();
  return d;
}

/// The paper's equations (1)-(6) evaluated directly, with the source rule
/// u(k) = max(4k, xM1(k-1)) and pre-history 0.
struct HandComputed {
  std::vector<std::int64_t> m1, m2, m3, m4, m5, m6;
  explicit HandComputed(std::size_t n) {
    std::int64_t pm1 = 0, pm4 = 0, pm5 = 0, pm6 = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const std::int64_t u = std::max<std::int64_t>(4 * k, pm1);
      const std::int64_t x1 = std::max(u, pm4);
      const std::int64_t x2 = std::max(x1 + 5, pm5);
      const std::int64_t x3 = std::max(x2 + 3, pm4);
      const std::int64_t x4 = std::max({x3 + 4, x2 + 6, pm5});
      const std::int64_t x5 = std::max(x4 + 2, pm6);
      const std::int64_t x6 = x5 + 7;
      m1.push_back(x1);
      m2.push_back(x2);
      m3.push_back(x3);
      m4.push_back(x4);
      m5.push_back(x5);
      m6.push_back(x6);
      pm1 = x1;
      pm4 = x4;
      pm5 = x5;
      pm6 = x6;
    }
  }
};

TEST(BaselineTest, DidacticInstantsMatchPaperEquations) {
  const std::size_t n = 50;
  ArchitectureDesc d = didactic_constant_loads(n);
  ModelRuntime rt(d);
  const auto outcome = rt.run();
  ASSERT_TRUE(outcome.completed) << outcome.stall_report;

  const HandComputed expected(n);
  const char* names[] = {"M1", "M2", "M3", "M4", "M5", "M6"};
  const std::vector<std::int64_t>* cols[] = {&expected.m1, &expected.m2,
                                             &expected.m3, &expected.m4,
                                             &expected.m5, &expected.m6};
  for (int c = 0; c < 6; ++c) {
    const trace::InstantSeries* s = rt.instants().find(names[c]);
    ASSERT_NE(s, nullptr) << names[c];
    ASSERT_EQ(s->size(), n) << names[c];
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(s->values()[k].count(), (*cols[c])[k])
          << names[c] << " at k=" << k;
    }
  }
}

TEST(BaselineTest, DidacticUsageIntervalsMatchDurations) {
  ArchitectureDesc d = didactic_constant_loads(10);
  ModelRuntime rt(d);
  ASSERT_TRUE(rt.run().completed);
  const trace::UsageTrace* p1 = rt.usage().find("P1");
  ASSERT_NE(p1, nullptr);
  // F1 contributes 2 intervals (5 ps, 3 ps) and F2 one (4 ps) per iteration.
  EXPECT_EQ(p1->size(), 30u);
  EXPECT_EQ(p1->busy_time().count(), 10 * (5 + 3 + 4));
  const trace::UsageTrace* p2 = rt.usage().find("P2");
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->busy_time().count(), 10 * (6 + 2 + 7));
}

TEST(BaselineTest, SequentialResourceNeverOverlaps) {
  gen::DidacticConfig cfg;
  cfg.tokens = 200;
  ArchitectureDesc d = gen::make_didactic(cfg);
  ModelRuntime rt(d);
  ASSERT_TRUE(rt.run().completed);
  const trace::UsageTrace* p1 = rt.usage().find("P1");
  ASSERT_NE(p1, nullptr);
  trace::UsageTrace sorted = *p1;
  sorted.sort();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted.intervals()[i - 1].end.count(),
              sorted.intervals()[i].start.count())
        << "overlap at interval " << i;
  }
}

TEST(BaselineTest, PeriodicSourceRespectsEarliest) {
  gen::DidacticConfig cfg;
  cfg.tokens = 20;
  cfg.source_period = 1_ms;  // far slower than the pipeline
  ArchitectureDesc d = gen::make_didactic(cfg);
  ModelRuntime rt(d);
  ASSERT_TRUE(rt.run().completed);
  const trace::InstantSeries* m1 = rt.instants().find("M1");
  ASSERT_NE(m1, nullptr);
  for (std::size_t k = 0; k < m1->size(); ++k) {
    EXPECT_EQ(m1->values()[k].count(),
              static_cast<std::int64_t>(k) * (1_ms).count());
  }
}

TEST(BaselineTest, StallReportedWhenSinkMissingTokens) {
  // A slow sink with a time horizon: the run is cut short and reported
  // incomplete (not a stall in the error sense, but not completed either).
  ArchitectureDesc d = minimal_desc();
  d.validate();
  ModelRuntime rt(d);
  const auto outcome = rt.run(TimePoint::origin());  // zero-time horizon
  EXPECT_FALSE(outcome.completed);
  EXPECT_FALSE(outcome.idle);
}

TEST(BaselineTest, RelationEventsCountAllTransfers) {
  ArchitectureDesc d = didactic_constant_loads(10);
  ModelRuntime rt(d);
  ASSERT_TRUE(rt.run().completed);
  // 6 rendezvous channels x 10 tokens.
  EXPECT_EQ(rt.relation_events(), 60u);
  EXPECT_EQ(rt.sink_received(0), 10u);
}

TEST(BaselineTest, UnvalidatedDescRejected) {
  ArchitectureDesc d = minimal_desc();
  EXPECT_THROW(ModelRuntime rt(d), DescriptionError);
}

// ----------------------------------------- Structural equality contract

TEST(StructuralEqualityTest, EqualDescriptionsHashAndCompareEqual) {
  const ArchitectureDesc a = gen::make_didactic({});
  const ArchitectureDesc b = gen::make_didactic({});
  EXPECT_TRUE(structurally_equal(a, b));
  EXPECT_TRUE(structurally_equal(a, a));
  EXPECT_EQ(structural_hash(a), structural_hash(b));
}

TEST(StructuralEqualityTest, StructuralDifferencesAreDetected) {
  const ArchitectureDesc base = gen::make_didactic({});

  gen::DidacticConfig tokens_cfg;
  tokens_cfg.tokens = 7;  // source token counts ARE structural
  const ArchitectureDesc tokens = gen::make_didactic(tokens_cfg);
  EXPECT_FALSE(structurally_equal(base, tokens));
  EXPECT_NE(structural_hash(base), structural_hash(tokens));

  gen::DidacticConfig sched_cfg;
  sched_cfg.p2_limited_concurrency = true;  // a resource policy change
  const ArchitectureDesc sched = gen::make_didactic(sched_cfg);
  EXPECT_FALSE(structurally_equal(base, sched));
  EXPECT_NE(structural_hash(base), structural_hash(sched));
}

TEST(StructuralEqualityTest, OpaqueWorkloadsAreOutsideTheSurface) {
  // Two descriptions that differ ONLY in their execute-load expressions
  // are structurally equal: the std::function members are not comparable,
  // which is exactly why batching additionally requires shared ownership
  // (docs/DESIGN.md §10).
  const auto build = [](std::int64_t ops) {
    ArchitectureDesc d;
    const ResourceId r =
        d.add_resource("P", ResourcePolicy::kSequentialCyclic, 1e9);
    const ChannelId in = d.add_rendezvous("in");
    const ChannelId out = d.add_rendezvous("out");
    const FunctionId f = d.add_function("F", r);
    d.fn_read(f, in);
    d.fn_execute(f, constant_ops(ops));
    d.fn_write(f, out);
    d.add_source("src", in, 5, [](std::uint64_t k) {
      return TimePoint::origin() + Duration::us(static_cast<std::int64_t>(k));
    }, [](std::uint64_t) { return TokenAttrs{}; });
    d.add_sink("snk", out);
    d.validate();
    return d;
  };
  const ArchitectureDesc light = build(100);
  const ArchitectureDesc heavy = build(100000);
  EXPECT_TRUE(structurally_equal(light, heavy));
  EXPECT_EQ(structural_hash(light), structural_hash(heavy));
}

TEST(BaselineTest, P2LimitedConcurrencyVariantRuns) {
  gen::DidacticConfig cfg;
  cfg.tokens = 100;
  cfg.p2_limited_concurrency = true;
  ArchitectureDesc d = gen::make_didactic(cfg);
  ModelRuntime rt(d);
  const auto outcome = rt.run();
  ASSERT_TRUE(outcome.completed) << outcome.stall_report;
  // With P2 sequential too, F3/F4 never overlap.
  trace::UsageTrace p2 = *rt.usage().find("P2");
  p2.sort();
  for (std::size_t i = 1; i < p2.size(); ++i)
    EXPECT_LE(p2.intervals()[i - 1].end.count(),
              p2.intervals()[i].start.count());
}

}  // namespace
}  // namespace maxev::model
