#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "gen/random_arch.hpp"
#include "tdg/derive.hpp"
#include "tdg/engine.hpp"
#include "tdg/simplify.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"

/// The compiled execution representation (tdg::Engine's CSR/SoA program,
/// docs/DESIGN.md §7) must be an invisible optimization: across random
/// architectures, (a) the equivalent model still reproduces the baseline's
/// instant and usage traces bit-exactly, and (b) the engine's observable
/// behaviour — traces, values and cost counters — is invariant to frame
/// pruning (set_retain_floor) and to the arrival order of token attributes
/// relative to external instants.

namespace maxev::tdg {
namespace {

struct ReplayResult {
  trace::InstantTraceSet instants;
  trace::UsageTraceSet usage;
  std::vector<std::int64_t> offers;  // output offer instants, per (output, k)
  std::uint64_t computed = 0;
  std::uint64_t arc_terms = 0;
};

/// Drive a standalone engine over the derived full-group TDG with
/// deterministic synthetic external feeds. \p attrs_first feeds token
/// attributes before the external instants of each iteration (the reverse
/// models attrs arriving late); \p prune raises the retain floor every
/// iteration (smallest legal window) instead of retaining everything.
void replay(const model::ArchitectureDesc& desc, bool attrs_first, bool prune,
            std::uint64_t tokens, ReplayResult& rr) {
  DerivedTdg derived = derive_full_tdg(desc);
  Graph g = fold_pass_through(derived.graph);
  g.freeze();

  Engine::Options opts;
  opts.instant_sink = &rr.instants;
  opts.usage_sink = &rr.usage;
  opts.expected_iterations = tokens;
  Engine eng(g, opts);

  struct Feed {
    NodeId node = kNoNode;
    std::int64_t period_ps = 0;
    model::SourceId provenance = 0;
  };
  std::vector<Feed> feeds;
  for (std::size_t i = 0; i < derived.inputs.size(); ++i) {
    const BoundaryInput& bi = derived.inputs[i];
    const std::string& name = bi.fifo ? bi.xw_node : bi.u_node;
    const NodeId n = g.find(name);
    EXPECT_NE(n, kNoNode) << "input node " << name;
    feeds.push_back({n, 1'700'000 + static_cast<std::int64_t>(i) * 311'000,
                     bi.provenance});
  }
  struct Out {
    NodeId offer = kNoNode;
    NodeId actual = kNoNode;
    NodeId xr_actual = kNoNode;
  };
  std::vector<Out> outs;
  for (const BoundaryOutput& bo : derived.outputs) {
    Out o;
    o.offer = g.find(bo.offer_node);
    EXPECT_NE(o.offer, kNoNode);
    if (!bo.actual_node.empty()) o.actual = g.find(bo.actual_node);
    if (!bo.xr_actual_node.empty()) o.xr_actual = g.find(bo.xr_actual_node);
    if (o.actual == o.offer) o.actual = kNoNode;
    outs.push_back(o);
  }

  for (std::uint64_t k = 0; k < tokens; ++k) {
    const auto feed_attrs = [&] {
      for (model::SourceId s = 0;
           s < static_cast<model::SourceId>(desc.sources().size()); ++s)
        eng.set_attrs(s, k, desc.sources()[static_cast<std::size_t>(s)].attrs(k));
    };
    const auto feed_externals = [&] {
      for (const Feed& f : feeds) {
        eng.set_external(
            f.node, k,
            TimePoint::at_ps(static_cast<std::int64_t>(k) * f.period_ps));
      }
    };
    if (attrs_first) {
      feed_attrs();
      feed_externals();
    } else {
      feed_externals();
      feed_attrs();
    }

    // Every output offer is now determined; feed back synthetic "actual"
    // completions (a slow environment) so history arcs stay exercised.
    for (const Out& o : outs) {
      const auto y = eng.value(o.offer, k);
      ASSERT_TRUE(y.has_value()) << "offer not computed at k=" << k;
      rr.offers.push_back(y->count());
      TimePoint actual_t = *y + Duration::ns(5 + static_cast<std::int64_t>(k % 7));
      if (o.actual != kNoNode) eng.set_external(o.actual, k, actual_t);
      if (o.xr_actual != kNoNode)
        eng.set_external(o.xr_actual, k, actual_t + Duration::ns(3));
    }
    if (prune) eng.set_retain_floor(k + 1);
  }
  rr.computed = eng.instances_computed();
  rr.arc_terms = eng.arc_terms_evaluated();
}

class CompiledEngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledEngineProperty, BaselineTracesReproduced) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 40;
  const model::ArchitectureDesc desc =
      gen::make_random_architecture(GetParam(), cfg);
  core::ExperimentOptions opts;
  opts.repetitions = 1;
  const core::Comparison cmp = core::run_comparison(desc, opts);
  EXPECT_TRUE(cmp.baseline.completed);
  EXPECT_TRUE(cmp.equivalent.completed);
  EXPECT_EQ(cmp.instant_mismatch, std::nullopt) << "seed " << GetParam();
  EXPECT_EQ(cmp.usage_mismatch, std::nullopt) << "seed " << GetParam();
}

TEST_P(CompiledEngineProperty, InvariantUnderPruningAndAttrArrivalOrder) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 40;
  const model::ArchitectureDesc desc =
      gen::make_random_architecture(GetParam(), cfg);

  ReplayResult ref;
  replay(desc, /*attrs_first=*/true, /*prune=*/false, cfg.tokens, ref);
  EXPECT_GT(ref.computed, 0u);
  for (const bool attrs_first : {true, false}) {
    for (const bool prune : {true, false}) {
      if (attrs_first && !prune) continue;  // the reference itself
      ReplayResult var;
      replay(desc, attrs_first, prune, cfg.tokens, var);
      const std::string ctx = std::string("seed ") +
                              std::to_string(GetParam()) +
                              (attrs_first ? " attrs-first" : " attrs-late") +
                              (prune ? " prune" : " retain");

      // Bit-identical observation traces in both directions.
      EXPECT_EQ(trace::compare_instants(ref.instants, var.instants),
                std::nullopt) << ctx;
      EXPECT_EQ(trace::compare_instants(var.instants, ref.instants),
                std::nullopt) << ctx;
      trace::UsageTraceSet a = ref.usage;
      trace::UsageTraceSet b = var.usage;
      a.sort_all();
      b.sort_all();
      EXPECT_EQ(trace::compare_usage(a, b), std::nullopt) << ctx;
      EXPECT_EQ(trace::compare_usage(b, a), std::nullopt) << ctx;

      // Identical boundary outputs and cost counters: the representation
      // switch and the drive order must not change what (or how much) the
      // engine computes.
      EXPECT_EQ(ref.offers, var.offers) << ctx;
      EXPECT_EQ(ref.computed, var.computed) << ctx;
      EXPECT_EQ(ref.arc_terms, var.arc_terms) << ctx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledEngineProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace maxev::tdg
