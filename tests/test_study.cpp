#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/equivalent_model.hpp"
#include "core/experiment.hpp"
#include "core/lt_runner.hpp"
#include "gen/didactic.hpp"
#include "gen/random_arch.hpp"
#include "lte/receiver.hpp"
#include "model/baseline.hpp"
#include "study/study.hpp"
#include "util/error.hpp"

/// The study front-end: value-semantic scenarios, the unified backend/Model
/// interface, matrix execution with a reference backend, multi-instance
/// composition in one kernel, and the Report writers.

namespace maxev::study {
namespace {

using namespace maxev::literals;

model::ArchitectureDesc small_didactic(std::uint64_t tokens = 25) {
  gen::DidacticConfig cfg;
  cfg.tokens = tokens;
  return gen::make_didactic(cfg);
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------- Scenario

TEST(ScenarioTest, CopiesShareTheDescription) {
  Scenario a("didactic", small_didactic());
  Scenario b = a;
  EXPECT_EQ(&a.desc(), &b.desc());
  EXPECT_EQ(b.name(), "didactic");
  EXPECT_FALSE(a.composed());
}

TEST(ScenarioTest, TemporariesAreSafe) {
  // The scenario (and the model it spawns) own the description: no
  // dangling references, no deleted-overload workaround needed.
  auto model =
      Backend::baseline().instantiate(Scenario("tmp", small_didactic(10)));
  EXPECT_TRUE(model->run().completed);
}

TEST(ScenarioTest, FluentOptions) {
  Scenario s("s", small_didactic());
  s.with_group({true, true, false, false})
      .with_fold(false)
      .with_pad_nodes(3)
      .with_expected_iterations(99);
  EXPECT_EQ(s.options().group, (std::vector<bool>{true, true, false, false}));
  EXPECT_FALSE(s.options().fold);
  EXPECT_EQ(s.options().pad_nodes, 3u);
  EXPECT_EQ(s.options().expected_iterations, 99u);
}

TEST(ScenarioTest, UnvalidatedDescriptionIsValidated) {
  model::ArchitectureDesc d;
  const auto r = d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e9);
  const auto in = d.add_rendezvous("in");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("F", r);
  d.fn_read(f, in);
  d.fn_execute(f, model::linear_ops(10, 1));
  d.fn_write(f, out);
  d.add_source("s", in, 5, [](std::uint64_t) { return TimePoint::origin(); },
               [](std::uint64_t) { return model::TokenAttrs{}; });
  d.add_sink("k", out);
  // No d.validate() — Scenario construction validates.
  Scenario s("raw", std::move(d));
  EXPECT_TRUE(s.desc().validated());
}

// ----------------------------------------------------- Backend equivalence

// Study-built models must produce traces identical to the directly
// constructed model classes they wrap.
TEST(BackendTest, BaselineMatchesDirectModelRuntime) {
  const auto desc = model::share(small_didactic());
  auto m = Backend::baseline().instantiate(Scenario("d", desc));
  ASSERT_TRUE(m->run().completed);

  model::ModelRuntime direct(desc);
  ASSERT_TRUE(direct.run().completed);

  EXPECT_EQ(trace::compare_instants(direct.instants(), m->instants()),
            std::nullopt);
  EXPECT_EQ(trace::compare_instants(m->instants(), direct.instants()),
            std::nullopt);
  EXPECT_EQ(trace::compare_usage(direct.usage(), m->usage()), std::nullopt);
  EXPECT_EQ(m->kernel_stats().events_scheduled,
            direct.kernel_stats().events_scheduled);
  EXPECT_EQ(m->relation_events(), direct.relation_events());
  EXPECT_EQ(m->end_time(), direct.end_time());
}

TEST(BackendTest, EquivalentMatchesDirectEquivalentModel) {
  const auto desc = model::share(small_didactic());
  auto m = Backend::equivalent().instantiate(Scenario("d", desc));
  ASSERT_TRUE(m->run().completed);

  core::EquivalentModel direct(desc, {});
  ASSERT_TRUE(direct.run().completed);

  EXPECT_EQ(trace::compare_instants(direct.instants(), m->instants()),
            std::nullopt);
  EXPECT_EQ(trace::compare_usage(direct.usage(), m->usage()), std::nullopt);
  EXPECT_EQ(m->instances_computed(), direct.engine().instances_computed());
  EXPECT_EQ(m->graph_shape().nodes, direct.graph().node_count());
  EXPECT_EQ(m->graph_shape().paper_nodes, direct.graph().paper_node_count());
}

TEST(BackendTest, LooselyTimedMatchesDirectRunner) {
  const auto desc = model::share(small_didactic());
  auto m = Backend::loosely_timed(10_us).instantiate(Scenario("d", desc));
  ASSERT_TRUE(m->run().completed);

  core::LooselyTimedModel direct(desc, 10_us);
  ASSERT_TRUE(direct.run().completed);

  EXPECT_EQ(trace::compare_instants(direct.instants(), m->instants()),
            std::nullopt);
  EXPECT_EQ(m->end_time(), direct.end_time());
  EXPECT_EQ(m->usage().all().size(), 0u);  // LT records no resource usage
  EXPECT_EQ(m->relation_events(), 0u);
}

TEST(BackendTest, NamesIdentifyBackends) {
  EXPECT_EQ(Backend::baseline().name(), "baseline");
  EXPECT_EQ(Backend::equivalent().name(), "equivalent");
  EXPECT_EQ(Backend::loosely_timed(10_us).name(), "lt(10us)");
  EXPECT_EQ(Backend::baseline().kind(), Backend::Kind::kBaseline);
}

TEST(BackendTest, EquivalentHonorsScenarioGroup) {
  const auto desc = model::share(small_didactic());
  Scenario s("partial", desc);
  std::vector<bool> group(desc->functions().size(), false);
  group[2] = group[3] = true;  // abstract F3+F4 only
  s.with_group(group);
  auto m = Backend::equivalent().instantiate(s);
  ASSERT_TRUE(m->run().completed);

  core::EquivalentModel direct(desc, group);
  ASSERT_TRUE(direct.run().completed);
  EXPECT_EQ(trace::compare_instants(direct.instants(), m->instants()),
            std::nullopt);
  EXPECT_EQ(m->kernel_stats().events_scheduled,
            direct.kernel_stats().events_scheduled);
}

// ------------------------------------------------------------------ Study

TEST(StudyTest, MatrixShapeAndReference) {
  Study st;
  st.add(Scenario("didactic", small_didactic()));
  st.add(Backend::baseline());
  st.add(Backend::equivalent());
  st.add(Backend::loosely_timed(10_us));
  const Report rep = st.run();

  ASSERT_EQ(rep.cells.size(), 3u);
  EXPECT_EQ(rep.reference_backend, "baseline");
  EXPECT_EQ(rep.scenarios, (std::vector<std::string>{"didactic"}));
  ASSERT_NE(rep.find("didactic", "baseline"), nullptr);
  EXPECT_TRUE(rep.find("didactic", "baseline")->is_reference);

  const Cell* eq = rep.find("didactic", "equivalent");
  ASSERT_NE(eq, nullptr);
  ASSERT_TRUE(eq->errors.has_value());
  EXPECT_TRUE(eq->errors->exact());
  EXPECT_EQ(eq->errors->max_abs_seconds, 0.0);
  EXPECT_GT(eq->event_ratio_vs_reference, 2.0);
  EXPECT_GT(eq->speedup_vs_reference, 0.0);

  const Cell* lt = rep.find("didactic", "lt(10us)");
  ASSERT_NE(lt, nullptr);
  ASSERT_TRUE(lt->errors.has_value());
  // The coarse quantum is approximate: usage is absent and instants drift.
  EXPECT_FALSE(lt->errors->exact());
  EXPECT_GT(lt->errors->instants_compared, 0u);
  EXPECT_GT(lt->errors->max_abs_seconds, 0.0);
}

TEST(StudyTest, ReferenceCanBeReassigned) {
  Study st;
  st.add(Scenario("didactic", small_didactic()));
  st.add(Backend::equivalent());
  st.add(Backend::baseline());
  st.reference("baseline");
  const Report rep = st.run();
  EXPECT_EQ(rep.reference_backend, "baseline");
  EXPECT_TRUE(rep.find("didactic", "baseline")->is_reference);
  EXPECT_FALSE(rep.find("didactic", "equivalent")->is_reference);
  // Insertion order preserved in the cell list.
  EXPECT_EQ(rep.cells[0].backend, "equivalent");
  EXPECT_EQ(rep.cells[1].backend, "baseline");
  EXPECT_THROW(st.reference("no-such-backend"), Error);
}

TEST(StudyTest, EmptyMatrixAndBadOptionsRejected) {
  Study st;
  EXPECT_THROW((void)st.run(), Error);
  st.add(Scenario("d", small_didactic(5)));
  EXPECT_THROW((void)st.run(), Error);  // no backends
  st.add(Backend::baseline());
  StudyOptions opts;
  opts.repetitions = 0;
  EXPECT_THROW((void)st.run(opts), Error);
}

TEST(StudyTest, DuplicateNamesRejected) {
  Study st;
  st.add(Scenario("d", small_didactic(5)));
  EXPECT_THROW(st.add(Scenario("d", small_didactic(5))), DescriptionError);
  st.add(Backend::loosely_timed(10_us));
  // Same quantum => same identity name "lt(10us)".
  EXPECT_THROW(st.add(Backend::loosely_timed(10_us)), DescriptionError);
  st.add(Backend::loosely_timed(20_us));  // distinct name is fine
}

TEST(StudyTest, ObserveOffSkipsComparisons) {
  Study st;
  st.add(Scenario("d", small_didactic()));
  st.add(Backend::baseline());
  st.add(Backend::equivalent());
  StudyOptions opts;
  opts.observe = false;
  const Report rep = st.run(opts);
  EXPECT_FALSE(rep.find("d", "equivalent")->errors.has_value());
}

TEST(BackendTest, ObserveOffRecordsNothingOnEveryBackend) {
  const Scenario s("d", small_didactic(10));
  RunConfig rc;
  rc.observe = false;
  for (const Backend& b : {Backend::baseline(), Backend::equivalent(),
                           Backend::loosely_timed(10_us)}) {
    auto m = b.instantiate(s, rc);
    ASSERT_TRUE(m->run().completed) << b.name();
    EXPECT_EQ(m->instants().total_instants(), 0u) << b.name();
    EXPECT_EQ(m->usage().all().size(), 0u) << b.name();
  }
}

TEST(StudyTest, KeepTracesRetainsObservations) {
  Study st;
  st.add(Scenario("d", small_didactic()));
  st.add(Backend::baseline());
  st.add(Backend::equivalent());
  StudyOptions opts;
  opts.keep_traces = true;
  const Report rep = st.run(opts);
  for (const char* backend : {"baseline", "equivalent"}) {
    const Cell* c = rep.find("d", backend);
    ASSERT_NE(c->instants, nullptr) << backend;
    ASSERT_NE(c->usage, nullptr) << backend;
    EXPECT_GT(c->instants->total_instants(), 0u) << backend;
  }
  // Off by default: reports stay lightweight.
  const Report bare = st.run();
  EXPECT_EQ(bare.find("d", "equivalent")->instants, nullptr);
  EXPECT_EQ(bare.find("d", "equivalent")->usage, nullptr);
}

TEST(BackendTest, LooselyTimedHonorsHorizon) {
  gen::DidacticConfig cfg;
  cfg.tokens = 1000;
  cfg.source_period = 1_us;
  auto m = Backend::loosely_timed(Duration::ns(100))
               .instantiate(Scenario("d", gen::make_didactic(cfg)));
  const Outcome cut = m->run(TimePoint::origin() + 10_us);
  EXPECT_FALSE(cut.completed);
  // Same uniform contract as the other backends: resuming without a
  // horizon drains the run to completion.
  EXPECT_TRUE(m->run().completed);
}

TEST(StudyTest, MultiScenarioMatrix) {
  Study st;
  st.add(Scenario("t25", small_didactic(25)));
  st.add(Scenario("t50", small_didactic(50)));
  st.add(Backend::baseline());
  st.add(Backend::equivalent());
  const Report rep = st.run();
  ASSERT_EQ(rep.cells.size(), 4u);
  // Scenario-major order.
  EXPECT_EQ(rep.cells[0].scenario, "t25");
  EXPECT_EQ(rep.cells[2].scenario, "t50");
  EXPECT_TRUE(rep.find("t25", "equivalent")->errors->exact());
  EXPECT_TRUE(rep.find("t50", "equivalent")->errors->exact());
  EXPECT_GT(rep.find("t50", "baseline")->metrics.relation_events,
            rep.find("t25", "baseline")->metrics.relation_events);
}

// ------------------------------------------------------------ Composition

TEST(ComposeTest, MergedDescriptionIsNamespaced) {
  std::vector<Scenario> parts;
  parts.emplace_back("a", small_didactic(10));
  parts.emplace_back("b", small_didactic(20));
  const Scenario c = compose("pair", parts);

  ASSERT_TRUE(c.composed());
  ASSERT_EQ(c.instances().size(), 2u);
  EXPECT_EQ(c.desc().functions().size(), 8u);
  EXPECT_EQ(c.desc().channels().size(), 12u);
  EXPECT_EQ(c.desc().resources().size(), 4u);
  EXPECT_EQ(c.desc().functions()[0].name, "a/F1");
  EXPECT_EQ(c.desc().functions()[4].name, "b/F1");
  EXPECT_EQ(c.desc().channels()[0].name, "a/M1");
  EXPECT_EQ(c.instances()[1].fn_begin, 4u);
  EXPECT_EQ(c.instances()[1].fn_end, 8u);
  // Schedule order on each instance's sequential resource is preserved.
  EXPECT_EQ(c.desc().schedule(c.desc().functions()[0].resource),
            (std::vector<model::FunctionId>{0, 1}));
  EXPECT_EQ(c.desc().schedule(c.desc().functions()[4].resource),
            (std::vector<model::FunctionId>{4, 5}));
}

TEST(ComposeTest, DuplicateOrEmptyInstancesRejected) {
  std::vector<Scenario> parts;
  EXPECT_THROW(compose("none", parts), DescriptionError);
  parts.emplace_back("x", small_didactic(5));
  parts.emplace_back("x", small_didactic(5));
  EXPECT_THROW(compose("dup", parts), DescriptionError);
}

TEST(ComposeTest, BadInstanceNamesRejected) {
  // '/' is the namespace separator: "a" would swallow "a/b"'s traces.
  std::vector<Scenario> parts;
  parts.emplace_back("a", small_didactic(5));
  parts.emplace_back("a/b", small_didactic(5));
  EXPECT_THROW(compose("nested", parts), DescriptionError);

  std::vector<Scenario> unnamed;
  unnamed.emplace_back("", small_didactic(5));
  EXPECT_THROW(compose("anon", unnamed), DescriptionError);
}

TEST(ComposeTest, DisagreeingGraphOptionsRejected) {
  std::vector<Scenario> parts;
  parts.emplace_back("a", small_didactic(5));
  Scenario b("b", small_didactic(5));
  b.with_fold(false);
  parts.push_back(b);
  EXPECT_THROW(compose("mixed_fold", parts), DescriptionError);

  parts[1] = Scenario("b", small_didactic(5)).with_pad_nodes(4);
  EXPECT_THROW(compose("mixed_pad", parts), DescriptionError);
}

TEST(ComposeTest, GroupsConcatenateWhenAnyInstanceIsPartial) {
  std::vector<Scenario> parts;
  parts.emplace_back("a", small_didactic(5));
  Scenario b("b", small_didactic(5));
  std::vector<bool> group(b.desc().functions().size(), false);
  group[2] = group[3] = true;
  b.with_group(group);
  parts.push_back(b);
  const Scenario c = compose("mixed", parts);
  // a expands to all-true, b keeps its restriction.
  EXPECT_EQ(c.options().group,
            (std::vector<bool>{true, true, true, true, false, false, true,
                               true}));

  // All-default instances leave the composed group empty (= abstract all).
  std::vector<Scenario> plain;
  plain.emplace_back("a", small_didactic(5));
  plain.emplace_back("b", small_didactic(5));
  EXPECT_TRUE(compose("plain", plain).options().group.empty());
}

TEST(ComposeTest, ExpectedIterationsHintPropagates) {
  std::vector<Scenario> parts;
  parts.emplace_back("a", small_didactic(5));
  parts.back().with_expected_iterations(200);
  parts.emplace_back("b", small_didactic(5));
  parts.back().with_expected_iterations(50);
  EXPECT_EQ(compose("hinted", parts).options().expected_iterations, 200u);
}

// Each instance of a composed run must behave exactly as in its solo run —
// per-instance trace isolation inside one shared kernel.
void expect_instances_match_solo(const Backend& backend,
                                 const std::vector<Scenario>& parts,
                                 const Scenario& composed) {
  auto whole = backend.instantiate(composed);
  ASSERT_TRUE(whole->run().completed) << backend.name();
  for (const Scenario& part : parts) {
    auto solo = backend.instantiate(part);
    ASSERT_TRUE(solo->run().completed) << part.name();

    const trace::InstantTraceSet extracted =
        instance_instants(whole->instants(), part.name());
    EXPECT_EQ(trace::compare_instants(solo->instants(), extracted),
              std::nullopt)
        << backend.name() << " " << part.name();
    EXPECT_EQ(trace::compare_instants(extracted, solo->instants()),
              std::nullopt)
        << backend.name() << " " << part.name();

    trace::UsageTraceSet a = solo->usage();
    trace::UsageTraceSet b = instance_usage(whole->usage(), part.name());
    a.sort_all();
    b.sort_all();
    EXPECT_EQ(trace::compare_usage(a, b), std::nullopt)
        << backend.name() << " " << part.name();
  }
}

TEST(ComposeTest, DidacticInstancesMatchSoloRuns) {
  std::vector<Scenario> parts;
  for (int i = 0; i < 3; ++i) {
    gen::DidacticConfig cfg;
    cfg.tokens = 30 + 10 * static_cast<std::uint64_t>(i);
    cfg.seed = 7 + static_cast<std::uint64_t>(i);
    parts.emplace_back("inst" + std::to_string(i), gen::make_didactic(cfg));
  }
  const Scenario composed = compose("didactic3", parts);
  expect_instances_match_solo(Backend::baseline(), parts, composed);
  expect_instances_match_solo(Backend::equivalent(), parts, composed);
}

// The acceptance scenario: >= 4 LTE receivers (carrier-aggregation style
// variants) in one kernel, deterministic, each matching its solo run.
TEST(ComposeTest, FourLteReceiversInOneKernel) {
  std::vector<Scenario> parts;
  for (int i = 0; i < 4; ++i) {
    lte::ReceiverConfig cfg;
    cfg.symbols = 3 * lte::kSymbolsPerSubframe;
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    cfg.dsp_ops_per_second = (4.0 + 2.0 * i) * 1e9;
    parts.emplace_back("rx" + std::to_string(i), lte::make_receiver(cfg));
  }
  const Scenario composed = compose("ca4", parts);
  EXPECT_EQ(composed.desc().functions().size(), 32u);

  expect_instances_match_solo(Backend::baseline(), parts, composed);
  expect_instances_match_solo(Backend::equivalent(), parts, composed);

  // Determinism: two composed runs produce identical traces and counters.
  auto r1 = Backend::equivalent().instantiate(composed);
  auto r2 = Backend::equivalent().instantiate(composed);
  ASSERT_TRUE(r1->run().completed);
  ASSERT_TRUE(r2->run().completed);
  EXPECT_EQ(trace::compare_instants(r1->instants(), r2->instants()),
            std::nullopt);
  EXPECT_EQ(r1->kernel_stats().events_scheduled,
            r2->kernel_stats().events_scheduled);
  EXPECT_EQ(r1->end_time(), r2->end_time());
}

TEST(ComposeTest, ComposedScenarioRunsThroughStudy) {
  // Carrier-aggregation variants from the lte module: 4 component carriers
  // with distinct bandwidths/platforms, composed into one kernel.
  std::vector<Scenario> parts;
  for (const lte::CarrierVariant& cc : lte::carrier_aggregation_variants(
           4, lte::kSymbolsPerSubframe)) {
    EXPECT_EQ(cc.config.symbols,
              static_cast<std::uint64_t>(lte::kSymbolsPerSubframe));
    parts.emplace_back(cc.name, lte::make_receiver(cc.config));
  }
  Study st;
  st.add(compose("ca4", parts));
  st.add(Backend::baseline());
  st.add(Backend::equivalent());
  const Report rep = st.run();
  const Cell* eq = rep.find("ca4", "equivalent");
  ASSERT_NE(eq, nullptr);
  EXPECT_TRUE(eq->errors->exact());  // composed instants still exact
  EXPECT_GT(eq->event_ratio_vs_reference, 2.0);
}

// ------------------------------------------------------------------ Report

Report tiny_report(bool program_cache = true) {
  gen::DidacticConfig cfg;
  cfg.tokens = 5;
  Study st;
  st.add(Scenario("didactic", gen::make_didactic(cfg)));
  st.add(Backend::baseline());
  st.add(Backend::equivalent());
  StudyOptions opts;
  opts.program_cache = program_cache;
  Report rep = st.run(opts);
  // Blank the wall-clock-dependent fields so the document is deterministic.
  for (Cell& c : rep.cells) {
    c.metrics.wall_seconds = 0.0;
    c.speedup_vs_reference = c.is_reference ? 1.0 : 0.0;
  }
  return rep;
}

TEST(ReportTest, CsvGolden) {
  const std::string path = ::testing::TempDir() + "maxev_report_golden.csv";
  tiny_report().write_csv(path);
  const std::string expected =
      "scenario,backend,reference,completed,wall_seconds,kernel_events,"
      "resumes,relation_events,instances_computed,arc_terms,sim_end_ps,"
      "graph_nodes,graph_paper_nodes,graph_arcs,speedup_vs_ref,"
      "event_ratio_vs_ref,kernel_event_ratio_vs_ref,exact,max_abs_error_s,"
      "mean_abs_error_s,cache_hits,cache_misses,status,error\n"
      "didactic,baseline,1,1,0,76,76,30,0,0,61316000,0,0,0,1,1,1,,,,0,0,ok,\n"
      "didactic,equivalent,0,1,0,23,23,10,30,50,61316000,7,10,10,0,3,"
      "3.30434783,1,0,0,0,1,ok,\n";
  EXPECT_EQ(slurp(path), expected);
  std::remove(path.c_str());
}

// With the program cache off, the cache columns vanish and the documents
// are byte-identical to the pre-cache format.
TEST(ReportTest, CsvGoldenWithoutCacheKeepsLegacyFormat) {
  const std::string path =
      ::testing::TempDir() + "maxev_report_golden_nocache.csv";
  tiny_report(/*program_cache=*/false).write_csv(path);
  const std::string expected =
      "scenario,backend,reference,completed,wall_seconds,kernel_events,"
      "resumes,relation_events,instances_computed,arc_terms,sim_end_ps,"
      "graph_nodes,graph_paper_nodes,graph_arcs,speedup_vs_ref,"
      "event_ratio_vs_ref,kernel_event_ratio_vs_ref,exact,max_abs_error_s,"
      "mean_abs_error_s,status,error\n"
      "didactic,baseline,1,1,0,76,76,30,0,0,61316000,0,0,0,1,1,1,,,,ok,\n"
      "didactic,equivalent,0,1,0,23,23,10,30,50,61316000,7,10,10,0,3,"
      "3.30434783,1,0,0,ok,\n";
  EXPECT_EQ(slurp(path), expected);
  std::remove(path.c_str());
}

TEST(ReportTest, JsonGolden) {
  const std::string expected =
      R"({"scenarios":["didactic"],"backends":["baseline","equivalent"],)"
      R"("reference":"baseline","cells":[{"scenario":"didactic",)"
      R"("backend":"baseline","reference":true,"completed":true,)"
      R"("wall_seconds":0,"kernel_events":76,"resumes":76,)"
      R"("relation_events":30,"instances_computed":0,"arc_terms":0,)"
      R"("sim_end_ps":61316000,"graph_nodes":0,"graph_paper_nodes":0,)"
      R"("graph_arcs":0,"speedup_vs_ref":1,"event_ratio_vs_ref":1,)"
      R"("kernel_event_ratio_vs_ref":1,"cache_hits":0,"cache_misses":0,)"
      R"("status":"ok"},{"scenario":"didactic",)"
      R"("backend":"equivalent","reference":false,"completed":true,)"
      R"("wall_seconds":0,"kernel_events":23,"resumes":23,)"
      R"("relation_events":10,"instances_computed":30,"arc_terms":50,)"
      R"("sim_end_ps":61316000,"graph_nodes":7,"graph_paper_nodes":10,)"
      R"("graph_arcs":10,"speedup_vs_ref":0,"event_ratio_vs_ref":3,)"
      R"("kernel_event_ratio_vs_ref":3.3043478260869565,)"
      R"("cache_hits":0,"cache_misses":1,)"
      R"("errors":{"exact":true,"max_abs_seconds":0,"mean_abs_seconds":0,)"
      R"("instants_compared":30},"status":"ok"}]})";
  EXPECT_EQ(tiny_report().to_json(), expected);

  const std::string path = ::testing::TempDir() + "maxev_report_golden.json";
  tiny_report().write_json(path);
  EXPECT_EQ(slurp(path), expected + "\n");  // write_file ends the document
  std::remove(path.c_str());
}

TEST(ReportTest, JsonGoldenWithoutCacheOmitsCacheFields) {
  const std::string doc = tiny_report(/*program_cache=*/false).to_json();
  EXPECT_EQ(doc.find("cache_hits"), std::string::npos);
  EXPECT_EQ(doc.find("cache_misses"), std::string::npos);
}

TEST(ReportTest, ConsoleRenderingMentionsEveryCell) {
  const Report rep = tiny_report();
  const std::string table = rep.to_string();
  EXPECT_NE(table.find("didactic"), std::string::npos);
  EXPECT_NE(table.find("baseline"), std::string::npos);
  EXPECT_NE(table.find("equivalent"), std::string::npos);
  EXPECT_NE(table.find("exact"), std::string::npos);
}

TEST(ReportTest, AtThrowsOnMissingCell) {
  const Report rep = tiny_report();
  EXPECT_EQ(&rep.at("didactic", "baseline"),
            rep.find("didactic", "baseline"));
  EXPECT_THROW((void)rep.at("didactic", "no-such-backend"), Error);
  EXPECT_THROW((void)rep.at("no-such-scenario", "baseline"), Error);
}

// --------------------------------------------- run_comparison delegation

TEST(DelegationTest, RunComparisonMatchesHandBuiltStudy) {
  const model::ArchitectureDesc d = small_didactic(100);
  core::ExperimentOptions opts;
  opts.repetitions = 1;
  const core::Comparison cmp = core::run_comparison(d, opts);

  Study st;
  st.add(Scenario("comparison", d));
  st.add(Backend::baseline());
  st.add(Backend::equivalent());
  StudyOptions sopts;
  sopts.repetitions = 1;
  const Report rep = st.run(sopts);

  const Cell* base = rep.find("comparison", "baseline");
  const Cell* eq = rep.find("comparison", "equivalent");
  EXPECT_EQ(cmp.baseline.kernel_events, base->metrics.kernel_events);
  EXPECT_EQ(cmp.baseline.relation_events, base->metrics.relation_events);
  EXPECT_EQ(cmp.baseline.sim_end, base->metrics.sim_end);
  EXPECT_EQ(cmp.equivalent.kernel_events, eq->metrics.kernel_events);
  EXPECT_EQ(cmp.equivalent.relation_events, eq->metrics.relation_events);
  EXPECT_EQ(cmp.equivalent.instances_computed,
            eq->metrics.instances_computed);
  EXPECT_EQ(cmp.graph_paper_nodes, eq->graph_paper_nodes);
  EXPECT_DOUBLE_EQ(cmp.event_ratio, eq->event_ratio_vs_reference);
  EXPECT_TRUE(cmp.accurate());
  EXPECT_TRUE(eq->errors->exact());
}

// ------------------------------------- thread-count equivalence sweep

// The determinism contract of StudyOptions::threads / group_threads
// (docs/DESIGN.md §11): for random-architecture matrices, every thread
// count produces the identical Report — CSV bytes, JSON bytes, and the
// per-instance traces retained by keep_traces — as the serial run.
TEST(ThreadSweepTest, RandomArchMatricesIdenticalAcrossThreadCounts) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 20;
  cfg.multi_rate_producer_probability = 0.4;

  for (const std::uint64_t seed : {3ull, 11ull}) {
    const auto a = model::share(gen::make_random_architecture(seed, cfg));
    const auto b =
        model::share(gen::make_random_architecture(seed + 100, cfg));
    Study st;
    st.add(Scenario("solo", a));
    std::vector<Scenario> parts;
    parts.emplace_back("a0", a);
    parts.emplace_back("b0", b);
    parts.emplace_back("a1", a);
    parts.emplace_back("b1", b);
    st.add(compose("mix22", parts));
    st.add(Backend::baseline());
    st.add(Backend::equivalent());

    StudyOptions opts;
    opts.keep_traces = true;

    // Serial reference: blank the wall-clock-dependent fields, serialize.
    const auto blank = [](Report rep) {
      for (Cell& c : rep.cells) {
        c.metrics.wall_seconds = 0.0;
        c.speedup_vs_reference = c.is_reference ? 1.0 : 0.0;
      }
      return rep;
    };
    const Report ref = blank(st.run(opts));
    const std::string csv_path = ::testing::TempDir() + "maxev_sweep.csv";
    ref.write_csv(csv_path);
    const std::string ref_csv = slurp(csv_path);
    const std::string ref_json = ref.to_json();

    for (const int threads : {2, 8}) {
      opts.threads = threads;
      opts.group_threads = threads;
      const Report rep = blank(st.run(opts));
      rep.write_csv(csv_path);
      EXPECT_EQ(slurp(csv_path), ref_csv)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(rep.to_json(), ref_json)
          << "seed=" << seed << " threads=" << threads;

      // Per-instance traces of the composed equivalent cell, not just the
      // serialized summary.
      const Cell& rc = ref.at("mix22", "equivalent");
      const Cell& pc = rep.at("mix22", "equivalent");
      ASSERT_NE(rc.instants, nullptr);
      ASSERT_NE(pc.instants, nullptr);
      for (const Scenario& part : parts) {
        EXPECT_EQ(trace::compare_instants(
                      instance_instants(*rc.instants, part.name()),
                      instance_instants(*pc.instants, part.name())),
                  std::nullopt)
            << "seed=" << seed << " threads=" << threads << " instance="
            << part.name();
        trace::UsageTraceSet ru = instance_usage(*rc.usage, part.name());
        trace::UsageTraceSet pu = instance_usage(*pc.usage, part.name());
        ru.sort_all();
        pu.sort_all();
        EXPECT_EQ(trace::compare_usage(ru, pu), std::nullopt)
            << "seed=" << seed << " threads=" << threads << " instance="
            << part.name();
      }
    }
    std::remove(csv_path.c_str());
  }
}

}  // namespace
}  // namespace maxev::study
