#include <gtest/gtest.h>

#include "maxplus/scalar.hpp"
#include "tdg/builder.hpp"
#include "tdg/engine.hpp"
#include "tdg/export.hpp"
#include "tdg/graph.hpp"
#include "tdg/simplify.hpp"
#include "util/error.hpp"

namespace maxev::tdg {
namespace {

using namespace maxev::literals;

TimePoint at(std::int64_t ps) { return TimePoint::at_ps(ps); }

// ---------------------------------------------------------------------------
// Graph structure
// ---------------------------------------------------------------------------

TEST(GraphTest, FreezeComputesTopoOrder) {
  GraphBuilder b;
  b.input("u").instant("a").instant("b");
  b.arc("u", "a");
  b.arc("a", "b").fixed(1_ns);
  Graph g = b.take();
  g.freeze();
  EXPECT_EQ(g.topo_order(), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(g.max_lag(), 0u);
  EXPECT_EQ(g.in_arcs(2).size(), 1u);
  EXPECT_EQ(g.out_arcs(0).size(), 1u);
}

TEST(GraphTest, ZeroLagCycleRejectedWithNames) {
  GraphBuilder b;
  b.instant("a").instant("b");
  b.arc("a", "b");
  b.arc("b", "a");
  Graph g = b.take();
  try {
    g.freeze();
    FAIL() << "expected DescriptionError";
  } catch (const DescriptionError& e) {
    EXPECT_NE(std::string(e.what()).find("a"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("b"), std::string::npos);
  }
}

TEST(GraphTest, LaggedCycleIsFine) {
  GraphBuilder b;
  b.input("u").instant("a");
  b.arc("u", "a");
  b.arc("a", "a").lag(1).fixed(1_ns);
  Graph g = b.take();
  g.freeze();
  EXPECT_EQ(g.max_lag(), 1u);
}

TEST(GraphTest, PaperNodeCountAddsHistoryRefs) {
  GraphBuilder b;
  b.input("u").instant("a").instant("c");
  b.arc("u", "a");
  b.arc("a", "c");
  b.arc("a", "c").lag(1);
  b.arc("a", "c").lag(2);
  b.arc("c", "a").lag(1);
  Graph g = b.take();
  // 3 live + distinct history refs {(a,1),(a,2),(c,1)}.
  EXPECT_EQ(g.paper_node_count(), 6u);
}

TEST(GraphTest, BadArcEndpointRejected) {
  Graph g;
  g.add_node({"a", NodeKind::kInstant, model::kInvalidId, false, {}});
  EXPECT_THROW(g.add_arc({0, 5, 0, {}, 0, nullptr}), DescriptionError);
}

TEST(GraphTest, ExecSegmentWithoutDescRejected) {
  Graph g;  // no ArchitectureDesc
  g.add_node({"a", NodeKind::kInstant, model::kInvalidId, false, {}});
  g.add_node({"b", NodeKind::kInstant, model::kInvalidId, false, {}});
  Arc a{0, 1, 0, {Segment{Duration{}, model::constant_ops(5), 0, "x"}}, 0,
        nullptr};
  EXPECT_THROW(g.add_arc(std::move(a)), DescriptionError);
}

TEST(GraphTest, MutationAfterFreezeRejected) {
  GraphBuilder b;
  b.input("u");
  Graph g = b.take();
  g.freeze();
  EXPECT_THROW(g.add_node({"x", NodeKind::kInstant, -1, false, {}}),
               DescriptionError);
}

// ---------------------------------------------------------------------------
// Engine on hand-built graphs
// ---------------------------------------------------------------------------

/// y(k) = max(u(k) + 5ns, y(k-1) + 2ns)  [pre-history origin]
Graph feedback_graph() {
  GraphBuilder b;
  b.input("u");
  b.output("y");
  b.arc("u", "y").fixed(5_ns);
  b.arc("y", "y").lag(1).fixed(2_ns);
  Graph g = b.take();
  g.freeze();
  return g;
}

TEST(EngineTest, ComputesRecurrenceWithHistory) {
  Graph g = feedback_graph();
  Engine e(g);
  const NodeId u = g.find("u"), y = g.find("y");
  e.set_external(u, 0, at(0));
  EXPECT_EQ(e.value(y, 0), at(5000));  // max(0+5ns, origin+2ns)
  e.set_external(u, 1, at(1000));
  EXPECT_EQ(e.value(y, 1), at(7000));  // max(1ns+5ns, 5ns+2ns)
  e.set_external(u, 2, at(100000));
  EXPECT_EQ(e.value(y, 2), at(105000));
  EXPECT_EQ(e.instances_computed(), 3u);
}

TEST(EngineTest, PrehistoryIsOrigin) {
  // Node whose only dependency is its own previous value + 3ns: at k=0 the
  // history is the simulation origin, so value = 3ns.
  GraphBuilder b;
  b.input("u").instant("a");
  b.arc("a", "a").lag(1).fixed(3_ns);
  b.arc("u", "a").fixed(0_ns);
  Graph g = b.take();
  g.freeze();
  Engine e(g);
  e.set_external(g.find("u"), 0, at(0));
  EXPECT_EQ(e.value(g.find("a"), 0), at(3000));
}

TEST(EngineTest, OutOfOrderInputsBlockUntilReady) {
  // Two inputs joining into one instant.
  GraphBuilder b;
  b.input("u1").input("u2").instant("j");
  b.arc("u1", "j").fixed(1_ns);
  b.arc("u2", "j").fixed(2_ns);
  Graph g = b.take();
  g.freeze();
  Engine e(g);
  const NodeId j = g.find("j");
  e.set_external(g.find("u1"), 0, at(100));
  EXPECT_FALSE(e.value(j, 0).has_value());  // u2 still unknown
  e.set_external(g.find("u2"), 0, at(50));
  EXPECT_EQ(e.value(j, 0), at(2050));  // max(100+1000, 50+2000)
}

TEST(EngineTest, PipelinedIterations) {
  // Iteration k+1 computable before iteration k's external actual arrives.
  GraphBuilder b;
  b.input("u").instant("a").external("act").instant("tail");
  b.arc("u", "a").fixed(1_ns);
  b.arc("act", "tail");        // tail(k) = actual(k)
  b.arc("tail", "a").lag(2);   // a(k) also waits for tail(k-2)
  Graph g = b.take();
  g.freeze();
  Engine e(g);
  const NodeId a = g.find("a");
  e.set_external(g.find("u"), 0, at(0));
  e.set_external(g.find("u"), 1, at(10));
  EXPECT_EQ(e.value(a, 0), at(1000));
  EXPECT_EQ(e.value(a, 1), at(1010));  // lag-2 still pre-history
  e.set_external(g.find("u"), 2, at(20));
  EXPECT_FALSE(e.value(a, 2).has_value());  // needs tail(0) = actual(0)
  e.set_external(g.find("act"), 0, at(500000));
  EXPECT_EQ(e.value(a, 2), at(500000));
}

TEST(EngineTest, GuardedArcContributesNothingWhenFalse) {
  GraphBuilder b;
  b.input("u").instant("a");
  b.arc("u", "a").fixed(10_ns);
  b.arc("u", "a").fixed(1000_ns).when(
      [](const model::TokenAttrs& at, std::uint64_t) { return at.size > 5; });
  Graph g = b.take();
  g.freeze();
  Engine e(g);
  model::TokenAttrs small;
  small.size = 1;
  e.set_attrs(0, 0, small);
  e.set_external(g.find("u"), 0, at(0));
  EXPECT_EQ(e.value(g.find("a"), 0), at(10'000));
  model::TokenAttrs big;
  big.size = 100;
  e.set_attrs(0, 1, big);
  e.set_external(g.find("u"), 1, at(0));
  EXPECT_EQ(e.value(g.find("a"), 1), at(1'000'000));
}

TEST(EngineTest, AttrsGateDataDependentWeights) {
  model::ArchitectureDesc d;
  d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e12);
  GraphBuilder b(&d);
  b.input("u").instant("a");
  b.arc("u", "a").exec(0, model::linear_ops(0, 1), "w");
  Graph g = b.take();
  g.freeze();
  Engine e(g);
  e.set_external(g.find("u"), 0, at(0));
  // Attrs not yet known: the instant must not be computed.
  EXPECT_FALSE(e.value(g.find("a"), 0).has_value());
  model::TokenAttrs attrs;
  attrs.size = 42;
  e.set_attrs(0, 0, attrs);
  EXPECT_EQ(e.value(g.find("a"), 0), at(42));
}

TEST(EngineTest, ObservationEmittedAtComputedPositions) {
  model::ArchitectureDesc d;
  d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e12);
  trace::UsageTraceSet usage;
  GraphBuilder b(&d);
  b.input("u").instant("a");
  b.arc("u", "a")
      .fixed(Duration::ps(10))
      .exec(0, model::constant_ops(7), "F.e0");
  Graph g = b.take();
  g.freeze();
  Engine e(g, Engine::Options{nullptr, &usage});
  e.set_attrs(0, 0, {});
  e.set_external(g.find("u"), 0, at(100));
  const trace::UsageTrace* p = usage.find("P");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->size(), 1u);
  EXPECT_EQ(p->intervals()[0].start, at(110));  // after the fixed prefix
  EXPECT_EQ(p->intervals()[0].end, at(117));
  EXPECT_EQ(p->intervals()[0].ops, 7);
  EXPECT_EQ(p->intervals()[0].label, "F.e0");
}

TEST(EngineTest, InstantRecordingInIterationOrder) {
  trace::InstantTraceSet instants;
  GraphBuilder b;
  b.input("u");
  b.instant("a", "chanA");
  b.arc("u", "a").fixed(1_ns);
  Graph g = b.take();
  g.freeze();
  Engine e(g, Engine::Options{&instants, nullptr});
  for (int k = 0; k < 5; ++k)
    e.set_external(g.find("u"), static_cast<std::uint64_t>(k), at(k * 100));
  const trace::InstantSeries* s = instants.find("chanA");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 5u);
  for (int k = 0; k < 5; ++k)
    EXPECT_EQ(s->values()[static_cast<std::size_t>(k)], at(k * 100 + 1000));
}

TEST(EngineTest, DoubleExternalFeedThrows) {
  Graph g = feedback_graph();
  Engine e(g);
  e.set_external(g.find("u"), 0, at(0));
  EXPECT_THROW(e.set_external(g.find("u"), 0, at(1)), Error);
}

TEST(EngineTest, SetExternalOnComputedNodeThrows) {
  Graph g = feedback_graph();
  Engine e(g);
  EXPECT_THROW(e.set_external(g.find("y"), 0, at(0)), Error);
}

TEST(EngineTest, RetainFloorEnablesPruning) {
  Graph g = feedback_graph();
  Engine e(g);
  for (std::uint64_t k = 0; k < 100; ++k) {
    e.set_external(g.find("u"), k, at(static_cast<std::int64_t>(k) * 10));
    e.set_retain_floor(k + 1);
  }
  // Old frames are pruned: querying them reports unknown, and feeding an
  // already-pruned iteration is an error.
  EXPECT_FALSE(e.value(g.find("y"), 0).has_value());
  EXPECT_TRUE(e.value(g.find("y"), 99).has_value());
}

TEST(EngineTest, OnKnownCallbackFires) {
  Graph g = feedback_graph();
  Engine e(g);
  std::vector<std::pair<std::uint64_t, std::int64_t>> seen;
  e.on_known(g.find("y"), [&](std::uint64_t k, TimePoint t) {
    seen.emplace_back(k, t.count());
  });
  e.set_external(g.find("u"), 0, at(0));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, 0u);
  EXPECT_EQ(seen[0].second, 5000);
}

TEST(EngineTest, UnfrozenGraphRejected) {
  Graph g;
  EXPECT_THROW(Engine e(g), DescriptionError);
}

// ---------------------------------------------------------------------------
// Simplification and padding
// ---------------------------------------------------------------------------

Graph chain_with_completions() {
  GraphBuilder b;
  b.input("u");
  b.instant("x1");
  Graph g = b.take();
  const NodeId c1 = g.add_node({"c1", NodeKind::kCompletion, -1, false, {}});
  const NodeId c2 = g.add_node({"c2", NodeKind::kCompletion, -1, false, {}});
  const NodeId x1 = g.find("x1");
  g.add_arc({g.find("u"), c1, 0, {Segment{2_ns, nullptr, -1, {}}}, 0, nullptr});
  g.add_arc({c1, c2, 0, {Segment{3_ns, nullptr, -1, {}}}, 0, nullptr});
  g.add_arc({c2, x1, 0, {}, 0, nullptr});
  return g;
}

TEST(SimplifyTest, FoldCollapsesPassThroughChain) {
  Graph g = chain_with_completions();
  Graph folded = fold_pass_through(g);
  EXPECT_EQ(folded.node_count(), 2u);  // u and x1
  EXPECT_EQ(folded.arc_count(), 1u);
  folded.freeze();
  Engine e(folded);
  e.set_external(folded.find("u"), 0, at(0));
  EXPECT_EQ(e.value(folded.find("x1"), 0), at(5000));  // 2ns + 3ns composed
}

TEST(SimplifyTest, FoldPreservesSemantics) {
  Graph raw = chain_with_completions();
  Graph copy = chain_with_completions();
  Graph folded = fold_pass_through(copy);
  raw.freeze();
  folded.freeze();
  Engine er(raw), ef(folded);
  for (std::uint64_t k = 0; k < 10; ++k) {
    const TimePoint u = at(static_cast<std::int64_t>(k) * 777);
    er.set_external(raw.find("u"), k, u);
    ef.set_external(folded.find("u"), k, u);
    EXPECT_EQ(er.value(raw.find("x1"), k), ef.value(folded.find("x1"), k));
  }
  EXPECT_LT(ef.instances_computed(), er.instances_computed());
}

TEST(SimplifyTest, FoldKeepsNodesWithLaggedOutArcs) {
  GraphBuilder b;
  b.input("u").instant("x");
  Graph g = b.take();
  const NodeId c = g.add_node({"c", NodeKind::kCompletion, -1, false, {}});
  g.add_arc({g.find("u"), c, 0, {Segment{1_ns, nullptr, -1, {}}}, 0, nullptr});
  g.add_arc({c, g.find("x"), 1, {}, 0, nullptr});  // lagged out-arc
  Graph folded = fold_pass_through(g);
  EXPECT_EQ(folded.node_count(), 3u);  // cannot fold c
}

TEST(SimplifyTest, PadAddsExactNodeCountPreservingValues) {
  Graph base = feedback_graph();  // frozen; rebuild unfrozen copy
  GraphBuilder b;
  b.input("u").output("y");
  b.arc("u", "y").fixed(5_ns);
  b.arc("y", "y").lag(1).fixed(2_ns);
  Graph unfrozen = b.take();
  Graph padded = pad_graph(unfrozen, 37);
  EXPECT_EQ(padded.node_count(), 2u + 37u);
  padded.freeze();
  Engine ep(padded);
  Engine eb(base);
  for (std::uint64_t k = 0; k < 20; ++k) {
    const TimePoint u = at(static_cast<std::int64_t>(k) * 333);
    ep.set_external(padded.find("u"), k, u);
    eb.set_external(base.find("u"), k, u);
    EXPECT_EQ(ep.value(padded.find("y"), k), eb.value(base.find("y"), k));
  }
  // The padded engine does strictly more work — that is its purpose.
  EXPECT_GT(ep.instances_computed(), eb.instances_computed());
}

TEST(SimplifyTest, PadRejectsArclessGraph) {
  GraphBuilder b;
  b.input("u");
  Graph g = b.take();
  EXPECT_THROW(pad_graph(g, 3), DescriptionError);
}

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

TEST(ExportTest, DotContainsNodesAndHistoryStyle) {
  Graph g = feedback_graph();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph tdg"), std::string::npos);
  EXPECT_NE(dot.find("label=\"u\""), std::string::npos);
  EXPECT_NE(dot.find("(k-1)"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(ExportTest, LinearSystemMatchesEngine) {
  Graph g = feedback_graph();
  Engine e(g);
  auto ex = to_linear_system(
      g, [](model::SourceId, std::uint64_t) { return model::TokenAttrs{}; });
  ASSERT_EQ(ex.input_nodes.size(), 1u);
  ASSERT_EQ(ex.output_nodes.size(), 1u);
  for (std::uint64_t k = 0; k < 25; ++k) {
    const TimePoint u = at(static_cast<std::int64_t>(k * k) * 100);
    e.set_external(g.find("u"), k, u);
    mp::Vector uv(1);
    uv[0] = mp::Scalar::from_time(u);
    const auto step = ex.system.step(uv);
    ASSERT_TRUE(e.value(g.find("y"), k).has_value());
    EXPECT_EQ(step.y[0].value(), e.value(g.find("y"), k)->count())
        << "k=" << k;
  }
}

TEST(ExportTest, ThroughputBoundFindsFeedbackCycle) {
  Graph g = feedback_graph();
  const auto r = throughput_bound(
      g, [](model::SourceId, std::uint64_t) { return model::TokenAttrs{}; });
  ASSERT_TRUE(r.has_cycle);
  EXPECT_NEAR(r.max_ratio, (2_ns).count(), 1.0);  // y->y lag-1 self-loop
}

}  // namespace
}  // namespace maxev::tdg
