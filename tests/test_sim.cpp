#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "sim/channel.hpp"
#include "sim/event.hpp"
#include "sim/kernel.hpp"
#include "sim/ladder_queue.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace maxev::sim {
namespace {

using namespace maxev::literals;

struct Tok {
  int v = 0;
};

// ---------------------------------------------------------------------------
// LadderQueue (the kernel's event queue)
// ---------------------------------------------------------------------------

TEST(LadderQueueTest, PopsInTimeOrder) {
  LadderQueue<int> q;
  std::uint64_t seq = 0;
  for (const std::int64_t t : {50, 10, 30, 20, 40})
    q.push(t, seq++, static_cast<int>(t));
  std::vector<std::int64_t> order;
  while (!q.empty()) order.push_back(q.pop().t);
  EXPECT_EQ(order, (std::vector<std::int64_t>{10, 20, 30, 40, 50}));
}

TEST(LadderQueueTest, EqualTimestampsPopFifoBySequence) {
  LadderQueue<int> q;
  // Many entries at one timestamp — more than one refill batch — plus
  // interleaved pushes at the same time after popping began: FIFO order
  // (by insertion sequence) must hold throughout.
  std::uint64_t seq = 0;
  for (int i = 0; i < 200; ++i) q.push(7, seq++, i);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) order.push_back(q.pop().payload);
  for (int i = 200; i < 250; ++i) q.push(7, seq++, i);  // lands mid-window
  while (!q.empty()) order.push_back(q.pop().payload);
  ASSERT_EQ(order.size(), 250u);
  for (int i = 0; i < 250; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(LadderQueueTest, InsertIntoOpenWindow) {
  LadderQueue<int> q;
  std::uint64_t seq = 0;
  for (std::int64_t t = 0; t < 100; ++t) q.push(t, seq++, 0);
  EXPECT_EQ(q.pop().t, 0);  // opens a window
  q.push(1, seq++, 1);      // earlier than the window bound
  EXPECT_EQ(q.top().t, 1);
  EXPECT_EQ(q.size(), 100u);
}

TEST(LadderQueueTest, FarFutureStragglerDoesNotPinTheWindow) {
  // A wholesale refill with one far-future straggler opens a window
  // spanning the whole timeline; the split must keep subsequent in-window
  // pushes cheap while preserving exact order.
  LadderQueue<int> q;
  std::uint64_t seq = 0;
  q.push(1'000'000'000, seq++, -1);
  q.push(0, seq++, 0);
  EXPECT_EQ(q.pop().payload, 0);
  for (int i = 1; i <= 500; ++i) q.push(i, seq++, i);
  for (int i = 1; i <= 500; ++i) EXPECT_EQ(q.pop().payload, i);
  EXPECT_EQ(q.pop().payload, -1);
  EXPECT_TRUE(q.empty());
}

TEST(LadderQueueTest, DifferentialAgainstReferenceOnRandomSchedules) {
  // Random push/pop interleavings against a sorted reference: the ladder
  // must pop the exact (t, seq) sequence a totally ordered map produces.
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    Rng rng(0xb001 + trial);
    LadderQueue<std::uint64_t> ladder;
    std::map<std::pair<std::int64_t, std::uint64_t>, std::uint64_t> reference;
    std::uint64_t seq = 0;
    std::int64_t now = 0;
    for (int step = 0; step < 2000; ++step) {
      const bool push = reference.empty() || rng.chance(0.55);
      if (push) {
        // Kernel discipline: never schedule in the past; bursts of equal
        // timestamps are common (zero-delay notifications).
        const std::int64_t t =
            now + (rng.chance(0.3) ? 0 : rng.uniform_i64(0, 5000));
        ladder.push(t, seq, seq);
        reference.emplace(std::make_pair(t, seq), seq);
        ++seq;
      } else {
        ASSERT_FALSE(ladder.empty());
        const auto got = ladder.pop();
        const auto expect = *reference.begin();
        reference.erase(reference.begin());
        ASSERT_EQ(got.t, expect.first.first) << "trial " << trial;
        ASSERT_EQ(got.seq, expect.first.second) << "trial " << trial;
        ASSERT_EQ(got.payload, expect.second) << "trial " << trial;
        now = got.t;
      }
      ASSERT_EQ(ladder.size(), reference.size());
    }
    while (!ladder.empty()) {
      const auto got = ladder.pop();
      const auto expect = *reference.begin();
      reference.erase(reference.begin());
      ASSERT_EQ(got.seq, expect.first.second) << "trial " << trial;
    }
    EXPECT_TRUE(reference.empty());
  }
}

TEST(KernelTest, DelayAdvancesTime) {
  Kernel k;
  std::vector<std::int64_t> log;
  k.spawn("p", [&]() -> Process {
    co_await k.delay(5_us);
    log.push_back(k.now().count());
    co_await k.delay(3_us);
    log.push_back(k.now().count());
  });
  EXPECT_EQ(k.run(), Kernel::RunResult::kIdle);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (5_us).count());
  EXPECT_EQ(log[1], (8_us).count());
}

TEST(KernelTest, ProcessesInterleaveDeterministically) {
  Kernel k;
  std::vector<std::string> order;
  k.spawn("a", [&]() -> Process {
    co_await k.delay(1_us);
    order.push_back("a@1");
    co_await k.delay(2_us);
    order.push_back("a@3");
  });
  k.spawn("b", [&]() -> Process {
    co_await k.delay(2_us);
    order.push_back("b@2");
  });
  k.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "a@1");
  EXPECT_EQ(order[1], "b@2");
  EXPECT_EQ(order[2], "a@3");
}

TEST(KernelTest, SameTimeTieBrokenByScheduleOrder) {
  Kernel k;
  std::vector<int> order;
  k.spawn("a", [&]() -> Process {
    co_await k.delay(1_us);
    order.push_back(1);
  });
  k.spawn("b", [&]() -> Process {
    co_await k.delay(1_us);
    order.push_back(2);
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(KernelTest, TimeLimitStopsEarly) {
  Kernel k;
  int steps = 0;
  k.spawn("p", [&]() -> Process {
    for (int i = 0; i < 100; ++i) {
      co_await k.delay(1_us);
      ++steps;
    }
  });
  EXPECT_EQ(k.run(TimePoint::origin() + 10_us), Kernel::RunResult::kTimeLimit);
  EXPECT_EQ(steps, 10);
  EXPECT_EQ(k.now(), TimePoint::origin() + 10_us);
}

TEST(KernelTest, StatsCountEventsAndResumes) {
  Kernel k;
  k.spawn("p", [&]() -> Process {
    co_await k.delay(1_us);
    co_await k.delay(1_us);
  });
  k.run();
  // Initial spawn resume + 2 delays.
  EXPECT_EQ(k.stats().resumes, 3u);
  EXPECT_EQ(k.stats().events_scheduled, 3u);
  EXPECT_EQ(k.stats().processes_spawned, 1u);
  EXPECT_EQ(k.stats().processes_finished, 1u);
}

TEST(KernelTest, EqualTimeCallbacksRunInScheduleOrder) {
  // The queue's FIFO tie-break at equal timestamps, observed end to end.
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 32; ++i)
    k.schedule_call(TimePoint::origin() + 3_us, [&order, i] { order.push_back(i); });
  k.run();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(KernelTest, TimeLimitHonoredAcrossLadderWindows) {
  // Events spread far apart so successive run() horizons fall between
  // ladder windows; each run must stop exactly at its horizon and resume
  // cleanly on the next call.
  Kernel k;
  std::vector<std::int64_t> fired;
  for (int i = 1; i <= 10; ++i) {
    k.schedule_call(TimePoint::origin() + Duration::us(i * 100),
                    [&fired, &k] { fired.push_back(k.now().count()); });
  }
  EXPECT_EQ(k.run(TimePoint::origin() + 350_us), Kernel::RunResult::kTimeLimit);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(k.now(), TimePoint::origin() + 350_us);
  EXPECT_EQ(k.run(TimePoint::origin() + 550_us), Kernel::RunResult::kTimeLimit);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(k.run(), Kernel::RunResult::kIdle);
  EXPECT_EQ(fired.size(), 10u);
  EXPECT_EQ(fired.back(), (1000_us).count());
}

TEST(KernelTest, ScheduleCallRunsAtTime) {
  Kernel k;
  std::int64_t called_at = -1;
  k.schedule_call(TimePoint::origin() + 7_us,
                  [&] { called_at = k.now().count(); });
  k.run();
  EXPECT_EQ(called_at, (7_us).count());
  EXPECT_EQ(k.stats().callbacks, 1u);
}

TEST(KernelTest, ProcessExceptionPropagatesWithName) {
  Kernel k;
  k.spawn("bad_proc", [&]() -> Process {
    co_await k.delay(1_us);
    throw std::runtime_error("boom");
  });
  try {
    k.run();
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("bad_proc"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(KernelTest, DestructionReclaimsSuspendedProcesses) {
  // A process blocked forever must be destroyed cleanly with its locals.
  auto cleaned = std::make_shared<bool>(false);
  {
    Kernel k;
    Event ev(k, "never");
    struct Sentinel {
      std::shared_ptr<bool> flag;
      ~Sentinel() { *flag = true; }
    };
    k.spawn("waiter", [&k, &ev, cleaned]() -> Process {
      Sentinel s{cleaned};
      co_await ev.wait();
    });
    k.run();
    EXPECT_EQ(k.live_process_count(), 1u);
    EXPECT_EQ(k.blocked_process_names(),
              std::vector<std::string>{"waiter"});
  }
  EXPECT_TRUE(*cleaned);
}

TEST(EventTest, NotifyWakesAllWaiters) {
  Kernel k;
  Event ev(k, "e");
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    k.spawn("w" + std::to_string(i), [&]() -> Process {
      co_await ev.wait();
      ++woken;
    });
  }
  k.spawn("notifier", [&]() -> Process {
    co_await k.delay(1_us);
    ev.notify();
  });
  k.run();
  EXPECT_EQ(woken, 3);
}

TEST(EventTest, NotifyAtWakesLaterWaiters) {
  Kernel k;
  Event ev(k, "e");
  std::int64_t woke_at = -1;
  ev.notify_at(TimePoint::origin() + 5_us);
  k.spawn("w", [&]() -> Process {
    co_await k.delay(2_us);  // starts waiting after the notify was armed
    co_await ev.wait();
    woke_at = k.now().count();
  });
  k.run();
  EXPECT_EQ(woke_at, (5_us).count());
}

TEST(EventTest, NotifyWithoutWaitersIsNoop) {
  Kernel k;
  Event ev(k, "e");
  ev.notify();
  EXPECT_EQ(k.run(), Kernel::RunResult::kIdle);
}

TEST(RendezvousTest, WriterFirstCompletesAtReaderArrival) {
  Kernel k;
  Rendezvous<Tok> ch(k, "c");
  std::int64_t write_done = -1, read_done = -1;
  int value = 0;
  k.spawn("w", [&]() -> Process {
    co_await ch.write(Tok{42});
    write_done = k.now().count();
  });
  k.spawn("r", [&]() -> Process {
    co_await k.delay(5_us);
    Tok t = co_await ch.read();
    value = t.v;
    read_done = k.now().count();
  });
  k.run();
  EXPECT_EQ(value, 42);
  EXPECT_EQ(write_done, (5_us).count());
  EXPECT_EQ(read_done, (5_us).count());
  EXPECT_EQ(ch.transfers(), 1u);
}

TEST(RendezvousTest, ReaderFirstCompletesAtWriteOffer) {
  Kernel k;
  Rendezvous<Tok> ch(k, "c");
  std::int64_t read_done = -1;
  k.spawn("r", [&]() -> Process {
    (void)co_await ch.read();
    read_done = k.now().count();
  });
  k.spawn("w", [&]() -> Process {
    co_await k.delay(3_us);
    co_await ch.write(Tok{1});
  });
  k.run();
  EXPECT_EQ(read_done, (3_us).count());
}

TEST(RendezvousTest, TransferHookReportsInstantAndIndex) {
  Kernel k;
  Rendezvous<Tok> ch(k, "c");
  std::vector<std::pair<std::uint64_t, std::int64_t>> log;
  ch.on_transfer([&](std::uint64_t idx, TimePoint t, const Tok&) {
    log.emplace_back(idx, t.count());
  });
  k.spawn("w", [&]() -> Process {
    for (int i = 0; i < 3; ++i) {
      co_await k.delay(1_us);
      co_await ch.write(Tok{i});
    }
  });
  k.spawn("r", [&]() -> Process {
    for (int i = 0; i < 3; ++i) (void)co_await ch.read();
  });
  k.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], (std::pair<std::uint64_t, std::int64_t>{0, (1_us).count()}));
  EXPECT_EQ(log[2].first, 2u);
}

TEST(RendezvousTest, SecondReaderThrows) {
  Kernel k;
  Rendezvous<Tok> ch(k, "c");
  k.spawn("r1", [&]() -> Process { (void)co_await ch.read(); });
  k.spawn("r2", [&]() -> Process { (void)co_await ch.read(); });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(RendezvousTest, GatedReaderCompletesAtComputedInstant) {
  Kernel k;
  Rendezvous<Tok> ch(k, "c");
  ch.set_gated_reader([](TimePoint offer, const Tok&) {
    return offer + 4_us;  // "computed" completion
  });
  std::int64_t write_done = -1;
  k.spawn("w", [&]() -> Process {
    co_await k.delay(1_us);
    co_await ch.write(Tok{9});
    write_done = k.now().count();
  });
  k.run();
  EXPECT_EQ(write_done, (5_us).count());
  EXPECT_EQ(ch.transfers(), 1u);
}

TEST(RendezvousTest, GatedReaderImmediateCompletionSkipsSuspend) {
  Kernel k;
  Rendezvous<Tok> ch(k, "c");
  ch.set_gated_reader([](TimePoint offer, const Tok&) { return offer; });
  k.spawn("w", [&]() -> Process {
    co_await k.delay(1_us);
    co_await ch.write(Tok{1});
  });
  const auto resumes_before = k.stats().resumes;
  k.run();
  // spawn resume + delay resume only: the write completed inline.
  EXPECT_EQ(k.stats().resumes - resumes_before, 2u);
}

TEST(RendezvousTest, GatedReaderDeferredResolution) {
  Kernel k;
  Rendezvous<Tok> ch(k, "c");
  ch.set_gated_reader(
      [](TimePoint, const Tok&) { return std::optional<TimePoint>{}; });
  std::int64_t write_done = -1;
  k.spawn("w", [&]() -> Process {
    co_await ch.write(Tok{1});
    write_done = k.now().count();
  });
  k.schedule_call(TimePoint::origin() + 8_us, [&] {
    ch.resolve_gated(TimePoint::origin() + 8_us);
  });
  k.run();
  EXPECT_EQ(write_done, (8_us).count());
}

// resolve_gated at the *current* instant skips the queue: the writer is
// resumed through Kernel::resume_now (the inline-resume fast path), which
// the stats report. Resolution from hook/callback context is the batched
// equivalent model's timestep-boundary case.
TEST(RendezvousTest, SameInstantResolutionResumesInline) {
  Kernel k;
  Rendezvous<Tok> ch(k, "c");
  ch.set_gated_reader(
      [](TimePoint, const Tok&) { return std::optional<TimePoint>{}; });
  std::int64_t write_done = -1;
  k.spawn("w", [&]() -> Process {
    co_await ch.write(Tok{1});
    write_done = k.now().count();
  });
  k.schedule_call(TimePoint::origin() + 8_us, [&] {
    ch.resolve_gated(k.now());  // same instant: no queue round-trip
  });
  k.run();
  EXPECT_EQ(write_done, (8_us).count());
  EXPECT_EQ(k.stats().inline_resumes, 1u);
}

// From inside another process's resume (dispatch depth > 0) the inline
// path would nest coroutine stacks, so resume_now degrades to a queued
// same-instant event — ordering-preserving, never inline.
TEST(RendezvousTest, ResolutionInsideDispatchFallsBackToQueue) {
  Kernel k;
  Rendezvous<Tok> ch(k, "c");
  ch.set_gated_reader(
      [](TimePoint, const Tok&) { return std::optional<TimePoint>{}; });
  std::int64_t write_done = -1;
  k.spawn("w", [&]() -> Process {
    co_await ch.write(Tok{1});
    write_done = k.now().count();
  });
  k.spawn("resolver", [&]() -> Process {
    co_await k.delay(8_us);
    ch.resolve_gated(k.now());  // we are mid-resume: must not nest
  });
  k.run();
  EXPECT_EQ(write_done, (8_us).count());
  EXPECT_EQ(k.stats().inline_resumes, 0u);
}

TEST(RendezvousTest, ResolveWithoutParkedOfferThrows) {
  Kernel k;
  Rendezvous<Tok> ch(k, "c");
  ch.set_gated_reader([](TimePoint o, const Tok&) { return o; });
  EXPECT_THROW(ch.resolve_gated(TimePoint::origin()), SimulationError);
}

TEST(FifoTest, WriteCompletesImmediatelyWhenSpace) {
  Kernel k;
  Fifo<Tok> ch(k, "f", 2);
  std::int64_t w0 = -1, w1 = -1;
  k.spawn("w", [&]() -> Process {
    co_await ch.write(Tok{1});
    w0 = k.now().count();
    co_await k.delay(1_us);
    co_await ch.write(Tok{2});
    w1 = k.now().count();
  });
  k.run();
  EXPECT_EQ(w0, 0);
  EXPECT_EQ(w1, (1_us).count());
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.writes_completed(), 2u);
}

TEST(FifoTest, WriteBlocksWhenFullUntilRead) {
  Kernel k;
  Fifo<Tok> ch(k, "f", 1);
  std::int64_t w1 = -1;
  k.spawn("w", [&]() -> Process {
    co_await ch.write(Tok{1});
    co_await ch.write(Tok{2});  // blocks: capacity 1
    w1 = k.now().count();
  });
  k.spawn("r", [&]() -> Process {
    co_await k.delay(6_us);
    (void)co_await ch.read();
  });
  k.run();
  EXPECT_EQ(w1, (6_us).count());
}

TEST(FifoTest, ReadBlocksWhenEmpty) {
  Kernel k;
  Fifo<Tok> ch(k, "f", 4);
  std::int64_t r0 = -1;
  int v = 0;
  k.spawn("r", [&]() -> Process {
    Tok t = co_await ch.read();
    v = t.v;
    r0 = k.now().count();
  });
  k.spawn("w", [&]() -> Process {
    co_await k.delay(2_us);
    co_await ch.write(Tok{5});
  });
  k.run();
  EXPECT_EQ(v, 5);
  EXPECT_EQ(r0, (2_us).count());
}

TEST(FifoTest, OrderPreserved) {
  Kernel k;
  Fifo<Tok> ch(k, "f", 3);
  std::vector<int> got;
  k.spawn("w", [&]() -> Process {
    for (int i = 0; i < 5; ++i) co_await ch.write(Tok{i});
  });
  k.spawn("r", [&]() -> Process {
    for (int i = 0; i < 5; ++i) {
      Tok t = co_await ch.read();
      got.push_back(t.v);
      co_await k.delay(1_us);
    }
  });
  k.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(FifoTest, HooksReportBothInstantSeries) {
  Kernel k;
  Fifo<Tok> ch(k, "f", 1);
  std::vector<std::int64_t> writes, reads;
  ch.on_write_complete(
      [&](std::uint64_t, TimePoint t, const Tok&) { writes.push_back(t.count()); });
  ch.on_read_complete(
      [&](std::uint64_t, TimePoint t, const Tok&) { reads.push_back(t.count()); });
  k.spawn("w", [&]() -> Process {
    co_await ch.write(Tok{1});
    co_await ch.write(Tok{2});  // completes when the reader frees the slot
  });
  k.spawn("r", [&]() -> Process {
    co_await k.delay(3_us);
    (void)co_await ch.read();
    co_await k.delay(3_us);
    (void)co_await ch.read();
  });
  k.run();
  ASSERT_EQ(writes.size(), 2u);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(writes[0], 0);
  EXPECT_EQ(writes[1], (3_us).count());  // slot freed by the first read
  EXPECT_EQ(reads[0], (3_us).count());
  EXPECT_EQ(reads[1], (6_us).count());
}

TEST(FifoTest, ZeroCapacityRejected) {
  Kernel k;
  EXPECT_THROW(Fifo<Tok>(k, "f", 0), DescriptionError);
}

}  // namespace
}  // namespace maxev::sim
