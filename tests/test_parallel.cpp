#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/didactic.hpp"
#include "gen/random_arch.hpp"
#include "lte/receiver.hpp"
#include "model/desc.hpp"
#include "study/study.hpp"
#include "trace/instants.hpp"
#include "trace/usage.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

/// The threading layer (docs/DESIGN.md §11): util::ThreadPool semantics,
/// and the determinism contract of both parallelism levers — a
/// thread-parallel study matrix and parallel per-group batch drains must be
/// bit-identical to their serial counterparts, run after run.

namespace maxev {
namespace {

using study::Backend;
using study::Report;
using study::RunConfig;
using study::Scenario;
using study::StudyOptions;

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ZeroAndOneIndexDegenerate) {
  util::ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ClampsZeroWorkersToOne) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<int> calls{0};
  pool.parallel_for(8, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPoolTest, LowestIndexExceptionWins) {
  util::ThreadPool pool(4);
  // Several indices throw; completion order is scheduling noise, but the
  // rethrown exception must always be index 3's.
  for (int round = 0; round < 20; ++round) {
    try {
      pool.parallel_for(64, [&](std::size_t i) {
        if (i == 3 || i == 40 || i == 63)
          throw std::runtime_error("idx " + std::to_string(i));
      });
      FAIL() << "parallel_for swallowed the exceptions";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "idx 3");
    }
  }
}

TEST(ThreadPoolTest, ExceptionDoesNotAbandonOtherIndices) {
  util::ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(32);
  EXPECT_THROW(pool.parallel_for(32,
                                 [&](std::size_t i) {
                                   hits[i].fetch_add(1);
                                   if (i == 0) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  // Every index still ran (the barrier completes before rethrowing).
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // A pool task fanning out again must not deadlock even when every worker
  // is occupied by the outer level: the nested caller claims and runs its
  // own indices.
  util::ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 64);
}

TEST(ThreadPoolTest, SubmitRunsAndPropagatesExceptions) {
  util::ThreadPool pool(2);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsOutstandingTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 16; ++i)
      futures.push_back(pool.submit([&] { ran.fetch_add(1); }));
    // Destructor joins: every submitted task ran before it returns.
  }
  EXPECT_EQ(ran.load(), 16);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPoolTest, ResolveMapsKnobToWorkerCount) {
  EXPECT_EQ(util::ThreadPool::resolve(1), 1u);
  EXPECT_EQ(util::ThreadPool::resolve(7), 7u);
  EXPECT_GE(util::ThreadPool::resolve(0), 1u);  // 0 = hardware concurrency
}

// ------------------------------------------------- determinism: the matrix

/// Blank the wall-clock-dependent fields; everything else in a report must
/// be bit-identical across thread counts and repeated runs.
Report blank_walls(Report rep) {
  for (study::Cell& c : rep.cells) {
    c.metrics.wall_seconds = 0.0;
    c.speedup_vs_reference = c.is_reference ? 1.0 : 0.0;
  }
  return rep;
}

/// A small but representative matrix: a solo didactic scenario plus a
/// composed two-sub-batch scenario, against baseline + equivalent.
study::Study matrix_study() {
  study::Study st;
  gen::DidacticConfig cfg;
  cfg.tokens = 20;
  st.add(Scenario("didactic", gen::make_didactic(cfg)));

  gen::DidacticConfig ca;
  ca.tokens = 15;
  gen::DidacticConfig cb;
  cb.tokens = 25;
  const auto a = model::share(gen::make_didactic(ca));
  const auto b = model::share(gen::make_didactic(cb));
  std::vector<Scenario> parts;
  parts.emplace_back("a0", a);
  parts.emplace_back("b0", b);
  parts.emplace_back("a1", a);
  parts.emplace_back("b1", b);
  st.add(study::compose("mix22", parts));

  st.add(Backend::baseline());
  st.add(Backend::equivalent());
  return st;
}

TEST(ParallelStudyTest, RepeatedRunsMatchSerialByteForByte) {
  const study::Study st = matrix_study();
  StudyOptions opts;
  const Report ref = blank_walls(st.run(opts));
  const std::string ref_json = ref.to_json();

  for (const int threads : {2, 8}) {
    opts.threads = threads;
    opts.group_threads = threads;
    for (int round = 0; round < 3; ++round) {
      const Report rep = blank_walls(st.run(opts));
      EXPECT_EQ(rep.to_json(), ref_json)
          << "threads=" << threads << " round=" << round;
    }
  }
}

TEST(ParallelStudyTest, PerCellKernelStatsAreIndependent) {
  // Each cell's counters come from that cell's own kernel; a parallel
  // measure phase must not leak or aggregate counts across cells.
  const study::Study st = matrix_study();
  StudyOptions opts;
  const Report serial = st.run(opts);
  opts.threads = 8;
  const Report parallel = st.run(opts);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const study::Cell& s = serial.cells[i];
    const study::Cell& p = parallel.cells[i];
    EXPECT_EQ(s.scenario, p.scenario);
    EXPECT_EQ(s.backend, p.backend);
    EXPECT_EQ(s.metrics.kernel_events, p.metrics.kernel_events) << s.scenario;
    EXPECT_EQ(s.metrics.resumes, p.metrics.resumes) << s.scenario;
    EXPECT_EQ(s.metrics.relation_events, p.metrics.relation_events)
        << s.scenario;
    EXPECT_EQ(s.metrics.instances_computed, p.metrics.instances_computed)
        << s.scenario;
    EXPECT_EQ(s.metrics.arc_terms, p.metrics.arc_terms) << s.scenario;
    EXPECT_EQ(s.metrics.sim_end, p.metrics.sim_end) << s.scenario;
  }
}

TEST(ParallelStudyTest, OptionErrorsIdenticalAtAnyThreadCount) {
  gen::DidacticConfig cfg;
  cfg.tokens = 25;
  study::Study st;
  st.add(Scenario("didactic", gen::make_didactic(cfg)));
  st.add(Backend::baseline());
  for (const int threads : {1, 8}) {
    StudyOptions opts;
    opts.threads = threads;
    opts.repetitions = -1;  // invalid: must throw identically at any setting
    EXPECT_THROW((void)st.run(opts), Error) << "threads=" << threads;
    opts.repetitions = 1;
    EXPECT_TRUE(st.run(opts).cells[0].metrics.completed)
        << "threads=" << threads;
  }
}

// ------------------------------------- determinism: per-group batch drains

/// The ISSUE acceptance workload: 4+4 LTE receivers of two carrier
/// variants — two equal-structure sub-batches in one kernel.
Scenario lte_4p4() {
  lte::ReceiverConfig c1;
  c1.symbols = 2 * lte::kSymbolsPerSubframe;
  c1.seed = 7;
  lte::ReceiverConfig c2;
  c2.symbols = 3 * lte::kSymbolsPerSubframe;
  c2.seed = 8;
  c2.dsp_ops_per_second = 9e9;
  const auto rx1 = model::share(lte::make_receiver(c1));
  const auto rx2 = model::share(lte::make_receiver(c2));
  std::vector<Scenario> parts;
  for (int i = 0; i < 4; ++i) {
    parts.emplace_back("cc0rx" + std::to_string(i), rx1);
    parts.emplace_back("cc1rx" + std::to_string(i), rx2);
  }
  return study::compose("ca44", parts);
}

/// Run the composed scenario on the equivalent backend with the given
/// group-drain thread count and compare everything observable against the
/// serial reference model.
void expect_parallel_drain_matches_serial(const Scenario& scenario,
                                          int threads) {
  RunConfig serial_rc;
  auto ref = Backend::equivalent().instantiate(scenario, serial_rc);
  ASSERT_TRUE(ref->run().completed);

  RunConfig rc;
  rc.threads = threads;
  auto par = Backend::equivalent().instantiate(scenario, rc);
  ASSERT_TRUE(par->run().completed) << "threads=" << threads;

  EXPECT_EQ(trace::compare_instants(ref->instants(), par->instants()),
            std::nullopt)
      << "threads=" << threads;
  trace::UsageTraceSet ru = ref->usage();
  trace::UsageTraceSet pu = par->usage();
  ru.sort_all();
  pu.sort_all();
  EXPECT_EQ(trace::compare_usage(ru, pu), std::nullopt)
      << "threads=" << threads;

  EXPECT_EQ(ref->end_time(), par->end_time());
  EXPECT_EQ(ref->relation_events(), par->relation_events());
  EXPECT_EQ(ref->instances_computed(), par->instances_computed());
  EXPECT_EQ(ref->arc_terms_evaluated(), par->arc_terms_evaluated());
  EXPECT_EQ(ref->kernel_stats().events_scheduled,
            par->kernel_stats().events_scheduled);
  EXPECT_EQ(ref->kernel_stats().resumes, par->kernel_stats().resumes);
  EXPECT_EQ(ref->kernel_stats().inline_resumes,
            par->kernel_stats().inline_resumes);
}

TEST(ParallelDrainTest, LteFourPlusFourMatchesSerial) {
  const Scenario mixed = lte_4p4();
  ASSERT_EQ(mixed.batch_groups().size(), 2u);
  for (const int threads : {2, 4, 8})
    expect_parallel_drain_matches_serial(mixed, threads);
}

TEST(ParallelDrainTest, RepeatedRunsAreStable) {
  // The stress round: the parallel drain re-run N times must keep
  // producing the serial traces (a scheduling-order sensitivity would show
  // up as flaky inequality here, and as a race under the TSan CI job).
  const Scenario mixed = lte_4p4();
  for (int round = 0; round < 5; ++round)
    expect_parallel_drain_matches_serial(mixed, 4);
}

TEST(ParallelDrainTest, RandomArchGroupsMatchSerial) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 25;
  cfg.multi_rate_producer_probability = 0.4;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto a = model::share(gen::make_random_architecture(seed, cfg));
    const auto b =
        model::share(gen::make_random_architecture(seed + 100, cfg));
    std::vector<Scenario> parts;
    parts.emplace_back("a0", a);
    parts.emplace_back("b0", b);
    parts.emplace_back("a1", a);
    parts.emplace_back("b1", b);
    const Scenario mixed = study::compose("rmix", parts);
    expect_parallel_drain_matches_serial(mixed, 2);
  }
}

TEST(ParallelDrainTest, SingleGroupFallsBackToSerialDrain) {
  // A homogeneous composition has one sub-batch: threads > 1 must take the
  // serial drain (nothing to overlap) and still be exact.
  gen::DidacticConfig cfg;
  cfg.tokens = 30;
  const auto d = model::share(gen::make_didactic(cfg));
  std::vector<Scenario> parts;
  parts.emplace_back("i0", d);
  parts.emplace_back("i1", d);
  parts.emplace_back("i2", d);
  const Scenario homo = study::compose("homo3", parts);
  ASSERT_EQ(homo.batch_groups().size(), 1u);
  expect_parallel_drain_matches_serial(homo, 8);
}

// ------------------------------------------------- both levers stacked

TEST(ParallelStudyTest, MatrixAndGroupThreadsCompose) {
  // threads (cells) on top of group_threads (drains inside each composed
  // cell): the nested fan-out exercises ThreadPool reentrancy on real
  // work, and the report must still match the all-serial bytes.
  study::Study st;
  st.add(lte_4p4());
  st.add(Backend::baseline());
  st.add(Backend::equivalent());

  StudyOptions opts;
  const std::string ref_json = blank_walls(st.run(opts)).to_json();
  opts.threads = 4;
  opts.group_threads = 4;
  const std::string par_json = blank_walls(st.run(opts)).to_json();
  EXPECT_EQ(par_json, ref_json);
}

}  // namespace
}  // namespace maxev
