#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "lte/params.hpp"
#include "lte/receiver.hpp"
#include "lte/scenario.hpp"
#include "lte/workload.hpp"
#include "model/baseline.hpp"
#include "tdg/derive.hpp"
#include "tdg/simplify.hpp"

namespace maxev::lte {
namespace {

TEST(ParamsTest, SymbolTimingConstants) {
  EXPECT_EQ(kSymbolsPerSubframe, 14);
  // 14 symbols must fit in (almost exactly) one millisecond.
  const auto total = kSymbolPeriod * kSymbolsPerSubframe;
  EXPECT_NEAR(static_cast<double>(total.count()),
              static_cast<double>(kSubframePeriod.count()), 1e4);
  EXPECT_NEAR(kSymbolPeriod.micros(), 71.4286, 1e-3);
}

TEST(ParamsTest, BitsPerSymbol) {
  FrameParams p;
  p.n_prb = 100;
  p.modulation = Modulation::kQam64;
  p.code_rate = 0.75;
  EXPECT_EQ(p.coded_bits_per_symbol(), 100 * 12 * 6);
  EXPECT_EQ(p.info_bits_per_symbol(), 5400);
}

TEST(ParamsTest, ControlSymbolDetection) {
  SymbolInfo s;
  s.symbol_index = 0;
  EXPECT_TRUE(s.is_control());
  s.symbol_index = kControlSymbols;
  EXPECT_FALSE(s.is_control());
}

TEST(WorkloadTest, AttrsEncodeSymbol) {
  FrameParams p;
  p.n_prb = 50;
  p.modulation = Modulation::kQam16;
  SymbolInfo data{p, 5};
  const auto a = symbol_attrs(data);
  EXPECT_EQ(a.size, 50 * 12 * 4);
  EXPECT_DOUBLE_EQ(a.params[0], 50.0);
  EXPECT_DOUBLE_EQ(a.params[1], 4.0);
  EXPECT_DOUBLE_EQ(a.params[2], 1.0);
  SymbolInfo ctrl{p, 1};
  const auto c = symbol_attrs(ctrl);
  EXPECT_EQ(c.size, 0);
  EXPECT_DOUBLE_EQ(c.params[2], 0.0);
}

TEST(WorkloadTest, DataSymbolsCostMoreThanControl) {
  FrameParams p;
  p.n_prb = 100;
  p.modulation = Modulation::kQam64;
  const auto data = symbol_attrs({p, 7});
  const auto ctrl = symbol_attrs({p, 0});
  EXPECT_GT(ops_dsp_total(data), ops_dsp_total(ctrl));
  EXPECT_GT(ops_channel_decoding(data), ops_channel_decoding(ctrl));
}

TEST(WorkloadTest, DspFitsSymbolPeriod) {
  // Real-time sanity: the heaviest symbol's DSP work at the modeled rate
  // must fit within one symbol period.
  FrameParams p;
  p.n_prb = 100;
  p.modulation = Modulation::kQam64;
  const auto a = symbol_attrs({p, 7});
  const double busy_us =
      static_cast<double>(ops_dsp_total(a)) / kDspOpsPerSecond * 1e6;
  EXPECT_LT(busy_us, kSymbolPeriod.micros());
  EXPECT_GT(busy_us, 0.3 * kSymbolPeriod.micros());
}

TEST(WorkloadTest, DecoderLoadScalesWithModulation) {
  FrameParams p;
  p.n_prb = 100;
  p.code_rate = 0.75;
  p.modulation = Modulation::kQpsk;
  const auto qpsk = ops_channel_decoding(symbol_attrs({p, 7}));
  p.modulation = Modulation::kQam64;
  const auto qam64 = ops_channel_decoding(symbol_attrs({p, 7}));
  EXPECT_EQ(qam64, qpsk * 3);
}

TEST(ReceiverTest, StructureMatchesPaper) {
  ReceiverConfig cfg;
  cfg.symbols = 14;
  const auto d = make_receiver(cfg);
  // Eight functions, two processing resources (paper Section V).
  EXPECT_EQ(d.functions().size(), 8u);
  EXPECT_EQ(d.resources().size(), 2u);
  EXPECT_EQ(d.schedule(0).size(), 7u);  // DSP runs seven functions
  EXPECT_EQ(d.schedule(1).size(), 1u);  // decoder is dedicated
  EXPECT_EQ(d.channels().size(), 9u);
}

TEST(ReceiverTest, TdgIsCompact) {
  ReceiverConfig cfg;
  cfg.symbols = 14;
  const auto d = make_receiver(cfg);
  tdg::Graph g = tdg::fold_pass_through(tdg::derive_full_tdg(d).graph);
  // Paper: "This graph contains 11 nodes." Our derivation yields 10 live
  // nodes (u, the 8 channel instants, the output offer) and 12 in the
  // Fig. 3 counting convention (two history references), bracketing the
  // published count; see docs/EXPERIMENTS.md.
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.paper_node_count(), 12u);
}

TEST(ReceiverTest, BaselineProcessesOneFrame) {
  ReceiverConfig cfg;
  cfg.symbols = 14;
  cfg.schedule = fixed_frame_schedule({100, Modulation::kQam64, 0.75});
  const auto d = make_receiver(cfg);
  model::ModelRuntime rt(d);
  const auto outcome = rt.run();
  ASSERT_TRUE(outcome.completed) << outcome.stall_report;
  // All 14 symbols decoded within ~2 subframes.
  EXPECT_LT(rt.end_time().count(), (2 * kSubframePeriod).count());
  EXPECT_EQ(rt.sink_received(0), 14u);
}

TEST(ReceiverTest, EquivalenceOnVaryingFrames) {
  ReceiverConfig cfg;
  cfg.symbols = 14 * 20;  // 20 subframes with varying parameters
  cfg.seed = 7;
  const auto d = make_receiver(cfg);
  core::ExperimentOptions opts;
  opts.repetitions = 1;
  const auto cmp = core::run_comparison(d, opts);
  EXPECT_TRUE(cmp.accurate()) << cmp.to_string();
  EXPECT_GT(cmp.event_ratio, 3.0);
}

TEST(ScenarioTest, GopsLevelsMatchFigure6Shape) {
  // One subframe at full allocation: DSP windowed GOPS must sit in the
  // published 4 (control) / ~8 (data) bands; the decoder's data-symbol
  // GOPS must dwarf the DSP's (75-150 band).
  ReceiverConfig cfg;
  cfg.symbols = 14;
  cfg.schedule = fixed_frame_schedule({100, Modulation::kQam64, 0.75});
  const auto d = make_receiver(cfg);
  model::ModelRuntime rt(d);
  ASSERT_TRUE(rt.run().completed);
  const SymbolGops gops = per_symbol_gops(rt.usage());
  ASSERT_GE(gops.dsp.size(), 14u);

  // Control region (symbols 0..2): ~4 GOPS.
  for (int s = 0; s < 3; ++s)
    EXPECT_NEAR(gops.dsp[static_cast<std::size_t>(s)].gops, 4.0, 1.5)
        << "control symbol " << s;
  // Data region: ~8 GOPS.
  for (int s = 4; s < 12; ++s)
    EXPECT_NEAR(gops.dsp[static_cast<std::size_t>(s)].gops, 8.0, 2.0)
        << "data symbol " << s;

  double peak_dec = 0.0;
  for (const auto& w : gops.decoder) peak_dec = std::max(peak_dec, w.gops);
  EXPECT_GT(peak_dec, 75.0);
  EXPECT_LE(peak_dec, 150.0 + 1e-6);
}

TEST(ScenarioTest, DspFeasibilityReport) {
  ReceiverConfig cfg;
  cfg.symbols = 14;
  cfg.schedule = fixed_frame_schedule({100, Modulation::kQam64, 0.75});
  const auto d = make_receiver(cfg);
  model::ModelRuntime rt(d);
  ASSERT_TRUE(rt.run().completed);
  const Feasibility f = dsp_feasibility(rt.usage());
  EXPECT_TRUE(f.feasible) << f.to_string();
  EXPECT_GT(f.worst_symbol_busy_us, 0.0);
  EXPECT_NE(f.to_string().find("feasible"), std::string::npos);
}

TEST(ScenarioTest, FrameScheduleDeterministic) {
  const FrameSchedule a = varying_frame_schedule(5);
  const FrameSchedule b = varying_frame_schedule(5);
  for (std::uint64_t s = 0; s < 20; ++s) {
    EXPECT_EQ(a(s).n_prb, b(s).n_prb);
    EXPECT_EQ(static_cast<int>(a(s).modulation),
              static_cast<int>(b(s).modulation));
  }
}

}  // namespace
}  // namespace maxev::lte
