#include <gtest/gtest.h>

#include "core/lt_runner.hpp"
#include "gen/didactic.hpp"
#include "model/baseline.hpp"
#include "util/error.hpp"

namespace maxev::core {
namespace {

using namespace maxev::literals;

TEST(LtRunnerTest, RejectsBadQuantum) {
  gen::DidacticConfig cfg;
  cfg.tokens = 10;
  const auto d = gen::make_didactic(cfg);
  EXPECT_THROW(LooselyTimedModel(d, Duration::ps(0)), DescriptionError);
}

TEST(LtRunnerTest, RunsToCompletion) {
  gen::DidacticConfig cfg;
  cfg.tokens = 200;
  const auto d = gen::make_didactic(cfg);
  LooselyTimedModel lt(d, 10_us);
  EXPECT_TRUE(lt.run().completed);
  EXPECT_GT(lt.end_time().count(), 0);
}

TEST(LtRunnerTest, ErrorShrinksWithSmallerQuantum) {
  gen::DidacticConfig cfg;
  cfg.tokens = 400;
  cfg.source_period = 20_us;
  const auto d = gen::make_didactic(cfg);

  model::ModelRuntime baseline(d);
  ASSERT_TRUE(baseline.run().completed);

  LooselyTimedModel fine(d, Duration::ns(100));
  ASSERT_TRUE(fine.run().completed);
  const auto fine_err = fine.error_against(baseline.instants());

  LooselyTimedModel coarse(d, Duration::ms(10));
  ASSERT_TRUE(coarse.run().completed);
  const auto coarse_err = coarse.error_against(baseline.instants());

  EXPECT_LE(fine_err.mean_abs_seconds, coarse_err.mean_abs_seconds);
  EXPECT_GT(coarse_err.instants, 0u);
}

TEST(LtRunnerTest, FewerEventsWithLargerQuantum) {
  gen::DidacticConfig cfg;
  cfg.tokens = 400;
  const auto d = gen::make_didactic(cfg);
  LooselyTimedModel fine(d, Duration::ns(100));
  ASSERT_TRUE(fine.run().completed);
  LooselyTimedModel coarse(d, Duration::ms(100));
  ASSERT_TRUE(coarse.run().completed);
  EXPECT_LT(coarse.kernel_stats().events_scheduled,
            fine.kernel_stats().events_scheduled);
}

TEST(LtRunnerTest, LtIsNotExact) {
  // The whole point of the paper: LT trades accuracy for speed. With a
  // shared sequential resource and a coarse quantum, instants drift.
  gen::DidacticConfig cfg;
  cfg.tokens = 300;
  const auto d = gen::make_didactic(cfg);
  model::ModelRuntime baseline(d);
  ASSERT_TRUE(baseline.run().completed);
  LooselyTimedModel coarse(d, Duration::ms(100));
  ASSERT_TRUE(coarse.run().completed);
  const auto err = coarse.error_against(baseline.instants());
  EXPECT_GT(err.instants, 0u);
  // Self-timed didactic pipelines contend on P1; unsimulated rendezvous
  // back-pressure shows up as timing error.
  EXPECT_GT(err.max_abs_seconds, 0.0);
}

}  // namespace
}  // namespace maxev::core
