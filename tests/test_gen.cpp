#include <gtest/gtest.h>

#include "gen/chains.hpp"
#include "gen/didactic.hpp"
#include "gen/padded.hpp"
#include "gen/random_arch.hpp"
#include "model/baseline.hpp"
#include "util/error.hpp"

namespace maxev::gen {
namespace {

TEST(DidacticTest, StructureMatchesFigure1) {
  const model::ArchitectureDesc d = make_didactic({});
  EXPECT_EQ(d.functions().size(), 4u);
  EXPECT_EQ(d.channels().size(), 6u);
  EXPECT_EQ(d.resources().size(), 2u);
  EXPECT_EQ(d.schedule(0), (std::vector<model::FunctionId>{0, 1}));  // P1
  EXPECT_EQ(d.resources()[1].policy, model::ResourcePolicy::kConcurrent);
  EXPECT_EQ(d.sources()[0].count, 20000u);
}

TEST(DidacticTest, AttrsDeterministicInSeed) {
  DidacticConfig a, b;
  a.seed = b.seed = 99;
  const auto da = make_didactic(a);
  const auto db = make_didactic(b);
  for (std::uint64_t k = 0; k < 50; ++k)
    EXPECT_EQ(da.sources()[0].attrs(k), db.sources()[0].attrs(k));
}

TEST(DidacticTest, SizeRangeRespected) {
  DidacticConfig cfg;
  cfg.size_min = 10;
  cfg.size_max = 20;
  const auto d = make_didactic(cfg);
  for (std::uint64_t k = 0; k < 200; ++k) {
    const auto a = d.sources()[0].attrs(k);
    EXPECT_GE(a.size, 10);
    EXPECT_LE(a.size, 20);
  }
}

TEST(ChainTest, BlockCountScalesStructure) {
  for (std::size_t b = 1; b <= 4; ++b) {
    ChainConfig cfg;
    cfg.blocks = b;
    cfg.block.tokens = 5;
    const auto d = make_chain(cfg);
    EXPECT_EQ(d.functions().size(), 4u * b);
    EXPECT_EQ(d.channels().size(), 6u * b - (b - 1));
    EXPECT_EQ(d.resources().size(), 2u * b);
  }
  EXPECT_THROW(make_chain(ChainConfig{0, {}}), DescriptionError);
  EXPECT_THROW(make_table1_example(5), DescriptionError);
}

TEST(ChainTest, ChainsRunToCompletion) {
  ChainConfig cfg;
  cfg.blocks = 3;
  cfg.block.tokens = 40;
  const model::ArchitectureDesc d = make_chain(cfg);
  model::ModelRuntime rt(d);
  const auto outcome = rt.run();
  EXPECT_TRUE(outcome.completed) << outcome.stall_report;
}

TEST(PipelineTest, XSizeControlsDepth) {
  PipelineConfig cfg;
  cfg.x_size = 12;
  cfg.tokens = 5;
  const auto d = make_pipeline(cfg);
  EXPECT_EQ(d.functions().size(), 11u);
  EXPECT_EQ(d.channels().size(), 12u);
  EXPECT_THROW(make_pipeline(PipelineConfig{1, 5, 1, false, 1e9, 1, 2}),
               DescriptionError);
}

TEST(PipelineTest, SharedProcessorVariantCompletes) {
  PipelineConfig cfg;
  cfg.x_size = 6;
  cfg.tokens = 30;
  cfg.shared_processor = true;
  const model::ArchitectureDesc d = make_pipeline(cfg);
  model::ModelRuntime rt(d);
  EXPECT_TRUE(rt.run().completed);
}

TEST(RandomArchTest, DeterministicInSeed) {
  RandomArchConfig cfg;
  cfg.tokens = 5;
  const auto a = make_random_architecture(7, cfg);
  const auto b = make_random_architecture(7, cfg);
  EXPECT_EQ(a.functions().size(), b.functions().size());
  EXPECT_EQ(a.channels().size(), b.channels().size());
  for (std::size_t i = 0; i < a.functions().size(); ++i) {
    EXPECT_EQ(a.functions()[i].name, b.functions()[i].name);
    EXPECT_EQ(a.functions()[i].body.size(), b.functions()[i].body.size());
  }
}

TEST(RandomArchTest, InvariantsHold) {
  RandomArchConfig cfg;
  cfg.tokens = 5;
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    const auto d = make_random_architecture(seed, cfg);
    EXPECT_TRUE(d.validated());
    for (const auto& fn : d.functions()) {
      // First statement is a read (derivation requirement).
      EXPECT_EQ(fn.body.front().kind, model::StatementKind::kRead)
          << fn.name << " seed " << seed;
    }
    // Every function count within bounds.
    EXPECT_GE(d.functions().size(), cfg.min_functions);
    EXPECT_LE(d.functions().size(), cfg.max_functions);
  }
}

// Every random architecture must complete under the event-driven baseline
// (the generator's deadlock-freedom argument, exercised).
class RandomArchCompletionTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomArchCompletionTest, BaselineCompletes) {
  RandomArchConfig cfg;
  cfg.tokens = 30;
  const model::ArchitectureDesc d = make_random_architecture(GetParam(), cfg);
  model::ModelRuntime rt(d);
  const auto outcome = rt.run();
  EXPECT_TRUE(outcome.completed) << outcome.stall_report;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArchCompletionTest,
                         ::testing::Range<std::uint64_t>(300, 330));

}  // namespace
}  // namespace maxev::gen
