#include <gtest/gtest.h>

#include "gen/chains.hpp"
#include "gen/didactic.hpp"
#include "gen/padded.hpp"
#include "gen/random_arch.hpp"
#include "model/baseline.hpp"
#include "util/error.hpp"

namespace maxev::gen {
namespace {

TEST(DidacticTest, StructureMatchesFigure1) {
  const model::ArchitectureDesc d = make_didactic({});
  EXPECT_EQ(d.functions().size(), 4u);
  EXPECT_EQ(d.channels().size(), 6u);
  EXPECT_EQ(d.resources().size(), 2u);
  EXPECT_EQ(d.schedule(0), (std::vector<model::FunctionId>{0, 1}));  // P1
  EXPECT_EQ(d.resources()[1].policy, model::ResourcePolicy::kConcurrent);
  EXPECT_EQ(d.sources()[0].count, 20000u);
}

TEST(DidacticTest, AttrsDeterministicInSeed) {
  DidacticConfig a, b;
  a.seed = b.seed = 99;
  const auto da = make_didactic(a);
  const auto db = make_didactic(b);
  for (std::uint64_t k = 0; k < 50; ++k)
    EXPECT_EQ(da.sources()[0].attrs(k), db.sources()[0].attrs(k));
}

TEST(DidacticTest, SizeRangeRespected) {
  DidacticConfig cfg;
  cfg.size_min = 10;
  cfg.size_max = 20;
  const auto d = make_didactic(cfg);
  for (std::uint64_t k = 0; k < 200; ++k) {
    const auto a = d.sources()[0].attrs(k);
    EXPECT_GE(a.size, 10);
    EXPECT_LE(a.size, 20);
  }
}

TEST(ChainTest, BlockCountScalesStructure) {
  for (std::size_t b = 1; b <= 4; ++b) {
    ChainConfig cfg;
    cfg.blocks = b;
    cfg.block.tokens = 5;
    const auto d = make_chain(cfg);
    EXPECT_EQ(d.functions().size(), 4u * b);
    EXPECT_EQ(d.channels().size(), 6u * b - (b - 1));
    EXPECT_EQ(d.resources().size(), 2u * b);
  }
  EXPECT_THROW(make_chain(ChainConfig{0, {}}), DescriptionError);
  EXPECT_THROW(make_table1_example(5), DescriptionError);
}

TEST(ChainTest, ChainsRunToCompletion) {
  ChainConfig cfg;
  cfg.blocks = 3;
  cfg.block.tokens = 40;
  const model::ArchitectureDesc d = make_chain(cfg);
  model::ModelRuntime rt(d);
  const auto outcome = rt.run();
  EXPECT_TRUE(outcome.completed) << outcome.stall_report;
}

TEST(PipelineTest, XSizeControlsDepth) {
  PipelineConfig cfg;
  cfg.x_size = 12;
  cfg.tokens = 5;
  const auto d = make_pipeline(cfg);
  EXPECT_EQ(d.functions().size(), 11u);
  EXPECT_EQ(d.channels().size(), 12u);
  EXPECT_THROW(make_pipeline(PipelineConfig{1, 5, 1, false, 1e9, 1, 2}),
               DescriptionError);
}

TEST(PipelineTest, SharedProcessorVariantCompletes) {
  PipelineConfig cfg;
  cfg.x_size = 6;
  cfg.tokens = 30;
  cfg.shared_processor = true;
  const model::ArchitectureDesc d = make_pipeline(cfg);
  model::ModelRuntime rt(d);
  EXPECT_TRUE(rt.run().completed);
}

TEST(RandomArchTest, DeterministicInSeed) {
  RandomArchConfig cfg;
  cfg.tokens = 5;
  const auto a = make_random_architecture(7, cfg);
  const auto b = make_random_architecture(7, cfg);
  EXPECT_EQ(a.functions().size(), b.functions().size());
  EXPECT_EQ(a.channels().size(), b.channels().size());
  for (std::size_t i = 0; i < a.functions().size(); ++i) {
    EXPECT_EQ(a.functions()[i].name, b.functions()[i].name);
    EXPECT_EQ(a.functions()[i].body.size(), b.functions()[i].body.size());
  }
}

TEST(RandomArchTest, InvariantsHold) {
  RandomArchConfig cfg;
  cfg.tokens = 5;
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    const auto d = make_random_architecture(seed, cfg);
    EXPECT_TRUE(d.validated());
    for (const auto& fn : d.functions()) {
      // First statement is a read (derivation requirement).
      EXPECT_EQ(fn.body.front().kind, model::StatementKind::kRead)
          << fn.name << " seed " << seed;
    }
    // Every function count within bounds.
    EXPECT_GE(d.functions().size(), cfg.min_functions);
    EXPECT_LE(d.functions().size(), cfg.max_functions);
  }
}

TEST(RandomArchTest, MultiRateProducerBundle) {
  RandomArchConfig cfg;
  cfg.tokens = 10;
  cfg.multi_rate_producer_probability = 1.0;
  for (std::uint64_t seed = 900; seed < 915; ++seed) {
    const auto d = make_random_architecture(seed, cfg);
    // The bundle: a consumer "MR" reading r in [2,3] bounded FIFOs, each
    // fed by its own source of cfg.tokens tokens.
    const model::FunctionDesc* mr = nullptr;
    for (const auto& fn : d.functions())
      if (fn.name == "MR") mr = &fn;
    ASSERT_NE(mr, nullptr) << "seed " << seed;
    std::size_t reads = 0;
    for (const auto& s : mr->body) {
      if (s.kind != model::StatementKind::kRead) continue;
      ++reads;
      EXPECT_EQ(d.channels()[s.channel].kind, model::ChannelKind::kFifo);
      const auto& ep = d.endpoints(s.channel);
      ASSERT_TRUE(ep.written_by_source());
      EXPECT_EQ(d.sources()[ep.writer_source].count, cfg.tokens);
    }
    EXPECT_GE(reads, 2u);
    EXPECT_LE(reads, cfg.max_producer_rate);
    // MR lives on the concurrent resource (no schedule gates).
    EXPECT_EQ(d.resources()[mr->resource].policy,
              model::ResourcePolicy::kConcurrent);
  }
}

TEST(RandomArchTest, MultiRateBadRateRejected) {
  RandomArchConfig cfg;
  cfg.tokens = 5;
  cfg.multi_rate_producer_probability = 1.0;
  cfg.max_producer_rate = 1;  // contract: r uniform in [2, max]
  EXPECT_THROW(make_random_architecture(1, cfg), DescriptionError);
}

TEST(RandomArchTest, MultiRateKnobOffKeepsHistoricalSeedsStable) {
  // Golden pin of the pre-knob generator stream: with the knob disabled
  // (the default), seed 7 must keep producing exactly this architecture.
  // If this fails, a change made the generator consume RNG draws even when
  // multi_rate_producer_probability == 0, shifting every historical seed.
  RandomArchConfig cfg;
  cfg.tokens = 5;
  const auto d = make_random_architecture(7, cfg);
  ASSERT_EQ(d.functions().size(), 5u);
  const std::size_t body_sizes[] = {5, 5, 6, 6, 4};
  for (std::size_t f = 0; f < 5; ++f)
    EXPECT_EQ(d.functions()[f].body.size(), body_sizes[f]) << "F" << f;
  ASSERT_EQ(d.channels().size(), 9u);
  const char* names[] = {"in0", "c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"};
  const bool fifo[] = {false, true, false, true, true, false, true, true, false};
  for (std::size_t c = 0; c < 9; ++c) {
    EXPECT_EQ(d.channels()[c].name, names[c]);
    EXPECT_EQ(d.channels()[c].kind == model::ChannelKind::kFifo, fifo[c])
        << names[c];
  }
  EXPECT_EQ(d.resources().size(), 1u);
  EXPECT_EQ(d.sinks().size(), 2u);
}

// Every random architecture must complete under the event-driven baseline
// (the generator's deadlock-freedom argument, exercised).
class RandomArchCompletionTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomArchCompletionTest, BaselineCompletes) {
  RandomArchConfig cfg;
  cfg.tokens = 30;
  const model::ArchitectureDesc d = make_random_architecture(GetParam(), cfg);
  model::ModelRuntime rt(d);
  const auto outcome = rt.run();
  EXPECT_TRUE(outcome.completed) << outcome.stall_report;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArchCompletionTest,
                         ::testing::Range<std::uint64_t>(300, 330));

}  // namespace
}  // namespace maxev::gen
