#include <gtest/gtest.h>

#include "core/equivalent_model.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "gen/didactic.hpp"
#include "util/error.hpp"

namespace maxev::core {
namespace {

using namespace maxev::literals;

TEST(EquivalentModelTest, InternalChannelsAreNotConstructed) {
  gen::DidacticConfig cfg;
  cfg.tokens = 10;
  const model::ArchitectureDesc d = gen::make_didactic(cfg);
  EquivalentModel eq(d, {});
  // M1 (input) and M6 (output) exist; M2..M5 are internal and saved.
  EXPECT_NE(eq.runtime().channel(0), nullptr);  // M1
  EXPECT_EQ(eq.runtime().channel(1), nullptr);  // M2
  EXPECT_EQ(eq.runtime().channel(2), nullptr);  // M3
  EXPECT_EQ(eq.runtime().channel(3), nullptr);  // M4
  EXPECT_EQ(eq.runtime().channel(4), nullptr);  // M5
  EXPECT_NE(eq.runtime().channel(5), nullptr);  // M6
}

TEST(EquivalentModelTest, InternalInstantsStillRecorded) {
  gen::DidacticConfig cfg;
  cfg.tokens = 25;
  const model::ArchitectureDesc d = gen::make_didactic(cfg);
  EquivalentModel eq(d, {});
  ASSERT_TRUE(eq.run().completed);
  for (const char* ch : {"M1", "M2", "M3", "M4", "M5", "M6"}) {
    const trace::InstantSeries* s = eq.instants().find(ch);
    ASSERT_NE(s, nullptr) << ch;
    EXPECT_EQ(s->size(), 25u) << ch;
    EXPECT_TRUE(s->is_monotone()) << ch;
  }
}

TEST(EquivalentModelTest, ObserveOffRecordsNothing) {
  gen::DidacticConfig cfg;
  cfg.tokens = 10;
  const model::ArchitectureDesc d = gen::make_didactic(cfg);
  EquivalentModel::Options opts;
  opts.observe = false;
  EquivalentModel eq(d, {}, opts);
  ASSERT_TRUE(eq.run().completed);
  EXPECT_EQ(eq.instants().total_instants(), 0u);
  EXPECT_EQ(eq.usage().all().size(), 0u);
}

TEST(EquivalentModelTest, SimEndMatchesBaselineExactly) {
  gen::DidacticConfig cfg;
  cfg.tokens = 100;
  const model::ArchitectureDesc d = gen::make_didactic(cfg);
  model::ModelRuntime baseline(d);
  ASSERT_TRUE(baseline.run().completed);
  EquivalentModel eq(d, {});
  ASSERT_TRUE(eq.run().completed);
  EXPECT_EQ(baseline.end_time(), eq.end_time());
}

TEST(EquivalentModelTest, EngineCostCountersPopulated) {
  gen::DidacticConfig cfg;
  cfg.tokens = 50;
  const model::ArchitectureDesc d = gen::make_didactic(cfg);
  EquivalentModel eq(d, {});
  ASSERT_TRUE(eq.run().completed);
  // 6 computed instants per iteration (u is external).
  EXPECT_EQ(eq.engine().instances_computed(), 50u * 6u);
  EXPECT_GE(eq.engine().arc_terms_evaluated(), 50u * 9u);
}

TEST(EquivalentModelTest, GroupSplittingSequentialResourceRejected) {
  const model::ArchitectureDesc d = gen::make_didactic({});
  std::vector<bool> group(d.functions().size(), false);
  group[1] = true;  // F2 alone: splits P1
  EXPECT_THROW(EquivalentModel(d, group), DescriptionError);
}

TEST(EquivalentModelTest, TimeHorizonStopsEarly) {
  gen::DidacticConfig cfg;
  cfg.tokens = 1000;
  cfg.source_period = 1_us;
  const model::ArchitectureDesc d = gen::make_didactic(cfg);
  EquivalentModel eq(d, {});
  const auto outcome = eq.run(TimePoint::origin() + 10_us);
  EXPECT_FALSE(outcome.idle);
  EXPECT_FALSE(outcome.completed);
  EXPECT_LE(eq.end_time(), TimePoint::origin() + 10_us);
}

TEST(ExperimentTest, MetricsAreConsistent) {
  gen::DidacticConfig cfg;
  cfg.tokens = 200;
  ExperimentOptions opts;
  opts.repetitions = 2;
  const Comparison cmp = run_comparison(gen::make_didactic(cfg), opts);
  EXPECT_TRUE(cmp.accurate());
  EXPECT_GT(cmp.baseline.wall_seconds, 0.0);
  EXPECT_GT(cmp.equivalent.wall_seconds, 0.0);
  EXPECT_NEAR(cmp.event_ratio,
              static_cast<double>(cmp.baseline.relation_events) /
                  static_cast<double>(cmp.equivalent.relation_events),
              1e-9);
  EXPECT_EQ(cmp.baseline.relation_events, 200u * 6u);
  EXPECT_EQ(cmp.equivalent.relation_events, 200u * 2u);
  EXPECT_FALSE(cmp.to_string().empty());
  EXPECT_FALSE(cmp.baseline.to_string().empty());
}

TEST(ExperimentTest, BadRepetitionsRejected) {
  ExperimentOptions opts;
  opts.repetitions = 0;
  EXPECT_THROW(run_comparison(gen::make_didactic({}), opts), Error);
}

TEST(ExperimentTest, ObserveOffSkipsComparison) {
  gen::DidacticConfig cfg;
  cfg.tokens = 50;
  ExperimentOptions opts;
  opts.repetitions = 1;
  opts.observe = false;
  const Comparison cmp = run_comparison(gen::make_didactic(cfg), opts);
  EXPECT_TRUE(cmp.accurate());  // vacuous: no traces recorded or compared
  EXPECT_EQ(cmp.instant_mismatch, std::nullopt);
}

TEST(ExperimentTest, SyntheticEventOverheadSlowsBothModels) {
  gen::DidacticConfig cfg;
  cfg.tokens = 200;
  const model::ArchitectureDesc d = gen::make_didactic(cfg);
  ExperimentOptions fast;
  fast.repetitions = 1;
  fast.observe = false;
  ExperimentOptions heavy = fast;
  // Wide margin: the spin-wait must dominate scheduler noise under a loaded
  // parallel ctest run, or the wall-clock comparisons below flake.
  heavy.event_overhead_ns = 5000.0;
  const Comparison a = run_comparison(d, fast);
  const Comparison b = run_comparison(d, heavy);
  EXPECT_GT(b.baseline.wall_seconds, a.baseline.wall_seconds);
  // With dominant event cost the speed-up approaches the event ratio.
  EXPECT_GT(b.speedup, 2.0);
}

TEST(ExperimentTest, MeasureBaselineAlone) {
  gen::DidacticConfig cfg;
  cfg.tokens = 100;
  const RunMetrics m = measure_baseline(gen::make_didactic(cfg), 2);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.relation_events, 600u);
  EXPECT_GT(m.kernel_events, 0u);
}

}  // namespace
}  // namespace maxev::core
