#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace maxev {
namespace {

using namespace maxev::literals;

TEST(DurationTest, UnitConstructors) {
  EXPECT_EQ(Duration::ps(1).count(), 1);
  EXPECT_EQ(Duration::ns(1).count(), 1'000);
  EXPECT_EQ(Duration::us(1).count(), 1'000'000);
  EXPECT_EQ(Duration::ms(1).count(), 1'000'000'000);
  EXPECT_EQ(Duration::sec(1).count(), 1'000'000'000'000);
}

TEST(DurationTest, Literals) {
  EXPECT_EQ((5_us).count(), 5'000'000);
  EXPECT_EQ((3_ns).count(), 3'000);
  EXPECT_EQ((7_ps).count(), 7);
  EXPECT_EQ((2_ms).count(), 2'000'000'000);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ((2_us + 3_us).count(), (5_us).count());
  EXPECT_EQ((5_us - 3_us).count(), (2_us).count());
  EXPECT_EQ((2_us * 3).count(), (6_us).count());
  Duration d = 1_us;
  d += 1_us;
  EXPECT_EQ(d, 2_us);
}

TEST(DurationTest, Comparison) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_GT(1_ms, 999_us);
  EXPECT_EQ(1000_ns, 1_us);
}

TEST(DurationTest, FromSeconds) {
  EXPECT_EQ(Duration::from_seconds(1e-6), 1_us);
  EXPECT_EQ(Duration::from_seconds(0.5).count(), 500'000'000'000);
}

TEST(DurationTest, ConversionAccessors) {
  EXPECT_DOUBLE_EQ((1_ms).seconds(), 1e-3);
  EXPECT_DOUBLE_EQ((1_us).micros(), 1.0);
  EXPECT_DOUBLE_EQ((1_ns).nanos(), 1.0);
}

TEST(DurationTest, ToStringPicksUnit) {
  EXPECT_EQ((5_us).to_string(), "5us");
  EXPECT_EQ((1500_ns).to_string(), "1.5us");
  EXPECT_EQ(Duration::ps(12).to_string(), "12ps");
  EXPECT_EQ(Duration::sec(2).to_string(), "2s");
}

TEST(TimePointTest, Arithmetic) {
  const TimePoint t = TimePoint::origin() + 5_us;
  EXPECT_EQ(t.count(), 5'000'000);
  EXPECT_EQ((t + 1_us).count(), 6'000'000);
  EXPECT_EQ((t - TimePoint::origin()), 5_us);
  EXPECT_LT(TimePoint::origin(), t);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, KnownSplitMix64Stream) {
  // Reference values for SplitMix64 seeded with 1234567.
  Rng r(1234567);
  EXPECT_EQ(r.next_u64(), 6457827717110365317ull);
  EXPECT_EQ(r.next_u64(), 3203168211198807973ull);
}

TEST(RngTest, UniformRangeRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_i64(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, Uniform01InRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowCoversSmallRange) {
  Rng r(11);
  bool seen[5] = {};
  for (int i = 0; i < 200; ++i) seen[r.next_below(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, PickWeightedPrefersHeavy) {
  Rng r(13);
  std::vector<double> w = {0.01, 10.0};
  int heavy = 0;
  for (int i = 0; i < 500; ++i)
    if (r.pick_weighted(w) == 1) ++heavy;
  EXPECT_GT(heavy, 450);
}

TEST(RngTest, SplitGivesIndependentStream) {
  Rng a(5);
  Rng c = a.split();
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(StatsTest, AccumulatorMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
}

TEST(StatsTest, SummarizeMatchesAccumulator) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(StringsTest, Format) {
  EXPECT_EQ(format("x=%d y=%s", 3, "abc"), "x=3 y=abc");
  EXPECT_EQ(format("%.2f", 1.5), "1.50");
}

TEST(StringsTest, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(StringsTest, ParseCount) {
  EXPECT_EQ(parse_count("1"), 1u);
  EXPECT_EQ(parse_count("20000"), 20000u);
  EXPECT_EQ(parse_count("18446744073709551615"), UINT64_MAX);
  EXPECT_EQ(parse_count(nullptr), std::nullopt);
  EXPECT_EQ(parse_count(""), std::nullopt);
  EXPECT_EQ(parse_count("0"), std::nullopt);       // zero workload
  EXPECT_EQ(parse_count("-3"), std::nullopt);      // no silent wraparound
  EXPECT_EQ(parse_count("+3"), std::nullopt);
  EXPECT_EQ(parse_count("12x"), std::nullopt);     // trailing junk
  EXPECT_EQ(parse_count("--help"), std::nullopt);
  EXPECT_EQ(parse_count("18446744073709551616"), std::nullopt);  // overflow
}

TEST(StringsTest, ConsoleTableAlignsColumns) {
  ConsoleTable t({"a", "long header"});
  t.add_row({"1", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a | long header |"), std::string::npos);
  EXPECT_NE(out.find("| 1 | 2           |"), std::string::npos);
}

TEST(CsvTest, WritesEscapedCells) {
  const std::string path = testing::TempDir() + "/maxev_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.row({"plain", "has,comma"});
    w.row({"has\"quote", "x"});
    w.row_numeric({1.5, 2.0});
    EXPECT_EQ(w.rows_written(), 4u);
  }
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("a,b\n"), std::string::npos);
  EXPECT_NE(all.find("plain,\"has,comma\"\n"), std::string::npos);
  EXPECT_NE(all.find("\"has\"\"quote\",x\n"), std::string::npos);
  EXPECT_NE(all.find("1.5,2\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTest, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"), Error);
}

TEST(ErrorTest, HierarchyRoots) {
  EXPECT_THROW(throw DescriptionError("x"), Error);
  EXPECT_THROW(throw OverflowError("x"), Error);
  EXPECT_THROW(throw SimulationError("x"), Error);
}

}  // namespace
}  // namespace maxev
