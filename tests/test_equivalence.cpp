#include <gtest/gtest.h>

#include "core/equivalent_model.hpp"
#include "core/experiment.hpp"
#include "gen/chains.hpp"
#include "gen/didactic.hpp"
#include "gen/padded.hpp"
#include "gen/random_arch.hpp"
#include "model/baseline.hpp"
#include "util/error.hpp"

/// The paper's accuracy claim, Section IV: "Evolution instants of both
/// models have been compared and, as expected, remain the same." These
/// tests check bit-exact equality of every relation's instant sequence and
/// every resource's busy-interval trace between the event-driven baseline
/// and the equivalent model, across architectures, workloads and
/// environment behaviours — plus the speed direction (fewer kernel events).

namespace maxev::core {
namespace {

using namespace maxev::literals;

void expect_equivalent(const model::ArchitectureDesc& desc,
                       ExperimentOptions opts = {},
                       const char* context = "") {
  opts.repetitions = 1;
  const Comparison cmp = run_comparison(desc, opts);
  EXPECT_TRUE(cmp.baseline.completed) << context;
  EXPECT_TRUE(cmp.equivalent.completed) << context;
  EXPECT_EQ(cmp.instant_mismatch, std::nullopt) << context;
  EXPECT_EQ(cmp.usage_mismatch, std::nullopt) << context;
  EXPECT_EQ(cmp.baseline.sim_end, cmp.equivalent.sim_end) << context;
}

TEST(EquivalenceTest, DidacticSelfTimedSource) {
  gen::DidacticConfig cfg;
  cfg.tokens = 500;
  expect_equivalent(gen::make_didactic(cfg), {}, "didactic self-timed");
}

TEST(EquivalenceTest, DidacticPeriodicSource) {
  gen::DidacticConfig cfg;
  cfg.tokens = 500;
  cfg.source_period = 10_us;
  expect_equivalent(gen::make_didactic(cfg), {}, "didactic periodic");
}

TEST(EquivalenceTest, DidacticFastPeriodicSourceBacklogs) {
  gen::DidacticConfig cfg;
  cfg.tokens = 500;
  cfg.source_period = Duration::ns(100);  // faster than the pipeline
  expect_equivalent(gen::make_didactic(cfg), {}, "didactic backlogged");
}

TEST(EquivalenceTest, DidacticLimitedConcurrencyP2) {
  gen::DidacticConfig cfg;
  cfg.tokens = 500;
  cfg.p2_limited_concurrency = true;
  expect_equivalent(gen::make_didactic(cfg), {}, "didactic P2 sequential");
}

TEST(EquivalenceTest, DidacticUnfoldedGraph) {
  gen::DidacticConfig cfg;
  cfg.tokens = 300;
  ExperimentOptions opts;
  opts.fold = false;  // raw per-statement graph must agree too
  expect_equivalent(gen::make_didactic(cfg), opts, "didactic raw graph");
}

TEST(EquivalenceTest, DidacticPaddedGraph) {
  gen::DidacticConfig cfg;
  cfg.tokens = 300;
  ExperimentOptions opts;
  opts.pad_nodes = 100;  // padding must not change any instant
  expect_equivalent(gen::make_didactic(cfg), opts, "didactic padded");
}

TEST(EquivalenceTest, Table1Chains) {
  for (std::size_t ex = 1; ex <= 4; ++ex) {
    model::ArchitectureDesc d = gen::make_table1_example(ex, 200);
    expect_equivalent(d, {}, ("chain example " + std::to_string(ex)).c_str());
  }
}

TEST(EquivalenceTest, PipelinesOfAllFig5Sizes) {
  for (std::size_t x : {6u, 10u, 20u, 30u}) {
    gen::PipelineConfig cfg;
    cfg.x_size = x;
    cfg.tokens = 200;
    expect_equivalent(gen::make_pipeline(cfg), {},
                      ("pipeline x=" + std::to_string(x)).c_str());
  }
}

TEST(EquivalenceTest, SharedProcessorPipeline) {
  gen::PipelineConfig cfg;
  cfg.x_size = 8;
  cfg.tokens = 200;
  cfg.shared_processor = true;
  expect_equivalent(gen::make_pipeline(cfg), {}, "shared-processor pipeline");
}

TEST(EquivalenceTest, PartialGroupAbstraction) {
  // Abstract only F3/F4; F1/F2 and the source remain simulated processes.
  gen::DidacticConfig cfg;
  cfg.tokens = 300;
  model::ArchitectureDesc d = gen::make_didactic(cfg);
  ExperimentOptions opts;
  opts.group.assign(d.functions().size(), false);
  opts.group[2] = opts.group[3] = true;
  expect_equivalent(d, opts, "partial group F3+F4");
}

TEST(EquivalenceTest, PartialGroupOtherHalf) {
  gen::DidacticConfig cfg;
  cfg.tokens = 300;
  model::ArchitectureDesc d = gen::make_didactic(cfg);
  ExperimentOptions opts;
  opts.group.assign(d.functions().size(), false);
  opts.group[0] = opts.group[1] = true;  // F1, F2 (all of P1)
  expect_equivalent(d, opts, "partial group F1+F2");
}

// A single-function group with a slow environment: output completions lag
// behind the next input offers, exercising deferred gated-input resolution
// and the actual-completion history feedback.
TEST(EquivalenceTest, SlowSinkBackPressureWithDeferredGating) {
  model::ArchitectureDesc d;
  const auto r = d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e9);
  const auto in = d.add_rendezvous("in");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("F", r);
  d.fn_read(f, in);
  d.fn_execute(f, model::linear_ops(100, 1));
  d.fn_write(f, out);
  d.add_source("s", in, 200,
               [](std::uint64_t) { return TimePoint::origin(); },
               [](std::uint64_t k) {
                 model::TokenAttrs a;
                 a.size = static_cast<std::int64_t>((k * 7919) % 1000);
                 return a;
               });
  // Sink much slower than the function: sustained back-pressure.
  d.add_sink("k", out, [](std::uint64_t) { return 5_us; });
  d.validate();
  expect_equivalent(d, {}, "slow sink back-pressure");
}

TEST(EquivalenceTest, BurstySinkBackPressure) {
  // Two functions on one sequential processor, a sink that stalls on every
  // 10th token: exercises actual-completion feedback under bursts.
  model::ArchitectureDesc b;
  const auto r = b.add_resource("P", model::ResourcePolicy::kSequentialCyclic, 1e9);
  const auto in = b.add_rendezvous("in");
  const auto mid = b.add_rendezvous("mid");
  const auto out = b.add_rendezvous("out");
  const auto f1 = b.add_function("A", r);
  b.fn_read(f1, in);
  b.fn_execute(f1, model::linear_ops(200, 2));
  b.fn_write(f1, mid);
  const auto f2 = b.add_function("B", r);
  b.fn_read(f2, mid);
  b.fn_execute(f2, model::linear_ops(300, 1));
  b.fn_write(f2, out);
  b.add_source("s", in, 300, [](std::uint64_t) { return TimePoint::origin(); },
               [](std::uint64_t k) {
                 model::TokenAttrs a;
                 a.size = static_cast<std::int64_t>((k * 131) % 500);
                 return a;
               });
  b.add_sink("k", out, [](std::uint64_t k) {
    return k % 10 == 0 ? 20_us : Duration::ps(0);
  });
  b.validate();
  expect_equivalent(b, {}, "bursty sink");
}

TEST(EquivalenceTest, FifoBoundariesThroughPartialGroup) {
  // source -> A --fifo--> B -> sink, abstracting only B: the fifo is an
  // input boundary (virtual reader); abstracting only A makes it an output
  // boundary (live write-completion feedback).
  model::ArchitectureDesc d;
  const auto r1 = d.add_resource("R1", model::ResourcePolicy::kConcurrent, 1e9);
  const auto r2 = d.add_resource("R2", model::ResourcePolicy::kConcurrent, 2e9);
  const auto in = d.add_rendezvous("in");
  const auto q = d.add_fifo("q", 2);
  const auto out = d.add_rendezvous("out");
  const auto fa = d.add_function("A", r1);
  d.fn_read(fa, in);
  d.fn_execute(fa, model::linear_ops(500, 1));
  d.fn_write(fa, q);
  const auto fb = d.add_function("B", r2);
  d.fn_read(fb, q);
  d.fn_execute(fb, model::linear_ops(900, 2));
  d.fn_write(fb, out);
  d.add_source("s", in, 250, [](std::uint64_t) { return TimePoint::origin(); },
               [](std::uint64_t k) {
                 model::TokenAttrs a;
                 a.size = static_cast<std::int64_t>((k * 271) % 800);
                 return a;
               });
  d.add_sink("k", out);
  d.validate();

  ExperimentOptions only_b;
  only_b.group.assign(d.functions().size(), false);
  only_b.group[fb] = true;
  expect_equivalent(d, only_b, "fifo input boundary");

  ExperimentOptions only_a;
  only_a.group.assign(d.functions().size(), false);
  only_a.group[fa] = true;
  expect_equivalent(d, only_a, "fifo output boundary");

  expect_equivalent(d, {}, "fifo internal");
}

TEST(EquivalenceTest, EventCountShrinks) {
  gen::DidacticConfig cfg;
  cfg.tokens = 1000;
  ExperimentOptions opts;
  opts.repetitions = 1;
  const Comparison cmp = run_comparison(gen::make_didactic(cfg), opts);
  ASSERT_TRUE(cmp.accurate());
  // The whole point: fewer relation events and fewer kernel events.
  EXPECT_GT(cmp.event_ratio, 2.0);
  EXPECT_GT(cmp.kernel_event_ratio, 1.5);
  EXPECT_LT(cmp.equivalent.resumes, cmp.baseline.resumes);
  EXPECT_EQ(cmp.graph_paper_nodes, 10u);
}

TEST(EquivalenceTest, MultiInputGroupFromTwoSources) {
  model::ArchitectureDesc d;
  const auto r = d.add_resource("P", model::ResourcePolicy::kConcurrent, 1e9);
  const auto in0 = d.add_rendezvous("in0");
  const auto in1 = d.add_rendezvous("in1");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("J", r);
  d.fn_read(f, in0);
  d.fn_execute(f, model::linear_ops(100, 1));
  d.fn_read(f, in1);
  d.fn_execute(f, model::linear_ops(50, 2));
  d.fn_write(f, out);
  auto attrs0 = [](std::uint64_t k) {
    model::TokenAttrs a;
    a.size = static_cast<std::int64_t>((k * 17) % 300);
    return a;
  };
  auto attrs1 = [](std::uint64_t k) {
    model::TokenAttrs a;
    a.size = static_cast<std::int64_t>((k * 23) % 500);
    return a;
  };
  d.add_source("s0", in0, 200,
               [](std::uint64_t k) {
                 return TimePoint::origin() + Duration::ns(800) * static_cast<std::int64_t>(k);
               },
               attrs0);
  d.add_source("s1", in1, 200,
               [](std::uint64_t k) {
                 return TimePoint::origin() + Duration::ns(1300) * static_cast<std::int64_t>(k);
               },
               attrs1);
  d.add_sink("k", out);
  d.validate();
  expect_equivalent(d, {}, "two-source join");
}

// ---------------------------------------------------------------------------
// The randomized property sweep: architectures x workloads x environments.
// ---------------------------------------------------------------------------

class RandomEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomEquivalenceTest, BaselineAndEquivalentAgree) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 60;
  model::ArchitectureDesc d = gen::make_random_architecture(GetParam(), cfg);
  expect_equivalent(d, {}, ("seed " + std::to_string(GetParam())).c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 41));

class RandomPartialGroupTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPartialGroupTest, AbstractingOneResourceAgrees) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 50;
  model::ArchitectureDesc d = gen::make_random_architecture(GetParam(), cfg);
  // Abstract the functions of the first resource that has any.
  std::vector<bool> group(d.functions().size(), false);
  bool any = false;
  for (model::ResourceId r = 0;
       r < static_cast<model::ResourceId>(d.resources().size()) && !any; ++r) {
    const auto& sched = d.schedule(r);
    if (sched.empty()) continue;
    for (auto f : sched) group[f] = true;
    any = true;
  }
  if (!any) GTEST_SKIP();
  ExperimentOptions opts;
  opts.group = group;
  expect_equivalent(d, opts, ("partial seed " + std::to_string(GetParam())).c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPartialGroupTest,
                         ::testing::Range<std::uint64_t>(100, 120));

// Multi-rate producers: r sources emit r tokens per consumer iteration
// through bounded FIFOs (gen::RandomArchConfig::multi_rate_producer_*).
// Exercises FIFO input boundaries written by sources and several reads per
// function body — instants must still be bit-identical.

class MultiRateEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiRateEquivalenceTest, BaselineAndEquivalentAgree) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 50;
  cfg.multi_rate_producer_probability = 1.0;
  model::ArchitectureDesc d = gen::make_random_architecture(GetParam(), cfg);
  expect_equivalent(d, {},
                    ("multi-rate seed " + std::to_string(GetParam())).c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiRateEquivalenceTest,
                         ::testing::Range<std::uint64_t>(500, 525));

class MultiRatePartialGroupTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiRatePartialGroupTest, AbstractingTheConcurrentResourceAgrees) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 40;
  cfg.multi_rate_producer_probability = 1.0;
  model::ArchitectureDesc d = gen::make_random_architecture(GetParam(), cfg);
  // Abstract the concurrent resource R0 — always home to the multi-rate
  // consumer, so its bundle FIFOs become input boundaries of the group.
  std::vector<bool> group(d.functions().size(), false);
  bool any = false;
  for (auto f : d.schedule(0)) {
    group[f] = true;
    any = true;
  }
  if (!any) GTEST_SKIP();
  ExperimentOptions opts;
  opts.group = group;
  expect_equivalent(
      d, opts,
      ("multi-rate partial seed " + std::to_string(GetParam())).c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiRatePartialGroupTest,
                         ::testing::Range<std::uint64_t>(600, 615));

}  // namespace
}  // namespace maxev::core
