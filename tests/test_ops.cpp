#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "core/compiled.hpp"
#include "gen/didactic.hpp"
#include "gen/random_arch.hpp"
#include "maxplus/scalar.hpp"
#include "model/desc.hpp"
#include "model/load.hpp"
#include "serve/wire.hpp"
#include "study/study.hpp"
#include "tdg/lanes.hpp"
#include "tdg/ops.hpp"

/// The opcode layer (docs/DESIGN.md §14): factory-built load closures
/// compiled into enum-dispatched tables (tdg::ops), drained lane-wide by
/// the branch-free kernels (tdg/lanes.hpp). The property under test is
/// bit-identity: opcode dispatch and the SoA vector drain must reproduce
/// the hoisted-std::function scalar path exactly — per opcode kind on
/// exhaustive input grids, per lane element against the mp::Scalar
/// reference semantics, and end to end across the random-architecture
/// differential sweep at study level (both toggles, threads 1/2/8).

namespace maxev {
namespace {

using tdg::ops::Kind;

// ------------------------------------------------------- classification ----

TEST(OpsClassifyTest, FactoryLoadsClassifyConcretely) {
  EXPECT_EQ(tdg::ops::classify_load(model::constant_ops(7)),
            Kind::kRateConstant);
  EXPECT_EQ(tdg::ops::classify_load(model::linear_ops(100, 3)),
            Kind::kLinearOps);
  EXPECT_EQ(tdg::ops::classify_load(model::param_ops(5, 2.5, 2)),
            Kind::kParamOps);
  EXPECT_EQ(tdg::ops::classify_load(model::cyclic_ops({4, 5, 6})),
            Kind::kCyclicOps);
}

TEST(OpsClassifyTest, HandWrittenLambdaIsOpaque) {
  const model::LoadFn f = [](const model::TokenAttrs& a, std::uint64_t) {
    return a.size * 3;
  };
  EXPECT_EQ(tdg::ops::classify_load(f), Kind::kOpaqueClosure);
}

TEST(OpsClassifyTest, KindNamesAreDistinctAndNonEmpty) {
  std::set<std::string> names;
  for (std::uint8_t k = 0; k <= static_cast<std::uint8_t>(Kind::kPeriodicTime);
       ++k) {
    const char* name = tdg::ops::kind_name(static_cast<Kind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(std::string(name).empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(Kind::kPeriodicTime) + 1u);
}

// ------------------------------------------------------------ compilation ----

TEST(OpsCompileTest, UnpacksFactoryParametersIntoColumns) {
  std::vector<model::LoadFn> loads;
  loads.push_back(model::constant_ops(7));
  loads.push_back(model::linear_ops(100, 3));
  loads.push_back(model::param_ops(5, 2.5, 2));
  loads.push_back(model::cyclic_ops({4, 5, 6}));
  loads.push_back(model::cyclic_ops({9}));
  loads.push_back([](const model::TokenAttrs&, std::uint64_t) {
    return std::int64_t{11};
  });

  const tdg::ops::LoadTable t = tdg::ops::compile_loads(loads);
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(static_cast<Kind>(t.kind[0]), Kind::kRateConstant);
  EXPECT_EQ(t.a[0], 7);
  EXPECT_EQ(static_cast<Kind>(t.kind[1]), Kind::kLinearOps);
  EXPECT_EQ(t.a[1], 100);
  EXPECT_EQ(t.b[1], 3);
  EXPECT_EQ(static_cast<Kind>(t.kind[2]), Kind::kParamOps);
  EXPECT_EQ(t.a[2], 5);
  EXPECT_DOUBLE_EQ(t.scale[2], 2.5);
  EXPECT_EQ(t.index[2], 2);
  // Cyclic tables flatten into one `cyc` column: (offset, length) rows.
  EXPECT_EQ(static_cast<Kind>(t.kind[3]), Kind::kCyclicOps);
  EXPECT_EQ(t.index[3], 0);
  EXPECT_EQ(t.len[3], 3);
  EXPECT_EQ(static_cast<Kind>(t.kind[4]), Kind::kCyclicOps);
  EXPECT_EQ(t.index[4], 3);
  EXPECT_EQ(t.len[4], 1);
  EXPECT_EQ(t.cyc, (std::vector<std::int64_t>{4, 5, 6, 9}));
  EXPECT_EQ(static_cast<Kind>(t.kind[5]), Kind::kOpaqueClosure);
  EXPECT_EQ(t.opaque, 1u);
  EXPECT_FALSE(t.all_concrete());
}

TEST(OpsCompileTest, AllConcreteWhenNoLambdas) {
  std::vector<model::LoadFn> loads;
  loads.push_back(model::constant_ops(1));
  loads.push_back(model::linear_ops(0, -2));
  const tdg::ops::LoadTable t = tdg::ops::compile_loads(loads);
  EXPECT_TRUE(t.all_concrete());
  EXPECT_EQ(t.opaque, 0u);
}

// The arithmetic contract: eval_load mirrors model/load.cpp exactly, so
// for every opcode kind the table dispatch and the closure agree on a
// grid covering the clamps, the llround edges and the cyclic wraparound.
TEST(OpsEvalTest, EveryKindMatchesItsClosureOnAGrid) {
  std::vector<model::LoadFn> loads;
  loads.push_back(model::constant_ops(0));
  loads.push_back(model::constant_ops(123456789));
  loads.push_back(model::linear_ops(100, 3));
  loads.push_back(model::linear_ops(0, -7));   // clamps to 0 for size > 0
  loads.push_back(model::linear_ops(50, 0));
  loads.push_back(model::param_ops(5, 2.5, 2));
  loads.push_back(model::param_ops(0, -1.0, 0));  // clamp + negative scale
  loads.push_back(model::param_ops(10, 0.5, 3));  // llround half-way cases
  loads.push_back(model::cyclic_ops({4, 5, 6}));
  loads.push_back(model::cyclic_ops({9}));
  loads.push_back([](const model::TokenAttrs& a, std::uint64_t k) {
    return a.size + static_cast<std::int64_t>(k % 13);
  });
  const tdg::ops::LoadTable t = tdg::ops::compile_loads(loads);

  const std::int64_t sizes[] = {-50, 0, 1, 7, 1000000};
  const double params[] = {-3.7, 0.0, 0.5, 123.0, 123.5, 124.5};
  const std::uint64_t ks[] = {0, 1, 2, 3, 17, 1000000007ull};
  for (std::size_t i = 0; i < loads.size(); ++i) {
    for (const std::int64_t size : sizes) {
      for (const double p : params) {
        for (const std::uint64_t k : ks) {
          model::TokenAttrs attrs;
          attrs.size = size;
          attrs.params = {p, 2 * p, -p, p / 3};
          EXPECT_EQ(tdg::ops::eval_load(t, i, attrs, k, loads),
                    loads[i](attrs, k))
              << "load " << i << " size=" << size << " p=" << p << " k=" << k;
        }
      }
    }
  }
}

// ------------------------------------------------------------ lane kernels ----

/// The mp::Scalar reference for one lane element of acc ⊕= (src ⊗ w).
mp::Scalar ref_step(mp::Scalar acc, mp::Scalar src, std::int64_t w) {
  return acc + src * mp::Scalar::of(w);
}

TEST(LaneKernelTest, AccumulateMatchesScalarReferenceWithEpsLanes) {
  // Every tail length the AVX2 path can see, plus a couple of long lanes.
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 33u}) {
    std::vector<std::int64_t> acc_ps(n), src_ps(n);
    std::vector<std::uint8_t> acc_eps(n), src_eps(n);
    std::vector<mp::Scalar> ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Deterministic mix of ε and finite lanes on both sides, including
      // ties (src + w == acc) which must keep the equal value either way.
      const bool ae = i % 3 == 0;
      const bool se = i % 4 == 1;
      acc_ps[i] = ae ? 0 : static_cast<std::int64_t>(100 * i);
      acc_eps[i] = ae ? 1 : 0;
      src_ps[i] = se ? 0 : static_cast<std::int64_t>(100 * i) - 17;
      src_eps[i] = se ? 1 : 0;
      ref[i] = ae ? mp::Scalar::eps() : mp::Scalar::of(acc_ps[i]);
    }
    for (const std::int64_t w : {0, 17, 1000}) {
      ASSERT_FALSE(tdg::lanes::accumulate(acc_ps.data(), acc_eps.data(),
                                          src_ps.data(), src_eps.data(), w, n));
      for (std::size_t i = 0; i < n; ++i) {
        const mp::Scalar src = src_eps[i] != 0 ? mp::Scalar::eps()
                                               : mp::Scalar::of(src_ps[i]);
        ref[i] = ref_step(ref[i], src, w);
        EXPECT_EQ(acc_eps[i] != 0, ref[i].is_eps()) << "n=" << n << " i=" << i;
        if (!ref[i].is_eps()) {
          EXPECT_EQ(acc_ps[i], ref[i].value()) << "n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(LaneKernelTest, BroadcastMatchesScalarReference) {
  for (const std::size_t n : {1u, 4u, 5u, 9u}) {
    std::vector<std::int64_t> acc_ps(n);
    std::vector<std::uint8_t> acc_eps(n);
    std::vector<mp::Scalar> ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      const bool ae = i % 2 == 0;
      acc_ps[i] = ae ? 0 : static_cast<std::int64_t>(40 * i);
      acc_eps[i] = ae ? 1 : 0;
      ref[i] = ae ? mp::Scalar::eps() : mp::Scalar::of(acc_ps[i]);
    }
    const std::int64_t v = 100;
    tdg::lanes::accumulate_broadcast(acc_ps.data(), acc_eps.data(), v, n);
    for (std::size_t i = 0; i < n; ++i) {
      ref[i] = ref[i] + mp::Scalar::of(v);
      ASSERT_FALSE(ref[i].is_eps());
      EXPECT_EQ(acc_eps[i], 0);
      EXPECT_EQ(acc_ps[i], ref[i].value()) << "n=" << n << " i=" << i;
    }
  }
}

TEST(LaneKernelTest, EpsSourceLeavesAccumulatorUntouched) {
  std::vector<std::int64_t> acc_ps = {10, 0, 30, 40, 50};
  std::vector<std::uint8_t> acc_eps = {0, 1, 0, 0, 0};
  const std::vector<std::int64_t> src_ps(5, 0);
  const std::vector<std::uint8_t> src_eps(5, 1);  // all-ε source lane
  ASSERT_FALSE(tdg::lanes::accumulate(acc_ps.data(), acc_eps.data(),
                                      src_ps.data(), src_eps.data(), 999, 5));
  EXPECT_EQ(acc_ps, (std::vector<std::int64_t>{10, 0, 30, 40, 50}));
  EXPECT_EQ(acc_eps, (std::vector<std::uint8_t>{0, 1, 0, 0, 0}));
}

TEST(LaneKernelTest, FiniteOverflowIsDetected) {
  for (const std::size_t n : {1u, 4u, 5u, 8u}) {
    for (std::size_t hot = 0; hot < n; ++hot) {
      std::vector<std::int64_t> acc_ps(n, 0), src_ps(n, 0);
      std::vector<std::uint8_t> acc_eps(n, 1), src_eps(n, 0);
      src_ps[hot] = std::numeric_limits<std::int64_t>::max() - 1;
      EXPECT_TRUE(tdg::lanes::accumulate(acc_ps.data(), acc_eps.data(),
                                         src_ps.data(), src_eps.data(), 2, n))
          << "n=" << n << " hot=" << hot;
    }
  }
}

TEST(LaneKernelTest, EpsLaneOverflowIsIgnored) {
  // ε ⊗ w is ε whatever w is: a wrapping add on an ε lane must not be
  // reported (mp::Scalar would never have performed it).
  std::vector<std::int64_t> acc_ps(4, 5), src_ps(4, 0);
  std::vector<std::uint8_t> acc_eps(4, 0), src_eps(4, 1);
  src_ps[2] = std::numeric_limits<std::int64_t>::max();
  EXPECT_FALSE(tdg::lanes::accumulate(acc_ps.data(), acc_eps.data(),
                                      src_ps.data(), src_eps.data(),
                                      std::numeric_limits<std::int64_t>::max(),
                                      4));
  EXPECT_EQ(acc_ps, (std::vector<std::int64_t>{5, 5, 5, 5}));
}

// --------------------------------------------------- program opcode tables ----

model::ArchitectureDesc constant_load_desc() {
  model::ArchitectureDesc d;
  const auto r =
      d.add_resource("cpu", model::ResourcePolicy::kConcurrent, 1e9);
  const auto ch = d.add_rendezvous("in");
  const auto out = d.add_rendezvous("out");
  const auto f = d.add_function("f", r);
  d.fn_read(f, ch);
  d.fn_execute(f, model::constant_ops(1000));
  d.fn_write(f, out);
  d.add_source("src", ch, 3,
               [](std::uint64_t k) {
                 return TimePoint::at_ps(static_cast<std::int64_t>(k) * 10);
               },
               [](std::uint64_t) { return model::TokenAttrs{}; });
  d.add_sink("sink", out);
  d.validate();
  return d;
}

core::CompiledPtr compile_desc(model::ArchitectureDesc d) {
  return core::compile_abstraction(
      core::CompiledKey::make(model::share(std::move(d)), {}, true, 0));
}

TEST(ProgramOpsTest, CompileBuildsConsistentTables) {
  const core::CompiledPtr c = compile_desc(gen::make_didactic({}));
  const tdg::Program& p = c->program;
  ASSERT_EQ(p.load_ops.size(), p.loads.size());
  ASSERT_EQ(p.op_kind.size(), p.op_exec.size());
  ASSERT_EQ(p.op_const_dps.size(), p.op_exec.size());
  for (std::size_t j = 0; j < p.op_exec.size(); ++j) {
    if (!p.op_exec[j]) {
      EXPECT_EQ(static_cast<Kind>(p.op_kind[j]), Kind::kFixedWeight);
      EXPECT_EQ(p.op_const_dps[j], -1);
      continue;
    }
    const auto li = static_cast<std::size_t>(p.op_load[j]);
    EXPECT_EQ(p.op_kind[j], p.load_ops.kind[li]);
    if (static_cast<Kind>(p.op_kind[j]) != Kind::kRateConstant) {
      EXPECT_EQ(p.op_const_dps[j], -1);
    }
  }
  // The didactic loads are all factory-built: nothing opaque survives.
  EXPECT_EQ(c->opaque_loads(), 0u);
  for (std::size_t i = 0; i < p.loads.size(); ++i)
    EXPECT_NE(c->load_kind(i), Kind::kOpaqueClosure) << "load " << i;
}

TEST(ProgramOpsTest, RateConstantFoldsTheWholeDuration) {
  const core::CompiledPtr c = compile_desc(constant_load_desc());
  const tdg::Program& p = c->program;
  bool found = false;
  for (std::size_t j = 0; j < p.op_exec.size(); ++j) {
    if (!p.op_exec[j]) continue;
    ASSERT_EQ(static_cast<Kind>(p.op_kind[j]), Kind::kRateConstant);
    // 1000 ops at 1e9 ops/s: the pre-folded picosecond duration.
    const std::int64_t expected = static_cast<std::int64_t>(
        std::llround(1000.0 / p.op_rate[j] * 1e12));
    EXPECT_EQ(p.op_const_dps[j], expected);
    found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(p.load_ops.all_concrete());
}

TEST(ProgramOpsTest, OpaqueLambdaFallsBackAndIsCounted) {
  model::ArchitectureDesc d = constant_load_desc();
  const auto ch2 = d.add_rendezvous("in2");
  const auto out2 = d.add_rendezvous("out2");
  const auto f2 = d.add_function("g", static_cast<model::ResourceId>(
                                      d.resources().size() - 1));
  d.fn_read(f2, ch2);
  d.fn_execute(f2, [](const model::TokenAttrs& a, std::uint64_t) {
    return a.size + 1;
  });
  d.fn_write(f2, out2);
  d.add_source("src2", ch2, 3,
               [](std::uint64_t k) {
                 return TimePoint::at_ps(static_cast<std::int64_t>(k) * 10);
               },
               [](std::uint64_t) { return model::TokenAttrs{}; });
  d.add_sink("sink2", out2);
  d.validate();

  const core::CompiledPtr c = compile_desc(std::move(d));
  EXPECT_EQ(c->opaque_loads(), 1u);
  bool saw_opaque = false, saw_constant = false;
  for (std::size_t i = 0; i < c->program.loads.size(); ++i) {
    saw_opaque |= c->load_kind(i) == Kind::kOpaqueClosure;
    saw_constant |= c->load_kind(i) == Kind::kRateConstant;
  }
  EXPECT_TRUE(saw_opaque);
  EXPECT_TRUE(saw_constant);
}

// ------------------------------------------------------------- wire round ----

TEST(WireOpsTest, ConcreteLoadsSurviveProgramRoundTrip) {
  const core::CompiledPtr c = compile_desc(gen::make_didactic({}));
  const tdg::Program& p = c->program;
  const tdg::Program back = serve::program_from_json(serve::program_to_json(p));

  // The loaded program recompiled its opcode tables: same classification,
  // same const folds, and the concrete loads evaluate identically.
  EXPECT_EQ(back.load_ops.kind, p.load_ops.kind);
  EXPECT_EQ(back.load_ops.opaque, p.load_ops.opaque);
  EXPECT_EQ(back.op_kind, p.op_kind);
  EXPECT_EQ(back.op_const_dps, p.op_const_dps);
  model::TokenAttrs attrs;
  attrs.size = 42;
  attrs.params = {1.5, -2.0, 0.0, 7.25};
  for (std::size_t i = 0; i < p.loads.size(); ++i) {
    if (static_cast<Kind>(p.load_ops.kind[i]) == Kind::kOpaqueClosure)
      continue;
    for (const std::uint64_t k : {0ull, 1ull, 5ull})
      EXPECT_EQ(back.loads[i](attrs, k), p.loads[i](attrs, k))
          << "load " << i << " k=" << k;
  }
}

TEST(WireOpsTest, OpaqueLoadBecomesThrowingStubButTablesRecompile) {
  model::ArchitectureDesc d = constant_load_desc();
  // The opaque-augmented description from the program-ops test.
  const auto ch2 = d.add_rendezvous("in2");
  const auto out2 = d.add_rendezvous("out2");
  const auto f2 = d.add_function("g", static_cast<model::ResourceId>(
                                      d.resources().size() - 1));
  d.fn_read(f2, ch2);
  d.fn_execute(f2, [](const model::TokenAttrs& a, std::uint64_t) {
    return a.size + 1;
  });
  d.fn_write(f2, out2);
  d.add_source("src2", ch2, 3,
               [](std::uint64_t k) {
                 return TimePoint::at_ps(static_cast<std::int64_t>(k) * 10);
               },
               [](std::uint64_t) { return model::TokenAttrs{}; });
  d.add_sink("sink2", out2);
  d.validate();

  const core::CompiledPtr c = compile_desc(std::move(d));
  const tdg::Program back =
      serve::program_from_json(serve::program_to_json(c->program));
  EXPECT_EQ(back.load_ops.opaque, 1u);
  for (std::size_t i = 0; i < back.loads.size(); ++i) {
    if (static_cast<Kind>(back.load_ops.kind[i]) == Kind::kOpaqueClosure) {
      EXPECT_THROW((void)back.loads[i](model::TokenAttrs{}, 0),
                   serve::WireError);
    }
  }
}

// ------------------------------------------------------ differential sweep ----

using study::Backend;
using study::RunConfig;
using study::Scenario;

Scenario clones(const model::DescPtr& desc, std::size_t n) {
  std::vector<Scenario> parts;
  for (std::size_t i = 0; i < n; ++i)
    parts.emplace_back("inst" + std::to_string(i), desc);
  return study::compose("clones", parts);
}

/// Run \p scenario on the equivalent backend with the given dispatch
/// configuration.
std::unique_ptr<study::Model> run_with(const Scenario& scenario,
                                               bool opcode, bool vector,
                                               int threads) {
  RunConfig rc;
  rc.opcode_dispatch = opcode;
  rc.vector_drain = vector;
  rc.threads = threads;
  auto m = Backend::equivalent().instantiate(scenario, rc);
  EXPECT_TRUE(m->run().completed);
  return m;
}

/// Byte-compare everything observable: instant traces both directions,
/// sorted usage, completion time, and every cost/kernel counter.
void expect_identical(const study::Model& ref,
                      const study::Model& got, const std::string& ctx) {
  EXPECT_EQ(trace::compare_instants(ref.instants(), got.instants()),
            std::nullopt)
      << ctx;
  EXPECT_EQ(trace::compare_instants(got.instants(), ref.instants()),
            std::nullopt)
      << ctx;
  trace::UsageTraceSet ru = ref.usage();
  trace::UsageTraceSet gu = got.usage();
  ru.sort_all();
  gu.sort_all();
  EXPECT_EQ(trace::compare_usage(ru, gu), std::nullopt) << ctx;
  EXPECT_EQ(ref.end_time(), got.end_time()) << ctx;
  EXPECT_EQ(ref.relation_events(), got.relation_events()) << ctx;
  EXPECT_EQ(ref.instances_computed(), got.instances_computed()) << ctx;
  EXPECT_EQ(ref.arc_terms_evaluated(), got.arc_terms_evaluated()) << ctx;
  EXPECT_EQ(ref.kernel_stats().events_scheduled,
            got.kernel_stats().events_scheduled)
      << ctx;
  EXPECT_EQ(ref.kernel_stats().resumes, got.kernel_stats().resumes) << ctx;
  EXPECT_EQ(ref.kernel_stats().inline_resumes,
            got.kernel_stats().inline_resumes)
      << ctx;
}

// The sweep: 25 random architectures (FIFOs, slow sinks, periodic and
// second sources, multi-rate producer bundles), each batch-composed and
// run with every (opcode_dispatch, vector_drain) combination and with the
// per-group drain threaded, all compared against the pure closure/scalar
// reference bit for bit.
TEST(DifferentialSweepTest, OpcodeAndVectorMatchClosureReference) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 30;
  cfg.multi_rate_producer_probability = 0.4;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto desc = model::share(gen::make_random_architecture(seed, cfg));
    const Scenario composed = clones(desc, 4);
    ASSERT_TRUE(composed.batchable());
    const std::string ctx = "seed " + std::to_string(seed);

    const auto ref = run_with(composed, false, false, 1);
    expect_identical(*ref, *run_with(composed, true, false, 1),
                     ctx + " opcode only");
    expect_identical(*ref, *run_with(composed, false, true, 1),
                     ctx + " vector only");
    expect_identical(*ref, *run_with(composed, true, true, 1),
                     ctx + " opcode+vector");
    expect_identical(*ref, *run_with(composed, true, true, 2),
                     ctx + " opcode+vector t2");
    expect_identical(*ref, *run_with(composed, true, true, 8),
                     ctx + " opcode+vector t8");
  }
}

// Heterogeneous sub-batches (the stacked-levers case): two descriptions
// interleaved into two width-2 sub-batches, so the threaded per-group
// drain actually has groups to spread, on top of opcode dispatch and the
// vector drain.
TEST(DifferentialSweepTest, HeterogeneousSubBatchesMatchReference) {
  gen::RandomArchConfig cfg;
  cfg.tokens = 25;
  cfg.multi_rate_producer_probability = 0.4;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto a = model::share(gen::make_random_architecture(seed, cfg));
    const auto b =
        model::share(gen::make_random_architecture(seed + 100, cfg));
    std::vector<Scenario> parts;
    parts.emplace_back("a0", a);
    parts.emplace_back("b0", b);
    parts.emplace_back("a1", a);
    parts.emplace_back("b1", b);
    const Scenario mixed = study::compose("mix", parts);
    ASSERT_EQ(mixed.batch_groups().size(), 2u);
    const std::string ctx = "pair seed " + std::to_string(seed);

    const auto ref = run_with(mixed, false, false, 1);
    for (const int threads : {1, 2, 8})
      expect_identical(*ref, *run_with(mixed, true, true, threads),
                       ctx + " t" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace maxev
